package seqproc

import (
	"strings"
	"testing"
)

// Materialize registers a view the DB answers repeated queries from:
// the warm plan shows the substitution, the output matches
// recomputation, and hit counters move.
func TestMaterializeAndReuse(t *testing.T) {
	db := stockDB(t)
	const query = "select(compose(ibm, hp), ibm.close > hp.close)"
	span := NewSpan(1, 750)

	q, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := q.Run(span)
	if err != nil {
		t.Fatal(err)
	}

	vc, err := db.Materialize("crosses", query, span)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Name != "crosses" || vc.Records != cold.Count() {
		t.Fatalf("view counters = %+v, want %d records", vc, cold.Count())
	}

	warm, err := q.Run(span)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.Plan(), `scan "crosses"`) {
		t.Fatalf("warm plan does not scan the view:\n%s", warm.Plan())
	}
	if warm.Count() != cold.Count() {
		t.Fatalf("warm count %d != cold count %d", warm.Count(), cold.Count())
	}
	views := db.ListViews()
	if len(views) != 1 || views[0].Hits == 0 {
		t.Fatalf("view not hit: %+v", views)
	}

	if err := db.DropView("crosses"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropView("crosses"); err == nil {
		t.Fatal("double drop must fail")
	}
	if len(db.ListViews()) != 0 {
		t.Fatal("drop did not take")
	}
}

func TestMaterializeRejectsUnboundedSpan(t *testing.T) {
	db := stockDB(t)
	if _, err := db.Materialize("v", "select(ibm, ibm.close > 100.0)", AllSpan); err == nil {
		t.Fatal("unbounded materialize must fail")
	}
}

// Mutating a base a view reads invalidates the view; untouched views
// survive.
func TestViewInvalidation(t *testing.T) {
	db := stockDB(t)
	span := NewSpan(1, 750)
	if _, err := db.Materialize("ibm-high", "select(ibm, ibm.close > 100.0)", span); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("hp-high", "select(hp, hp.close > 100.0)", span); err != nil {
		t.Fatal(err)
	}

	// ibm is sparse, so Append works and must drop only the ibm view.
	if err := db.Append("ibm", 900, Record{Float(1), Float(1), Int(1)}); err != nil {
		t.Fatal(err)
	}
	views := db.ListViews()
	if len(views) != 1 || views[0].Name != "hp-high" {
		t.Fatalf("after append views = %+v, want only hp-high", views)
	}

	if err := db.Reorganize("hp", Sparse); err != nil {
		t.Fatal(err)
	}
	if len(db.ListViews()) != 0 {
		t.Fatalf("reorganize did not invalidate: %+v", db.ListViews())
	}
}
