package seqproc

import (
	"strings"
	"testing"
)

// Materialize registers a view the DB answers repeated queries from:
// the warm plan shows the substitution, the output matches
// recomputation, and hit counters move.
func TestMaterializeAndReuse(t *testing.T) {
	db := stockDB(t)
	const query = "select(compose(ibm, hp), ibm.close > hp.close)"
	span := NewSpan(1, 750)

	q, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := q.Run(span)
	if err != nil {
		t.Fatal(err)
	}

	vc, err := db.Materialize("crosses", query, span)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Name != "crosses" || vc.Records != cold.Count() {
		t.Fatalf("view counters = %+v, want %d records", vc, cold.Count())
	}

	warm, err := q.Run(span)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.Plan(), `scan "crosses"`) {
		t.Fatalf("warm plan does not scan the view:\n%s", warm.Plan())
	}
	if warm.Count() != cold.Count() {
		t.Fatalf("warm count %d != cold count %d", warm.Count(), cold.Count())
	}
	views := db.ListViews()
	if len(views) != 1 || views[0].Hits == 0 {
		t.Fatalf("view not hit: %+v", views)
	}

	if err := db.DropView("crosses"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropView("crosses"); err == nil {
		t.Fatal("double drop must fail")
	}
	if len(db.ListViews()) != 0 {
		t.Fatal("drop did not take")
	}
}

func TestMaterializeRejectsUnboundedSpan(t *testing.T) {
	db := stockDB(t)
	if _, err := db.Materialize("v", "select(ibm, ibm.close > 100.0)", AllSpan); err == nil {
		t.Fatal("unbounded materialize must fail")
	}
}

// With maintenance disabled, mutating a base a view reads invalidates
// the view (the pre-IVM contract); untouched views survive.
func TestViewInvalidation(t *testing.T) {
	db := stockDB(t)
	db.SetViewMaintenance(false)
	span := NewSpan(1, 750)
	if _, err := db.Materialize("ibm-high", "select(ibm, ibm.close > 100.0)", span); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("hp-high", "select(hp, hp.close > 100.0)", span); err != nil {
		t.Fatal(err)
	}

	// ibm is sparse, so Append works and must drop only the ibm view.
	if err := db.Append("ibm", 900, Record{Float(1), Float(1), Int(1)}); err != nil {
		t.Fatal(err)
	}
	views := db.ListViews()
	if len(views) != 1 || views[0].Name != "hp-high" {
		t.Fatalf("after append views = %+v, want only hp-high", views)
	}

	if err := db.Reorganize("hp", Sparse); err != nil {
		t.Fatal(err)
	}
	if len(db.ListViews()) != 0 {
		t.Fatalf("reorganize did not invalidate: %+v", db.ListViews())
	}
}

// With maintenance on (the default), an append outside a view's span
// leaves the view registered and still correct, a reorganize preserves
// every view, and the maintenance reports record the decisions.
func TestViewMaintenanceKeepsViews(t *testing.T) {
	db := stockDB(t)
	span := NewSpan(1, 750)
	if _, err := db.Materialize("ibm-high", "select(ibm, ibm.close > 100.0)", span); err != nil {
		t.Fatal(err)
	}

	// The view's span cannot reach position 900: the delta halo misses it.
	if err := db.Append("ibm", 900, Record{Float(1), Float(1), Int(1)}); err != nil {
		t.Fatal(err)
	}
	views := db.ListViews()
	if len(views) != 1 || views[0].Name != "ibm-high" {
		t.Fatalf("after out-of-span append views = %+v, want ibm-high kept", views)
	}
	reports := db.TakeMaintenanceReports()
	if len(reports) != 1 || reports[0].ViewName != "ibm-high" {
		t.Fatalf("maintenance reports = %+v", reports)
	}

	// Reorganize preserves content; the view must survive and the query
	// must still answer from it, matching recomputation.
	if err := db.Reorganize("ibm", Dense); err != nil {
		t.Fatal(err)
	}
	if len(db.ListViews()) != 1 {
		t.Fatalf("reorganize dropped the view: %+v", db.ListViews())
	}
	q, err := db.Query("select(ibm, ibm.close > 100.0)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Run(NewSpan(200, 500))
	if err != nil {
		t.Fatal(err)
	}
	db.SetViewMaintenance(false)
	db2 := stockDB(t)
	q2, err := db2.Query("select(ibm, ibm.close > 100.0)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := q2.Run(NewSpan(200, 500))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != want.Count() {
		t.Fatalf("view-served count %d != recomputed %d", got.Count(), want.Count())
	}
}
