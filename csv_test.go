package seqproc

import (
	"strings"
	"testing"
)

const sampleCSV = `pos,close,volume,halted,sym
3,10.5,100,false,IBM
1,9.25,250,true,IBM
2,9.75,50,false,IBM
`

func TestReadCSV(t *testing.T) {
	data, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	schema := data.Info().Schema
	wantTypes := map[string]Type{"close": TFloat, "volume": TInt, "halted": TBool, "sym": TString}
	for name, typ := range wantTypes {
		i := schema.Index(name)
		if i < 0 || schema.Field(i).Type != typ {
			t.Errorf("column %q: got %v", name, schema)
		}
	}
	// Rows are sorted by position regardless of input order.
	entries := data.Entries()
	if len(entries) != 3 || entries[0].Pos != 1 || entries[2].Pos != 3 {
		t.Fatalf("entries = %v", entries)
	}
	ci := schema.Index("close")
	if entries[0].Rec[ci].AsFloat() != 9.25 {
		t.Errorf("row 1 = %v", entries[0].Rec)
	}
}

func TestReadCSVIntoDBAndQuery(t *testing.T) {
	data, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	db := New()
	db.MustCreateSequence("ticks", data, Sparse)
	q, err := db.Query("select(ticks, close > 9.5 and not halted)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(NewSpan(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Errorf("result = %v", res.Entries())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"no pos column":   "a,b\n1,2\n",
		"no data rows":    "pos,a\n",
		"bad position":    "pos,a\nx,1\n",
		"bad int":         "pos,a\n1,5\n2,x\n",
		"bad float":       "pos,a\n1,5.5\n2,x\n",
		"bad bool":        "pos,a\n1,true\n2,maybe\n",
		"ragged row":      "pos,a\n1,2,3\n",
		"duplicate pos":   "pos,a\n1,2\n1,3\n",
		"empty input":     "",
		"duplicate names": "pos,a,a\n1,2,3\n",
	}
	for name, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	data, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	if back.Count() != data.Count() {
		t.Fatalf("count %d vs %d", back.Count(), data.Count())
	}
	for i, e := range back.Entries() {
		orig := data.Entries()[i]
		if e.Pos != orig.Pos || !e.Rec.Equal(orig.Rec) {
			t.Errorf("entry %d: %v vs %v", i, e, orig)
		}
	}
	if !strings.HasPrefix(buf.String(), "pos,close,volume,halted,sym") {
		t.Errorf("header = %q", strings.Split(buf.String(), "\n")[0])
	}
}
