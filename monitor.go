package seqproc

import "fmt"

// Monitor evaluates a query incrementally over newly arrived data — the
// trigger-mode extension of §5.3 ("in applications where the data
// sequences are dynamic, and where the queries are acting as triggers,
// it may be important to optimize the incremental cost of processing
// each new arriving data item").
//
// Each Poll evaluates the query only over the positions that arrived
// since the previous Poll. Two properties of the engine make this cheap
// without dedicated machinery: the top-down span pass restricts base
// accesses to the new window plus the query's scope reach, and the cost
// model switches to probe-based strategies when the requested range is
// small — so a poll over a few new positions costs a few probes, not a
// rescan.
type Monitor struct {
	q    *Query
	last Pos
}

// Monitor builds a monitor for a SEQL query, reporting results for
// positions strictly after `from`.
func (db *DB) Monitor(seql string, from Pos) (*Monitor, error) {
	q, err := db.Query(seql)
	if err != nil {
		return nil, err
	}
	return &Monitor{q: q, last: from}, nil
}

// Position returns the last position already reported.
func (m *Monitor) Position() Pos { return m.last }

// Poll evaluates the query over (last, upTo] and advances the monitor.
// It returns the new result records, possibly none.
func (m *Monitor) Poll(upTo Pos) ([]Entry, error) {
	if upTo <= m.last {
		return nil, nil
	}
	res, err := m.q.Run(NewSpan(m.last+1, upTo))
	if err != nil {
		return nil, fmt.Errorf("seqproc: monitor poll: %w", err)
	}
	m.last = upTo
	return res.Entries(), nil
}
