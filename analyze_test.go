package seqproc_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	seqproc "repro"
	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/seq"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// example11DB builds the Example 1.1 monitoring database (fixed seed, so
// plans and counters are deterministic).
func example11DB(t *testing.T) (*seqproc.DB, seqproc.Span) {
	t.Helper()
	span := seq.NewSpan(1, 2000)
	quakes, volcanos, err := workload.Monitoring(span, 500, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("quakes", quakes, seqproc.Sparse)
	db.MustCreateSequence("volcanos", volcanos, seqproc.Sparse)
	return db, span
}

const example11Query = "project(select(compose(volcanos, prev(quakes)), strength > 7.0), name)"

// table1TestDB builds the Table 1 stock database at scale 1.
func table1TestDB(t *testing.T) (*seqproc.DB, seqproc.Span) {
	t.Helper()
	ibm, dec, hp, err := workload.Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("ibm", ibm, seqproc.Sparse)
	db.MustCreateSequence("dec", dec, seqproc.Sparse)
	db.MustCreateSequence("hp", hp, seqproc.Dense)
	return db, seqproc.NewSpan(1, 750)
}

const table1Query = "project(compose(dec, select(compose(ibm, hp), ibm.close > hp.close) as ih), dec.close)"

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if got+"\n" != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestExplainGolden pins the Explain rendering of the Example 1.1 and
// Table 1 queries.
func TestExplainGolden(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mkdb  func(*testing.T) (*seqproc.DB, seqproc.Span)
		query string
	}{
		{"explain_example11.golden", example11DB, example11Query},
		{"explain_table1.golden", table1TestDB, table1Query},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, span := tc.mkdb(t)
			q, err := db.Query(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			text, err := q.Explain(span)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, text)
		})
	}
}

// TestExplainAnalyzeGolden pins the stable (time-free) EXPLAIN ANALYZE
// rendering of the same queries: per-node predicted costs, row counts,
// attributed page accesses and cache counters are all deterministic.
func TestExplainAnalyzeGolden(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mkdb  func(*testing.T) (*seqproc.DB, seqproc.Span)
		query string
	}{
		{"analyze_example11.golden", example11DB, example11Query},
		{"analyze_table1.golden", table1TestDB, table1Query},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, span := tc.mkdb(t)
			q, err := db.Query(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			a, err := q.RunAnalyze(span)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, a.RenderStable())
		})
	}
}

// TestAnalyzeMatchesEvalRange checks that the instrumented run is the
// real evaluation: its output is entry-identical to the reference
// interpreter (algebra.EvalRange) and to an uninstrumented Run.
func TestAnalyzeMatchesEvalRange(t *testing.T) {
	for _, tc := range []struct {
		label string
		mkdb  func(*testing.T) (*seqproc.DB, seqproc.Span)
		query string
	}{
		{"example11", example11DB, example11Query},
		{"table1", table1TestDB, table1Query},
	} {
		t.Run(tc.label, func(t *testing.T) {
			db, span := tc.mkdb(t)
			q, err := db.Query(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			a, err := q.RunAnalyze(span)
			if err != nil {
				t.Fatal(err)
			}
			res, err := q.Run(span)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := algebra.EvalRange(q.Node(), a.Span)
			if err != nil {
				t.Fatal(err)
			}
			got := a.Output.Entries()
			if len(got) != len(ref) || res.Count() != len(ref) {
				t.Fatalf("row counts differ: analyze=%d run=%d evalrange=%d",
					len(got), res.Count(), len(ref))
			}
			for i := range got {
				if got[i].Pos != ref[i].Pos || !got[i].Rec.Equal(ref[i].Rec) {
					t.Fatalf("entry %d differs: analyze %v=%v, evalrange %v=%v",
						i, got[i].Pos, got[i].Rec, ref[i].Pos, ref[i].Rec)
				}
			}
		})
	}
}

// TestAnalyzePageAttribution runs the E3 join under every compose
// strategy and asserts the tentpole's accounting identity: the page
// accesses attributed to individual plan nodes sum exactly to the
// analysis's global delta, which in turn equals the movement of the
// shared per-sequence counters (db.PageStats) over the run.
func TestAnalyzePageAttribution(t *testing.T) {
	span := seq.NewSpan(1, 4000)
	left, err := workload.Stock(workload.StockConfig{Name: "left", Span: span, Density: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	right, err := workload.Stock(workload.StockConfig{Name: "right", Span: span, Density: 1.0, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	strategies := []exec.ComposeStrategy{
		exec.ComposeStreamLeft, exec.ComposeStreamRight, exec.ComposeLockStep,
	}
	for _, s := range strategies {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			db := seqproc.New()
			if err := db.CreateSequence("l", left, seqproc.Sparse); err != nil {
				t.Fatal(err)
			}
			if err := db.CreateSequence("r", right, seqproc.Dense); err != nil {
				t.Fatal(err)
			}
			db.SetOptions(seqproc.Options{ForceComposeStrategy: &s})
			q, err := db.Query("select(compose(l, r), l.close > r.close)")
			if err != nil {
				t.Fatal(err)
			}
			var before seqproc.PageStatsSnapshot
			for _, name := range db.Sequences() {
				st, err := db.PageStats(name)
				if err != nil {
					t.Fatal(err)
				}
				before = before.Add(st)
			}
			a, err := q.RunAnalyze(span)
			if err != nil {
				t.Fatal(err)
			}
			var after seqproc.PageStatsSnapshot
			for _, name := range db.Sequences() {
				st, err := db.PageStats(name)
				if err != nil {
					t.Fatal(err)
				}
				after = after.Add(st)
			}
			shared := after.Sub(before)
			if a.GlobalPages != shared {
				t.Errorf("global delta %v != shared counter movement %v", a.GlobalPages, shared)
			}
			if total := a.Root.TotalPages(); total != a.GlobalPages {
				t.Errorf("node-attributed total %v != global delta %v", total, a.GlobalPages)
			}
			if a.GlobalPages.Pages() == 0 {
				t.Error("run touched no pages; attribution test is vacuous")
			}
			// The strategy must be visible in the metrics tree.
			found := false
			a.Root.Walk(func(n *seqproc.NodeMetrics, _ int) {
				if n.Label == fmt.Sprintf("compose-%s((l.close > r.close))", s) ||
					n.Label == fmt.Sprintf("compose-%s", s) {
					found = true
				}
			})
			if !found {
				t.Errorf("compose-%s node not found in metrics tree", s)
			}
		})
	}
}
