// Trigger-mode monitoring (the §5.3 extension): sequence queries as
// standing triggers over dynamically arriving data.
//
// A stream of sensor readings arrives in batches; two monitors watch it:
// an alert on the 4-reading moving average, and a spike detector that
// compares each reading with the most recent earlier one. Each poll
// evaluates only the newly arrived window — the span pass restricts base
// access and the cost model switches to probe-based plans for small
// ranges, so per-batch cost tracks batch size rather than history size.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	seqproc "repro"
)

func main() {
	schema := seqproc.MustSchema(seqproc.Field{Name: "temp", Type: seqproc.TFloat})
	empty, err := seqproc.NewData(schema, nil)
	if err != nil {
		log.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("sensor", empty, seqproc.Sparse)

	overheat, err := db.Monitor("select(avg(sensor, temp, 4), avg > 90.0)", 0)
	if err != nil {
		log.Fatal(err)
	}
	spikes, err := db.Monitor(
		`select(project(compose(sensor as cur, prev(sensor) as last), cur.temp - last.temp as jump),
		        jump > 15.0 or jump < -15.0)`, 0)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	pos := seqproc.Pos(0)
	temp := 70.0
	for batch := 1; batch <= 8; batch++ {
		// A batch of 5-10 readings arrives, with occasional gaps
		// (positions with no reading) and a heat event in batch 5.
		n := 5 + rng.Intn(6)
		for i := 0; i < n; i++ {
			pos += seqproc.Pos(1 + rng.Intn(2))
			drift := (rng.Float64() - 0.5) * 6
			if batch == 5 {
				drift += 12 // the machine overheats
			}
			if batch == 7 && i == 2 {
				drift -= 25 // a sensor glitch
			}
			temp += drift
			if err := db.Append("sensor", pos, seqproc.Record{seqproc.Float(temp)}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("batch %d arrived (through position %d, latest %.1f°)\n", batch, pos, temp)

		alerts, err := overheat.Poll(pos)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range alerts {
			fmt.Printf("  OVERHEAT  pos %3d: 4-reading average %.1f°\n", a.Pos, a.Rec[0].AsFloat())
		}
		jumps, err := spikes.Poll(pos)
		if err != nil {
			log.Fatal(err)
		}
		for _, j := range jumps {
			fmt.Printf("  SPIKE     pos %3d: jumped %+.1f°\n", j.Pos, j.Rec[0].AsFloat())
		}
		if len(alerts) == 0 && len(jumps) == 0 {
			fmt.Println("  (quiet)")
		}
	}
}
