// Stock analytics over the paper's Table 1 sequences: moving averages,
// golden-cross detection, running statistics, and the span optimization
// of Figure 3 made visible through page counters.
//
//	go run ./examples/stocks
package main

import (
	"fmt"
	"log"

	seqproc "repro"
	"repro/internal/workload"
)

func main() {
	const scale = 10 // Table 1 spans x10: IBM [2000,5000], DEC [10,3500], HP [10,7500]
	ibm, dec, hp, err := workload.Table1(scale)
	if err != nil {
		log.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("ibm", ibm, seqproc.Sparse)
	db.MustCreateSequence("dec", dec, seqproc.Sparse)
	db.MustCreateSequence("hp", hp, seqproc.Dense)
	span := seqproc.NewSpan(1, 7500)

	// 1. Figure 5.A's query: the moving 6-position sum of IBM's close.
	run(db, "sum(ibm, close, 6)", span, 3)

	// 2. A golden cross: days where the 5-day average close rises above
	// the 20-day average. Two windowed aggregates composed positionally.
	run(db, `select(compose(avg(ibm, close, 5) as fast, avg(ibm, close, 20) as slow),
	                fast.avg > slow.avg)`, span, 3)

	// 3. Running statistics: IBM's all-time-high close so far, and the
	// days it was set (close equals the running max).
	run(db, `select(compose(ibm, rmax(ibm, close) as peak), close >= peak.rmax)`, span, 3)

	// 4. Ordering domains (§5.1): the weekly average of IBM's daily
	// closes, and the days IBM closed below its own weekly average
	// (collapse into weeks, expand back to days, compose with the
	// daily series).
	run(db, "collapse(ibm, avg(close), 5)", seqproc.NewSpan(1, 1500), 3)
	run(db, `select(compose(ibm as d, expand(collapse(ibm, avg(close), 5), 5) as w),
	                d.close < w.avg - 1.0)`, span, 3)

	// 5. Figure 3: the DEC price whenever IBM closed above HP. Span
	// propagation restricts all three scans to the overlap window.
	const fig3 = "project(compose(dec, select(compose(ibm, hp), ibm.close > hp.close) as ih), dec.close)"
	db.ResetPageStats()
	run(db, fig3, span, 3)
	var pages int64
	for _, name := range db.Sequences() {
		st, _ := db.TakePageStats(name)
		pages += st.Pages()
	}
	fmt.Printf("figure-3 query touched %d pages with span propagation\n", pages)

	db.SetOptions(seqproc.Options{DisableSpanPropagation: true})
	db.ResetPageStats()
	q, err := db.Query(fig3)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := q.Run(span); err != nil {
		log.Fatal(err)
	}
	var pagesNo int64
	for _, name := range db.Sequences() {
		st, _ := db.TakePageStats(name)
		pagesNo += st.Pages()
	}
	fmt.Printf("the same query without span propagation: %d pages (%.1fx more)\n",
		pagesNo, float64(pagesNo)/float64(pages))
}

func run(db *seqproc.DB, query string, span seqproc.Span, preview int) {
	q, err := db.Query(query)
	if err != nil {
		log.Fatalf("%s: %v", query, err)
	}
	res, err := q.Run(span)
	if err != nil {
		log.Fatalf("%s: %v", query, err)
	}
	fmt.Printf("-- %s --\n", query)
	for i, e := range res.Entries() {
		if i == preview {
			break
		}
		fmt.Printf("  pos %5d: %v\n", e.Pos, e.Rec)
	}
	fmt.Printf("  (%d rows)\n\n", res.Count())
}
