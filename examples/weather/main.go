// Weather monitoring: the paper's motivating Example 1.1.
//
// "For which volcano eruptions was the strength of the most recent
// earthquake greater than 7.0 on the Richter scale?"
//
// The example runs the query three ways and compares record accesses:
//
//  1. the sequence engine's optimized plan (a single lock-step scan with
//     Cache-Strategy-B for the Previous operator),
//
//  2. the relational nested-subquery plan the paper ascribes to a
//     conventional optimizer (a full aggregate scan per volcano), and
//
//  3. a hand-written relational merge plan (what the sequence optimizer
//     derives automatically).
//
//     go run ./examples/weather
package main

import (
	"fmt"
	"log"

	seqproc "repro"
	"repro/internal/relational"
	"repro/internal/workload"
)

func main() {
	const (
		nQuakes   = 5000
		nVolcanos = 500
	)
	span := seqproc.NewSpan(1, 4*nQuakes)
	quakes, volcanos, err := workload.Monitoring(span, nQuakes, nVolcanos, 1994)
	if err != nil {
		log.Fatal(err)
	}

	db := seqproc.New()
	db.MustCreateSequence("quakes", quakes, seqproc.Sparse)
	db.MustCreateSequence("volcanos", volcanos, seqproc.Sparse)

	// The declarative sequence query (Figure 1): compose each volcano
	// eruption with the most recent earthquake and filter on strength.
	const query = "project(select(compose(volcanos, prev(quakes)), strength > 7.0), name)"
	q, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:", query)
	plan, err := q.Explain(span)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	fmt.Println()

	db.ResetPageStats()
	res, err := q.Run(span)
	if err != nil {
		log.Fatal(err)
	}
	qs, _ := db.TakePageStats("quakes")
	vs, _ := db.TakePageStats("volcanos")
	seqRecords := qs.SeqRecords + qs.ProbeRecords + vs.SeqRecords + vs.ProbeRecords

	fmt.Printf("sequence engine: %d answers, %d record accesses\n", res.Count(), seqRecords)
	for i, e := range res.Entries() {
		if i == 5 {
			fmt.Printf("  ... (%d more)\n", res.Count()-5)
			break
		}
		fmt.Printf("  position %d: %s\n", e.Pos, e.Rec[0].AsStr())
	}

	// The relational baseline: same data as relations with explicit
	// time columns.
	qRel, vRel, err := workload.ToRelations(quakes, volcanos)
	if err != nil {
		log.Fatal(err)
	}
	nested, err := relational.VolcanoQueryNested(vRel, qRel)
	if err != nil {
		log.Fatal(err)
	}
	nestedReads := qRel.TuplesRead + vRel.TuplesRead
	fmt.Printf("\nrelational nested plan: %d answers, %d tuple accesses (%.0fx the sequence plan)\n",
		len(nested), nestedReads, float64(nestedReads)/float64(seqRecords))

	qRel.ResetStats()
	vRel.ResetStats()
	merged, err := relational.VolcanoQueryMerge(vRel, qRel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-written merge plan: %d answers, %d tuple accesses\n",
		len(merged), qRel.TuplesRead+vRel.TuplesRead)

	if len(nested) != res.Count() || len(merged) != res.Count() {
		log.Fatalf("engines disagree: seq=%d nested=%d merge=%d", res.Count(), len(nested), len(merged))
	}
	fmt.Println("\nall three plans agree; the sequence optimizer derived the efficient plan automatically")
}
