// Sequence groupings (§5.1 extension): querying a collection of
// same-schema sequences collectively. A lab database holds one result
// sequence per experiment run; the queries ask which runs satisfy
// conditions and compute per-run aggregates — the "database of
// experimental result sequences" use case the paper sketches.
//
//	go run ./examples/labruns
package main

import (
	"fmt"
	"log"
	"math/rand"

	seqproc "repro"
	"repro/internal/algebra"
	"repro/internal/expr"
)

func main() {
	schema := seqproc.MustSchema(
		seqproc.Field{Name: "reading", Type: seqproc.TFloat},
	)
	runs := seqproc.NewGrouping(schema)

	// Twelve experiment runs: most stable around 50, some contaminated
	// with upward drift, some with dropouts (sparse readings).
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 12; i++ {
		var entries []seqproc.Entry
		level := 50 + rng.Float64()*4
		drift := 0.0
		if i%4 == 3 {
			drift = 0.25 // contaminated runs drift upward
		}
		density := 1.0
		if i%5 == 4 {
			density = 0.6 // flaky sensor
		}
		v := level
		for p := seqproc.Pos(1); p <= 200; p++ {
			v += drift + (rng.Float64()-0.5)*2
			if rng.Float64() >= density {
				continue
			}
			entries = append(entries, seqproc.Entry{Pos: p, Rec: seqproc.Record{seqproc.Float(v)}})
		}
		data, err := seqproc.NewData(schema, entries)
		if err != nil {
			log.Fatal(err)
		}
		if err := runs.Add(fmt.Sprintf("run-%02d", i), data); err != nil {
			log.Fatal(err)
		}
	}
	span := seqproc.NewSpan(1, 200)

	// Query 1: which runs ever had a 10-sample moving average above 70?
	// (The drift detector: stable runs stay near 50.)
	drifted := func(member *algebra.Node) (*algebra.Node, error) {
		avg, err := algebra.AggCol(member, algebra.AggAvg, "reading", algebra.Trailing(10), "a")
		if err != nil {
			return nil, err
		}
		c, err := expr.NewCol(avg.Schema, "a")
		if err != nil {
			return nil, err
		}
		pred, err := expr.NewBin(expr.OpGt, c, expr.Literal(seqproc.Float(70)))
		if err != nil {
			return nil, err
		}
		return algebra.Select(avg, pred)
	}
	names, err := runs.Where(drifted, span)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runs whose 10-sample average exceeded 70: %v\n", names)

	// Query 2: the peak reading of every run.
	peak := func(member *algebra.Node) (*algebra.Node, error) {
		return algebra.AggCol(member, algebra.AggMax, "reading", algebra.All(), "peak")
	}
	peaks, err := runs.AggregateEach(peak, seqproc.NewSpan(100, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("peak reading per run:")
	for _, name := range runs.Members() {
		if v, ok := peaks[name]; ok {
			fmt.Printf("  %s: %.1f\n", name, v.AsFloat())
		}
	}
}
