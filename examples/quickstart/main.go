// Quickstart: create a database, register a sequence, run queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	seqproc "repro"
)

func main() {
	// A sequence is a mapping from integer positions to records. Here:
	// daily temperature readings, with gaps on days the sensor was down.
	schema := seqproc.MustSchema(
		seqproc.Field{Name: "temp", Type: seqproc.TFloat},
		seqproc.Field{Name: "station", Type: seqproc.TString},
	)
	var entries []seqproc.Entry
	temps := []float64{12.1, 13.4, 15.2, 0, 14.8, 18.9, 21.3, 0, 19.5, 16.2}
	for day, temp := range temps {
		if temp == 0 {
			continue // empty position: no reading that day
		}
		entries = append(entries, seqproc.Entry{
			Pos: seqproc.Pos(day + 1),
			Rec: seqproc.Record{seqproc.Float(temp), seqproc.Str("oslo")},
		})
	}
	data, err := seqproc.NewData(schema, entries)
	if err != nil {
		log.Fatal(err)
	}

	db := seqproc.New()
	db.MustCreateSequence("readings", data, seqproc.Sparse)

	// Query 1: a selection — hot days.
	show(db, "select(readings, temp > 15.0)", seqproc.NewSpan(1, 10))

	// Query 2: a 3-day moving average; note how it bridges the gaps
	// (Null inputs are ignored when the window has any record).
	show(db, "avg(readings, temp, 3)", seqproc.NewSpan(1, 10))

	// Query 3: day-over-day change, using the Previous operator to find
	// the most recent earlier reading regardless of gaps.
	show(db,
		"project(compose(readings as cur, prev(readings) as before), cur.temp - before.temp as change)",
		seqproc.NewSpan(1, 10))

	// The optimizer explains its chosen physical plan.
	q, err := db.Query("avg(readings, temp, 3)")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := q.Explain(seqproc.NewSpan(1, 10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- explain avg(readings, temp, 3) --")
	fmt.Println(plan)
}

func show(db *seqproc.DB, query string, span seqproc.Span) {
	q, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Run(span)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- %s --\n", query)
	for _, e := range res.Entries() {
		fmt.Printf("  day %2d: %v\n", e.Pos, e.Rec)
	}
	fmt.Println()
}
