package seqproc

import "testing"

func TestSharedBaseNodeAccessSpans(t *testing.T) {
	db := stockDB(t)
	// ibm appears twice: directly and shifted by +100. The direct path
	// needs [200,500]; the offset path needs [300,500] of the input.
	// If the shared node's access span is last-writer-wins, the direct
	// scan is wrongly narrowed.
	q, err := db.Query("compose(ibm as a, offset(ibm, 100) as b)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(NewSpan(1, 750))
	if err != nil {
		t.Fatal(err)
	}
	// Records exist where both ibm(i) and ibm(i+100) exist: i in
	// [200,400] at density ~0.95^2.
	min, max := Pos(1<<60), Pos(-1)
	for _, e := range res.Entries() {
		if e.Pos < min {
			min = e.Pos
		}
		if e.Pos > max {
			max = e.Pos
		}
	}
	if min > 210 || max < 390 {
		t.Errorf("result range [%d, %d]; expected to cover about [200, 400] (count %d)", min, max, res.Count())
	}
}
