// Benchmarks: one family per reproduced table/figure (DESIGN.md E1–E8).
// Each family benchmarks the competing strategies of its experiment so
// `go test -bench` exposes the paper's claimed shapes as ns/op ratios;
// cmd/seqbench prints the full parameter sweeps as tables.
package seqproc_test

import (
	"fmt"
	"testing"

	seqproc "repro"
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/relational"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// --- E1: Example 1.1 / Figure 1 --------------------------------------

func e1Data(b *testing.B, n int) (*seq.Materialized, *seq.Materialized) {
	b.Helper()
	quakes, volcanos, err := workload.Monitoring(seq.NewSpan(1, int64(n)*4), n, n/10, int64(n))
	if err != nil {
		b.Fatal(err)
	}
	return quakes, volcanos
}

func BenchmarkE1_SequencePlan(b *testing.B) {
	for _, n := range []int{1000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			quakes, volcanos := e1Data(b, n)
			db := seqproc.New()
			db.MustCreateSequence("quakes", quakes, seqproc.Sparse)
			db.MustCreateSequence("volcanos", volcanos, seqproc.Sparse)
			q, err := db.Query("project(select(compose(volcanos, prev(quakes)), strength > 7.0), name)")
			if err != nil {
				b.Fatal(err)
			}
			span := seqproc.NewSpan(1, int64(n)*4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Run(span); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE1_RelationalNested(b *testing.B) {
	for _, n := range []int{1000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			quakes, volcanos := e1Data(b, n)
			qRel, vRel, err := workload.ToRelations(quakes, volcanos)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := relational.VolcanoQueryNested(vRel, qRel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: Table 1 / Figure 3 -------------------------------------------

func benchE2(b *testing.B, disable bool) {
	b.Helper()
	const scale = 20
	ibm, dec, hp, err := workload.Table1(scale)
	if err != nil {
		b.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("ibm", ibm, seqproc.Sparse)
	db.MustCreateSequence("dec", dec, seqproc.Sparse)
	db.MustCreateSequence("hp", hp, seqproc.Dense)
	lock := exec.ComposeLockStep
	db.SetOptions(seqproc.Options{DisableSpanPropagation: disable, ForceComposeStrategy: &lock})
	q, err := db.Query("project(compose(dec, select(compose(ibm, hp), ibm.close > hp.close) as ih), dec.close)")
	if err != nil {
		b.Fatal(err)
	}
	span := seqproc.NewSpan(1, 750*scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Run(span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_WithSpanPropagation(b *testing.B)    { benchE2(b, false) }
func BenchmarkE2_WithoutSpanPropagation(b *testing.B) { benchE2(b, true) }

// --- E3: Figure 4 ------------------------------------------------------

func benchE3(b *testing.B, d1 float64, strategy *exec.ComposeStrategy) {
	b.Helper()
	const n = 50_000
	span := seq.NewSpan(1, n)
	left, err := workload.Stock(workload.StockConfig{Name: "l", Span: span, Density: d1, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	right, err := workload.Stock(workload.StockConfig{Name: "r", Span: span, Density: 1, Seed: 12})
	if err != nil {
		b.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("l", left, seqproc.Sparse)
	db.MustCreateSequence("r", right, seqproc.Dense)
	db.SetOptions(seqproc.Options{ForceComposeStrategy: strategy})
	q, err := db.Query("select(compose(l, r), l.close > r.close)")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Run(span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_SparseLeft(b *testing.B) {
	for _, s := range []exec.ComposeStrategy{exec.ComposeStreamLeft, exec.ComposeStreamRight, exec.ComposeLockStep} {
		s := s
		b.Run(s.String(), func(b *testing.B) { benchE3(b, 0.01, &s) })
	}
	b.Run("optimizer", func(b *testing.B) { benchE3(b, 0.01, nil) })
}

func BenchmarkE3_DenseLeft(b *testing.B) {
	for _, s := range []exec.ComposeStrategy{exec.ComposeStreamLeft, exec.ComposeLockStep} {
		s := s
		b.Run(s.String(), func(b *testing.B) { benchE3(b, 1.0, &s) })
	}
	b.Run("optimizer", func(b *testing.B) { benchE3(b, 1.0, nil) })
}

// --- E4: Figure 5.A ----------------------------------------------------

func benchE4(b *testing.B, w int64, mk func(in exec.Plan, spec algebra.AggSpec, out seq.Span) (exec.Plan, error)) {
	b.Helper()
	const n = 40_000
	span := seq.NewSpan(1, n)
	data, err := workload.Stock(workload.StockConfig{Name: "ibm", Span: span, Density: 1, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	store, err := storage.FromMaterialized(data, storage.KindDense, 0)
	if err != nil {
		b.Fatal(err)
	}
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 1, Window: algebra.Trailing(w), As: "sum"}
	outSpan := seq.NewSpan(span.Start, span.End+w-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := mk(exec.NewLeaf("ibm", store, seq.AllSpan), spec, outSpan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Run(plan, outSpan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_MovingSum(b *testing.B) {
	for _, w := range []int64{8, 64} {
		b.Run(fmt.Sprintf("naive/w=%d", w), func(b *testing.B) {
			benchE4(b, w, func(in exec.Plan, spec algebra.AggSpec, out seq.Span) (exec.Plan, error) {
				return exec.NewAggNaive(in, spec, out)
			})
		})
		b.Run(fmt.Sprintf("cacheA/w=%d", w), func(b *testing.B) {
			benchE4(b, w, func(in exec.Plan, spec algebra.AggSpec, out seq.Span) (exec.Plan, error) {
				return exec.NewAggCached(in, spec, out)
			})
		})
		b.Run(fmt.Sprintf("sliding/w=%d", w), func(b *testing.B) {
			benchE4(b, w, func(in exec.Plan, spec algebra.AggSpec, out seq.Span) (exec.Plan, error) {
				return exec.NewAggSliding(in, spec, out)
			})
		})
	}
}

// --- E5: Figure 5.B ----------------------------------------------------

func benchE5(b *testing.B, matchProb float64, incremental bool) {
	b.Helper()
	const n = 10_000
	closeSchema := seq.MustSchema(seq.Field{Name: "close", Type: seq.TFloat})
	span := seq.NewSpan(1, n)
	var le, re []seq.Entry
	for pos := span.Start; pos <= span.End; pos++ {
		le = append(le, seq.Entry{Pos: pos, Rec: seq.Record{seq.Float(float64(pos%97) / 97)}})
		re = append(re, seq.Entry{Pos: pos, Rec: seq.Record{seq.Float(1 - matchProb)}})
	}
	ls, err := storage.FromMaterialized(seq.MustMaterialized(closeSchema, le), storage.KindDense, 0)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := storage.FromMaterialized(seq.MustMaterialized(closeSchema, re), storage.KindDense, 0)
	if err != nil {
		b.Fatal(err)
	}
	schema, _ := closeSchema.Concat(closeSchema, "ibm", "hp")
	lc, _ := expr.NewCol(schema, "ibm.close")
	rc, _ := expr.NewCol(schema, "hp.close")
	pred, _ := expr.NewBin(expr.OpGt, lc, rc)
	outSpan := seq.NewSpan(span.Start+1, span.End)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join, err := exec.NewCompose(exec.NewLeaf("ibm", ls, seq.AllSpan), exec.NewLeaf("hp", rs, seq.AllSpan),
			pred, schema, exec.ComposeLockStep)
		if err != nil {
			b.Fatal(err)
		}
		var prev exec.Plan
		if incremental {
			prev, err = exec.NewValueOffsetIncremental(join, -1, outSpan)
		} else {
			prev, err = exec.NewValueOffsetNaive(join, -1, outSpan)
		}
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Run(prev, outSpan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_Previous(b *testing.B) {
	for _, p := range []float64{0.5, 0.05} {
		b.Run(fmt.Sprintf("naive/p=%.2f", p), func(b *testing.B) { benchE5(b, p, false) })
		b.Run(fmt.Sprintf("cacheB/p=%.2f", p), func(b *testing.B) { benchE5(b, p, true) })
	}
}

// --- E6: Figures 6-7 / Property 4.1 -----------------------------------

func BenchmarkE6_Optimize(b *testing.B) {
	data, err := workload.Stock(workload.StockConfig{Name: "s", Span: seq.NewSpan(1, 64), Density: 1, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var q *algebra.Node
			for i := 0; i < n; i++ {
				store, err := storage.FromMaterialized(data, storage.KindDense, 0)
				if err != nil {
					b.Fatal(err)
				}
				leaf := algebra.Base(fmt.Sprintf("s%d", i), store)
				if q == nil {
					q = leaf
					continue
				}
				q, err = algebra.Compose(q, leaf, nil, "", "")
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Optimize(q, seq.NewSpan(1, 64), core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: Theorem 3.1 ---------------------------------------------------

func BenchmarkE7_StreamPipeline(b *testing.B) {
	for _, n := range []int64{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			span := seq.NewSpan(1, n)
			a, err := workload.Stock(workload.StockConfig{Name: "a", Span: span, Density: 0.9, Seed: 41})
			if err != nil {
				b.Fatal(err)
			}
			c, err := workload.Stock(workload.StockConfig{Name: "b", Span: span, Density: 0.9, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			db := seqproc.New()
			db.MustCreateSequence("a", a, seqproc.Sparse)
			db.MustCreateSequence("b", c, seqproc.Sparse)
			q, err := db.Query("sum(prev(select(compose(a, b), a.close > b.close)), a.close, 16)")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Run(span); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: §3.1 rewrite ablation ------------------------------------------

func benchE8(b *testing.B, opts seqproc.Options) {
	b.Helper()
	const scale = 10
	ibm, dec, hp, err := workload.Table1(scale)
	if err != nil {
		b.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("ibm", ibm, seqproc.Sparse)
	db.MustCreateSequence("dec", dec, seqproc.Sparse)
	db.MustCreateSequence("hp", hp, seqproc.Dense)
	db.SetOptions(opts)
	q, err := db.Query(`project(
	    select(offset(compose(dec, compose(ibm, hp) as ih), -3),
	           ibm.close > hp.close and dec.close > 103.0),
	    dec.close)`)
	if err != nil {
		b.Fatal(err)
	}
	span := seqproc.NewSpan(1, 750*scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Run(span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_RewritesOn(b *testing.B)  { benchE8(b, seqproc.Options{}) }
func BenchmarkE8_RewritesOff(b *testing.B) { benchE8(b, seqproc.Options{DisableRewrites: true}) }

// --- Micro-benchmarks of the substrates ---------------------------------

func BenchmarkStorageScan(b *testing.B) {
	data, err := workload.Stock(workload.StockConfig{Name: "s", Span: seq.NewSpan(1, 100_000), Density: 1, Seed: 51})
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []storage.Kind{storage.KindDense, storage.KindSparse} {
		b.Run(kind.String(), func(b *testing.B) {
			store, err := storage.FromMaterialized(data, kind, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur := store.Scan(seq.AllSpan)
				for {
					if _, _, ok := cur.Next(); !ok {
						break
					}
				}
				cur.Close()
			}
		})
	}
}

func BenchmarkStorageProbe(b *testing.B) {
	data, err := workload.Stock(workload.StockConfig{Name: "s", Span: seq.NewSpan(1, 100_000), Density: 1, Seed: 51})
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []storage.Kind{storage.KindDense, storage.KindSparse} {
		b.Run(kind.String(), func(b *testing.B) {
			store, err := storage.FromMaterialized(data, kind, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Probe(seq.Pos(i%100_000) + 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParser(b *testing.B) {
	db := seqproc.New()
	data, err := workload.Stock(workload.StockConfig{Name: "s", Span: seq.NewSpan(1, 16), Density: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	db.MustCreateSequence("ibm", data, seqproc.Sparse)
	db.MustCreateSequence("hp", data, seqproc.Sparse)
	const src = "project(select(compose(ibm, hp), ibm.close > hp.close and ibm.volume > 100), ibm.close)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions: ordering domains, groupings, trigger mode --------------

func BenchmarkDomainCollapse(b *testing.B) {
	const n = 100_000
	data, err := workload.Stock(workload.StockConfig{Name: "d", Span: seq.NewSpan(1, n), Density: 1, Seed: 61})
	if err != nil {
		b.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("daily", data, seqproc.Dense)
	q, err := db.Query("collapse(daily, avg(close), 7)")
	if err != nil {
		b.Fatal(err)
	}
	span := seqproc.NewSpan(0, n/7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Run(span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDomainExpandRoundTrip(b *testing.B) {
	const n = 70_000
	data, err := workload.Stock(workload.StockConfig{Name: "d", Span: seq.NewSpan(1, n), Density: 1, Seed: 62})
	if err != nil {
		b.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("daily", data, seqproc.Dense)
	q, err := db.Query("select(compose(daily as d, expand(collapse(daily, avg(close), 7), 7) as w), d.close > w.avg)")
	if err != nil {
		b.Fatal(err)
	}
	span := seqproc.NewSpan(1, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Run(span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonitorPoll(b *testing.B) {
	schema := seqproc.MustSchema(seqproc.Field{Name: "v", Type: seqproc.TFloat})
	empty, err := seqproc.NewData(schema, nil)
	if err != nil {
		b.Fatal(err)
	}
	db := seqproc.New()
	db.MustCreateSequence("s", empty, seqproc.Sparse)
	mon, err := db.Monitor("select(avg(s, v, 4), avg > 0.9)", 0)
	if err != nil {
		b.Fatal(err)
	}
	pos := seqproc.Pos(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One arriving record plus one poll: the per-item trigger cost.
		pos++
		if err := db.Append("s", pos, seqproc.Record{seqproc.Float(float64(i%100) / 100)}); err != nil {
			b.Fatal(err)
		}
		if _, err := mon.Poll(pos); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizerPipeline(b *testing.B) {
	// The fixed cost of Steps 1-6 on a moderately complex query.
	db := seqproc.New()
	ibm, dec, hp, err := workload.Table1(1)
	if err != nil {
		b.Fatal(err)
	}
	db.MustCreateSequence("ibm", ibm, seqproc.Sparse)
	db.MustCreateSequence("dec", dec, seqproc.Sparse)
	db.MustCreateSequence("hp", hp, seqproc.Dense)
	q, err := db.Query(`project(select(compose(dec, compose(ibm, hp) as ih),
	    ibm.close > hp.close and dec.close > 100.0), dec.close)`)
	if err != nil {
		b.Fatal(err)
	}
	span := seqproc.NewSpan(1, 750)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := q.EstimatedCost(span); err != nil {
			b.Fatal(err)
		}
	}
}
