package seqproc

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/seq"
)

// ReadCSV parses sequence data from CSV. The first row is a header; one
// column must be named "pos" (the record's position), and the remaining
// columns become the record schema. Column types are inferred from the
// first data row: int, then float, then bool, else string. Rows may
// arrive in any order; duplicate positions are an error.
func ReadCSV(r io.Reader) (*SequenceData, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("seqproc: reading CSV header: %w", err)
	}
	posCol := -1
	for i, name := range header {
		if strings.EqualFold(strings.TrimSpace(name), "pos") {
			posCol = i
			break
		}
	}
	if posCol < 0 {
		return nil, fmt.Errorf("seqproc: CSV needs a %q column, header was %v", "pos", header)
	}
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("seqproc: reading CSV rows: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("seqproc: CSV has no data rows")
	}

	// Infer the column types from the first data row.
	fields := make([]Field, 0, len(header)-1)
	var colIdx []int // CSV column for each schema field
	for i, name := range header {
		if i == posCol {
			continue
		}
		fields = append(fields, Field{
			Name: strings.TrimSpace(name),
			Type: inferType(rows[0][i]),
		})
		colIdx = append(colIdx, i)
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}

	entries := make([]Entry, 0, len(rows))
	for rn, row := range rows {
		if len(row) != len(header) {
			return nil, fmt.Errorf("seqproc: CSV row %d has %d fields, want %d", rn+2, len(row), len(header))
		}
		pos, err := strconv.ParseInt(strings.TrimSpace(row[posCol]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seqproc: CSV row %d: bad position %q", rn+2, row[posCol])
		}
		rec := make(Record, len(fields))
		for k, f := range fields {
			v, err := parseValue(row[colIdx[k]], f.Type)
			if err != nil {
				return nil, fmt.Errorf("seqproc: CSV row %d, column %q: %w", rn+2, f.Name, err)
			}
			rec[k] = v
		}
		entries = append(entries, Entry{Pos: pos, Rec: rec})
	}
	return NewData(schema, entries)
}

func inferType(cell string) Type {
	cell = strings.TrimSpace(cell)
	if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return TInt
	}
	if _, err := strconv.ParseFloat(cell, 64); err == nil {
		return TFloat
	}
	if _, err := strconv.ParseBool(cell); err == nil {
		return TBool
	}
	return TString
}

func parseValue(cell string, t Type) (Value, error) {
	cell = strings.TrimSpace(cell)
	switch t {
	case TInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad int %q", cell)
		}
		return Int(n), nil
	case TFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad float %q", cell)
		}
		return Float(f), nil
	case TBool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return Value{}, fmt.Errorf("bad bool %q", cell)
		}
		return Bool(b), nil
	default:
		return Str(cell), nil
	}
}

// WriteCSV writes sequence data as CSV with a "pos" column followed by
// the schema's attributes, in positional order.
func WriteCSV(w io.Writer, data *SequenceData) error {
	cw := csv.NewWriter(w)
	schema := data.Info().Schema
	header := make([]string, 0, schema.NumFields()+1)
	header = append(header, "pos")
	for i := 0; i < schema.NumFields(); i++ {
		header = append(header, schema.Field(i).Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, e := range data.Entries() {
		row[0] = strconv.FormatInt(e.Pos, 10)
		for i, v := range e.Rec {
			row[i+1] = renderValue(v)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func renderValue(v Value) string {
	switch v.T {
	case seq.TInt:
		return strconv.FormatInt(v.AsInt(), 10)
	case seq.TFloat:
		return strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
	case seq.TBool:
		return strconv.FormatBool(v.AsBool())
	default:
		return v.AsStr()
	}
}
