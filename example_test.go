package seqproc_test

import (
	"fmt"
	"log"

	seqproc "repro"
)

// tempSchema is shared by the examples below.
var tempSchema = seqproc.MustSchema(seqproc.Field{Name: "temp", Type: seqproc.TFloat})

func tempData(vals map[seqproc.Pos]float64) *seqproc.SequenceData {
	entries := make([]seqproc.Entry, 0, len(vals))
	for p, v := range vals {
		entries = append(entries, seqproc.Entry{Pos: p, Rec: seqproc.Record{seqproc.Float(v)}})
	}
	data, err := seqproc.NewData(tempSchema, entries)
	if err != nil {
		log.Fatal(err)
	}
	return data
}

// The basic flow: register a sequence, run a SEQL query over a range.
func Example() {
	db := seqproc.New()
	db.MustCreateSequence("readings", tempData(map[seqproc.Pos]float64{
		1: 12.5, 2: 14.0, 4: 19.5, 5: 16.0,
	}), seqproc.Sparse)

	q, err := db.Query("select(readings, temp > 13.0)")
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Run(seqproc.NewSpan(1, 5))
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Entries() {
		fmt.Printf("day %d: %.1f\n", e.Pos, e.Rec[0].AsFloat())
	}
	// Output:
	// day 2: 14.0
	// day 4: 19.5
	// day 5: 16.0
}

// Moving aggregates ignore gaps: the window average uses whatever
// records fall inside the window.
func ExampleQuery_Run_movingAverage() {
	db := seqproc.New()
	db.MustCreateSequence("readings", tempData(map[seqproc.Pos]float64{
		1: 10, 2: 20, 4: 40,
	}), seqproc.Sparse)

	q, _ := db.Query("avg(readings, temp, 2)")
	res, _ := q.Run(seqproc.NewSpan(1, 5))
	for _, e := range res.Entries() {
		fmt.Printf("%d: %.0f\n", e.Pos, e.Rec[0].AsFloat())
	}
	// Output:
	// 1: 10
	// 2: 15
	// 3: 20
	// 4: 40
	// 5: 40
}

// Previous finds the most recent earlier record regardless of gaps —
// the operator behind the paper's volcano/earthquake query.
func ExampleQuery_Run_previous() {
	db := seqproc.New()
	db.MustCreateSequence("quakes", tempData(map[seqproc.Pos]float64{
		2: 6.0, 5: 7.5,
	}), seqproc.Sparse)

	q, _ := db.Query("prev(quakes)")
	res, _ := q.Run(seqproc.NewSpan(1, 7))
	for _, e := range res.Entries() {
		fmt.Printf("%d: %.1f\n", e.Pos, e.Rec[0].AsFloat())
	}
	// Output:
	// 3: 6.0
	// 4: 6.0
	// 5: 6.0
	// 6: 7.5
	// 7: 7.5
}

// Collapse aggregates a fine-grained sequence into a coarser ordering
// domain (here: positions 0-2 become group 0, 3-5 group 1).
func ExampleQuery_Run_collapse() {
	db := seqproc.New()
	db.MustCreateSequence("daily", tempData(map[seqproc.Pos]float64{
		0: 10, 1: 20, 3: 30, 5: 50,
	}), seqproc.Sparse)

	q, _ := db.Query("collapse(daily, avg(temp), 3)")
	res, _ := q.Run(seqproc.NewSpan(0, 1))
	for _, e := range res.Entries() {
		fmt.Printf("group %d: %.0f\n", e.Pos, e.Rec[0].AsFloat())
	}
	// Output:
	// group 0: 15
	// group 1: 40
}

// Explain shows the optimizer's physical plan with strategy choices.
func ExampleQuery_Explain() {
	db := seqproc.New()
	db.MustCreateSequence("readings", tempData(map[seqproc.Pos]float64{1: 10}), seqproc.Sparse)
	q, _ := db.Query("sum(readings, temp, 3)")
	plan, _ := q.Explain(seqproc.NewSpan(1, 3))
	fmt.Println(plan[:5]) // "plan " prefix; full text includes costs
	// Output:
	// plan
}
