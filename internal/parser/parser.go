package parser

import (
	"fmt"
	"strconv"
)

// The AST is untyped: name resolution and type checking happen in the
// binder against a catalog.

// Ast is an untyped expression node.
type Ast interface{ astNode() }

// AstIdent is a possibly qualified identifier (a, a.b).
type AstIdent struct {
	Parts []string
	Pos   int
}

// AstNumber is a numeric literal.
type AstNumber struct {
	Text  string
	IsInt bool
	Pos   int
}

// AstString is a string literal.
type AstString struct {
	Val string
	Pos int
}

// AstBinary is a binary operation ("and", "or", "<", "+", ...).
type AstBinary struct {
	Op   string
	L, R Ast
	Pos  int
}

// AstUnary is negation ("-", "not").
type AstUnary struct {
	Op  string
	E   Ast
	Pos int
}

// AstCall is a function call — operator constructors and nothing else.
type AstCall struct {
	Name string
	Args []AstArg
	Pos  int
}

// AstArg is one call argument with an optional "as" alias.
type AstArg struct {
	E     Ast
	Alias string
}

func (*AstIdent) astNode()  {}
func (*AstNumber) astNode() {}
func (*AstString) astNode() {}
func (*AstBinary) astNode() {}
func (*AstUnary) astNode()  {}
func (*AstCall) astNode()   {}

// Parse turns SEQL source into an AST.
func Parse(src string) (Ast, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

type parser struct {
	toks []token
	at   int
}

func (p *parser) peek() token { return p.toks[p.at] }

func (p *parser) next() token {
	t := p.toks[p.at]
	if t.kind != tokEOF {
		p.at++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("parser: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, p.errf("expected %s, got %q", what, t.text)
	}
	return p.next(), nil
}

// isKeyword reports whether the current token is the given word.
func (p *parser) isKeyword(word string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == word
}

// expr := orExpr
func (p *parser) expr() (Ast, error) { return p.orExpr() }

func (p *parser) orExpr() (Ast, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		pos := p.next().pos
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &AstBinary{Op: "or", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) andExpr() (Ast, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		pos := p.next().pos
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &AstBinary{Op: "and", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) notExpr() (Ast, error) {
	if p.isKeyword("not") {
		pos := p.next().pos
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &AstUnary{Op: "not", E: e, Pos: pos}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Ast, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		switch t.text {
		case "<", "<=", ">", ">=", "=", "!=", "<>":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &AstBinary{Op: t.text, L: l, R: r, Pos: t.pos}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Ast, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &AstBinary{Op: t.text, L: l, R: r, Pos: t.pos}
	}
}

func (p *parser) mulExpr() (Ast, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &AstBinary{Op: t.text, L: l, R: r, Pos: t.pos}
	}
}

func (p *parser) unaryExpr() (Ast, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "-" {
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &AstUnary{Op: "-", E: e, Pos: t.pos}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Ast, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		isInt := true
		if _, err := strconv.ParseInt(t.text, 10, 64); err != nil {
			isInt = false
			if _, err := strconv.ParseFloat(t.text, 64); err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
		}
		return &AstNumber{Text: t.text, IsInt: isInt, Pos: t.pos}, nil
	case tokString:
		p.next()
		return &AstString{Val: t.text, Pos: t.pos}, nil
	case tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch t.text {
		case "true", "false":
			p.next()
			return &AstIdent{Parts: []string{t.text}, Pos: t.pos}, nil
		}
		p.next()
		if p.peek().kind == tokLParen {
			return p.call(t)
		}
		parts := []string{t.text}
		for p.peek().kind == tokDot {
			p.next()
			id, err := p.expect(tokIdent, "identifier after '.'")
			if err != nil {
				return nil, err
			}
			parts = append(parts, id.text)
		}
		return &AstIdent{Parts: parts, Pos: t.pos}, nil
	default:
		return nil, p.errf("unexpected %q", t.text)
	}
}

func (p *parser) call(name token) (Ast, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	c := &AstCall{Name: name.text, Pos: name.pos}
	if p.peek().kind == tokRParen {
		p.next()
		return c, nil
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		arg := AstArg{E: e}
		if p.isKeyword("as") {
			p.next()
			id, err := p.expect(tokIdent, "alias after 'as'")
			if err != nil {
				return nil, err
			}
			arg.Alias = id.text
		}
		c.Args = append(c.Args, arg)
		t := p.next()
		switch t.kind {
		case tokComma:
			continue
		case tokRParen:
			return c, nil
		default:
			return nil, p.errf("expected ',' or ')' in call, got %q", t.text)
		}
	}
}
