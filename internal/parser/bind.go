package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

// Catalog resolves sequence names to base algebra nodes.
type Catalog interface {
	// Resolve returns the base node for a named sequence.
	Resolve(name string) (*algebra.Node, bool)
}

// CatalogFunc adapts a function to the Catalog interface.
type CatalogFunc func(name string) (*algebra.Node, bool)

// Resolve implements Catalog.
func (f CatalogFunc) Resolve(name string) (*algebra.Node, bool) { return f(name) }

// Bind parses SEQL source and binds it against the catalog, producing a
// logical query graph.
func Bind(src string, cat Catalog) (*algebra.Node, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	b := &binder{cat: cat}
	return b.node(ast)
}

type binder struct {
	cat Catalog
}

// aggWindows maps function-name prefixes to window constructors.
var aggFuncs = map[string]algebra.AggFunc{
	"sum": algebra.AggSum, "avg": algebra.AggAvg, "min": algebra.AggMin,
	"max": algebra.AggMax, "count": algebra.AggCount,
}

// node binds an AST node that must denote a sequence.
func (b *binder) node(a Ast) (*algebra.Node, error) {
	switch v := a.(type) {
	case *AstIdent:
		if len(v.Parts) != 1 {
			return nil, fmt.Errorf("parser: %q is not a sequence name", strings.Join(v.Parts, "."))
		}
		n, ok := b.cat.Resolve(v.Parts[0])
		if !ok {
			return nil, fmt.Errorf("parser: unknown sequence %q", v.Parts[0])
		}
		return n, nil
	case *AstCall:
		return b.call(v)
	default:
		return nil, fmt.Errorf("parser: expected a sequence expression, got %T", a)
	}
}

func (b *binder) call(c *AstCall) (*algebra.Node, error) {
	name := strings.ToLower(c.Name)
	if f, ok := aggFuncs[name]; ok {
		return b.agg(c, f, false)
	}
	if strings.HasPrefix(name, "r") {
		if f, ok := aggFuncs[name[1:]]; ok {
			return b.agg(c, f, true)
		}
	}
	switch name {
	case "select":
		return b.selectCall(c)
	case "project":
		return b.projectCall(c)
	case "compose":
		return b.composeCall(c)
	case "offset":
		return b.offsetCall(c)
	case "voffset":
		return b.voffsetCall(c, 0)
	case "prev", "previous":
		return b.voffsetCall(c, -1)
	case "next":
		return b.voffsetCall(c, +1)
	case "collapse":
		return b.collapseCall(c)
	case "expand":
		return b.expandCall(c)
	default:
		return nil, fmt.Errorf("parser: unknown operator %q", c.Name)
	}
}

// collapseCall binds the §5.1 domain-coarsening operator:
//
//	collapse(S, avg(close), 7)   -- weekly average of a daily series
//	collapse(S, count(), 7)      -- records per week
func (b *binder) collapseCall(c *AstCall) (*algebra.Node, error) {
	if err := b.arity(c, 3, 3); err != nil {
		return nil, err
	}
	in, err := b.node(c.Args[0].E)
	if err != nil {
		return nil, err
	}
	aggAst, ok := c.Args[1].E.(*AstCall)
	if !ok {
		return nil, fmt.Errorf("parser: collapse expects an aggregate call like avg(close), got %T", c.Args[1].E)
	}
	f, known := aggFuncs[strings.ToLower(aggAst.Name)]
	if !known {
		return nil, fmt.Errorf("parser: unknown aggregate %q in collapse", aggAst.Name)
	}
	arg := -1
	switch {
	case f == algebra.AggCount && len(aggAst.Args) == 0:
	case len(aggAst.Args) == 1:
		id, ok := aggAst.Args[0].E.(*AstIdent)
		if !ok {
			return nil, fmt.Errorf("parser: %s in collapse expects an attribute name", aggAst.Name)
		}
		arg, err = resolveCol(in.Schema, id)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("parser: %s in collapse expects one attribute argument", aggAst.Name)
	}
	factor, err := intArgOf(c, c.Args[2])
	if err != nil {
		return nil, err
	}
	as := c.Args[1].Alias
	if as == "" {
		as = strings.ToLower(aggAst.Name)
	}
	return algebra.Collapse(in, factor, algebra.AggSpec{Func: f, Arg: arg, As: as})
}

// expandCall binds the §5.1 domain-refining operator: expand(S, 7).
func (b *binder) expandCall(c *AstCall) (*algebra.Node, error) {
	if err := b.arity(c, 2, 2); err != nil {
		return nil, err
	}
	in, err := b.node(c.Args[0].E)
	if err != nil {
		return nil, err
	}
	factor, err := intArgOf(c, c.Args[1])
	if err != nil {
		return nil, err
	}
	return algebra.Expand(in, factor)
}

func (b *binder) arity(c *AstCall, min, max int) error {
	if len(c.Args) < min || len(c.Args) > max {
		if min == max {
			return fmt.Errorf("parser: %s expects %d arguments, got %d", c.Name, min, len(c.Args))
		}
		return fmt.Errorf("parser: %s expects %d to %d arguments, got %d", c.Name, min, max, len(c.Args))
	}
	return nil
}

func (b *binder) selectCall(c *AstCall) (*algebra.Node, error) {
	if err := b.arity(c, 2, 2); err != nil {
		return nil, err
	}
	in, err := b.node(c.Args[0].E)
	if err != nil {
		return nil, err
	}
	pred, err := b.scalar(c.Args[1].E, in.Schema)
	if err != nil {
		return nil, err
	}
	return algebra.Select(in, pred)
}

func (b *binder) projectCall(c *AstCall) (*algebra.Node, error) {
	if err := b.arity(c, 2, 64); err != nil {
		return nil, err
	}
	in, err := b.node(c.Args[0].E)
	if err != nil {
		return nil, err
	}
	items := make([]algebra.ProjItem, 0, len(c.Args)-1)
	for _, arg := range c.Args[1:] {
		e, err := b.scalar(arg.E, in.Schema)
		if err != nil {
			return nil, err
		}
		name := arg.Alias
		if name == "" {
			if id, ok := arg.E.(*AstIdent); ok {
				name = id.Parts[len(id.Parts)-1]
			}
		}
		items = append(items, algebra.ProjItem{Expr: e, Name: name})
	}
	return algebra.Project(in, items)
}

func (b *binder) composeCall(c *AstCall) (*algebra.Node, error) {
	if err := b.arity(c, 2, 3); err != nil {
		return nil, err
	}
	l, err := b.node(c.Args[0].E)
	if err != nil {
		return nil, err
	}
	r, err := b.node(c.Args[1].E)
	if err != nil {
		return nil, err
	}
	lq := c.Args[0].Alias
	if lq == "" {
		lq = defaultQual(c.Args[0].E, "l")
	}
	rq := c.Args[1].Alias
	if rq == "" {
		rq = defaultQual(c.Args[1].E, "r")
	}
	var pred expr.Expr
	if len(c.Args) == 3 {
		schema, err := algebra.ComposeSchema(l, r, lq, rq)
		if err != nil {
			return nil, err
		}
		pred, err = b.scalar(c.Args[2].E, schema)
		if err != nil {
			return nil, err
		}
	}
	return algebra.Compose(l, r, pred, lq, rq)
}

// defaultQual derives a compose qualifier from a bare sequence name.
func defaultQual(a Ast, fallback string) string {
	if id, ok := a.(*AstIdent); ok && len(id.Parts) == 1 {
		return id.Parts[0]
	}
	return fallback
}

func (b *binder) offsetCall(c *AstCall) (*algebra.Node, error) {
	if err := b.arity(c, 2, 2); err != nil {
		return nil, err
	}
	in, err := b.node(c.Args[0].E)
	if err != nil {
		return nil, err
	}
	l, err := intArg(c, 1)
	if err != nil {
		return nil, err
	}
	return algebra.PosOffset(in, l)
}

// voffsetCall binds prev/next/voffset. fixed != 0 selects the prev/next
// short forms, whose optional second argument scales the offset.
func (b *binder) voffsetCall(c *AstCall, fixed int64) (*algebra.Node, error) {
	minArgs := 1
	if fixed == 0 {
		minArgs = 2
	}
	if err := b.arity(c, minArgs, 2); err != nil {
		return nil, err
	}
	in, err := b.node(c.Args[0].E)
	if err != nil {
		return nil, err
	}
	switch {
	case fixed == 0:
		k, err := intArg(c, 1)
		if err != nil {
			return nil, err
		}
		return algebra.ValueOffset(in, k)
	default:
		if err := b.arity(c, 1, 2); err != nil {
			return nil, err
		}
		k := int64(1)
		if len(c.Args) == 2 {
			var err error
			k, err = intArg(c, 1)
			if err != nil {
				return nil, err
			}
			if k <= 0 {
				return nil, fmt.Errorf("parser: %s count must be positive, got %d", c.Name, k)
			}
		}
		return algebra.ValueOffset(in, fixed*k)
	}
}

// agg binds sum/avg/min/max/count and their running r-variants:
//
//	sum(S, col)            whole-sequence sum
//	sum(S, col, w)         moving sum over the trailing w positions
//	sum(S, col, lo, hi)    sum over the relative window [lo, hi]
//	rsum(S, col)           running (cumulative) sum
//	count(S[, w])          record count (no attribute needed)
func (b *binder) agg(c *AstCall, f algebra.AggFunc, running bool) (*algebra.Node, error) {
	minArgs := 2
	if f == algebra.AggCount {
		minArgs = 1
	}
	if err := b.arity(c, minArgs, minArgs+2); err != nil {
		return nil, err
	}
	in, err := b.node(c.Args[0].E)
	if err != nil {
		return nil, err
	}
	arg := -1
	rest := c.Args[1:]
	if f != algebra.AggCount {
		id, ok := c.Args[1].E.(*AstIdent)
		if !ok {
			return nil, fmt.Errorf("parser: %s expects an attribute name as second argument", c.Name)
		}
		arg, err = resolveCol(in.Schema, id)
		if err != nil {
			return nil, err
		}
		rest = c.Args[2:]
	} else if len(c.Args) > 1 {
		// count(S, w) — the remaining args are window parameters.
		rest = c.Args[1:]
	}
	var w algebra.Window
	switch {
	case running:
		if len(rest) != 0 {
			return nil, fmt.Errorf("parser: running %s takes no window arguments", c.Name)
		}
		w = algebra.Cumulative()
	case len(rest) == 0:
		w = algebra.All()
	case len(rest) == 1:
		width, err := intArgOf(c, rest[0])
		if err != nil {
			return nil, err
		}
		if width <= 0 {
			return nil, fmt.Errorf("parser: window width must be positive, got %d", width)
		}
		w = algebra.Trailing(width)
	default:
		lo, err := intArgOf(c, rest[0])
		if err != nil {
			return nil, err
		}
		hi, err := intArgOf(c, rest[1])
		if err != nil {
			return nil, err
		}
		w = algebra.Range(lo, hi)
	}
	as := strings.ToLower(c.Name)
	return algebra.Agg(in, algebra.AggSpec{Func: f, Arg: arg, Window: w, As: as})
}

func intArg(c *AstCall, i int) (int64, error) {
	return intArgOf(c, c.Args[i])
}

func intArgOf(c *AstCall, arg AstArg) (int64, error) {
	switch v := arg.E.(type) {
	case *AstNumber:
		if v.IsInt {
			return strconv.ParseInt(v.Text, 10, 64)
		}
	case *AstUnary:
		if v.Op == "-" {
			n, err := intArgOf(c, AstArg{E: v.E})
			return -n, err
		}
	}
	return 0, fmt.Errorf("parser: %s expects an integer argument", c.Name)
}

// resolveCol resolves a possibly qualified attribute name.
func resolveCol(schema *seq.Schema, id *AstIdent) (int, error) {
	full := strings.Join(id.Parts, ".")
	if i := schema.Index(full); i >= 0 {
		return i, nil
	}
	if len(id.Parts) > 1 {
		if i := schema.Index(id.Parts[len(id.Parts)-1]); i >= 0 {
			return i, nil
		}
	}
	return -1, fmt.Errorf("parser: unknown attribute %q in %v", full, schema)
}

// scalar binds an AST expression to a typed expression over the schema.
func (b *binder) scalar(a Ast, schema *seq.Schema) (expr.Expr, error) {
	switch v := a.(type) {
	case *AstIdent:
		switch strings.Join(v.Parts, ".") {
		case "true":
			return expr.Literal(seq.Bool(true)), nil
		case "false":
			return expr.Literal(seq.Bool(false)), nil
		}
		i, err := resolveCol(schema, v)
		if err != nil {
			return nil, err
		}
		return expr.ColAt(schema, i)
	case *AstNumber:
		if v.IsInt {
			n, err := strconv.ParseInt(v.Text, 10, 64)
			if err != nil {
				return nil, err
			}
			return expr.Literal(seq.Int(n)), nil
		}
		f, err := strconv.ParseFloat(v.Text, 64)
		if err != nil {
			return nil, err
		}
		return expr.Literal(seq.Float(f)), nil
	case *AstString:
		return expr.Literal(seq.Str(v.Val)), nil
	case *AstUnary:
		inner, err := b.scalar(v.E, schema)
		if err != nil {
			return nil, err
		}
		if v.Op == "not" {
			return expr.NewNot(inner)
		}
		return expr.NewNeg(inner)
	case *AstBinary:
		l, err := b.scalar(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := b.scalar(v.R, schema)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[v.Op]
		if !ok {
			return nil, fmt.Errorf("parser: unknown operator %q", v.Op)
		}
		return expr.NewBin(op, l, r)
	case *AstCall:
		fn, ok := expr.LookupFunc(strings.ToLower(v.Name))
		if !ok {
			return nil, fmt.Errorf("parser: %s is not a scalar function (operators cannot appear in scalar expressions)", v.Name)
		}
		args := make([]expr.Expr, len(v.Args))
		for i, a := range v.Args {
			na, err := b.scalar(a.E, schema)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return expr.NewCall(fn, args)
	default:
		return nil, fmt.Errorf("parser: unexpected scalar %T", a)
	}
}

var binOps = map[string]expr.BinOp{
	"+": expr.OpAdd, "-": expr.OpSub, "*": expr.OpMul, "/": expr.OpDiv, "%": expr.OpMod,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
	"=": expr.OpEq, "!=": expr.OpNe, "<>": expr.OpNe,
	"and": expr.OpAnd, "or": expr.OpOr,
}
