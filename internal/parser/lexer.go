// Package parser implements SEQL, a small functional query language for
// building sequence-algebra graphs textually:
//
//	project(select(compose(ibm, hp, ibm.close > hp.close), volume >= 100), ibm.close)
//	sum(ibm, close, 6)                      -- moving 6-position sum
//	prev(select(earthquakes, strength > 7))
//	offset(dec, -5)
//
// The paper explicitly defers query-language design ("we do not consider
// query language issues", §5); SEQL exists so the CLI and the examples
// can express queries compactly. Parsing is two-phase: a recursive-
// descent parser produces an untyped AST, and a binder resolves sequence
// and attribute names against a catalog to build the typed algebra graph.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokOp // comparison/arithmetic operator
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	at   int
	toks []token
}

// lex tokenizes the source, returning a friendly error with the offset
// of the offending character.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.at >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.at]
		switch {
		case c == '(':
			l.emit(tokLParen, "(")
			l.at++
		case c == ')':
			l.emit(tokRParen, ")")
			l.at++
		case c == ',':
			l.emit(tokComma, ",")
			l.at++
		case c == '.' && !l.digitAt(l.at+1):
			l.emit(tokDot, ".")
			l.at++
		case isIdentStart(rune(c)):
			l.ident()
		case unicode.IsDigit(rune(c)) || (c == '.' && l.digitAt(l.at+1)):
			if err := l.number(); err != nil {
				return nil, err
			}
		case c == '\'' || c == '"':
			if err := l.str(c); err != nil {
				return nil, err
			}
		case strings.ContainsRune("<>=!+-*/%", rune(c)):
			l.operator()
		default:
			return nil, fmt.Errorf("parser: unexpected character %q at offset %d", c, l.at)
		}
	}
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.at})
}

func (l *lexer) skipSpace() {
	for l.at < len(l.src) {
		c := l.src[l.at]
		if c == '-' && l.at+1 < len(l.src) && l.src[l.at+1] == '-' {
			// Line comment.
			for l.at < len(l.src) && l.src[l.at] != '\n' {
				l.at++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.at++
			continue
		}
		return
	}
}

func (l *lexer) digitAt(i int) bool {
	return i < len(l.src) && l.src[i] >= '0' && l.src[i] <= '9'
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) ident() {
	start := l.at
	for l.at < len(l.src) && isIdentPart(rune(l.src[l.at])) {
		l.at++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.at], pos: start})
}

func (l *lexer) number() error {
	start := l.at
	seenDot := false
	for l.at < len(l.src) {
		c := l.src[l.at]
		if c >= '0' && c <= '9' {
			l.at++
			continue
		}
		if c == '.' && !seenDot && l.digitAt(l.at+1) {
			seenDot = true
			l.at++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.at], pos: start})
	return nil
}

func (l *lexer) str(quote byte) error {
	start := l.at
	l.at++ // opening quote
	var b strings.Builder
	for l.at < len(l.src) {
		c := l.src[l.at]
		if c == quote {
			l.at++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		if c == '\\' && l.at+1 < len(l.src) {
			l.at++
			c = l.src[l.at]
		}
		b.WriteByte(c)
		l.at++
	}
	return fmt.Errorf("parser: unterminated string starting at offset %d", start)
}

func (l *lexer) operator() {
	start := l.at
	two := ""
	if l.at+1 < len(l.src) {
		two = l.src[l.at : l.at+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.at += 2
	default:
		l.at++
	}
	l.toks = append(l.toks, token{kind: tokOp, text: l.src[start:l.at], pos: start})
}
