package parser

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/seq"
)

// FuzzBind checks that arbitrary input never panics the lexer, parser or
// binder — it must either bind cleanly or return an error.
func FuzzBind(f *testing.F) {
	seeds := []string{
		"select(ibm, close > 7.0)",
		"project(compose(ibm, hp, ibm.close > hp.close), ibm.close)",
		"sum(prev(ibm), close, 6)",
		"collapse(ibm, avg(close), 7)",
		"expand(ibm, 3)",
		"rsum(ibm, close)",
		"select(ibm, 'str' = \"str\" and not false)",
		"offset(ibm, -5)",
		"((((",
		"select(ibm, close > )",
		"1.2.3.4",
		"ibm as as as",
		"compose(ibm", "avg()", "-- comment only",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := seq.MustSchema(
		seq.Field{Name: "close", Type: seq.TFloat},
		seq.Field{Name: "volume", Type: seq.TInt},
	)
	m := seq.MustMaterialized(schema, []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Float(1), seq.Int(1)}},
	})
	cat := CatalogFunc(func(name string) (*algebra.Node, bool) {
		if name == "ibm" || name == "hp" {
			return algebra.Base(name, m), true
		}
		return nil, false
	})
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Bind(src, cat)
		if err == nil && n == nil {
			t.Fatal("nil node without error")
		}
	})
}
