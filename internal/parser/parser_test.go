package parser

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/seq"
)

var stockSchema = seq.MustSchema(
	seq.Field{Name: "close", Type: seq.TFloat},
	seq.Field{Name: "volume", Type: seq.TInt},
)

func testCatalog(t *testing.T) Catalog {
	t.Helper()
	mk := func(name string) *algebra.Node {
		return algebra.Base(name, seq.MustMaterialized(stockSchema, []seq.Entry{
			{Pos: 1, Rec: seq.Record{seq.Float(10), seq.Int(100)}},
			{Pos: 2, Rec: seq.Record{seq.Float(20), seq.Int(200)}},
			{Pos: 3, Rec: seq.Record{seq.Float(30), seq.Int(300)}},
		}))
	}
	seqs := map[string]*algebra.Node{"ibm": mk("ibm"), "hp": mk("hp"), "dec": mk("dec")}
	return CatalogFunc(func(name string) (*algebra.Node, bool) {
		n, ok := seqs[name]
		return n, ok
	})
}

func bind(t *testing.T, src string) *algebra.Node {
	t.Helper()
	n, err := Bind(src, testCatalog(t))
	if err != nil {
		t.Fatalf("Bind(%q): %v", src, err)
	}
	return n
}

func bindErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Bind(src, testCatalog(t))
	if err == nil {
		t.Fatalf("Bind(%q) succeeded, want error", src)
	}
	return err
}

func run(t *testing.T, src string, span seq.Span) []seq.Entry {
	t.Helper()
	out, err := algebra.EvalRange(bind(t, src), span)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return out
}

func TestBindBase(t *testing.T) {
	n := bind(t, "ibm")
	if n.Kind != algebra.KindBase || n.Name != "ibm" {
		t.Errorf("node = %v", n)
	}
	bindErr(t, "ghost")
}

func TestBindSelect(t *testing.T) {
	n := bind(t, "select(ibm, close > 15)")
	if n.Kind != algebra.KindSelect {
		t.Fatalf("node = %v", n)
	}
	out := run(t, "select(ibm, close > 15 and volume < 300)", seq.NewSpan(1, 3))
	if len(out) != 1 || out[0].Pos != 2 {
		t.Errorf("result = %v", out)
	}
	bindErr(t, "select(ibm)")
	bindErr(t, "select(ibm, nope > 3)")
	bindErr(t, "select(ibm, close + 1)") // non-bool predicate
}

func TestBindProject(t *testing.T) {
	n := bind(t, "project(ibm, close, close * 2 as twice)")
	if n.Schema.NumFields() != 2 || n.Schema.Field(1).Name != "twice" {
		t.Errorf("schema = %v", n.Schema)
	}
	out := run(t, "project(ibm, close + volume as total)", seq.NewSpan(1, 1))
	if len(out) != 1 || out[0].Rec[0].AsFloat() != 110 {
		t.Errorf("result = %v", out)
	}
}

func TestBindCompose(t *testing.T) {
	n := bind(t, "compose(ibm, hp, ibm.close >= hp.close)")
	if n.Kind != algebra.KindCompose || n.Pred == nil {
		t.Fatalf("node = %v", n)
	}
	// Default qualifiers come from the sequence names.
	if n.Schema.Index("ibm.close") < 0 || n.Schema.Index("hp.volume") < 0 {
		t.Errorf("schema = %v", n.Schema)
	}
	// Explicit aliases.
	n = bind(t, "compose(ibm as a, hp as b, a.close > b.close)")
	if n.Schema.Index("a.close") < 0 {
		t.Errorf("aliased schema = %v", n.Schema)
	}
	bindErr(t, "compose(ibm)")
}

func TestBindOffsets(t *testing.T) {
	n := bind(t, "offset(ibm, -5)")
	if n.Kind != algebra.KindPosOffset || n.Offset != -5 {
		t.Errorf("node = %+v", n)
	}
	n = bind(t, "prev(ibm)")
	if n.Kind != algebra.KindValueOffset || n.Offset != -1 {
		t.Errorf("prev = %+v", n)
	}
	n = bind(t, "prev(ibm, 3)")
	if n.Offset != -3 {
		t.Errorf("prev(,3) = %+v", n)
	}
	n = bind(t, "next(ibm)")
	if n.Offset != 1 {
		t.Errorf("next = %+v", n)
	}
	n = bind(t, "voffset(ibm, -2)")
	if n.Offset != -2 {
		t.Errorf("voffset = %+v", n)
	}
	bindErr(t, "offset(ibm, close)")
	bindErr(t, "prev(ibm, -1)")
	bindErr(t, "voffset(ibm, 0)")
}

func TestBindAggregates(t *testing.T) {
	cases := []struct {
		src    string
		window algebra.Window
		f      algebra.AggFunc
	}{
		{"sum(ibm, close, 6)", algebra.Trailing(6), algebra.AggSum},
		{"avg(ibm, close)", algebra.All(), algebra.AggAvg},
		{"min(ibm, close, -2, 1)", algebra.Range(-2, 1), algebra.AggMin},
		{"rsum(ibm, close)", algebra.Cumulative(), algebra.AggSum},
		{"rcount(ibm)", algebra.Cumulative(), algebra.AggCount},
		{"count(ibm, 3)", algebra.Trailing(3), algebra.AggCount},
		{"count(ibm)", algebra.All(), algebra.AggCount},
	}
	for _, c := range cases {
		n := bind(t, c.src)
		if n.Kind != algebra.KindAgg {
			t.Fatalf("%s: kind = %v", c.src, n.Kind)
		}
		if n.Agg.Func != c.f || n.Agg.Window != c.window {
			t.Errorf("%s: spec = %+v", c.src, n.Agg)
		}
	}
	out := run(t, "sum(ibm, close, 2)", seq.NewSpan(2, 2))
	if len(out) != 1 || out[0].Rec[0].AsFloat() != 30 {
		t.Errorf("sum = %v", out)
	}
	bindErr(t, "sum(ibm)")
	bindErr(t, "sum(ibm, 17, 3)")
	bindErr(t, "sum(ibm, close, 0)")
	bindErr(t, "rsum(ibm, close, 3)")
	bindErr(t, "median(ibm, close)")
}

func TestBindNested(t *testing.T) {
	src := `project(
	    compose(dec, select(compose(ibm, hp, ibm.close >= hp.close), ibm.volume > 0) as ih),
	    dec.close)`
	n := bind(t, src)
	if n.Kind != algebra.KindProject {
		t.Fatalf("kind = %v", n.Kind)
	}
	if len(n.Bases()) != 3 {
		t.Errorf("bases = %d", len(n.Bases()))
	}
}

func TestBindQualifiedSuffix(t *testing.T) {
	// "strength" style suffix resolution through a compose.
	n := bind(t, "select(compose(ibm as a, hp as b), a.volume > b.volume)")
	if n.Kind != algebra.KindSelect {
		t.Fatal("bind failed")
	}
	// Unambiguous suffix works unqualified after a non-colliding project.
	bind(t, "select(project(compose(ibm as a, hp as b), a.close as ac), ac > 1)")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select(ibm, close >", // truncated
		"select(ibm close)",   // missing comma
		"ibm hp",              // trailing junk
		"'unterminated",
		"select(ibm, close ~ 3)", // bad operator char
		"offset(ibm, 1.5)",       // non-integer offset
		"1.2.3",
	}
	for _, src := range bad {
		if _, err := Bind(src, testCatalog(t)); err == nil {
			t.Errorf("Bind(%q) succeeded, want error", src)
		}
	}
}

func TestParseLiteralsAndComments(t *testing.T) {
	out := run(t, `select(ibm, -- pick the middle record
	    close = 20.0 and not (volume != 200))`, seq.NewSpan(1, 3))
	if len(out) != 1 || out[0].Pos != 2 {
		t.Errorf("result = %v", out)
	}
	// String literals and booleans parse.
	bind(t, `select(ibm, 'x' = "x")`)
	bind(t, "select(ibm, true)")
	bind(t, "select(ibm, not false)")
}

func TestParsePrecedence(t *testing.T) {
	// 2 + 3 * 4 = 14, so close < 14 is false at pos 2 (close 20).
	out := run(t, "select(ibm, close < 2 + 3 * 4)", seq.NewSpan(1, 3))
	if len(out) != 1 || out[0].Pos != 1 {
		t.Errorf("precedence result = %v", out)
	}
	// Parentheses override: (2+3)*4 = 20.
	out = run(t, "select(ibm, close < (2 + 3) * 4)", seq.NewSpan(1, 3))
	if len(out) != 1 {
		t.Errorf("paren result = %v", out)
	}
	// and binds tighter than or.
	n := bind(t, "select(ibm, close > 0 or close > 1 and close > 2)")
	if !strings.Contains(n.Pred.String(), "or") {
		t.Errorf("pred = %v", n.Pred)
	}
	// Unary minus.
	out = run(t, "select(ibm, -close < -25)", seq.NewSpan(1, 3))
	if len(out) != 1 || out[0].Pos != 3 {
		t.Errorf("unary minus result = %v", out)
	}
}

func TestParseModuloAndNe(t *testing.T) {
	out := run(t, "select(ibm, volume % 200 = 0)", seq.NewSpan(1, 3))
	if len(out) != 1 || out[0].Pos != 2 {
		t.Errorf("modulo result = %v", out)
	}
	out = run(t, "select(ibm, volume <> 200)", seq.NewSpan(1, 3))
	if len(out) != 2 {
		t.Errorf("<> result = %v", out)
	}
}

func TestBindCollapseExpand(t *testing.T) {
	n := bind(t, "collapse(ibm, avg(close), 7)")
	if n.Kind != algebra.KindCollapse || n.Factor != 7 || n.Agg.Func != algebra.AggAvg {
		t.Errorf("collapse = %+v", n)
	}
	if n.Schema.Field(0).Name != "avg" {
		t.Errorf("schema = %v", n.Schema)
	}
	n = bind(t, "collapse(ibm, count(), 5)")
	if n.Agg.Func != algebra.AggCount || n.Agg.Arg != -1 {
		t.Errorf("count collapse = %+v", n.Agg)
	}
	n = bind(t, "collapse(ibm, sum(volume) as weekly_vol, 7)")
	if n.Schema.Field(0).Name != "weekly_vol" {
		t.Errorf("aliased collapse schema = %v", n.Schema)
	}
	n = bind(t, "expand(ibm, 3)")
	if n.Kind != algebra.KindExpand || n.Factor != 3 {
		t.Errorf("expand = %+v", n)
	}
	// Weekly average expanded back to daily, composed with the daily
	// series: the motivating §5.1 use.
	bind(t, "select(compose(ibm as d, expand(collapse(ibm, avg(close), 7), 7) as w), d.close > w.avg)")

	bindErr(t, "collapse(ibm, close, 7)")         // not an aggregate call
	bindErr(t, "collapse(ibm, median(close), 7)") // unknown aggregate
	bindErr(t, "collapse(ibm, avg(close, 2), 7)") // too many agg args
	bindErr(t, "collapse(ibm, avg(close), 0)")    // bad factor (algebra rejects)
	bindErr(t, "collapse(ibm, avg(nope), 7)")     // unknown attribute
	bindErr(t, "expand(ibm)")                     // missing factor
	bindErr(t, "expand(ibm, close)")              // non-integer factor
}

func TestBindCollapseEval(t *testing.T) {
	// ibm has close 10,20,30 at positions 1,2,3; collapse k=2: group 0
	// covers {0,1} -> avg 10, group 1 covers {2,3} -> avg 25.
	out := run(t, "collapse(ibm, avg(close), 2)", seq.NewSpan(0, 1))
	if len(out) != 2 || out[0].Rec[0].AsFloat() != 10 || out[1].Rec[0].AsFloat() != 25 {
		t.Errorf("collapse eval = %v", out)
	}
}

func TestScalarFunctionsInSEQL(t *testing.T) {
	// abs in a predicate.
	out := run(t, "select(ibm, abs(close - 20.0) < 5.0)", seq.NewSpan(1, 3))
	if len(out) != 1 || out[0].Pos != 2 {
		t.Errorf("abs result = %v", out)
	}
	// min/max as scalar functions inside project; min/max as aggregate
	// operators in node position still work.
	out = run(t, "project(ibm, min(close, 15.0) as capped)", seq.NewSpan(1, 3))
	if len(out) != 3 || out[2].Rec[0].AsFloat() != 15 {
		t.Errorf("capped = %v", out)
	}
	n := bind(t, "min(ibm, close, 2)")
	if n.Kind != algebra.KindAgg {
		t.Errorf("node-position min must be the aggregate, got %v", n.Kind)
	}
	// floor/ceil/round.
	out = run(t, "select(ibm, floor(close / 7.0) = 2)", seq.NewSpan(1, 3))
	if len(out) != 1 || out[0].Pos != 2 {
		t.Errorf("floor result = %v", out)
	}
	// Unknown scalar function.
	bindErr(t, "select(ibm, median(close) > 1)")
	// Wrong arity.
	bindErr(t, "select(ibm, abs(close, volume) > 1)")
	// Nested operators still rejected in scalar position.
	bindErr(t, "select(ibm, prev(ibm) > 1)")
}
