package expr

import (
	"fmt"
	"math"

	"repro/internal/seq"
)

// Scalar functions callable inside expressions: abs, min, max, floor,
// ceil, round. They evaluate record-locally (unit scope), so they never
// affect operator scopes or block boundaries.

// FuncKind identifies a scalar function.
type FuncKind int

// The scalar functions.
const (
	FnAbs FuncKind = iota
	FnMin
	FnMax
	FnFloor
	FnCeil
	FnRound
)

// String returns the function's SEQL name.
func (f FuncKind) String() string {
	switch f {
	case FnAbs:
		return "abs"
	case FnMin:
		return "min"
	case FnMax:
		return "max"
	case FnFloor:
		return "floor"
	case FnCeil:
		return "ceil"
	case FnRound:
		return "round"
	default:
		return fmt.Sprintf("FuncKind(%d)", int(f))
	}
}

// LookupFunc resolves a scalar function name.
func LookupFunc(name string) (FuncKind, bool) {
	switch name {
	case "abs":
		return FnAbs, true
	case "min":
		return FnMin, true
	case "max":
		return FnMax, true
	case "floor":
		return FnFloor, true
	case "ceil":
		return FnCeil, true
	case "round":
		return FnRound, true
	default:
		return 0, false
	}
}

// Call is a scalar function application.
type Call struct {
	Fn   FuncKind
	Args []Expr
	typ  seq.Type
}

// NewCall builds a type-checked scalar function call.
func NewCall(fn FuncKind, args []Expr) (*Call, error) {
	want := 1
	if fn == FnMin || fn == FnMax {
		want = 2
	}
	if len(args) != want {
		return nil, fmt.Errorf("expr: %s expects %d argument(s), got %d", fn, want, len(args))
	}
	for _, a := range args {
		if !a.Type().Numeric() {
			return nil, fmt.Errorf("expr: %s requires numeric arguments, got %s", fn, a.Type())
		}
	}
	var typ seq.Type
	switch fn {
	case FnAbs:
		typ = args[0].Type()
	case FnMin, FnMax:
		typ = seq.TInt
		if args[0].Type() == seq.TFloat || args[1].Type() == seq.TFloat {
			typ = seq.TFloat
		}
	case FnFloor, FnCeil, FnRound:
		typ = seq.TInt
	default:
		return nil, fmt.Errorf("expr: unknown function %v", fn)
	}
	return &Call{Fn: fn, Args: args, typ: typ}, nil
}

// Type implements Expr.
func (c *Call) Type() seq.Type { return c.typ }

// Eval implements Expr.
func (c *Call) Eval(rec seq.Record) (seq.Value, error) {
	vals := make([]seq.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(rec)
		if err != nil {
			return seq.Value{}, err
		}
		vals[i] = v
	}
	switch c.Fn {
	case FnAbs:
		if vals[0].T == seq.TInt {
			n := vals[0].AsInt()
			if n < 0 {
				n = -n
			}
			return seq.Int(n), nil
		}
		return seq.Float(math.Abs(vals[0].AsFloat())), nil
	case FnMin, FnMax:
		cmp, err := vals[0].Compare(vals[1])
		if err != nil {
			return seq.Value{}, err
		}
		pick := vals[0]
		if (c.Fn == FnMin && cmp > 0) || (c.Fn == FnMax && cmp < 0) {
			pick = vals[1]
		}
		if c.typ == seq.TFloat && pick.T == seq.TInt {
			return seq.Float(pick.AsFloat()), nil
		}
		return pick, nil
	case FnFloor:
		return seq.Int(int64(math.Floor(vals[0].AsFloat()))), nil
	case FnCeil:
		return seq.Int(int64(math.Ceil(vals[0].AsFloat()))), nil
	case FnRound:
		return seq.Int(int64(math.Round(vals[0].AsFloat()))), nil
	default:
		return seq.Value{}, fmt.Errorf("expr: unknown function %v", c.Fn)
	}
}

// String implements Expr.
func (c *Call) String() string {
	s := c.Fn.String() + "("
	for i, a := range c.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}
