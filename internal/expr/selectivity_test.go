package expr

import (
	"testing"

	"repro/internal/seq"
)

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestSelectivityDefaults(t *testing.T) {
	c := &Col{Index: 0, Name: "x", Typ: seq.TFloat}
	lt, _ := NewBin(OpLt, c, Literal(seq.Float(5)))
	eq, _ := NewBin(OpEq, c, Literal(seq.Float(5)))
	ne, _ := NewBin(OpNe, c, Literal(seq.Float(5)))
	if got := Selectivity(lt, nil); !approx(got, DefaultRangeSel) {
		t.Errorf("range default = %g", got)
	}
	if got := Selectivity(eq, nil); !approx(got, DefaultEqSel) {
		t.Errorf("eq default = %g", got)
	}
	if got := Selectivity(ne, nil); !approx(got, 1-DefaultEqSel) {
		t.Errorf("ne default = %g", got)
	}
}

func TestSelectivityWithStats(t *testing.T) {
	c := &Col{Index: 0, Name: "x", Typ: seq.TFloat}
	stats := map[int]ColStats{0: {Known: true, Min: 0, Max: 100, Distinct: 50}}
	lt, _ := NewBin(OpLt, c, Literal(seq.Float(25)))
	if got := Selectivity(lt, stats); !approx(got, 0.25) {
		t.Errorf("P(x<25) = %g, want 0.25", got)
	}
	gt, _ := NewBin(OpGt, c, Literal(seq.Float(25)))
	if got := Selectivity(gt, stats); !approx(got, 0.75) {
		t.Errorf("P(x>25) = %g, want 0.75", got)
	}
	eq, _ := NewBin(OpEq, c, Literal(seq.Float(25)))
	if got := Selectivity(eq, stats); !approx(got, 0.02) {
		t.Errorf("P(x=25) = %g, want 1/50", got)
	}
	ne, _ := NewBin(OpNe, c, Literal(seq.Float(25)))
	if got := Selectivity(ne, stats); !approx(got, 0.98) {
		t.Errorf("P(x!=25) = %g, want 0.98", got)
	}
	// Out-of-range literals clamp.
	big, _ := NewBin(OpLt, c, Literal(seq.Float(1e9)))
	if got := Selectivity(big, stats); got != 1 {
		t.Errorf("P(x<1e9) = %g, want 1", got)
	}
	neg, _ := NewBin(OpGt, c, Literal(seq.Float(1e9)))
	if got := Selectivity(neg, stats); got != 0 {
		t.Errorf("P(x>1e9) = %g, want 0", got)
	}
}

func TestSelectivityFlippedComparison(t *testing.T) {
	c := &Col{Index: 0, Name: "x", Typ: seq.TFloat}
	stats := map[int]ColStats{0: {Known: true, Min: 0, Max: 100}}
	// 25 > x  is  x < 25
	e, _ := NewBin(OpGt, Literal(seq.Float(25)), c)
	if got := Selectivity(e, stats); !approx(got, 0.25) {
		t.Errorf("P(25>x) = %g, want 0.25", got)
	}
	e, _ = NewBin(OpLe, Literal(seq.Float(25)), c)
	if got := Selectivity(e, stats); !approx(got, 0.75) {
		t.Errorf("P(25<=x) = %g, want 0.75", got)
	}
}

func TestSelectivityConnectives(t *testing.T) {
	c := &Col{Index: 0, Name: "x", Typ: seq.TFloat}
	stats := map[int]ColStats{0: {Known: true, Min: 0, Max: 100}}
	lt, _ := NewBin(OpLt, c, Literal(seq.Float(50)))
	gt, _ := NewBin(OpGt, c, Literal(seq.Float(75)))
	and, _ := NewBin(OpAnd, lt, gt)
	if got := Selectivity(and, stats); !approx(got, 0.5*0.25) {
		t.Errorf("and = %g", got)
	}
	or, _ := NewBin(OpOr, lt, gt)
	if got := Selectivity(or, stats); !approx(got, 0.5+0.25-0.5*0.25) {
		t.Errorf("or = %g", got)
	}
	not, _ := NewNot(lt)
	if got := Selectivity(not, stats); !approx(got, 0.5) {
		t.Errorf("not = %g", got)
	}
}

func TestSelectivityLiteralsAndColumns(t *testing.T) {
	if got := Selectivity(Literal(seq.Bool(true)), nil); got != 1 {
		t.Errorf("true = %g", got)
	}
	if got := Selectivity(Literal(seq.Bool(false)), nil); got != 0 {
		t.Errorf("false = %g", got)
	}
	if got := Selectivity(Literal(seq.Int(3)), nil); !approx(got, DefaultBoolSel) {
		t.Errorf("non-bool literal = %g", got)
	}
	b := &Col{Index: 0, Name: "flag", Typ: seq.TBool}
	if got := Selectivity(b, nil); !approx(got, DefaultBoolSel) {
		t.Errorf("bare bool column = %g", got)
	}
}

func TestSelectivityColVsColFallsBack(t *testing.T) {
	a := &Col{Index: 0, Name: "a", Typ: seq.TFloat}
	b := &Col{Index: 1, Name: "b", Typ: seq.TFloat}
	e, _ := NewBin(OpLt, a, b)
	if got := Selectivity(e, nil); !approx(got, DefaultRangeSel) {
		t.Errorf("col<col = %g", got)
	}
	eq, _ := NewBin(OpEq, a, b)
	if got := Selectivity(eq, nil); !approx(got, DefaultEqSel) {
		t.Errorf("col=col = %g", got)
	}
}

func TestSelectivityDegenerateStats(t *testing.T) {
	c := &Col{Index: 0, Name: "x", Typ: seq.TFloat}
	// Min == Max: range comparisons fall back to default.
	stats := map[int]ColStats{0: {Known: true, Min: 5, Max: 5, Distinct: 1}}
	lt, _ := NewBin(OpLt, c, Literal(seq.Float(5)))
	if got := Selectivity(lt, stats); !approx(got, DefaultRangeSel) {
		t.Errorf("degenerate range = %g", got)
	}
	eq, _ := NewBin(OpEq, c, Literal(seq.Float(5)))
	if got := Selectivity(eq, stats); !approx(got, 1) {
		t.Errorf("eq with distinct=1 = %g, want 1", got)
	}
}
