package expr

import "repro/internal/seq"

// ColStats summarizes the value distribution of one numeric attribute,
// the "statistical information about the base sequences" of §3 used to
// estimate predicate selectivities. Non-numeric attributes or unknown
// distributions leave Known false and fall back to default guesses.
type ColStats struct {
	Known    bool
	Min, Max float64
	Distinct int64
}

// Default selectivity guesses, in the System R tradition, used when no
// statistics are available.
const (
	DefaultEqSel    = 0.10
	DefaultRangeSel = 1.0 / 3.0
	DefaultBoolSel  = 0.50
)

// Selectivity estimates the fraction of records satisfying the boolean
// expression e. stats maps attribute index to column statistics; it may
// be nil. The estimate is clamped to [0, 1].
func Selectivity(e Expr, stats map[int]ColStats) float64 {
	return clamp01(selectivity(e, stats))
}

func selectivity(e Expr, stats map[int]ColStats) float64 {
	switch v := e.(type) {
	case *Lit:
		if v.Val.T == seq.TBool {
			if v.Val.AsBool() {
				return 1
			}
			return 0
		}
		return DefaultBoolSel
	case *Col:
		return DefaultBoolSel // a bare boolean column
	case *Not:
		return 1 - selectivity(v.E, stats)
	case *Bin:
		switch {
		case v.Op == OpAnd:
			return selectivity(v.L, stats) * selectivity(v.R, stats)
		case v.Op == OpOr:
			a, b := selectivity(v.L, stats), selectivity(v.R, stats)
			return a + b - a*b
		case v.Op.Comparison():
			return comparisonSel(v, stats)
		default:
			return DefaultBoolSel
		}
	default:
		return DefaultBoolSel
	}
}

// comparisonSel estimates col <op> literal comparisons from column range
// statistics under a uniformity assumption; everything else gets the
// default guesses.
func comparisonSel(b *Bin, stats map[int]ColStats) float64 {
	col, lit, op, ok := normalizeComparison(b)
	if !ok {
		if b.Op == OpEq {
			return DefaultEqSel
		}
		if b.Op == OpNe {
			return 1 - DefaultEqSel
		}
		return DefaultRangeSel
	}
	st, have := stats[col.Index]
	switch op {
	case OpEq:
		if have && st.Known && st.Distinct > 0 {
			return 1 / float64(st.Distinct)
		}
		return DefaultEqSel
	case OpNe:
		if have && st.Known && st.Distinct > 0 {
			return 1 - 1/float64(st.Distinct)
		}
		return 1 - DefaultEqSel
	}
	if !have || !st.Known || !lit.Val.T.Numeric() || st.Max <= st.Min {
		return DefaultRangeSel
	}
	x := lit.Val.AsFloat()
	frac := (x - st.Min) / (st.Max - st.Min) // P(col <= x), uniform
	switch op {
	case OpLt, OpLe:
		return clamp01(frac)
	default: // OpGt, OpGe
		return clamp01(1 - frac)
	}
}

// normalizeComparison rewrites "lit op col" into "col op' lit" and
// reports whether the comparison has the col-vs-literal shape.
func normalizeComparison(b *Bin) (*Col, *Lit, BinOp, bool) {
	if c, okc := b.L.(*Col); okc {
		if l, okl := b.R.(*Lit); okl {
			return c, l, b.Op, true
		}
	}
	if l, okl := b.L.(*Lit); okl {
		if c, okc := b.R.(*Col); okc {
			return c, l, flipComparison(b.Op), true
		}
	}
	return nil, nil, b.Op, false
}

func flipComparison(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
