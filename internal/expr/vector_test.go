package expr

import (
	"math"
	"testing"

	"repro/internal/seq"
)

// vecBatch packs the given records into one batch over an intern table.
func vecBatch(t *testing.T, recs []seq.Record) (*seq.Batch, *seq.Intern) {
	t.Helper()
	in := seq.NewIntern()
	b := seq.NewBatchFor(testSchema, len(recs))
	for i, r := range recs {
		if err := b.AppendRow(seq.Pos(i+1), r, in); err != nil {
			t.Fatal(err)
		}
	}
	return b, in
}

// vecRecords is a workload hitting the interesting value-space corners:
// negative floats, NaN, +/-Inf, repeated strings, zero and negative
// ints, and both bool polarities.
func vecRecords() []seq.Record {
	return []seq.Record{
		testRec(1.5, 2.5, 10, false, "aa"),
		testRec(-3.25, 2.5, -4, true, "bb"),
		testRec(math.NaN(), math.NaN(), 0, false, "aa"),
		testRec(math.Inf(1), math.Inf(-1), 7, true, "cc"),
		testRec(2.5, 1.5, 10, false, "bb"),
		testRec(0, 0, 3, true, ""),
	}
}

func TestCompilePredMatchesScalarEval(t *testing.T) {
	preds := map[string]Expr{
		"float gt":      bin(t, OpGt, col(t, "close"), Literal(seq.Float(2))),
		"float lt nan":  bin(t, OpLt, col(t, "open"), col(t, "close")),
		"float ge nan":  bin(t, OpGe, col(t, "open"), col(t, "close")),
		"float eq nan":  bin(t, OpEq, col(t, "open"), col(t, "close")),
		"float ne":      bin(t, OpNe, col(t, "open"), col(t, "close")),
		"mixed int cmp": bin(t, OpLe, col(t, "volume"), col(t, "close")),
		"int eq":        bin(t, OpEq, col(t, "volume"), Literal(seq.Int(10))),
		"str cmp":       bin(t, OpLt, col(t, "sym"), Literal(seq.Str("bb"))),
		"str eq":        bin(t, OpEq, col(t, "sym"), Literal(seq.Str("aa"))),
		"bool col":      col(t, "halted"),
		"and": bin(t, OpAnd,
			bin(t, OpGt, col(t, "close"), Literal(seq.Float(0))),
			bin(t, OpLt, col(t, "volume"), Literal(seq.Int(10)))),
		"or": bin(t, OpOr,
			col(t, "halted"),
			bin(t, OpGt, col(t, "open"), col(t, "close"))),
		"not": not(t, col(t, "halted")),
		"arith in cmp": bin(t, OpGt,
			bin(t, OpAdd, col(t, "open"), bin(t, OpMul, col(t, "close"), Literal(seq.Float(2)))),
			neg(t, col(t, "close"))),
		"float div": bin(t, OpLt,
			bin(t, OpDiv, col(t, "open"), col(t, "close")),
			Literal(seq.Float(1))),
	}
	recs := vecRecords()
	b, in := vecBatch(t, recs)
	for name, e := range preds {
		vp, ok := CompilePred(e)
		if !ok {
			t.Errorf("%s: did not vectorize", name)
			continue
		}
		got := vp.Eval(b, in)
		if len(got) != len(recs) {
			t.Fatalf("%s: %d results for %d rows", name, len(got), len(recs))
		}
		for i, r := range recs {
			want, err := e.Eval(r)
			if err != nil {
				t.Fatalf("%s row %d: scalar eval: %v", name, i, err)
			}
			if got[i] != want.AsBool() {
				t.Errorf("%s row %d (%v): vector %v, scalar %v", name, i, r, got[i], want.AsBool())
			}
		}
	}
}

func TestCompileExprMatchesScalarEval(t *testing.T) {
	exprs := map[string]Expr{
		"col float":   col(t, "close"),
		"col int":     col(t, "volume"),
		"col str":     col(t, "sym"),
		"col bool":    col(t, "halted"),
		"lit":         Literal(seq.Float(42)),
		"add":         bin(t, OpAdd, col(t, "open"), col(t, "close")),
		"sub mixed":   bin(t, OpSub, col(t, "close"), col(t, "volume")),
		"mul int":     bin(t, OpMul, col(t, "volume"), Literal(seq.Int(3))),
		"div float":   bin(t, OpDiv, col(t, "open"), col(t, "close")),
		"neg float":   neg(t, col(t, "open")),
		"neg int":     neg(t, col(t, "volume")),
		"not":         not(t, col(t, "halted")),
		"cmp as bool": bin(t, OpGe, col(t, "close"), col(t, "open")),
	}
	recs := vecRecords()
	b, in := vecBatch(t, recs)
	for name, e := range exprs {
		ve, ok := CompileExpr(e)
		if !ok {
			t.Errorf("%s: did not vectorize", name)
			continue
		}
		var dst seq.Vec
		dst.T = ve.Type()
		ve.EvalInto(b, in, &dst)
		if dst.Len() != len(recs) {
			t.Fatalf("%s: %d results for %d rows", name, dst.Len(), len(recs))
		}
		for i, r := range recs {
			want, err := e.Eval(r)
			if err != nil {
				t.Fatalf("%s row %d: scalar eval: %v", name, i, err)
			}
			if want.T != ve.Type() {
				t.Fatalf("%s: compiled type %v, scalar type %v", name, ve.Type(), want.T)
			}
			got := dst.Value(i, in)
			// NaN != NaN under ==, but Value.Equal treats NaN as equal to
			// itself, which is exactly the parity we need.
			if !got.Equal(want) {
				t.Errorf("%s row %d (%v): vector %v, scalar %v", name, i, r, got, want)
			}
		}
	}
}

func TestCompileRejectsFallibleConstructs(t *testing.T) {
	intDiv := bin(t, OpDiv, col(t, "volume"), Literal(seq.Int(2)))
	intMod := bin(t, OpMod, col(t, "volume"), Literal(seq.Int(2)))
	call, err := NewCall(FnAbs, []Expr{col(t, "close")})
	if err != nil {
		t.Fatal(err)
	}
	rejected := map[string]Expr{
		"int div":         intDiv,
		"int mod":         intMod,
		"call":            call,
		"div under cmp":   bin(t, OpGt, intDiv, Literal(seq.Int(0))),
		"call under and":  bin(t, OpAnd, bin(t, OpGt, call, Literal(seq.Float(0))), col(t, "halted")),
		"div under arith": bin(t, OpAdd, intMod, col(t, "volume")),
	}
	for name, e := range rejected {
		if _, ok := CompileExpr(e); ok {
			t.Errorf("%s: CompileExpr vectorized a fallible expression", name)
		}
		if e.Type() == seq.TBool {
			if _, ok := CompilePred(e); ok {
				t.Errorf("%s: CompilePred vectorized a fallible expression", name)
			}
		}
	}
}

func TestVecPredScratchReuse(t *testing.T) {
	p := bin(t, OpGt, col(t, "close"), Literal(seq.Float(2)))
	vp, ok := CompilePred(p)
	if !ok {
		t.Fatal("simple comparison did not vectorize")
	}
	b1, in := vecBatch(t, vecRecords()[:4])
	r1 := vp.Eval(b1, in)
	first := make([]bool, len(r1))
	copy(first, r1)
	// A second batch reuses the scratch: same backing array, fresh values.
	r2 := vp.Eval(b1, in)
	for i := range first {
		if r2[i] != first[i] {
			t.Fatalf("re-evaluation changed row %d", i)
		}
	}
}

func not(t *testing.T, e Expr) Expr {
	t.Helper()
	n, err := NewNot(e)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func neg(t *testing.T, e Expr) Expr {
	t.Helper()
	n, err := NewNeg(e)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
