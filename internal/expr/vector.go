// Vectorized expression evaluation over columnar batches. An expression
// built from columns, literals, comparisons, +,-,*, float /, not, neg,
// and the boolean connectives compiles to tight per-column loops; the
// compiled form reuses its scratch vectors across batches, so evaluation
// allocates only on the first batch of a scan.
//
// The vectorizable subset is exactly the error-free subset: integer
// division and modulo (which can fail per-row) and Call (host functions)
// are excluded, so evaluating rows eagerly — including rows a
// short-circuiting scalar evaluation would have skipped, and rows whose
// validity bit is clear — can never surface an error the scalar
// interpreter would not. Results on invalid rows are garbage and must be
// ignored by the consumer, which batch operators do by construction.
package expr

import (
	"repro/internal/seq"
)

// vctx is the per-evaluation state threaded through compiled closures.
type vctx struct {
	b  *seq.Batch
	in *seq.Intern
	n  int
}

type (
	intFn   func(c *vctx) []int64
	floatFn func(c *vctx) []float64
	boolFn  func(c *vctx) []bool
	strFn   func(c *vctx) []uint32 // intern handles
)

// VecPred is a compiled vectorized boolean expression. Not safe for
// concurrent use: the compiled closures own scratch buffers. Each
// operator instance compiles its own.
type VecPred struct {
	f boolFn
	c vctx
}

// CompilePred compiles a boolean expression for vectorized evaluation.
// ok is false when the expression uses a non-vectorizable construct; the
// caller falls back to row-at-a-time Eval.
func CompilePred(e Expr) (*VecPred, bool) {
	if e.Type() != seq.TBool {
		return nil, false
	}
	f, ok := compileBool(e)
	if !ok {
		return nil, false
	}
	return &VecPred{f: f}, true
}

// Eval evaluates the predicate over every row of the batch (valid or
// not) and returns one bool per row. The returned slice is owned by the
// predicate and valid until the next Eval.
func (p *VecPred) Eval(b *seq.Batch, in *seq.Intern) []bool {
	p.c = vctx{b: b, in: in, n: b.Rows()}
	return p.f(&p.c)
}

// VecExpr is a compiled vectorized value expression.
type VecExpr struct {
	t  seq.Type
	fi intFn
	ff floatFn
	fb boolFn
	fs strFn
	c  vctx
}

// CompileExpr compiles a value expression for vectorized evaluation.
func CompileExpr(e Expr) (*VecExpr, bool) {
	v := &VecExpr{t: e.Type()}
	var ok bool
	switch v.t {
	case seq.TInt:
		v.fi, ok = compileInt(e)
	case seq.TFloat:
		v.ff, ok = compileFloat(e)
	case seq.TBool:
		v.fb, ok = compileBool(e)
	case seq.TString:
		v.fs, ok = compileStr(e)
	}
	if !ok {
		return nil, false
	}
	return v, true
}

// Type returns the compiled expression's result type.
func (v *VecExpr) Type() seq.Type { return v.t }

// EvalInto evaluates the expression over every row of the batch and
// copies the results into dst (reset first). dst.T must equal Type().
func (v *VecExpr) EvalInto(b *seq.Batch, in *seq.Intern, dst *seq.Vec) {
	v.c = vctx{b: b, in: in, n: b.Rows()}
	switch v.t {
	case seq.TInt:
		dst.I = append(dst.I[:0], v.fi(&v.c)...)
	case seq.TFloat:
		dst.F = append(dst.F[:0], v.ff(&v.c)...)
	case seq.TBool:
		dst.B = append(dst.B[:0], v.fb(&v.c)...)
	default:
		dst.H = append(dst.H[:0], v.fs(&v.c)...)
	}
}

// growI returns s resized to n, reallocating only when capacity grows.
func growI(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growH(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func compileInt(e Expr) (intFn, bool) {
	switch v := e.(type) {
	case *Col:
		if v.Typ != seq.TInt {
			return nil, false
		}
		idx := v.Index
		return func(c *vctx) []int64 { return c.b.Cols[idx].I }, true
	case *Lit:
		if v.Val.T != seq.TInt {
			return nil, false
		}
		lit := v.Val.AsInt()
		var scratch []int64
		return func(c *vctx) []int64 {
			scratch = growI(scratch, c.n)
			for i := range scratch {
				scratch[i] = lit
			}
			return scratch
		}, true
	case *Neg:
		in, ok := compileInt(v.E)
		if !ok {
			return nil, false
		}
		var scratch []int64
		return func(c *vctx) []int64 {
			a := in(c)
			scratch = growI(scratch, c.n)
			for i := range scratch {
				scratch[i] = -a[i]
			}
			return scratch
		}, true
	case *Bin:
		if v.typ != seq.TInt || !v.Op.Arithmetic() || v.Op == OpDiv || v.Op == OpMod {
			// Integer division and modulo can fail per-row; leave them
			// to the scalar fallback.
			return nil, false
		}
		l, ok := compileInt(v.L)
		if !ok {
			return nil, false
		}
		r, ok := compileInt(v.R)
		if !ok {
			return nil, false
		}
		op := v.Op
		var scratch []int64
		return func(c *vctx) []int64 {
			a, b := l(c), r(c)
			scratch = growI(scratch, c.n)
			switch op {
			case OpAdd:
				for i := range scratch {
					scratch[i] = a[i] + b[i]
				}
			case OpSub:
				for i := range scratch {
					scratch[i] = a[i] - b[i]
				}
			default: // OpMul
				for i := range scratch {
					scratch[i] = a[i] * b[i]
				}
			}
			return scratch
		}, true
	default:
		return nil, false
	}
}

// compileAsFloat compiles a numeric expression, widening TInt results to
// float64 exactly as Value.AsFloat does.
func compileAsFloat(e Expr) (floatFn, bool) {
	if e.Type() == seq.TFloat {
		return compileFloat(e)
	}
	in, ok := compileInt(e)
	if !ok {
		return nil, false
	}
	var scratch []float64
	return func(c *vctx) []float64 {
		a := in(c)
		scratch = growF(scratch, c.n)
		for i := range scratch {
			scratch[i] = float64(a[i])
		}
		return scratch
	}, true
}

func compileFloat(e Expr) (floatFn, bool) {
	switch v := e.(type) {
	case *Col:
		if v.Typ != seq.TFloat {
			return nil, false
		}
		idx := v.Index
		return func(c *vctx) []float64 { return c.b.Cols[idx].F }, true
	case *Lit:
		if v.Val.T != seq.TFloat {
			return nil, false
		}
		lit := v.Val.AsFloat()
		var scratch []float64
		return func(c *vctx) []float64 {
			scratch = growF(scratch, c.n)
			for i := range scratch {
				scratch[i] = lit
			}
			return scratch
		}, true
	case *Neg:
		in, ok := compileAsFloat(v.E)
		if !ok {
			return nil, false
		}
		var scratch []float64
		return func(c *vctx) []float64 {
			a := in(c)
			scratch = growF(scratch, c.n)
			for i := range scratch {
				scratch[i] = -a[i]
			}
			return scratch
		}, true
	case *Bin:
		if v.typ != seq.TFloat || !v.Op.Arithmetic() {
			return nil, false
		}
		// Float arithmetic, including /, never errors (div by zero
		// yields ±Inf like the scalar path).
		l, ok := compileAsFloat(v.L)
		if !ok {
			return nil, false
		}
		r, ok := compileAsFloat(v.R)
		if !ok {
			return nil, false
		}
		op := v.Op
		var scratch []float64
		return func(c *vctx) []float64 {
			a, b := l(c), r(c)
			scratch = growF(scratch, c.n)
			switch op {
			case OpAdd:
				for i := range scratch {
					scratch[i] = a[i] + b[i]
				}
			case OpSub:
				for i := range scratch {
					scratch[i] = a[i] - b[i]
				}
			case OpMul:
				for i := range scratch {
					scratch[i] = a[i] * b[i]
				}
			default: // OpDiv
				for i := range scratch {
					scratch[i] = a[i] / b[i]
				}
			}
			return scratch
		}, true
	default:
		return nil, false
	}
}

func compileStr(e Expr) (strFn, bool) {
	switch v := e.(type) {
	case *Col:
		if v.Typ != seq.TString {
			return nil, false
		}
		idx := v.Index
		return func(c *vctx) []uint32 { return c.b.Cols[idx].H }, true
	case *Lit:
		if v.Val.T != seq.TString {
			return nil, false
		}
		lit := v.Val.AsStr()
		var scratch []uint32
		return func(c *vctx) []uint32 {
			h := c.in.PutStr(lit)
			scratch = growH(scratch, c.n)
			for i := range scratch {
				scratch[i] = h
			}
			return scratch
		}, true
	default:
		return nil, false
	}
}

func compileBool(e Expr) (boolFn, bool) {
	switch v := e.(type) {
	case *Col:
		if v.Typ != seq.TBool {
			return nil, false
		}
		idx := v.Index
		return func(c *vctx) []bool { return c.b.Cols[idx].B }, true
	case *Lit:
		if v.Val.T != seq.TBool {
			return nil, false
		}
		lit := v.Val.AsBool()
		var scratch []bool
		return func(c *vctx) []bool {
			scratch = growB(scratch, c.n)
			for i := range scratch {
				scratch[i] = lit
			}
			return scratch
		}, true
	case *Not:
		in, ok := compileBool(v.E)
		if !ok {
			return nil, false
		}
		var scratch []bool
		return func(c *vctx) []bool {
			a := in(c)
			scratch = growB(scratch, c.n)
			for i := range scratch {
				scratch[i] = !a[i]
			}
			return scratch
		}, true
	case *Bin:
		switch {
		case v.Op.Logical():
			// The operands are themselves error-free, so eager
			// evaluation matches the scalar short-circuit exactly.
			l, ok := compileBool(v.L)
			if !ok {
				return nil, false
			}
			r, ok := compileBool(v.R)
			if !ok {
				return nil, false
			}
			and := v.Op == OpAnd
			var scratch []bool
			return func(c *vctx) []bool {
				a, b := l(c), r(c)
				scratch = growB(scratch, c.n)
				if and {
					for i := range scratch {
						scratch[i] = a[i] && b[i]
					}
				} else {
					for i := range scratch {
						scratch[i] = a[i] || b[i]
					}
				}
				return scratch
			}, true
		case v.Op.Comparison():
			return compileCompare(v)
		default:
			return nil, false
		}
	default:
		return nil, false
	}
}

// compileCompare builds a vectorized three-way comparison matching
// Value.Compare exactly: int/int compares as integers, mixed numerics as
// float64 (so NaN is ordered equal to everything, as a<b / a>b both
// fail), strings bytewise, bools false<true.
func compileCompare(v *Bin) (boolFn, bool) {
	lt, rt := v.L.Type(), v.R.Type()
	op := v.Op
	switch {
	case lt == seq.TInt && rt == seq.TInt:
		l, ok := compileInt(v.L)
		if !ok {
			return nil, false
		}
		r, ok := compileInt(v.R)
		if !ok {
			return nil, false
		}
		var scratch []bool
		return func(c *vctx) []bool {
			a, b := l(c), r(c)
			scratch = growB(scratch, c.n)
			switch op {
			case OpLt:
				for i := range scratch {
					scratch[i] = a[i] < b[i]
				}
			case OpLe:
				for i := range scratch {
					scratch[i] = a[i] <= b[i]
				}
			case OpGt:
				for i := range scratch {
					scratch[i] = a[i] > b[i]
				}
			case OpGe:
				for i := range scratch {
					scratch[i] = a[i] >= b[i]
				}
			case OpEq:
				for i := range scratch {
					scratch[i] = a[i] == b[i]
				}
			default: // OpNe
				for i := range scratch {
					scratch[i] = a[i] != b[i]
				}
			}
			return scratch
		}, true
	case lt.Numeric() && rt.Numeric():
		l, ok := compileAsFloat(v.L)
		if !ok {
			return nil, false
		}
		r, ok := compileAsFloat(v.R)
		if !ok {
			return nil, false
		}
		var scratch []bool
		return func(c *vctx) []bool {
			a, b := l(c), r(c)
			scratch = growB(scratch, c.n)
			// Phrase every operator in terms of a<b and a>b so NaN
			// behaves exactly like the scalar Compare (never < or >,
			// hence "equal").
			switch op {
			case OpLt:
				for i := range scratch {
					scratch[i] = a[i] < b[i]
				}
			case OpLe:
				for i := range scratch {
					scratch[i] = !(a[i] > b[i])
				}
			case OpGt:
				for i := range scratch {
					scratch[i] = a[i] > b[i]
				}
			case OpGe:
				for i := range scratch {
					scratch[i] = !(a[i] < b[i])
				}
			case OpEq:
				for i := range scratch {
					scratch[i] = !(a[i] < b[i]) && !(a[i] > b[i])
				}
			default: // OpNe
				for i := range scratch {
					scratch[i] = a[i] < b[i] || a[i] > b[i]
				}
			}
			return scratch
		}, true
	case lt == seq.TString && rt == seq.TString:
		l, ok := compileStr(v.L)
		if !ok {
			return nil, false
		}
		r, ok := compileStr(v.R)
		if !ok {
			return nil, false
		}
		var scratch []bool
		return func(c *vctx) []bool {
			a, b := l(c), r(c)
			scratch = growB(scratch, c.n)
			switch op {
			case OpEq:
				// Handles are canonical within one intern table:
				// equal handles iff equal strings.
				for i := range scratch {
					scratch[i] = a[i] == b[i]
				}
			case OpNe:
				for i := range scratch {
					scratch[i] = a[i] != b[i]
				}
			default:
				in := c.in
				for i := range scratch {
					as, bs := in.Str(a[i]), in.Str(b[i])
					switch op {
					case OpLt:
						scratch[i] = as < bs
					case OpLe:
						scratch[i] = as <= bs
					case OpGt:
						scratch[i] = as > bs
					default: // OpGe
						scratch[i] = as >= bs
					}
				}
			}
			return scratch
		}, true
	case lt == seq.TBool && rt == seq.TBool:
		l, ok := compileBool(v.L)
		if !ok {
			return nil, false
		}
		r, ok := compileBool(v.R)
		if !ok {
			return nil, false
		}
		var scratch []bool
		return func(c *vctx) []bool {
			a, b := l(c), r(c)
			scratch = growB(scratch, c.n)
			switch op {
			case OpLt:
				for i := range scratch {
					scratch[i] = !a[i] && b[i]
				}
			case OpLe:
				for i := range scratch {
					scratch[i] = !a[i] || b[i]
				}
			case OpGt:
				for i := range scratch {
					scratch[i] = a[i] && !b[i]
				}
			case OpGe:
				for i := range scratch {
					scratch[i] = a[i] || !b[i]
				}
			case OpEq:
				for i := range scratch {
					scratch[i] = a[i] == b[i]
				}
			default: // OpNe
				for i := range scratch {
					scratch[i] = a[i] != b[i]
				}
			}
			return scratch
		}, true
	default:
		return nil, false
	}
}
