package expr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

var testSchema = seq.MustSchema(
	seq.Field{Name: "open", Type: seq.TFloat},
	seq.Field{Name: "close", Type: seq.TFloat},
	seq.Field{Name: "volume", Type: seq.TInt},
	seq.Field{Name: "halted", Type: seq.TBool},
	seq.Field{Name: "sym", Type: seq.TString},
)

func testRec(open, close float64, vol int64, halted bool, sym string) seq.Record {
	return seq.Record{seq.Float(open), seq.Float(close), seq.Int(vol), seq.Bool(halted), seq.Str(sym)}
}

func col(t *testing.T, name string) *Col {
	t.Helper()
	c, err := NewCol(testSchema, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func bin(t *testing.T, op BinOp, l, r Expr) Expr {
	t.Helper()
	b, err := NewBin(op, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestColResolution(t *testing.T) {
	c := col(t, "close")
	if c.Index != 1 || c.Typ != seq.TFloat {
		t.Errorf("col = %+v", c)
	}
	if _, err := NewCol(testSchema, "nope"); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := ColAt(testSchema, 2); err != nil {
		t.Error(err)
	}
	if _, err := ColAt(testSchema, 99); err == nil {
		t.Error("out-of-range ColAt must fail")
	}
}

func TestColEval(t *testing.T) {
	r := testRec(10, 12, 100, false, "IBM")
	v, err := col(t, "close").Eval(r)
	if err != nil || v.AsFloat() != 12 {
		t.Errorf("Eval = %v, %v", v, err)
	}
	if _, err := col(t, "close").Eval(nil); err == nil {
		t.Error("evaluating on Null record must fail")
	}
	if _, err := (&Col{Index: 9, Typ: seq.TFloat}).Eval(r); err == nil {
		t.Error("out-of-range column eval must fail")
	}
}

func TestArithmeticTyping(t *testing.T) {
	// int+int = int, int+float = float
	e := bin(t, OpAdd, Literal(seq.Int(1)), Literal(seq.Int(2)))
	if e.Type() != seq.TInt {
		t.Error("int+int must be int")
	}
	e = bin(t, OpAdd, Literal(seq.Int(1)), Literal(seq.Float(2)))
	if e.Type() != seq.TFloat {
		t.Error("int+float must be float")
	}
	if _, err := NewBin(OpAdd, Literal(seq.Str("a")), Literal(seq.Int(1))); err == nil {
		t.Error("string arithmetic must fail")
	}
	if _, err := NewBin(OpMod, Literal(seq.Float(1)), Literal(seq.Int(1))); err == nil {
		t.Error("float modulo must fail")
	}
}

func TestArithmeticEval(t *testing.T) {
	r := testRec(10, 12, 100, false, "IBM")
	cases := []struct {
		e    Expr
		want seq.Value
	}{
		{bin(t, OpAdd, col(t, "open"), col(t, "close")), seq.Float(22)},
		{bin(t, OpSub, col(t, "close"), col(t, "open")), seq.Float(2)},
		{bin(t, OpMul, col(t, "volume"), Literal(seq.Int(2))), seq.Int(200)},
		{bin(t, OpDiv, col(t, "volume"), Literal(seq.Int(3))), seq.Int(33)},
		{bin(t, OpMod, col(t, "volume"), Literal(seq.Int(7))), seq.Int(2)},
		{bin(t, OpDiv, col(t, "close"), Literal(seq.Float(4))), seq.Float(3)},
	}
	for _, c := range cases {
		got, err := c.e.Eval(r)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := bin(t, OpDiv, Literal(seq.Int(1)), Literal(seq.Int(0))).Eval(nil); err == nil {
		t.Error("integer division by zero must fail")
	}
	if _, err := bin(t, OpMod, Literal(seq.Int(1)), Literal(seq.Int(0))).Eval(nil); err == nil {
		t.Error("integer modulo by zero must fail")
	}
	v, err := bin(t, OpDiv, Literal(seq.Float(1)), Literal(seq.Float(0))).Eval(nil)
	if err != nil || !math.IsInf(v.AsFloat(), 1) {
		t.Errorf("float 1/0 = %v, %v; want +Inf", v, err)
	}
}

func TestComparisons(t *testing.T) {
	r := testRec(10, 12, 100, false, "IBM")
	cases := []struct {
		op   BinOp
		want bool
	}{
		{OpLt, true}, {OpLe, true}, {OpGt, false}, {OpGe, false}, {OpEq, false}, {OpNe, true},
	}
	for _, c := range cases {
		e := bin(t, c.op, col(t, "open"), col(t, "close"))
		got, err := EvalPred(e, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("open %s close = %v, want %v", c.op, got, c.want)
		}
	}
	// Mixed numeric comparison.
	e := bin(t, OpGt, col(t, "volume"), Literal(seq.Float(99.5)))
	if got, _ := EvalPred(e, r); !got {
		t.Error("int/float comparison failed")
	}
	// String comparison.
	e = bin(t, OpEq, col(t, "sym"), Literal(seq.Str("IBM")))
	if got, _ := EvalPred(e, r); !got {
		t.Error("string equality failed")
	}
	if _, err := NewBin(OpLt, col(t, "sym"), Literal(seq.Int(1))); err == nil {
		t.Error("string-vs-int comparison must be rejected")
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	r := testRec(10, 12, 100, false, "IBM")
	boom := bin(t, OpEq, bin(t, OpDiv, Literal(seq.Int(1)), Literal(seq.Int(0))), Literal(seq.Int(1)))
	// false AND boom -> false without evaluating boom
	e := bin(t, OpAnd, col(t, "halted"), boom)
	got, err := EvalPred(e, r)
	if err != nil || got {
		t.Errorf("short-circuit and = %v, %v", got, err)
	}
	// true OR boom -> true
	e = bin(t, OpOr, bin(t, OpNe, col(t, "sym"), Literal(seq.Str(""))), boom)
	got, err = EvalPred(e, r)
	if err != nil || !got {
		t.Errorf("short-circuit or = %v, %v", got, err)
	}
	if _, err := NewBin(OpAnd, Literal(seq.Int(1)), Literal(seq.Bool(true))); err == nil {
		t.Error("non-bool logical operand must be rejected")
	}
}

func TestNotNeg(t *testing.T) {
	r := testRec(10, 12, 100, true, "IBM")
	n, err := NewNot(col(t, "halted"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := n.Eval(r)
	if err != nil || v.AsBool() {
		t.Errorf("not halted = %v, %v", v, err)
	}
	if _, err := NewNot(col(t, "close")); err == nil {
		t.Error("not on float must be rejected")
	}
	g, err := NewNeg(col(t, "close"))
	if err != nil {
		t.Fatal(err)
	}
	v, err = g.Eval(r)
	if err != nil || v.AsFloat() != -12 {
		t.Errorf("-close = %v, %v", v, err)
	}
	gi, err := NewNeg(col(t, "volume"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ = gi.Eval(r)
	if v.AsInt() != -100 {
		t.Errorf("-volume = %v", v)
	}
	if _, err := NewNeg(col(t, "sym")); err == nil {
		t.Error("neg on string must be rejected")
	}
}

func TestEvalPredRejectsNonBool(t *testing.T) {
	if _, err := EvalPred(col(t, "close"), testRec(1, 2, 3, false, "x")); err == nil {
		t.Error("non-bool predicate must be rejected")
	}
}

func TestColumns(t *testing.T) {
	e := bin(t, OpAnd,
		bin(t, OpGt, col(t, "close"), col(t, "open")),
		bin(t, OpLt, col(t, "volume"), Literal(seq.Int(10))))
	got := Columns(e)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Columns = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Columns = %v, want %v", got, want)
		}
	}
	n, _ := NewNot(col(t, "halted"))
	if c := Columns(n); len(c) != 1 || c[0] != 3 {
		t.Errorf("Columns(not halted) = %v", c)
	}
	g, _ := NewNeg(col(t, "open"))
	if c := Columns(g); len(c) != 1 || c[0] != 0 {
		t.Errorf("Columns(-open) = %v", c)
	}
	if c := Columns(Literal(seq.Int(1))); len(c) != 0 {
		t.Errorf("Columns(lit) = %v", c)
	}
}

func TestRemap(t *testing.T) {
	e := bin(t, OpGt, col(t, "close"), Literal(seq.Float(7)))
	m, err := Remap(e, map[int]int{1: 0})
	if err != nil {
		t.Fatal(err)
	}
	// After remap, close lives at index 0.
	v, err := m.Eval(seq.Record{seq.Float(9)})
	if err != nil || !v.AsBool() {
		t.Errorf("remapped eval = %v, %v", v, err)
	}
	if _, err := Remap(e, map[int]int{0: 0}); err == nil {
		t.Error("remap missing a referenced column must fail")
	}
	if _, err := Remap(e, map[int]int{1: -1}); err == nil {
		t.Error("negative remap target must fail")
	}
	// Not/Neg recursion.
	n, _ := NewNot(bin(t, OpLt, col(t, "open"), col(t, "close")))
	if _, err := Remap(n, map[int]int{0: 1, 1: 0}); err != nil {
		t.Error(err)
	}
	g, _ := NewNeg(col(t, "open"))
	if _, err := Remap(g, map[int]int{0: 2}); err != nil {
		t.Error(err)
	}
}

func TestAndHelper(t *testing.T) {
	p := bin(t, OpGt, col(t, "close"), Literal(seq.Float(1)))
	q := bin(t, OpLt, col(t, "open"), Literal(seq.Float(2)))
	if got, _ := And(nil, p); got != p {
		t.Error("And(nil, p) must be p")
	}
	if got, _ := And(p, nil); got != p {
		t.Error("And(p, nil) must be p")
	}
	both, err := And(p, q)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := EvalPred(both, testRec(1.5, 1.5, 0, false, ""))
	if err != nil || !ok {
		t.Errorf("And eval = %v, %v", ok, err)
	}
}

func TestExprStrings(t *testing.T) {
	e := bin(t, OpAnd, bin(t, OpGt, col(t, "close"), Literal(seq.Float(7))), col(t, "halted"))
	if got := e.String(); got != "((close > 7) and halted)" {
		t.Errorf("String = %q", got)
	}
	n, _ := NewNot(col(t, "halted"))
	if n.String() != "not halted" {
		t.Errorf("String = %q", n.String())
	}
	g, _ := NewNeg(col(t, "open"))
	if g.String() != "-open" {
		t.Errorf("String = %q", g.String())
	}
	for op := OpAdd; op <= OpOr; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty string", op)
		}
	}
}

// Property: remapping through a permutation and evaluating on the
// permuted record equals evaluating the original on the original record.
func TestRemapPermutationProperty(t *testing.T) {
	f := func(open, close float64, vol int64) bool {
		if math.IsNaN(open) || math.IsNaN(close) {
			return true
		}
		e := func() Expr {
			b, _ := NewBin(OpGt, &Col{Index: 0, Name: "open", Typ: seq.TFloat}, &Col{Index: 1, Name: "close", Typ: seq.TFloat})
			return b
		}()
		orig := seq.Record{seq.Float(open), seq.Float(close), seq.Int(vol)}
		perm := seq.Record{seq.Int(vol), seq.Float(close), seq.Float(open)} // 0<->2
		m, err := Remap(e, map[int]int{0: 2, 1: 1})
		if err != nil {
			return false
		}
		a, err1 := EvalPred(e, orig)
		b, err2 := EvalPred(m, perm)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalarFunctions(t *testing.T) {
	r := testRec(10, -12.6, -100, false, "IBM")
	mk := func(fn FuncKind, args ...Expr) *Call {
		t.Helper()
		c, err := NewCall(fn, args)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cases := []struct {
		e    Expr
		want seq.Value
	}{
		{mk(FnAbs, col(t, "close")), seq.Float(12.6)},
		{mk(FnAbs, col(t, "volume")), seq.Int(100)},
		{mk(FnMin, col(t, "open"), col(t, "close")), seq.Float(-12.6)},
		{mk(FnMax, col(t, "open"), col(t, "close")), seq.Float(10)},
		{mk(FnMin, Literal(seq.Int(3)), Literal(seq.Int(7))), seq.Int(3)},
		{mk(FnMax, Literal(seq.Int(3)), Literal(seq.Float(2))), seq.Float(3)},
		{mk(FnFloor, col(t, "close")), seq.Int(-13)},
		{mk(FnCeil, col(t, "close")), seq.Int(-12)},
		{mk(FnRound, Literal(seq.Float(2.5))), seq.Int(3)},
	}
	for _, c := range cases {
		got, err := c.e.Eval(r)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	// Typing.
	if mk(FnAbs, col(t, "volume")).Type() != seq.TInt {
		t.Error("abs preserves int")
	}
	if mk(FnMin, col(t, "volume"), col(t, "close")).Type() != seq.TFloat {
		t.Error("mixed min is float")
	}
	if mk(FnFloor, col(t, "close")).Type() != seq.TInt {
		t.Error("floor is int")
	}
	// Validation.
	if _, err := NewCall(FnAbs, []Expr{col(t, "sym")}); err == nil {
		t.Error("abs of string must fail")
	}
	if _, err := NewCall(FnAbs, []Expr{col(t, "close"), col(t, "open")}); err == nil {
		t.Error("abs arity must be 1")
	}
	if _, err := NewCall(FnMin, []Expr{col(t, "close")}); err == nil {
		t.Error("min arity must be 2")
	}
	// Name lookup and rendering.
	for _, name := range []string{"abs", "min", "max", "floor", "ceil", "round"} {
		fn, ok := LookupFunc(name)
		if !ok || fn.String() != name {
			t.Errorf("LookupFunc(%q) = %v, %v", name, fn, ok)
		}
	}
	if _, ok := LookupFunc("median"); ok {
		t.Error("unknown function must not resolve")
	}
	if got := mk(FnMin, col(t, "open"), col(t, "close")).String(); got != "min(open, close)" {
		t.Errorf("String = %q", got)
	}
	// Columns and Remap traverse into calls.
	e := mk(FnMax, col(t, "open"), col(t, "close"))
	if cols := Columns(e); len(cols) != 2 {
		t.Errorf("Columns = %v", cols)
	}
	m, err := Remap(e, map[int]int{0: 1, 1: 0})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Eval(seq.Record{seq.Float(5), seq.Float(9)})
	if err != nil || v.AsFloat() != 9 {
		t.Errorf("remapped call = %v, %v", v, err)
	}
}
