// Package expr provides typed expression trees over sequence records:
// column references, literals, arithmetic, comparisons and boolean
// connectives. Expressions are the parameters of the algebra's Selection,
// Projection and Compose operators. The package also estimates predicate
// selectivities from column statistics, which feeds the optimizer's
// density propagation (§3, "distributions of values in the columns ...
// used to determine the selectivity of predicates").
//
// Expressions are immutable after construction and are type-checked as
// they are built: constructors reject operand type mismatches, so a
// well-formed Expr never fails to evaluate on a conforming record.
package expr

import (
	"fmt"

	"repro/internal/seq"
)

// Expr is a typed expression evaluated against a single record.
type Expr interface {
	// Type returns the expression's result type.
	Type() seq.Type
	// Eval evaluates the expression on a non-Null record conforming to
	// the schema the expression was built against.
	Eval(rec seq.Record) (seq.Value, error)
	// String renders the expression in source-like syntax.
	String() string
}

// Col is a reference to a record attribute by index.
type Col struct {
	Index int
	Name  string
	Typ   seq.Type
}

// NewCol resolves the named attribute against the schema.
func NewCol(schema *seq.Schema, name string) (*Col, error) {
	i := schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("expr: no attribute %q in %v", name, schema)
	}
	f := schema.Field(i)
	return &Col{Index: i, Name: f.Name, Typ: f.Type}, nil
}

// ColAt references the attribute at the given index of the schema.
func ColAt(schema *seq.Schema, i int) (*Col, error) {
	if i < 0 || i >= schema.NumFields() {
		return nil, fmt.Errorf("expr: column index %d out of range for %v", i, schema)
	}
	f := schema.Field(i)
	return &Col{Index: i, Name: f.Name, Typ: f.Type}, nil
}

// Type implements Expr.
func (c *Col) Type() seq.Type { return c.Typ }

// Eval implements Expr.
func (c *Col) Eval(rec seq.Record) (seq.Value, error) {
	if rec.IsNull() {
		return seq.Value{}, fmt.Errorf("expr: evaluating %s on Null record", c.Name)
	}
	if c.Index >= len(rec) {
		return seq.Value{}, fmt.Errorf("expr: column %d out of range for record of arity %d", c.Index, len(rec))
	}
	return rec[c.Index], nil
}

// String implements Expr.
func (c *Col) String() string { return c.Name }

// Lit is a literal constant.
type Lit struct {
	Val seq.Value
}

// Literal wraps a value as an expression.
func Literal(v seq.Value) *Lit { return &Lit{Val: v} }

// Type implements Expr.
func (l *Lit) Type() seq.Type { return l.Val.T }

// Eval implements Expr.
func (l *Lit) Eval(seq.Record) (seq.Value, error) { return l.Val, nil }

// String implements Expr.
func (l *Lit) String() string { return l.Val.String() }

// BinOp enumerates binary operators.
type BinOp int

// The binary operators, grouped by family.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod

	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe

	OpAnd
	OpOr
)

// String returns the operator's source syntax.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	default:
		return fmt.Sprintf("BinOp(%d)", int(op))
	}
}

// Arithmetic reports whether the operator is +, -, *, / or %.
func (op BinOp) Arithmetic() bool { return op >= OpAdd && op <= OpMod }

// Comparison reports whether the operator is a comparison.
func (op BinOp) Comparison() bool { return op >= OpLt && op <= OpNe }

// Logical reports whether the operator is a boolean connective.
func (op BinOp) Logical() bool { return op == OpAnd || op == OpOr }

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
	typ  seq.Type
}

// NewBin builds a type-checked binary expression.
func NewBin(op BinOp, l, r Expr) (*Bin, error) {
	lt, rt := l.Type(), r.Type()
	var typ seq.Type
	switch {
	case op.Arithmetic():
		if !lt.Numeric() || !rt.Numeric() {
			return nil, fmt.Errorf("expr: %s requires numeric operands, got %s and %s", op, lt, rt)
		}
		if op == OpMod {
			if lt != seq.TInt || rt != seq.TInt {
				return nil, fmt.Errorf("expr: %% requires int operands, got %s and %s", lt, rt)
			}
			typ = seq.TInt
		} else if lt == seq.TInt && rt == seq.TInt {
			typ = seq.TInt
		} else {
			typ = seq.TFloat
		}
	case op.Comparison():
		comparable := (lt.Numeric() && rt.Numeric()) || lt == rt
		if !comparable {
			return nil, fmt.Errorf("expr: cannot compare %s with %s", lt, rt)
		}
		typ = seq.TBool
	case op.Logical():
		if lt != seq.TBool || rt != seq.TBool {
			return nil, fmt.Errorf("expr: %s requires bool operands, got %s and %s", op, lt, rt)
		}
		typ = seq.TBool
	default:
		return nil, fmt.Errorf("expr: unknown operator %v", op)
	}
	return &Bin{Op: op, L: l, R: r, typ: typ}, nil
}

// Type implements Expr.
func (b *Bin) Type() seq.Type { return b.typ }

// Eval implements Expr.
func (b *Bin) Eval(rec seq.Record) (seq.Value, error) {
	lv, err := b.L.Eval(rec)
	if err != nil {
		return seq.Value{}, err
	}
	// Short-circuit boolean connectives.
	if b.Op == OpAnd && !lv.AsBool() {
		return seq.Bool(false), nil
	}
	if b.Op == OpOr && lv.AsBool() {
		return seq.Bool(true), nil
	}
	rv, err := b.R.Eval(rec)
	if err != nil {
		return seq.Value{}, err
	}
	switch {
	case b.Op.Logical():
		return rv, nil
	case b.Op.Comparison():
		c, err := lv.Compare(rv)
		if err != nil {
			return seq.Value{}, err
		}
		switch b.Op {
		case OpLt:
			return seq.Bool(c < 0), nil
		case OpLe:
			return seq.Bool(c <= 0), nil
		case OpGt:
			return seq.Bool(c > 0), nil
		case OpGe:
			return seq.Bool(c >= 0), nil
		case OpEq:
			return seq.Bool(c == 0), nil
		default: // OpNe
			return seq.Bool(c != 0), nil
		}
	default:
		return evalArith(b.Op, b.typ, lv, rv)
	}
}

func evalArith(op BinOp, typ seq.Type, lv, rv seq.Value) (seq.Value, error) {
	if typ == seq.TInt {
		a, b := lv.AsInt(), rv.AsInt()
		switch op {
		case OpAdd:
			return seq.Int(a + b), nil
		case OpSub:
			return seq.Int(a - b), nil
		case OpMul:
			return seq.Int(a * b), nil
		case OpDiv:
			if b == 0 {
				return seq.Value{}, fmt.Errorf("expr: integer division by zero")
			}
			return seq.Int(a / b), nil
		default: // OpMod
			if b == 0 {
				return seq.Value{}, fmt.Errorf("expr: integer modulo by zero")
			}
			return seq.Int(a % b), nil
		}
	}
	a, b := lv.AsFloat(), rv.AsFloat()
	switch op {
	case OpAdd:
		return seq.Float(a + b), nil
	case OpSub:
		return seq.Float(a - b), nil
	case OpMul:
		return seq.Float(a * b), nil
	default: // OpDiv; float division by zero yields ±Inf like Go
		return seq.Float(a / b), nil
	}
}

// String implements Expr.
func (b *Bin) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not is boolean negation.
type Not struct {
	E Expr
}

// NewNot builds a type-checked negation.
func NewNot(e Expr) (*Not, error) {
	if e.Type() != seq.TBool {
		return nil, fmt.Errorf("expr: not requires bool operand, got %s", e.Type())
	}
	return &Not{E: e}, nil
}

// Type implements Expr.
func (n *Not) Type() seq.Type { return seq.TBool }

// Eval implements Expr.
func (n *Not) Eval(rec seq.Record) (seq.Value, error) {
	v, err := n.E.Eval(rec)
	if err != nil {
		return seq.Value{}, err
	}
	return seq.Bool(!v.AsBool()), nil
}

// String implements Expr.
func (n *Not) String() string { return "not " + n.E.String() }

// Neg is arithmetic negation.
type Neg struct {
	E Expr
}

// NewNeg builds a type-checked arithmetic negation.
func NewNeg(e Expr) (*Neg, error) {
	if !e.Type().Numeric() {
		return nil, fmt.Errorf("expr: unary minus requires numeric operand, got %s", e.Type())
	}
	return &Neg{E: e}, nil
}

// Type implements Expr.
func (n *Neg) Type() seq.Type { return n.E.Type() }

// Eval implements Expr.
func (n *Neg) Eval(rec seq.Record) (seq.Value, error) {
	v, err := n.E.Eval(rec)
	if err != nil {
		return seq.Value{}, err
	}
	if v.T == seq.TInt {
		return seq.Int(-v.AsInt()), nil
	}
	return seq.Float(-v.AsFloat()), nil
}

// String implements Expr.
func (n *Neg) String() string { return "-" + n.E.String() }

// EvalPred evaluates a boolean expression on a record. It is a
// convenience for selection and join predicates.
func EvalPred(e Expr, rec seq.Record) (bool, error) {
	v, err := e.Eval(rec)
	if err != nil {
		return false, err
	}
	if v.T != seq.TBool {
		return false, fmt.Errorf("expr: predicate evaluated to %s, not bool", v.T)
	}
	return v.AsBool(), nil
}

// Columns returns the sorted, deduplicated set of attribute indexes the
// expression references. These are the attributes that "participate" in
// the operator (paper §3.1, footnote 4).
func Columns(e Expr) []int {
	set := make(map[int]bool)
	collectCols(e, set)
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	// insertion sort; the sets are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func collectCols(e Expr, set map[int]bool) {
	switch v := e.(type) {
	case *Col:
		set[v.Index] = true
	case *Bin:
		collectCols(v.L, set)
		collectCols(v.R, set)
	case *Not:
		collectCols(v.E, set)
	case *Neg:
		collectCols(v.E, set)
	case *Call:
		for _, a := range v.Args {
			collectCols(a, set)
		}
	}
}

// Remap rewrites every column reference through the mapping: a reference
// to index i becomes a reference to mapping[i]. A referenced index that is
// missing from the mapping (absent key or negative value) is an error —
// the caller attempted to push the expression somewhere its inputs do not
// exist.
func Remap(e Expr, mapping map[int]int) (Expr, error) {
	switch v := e.(type) {
	case *Col:
		j, ok := mapping[v.Index]
		if !ok || j < 0 {
			return nil, fmt.Errorf("expr: column %q (index %d) not available after remap", v.Name, v.Index)
		}
		return &Col{Index: j, Name: v.Name, Typ: v.Typ}, nil
	case *Lit:
		return v, nil
	case *Bin:
		l, err := Remap(v.L, mapping)
		if err != nil {
			return nil, err
		}
		r, err := Remap(v.R, mapping)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: v.Op, L: l, R: r, typ: v.typ}, nil
	case *Not:
		inner, err := Remap(v.E, mapping)
		if err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	case *Neg:
		inner, err := Remap(v.E, mapping)
		if err != nil {
			return nil, err
		}
		return &Neg{E: inner}, nil
	case *Call:
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			na, err := Remap(a, mapping)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &Call{Fn: v.Fn, Args: args, typ: v.typ}, nil
	default:
		return nil, fmt.Errorf("expr: unknown node %T in Remap", e)
	}
}

// And conjoins two predicates (either may be nil, meaning "true").
func And(a, b Expr) (Expr, error) {
	switch {
	case a == nil:
		return b, nil
	case b == nil:
		return a, nil
	default:
		return NewBin(OpAnd, a, b)
	}
}
