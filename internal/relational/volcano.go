package relational

import (
	"fmt"

	"repro/internal/seq"
)

// Schemas of the Example 1.1 relations. Time is the position attribute
// made explicit, as a relational system would store it.
var (
	VolcanoSchema = seq.MustSchema(
		seq.Field{Name: "time", Type: seq.TInt},
		seq.Field{Name: "name", Type: seq.TString},
	)
	QuakeSchema = seq.MustSchema(
		seq.Field{Name: "time", Type: seq.TInt},
		seq.Field{Name: "strength", Type: seq.TFloat},
	)
)

// VolcanoQueryNested evaluates Example 1.1 with the plan the paper
// ascribes to a conventional relational optimizer:
//
//	SELECT V.name
//	FROM   Volcanos V, Earthquakes E
//	WHERE  E.strength > 7.0
//	AND    E.time = (SELECT max(E1.time) FROM Earthquakes E1
//	                 WHERE E1.time < V.time)
//
// For every volcano tuple, the correlated sub-query scans the entire
// Earthquakes relation to find the most recent earlier quake; the result
// then probes Earthquakes again (another scan here — the relation has no
// index on time) and the strength filter applies last. The total work is
// O(|V| · |E|).
func VolcanoQueryNested(volcanos, quakes *Relation) ([]string, error) {
	if !volcanos.Schema.Equal(VolcanoSchema) || !quakes.Schema.Equal(QuakeSchema) {
		return nil, fmt.Errorf("relational: unexpected schemas %v, %v", volcanos.Schema, quakes.Schema)
	}
	var out []string
	vIt := volcanos.Scan()
	defer vIt.Close()
	for {
		v, ok, err := vIt.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		vTime := v[0].AsInt()
		// Correlated sub-query: max(E1.time) where E1.time < V.time —
		// a full scan of Earthquakes.
		maxTime, any, err := Max(Select(quakes.Scan(), func(t Tuple) (bool, error) {
			return t[0].AsInt() < vTime, nil
		}), 0)
		if err != nil {
			return nil, err
		}
		if !any {
			continue // no earlier earthquake: sub-query yields NULL
		}
		// Outer join condition: find the earthquake at that time and
		// apply the strength filter — another scan.
		matches, err := Collect(Select(quakes.Scan(), func(t Tuple) (bool, error) {
			return t[0].AsInt() == maxTime.AsInt() && t[1].AsFloat() > 7.0, nil
		}))
		if err != nil {
			return nil, err
		}
		if len(matches) > 0 {
			out = append(out, v[1].AsStr())
		}
	}
}

// VolcanoQueryMerge evaluates the same query the way the sequence engine
// does (the efficient strategy of Example 1.1): one lock-step pass over
// both relations, assumed sorted by time, buffering only the most recent
// earthquake. It exists to show the relational substrate *can* express
// the efficient plan when hand-written — the point of the paper being
// that the sequence optimizer derives it automatically.
func VolcanoQueryMerge(volcanos, quakes *Relation) ([]string, error) {
	vIt, qIt := volcanos.Scan(), quakes.Scan()
	defer vIt.Close()
	defer qIt.Close()
	var out []string
	var lastQuake Tuple
	q, qok, err := qIt.Next()
	if err != nil {
		return nil, err
	}
	for {
		v, vok, err := vIt.Next()
		if err != nil {
			return nil, err
		}
		if !vok {
			return out, nil
		}
		vTime := v[0].AsInt()
		for qok && q[0].AsInt() < vTime {
			lastQuake = q
			q, qok, err = qIt.Next()
			if err != nil {
				return nil, err
			}
		}
		if lastQuake != nil && lastQuake[1].AsFloat() > 7.0 {
			out = append(out, v[1].AsStr())
		}
	}
}
