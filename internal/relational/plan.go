package relational

// PlanNode describes one operator of a relational evaluation plan. The
// engine itself is function-shaped (VolcanoQueryNested and friends are
// hand-fused loops), so the descriptors exist for verification: E1
// builds the descriptor of each strategy it runs and planlint's rel/*
// invariants check it, mirroring what the sequence engine gets from its
// real plan trees.
//
// Op values and their arities:
//
//	scan                       0 children, Rel set
//	select, project, aggregate 1 child
//	nested-loop-join,
//	merge-join, apply          2 children
//
// Project nodes carry Cols, the output column indexes into the child's
// width. EstTuples is the optimizer's cardinality estimate for the
// operator's output (scans must state the exact relation cardinality —
// the baseline engine has perfect table statistics).
type PlanNode struct {
	Op        string
	Rel       *Relation
	Cols      []int
	EstTuples float64
	Children  []*PlanNode
}

// Width returns the output tuple width of the operator, or -1 when the
// shape is malformed (unknown op, missing child, missing relation).
func (n *PlanNode) Width() int {
	if n == nil {
		return -1
	}
	child := func(i int) int {
		if i >= len(n.Children) {
			return -1
		}
		return n.Children[i].Width()
	}
	switch n.Op {
	case "scan":
		if n.Rel == nil || n.Rel.Schema == nil {
			return -1
		}
		return n.Rel.Schema.NumFields()
	case "select":
		return child(0)
	case "project":
		if child(0) < 0 {
			return -1
		}
		return len(n.Cols)
	case "aggregate":
		if child(0) < 0 {
			return -1
		}
		return 1
	case "nested-loop-join", "merge-join", "apply":
		l, r := child(0), child(1)
		if l < 0 || r < 0 {
			return -1
		}
		return l + r
	default:
		return -1
	}
}

// NestedPlan describes the VolcanoQueryNested strategy: for every
// volcano tuple, an apply runs the correlated aggregate sub-query (a
// full scan of Earthquakes), then the join condition and strength
// filter select, then the name projects out.
func NestedPlan(volcanos, quakes *Relation) *PlanNode {
	nV := float64(volcanos.Cardinality())
	nQ := float64(quakes.Cardinality())
	sub := &PlanNode{
		Op: "aggregate", EstTuples: 1,
		Children: []*PlanNode{{
			Op: "select", EstTuples: nQ / 2,
			Children: []*PlanNode{{
				Op: "scan", Rel: quakes, EstTuples: nQ,
			}},
		}},
	}
	join := &PlanNode{
		Op: "apply", EstTuples: nV,
		Children: []*PlanNode{
			{Op: "scan", Rel: volcanos, EstTuples: nV},
			sub,
		},
	}
	sel := &PlanNode{Op: "select", EstTuples: nV / 2, Children: []*PlanNode{join}}
	// Volcano layout is (time, name): project the name.
	return &PlanNode{Op: "project", Cols: []int{1}, EstTuples: nV / 2, Children: []*PlanNode{sel}}
}

// MergePlan describes the VolcanoQueryMerge strategy: one lock-step
// pass over both time-sorted relations, then the strength filter and
// the name projection.
func MergePlan(volcanos, quakes *Relation) *PlanNode {
	nV := float64(volcanos.Cardinality())
	nQ := float64(quakes.Cardinality())
	join := &PlanNode{
		Op: "merge-join", EstTuples: nV,
		Children: []*PlanNode{
			{Op: "scan", Rel: volcanos, EstTuples: nV},
			{Op: "scan", Rel: quakes, EstTuples: nQ},
		},
	}
	sel := &PlanNode{Op: "select", EstTuples: nV / 2, Children: []*PlanNode{join}}
	return &PlanNode{Op: "project", Cols: []int{1}, EstTuples: nV / 2, Children: []*PlanNode{sel}}
}
