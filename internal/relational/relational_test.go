package relational

import (
	"testing"

	"repro/internal/seq"
)

func mkVolcanos(t *testing.T, rows ...[2]interface{}) *Relation {
	t.Helper()
	tuples := make([]Tuple, len(rows))
	for i, r := range rows {
		tuples[i] = Tuple{seq.Int(int64(r[0].(int))), seq.Str(r[1].(string))}
	}
	rel, err := NewRelation("volcanos", VolcanoSchema, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func mkQuakes(t *testing.T, rows ...[2]float64) *Relation {
	t.Helper()
	tuples := make([]Tuple, len(rows))
	for i, r := range rows {
		tuples[i] = Tuple{seq.Int(int64(r[0])), seq.Float(r[1])}
	}
	rel, err := NewRelation("earthquakes", QuakeSchema, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestNewRelationValidates(t *testing.T) {
	if _, err := NewRelation("x", VolcanoSchema, []Tuple{{seq.Float(1)}}); err == nil {
		t.Error("non-conforming tuple must be rejected")
	}
}

func TestScanMeters(t *testing.T) {
	r := mkQuakes(t, [2]float64{1, 5}, [2]float64{2, 6})
	got, err := Collect(r.Scan())
	if err != nil || len(got) != 2 {
		t.Fatalf("collect = %v, %v", got, err)
	}
	if r.TuplesRead != 2 {
		t.Errorf("TuplesRead = %d", r.TuplesRead)
	}
	r.ResetStats()
	if r.TuplesRead != 0 {
		t.Error("ResetStats failed")
	}
	if r.Cardinality() != 2 {
		t.Error("Cardinality wrong")
	}
}

func TestSelectProject(t *testing.T) {
	r := mkQuakes(t, [2]float64{1, 5}, [2]float64{2, 8}, [2]float64{3, 9})
	it := Project(Select(r.Scan(), func(tup Tuple) (bool, error) {
		return tup[1].AsFloat() > 7, nil
	}), []int{1})
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0].AsFloat() != 8 {
		t.Errorf("result = %v", got)
	}
	// Out-of-range projection errors.
	if _, err := Collect(Project(r.Scan(), []int{9})); err == nil {
		t.Error("bad projection must fail")
	}
}

func TestNestedLoopJoin(t *testing.T) {
	v := mkVolcanos(t, [2]interface{}{3, "etna"}, [2]interface{}{7, "fuji"})
	q := mkQuakes(t, [2]float64{1, 5}, [2]float64{5, 8})
	it := NestedLoopJoin(v, q, func(o, i Tuple) (bool, error) {
		return i[0].AsInt() < o[0].AsInt(), nil
	})
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	// etna joins quake@1; fuji joins quakes @1 and @5.
	if len(got) != 3 {
		t.Errorf("join = %v", got)
	}
	if len(got[0]) != 4 {
		t.Errorf("joined arity = %d", len(got[0]))
	}
}

func TestMax(t *testing.T) {
	r := mkQuakes(t, [2]float64{1, 5}, [2]float64{9, 2}, [2]float64{4, 7})
	v, ok, err := Max(r.Scan(), 0)
	if err != nil || !ok || v.AsInt() != 9 {
		t.Errorf("max = %v, %v, %v", v, ok, err)
	}
	empty := mkQuakes(t)
	if _, ok, _ := Max(empty.Scan(), 0); ok {
		t.Error("max of empty must report !ok")
	}
}

func TestVolcanoQueriesAgree(t *testing.T) {
	v := mkVolcanos(t,
		[2]interface{}{2, "etna"},
		[2]interface{}{6, "fuji"},
		[2]interface{}{9, "rainier"},
	)
	q := mkQuakes(t, [2]float64{1, 6.0}, [2]float64{4, 7.5}, [2]float64{8, 5.0})
	nested, err := VolcanoQueryNested(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(nested) != 1 || nested[0] != "fuji" {
		t.Errorf("nested = %v", nested)
	}
	merged, err := VolcanoQueryMerge(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || merged[0] != "fuji" {
		t.Errorf("merge = %v", merged)
	}
}

func TestVolcanoNestedIsQuadratic(t *testing.T) {
	// The nested plan reads O(|V|·|E|) tuples; the merge plan O(|V|+|E|).
	var vs [][2]interface{}
	var qs [][2]float64
	for i := 0; i < 50; i++ {
		vs = append(vs, [2]interface{}{i*10 + 5, "v"})
		qs = append(qs, [2]float64{float64(i * 10), 7.5})
	}
	v := mkVolcanos(t, vs...)
	q := mkQuakes(t, qs...)
	if _, err := VolcanoQueryNested(v, q); err != nil {
		t.Fatal(err)
	}
	nestedReads := v.TuplesRead + q.TuplesRead
	v.ResetStats()
	q.ResetStats()
	if _, err := VolcanoQueryMerge(v, q); err != nil {
		t.Fatal(err)
	}
	mergeReads := v.TuplesRead + q.TuplesRead
	if nestedReads < 50*50 {
		t.Errorf("nested reads = %d, expected quadratic growth", nestedReads)
	}
	if mergeReads > 105 {
		t.Errorf("merge reads = %d, expected linear", mergeReads)
	}
}

func TestVolcanoSchemasChecked(t *testing.T) {
	v := mkVolcanos(t)
	if _, err := VolcanoQueryNested(v, v); err == nil {
		t.Error("schema mismatch must be rejected")
	}
}
