// Package relational is a miniature relational query engine: relations
// of tuples, iterator-based scan/select/project operators, nested-loop
// join and scalar aggregates, with tuple-access accounting.
//
// It exists as the paper's comparator (Example 1.1): "a conventional
// relational query optimizer ... would probably generate the following
// query evaluation plan. For every Volcano tuple in the outer query, the
// sub-query would be invoked to find the time of the most recent
// earthquake. Each such access to the sub-query involves an aggregate
// over the entire Earthquake relation." Experiment E1 runs that exact
// plan here and the lock-step sequence plan in the sequence engine, and
// compares accesses and wall-clock time.
package relational

import (
	"fmt"

	"repro/internal/seq"
)

// Tuple is a row of atomic values.
type Tuple []seq.Value

// Relation is a named bag of tuples with a schema. Access through Scan
// is metered: every tuple delivered increments the TuplesRead counter.
type Relation struct {
	Name   string
	Schema *seq.Schema
	tuples []Tuple

	// TuplesRead counts tuples delivered by scans — the baseline's
	// access-cost measure (one logical record access per tuple).
	TuplesRead int64
}

// NewRelation builds a relation, validating tuples against the schema.
func NewRelation(name string, schema *seq.Schema, tuples []Tuple) (*Relation, error) {
	for i, tup := range tuples {
		if !seq.Record(tup).Conforms(schema) {
			return nil, fmt.Errorf("relational: tuple %d does not conform to %v", i, schema)
		}
	}
	return &Relation{Name: name, Schema: schema, tuples: tuples}, nil
}

// Cardinality returns the number of tuples.
func (r *Relation) Cardinality() int { return len(r.tuples) }

// ResetStats zeroes the access counter.
func (r *Relation) ResetStats() { r.TuplesRead = 0 }

// Iterator delivers tuples one at a time.
type Iterator interface {
	// Next returns the next tuple; ok=false ends the stream.
	Next() (Tuple, bool, error)
	// Close releases resources.
	Close() error
}

// Scan returns a metered full-table scan.
func (r *Relation) Scan() Iterator { return &scanIt{rel: r} }

type scanIt struct {
	rel *Relation
	i   int
}

func (s *scanIt) Next() (Tuple, bool, error) {
	if s.i >= len(s.rel.tuples) {
		return nil, false, nil
	}
	t := s.rel.tuples[s.i]
	s.i++
	s.rel.TuplesRead++
	return t, true, nil
}

func (s *scanIt) Close() error { return nil }

// Select filters an iterator by a predicate.
func Select(in Iterator, pred func(Tuple) (bool, error)) Iterator {
	return &selectIt{in: in, pred: pred}
}

type selectIt struct {
	in   Iterator
	pred func(Tuple) (bool, error)
}

func (s *selectIt) Next() (Tuple, bool, error) {
	for {
		t, ok, err := s.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := s.pred(t)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return t, true, nil
		}
	}
}

func (s *selectIt) Close() error { return s.in.Close() }

// Project maps an iterator through a column-index list.
func Project(in Iterator, cols []int) Iterator {
	return &projectIt{in: in, cols: cols}
}

type projectIt struct {
	in   Iterator
	cols []int
}

func (p *projectIt) Next() (Tuple, bool, error) {
	t, ok, err := p.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Tuple, len(p.cols))
	for i, c := range p.cols {
		if c < 0 || c >= len(t) {
			return nil, false, fmt.Errorf("relational: projection column %d out of range", c)
		}
		out[i] = t[c]
	}
	return out, true, nil
}

func (p *projectIt) Close() error { return p.in.Close() }

// NestedLoopJoin joins two relations with an arbitrary predicate,
// rescanning the inner relation per outer tuple.
func NestedLoopJoin(outer, inner *Relation, pred func(o, i Tuple) (bool, error)) Iterator {
	return &nljIt{outer: outer.Scan(), inner: inner, pred: pred}
}

type nljIt struct {
	outer    Iterator
	inner    *Relation
	pred     func(o, i Tuple) (bool, error)
	curOuter Tuple
	innerIt  Iterator
}

func (j *nljIt) Next() (Tuple, bool, error) {
	for {
		if j.curOuter == nil {
			t, ok, err := j.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.curOuter = t
			j.innerIt = j.inner.Scan()
		}
		for {
			it, ok, err := j.innerIt.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.curOuter = nil
				break
			}
			match, err := j.pred(j.curOuter, it)
			if err != nil {
				return nil, false, err
			}
			if match {
				out := make(Tuple, 0, len(j.curOuter)+len(it))
				out = append(out, j.curOuter...)
				out = append(out, it...)
				return out, true, nil
			}
		}
	}
}

func (j *nljIt) Close() error { return j.outer.Close() }

// Collect drains an iterator.
func Collect(in Iterator) ([]Tuple, error) {
	defer in.Close()
	var out []Tuple
	for {
		t, ok, err := in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// Max computes the maximum of a column over an iterator; ok=false when
// the input is empty (SQL's NULL aggregate result).
func Max(in Iterator, col int) (seq.Value, bool, error) {
	defer in.Close()
	var best seq.Value
	any := false
	for {
		t, ok, err := in.Next()
		if err != nil {
			return seq.Value{}, false, err
		}
		if !ok {
			return best, any, nil
		}
		v := t[col]
		if !any {
			best, any = v, true
			continue
		}
		c, err := v.Compare(best)
		if err != nil {
			return seq.Value{}, false, err
		}
		if c > 0 {
			best = v
		}
	}
}
