// Package algebra defines the logical operator graph of sequence queries:
// the operators of §2.1 (selection, projection, positional and value
// offsets, windowed aggregates, compose), schema inference, the operator
// scope machinery of §2.3 with its composition laws (Proposition 2.1),
// and a naive reference interpreter implementing the denotational
// semantics directly — the ground truth that rewrites, plans and cache
// strategies are property-tested against.
package algebra

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/seq"
)

// Kind identifies a logical operator.
type Kind int

// The logical operators of the model (§2.1), plus the two leaf kinds.
const (
	KindBase Kind = iota
	KindConst
	KindSelect
	KindProject
	KindPosOffset
	KindValueOffset
	KindAgg
	KindCompose
	KindCollapse
	KindExpand
)

// String returns the operator's name.
func (k Kind) String() string {
	switch k {
	case KindBase:
		return "base"
	case KindConst:
		return "const"
	case KindSelect:
		return "select"
	case KindProject:
		return "project"
	case KindPosOffset:
		return "offset"
	case KindValueOffset:
		return "voffset"
	case KindAgg:
		return "agg"
	case KindCompose:
		return "compose"
	case KindCollapse:
		return "collapse"
	case KindExpand:
		return "expand"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ProjItem is one output attribute of a projection: an expression over
// the input record and the attribute's output name. Projections of the
// Null record are Null regardless of the expressions (§2.1).
type ProjItem struct {
	Expr expr.Expr
	Name string
}

// Node is one operator in a query graph. Queries are trees: the paper
// restricts graphs to be hierarchical (§2.2), so each node feeds exactly
// one consumer. Nodes are immutable after construction; rewrites build
// new nodes.
type Node struct {
	Kind   Kind
	Inputs []*Node
	Schema *seq.Schema

	// Leaf payloads.
	Name      string                // Base: the sequence's name
	Seq       seq.Sequence          // Base: the physical sequence
	BaseStats map[int]expr.ColStats // Base: optional column statistics
	Rec       seq.Record            // Const: the repeated record

	// Operator payloads.
	Pred      expr.Expr // Select; Compose (optional join predicate)
	Items     []ProjItem
	Offset    int64    // PosOffset (any), ValueOffset (non-zero)
	Factor    int64    // Collapse, Expand: the domain ratio (> 1)
	Agg       *AggSpec // Agg (windowed); Collapse (grouped)
	LeftQual  string   // Compose: qualifier for left input attributes
	RightQual string   // Compose: qualifier for right input attributes
}

// Base wraps a physical sequence as a query leaf.
func Base(name string, s seq.Sequence) *Node {
	return &Node{Kind: KindBase, Name: name, Seq: s, Schema: s.Info().Schema}
}

// BaseWithStats wraps a physical sequence together with column statistics
// for the optimizer.
func BaseWithStats(name string, s seq.Sequence, stats map[int]expr.ColStats) *Node {
	n := Base(name, s)
	n.BaseStats = stats
	return n
}

// Const builds a constant-sequence leaf holding rec at every position.
func Const(schema *seq.Schema, rec seq.Record) (*Node, error) {
	c, err := seq.NewConstant(schema, rec)
	if err != nil {
		return nil, err
	}
	return &Node{Kind: KindConst, Schema: schema, Rec: rec, Seq: c}, nil
}

// Select applies a boolean predicate at every position (§2.1).
func Select(in *Node, pred expr.Expr) (*Node, error) {
	if in == nil || pred == nil {
		return nil, fmt.Errorf("algebra: select requires an input and a predicate")
	}
	if pred.Type() != seq.TBool {
		return nil, fmt.Errorf("algebra: selection predicate has type %s, want bool", pred.Type())
	}
	if err := colsInRange(pred, in.Schema); err != nil {
		return nil, err
	}
	return &Node{Kind: KindSelect, Inputs: []*Node{in}, Schema: in.Schema, Pred: pred}, nil
}

// Project maps each record through the given output expressions (§2.1,
// generalized from attribute subsets to computed attributes).
func Project(in *Node, items []ProjItem) (*Node, error) {
	if in == nil || len(items) == 0 {
		return nil, fmt.Errorf("algebra: project requires an input and at least one item")
	}
	fields := make([]seq.Field, len(items))
	for i, it := range items {
		if it.Expr == nil {
			return nil, fmt.Errorf("algebra: projection item %d has nil expression", i)
		}
		if err := colsInRange(it.Expr, in.Schema); err != nil {
			return nil, err
		}
		name := it.Name
		if name == "" {
			if c, ok := it.Expr.(*expr.Col); ok {
				name = c.Name
			} else {
				name = fmt.Sprintf("expr%d", i)
			}
			items[i].Name = name
		}
		fields[i] = seq.Field{Name: name, Type: it.Expr.Type()}
	}
	schema, err := seq.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	return &Node{Kind: KindProject, Inputs: []*Node{in}, Schema: schema, Items: items}, nil
}

// ProjectCols projects the named attributes of the input.
func ProjectCols(in *Node, names ...string) (*Node, error) {
	items := make([]ProjItem, len(names))
	for i, name := range names {
		c, err := expr.NewCol(in.Schema, name)
		if err != nil {
			return nil, err
		}
		items[i] = ProjItem{Expr: c, Name: name}
	}
	return Project(in, items)
}

// PosOffset shifts the input by l positions: out(i) = in(i+l) (§2.1).
func PosOffset(in *Node, l int64) (*Node, error) {
	if in == nil {
		return nil, fmt.Errorf("algebra: offset requires an input")
	}
	return &Node{Kind: KindPosOffset, Inputs: []*Node{in}, Schema: in.Schema, Offset: l}, nil
}

// ValueOffset returns at each position the record of the |l|-th non-Null
// input record strictly before (l < 0) or after (l > 0) that position
// (§2.1). Previous is ValueOffset(in, -1), Next is ValueOffset(in, +1).
func ValueOffset(in *Node, l int64) (*Node, error) {
	if in == nil {
		return nil, fmt.Errorf("algebra: voffset requires an input")
	}
	if l == 0 {
		return nil, fmt.Errorf("algebra: voffset requires a non-zero offset")
	}
	return &Node{Kind: KindValueOffset, Inputs: []*Node{in}, Schema: in.Schema, Offset: l}, nil
}

// Previous is the value offset -1 (§2.1).
func Previous(in *Node) (*Node, error) { return ValueOffset(in, -1) }

// Next is the value offset +1 (§2.1).
func Next(in *Node) (*Node, error) { return ValueOffset(in, 1) }

// Agg applies an aggregate function over a window of input positions
// (§2.1). The output schema is the single aggregate attribute.
func Agg(in *Node, spec AggSpec) (*Node, error) {
	if in == nil {
		return nil, fmt.Errorf("algebra: agg requires an input")
	}
	if err := spec.Window.Validate(); err != nil {
		return nil, err
	}
	var argType seq.Type
	switch {
	case spec.Arg == -1:
		if spec.Func != AggCount {
			return nil, fmt.Errorf("algebra: aggregate %s requires an input attribute", spec.Func)
		}
		argType = seq.TInt // unused
	case spec.Arg >= 0 && spec.Arg < in.Schema.NumFields():
		argType = in.Schema.Field(spec.Arg).Type
	default:
		return nil, fmt.Errorf("algebra: aggregate attribute index %d out of range for %v", spec.Arg, in.Schema)
	}
	out := seq.TInt
	if spec.Func != AggCount || spec.Arg >= 0 {
		var err error
		out, err = spec.Func.ResultType(argType)
		if err != nil {
			return nil, err
		}
	}
	if spec.As == "" {
		spec.As = spec.Func.String()
	}
	schema, err := seq.NewSchema(seq.Field{Name: spec.As, Type: out})
	if err != nil {
		return nil, err
	}
	return &Node{Kind: KindAgg, Inputs: []*Node{in}, Schema: schema, Agg: &spec}, nil
}

// AggCol is a convenience: aggregate the named attribute over the window.
func AggCol(in *Node, f AggFunc, colName string, w Window, as string) (*Node, error) {
	i := in.Schema.Index(colName)
	if i < 0 {
		return nil, fmt.Errorf("algebra: no attribute %q in %v", colName, in.Schema)
	}
	return Agg(in, AggSpec{Func: f, Arg: i, Window: w, As: as})
}

// ComposeSchema returns the record schema a Compose of the two inputs
// will produce, so callers can build join predicates against it.
func ComposeSchema(l, r *Node, leftQual, rightQual string) (*seq.Schema, error) {
	return l.Schema.Concat(r.Schema, leftQual, rightQual)
}

// Compose positionally joins two sequences: out(i) = l(i).r(i), Null if
// either input is Null at i or if the optional join predicate rejects the
// composed record (§2.1).
func Compose(l, r *Node, pred expr.Expr, leftQual, rightQual string) (*Node, error) {
	if l == nil || r == nil {
		return nil, fmt.Errorf("algebra: compose requires two inputs")
	}
	schema, err := ComposeSchema(l, r, leftQual, rightQual)
	if err != nil {
		return nil, err
	}
	if pred != nil {
		if pred.Type() != seq.TBool {
			return nil, fmt.Errorf("algebra: join predicate has type %s, want bool", pred.Type())
		}
		if err := colsInRange(pred, schema); err != nil {
			return nil, err
		}
	}
	return &Node{
		Kind: KindCompose, Inputs: []*Node{l, r}, Schema: schema,
		Pred: pred, LeftQual: leftQual, RightQual: rightQual,
	}, nil
}

func colsInRange(e expr.Expr, schema *seq.Schema) error {
	for _, i := range expr.Columns(e) {
		if i < 0 || i >= schema.NumFields() {
			return fmt.Errorf("algebra: expression %s references column %d outside %v", e, i, schema)
		}
	}
	return nil
}

// NonUnitScope reports whether the operator has non-unit scope on some
// input — the operators that break the query into blocks (§3.1:
// aggregates and value offsets; Collapse from the §5.1 extension reads
// k input positions per output and breaks blocks the same way).
func (n *Node) NonUnitScope() bool {
	return n.Kind == KindAgg || n.Kind == KindValueOffset || n.Kind == KindCollapse
}

// IsLeaf reports whether the node is a base or constant sequence.
func (n *Node) IsLeaf() bool { return n.Kind == KindBase || n.Kind == KindConst }

// Bases returns the base-sequence leaves of the subtree, left to right.
func (n *Node) Bases() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == KindBase {
			out = append(out, m)
			return
		}
		for _, in := range m.Inputs {
			walk(in)
		}
	}
	walk(n)
	return out
}

// label renders the node's own operator (without inputs).
func (n *Node) label() string {
	switch n.Kind {
	case KindBase:
		return "base(" + n.Name + ")"
	case KindConst:
		return "const(" + n.Rec.String() + ")"
	case KindSelect:
		return "select(" + n.Pred.String() + ")"
	case KindProject:
		parts := make([]string, len(n.Items))
		for i, it := range n.Items {
			parts[i] = it.Expr.String()
			if c, ok := it.Expr.(*expr.Col); !ok || c.Name != it.Name {
				parts[i] += " as " + it.Name
			}
		}
		return "project(" + strings.Join(parts, ", ") + ")"
	case KindPosOffset:
		return fmt.Sprintf("offset(%+d)", n.Offset)
	case KindValueOffset:
		return fmt.Sprintf("voffset(%+d)", n.Offset)
	case KindAgg:
		arg := "*"
		if n.Agg.Arg >= 0 {
			arg = n.Inputs[0].Schema.Field(n.Agg.Arg).Name
		}
		return fmt.Sprintf("%s(%s) over %s as %s", n.Agg.Func, arg, n.Agg.Window, n.Agg.As)
	case KindCompose:
		if n.Pred != nil {
			return "compose(" + n.Pred.String() + ")"
		}
		return "compose"
	case KindCollapse:
		arg := "*"
		if n.Agg.Arg >= 0 {
			arg = n.Inputs[0].Schema.Field(n.Agg.Arg).Name
		}
		return fmt.Sprintf("collapse(%s(%s), k=%d) as %s", n.Agg.Func, arg, n.Factor, n.Agg.As)
	case KindExpand:
		return fmt.Sprintf("expand(k=%d)", n.Factor)
	default:
		return n.Kind.String()
	}
}

// String renders the query tree, one operator per line, indented.
func (n *Node) String() string {
	var b strings.Builder
	var walk func(m *Node, depth int)
	walk = func(m *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(m.label())
		b.WriteByte('\n')
		for _, in := range m.Inputs {
			walk(in, depth+1)
		}
	}
	walk(n, 0)
	return strings.TrimRight(b.String(), "\n")
}
