package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func TestScopePerOperator(t *testing.T) {
	b := mkBase(t, "s", 1, 2, 3)
	sel, _ := Select(b, gtConst(t, b, "close", 0))
	pr, _ := ProjectCols(b, "close")
	po, _ := PosOffset(b, -5)
	id, _ := PosOffset(b, 0)
	vo, _ := Previous(b)
	vn, _ := Next(b)
	ag, _ := AggCol(b, AggSum, "close", Trailing(6), "")
	lead, _ := AggCol(b, AggSum, "close", Range(1, 3), "")
	cum, _ := AggCol(b, AggSum, "close", Cumulative(), "")
	cm, _ := Compose(b, mkBase(t, "r", 1), nil, "l", "r")

	cases := []struct {
		name       string
		node       *Node
		input      int
		unit       bool
		fixed      bool
		size       int64
		sequential bool
		relative   bool
	}{
		{"select", sel, 0, true, true, 1, true, true},
		{"project", pr, 0, true, true, 1, true, true},
		{"compose-left", cm, 0, true, true, 1, true, true},
		{"compose-right", cm, 1, true, true, 1, true, true},
		{"offset-5", po, 0, true, true, 1, false, true},
		{"offset0", id, 0, true, true, 1, true, true},
		{"previous", vo, 0, false, false, 0, false, false},
		{"next", vn, 0, false, false, 0, false, false},
		{"agg-trailing6", ag, 0, false, true, 6, true, true},
		{"agg-leading", lead, 0, false, true, 3, false, true},
		{"agg-cumulative", cum, 0, false, false, 0, true, true},
	}
	for _, c := range cases {
		p, err := c.node.Scope(c.input)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if p.Unit() != c.unit {
			t.Errorf("%s: unit = %v, want %v", c.name, p.Unit(), c.unit)
		}
		if p.FixedSize != c.fixed {
			t.Errorf("%s: fixed = %v, want %v", c.name, p.FixedSize, c.fixed)
		}
		if p.FixedSize && p.Size != c.size {
			t.Errorf("%s: size = %d, want %d", c.name, p.Size, c.size)
		}
		if p.Sequential != c.sequential {
			t.Errorf("%s: sequential = %v, want %v", c.name, p.Sequential, c.sequential)
		}
		if p.Relative != c.relative {
			t.Errorf("%s: relative = %v, want %v", c.name, p.Relative, c.relative)
		}
	}
	if _, err := sel.Scope(5); err == nil {
		t.Error("out-of-range input must fail")
	}
	if _, err := b.Scope(0); err == nil {
		t.Error("leaf scope must fail")
	}
}

// Figure 2's complex operator: scope of size 8 ending at the current
// position (the current input record and the last seven).
func TestFigure2Scope(t *testing.T) {
	b := mkBase(t, "s", 1)
	ag, _ := AggCol(b, AggSum, "close", Trailing(8), "")
	p, _ := ag.Scope(0)
	if !p.FixedSize || p.Size != 8 || !p.Sequential {
		t.Errorf("figure-2 scope = %+v", p)
	}
	if p.Win.Lo != -7 || p.Win.Hi != 0 {
		t.Errorf("window = %v, want [-7, 0]", p.Win)
	}
}

// Proposition 2.1 on concrete compositions.
func TestComposeScopesConcrete(t *testing.T) {
	b := mkBase(t, "s", 1)
	// sum over last 3 of (offset by -2): window [-2-2, 0-2] = [-4, -2].
	po, _ := PosOffset(b, -2)
	poScope, _ := po.Scope(0)
	ag, _ := AggCol(po, AggSum, "close", Trailing(3), "")
	agScope, _ := ag.Scope(0)
	combined := ComposeScopes(agScope, poScope)
	if !combined.FixedSize || combined.Size != 3 {
		t.Errorf("combined = %+v, want fixed size 3", combined)
	}
	if combined.Win.Lo != -4 || combined.Win.Hi != -2 {
		t.Errorf("combined window = %v, want [-4, -2]", combined.Win)
	}
	if combined.Sequential {
		t.Error("offset breaks sequentiality (2.1b only preserves it when both are sequential)")
	}
	if !combined.Relative {
		t.Error("relative ∘ relative must be relative (2.1c)")
	}
	// Two trailing aggregates compose to a trailing window: sequential.
	a1, _ := AggCol(b, AggSum, "close", Trailing(3), "")
	s1, _ := a1.Scope(0)
	a2, _ := AggCol(a1, AggSum, "sum", Trailing(4), "")
	s2, _ := a2.Scope(0)
	both := ComposeScopes(s2, s1)
	if !both.Sequential || !both.FixedSize || both.Size != 6 {
		t.Errorf("trailing∘trailing = %+v, want sequential fixed size 6", both)
	}
	// Unbounded windows poison fixedness.
	cum, _ := AggCol(b, AggSum, "close", Cumulative(), "")
	sc, _ := cum.Scope(0)
	mix := ComposeScopes(s1, sc)
	if mix.FixedSize {
		t.Error("fixed ∘ unbounded must not be fixed")
	}
	if !mix.Sequential {
		t.Error("sequential ∘ sequential must stay sequential (2.1b)")
	}
}

// Property 2.1 as a quick-check over random window stacks: composing
// random trailing/offset scopes preserves (a) fixedness, (b)
// sequentiality, (c) relativity per the proposition.
func TestProposition21Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		randScope := func() ScopeProps {
			switch rng.Intn(4) {
			case 0:
				return UnitScope()
			case 1: // positional offset
				l := int64(rng.Intn(11) - 5)
				return ScopeProps{FixedSize: true, Size: 1, Sequential: l == 0, Relative: true, Win: Range(l, l)}
			case 2: // trailing aggregate
				w := int64(rng.Intn(6) + 1)
				return ScopeProps{FixedSize: true, Size: w, Sequential: true, Relative: true, Win: Trailing(w)}
			default: // value offset (variable, non-relative)
				return ScopeProps{Win: Window{LoUnbounded: true, Hi: -1}}
			}
		}
		a, b := randScope(), randScope()
		c := ComposeScopes(a, b)
		if c.FixedSize != (a.FixedSize && b.FixedSize) {
			return false
		}
		if (a.Sequential && b.Sequential) && !c.Sequential {
			return false // 2.1(b)
		}
		if c.Relative != (a.Relative && b.Relative) {
			return false // 2.1(c)
		}
		// Window arithmetic: bounded sides add.
		if !a.Win.LoUnbounded && !b.Win.LoUnbounded {
			if c.Win.LoUnbounded || c.Win.Lo != a.Win.Lo+b.Win.Lo {
				return false
			}
		} else if !c.Win.LoUnbounded {
			return false
		}
		if !a.Win.HiUnbounded && !b.Win.HiUnbounded {
			if c.Win.HiUnbounded || c.Win.Hi != a.Win.Hi+b.Win.Hi {
				return false
			}
		} else if !c.Win.HiUnbounded {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQueryScopes(t *testing.T) {
	// select(sum over last 3(offset(-2, base))) on one leaf.
	b := mkBase(t, "s", 1, 2, 3)
	po, _ := PosOffset(b, -2)
	ag, _ := AggCol(po, AggSum, "close", Trailing(3), "")
	sel, _ := Select(ag, gtConst(t, ag, "sum", 0))
	scopes := QueryScopes(sel)
	p, ok := scopes[b]
	if !ok {
		t.Fatal("no scope recorded for base leaf")
	}
	if !p.FixedSize || p.Size != 3 || p.Win.Lo != -4 || p.Win.Hi != -2 {
		t.Errorf("query scope on base = %+v", p)
	}
	// Two-leaf query.
	l := mkBase(t, "l", 1)
	r := mkBase(t, "r", 1)
	cm, _ := Compose(l, r, nil, "l", "r")
	pv, _ := Previous(cm)
	scopes = QueryScopes(pv)
	if len(scopes) != 2 {
		t.Fatalf("scopes on %d leaves, want 2", len(scopes))
	}
	for _, leaf := range []*Node{l, r} {
		if scopes[leaf].Relative {
			t.Error("value offset must poison relativity on the path")
		}
	}
}

func TestStreamEvaluable(t *testing.T) {
	b := mkBase(t, "s", 1, 2, 3)
	ag, _ := AggCol(b, AggSum, "close", Trailing(3), "")
	if !StreamEvaluable(ag) {
		t.Error("trailing aggregate must be stream-evaluable")
	}
	cum, _ := AggCol(b, AggSum, "close", Cumulative(), "")
	if !StreamEvaluable(cum) {
		t.Error("cumulative aggregate must be stream-evaluable")
	}
	all, _ := AggCol(b, AggSum, "close", All(), "")
	if StreamEvaluable(all) {
		t.Error("whole-sequence aggregate is not stream-evaluable")
	}
	prev, _ := Previous(b)
	if !StreamEvaluable(prev) {
		t.Error("previous runs with Cache-Strategy-B: stream-evaluable")
	}
	deep, _ := AggCol(all, AggSum, "sum", Trailing(2), "")
	if StreamEvaluable(deep) {
		t.Error("nested non-streamable input must propagate")
	}
	_ = seq.EmptySpan
}
