package algebra

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/seq"
)

// Evaluator is the naive reference interpreter: a direct, memoized
// implementation of the denotational semantics of §2.1, evaluated
// position by position with probed access to the base sequences. It makes
// no use of scopes, caches, rewrites or cost-based choices, which is
// exactly why it serves as ground truth for everything that does.
type Evaluator struct {
	memo     map[evalKey]seq.Record
	universe seq.Span
}

type evalKey struct {
	n *Node
	p seq.Pos
}

// NewEvaluator prepares an evaluator for the given query, to be asked
// about positions within the bounded span `requested`. The universe — the
// position range the evaluator searches within — is the hull of the
// base-sequence spans and the requested span, grown by the query's total
// offset reach. It must cover the requested span (not just the base
// spans) because constant sequences carry non-Null records everywhere;
// it bounds the searches of value offsets and unbounded aggregate
// windows.
func NewEvaluator(root *Node, requested seq.Span) (*Evaluator, error) {
	if Divergent(root) {
		return nil, fmt.Errorf("algebra: query contains an aggregate over unboundedly many records (e.g. a cumulative aggregate of a constant sequence)")
	}
	hull := Universe(root, requested)
	if !hull.Bounded() {
		return nil, fmt.Errorf("algebra: unbounded universe %v", hull)
	}
	return &Evaluator{
		memo:     make(map[evalKey]seq.Record),
		universe: hull,
	}, nil
}

// Universe computes the bounded range outputs within the requested span
// can depend on: the hull of the base spans transformed up to the root's
// coordinate frame (collapse/expand rescale positions, offsets translate
// them), unioned with the request, grown by the query's offset reach.
// The evaluator and the meta-data pass share this definition so that
// optimized plans and the reference interpreter agree exactly, even on
// degenerate queries whose true dependency range is unbounded (value
// offsets over constant sequences).
func Universe(root *Node, requested seq.Span) seq.Span {
	hull := AllFramesHull(root).Union(requested)
	if hull.IsEmpty() {
		hull = seq.NewSpan(0, 0)
	}
	slack := Reach(root)
	return hull.Grow(slack, slack)
}

// AllFramesHull unions the base-record hulls of every node's coordinate
// frame. Collapse and Expand rescale positions, so a record can live at
// very different coordinates at different depths of the query; bounds
// derived from the universe ("no records beyond here") must hold in
// every frame at once, hence the union.
func AllFramesHull(n *Node) seq.Span {
	out := TransformedHull(n)
	for _, in := range n.Inputs {
		out = out.Union(AllFramesHull(in))
	}
	return out
}

// TransformedHull returns the hull of the base-record positions
// expressed in the node's own coordinate frame.
func TransformedHull(n *Node) seq.Span {
	switch n.Kind {
	case KindSelect, KindProject, KindCompose, KindValueOffset:
		// Position-preserving operators (a value offset moves records'
		// *values*, not the positions they land on): the hull is the
		// union of the inputs' hulls.
		out := seq.EmptySpan
		for _, in := range n.Inputs {
			out = out.Union(TransformedHull(in))
		}
		return out
	case KindBase:
		return n.Seq.Info().Span
	case KindConst:
		return seq.EmptySpan // no materialized records of its own
	case KindPosOffset:
		return TransformedHull(n.Inputs[0]).Shift(-n.Offset)
	case KindAgg:
		h := TransformedHull(n.Inputs[0])
		w := n.Agg.Window
		lo, hi := int64(0), int64(0)
		if !w.HiUnbounded {
			hi = abs64(w.Hi)
		}
		if !w.LoUnbounded {
			lo = abs64(w.Lo)
		}
		return h.Grow(hi, lo)
	case KindCollapse:
		h := TransformedHull(n.Inputs[0])
		if h.IsEmpty() {
			return h
		}
		return seq.Span{Start: FloorDiv(h.Start, n.Factor), End: FloorDiv(h.End, n.Factor)}
	case KindExpand:
		h := TransformedHull(n.Inputs[0])
		if h.IsEmpty() {
			return h
		}
		return seq.Span{
			Start: seq.ClampPos(h.Start * n.Factor),
			End:   seq.ClampPos(h.End*n.Factor + n.Factor - 1),
		}
	default:
		out := seq.EmptySpan
		for _, in := range n.Inputs {
			out = out.Union(TransformedHull(in))
		}
		return out
	}
}

// Reach bounds how far any derived record can move from the base
// hull: the sum over the tree of |positional offset| plus bounded window
// extents. It is used to size the bounded "universe" inside which all
// evaluation (reference and physical) can be confined.
func Reach(n *Node) int64 {
	var own int64
	switch n.Kind {
	case KindBase, KindConst, KindSelect, KindProject, KindCompose:
		// No positional displacement of their own.
	case KindPosOffset:
		own = abs64(n.Offset)
	case KindValueOffset:
		own = abs64(n.Offset)
	case KindAgg:
		w := n.Agg.Window
		if !w.LoUnbounded {
			own += abs64(w.Lo)
		}
		if !w.HiUnbounded {
			own += abs64(w.Hi)
		}
	case KindCollapse:
		// Collapse multiplies positions going down: reach below a
		// collapse must scale by the factor (the input of output
		// position j+r lies up to r*k+k-1 input positions away).
		r := Reach(n.Inputs[0])
		if r > (1<<40)/n.Factor {
			return 1 << 40 // saturate; spans clamp at sentinels anyway
		}
		return r*n.Factor + n.Factor
	case KindExpand:
		own = n.Factor
	}
	var total int64 = own
	for _, in := range n.Inputs {
		total += Reach(in)
	}
	return total
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Universe returns the bounded range the evaluator searches within.
func (e *Evaluator) Universe() seq.Span { return e.universe }

// At returns the output record of node n at position pos, per §2.1.
func (e *Evaluator) At(n *Node, pos seq.Pos) (seq.Record, error) {
	key := evalKey{n, pos}
	if r, ok := e.memo[key]; ok {
		return r, nil
	}
	r, err := e.eval(n, pos)
	if err != nil {
		return nil, err
	}
	e.memo[key] = r
	return r, nil
}

func (e *Evaluator) eval(n *Node, pos seq.Pos) (seq.Record, error) {
	switch n.Kind {
	case KindBase, KindConst:
		return n.Seq.Probe(pos)

	case KindSelect:
		r, err := e.At(n.Inputs[0], pos)
		if err != nil || r.IsNull() {
			return nil, err
		}
		ok, err := expr.EvalPred(n.Pred, r)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return r, nil

	case KindProject:
		r, err := e.At(n.Inputs[0], pos)
		if err != nil || r.IsNull() {
			return nil, err
		}
		out := make(seq.Record, len(n.Items))
		for i, it := range n.Items {
			v, err := it.Expr.Eval(r)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil

	case KindPosOffset:
		p := pos + n.Offset
		if p <= seq.MinPos || p >= seq.MaxPos {
			return nil, nil
		}
		return e.At(n.Inputs[0], p)

	case KindValueOffset:
		return e.evalValueOffset(n, pos)

	case KindAgg:
		return e.evalAgg(n, pos)

	case KindCollapse:
		return e.evalCollapse(n, pos)

	case KindExpand:
		return e.At(n.Inputs[0], FloorDiv(pos, n.Factor))

	case KindCompose:
		l, err := e.At(n.Inputs[0], pos)
		if err != nil || l.IsNull() {
			return nil, err
		}
		r, err := e.At(n.Inputs[1], pos)
		if err != nil || r.IsNull() {
			return nil, err
		}
		joined := l.Concat(r)
		if n.Pred != nil {
			ok, err := expr.EvalPred(n.Pred, joined)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
		}
		return joined, nil

	default:
		return nil, fmt.Errorf("algebra: cannot evaluate %s", n.Kind)
	}
}

func (e *Evaluator) evalValueOffset(n *Node, pos seq.Pos) (seq.Record, error) {
	in := n.Inputs[0]
	need := abs64(n.Offset)
	var count int64
	if n.Offset < 0 {
		start := pos - 1
		if start > e.universe.End {
			start = e.universe.End
		}
		for p := start; p >= e.universe.Start; p-- {
			r, err := e.At(in, p)
			if err != nil {
				return nil, err
			}
			if !r.IsNull() {
				count++
				if count == need {
					return r, nil
				}
			}
		}
		return nil, nil
	}
	start := pos + 1
	if start < e.universe.Start {
		start = e.universe.Start
	}
	for p := start; p <= e.universe.End; p++ {
		r, err := e.At(in, p)
		if err != nil {
			return nil, err
		}
		if !r.IsNull() {
			count++
			if count == need {
				return r, nil
			}
		}
	}
	return nil, nil
}

func (e *Evaluator) evalCollapse(n *Node, pos seq.Pos) (seq.Record, error) {
	in := n.Inputs[0]
	group := GroupSpan(pos, n.Factor)
	var vals []seq.Value
	for p := group.Start; p <= group.End && !group.IsEmpty(); p++ {
		r, err := e.At(in, p)
		if err != nil {
			return nil, err
		}
		if r.IsNull() {
			continue
		}
		if n.Agg.Arg >= 0 {
			vals = append(vals, r[n.Agg.Arg])
		} else {
			vals = append(vals, seq.Int(1))
		}
	}
	v, ok, err := n.Agg.Func.Apply(vals)
	if err != nil || !ok {
		return nil, err
	}
	return seq.Record{v}, nil
}

func (e *Evaluator) evalAgg(n *Node, pos seq.Pos) (seq.Record, error) {
	in := n.Inputs[0]
	// Bounded window sides are exact requirements; only the unbounded
	// sides of cumulative/whole-sequence windows are capped by the
	// universe (no records exist beyond it in any frame).
	span := n.Agg.Window.Positions(pos).ClampUnboundedTo(e.universe)
	var vals []seq.Value
	for p := span.Start; p <= span.End && !span.IsEmpty(); p++ {
		r, err := e.At(in, p)
		if err != nil {
			return nil, err
		}
		if r.IsNull() {
			continue
		}
		if n.Agg.Arg >= 0 {
			vals = append(vals, r[n.Agg.Arg])
		} else {
			vals = append(vals, seq.Int(1)) // Count over whole records
		}
	}
	v, ok, err := n.Agg.Func.Apply(vals)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return seq.Record{v}, nil
}

// EvalRange evaluates the query at every position of the bounded span and
// returns the non-Null results in positional order. It is the reference
// answer the engine's plans are compared against.
func EvalRange(root *Node, span seq.Span) ([]seq.Entry, error) {
	if !span.Bounded() {
		return nil, fmt.Errorf("algebra: EvalRange requires a bounded span, got %v", span)
	}
	ev, err := NewEvaluator(root, span)
	if err != nil {
		return nil, err
	}
	var out []seq.Entry
	for p := span.Start; p <= span.End; p++ {
		r, err := ev.At(root, p)
		if err != nil {
			return nil, err
		}
		if !r.IsNull() {
			out = append(out, seq.Entry{Pos: p, Rec: r})
		}
	}
	return out, nil
}
