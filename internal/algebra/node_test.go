package algebra

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/seq"
)

var closeSchema = seq.MustSchema(seq.Field{Name: "close", Type: seq.TFloat})

// mkBase builds a base node over a materialized sequence with records
// {close: val} at the given positions, val = pos as float.
func mkBase(t *testing.T, name string, positions ...seq.Pos) *Node {
	t.Helper()
	es := make([]seq.Entry, len(positions))
	for i, p := range positions {
		es[i] = seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p))}}
	}
	return Base(name, seq.MustMaterialized(closeSchema, es))
}

// mkBaseVals builds a base node with explicit (pos, value) pairs.
func mkBaseVals(t *testing.T, name string, pairs map[seq.Pos]float64) *Node {
	t.Helper()
	es := make([]seq.Entry, 0, len(pairs))
	for p, v := range pairs {
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(v)}})
	}
	return Base(name, seq.MustMaterialized(closeSchema, es))
}

func gtConst(t *testing.T, n *Node, col string, v float64) expr.Expr {
	t.Helper()
	c, err := expr.NewCol(n.Schema, col)
	if err != nil {
		t.Fatal(err)
	}
	e, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(v)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBaseNode(t *testing.T) {
	b := mkBase(t, "ibm", 1, 2, 3)
	if b.Kind != KindBase || b.Name != "ibm" || !b.Schema.Equal(closeSchema) {
		t.Errorf("base node = %+v", b)
	}
	if !b.IsLeaf() || b.NonUnitScope() {
		t.Error("base must be a unit-scope leaf")
	}
}

func TestConstNode(t *testing.T) {
	c, err := Const(closeSchema, seq.Record{seq.Float(7)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != KindConst || !c.IsLeaf() {
		t.Error("const node malformed")
	}
	if _, err := Const(closeSchema, nil); err == nil {
		t.Error("Null constant must be rejected")
	}
}

func TestSelectValidation(t *testing.T) {
	b := mkBase(t, "ibm", 1)
	s, err := Select(b, gtConst(t, b, "close", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Schema.Equal(b.Schema) {
		t.Error("select must preserve schema")
	}
	if _, err := Select(nil, nil); err == nil {
		t.Error("nil inputs must be rejected")
	}
	c, _ := expr.NewCol(b.Schema, "close")
	if _, err := Select(b, c); err == nil {
		t.Error("non-bool predicate must be rejected")
	}
	// Predicate referencing a column outside the schema.
	bad := &expr.Col{Index: 5, Name: "ghost", Typ: seq.TBool}
	if _, err := Select(b, bad); err == nil {
		t.Error("out-of-schema predicate must be rejected")
	}
}

func TestProjectValidation(t *testing.T) {
	b := mkBase(t, "ibm", 1)
	c, _ := expr.NewCol(b.Schema, "close")
	doubled, _ := expr.NewBin(expr.OpMul, c, expr.Literal(seq.Float(2)))
	p, err := Project(b, []ProjItem{{Expr: c}, {Expr: doubled, Name: "twice"}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.Field(0).Name != "close" || p.Schema.Field(1).Name != "twice" {
		t.Errorf("project schema = %v", p.Schema)
	}
	if p.Schema.Field(1).Type != seq.TFloat {
		t.Error("computed projection type wrong")
	}
	if _, err := Project(b, nil); err == nil {
		t.Error("empty projection must be rejected")
	}
	if _, err := Project(b, []ProjItem{{Expr: nil}}); err == nil {
		t.Error("nil expression must be rejected")
	}
	// Default naming of non-column expressions.
	p2, err := Project(b, []ProjItem{{Expr: doubled}})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Schema.Field(0).Name != "expr0" {
		t.Errorf("default name = %q", p2.Schema.Field(0).Name)
	}
	// ProjectCols convenience.
	p3, err := ProjectCols(b, "close")
	if err != nil {
		t.Fatal(err)
	}
	if p3.Schema.NumFields() != 1 {
		t.Error("ProjectCols wrong")
	}
	if _, err := ProjectCols(b, "ghost"); err == nil {
		t.Error("unknown column must be rejected")
	}
}

func TestOffsetValidation(t *testing.T) {
	b := mkBase(t, "ibm", 1)
	if _, err := PosOffset(b, -5); err != nil {
		t.Error(err)
	}
	if _, err := PosOffset(nil, 1); err == nil {
		t.Error("nil input must be rejected")
	}
	if _, err := ValueOffset(b, 0); err == nil {
		t.Error("zero value offset must be rejected")
	}
	prev, err := Previous(b)
	if err != nil || prev.Offset != -1 {
		t.Errorf("Previous = %+v, %v", prev, err)
	}
	next, err := Next(b)
	if err != nil || next.Offset != 1 {
		t.Errorf("Next = %+v, %v", next, err)
	}
	if !prev.NonUnitScope() {
		t.Error("value offset must be non-unit scope")
	}
	po, _ := PosOffset(b, -5)
	if po.NonUnitScope() {
		t.Error("positional offset has unit scope")
	}
}

func TestAggValidation(t *testing.T) {
	b := mkBase(t, "ibm", 1)
	a, err := AggCol(b, AggSum, "close", Trailing(6), "sum6")
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema.NumFields() != 1 || a.Schema.Field(0).Name != "sum6" || a.Schema.Field(0).Type != seq.TFloat {
		t.Errorf("agg schema = %v", a.Schema)
	}
	if !a.NonUnitScope() {
		t.Error("aggregate must be non-unit scope")
	}
	// Avg yields float; count yields int.
	av, _ := AggCol(b, AggAvg, "close", Trailing(3), "")
	if av.Schema.Field(0).Type != seq.TFloat || av.Schema.Field(0).Name != "avg" {
		t.Errorf("avg schema = %v", av.Schema)
	}
	cn, err := Agg(b, AggSpec{Func: AggCount, Arg: -1, Window: Trailing(3)})
	if err != nil {
		t.Fatal(err)
	}
	if cn.Schema.Field(0).Type != seq.TInt {
		t.Error("count must be int")
	}
	// Invalid specs.
	if _, err := Agg(b, AggSpec{Func: AggSum, Arg: -1, Window: Trailing(3)}); err == nil {
		t.Error("sum without attribute must be rejected")
	}
	if _, err := Agg(b, AggSpec{Func: AggSum, Arg: 9, Window: Trailing(3)}); err == nil {
		t.Error("out-of-range attribute must be rejected")
	}
	if _, err := Agg(b, AggSpec{Func: AggSum, Arg: 0, Window: Range(3, 1)}); err == nil {
		t.Error("empty window must be rejected")
	}
	if _, err := AggCol(b, AggSum, "ghost", Trailing(3), ""); err == nil {
		t.Error("unknown attribute must be rejected")
	}
	// Sum over strings must be rejected.
	strSchema := seq.MustSchema(seq.Field{Name: "s", Type: seq.TString})
	sb := Base("s", seq.MustMaterialized(strSchema, nil))
	if _, err := AggCol(sb, AggSum, "s", Trailing(2), ""); err == nil {
		t.Error("sum over string must be rejected")
	}
	if _, err := AggCol(sb, AggMin, "s", Trailing(2), ""); err != nil {
		t.Error("min over string is legal (ordered type)")
	}
}

func TestComposeValidation(t *testing.T) {
	l := mkBase(t, "ibm", 1)
	r := mkBase(t, "hp", 1)
	schema, err := ComposeSchema(l, r, "ibm", "hp")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Field(0).Name != "ibm.close" || schema.Field(1).Name != "hp.close" {
		t.Errorf("compose schema = %v", schema)
	}
	lc, _ := expr.NewCol(schema, "ibm.close")
	rc, _ := expr.NewCol(schema, "hp.close")
	pred, _ := expr.NewBin(expr.OpGt, lc, rc)
	c, err := Compose(l, r, pred, "ibm", "hp")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != KindCompose || len(c.Inputs) != 2 {
		t.Error("compose node malformed")
	}
	if _, err := Compose(nil, r, nil, "", ""); err == nil {
		t.Error("nil input must be rejected")
	}
	if _, err := Compose(l, r, lc, "ibm", "hp"); err == nil {
		t.Error("non-bool join predicate must be rejected")
	}
}

func TestBases(t *testing.T) {
	l := mkBase(t, "a", 1)
	r := mkBase(t, "b", 1)
	c, _ := Compose(l, r, nil, "a", "b")
	s, _ := Select(c, gtConst(t, c, "a.close", 0))
	bases := s.Bases()
	if len(bases) != 2 || bases[0].Name != "a" || bases[1].Name != "b" {
		t.Errorf("Bases = %v", bases)
	}
}

func TestNodeString(t *testing.T) {
	b := mkBase(t, "ibm", 1)
	sel, _ := Select(b, gtConst(t, b, "close", 7))
	agg, _ := AggCol(sel, AggSum, "close", Trailing(6), "s6")
	str := agg.String()
	for _, want := range []string{"sum(close) over [-5, +0] as s6", "select((close > 7))", "base(ibm)"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q:\n%s", want, str)
		}
	}
	prev, _ := Previous(b)
	if !strings.Contains(prev.String(), "voffset(-1)") {
		t.Errorf("String() = %q", prev.String())
	}
	po, _ := PosOffset(b, 3)
	if !strings.Contains(po.String(), "offset(+3)") {
		t.Errorf("String() = %q", po.String())
	}
	con, _ := Const(closeSchema, seq.Record{seq.Float(1)})
	if !strings.Contains(con.String(), "const(") {
		t.Errorf("String() = %q", con.String())
	}
	cmp, _ := Compose(b, con, nil, "l", "r")
	if !strings.Contains(cmp.String(), "compose") {
		t.Errorf("String() = %q", cmp.String())
	}
	pr, _ := ProjectCols(b, "close")
	if !strings.Contains(pr.String(), "project(close)") {
		t.Errorf("String() = %q", pr.String())
	}
}

func TestAggFuncStringsAndTypes(t *testing.T) {
	for f := AggSum; f <= AggMax; f++ {
		if f.String() == "" {
			t.Errorf("AggFunc %d has no name", f)
		}
	}
	if _, err := AggAvg.ResultType(seq.TString); err == nil {
		t.Error("avg over string must fail")
	}
	if typ, err := AggCount.ResultType(seq.TString); err != nil || typ != seq.TInt {
		t.Error("count is int over anything")
	}
	if typ, err := AggSum.ResultType(seq.TInt); err != nil || typ != seq.TInt {
		t.Error("sum preserves int")
	}
}

func TestWindowBasics(t *testing.T) {
	w := Trailing(6)
	if w.Lo != -5 || w.Hi != 0 {
		t.Errorf("Trailing(6) = %+v", w)
	}
	if s, ok := w.Size(); !ok || s != 6 {
		t.Errorf("size = %d, %v", s, ok)
	}
	if !w.Sequential() {
		t.Error("trailing windows are sequential")
	}
	lead := Range(1, 3)
	if lead.Sequential() {
		t.Error("leading windows are not sequential")
	}
	cum := Cumulative()
	if _, ok := cum.Size(); ok {
		t.Error("cumulative window has no fixed size")
	}
	if !cum.Sequential() {
		t.Error("cumulative windows are sequential")
	}
	all := All()
	if !all.Sequential() {
		t.Error("the all-window scope is constant, hence sequential")
	}
	half := Window{Lo: 1, HiUnbounded: true}
	if half.Sequential() {
		t.Error("forward-unbounded windows are not sequential")
	}
	if got := w.Positions(10); got != seq.NewSpan(5, 10) {
		t.Errorf("Positions = %v", got)
	}
	if got := cum.Positions(10); got.Start != seq.MinPos || got.End != 10 {
		t.Errorf("cumulative Positions = %v", got)
	}
	for _, win := range []Window{w, lead, cum, all, half} {
		if win.String() == "" {
			t.Error("window must render")
		}
	}
}
