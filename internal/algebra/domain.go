package algebra

import (
	"fmt"

	"repro/internal/seq"
)

// Ordering-domain operators (§5.1 "Ordering Domains"): when two ordering
// domains are related by a constant factor — days and weeks, minutes and
// hours — a sequence can be "collapsed" into the coarser domain or
// "expanded" into the finer one.
//
//   - Collapse(S, k, agg): output position j aggregates the input
//     records at positions {jk, ..., jk+k-1} (one output per group of k
//     input positions; Null iff the group is empty). A daily sequence
//     collapsed with k=7 and Avg yields the weekly average.
//   - Expand(S, k): output position i carries the record at input
//     position floor(i/k) — each coarse record is replicated across its
//     k fine positions.
//
// Both operators have fixed-size scopes but their scopes are NOT
// relative (the positions read are {jk+c}, an affine — not translated —
// function of the output position), so the §3.1 offset push-down rules
// do not apply to them and Collapse delimits query blocks like the other
// non-unit-scope operators.

// Collapse builds the domain-coarsening operator.
func Collapse(in *Node, factor int64, spec AggSpec) (*Node, error) {
	if in == nil {
		return nil, fmt.Errorf("algebra: collapse requires an input")
	}
	if factor <= 1 {
		return nil, fmt.Errorf("algebra: collapse factor must be > 1, got %d", factor)
	}
	var argType seq.Type
	switch {
	case spec.Arg == -1:
		if spec.Func != AggCount {
			return nil, fmt.Errorf("algebra: aggregate %s requires an input attribute", spec.Func)
		}
	case spec.Arg >= 0 && spec.Arg < in.Schema.NumFields():
		argType = in.Schema.Field(spec.Arg).Type
	default:
		return nil, fmt.Errorf("algebra: collapse attribute index %d out of range for %v", spec.Arg, in.Schema)
	}
	out := seq.TInt
	if spec.Arg >= 0 {
		var err error
		out, err = spec.Func.ResultType(argType)
		if err != nil {
			return nil, err
		}
	}
	if spec.As == "" {
		spec.As = spec.Func.String()
	}
	// The window field is unused by Collapse (grouping replaces it).
	spec.Window = Window{}
	schema, err := seq.NewSchema(seq.Field{Name: spec.As, Type: out})
	if err != nil {
		return nil, err
	}
	return &Node{
		Kind: KindCollapse, Inputs: []*Node{in}, Schema: schema,
		Factor: factor, Agg: &spec,
	}, nil
}

// Expand builds the domain-refining operator.
func Expand(in *Node, factor int64) (*Node, error) {
	if in == nil {
		return nil, fmt.Errorf("algebra: expand requires an input")
	}
	if factor <= 1 {
		return nil, fmt.Errorf("algebra: expand factor must be > 1, got %d", factor)
	}
	return &Node{Kind: KindExpand, Inputs: []*Node{in}, Schema: in.Schema, Factor: factor}, nil
}

// FloorDiv divides rounding toward negative infinity (Go's / truncates
// toward zero), so position grouping works for negative positions too.
func FloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// GroupSpan returns the input span covered by output group j under
// factor k: [jk, jk+k-1], clamped to the sentinels.
func GroupSpan(j seq.Pos, k int64) seq.Span {
	return seq.Span{
		Start: seq.ClampPos(j * k),
		End:   seq.ClampPos(j*k + k - 1),
	}
}
