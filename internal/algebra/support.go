package algebra

// Support analysis: which blocks produce non-Null records at unboundedly
// many positions, and which blocks compute *different values* under
// different evaluation universes.
//
// The evaluator bounds every unbounded walk — a value offset's search for
// the |l|-th non-Null neighbour, an unbounded aggregate window — by the
// evaluation universe (Universe in eval.go). When the operator's input
// holds non-Null records only inside the data hull, the clamp is
// harmless: the walk would have found nothing beyond the hull anyway, so
// every universe that covers the hull yields the same records. But when
// the input has *infinite support* — a value offset fills every position
// beyond the data edge with its nearest neighbour, a constant sequence is
// non-Null everywhere — the walk's result depends on where the universe
// ends, and two evaluations under different universes legitimately
// disagree. Such a block is universe-sensitive: its output is only
// meaningful relative to the universe it was evaluated under, so it must
// never be materialized and substituted into a query planned under a
// different universe.

// InfiniteSupport reports whether the node's output may hold non-Null
// records at unboundedly many positions. The analysis is conservative:
// true means "possibly infinite", false is a guarantee of finite support.
func InfiniteSupport(n *Node) bool {
	switch n.Kind {
	case KindBase:
		// Physical sequences hold finitely many records.
		return false
	case KindConst:
		// A constant sequence repeats its record at every position.
		return true
	case KindSelect, KindProject, KindPosOffset, KindCollapse, KindExpand:
		// Null in, Null out (selection and projection preserve Nulls;
		// offset shifts; collapse/expand regroup): support follows input.
		return InfiniteSupport(n.Inputs[0])
	case KindValueOffset:
		// Beyond the data edge every position still has an |l|-th non-Null
		// neighbour on the data side, so the output extends unboundedly in
		// that direction (conservatively: unless the input is everywhere
		// Null, which we do not try to prove).
		return true
	case KindAgg:
		if n.Agg.Window.LoUnbounded || n.Agg.Window.HiUnbounded {
			// An unbounded window sees the whole data prefix/suffix from
			// unboundedly many positions.
			return true
		}
		return InfiniteSupport(n.Inputs[0])
	case KindCompose:
		// Composition is Null when either side is: infinite only if both are.
		return InfiniteSupport(n.Inputs[0]) && InfiniteSupport(n.Inputs[1])
	default:
		return true
	}
}

// UniverseSensitive reports whether any operator in the subtree computes
// values that depend on the evaluation universe: a value offset, or an
// unbounded-window aggregate, whose input has possibly-infinite support.
// Materializing such a block is unsound — the stored records encode the
// universe of the materializing evaluation, and a later query planned
// under a different universe disagrees with them (the fuzz seed-81
// defect: collapse over a materialized voffset-over-voffset block).
func UniverseSensitive(n *Node) bool {
	switch n.Kind {
	case KindValueOffset:
		if InfiniteSupport(n.Inputs[0]) {
			return true
		}
	case KindAgg:
		if (n.Agg.Window.LoUnbounded || n.Agg.Window.HiUnbounded) && InfiniteSupport(n.Inputs[0]) {
			return true
		}
	case KindBase, KindConst, KindSelect, KindProject, KindPosOffset,
		KindCompose, KindCollapse, KindExpand:
		// Bounded-scope reads: sensitivity can only come from below.
	}
	for _, in := range n.Inputs {
		if UniverseSensitive(in) {
			return true
		}
	}
	return false
}
