package algebra

// Divergence analysis. A cumulative or whole-sequence aggregate over an
// input with unboundedly many records — a constant sequence, or anything
// derived from one without being bounded by a base sequence — has no
// finite value: count over (-inf, i] of a constant sequence is infinite
// at every position. Such queries are rejected up front; any finite
// answer would be an artifact of evaluation bounds rather than a
// property of the data, and query transformations that are perfectly
// sound on well-defined queries (e.g. pushing a positional offset
// through the aggregate) would appear to change those artifacts.

// supportSides reports whether the node's non-Null support can extend
// unboundedly to the left and to the right. The analysis is
// conservative: it may report true for inputs that happen to be empty.
func supportSides(n *Node) (left, right bool) {
	switch n.Kind {
	case KindBase:
		return false, false
	case KindConst:
		return true, true
	case KindSelect, KindProject:
		return supportSides(n.Inputs[0])
	case KindPosOffset, KindCollapse, KindExpand:
		return supportSides(n.Inputs[0])
	case KindValueOffset:
		l, r := supportSides(n.Inputs[0])
		if n.Offset < 0 {
			// Defined forever after the |k|-th record.
			return l, true
		}
		return true, r
	case KindAgg:
		l, r := supportSides(n.Inputs[0])
		w := n.Agg.Window
		if w.LoUnbounded {
			r = true // defined forever once any record exists
		}
		if w.HiUnbounded {
			l = true
		}
		return l, r
	case KindCompose:
		// Non-Null only where both inputs are.
		ll, lr := supportSides(n.Inputs[0])
		rl, rr := supportSides(n.Inputs[1])
		return ll && rl, lr && rr
	default:
		return true, true
	}
}

// Divergent reports whether the query contains an aggregate whose scope
// covers unboundedly many records.
func Divergent(n *Node) bool {
	if n.Kind == KindAgg {
		l, r := supportSides(n.Inputs[0])
		w := n.Agg.Window
		if (w.LoUnbounded && l) || (w.HiUnbounded && r) {
			return true
		}
	}
	for _, in := range n.Inputs {
		if Divergent(in) {
			return true
		}
	}
	return false
}
