package algebra

import (
	"fmt"

	"repro/internal/seq"
)

// AggFunc enumerates the aggregate functions of the model (§2.1: "The
// aggregate functions allowed are Avg, Count, Min, Max and Sum").
type AggFunc int

// The aggregate functions.
const (
	AggSum AggFunc = iota
	AggAvg
	AggCount
	AggMin
	AggMax
)

// String returns the function's name.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// ResultType returns the output type of the aggregate applied to an input
// of type in.
func (f AggFunc) ResultType(in seq.Type) (seq.Type, error) {
	switch f {
	case AggCount:
		return seq.TInt, nil
	case AggAvg:
		if !in.Numeric() {
			return seq.TInvalid, fmt.Errorf("algebra: avg requires numeric input, got %s", in)
		}
		return seq.TFloat, nil
	case AggSum:
		if !in.Numeric() {
			return seq.TInvalid, fmt.Errorf("algebra: sum requires numeric input, got %s", in)
		}
		return in, nil
	case AggMin, AggMax:
		if !in.Numeric() && in != seq.TString {
			return seq.TInvalid, fmt.Errorf("algebra: %s requires an ordered input type, got %s", f, in)
		}
		return in, nil
	default:
		return seq.TInvalid, fmt.Errorf("algebra: unknown aggregate %v", f)
	}
}

// Apply folds the aggregate over the given values (already filtered to
// non-Null inputs). It returns ok=false when vals is empty, in which case
// the operator's output is the Null record (§2.1: "Null records in the
// inputs are ignored if there is at least one non-Null record; else the
// output is a Null record").
func (f AggFunc) Apply(vals []seq.Value) (seq.Value, bool, error) {
	if len(vals) == 0 {
		return seq.Value{}, false, nil
	}
	switch f {
	case AggCount:
		return seq.Int(int64(len(vals))), true, nil
	case AggSum:
		if vals[0].T == seq.TInt {
			var s int64
			for _, v := range vals {
				s += v.AsInt()
			}
			return seq.Int(s), true, nil
		}
		var s float64
		for _, v := range vals {
			s += v.AsFloat()
		}
		return seq.Float(s), true, nil
	case AggAvg:
		var s float64
		for _, v := range vals {
			s += v.AsFloat()
		}
		return seq.Float(s / float64(len(vals))), true, nil
	case AggMin, AggMax:
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := v.Compare(best)
			if err != nil {
				return seq.Value{}, false, err
			}
			if (f == AggMin && c < 0) || (f == AggMax && c > 0) {
				best = v
			}
		}
		return best, true, nil
	default:
		return seq.Value{}, false, fmt.Errorf("algebra: unknown aggregate %v", f)
	}
}

// Window is the agg_pos function of an aggregate operator, restricted to
// the relative form the paper's operators use: the scope at position i is
// the positions {i+Lo, ..., i+Hi}, optionally unbounded on either side.
//
//   - Trailing(w):   [i-w+1, i]      — "moving w-position" window
//   - Cumulative():  (-inf, i]       — running aggregate
//   - All():         (-inf, +inf)    — whole-sequence aggregate (the
//     special case in §2.1 where agg_pos selects all positions)
type Window struct {
	Lo, Hi      int64
	LoUnbounded bool
	HiUnbounded bool
}

// Trailing returns the moving window covering the current position and
// the w-1 previous ones. w must be positive.
func Trailing(w int64) Window { return Window{Lo: -(w - 1), Hi: 0} }

// Range returns the relative window [i+lo, i+hi].
func Range(lo, hi int64) Window { return Window{Lo: lo, Hi: hi} }

// Cumulative returns the running window (-inf, i].
func Cumulative() Window { return Window{LoUnbounded: true, Hi: 0} }

// All returns the whole-sequence window.
func All() Window { return Window{LoUnbounded: true, HiUnbounded: true} }

// Validate checks internal consistency.
func (w Window) Validate() error {
	if !w.LoUnbounded && !w.HiUnbounded && w.Lo > w.Hi {
		return fmt.Errorf("algebra: window [%d, %d] is empty", w.Lo, w.Hi)
	}
	return nil
}

// Size returns the number of positions in the window and whether that
// size is fixed (false for unbounded windows).
func (w Window) Size() (int64, bool) {
	if w.LoUnbounded || w.HiUnbounded {
		return 0, false
	}
	return w.Hi - w.Lo + 1, true
}

// Sequential reports whether the window's scope is sequential in the
// sense of §2.3: Scope(i) ⊆ Scope(i-1) ∪ {i}. Relative windows are
// sequential exactly when they end at the current position (Hi == 0) or
// extend unboundedly on the right only together with the left
// (the All window trivially has Scope(i) == Scope(i-1)).
func (w Window) Sequential() bool {
	if w.HiUnbounded {
		return w.LoUnbounded // All: scope constant across positions
	}
	return w.Hi == 0
}

// Positions returns the window's absolute position span at position i,
// clamping unbounded sides to the sentinels.
func (w Window) Positions(i seq.Pos) seq.Span {
	lo, hi := seq.MinPos, seq.MaxPos
	if !w.LoUnbounded {
		lo = seq.ClampPos(i + w.Lo)
	}
	if !w.HiUnbounded {
		hi = seq.ClampPos(i + w.Hi)
	}
	return seq.Span{Start: lo, End: hi}
}

// String renders the window.
func (w Window) String() string {
	switch {
	case w.LoUnbounded && w.HiUnbounded:
		return "all"
	case w.LoUnbounded:
		return fmt.Sprintf("(-inf, %+d]", w.Hi)
	case w.HiUnbounded:
		return fmt.Sprintf("[%+d, +inf)", w.Lo)
	default:
		return fmt.Sprintf("[%+d, %+d]", w.Lo, w.Hi)
	}
}

// AggSpec parameterizes an aggregate operator: the function, the input
// expression it folds (nil means "the record itself", legal only for
// Count), the window, and the output attribute name.
type AggSpec struct {
	Func   AggFunc
	Arg    int // input attribute index; -1 for Count over whole records
	Window Window
	As     string // output attribute name; defaults to the function name
}
