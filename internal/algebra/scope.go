package algebra

import "fmt"

// ScopeProps describes the scope of an operator on one of its inputs
// (§2.3): the set of input positions the operator function reads to
// produce the output at a position, abstracted into the three properties
// the optimizer reasons with.
//
// When Relative is true, Win gives the relative window {i+Lo .. i+Hi} of
// positions read (possibly unbounded on either side). Value offsets have
// data-dependent scopes — which positions they read depends on where the
// non-Null records lie — so they are non-relative here, and the window
// recorded for them is their *effective* scope (Definition 3.3): the
// relative hull that always contains the true scope.
type ScopeProps struct {
	FixedSize  bool
	Size       int64 // meaningful when FixedSize
	Sequential bool
	Relative   bool
	Win        Window // relative (or effective) window
}

// UnitScope is the scope of selections, projections and compose inputs:
// exactly the current position.
func UnitScope() ScopeProps {
	return ScopeProps{FixedSize: true, Size: 1, Sequential: true, Relative: true, Win: Range(0, 0)}
}

// Unit reports a fixed scope of size one.
func (p ScopeProps) Unit() bool { return p.FixedSize && p.Size == 1 }

// Scope returns the operator's scope on its input-th input sequence.
func (n *Node) Scope(input int) (ScopeProps, error) {
	if input < 0 || input >= len(n.Inputs) {
		return ScopeProps{}, fmt.Errorf("algebra: %s has no input %d", n.Kind, input)
	}
	switch n.Kind {
	case KindBase, KindConst:
		// Unreachable: leaves have no inputs, so the bounds check above
		// already rejected the call.
		return ScopeProps{}, fmt.Errorf("algebra: %s is a leaf and has no input scope", n.Kind)
	case KindSelect, KindProject, KindCompose:
		return UnitScope(), nil
	case KindPosOffset:
		// Scope {i+l}: fixed size one, relative; sequential only for the
		// identity offset (§2.3: "the scope of a positional offset
		// operator is not [sequential]").
		return ScopeProps{
			FixedSize: true, Size: 1,
			Sequential: n.Offset == 0,
			Relative:   true,
			Win:        Range(n.Offset, n.Offset),
		}, nil
	case KindValueOffset:
		// Data-dependent: the |l|-th non-Null neighbor may be arbitrarily
		// far away. Variable size, not sequential, not relative. The
		// effective scope is the open-ended window on the relevant side.
		w := Window{LoUnbounded: true, Hi: -1}
		if n.Offset > 0 {
			w = Window{Lo: 1, HiUnbounded: true}
		}
		return ScopeProps{Win: w}, nil
	case KindAgg:
		w := n.Agg.Window
		size, fixed := w.Size()
		return ScopeProps{
			FixedSize:  fixed,
			Size:       size,
			Sequential: w.Sequential(),
			Relative:   true,
			Win:        w,
		}, nil
	case KindCollapse:
		// Scope at output j is {jk, ..., jk+k-1}: fixed size k, but the
		// positions are an affine (not translated) function of j — not
		// relative, not sequential in the §2.3 sense (consecutive output
		// scopes are disjoint), though trivially single-scan evaluable.
		return ScopeProps{FixedSize: true, Size: n.Factor}, nil
	case KindExpand:
		// Scope {floor(i/k)}: fixed size one, non-relative (affine).
		return ScopeProps{FixedSize: true, Size: 1}, nil
	default:
		return ScopeProps{}, fmt.Errorf("algebra: leaf %s has no scope", n.Kind)
	}
}

// ComposeScopes combines the scope of an outer operator B on its input
// with the scope of the inner operator A producing that input, yielding
// the scope of the complex operator B∘A on A's input (§2.3: Op.Scope
// is the union over k in B.Scope of A.Scope(k)). The combination
// realizes Proposition 2.1:
//
//	(a) fixed ∘ fixed   = fixed (size ≤ product; for windows, width sum)
//	(b) sequential ∘ sequential = sequential
//	(c) relative ∘ relative     = relative (windows add)
func ComposeScopes(outer, inner ScopeProps) ScopeProps {
	win := addWindows(outer.Win, inner.Win)
	out := ScopeProps{
		FixedSize:  outer.FixedSize && inner.FixedSize,
		Sequential: outer.Sequential && inner.Sequential,
		Relative:   outer.Relative && inner.Relative,
		Win:        win,
	}
	if out.FixedSize {
		if s, ok := win.Size(); ok {
			out.Size = s
		} else {
			out.FixedSize = false
		}
	}
	return out
}

func addWindows(a, b Window) Window {
	out := Window{
		LoUnbounded: a.LoUnbounded || b.LoUnbounded,
		HiUnbounded: a.HiUnbounded || b.HiUnbounded,
	}
	if !out.LoUnbounded {
		out.Lo = a.Lo + b.Lo
	}
	if !out.HiUnbounded {
		out.Hi = a.Hi + b.Hi
	}
	return out
}

// QueryScopes computes the scope of the whole query (viewed as one
// complex operator, §2.3) on each of its base/constant leaves, by
// composing scopes along every root-to-leaf path.
func QueryScopes(root *Node) map[*Node]ScopeProps {
	out := make(map[*Node]ScopeProps)
	var walk func(n *Node, acc ScopeProps)
	walk = func(n *Node, acc ScopeProps) {
		if n.IsLeaf() {
			out[n] = acc
			return
		}
		for i, in := range n.Inputs {
			s, err := n.Scope(i)
			if err != nil {
				continue
			}
			walk(in, ComposeScopes(acc, s))
		}
	}
	walk(root, UnitScope())
	return out
}

// StreamEvaluable reports whether the query admits a stream-access
// evaluation with bounded caches. Per Theorem 3.1 and Lemma 3.2, a
// sequential fixed-size (effective) scope at every operator suffices; the
// engine additionally handles two broadenings (§3.4–3.5):
//
//   - positional offsets (fixed but non-sequential scope) run by
//     broadening the effective scope to a bounded window, and
//   - value offsets run with Cache-Strategy-B using a cache of |l|+1
//     entries despite their variable scope.
//
// The only constructs that defeat single-scan evaluation here are
// unbounded *future* references (All-window aggregates and forward value
// offsets are handled with lookahead materialization, reported as
// non-streamable).
func StreamEvaluable(root *Node) bool {
	ok := true
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == KindAgg && n.Agg.Window.HiUnbounded {
			ok = false
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)
	return ok
}
