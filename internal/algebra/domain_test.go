package algebra

import (
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {6, 2, 3}, {0, 2, 0},
		{-1, 2, -1}, {-2, 2, -1}, {-3, 2, -2}, {-4, 2, -2},
		{7, 3, 2}, {-7, 3, -3},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.want {
			t.Errorf("FloorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// FloorDiv inverts GroupSpan: every position in group j maps back to j.
func TestGroupSpanProperty(t *testing.T) {
	f := func(j int16, kRaw uint8) bool {
		k := int64(kRaw%9) + 2
		g := GroupSpan(seq.Pos(j), k)
		if g.Len() != k {
			return false
		}
		for p := g.Start; p <= g.End; p++ {
			if FloorDiv(p, k) != int64(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollapseValidation(t *testing.T) {
	b := mkBase(t, "s", 1, 2, 3)
	c, err := Collapse(b, 7, AggSpec{Func: AggAvg, Arg: 0, As: "weekly"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != KindCollapse || c.Factor != 7 || !c.NonUnitScope() {
		t.Errorf("collapse node = %+v", c)
	}
	if c.Schema.Field(0).Name != "weekly" || c.Schema.Field(0).Type != seq.TFloat {
		t.Errorf("schema = %v", c.Schema)
	}
	if _, err := Collapse(nil, 7, AggSpec{}); err == nil {
		t.Error("nil input must fail")
	}
	if _, err := Collapse(b, 1, AggSpec{Func: AggAvg, Arg: 0}); err == nil {
		t.Error("factor 1 must fail")
	}
	if _, err := Collapse(b, 7, AggSpec{Func: AggSum, Arg: -1}); err == nil {
		t.Error("sum without attribute must fail")
	}
	if _, err := Collapse(b, 7, AggSpec{Func: AggSum, Arg: 9}); err == nil {
		t.Error("bad attribute must fail")
	}
}

func TestExpandValidation(t *testing.T) {
	b := mkBase(t, "s", 1)
	x, err := Expand(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.Kind != KindExpand || x.NonUnitScope() {
		t.Errorf("expand node = %+v", x)
	}
	if !x.Schema.Equal(b.Schema) {
		t.Error("expand must preserve schema")
	}
	if _, err := Expand(nil, 3); err == nil {
		t.Error("nil input must fail")
	}
	if _, err := Expand(b, 0); err == nil {
		t.Error("factor 0 must fail")
	}
}

func TestEvalCollapse(t *testing.T) {
	// Days 0..6 in week 0, 7..13 in week 1.
	b := mkBaseVals(t, "daily", map[seq.Pos]float64{0: 10, 3: 20, 7: 30, 13: 50})
	weekly, err := Collapse(b, 7, AggSpec{Func: AggAvg, Arg: 0, As: "w"})
	if err != nil {
		t.Fatal(err)
	}
	got := evalEntries(t, weekly, seq.NewSpan(-1, 3))
	wantSeq(t, got, map[seq.Pos]float64{0: 15, 1: 40})
	// Count over whole records.
	cnt, err := Collapse(b, 7, AggSpec{Func: AggCount, Arg: -1, As: "n"})
	if err != nil {
		t.Fatal(err)
	}
	es, err := EvalRange(cnt, seq.NewSpan(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 || es[0].Rec[0].AsInt() != 2 || es[1].Rec[0].AsInt() != 2 {
		t.Errorf("count = %v", es)
	}
}

func TestEvalCollapseNegativePositions(t *testing.T) {
	b := mkBaseVals(t, "s", map[seq.Pos]float64{-3: 5, -1: 7, 0: 9})
	c, _ := Collapse(b, 2, AggSpec{Func: AggSum, Arg: 0, As: "g"})
	got := evalEntries(t, c, seq.NewSpan(-3, 2))
	// Groups: -2 -> {-4,-3} sum 5; -1 -> {-2,-1} sum 7; 0 -> {0,1} sum 9.
	wantSeq(t, got, map[seq.Pos]float64{-2: 5, -1: 7, 0: 9})
}

func TestEvalExpand(t *testing.T) {
	b := mkBaseVals(t, "weekly", map[seq.Pos]float64{0: 10, 2: 30})
	daily, err := Expand(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := evalEntries(t, daily, seq.NewSpan(-1, 9))
	wantSeq(t, got, map[seq.Pos]float64{0: 10, 1: 10, 2: 10, 6: 30, 7: 30, 8: 30})
}

func TestCollapseExpandRoundTrip(t *testing.T) {
	// expand(collapse(S, k, max), k) at position i equals the group max
	// of i's group; for a dense constant-per-group input it is identity.
	b := mkBaseVals(t, "s", map[seq.Pos]float64{0: 4, 1: 4, 2: 9, 3: 9})
	c, _ := Collapse(b, 2, AggSpec{Func: AggMax, Arg: 0, As: "m"})
	x, _ := Expand(c, 2)
	got := evalEntries(t, x, seq.NewSpan(0, 3))
	wantSeq(t, got, map[seq.Pos]float64{0: 4, 1: 4, 2: 9, 3: 9})
}

func TestDomainScopes(t *testing.T) {
	b := mkBase(t, "s", 1)
	c, _ := Collapse(b, 7, AggSpec{Func: AggSum, Arg: 0})
	p, err := c.Scope(0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FixedSize || p.Size != 7 || p.Sequential || p.Relative {
		t.Errorf("collapse scope = %+v", p)
	}
	x, _ := Expand(b, 7)
	p, err = x.Scope(0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FixedSize || p.Size != 1 || p.Relative {
		t.Errorf("expand scope = %+v", p)
	}
}

func TestTransformedHull(t *testing.T) {
	b := mkBase(t, "s", 10, 20)
	if got := TransformedHull(b); got != seq.NewSpan(10, 20) {
		t.Errorf("base hull = %v", got)
	}
	o, _ := PosOffset(b, 5)
	if got := TransformedHull(o); got != seq.NewSpan(5, 15) {
		t.Errorf("offset hull = %v", got)
	}
	c, _ := Collapse(b, 7, AggSpec{Func: AggSum, Arg: 0})
	if got := TransformedHull(c); got != seq.NewSpan(1, 2) {
		t.Errorf("collapse hull = %v", got)
	}
	x, _ := Expand(b, 3)
	if got := TransformedHull(x); got != seq.NewSpan(30, 62) {
		t.Errorf("expand hull = %v", got)
	}
	k, _ := Const(closeSchema, seq.Record{seq.Float(1)})
	if !TransformedHull(k).IsEmpty() {
		t.Error("const hull must be empty")
	}
	cm, _ := Compose(b, mkBase(t, "r", 40, 50), nil, "l", "r")
	if got := TransformedHull(cm); got != seq.NewSpan(10, 50) {
		t.Errorf("compose hull = %v", got)
	}
	ag, _ := AggCol(b, AggSum, "close", Trailing(3), "")
	if got := TransformedHull(ag); got != seq.NewSpan(10, 22) {
		t.Errorf("agg hull = %v", got)
	}
}

func TestDivergent(t *testing.T) {
	b := mkBase(t, "s", 1, 2, 3)
	k, _ := Const(closeSchema, seq.Record{seq.Float(1)})
	// Cumulative over a base: fine.
	okAgg, _ := AggCol(b, AggSum, "close", Cumulative(), "")
	if Divergent(okAgg) {
		t.Error("cumulative over base must not be divergent")
	}
	// Cumulative over a constant: divergent.
	badAgg, _ := AggCol(k, AggSum, "close", Cumulative(), "")
	if !Divergent(badAgg) {
		t.Error("cumulative over const must be divergent")
	}
	// Whole-sequence aggregate over prev(base): prev extends support to
	// the right forever, and the All window looks right-unbounded.
	prev, _ := Previous(b)
	allAgg, _ := AggCol(prev, AggSum, "close", All(), "")
	if !Divergent(allAgg) {
		t.Error("all-window over voffset must be divergent")
	}
	// Composing with a base bounds the support again.
	cm, _ := Compose(k, b, nil, "k", "b")
	boundAgg, _ := AggCol(cm, AggSum, "k.close", Cumulative(), "")
	if Divergent(boundAgg) {
		t.Error("cumulative over compose-with-base must not be divergent")
	}
	// Divergence is detected anywhere in the tree.
	sel, _ := Select(badAgg, gtConst(t, badAgg, "sum", 0))
	if !Divergent(sel) {
		t.Error("nested divergence must be detected")
	}
	if _, err := EvalRange(badAgg, seq.NewSpan(0, 3)); err == nil {
		t.Error("evaluator must reject divergent queries")
	}
}
