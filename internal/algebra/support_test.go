package algebra

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/seq"
)

func supportBase(t *testing.T) *Node {
	t.Helper()
	schema := seq.MustSchema(seq.Field{Name: "v", Type: seq.TInt})
	var entries []seq.Entry
	for p := int64(0); p < 10; p++ {
		entries = append(entries, seq.Entry{Pos: p, Rec: seq.Record{seq.Int(p)}})
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	return Base("b", data)
}

func TestSupportAnalysis(t *testing.T) {
	base := supportBase(t)
	schema := base.Schema
	col, err := expr.ColAt(schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.NewBin(expr.OpGe, col, expr.Literal(seq.Int(3)))
	if err != nil {
		t.Fatal(err)
	}
	constNode, err := Const(schema, seq.Record{seq.Int(7)})
	if err != nil {
		t.Fatal(err)
	}

	mk := func(f func() (*Node, error)) *Node {
		t.Helper()
		n, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	sel := mk(func() (*Node, error) { return Select(base, pred) })
	vo := mk(func() (*Node, error) { return ValueOffset(base, -1) })
	selOverVo := mk(func() (*Node, error) { return Select(vo, pred) })
	voOverVo := mk(func() (*Node, error) { return ValueOffset(selOverVo, -2) })
	cum := mk(func() (*Node, error) {
		return Agg(base, AggSpec{Func: AggSum, Arg: 0, Window: Cumulative()})
	})
	cumOverVo := mk(func() (*Node, error) {
		return Agg(vo, AggSpec{Func: AggSum, Arg: 0, Window: Cumulative()})
	})
	trailing := mk(func() (*Node, error) {
		return Agg(base, AggSpec{Func: AggSum, Arg: 0, Window: Trailing(3)})
	})
	trailingOverVo := mk(func() (*Node, error) {
		return Agg(vo, AggSpec{Func: AggSum, Arg: 0, Window: Trailing(3)})
	})
	composeBoth := mk(func() (*Node, error) { return Compose(vo, constNode, nil, "l", "r") })
	composeOne := mk(func() (*Node, error) { return Compose(vo, base, nil, "l", "r") })
	voOverCompose := mk(func() (*Node, error) { return ValueOffset(composeOne, 1) })
	voOverComposeBoth := mk(func() (*Node, error) { return ValueOffset(composeBoth, 1) })

	cases := []struct {
		name      string
		node      *Node
		infinite  bool
		sensitive bool
	}{
		{"base", base, false, false},
		{"const", constNode, true, false},
		{"select-over-base", sel, false, false},
		{"voffset-over-base", vo, true, false},
		{"select-over-voffset", selOverVo, true, false},
		{"voffset-over-voffset (seed-81)", voOverVo, true, true},
		{"cumulative-over-base", cum, true, false},
		{"cumulative-over-voffset", cumOverVo, true, true},
		{"trailing-over-base", trailing, false, false},
		{"trailing-over-voffset", trailingOverVo, true, false},
		{"compose-finite-leg", composeOne, false, false},
		{"compose-both-infinite", composeBoth, true, false},
		{"voffset-over-finite-compose", voOverCompose, true, false},
		{"voffset-over-infinite-compose", voOverComposeBoth, true, true},
	}
	for _, tc := range cases {
		if got := InfiniteSupport(tc.node); got != tc.infinite {
			t.Errorf("%s: InfiniteSupport = %v, want %v", tc.name, got, tc.infinite)
		}
		if got := UniverseSensitive(tc.node); got != tc.sensitive {
			t.Errorf("%s: UniverseSensitive = %v, want %v", tc.name, got, tc.sensitive)
		}
	}
}
