package algebra

import (
	"testing"
)

// TestScopeWindowsPerOperator pins the Win component of every
// operator's scope — the relative window Proposition 2.1(c) sums along
// paths — including the Definition 3.3 effective-scope windows of value
// offsets on both sides.
func TestScopeWindowsPerOperator(t *testing.T) {
	b := mkBase(t, "s", 1, 2, 3)
	sel, _ := Select(b, gtConst(t, b, "close", 0))
	po, _ := PosOffset(b, -5)
	fwd, _ := PosOffset(b, 3)
	ag, _ := AggCol(b, AggSum, "close", Range(-2, 4), "")
	cum, _ := AggCol(b, AggSum, "close", Cumulative(), "")
	all, _ := AggCol(b, AggSum, "close", All(), "")

	cases := []struct {
		name string
		node *Node
		want Window
	}{
		{"select", sel, Range(0, 0)},
		{"offset-back", po, Range(-5, -5)},
		{"offset-fwd", fwd, Range(3, 3)},
		{"agg-range", ag, Range(-2, 4)},
		{"agg-cumulative", cum, Window{LoUnbounded: true, Hi: 0}},
		{"agg-all", all, Window{LoUnbounded: true, HiUnbounded: true}},
	}
	for _, c := range cases {
		p, err := c.node.Scope(0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if p.Win != c.want {
			t.Errorf("%s: window = %v, want %v", c.name, p.Win, c.want)
		}
	}
}

// TestValueOffsetEffectiveScope checks Definition 3.3: the true scope of
// a value offset is data-dependent, so its effective scope is the
// open-ended hull on the side the offset reads — (-inf, -1] for any
// backward offset, [+1, +inf) for any forward one, with magnitude
// deliberately absent (the l-th non-Null neighbor can be arbitrarily
// far).
func TestValueOffsetEffectiveScope(t *testing.T) {
	b := mkBase(t, "s", 1, 2, 3)
	for _, off := range []int64{-4, -1, 1, 7} {
		vo, err := ValueOffset(b, off)
		if err != nil {
			t.Fatal(err)
		}
		p, err := vo.Scope(0)
		if err != nil {
			t.Fatal(err)
		}
		want := Window{LoUnbounded: true, Hi: -1}
		if off > 0 {
			want = Window{Lo: 1, HiUnbounded: true}
		}
		if p.Win != want {
			t.Errorf("voffset(%d): effective window = %v, want %v", off, p.Win, want)
		}
		if p.FixedSize || p.Sequential || p.Relative {
			t.Errorf("voffset(%d): scope %+v claims properties a data-dependent scope cannot have", off, p)
		}
	}
}

// TestCompositionWindowsAcrossKinds sums windows along mixed paths and
// compares with QueryScopes — Prop. 2.1(c) end to end, including the
// saturation of unbounded effective-scope sides.
func TestCompositionWindowsAcrossKinds(t *testing.T) {
	b := mkBase(t, "s", 1, 2, 3)

	// offset(+3) over agg[-2,4] over offset(-5): windows add.
	inner, _ := PosOffset(b, -5)
	ag, _ := AggCol(inner, AggSum, "close", Range(-2, 4), "")
	outer, _ := PosOffset(ag, 3)
	got := QueryScopes(outer)[b]
	if want := Range(-4, 2); got.Win != want {
		t.Errorf("summed window = %v, want %v", got.Win, want)
	}
	if !got.Relative || !got.FixedSize {
		t.Errorf("composed scope %+v lost relativity/fixedness", got)
	}

	// A backward value offset anywhere on the path makes the composed
	// window open below and poisons fixedness, but arithmetic on the
	// bounded side still applies.
	vo, _ := Previous(b)
	shifted, _ := PosOffset(vo, 2)
	got = QueryScopes(shifted)[b]
	if !got.Win.LoUnbounded || got.Win.HiUnbounded {
		t.Errorf("voffset path window = %v, want open below, closed above", got.Win)
	}
	if got.Win.Hi != 1 {
		t.Errorf("voffset path window hi = %d, want -1+2 = 1", got.Win.Hi)
	}
	if got.FixedSize || got.Sequential || got.Relative {
		t.Errorf("voffset path scope %+v retains properties the offset destroyed", got)
	}

	// Forward value offset: open above.
	nx, _ := Next(b)
	lag, _ := AggCol(nx, AggSum, "close", Trailing(3), "")
	got = QueryScopes(lag)[b]
	if got.Win.LoUnbounded || !got.Win.HiUnbounded {
		t.Errorf("forward voffset path window = %v, want open above, closed below", got.Win)
	}
	if got.Win.Lo != -1 {
		t.Errorf("forward voffset path window lo = %d, want 1+(-2) = -1", got.Win.Lo)
	}

	// Collapse and Expand are not relative nor sequential: composition
	// through them drops both properties (their group-based scope cannot
	// be expressed as a window around the current position, so the
	// composed size comes from the summed windows alone).
	col, _ := Collapse(b, 4, AggSpec{Func: AggSum, Arg: 0})
	got = QueryScopes(col)[b]
	if got.Relative || got.Sequential {
		t.Errorf("collapse path scope %+v should be neither relative nor sequential", got)
	}
	ex, _ := Expand(b, 4)
	got = QueryScopes(ex)[b]
	if got.Relative {
		t.Errorf("expand path scope %+v should not be relative", got)
	}
}
