package algebra

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/seq"
)

// evalAll evaluates the query over its universe and returns pos->value
// for the single-float-column result schemas used in these tests.
func evalEntries(t *testing.T, root *Node, span seq.Span) []seq.Entry {
	t.Helper()
	es, err := EvalRange(root, span)
	if err != nil {
		t.Fatal(err)
	}
	return es
}

func wantSeq(t *testing.T, got []seq.Entry, want map[seq.Pos]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d entries %v, want %d", len(got), got, len(want))
	}
	for _, e := range got {
		w, ok := want[e.Pos]
		if !ok {
			t.Errorf("unexpected entry at %d: %v", e.Pos, e.Rec)
			continue
		}
		if len(e.Rec) != 1 || e.Rec[0].AsFloat() != w {
			t.Errorf("at %d: got %v, want %g", e.Pos, e.Rec, w)
		}
	}
}

func TestEvalBaseAndSelect(t *testing.T) {
	b := mkBaseVals(t, "s", map[seq.Pos]float64{1: 5, 2: 9, 4: 3})
	sel, _ := Select(b, gtConst(t, b, "close", 4))
	got := evalEntries(t, sel, seq.NewSpan(0, 5))
	wantSeq(t, got, map[seq.Pos]float64{1: 5, 2: 9})
}

func TestEvalProject(t *testing.T) {
	b := mkBaseVals(t, "s", map[seq.Pos]float64{1: 5})
	c, _ := expr.NewCol(b.Schema, "close")
	dbl, _ := expr.NewBin(expr.OpMul, c, expr.Literal(seq.Float(2)))
	p, _ := Project(b, []ProjItem{{Expr: dbl, Name: "twice"}})
	got := evalEntries(t, p, seq.NewSpan(0, 2))
	wantSeq(t, got, map[seq.Pos]float64{1: 10})
}

func TestEvalPosOffset(t *testing.T) {
	b := mkBaseVals(t, "s", map[seq.Pos]float64{3: 30, 5: 50})
	// out(i) = in(i+2): record at 3 appears at 1, record at 5 at 3.
	o, _ := PosOffset(b, 2)
	got := evalEntries(t, o, seq.NewSpan(0, 6))
	wantSeq(t, got, map[seq.Pos]float64{1: 30, 3: 50})
	// Negative offset shifts the other way.
	o2, _ := PosOffset(b, -2)
	got = evalEntries(t, o2, seq.NewSpan(0, 8))
	wantSeq(t, got, map[seq.Pos]float64{5: 30, 7: 50})
}

func TestEvalValueOffsetPrevious(t *testing.T) {
	// Records at 2, 5, 6. Previous(i) = most recent record strictly
	// before i.
	b := mkBaseVals(t, "s", map[seq.Pos]float64{2: 20, 5: 50, 6: 60})
	prev, _ := Previous(b)
	got := evalEntries(t, prev, seq.NewSpan(0, 9))
	wantSeq(t, got, map[seq.Pos]float64{
		3: 20, 4: 20, 5: 20, 6: 50, 7: 60, 8: 60, 9: 60,
	})
}

func TestEvalValueOffsetNext(t *testing.T) {
	b := mkBaseVals(t, "s", map[seq.Pos]float64{2: 20, 5: 50})
	next, _ := Next(b)
	got := evalEntries(t, next, seq.NewSpan(0, 6))
	wantSeq(t, got, map[seq.Pos]float64{0: 20, 1: 20, 2: 50, 3: 50, 4: 50})
}

func TestEvalValueOffsetDeeper(t *testing.T) {
	// voffset(-2): second most recent record strictly before i.
	b := mkBaseVals(t, "s", map[seq.Pos]float64{1: 10, 3: 30, 6: 60})
	vo, _ := ValueOffset(b, -2)
	got := evalEntries(t, vo, seq.NewSpan(0, 8))
	wantSeq(t, got, map[seq.Pos]float64{4: 10, 5: 10, 6: 10, 7: 30, 8: 30})
}

func TestEvalAggTrailing(t *testing.T) {
	// Fig 5.A: sum of close over the last six positions.
	b := mkBaseVals(t, "ibm", map[seq.Pos]float64{1: 1, 2: 2, 3: 3, 4: 4})
	sum, _ := AggCol(b, AggSum, "close", Trailing(3), "s3")
	got := evalEntries(t, sum, seq.NewSpan(0, 7))
	wantSeq(t, got, map[seq.Pos]float64{
		1: 1, 2: 3, 3: 6, 4: 9, 5: 7, 6: 4,
	})
}

func TestEvalAggNullHandling(t *testing.T) {
	// Windows that contain no records yield Null (absent), not zero.
	b := mkBaseVals(t, "s", map[seq.Pos]float64{5: 50})
	sum, _ := AggCol(b, AggSum, "close", Trailing(2), "")
	got := evalEntries(t, sum, seq.NewSpan(0, 10))
	wantSeq(t, got, map[seq.Pos]float64{5: 50, 6: 50})
}

func TestEvalAggCumulative(t *testing.T) {
	b := mkBaseVals(t, "s", map[seq.Pos]float64{1: 1, 3: 3, 5: 5})
	sum, _ := AggCol(b, AggSum, "close", Cumulative(), "run")
	got := evalEntries(t, sum, seq.NewSpan(0, 6))
	wantSeq(t, got, map[seq.Pos]float64{1: 1, 2: 1, 3: 4, 4: 4, 5: 9, 6: 9})
}

func TestEvalAggAllAndFuncs(t *testing.T) {
	b := mkBaseVals(t, "s", map[seq.Pos]float64{1: 4, 2: 2, 3: 6})
	for _, c := range []struct {
		f    AggFunc
		want float64
	}{
		{AggSum, 12}, {AggAvg, 4}, {AggMin, 2}, {AggMax, 6}, {AggCount, 3},
	} {
		a, err := AggCol(b, c.f, "close", All(), "v")
		if err != nil {
			t.Fatal(err)
		}
		got := evalEntries(t, a, seq.NewSpan(2, 2))
		if len(got) != 1 {
			t.Fatalf("%s: got %v", c.f, got)
		}
		if got[0].Rec[0].AsFloat() != c.want {
			t.Errorf("%s = %v, want %g", c.f, got[0].Rec[0], c.want)
		}
	}
}

func TestEvalCountWholeRecords(t *testing.T) {
	b := mkBaseVals(t, "s", map[seq.Pos]float64{1: 1, 2: 2})
	cn, _ := Agg(b, AggSpec{Func: AggCount, Arg: -1, Window: Cumulative(), As: "n"})
	got := evalEntries(t, cn, seq.NewSpan(2, 2))
	if len(got) != 1 || got[0].Rec[0].AsInt() != 2 {
		t.Errorf("count = %v", got)
	}
}

func TestEvalCompose(t *testing.T) {
	l := mkBaseVals(t, "ibm", map[seq.Pos]float64{1: 10, 2: 20, 3: 30})
	r := mkBaseVals(t, "hp", map[seq.Pos]float64{2: 19, 3: 31, 4: 40})
	schema, _ := ComposeSchema(l, r, "ibm", "hp")
	lc, _ := expr.NewCol(schema, "ibm.close")
	rc, _ := expr.NewCol(schema, "hp.close")
	pred, _ := expr.NewBin(expr.OpGt, lc, rc)
	c, _ := Compose(l, r, pred, "ibm", "hp")
	got := evalEntries(t, c, seq.NewSpan(0, 5))
	// Common positions: 2 (20>19 keep), 3 (30>31 drop).
	if len(got) != 1 || got[0].Pos != 2 {
		t.Fatalf("compose result = %v", got)
	}
	if got[0].Rec[0].AsFloat() != 20 || got[0].Rec[1].AsFloat() != 19 {
		t.Errorf("composed record = %v", got[0].Rec)
	}
	// Without predicate: all common positions.
	c2, _ := Compose(l, r, nil, "ibm", "hp")
	got = evalEntries(t, c2, seq.NewSpan(0, 5))
	if len(got) != 2 {
		t.Errorf("compose without predicate = %v", got)
	}
}

func TestEvalComposeWithConstant(t *testing.T) {
	b := mkBaseVals(t, "s", map[seq.Pos]float64{1: 10, 2: 20})
	k, _ := Const(seq.MustSchema(seq.Field{Name: "limit", Type: seq.TFloat}), seq.Record{seq.Float(15)})
	schema, _ := ComposeSchema(b, k, "s", "k")
	sc, _ := expr.NewCol(schema, "close")
	kc, _ := expr.NewCol(schema, "limit")
	pred, _ := expr.NewBin(expr.OpGt, sc, kc)
	c, _ := Compose(b, k, pred, "s", "k")
	got := evalEntries(t, c, seq.NewSpan(0, 3))
	if len(got) != 1 || got[0].Pos != 2 {
		t.Errorf("const compose = %v", got)
	}
}

// The motivating query of Example 1.1: for which volcano eruptions was
// the strength of the most recent earthquake greater than 7.0?
func TestEvalMotivatingExample(t *testing.T) {
	quakeSchema := seq.MustSchema(seq.Field{Name: "strength", Type: seq.TFloat})
	volcSchema := seq.MustSchema(seq.Field{Name: "name", Type: seq.TString})
	quakes := Base("earthquakes", seq.MustMaterialized(quakeSchema, []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Float(6.0)}},
		{Pos: 4, Rec: seq.Record{seq.Float(7.5)}},
		{Pos: 8, Rec: seq.Record{seq.Float(5.0)}},
	}))
	volcanos := Base("volcanos", seq.MustMaterialized(volcSchema, []seq.Entry{
		{Pos: 2, Rec: seq.Record{seq.Str("etna")}},    // last quake 6.0 -> no
		{Pos: 6, Rec: seq.Record{seq.Str("fuji")}},    // last quake 7.5 -> yes
		{Pos: 9, Rec: seq.Record{seq.Str("rainier")}}, // last quake 5.0 -> no
	}))
	prevQuake, err := Previous(quakes)
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := ComposeSchema(volcanos, prevQuake, "v", "e")
	strength, _ := expr.NewCol(schema, "strength")
	pred, _ := expr.NewBin(expr.OpGt, strength, expr.Literal(seq.Float(7.0)))
	joined, err := Compose(volcanos, prevQuake, pred, "v", "e")
	if err != nil {
		t.Fatal(err)
	}
	result, err := ProjectCols(joined, "name")
	if err != nil {
		t.Fatal(err)
	}
	got := evalEntries(t, result, seq.NewSpan(0, 10))
	if len(got) != 1 || got[0].Pos != 6 || got[0].Rec[0].AsStr() != "fuji" {
		t.Errorf("example 1.1 = %v, want fuji at 6", got)
	}
}

func TestEvalRangeRequiresBoundedSpan(t *testing.T) {
	b := mkBase(t, "s", 1)
	if _, err := EvalRange(b, seq.AllSpan); err == nil {
		t.Error("unbounded EvalRange must fail")
	}
}

func TestEvaluatorUniverse(t *testing.T) {
	b := mkBase(t, "s", 10, 20)
	o, _ := PosOffset(b, 5)
	ev, err := NewEvaluator(o, seq.NewSpan(0, 30))
	if err != nil {
		t.Fatal(err)
	}
	u := ev.Universe()
	if !u.Contains(5) || !u.Contains(25) {
		t.Errorf("universe %v must cover shifted records", u)
	}
	// Constant-only query gets a token universe.
	k, _ := Const(closeSchema, seq.Record{seq.Float(1)})
	if _, err := NewEvaluator(k, seq.NewSpan(0, 10)); err != nil {
		t.Error(err)
	}
}

func TestEvalErrorPropagation(t *testing.T) {
	// Integer division by zero inside a projection must surface.
	intSchema := seq.MustSchema(seq.Field{Name: "v", Type: seq.TInt})
	b := Base("s", seq.MustMaterialized(intSchema, []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Int(1)}},
	}))
	c, _ := expr.NewCol(b.Schema, "v")
	div, _ := expr.NewBin(expr.OpDiv, c, expr.Literal(seq.Int(0)))
	p, _ := Project(b, []ProjItem{{Expr: div, Name: "boom"}})
	if _, err := EvalRange(p, seq.NewSpan(1, 1)); err == nil {
		t.Error("division by zero must propagate")
	}
}
