// Native batch scans for the memory-backed stores. Page and record
// accounting is position-for-position identical to the scalar cursors —
// the same pages are charged in the same order — but the counters are
// accumulated locally per batch and published with one atomic add per
// counter per batch, removing the per-record atomic traffic from the
// hot loop. The MVCC snapshot and disk-backed stores do not implement
// the batch protocol and are bridged by the execution layer's adapter,
// which preserves their per-record accounting exactly.
package storage

import (
	"sort"

	"repro/internal/seq"
)

// ScanBatches implements seq.BatchScanner for the dense store: the
// position walk, page charging (every page entered, holding records or
// not) and record accounting mirror denseCursor exactly.
func (d *Dense) ScanBatches(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	span = span.Intersect(d.span)
	if span.IsEmpty() {
		return seq.EmptyBatchCursor()
	}
	return &denseBatchCursor{d: d, ctx: ctx, pos: span.Start, end: span.End, page: -1}
}

type denseBatchCursor struct {
	d     *Dense
	ctx   *seq.BatchCtx
	batch *seq.Batch
	ents  []seq.Entry // scratch window, reused per batch
	pos   seq.Pos
	end   seq.Pos
	page  int64 // last page charged; -1 before the first touch
	err   error
	done  bool
}

func (c *denseBatchCursor) NextBatch() (*seq.Batch, bool) {
	if c.done || c.err != nil {
		return nil, false
	}
	if c.batch == nil {
		c.batch = seq.NewBatchFor(c.d.schema, c.ctx.Size)
		c.ents = make([]seq.Entry, 0, c.ctx.Size)
	}
	b := c.batch
	b.Reset()
	b.Span = seq.Span{Start: c.pos, End: c.end}
	first := c.pos
	ents := c.ents[:0]
	for c.pos <= c.end && len(ents) < c.ctx.Size {
		p := c.pos
		c.pos++
		off := p - c.d.span.Start //seqvet:ignore spanarith dense spans are bounded at construction
		if r := c.d.recs[off]; r != nil {
			ents = append(ents, seq.Entry{Pos: p, Rec: r})
		}
	}
	c.ents = ents
	// The walk visited the contiguous positions [first, c.pos-1]; charge
	// one page per distinct page in that range, continuing from the last
	// page charged — the same pages in the same order as the scalar
	// cursor's per-position walk.
	firstPg := (first - c.d.span.Start) / int64(c.d.rpp)  //seqvet:ignore spanarith dense spans are bounded at construction
	lastPg := (c.pos - 1 - c.d.span.Start) / int64(c.d.rpp) //seqvet:ignore spanarith dense spans are bounded at construction
	pages := lastPg - firstPg
	if firstPg != c.page {
		pages++
	}
	c.page = lastPg
	if pages != 0 {
		c.d.stats.SeqPages.Add(pages)
	}
	if len(ents) != 0 {
		c.d.stats.SeqRecords.Add(int64(len(ents)))
	}
	if err := b.AppendEntryRows(ents, c.ctx.Intern); err != nil {
		c.err = err
		return nil, false
	}
	if c.pos > c.end {
		c.done = true
		return b, true
	}
	b.Span.End = c.pos - 1
	return b, true
}

func (c *denseBatchCursor) Err() error   { return c.err }
func (c *denseBatchCursor) Close() error { return nil }

// ScanBatches implements seq.BatchScanner for the sparse store: entry
// windows decompose into batches; page charges (by entry index, plus
// the index descent for a mid-file start) mirror sparseCursor exactly.
func (s *Sparse) ScanBatches(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	span = span.Intersect(s.span)
	if span.IsEmpty() || len(s.entries) == 0 {
		return seq.EmptyBatchCursor()
	}
	lo := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Pos >= span.Start })
	hi := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Pos > span.End })
	if lo > 0 {
		// Entering the middle of the file requires an index descent.
		s.stats.RandPages.Add(s.probeDepth())
	}
	return &sparseBatchCursor{
		s: s, ctx: ctx, entries: s.entries[lo:hi], base: lo,
		next: span.Start, end: span.End, page: -1,
	}
}

type sparseBatchCursor struct {
	s       *Sparse
	ctx     *seq.BatchCtx
	batch   *seq.Batch
	entries []seq.Entry
	base    int // index of entries[0] in s.entries, for page math
	i       int
	next    seq.Pos
	end     seq.Pos
	page    int64
	err     error
	done    bool
}

func (c *sparseBatchCursor) NextBatch() (*seq.Batch, bool) {
	if c.done || c.err != nil {
		return nil, false
	}
	if c.batch == nil {
		c.batch = seq.NewBatchFor(c.s.schema, c.ctx.Size)
	}
	b := c.batch
	b.Reset()
	b.Span = seq.Span{Start: c.next, End: c.end}
	n := len(c.entries) - c.i
	if n > c.ctx.Size {
		n = c.ctx.Size
	}
	if n > 0 {
		win := c.entries[c.i : c.i+n]
		// One page per distinct page among the window's entry indexes,
		// continuing from the last page charged — the same pages in the
		// same order as the scalar cursor's per-entry walk.
		firstPg := int64(c.base+c.i) / int64(c.s.rpp)
		lastPg := int64(c.base+c.i+n-1) / int64(c.s.rpp)
		pages := lastPg - firstPg
		if firstPg != c.page {
			pages++
		}
		c.page = lastPg
		c.i += n
		if pages != 0 {
			c.s.stats.SeqPages.Add(pages)
		}
		c.s.stats.SeqRecords.Add(int64(n))
		if err := b.AppendEntryRows(win, c.ctx.Intern); err != nil {
			c.err = err
			return nil, false
		}
	}
	if c.i >= len(c.entries) {
		c.done = true
		return b, true
	}
	b.Span.End = b.Pos[b.Rows()-1]
	c.next = b.Span.End + 1 //seqvet:ignore spanarith row positions lie inside the bounded scan span
	return b, true
}

func (c *sparseBatchCursor) Err() error   { return c.err }
func (c *sparseBatchCursor) Close() error { return nil }

// ScanBatches implements seq.BatchScanner for the metering wrapper:
// batch-capable inner stores are delegated to with the shared-counter
// movement credited to the consumer around the open and around each
// batch; anything else is bridged through the wrapper's own scalar Scan,
// preserving its per-record crediting.
func (m *metered) ScanBatches(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	if bs, ok := m.inner.(seq.BatchScanner); ok {
		before := m.inner.Stats().Snapshot()
		cur := bs.ScanBatches(span, ctx)
		m.credit(before)
		return &meteredBatchCursor{m: m, in: cur}
	}
	return seq.BatchCursorFrom(m.Scan(span), span, m.inner.Info().Schema, ctx)
}

type meteredBatchCursor struct {
	m  *metered
	in seq.BatchCursor
}

func (c *meteredBatchCursor) NextBatch() (*seq.Batch, bool) {
	before := c.m.inner.Stats().Snapshot()
	b, ok := c.in.NextBatch()
	c.m.credit(before)
	return b, ok
}

func (c *meteredBatchCursor) Err() error   { return c.in.Err() }
func (c *meteredBatchCursor) Close() error { return c.in.Close() }
