package storage

import (
	"fmt"
	"sync"
)

// EpochTracker is the global epoch counter of the MVCC layer plus the
// book-keeping of live readers. Writers advance the epoch after
// publishing a new page version (see Versioned); readers pin the current
// epoch for the duration of a query and evaluate every base sequence
// against the snapshot visible at that epoch. The minimum pinned epoch
// bounds garbage collection: page versions and invalidated views older
// than every live reader can be reclaimed.
//
// The publication protocol is: a writer first publishes its new store
// version under epoch current+1, then calls AdvanceTo(current+1). A
// reader pins Current(), so it can only observe epochs whose versions
// are fully published — a snapshot never changes after it is pinned.
//
// mu is a leaf in the declared lock order: every critical section is a
// few map/counter operations and never calls out.
//
//seqvet:lockorder leaf storage.EpochTracker.mu
type EpochTracker struct {
	mu      sync.Mutex
	current int64
	live    map[int64]int // pinned epoch -> reader count
}

// NewEpochTracker returns a tracker at epoch 0 with no live readers.
func NewEpochTracker() *EpochTracker {
	return &EpochTracker{live: make(map[int64]int)}
}

// Current returns the newest fully published epoch.
func (t *EpochTracker) Current() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.current
}

// AdvanceTo publishes epoch e as the new current epoch. Epochs must
// advance monotonically; the caller (the server's write path) serializes
// writers, so e is always current+1.
func (t *EpochTracker) AdvanceTo(e int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e <= t.current {
		return fmt.Errorf("storage: epoch %d does not advance current %d", e, t.current)
	}
	t.current = e
	return nil
}

// Pin registers a live reader at the current epoch and returns it. Every
// Pin must be paired with a Release of the returned epoch.
func (t *EpochTracker) Pin() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.live[t.current]++
	return t.current
}

// Release drops one live reader pinned at epoch e.
func (t *EpochTracker) Release(e int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.live[e]
	if !ok {
		return // tolerate double release; nothing to undo
	}
	if n <= 1 {
		delete(t.live, e)
	} else {
		t.live[e] = n - 1
	}
}

// MinLive returns the oldest epoch any live reader is pinned at, or the
// current epoch when no reader is live. Versions superseded before
// MinLive are unreachable and may be garbage collected.
func (t *EpochTracker) MinLive() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	min := t.current
	for e := range t.live {
		if e < min {
			min = e
		}
	}
	return min
}

// LiveReaders returns the number of currently pinned readers.
func (t *EpochTracker) LiveReaders() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, c := range t.live {
		n += c
	}
	return n
}
