package storage

import "repro/internal/seq"

// Metered wraps a Store so that every page and record access it serves
// is additionally accumulated into a consumer-private Stats block, on
// top of the store's shared counters. This is the attribution mechanism
// behind EXPLAIN ANALYZE: each plan leaf meters its own accesses, so
// per-node page counts sum exactly to the store's global counter deltas
// even when several leaves read the same base sequence in one plan.
//
// Attribution works by delta-snapshotting the shared counters around
// each access. Within one plan run accesses are serialized (the
// execution engine is a single-threaded pull pipeline), so the deltas
// are exact. Concurrent runs over the same store must use separate
// Metered wrappers and must not interleave accesses within one wrapper.
func Metered(s Store, consumer *Stats) Store {
	return &metered{inner: s, consumer: consumer}
}

type metered struct {
	inner    Store
	consumer *Stats
}

// Info implements seq.Sequence.
func (m *metered) Info() seq.Info { return m.inner.Info() }

// Stats implements Store: the shared counters stay authoritative.
func (m *metered) Stats() *Stats { return m.inner.Stats() }

// AccessCosts implements Store.
func (m *metered) AccessCosts() AccessCosts { return m.inner.AccessCosts() }

// credit adds the shared-counter movement since before to the consumer.
func (m *metered) credit(before StatsSnapshot) {
	d := m.inner.Stats().Snapshot().Sub(before)
	if d.SeqPages != 0 {
		m.consumer.SeqPages.Add(d.SeqPages)
	}
	if d.RandPages != 0 {
		m.consumer.RandPages.Add(d.RandPages)
	}
	if d.SeqRecords != 0 {
		m.consumer.SeqRecords.Add(d.SeqRecords)
	}
	if d.ProbeRecords != 0 {
		m.consumer.ProbeRecords.Add(d.ProbeRecords)
	}
	if d.PoolHits != 0 {
		m.consumer.PoolHits.Add(d.PoolHits)
	}
	if d.PoolMisses != 0 {
		m.consumer.PoolMisses.Add(d.PoolMisses)
	}
	if d.PoolEvictions != 0 {
		m.consumer.PoolEvictions.Add(d.PoolEvictions)
	}
	if d.DirtyWrites != 0 {
		m.consumer.DirtyWrites.Add(d.DirtyWrites)
	}
}

// Probe implements seq.Sequence.
func (m *metered) Probe(pos seq.Pos) (seq.Record, error) {
	before := m.inner.Stats().Snapshot()
	r, err := m.inner.Probe(pos)
	m.credit(before)
	return r, err
}

// Scan implements seq.Sequence. Opening the cursor may itself touch
// pages (the sparse store charges an index descent to position a
// mid-file scan), so the open is metered too.
func (m *metered) Scan(span seq.Span) seq.Cursor {
	before := m.inner.Stats().Snapshot()
	cur := m.inner.Scan(span)
	m.credit(before)
	return &meteredCursor{m: m, in: cur}
}

type meteredCursor struct {
	m  *metered
	in seq.Cursor
}

func (c *meteredCursor) Next() (seq.Pos, seq.Record, bool) {
	before := c.m.inner.Stats().Snapshot()
	p, r, ok := c.in.Next()
	c.m.credit(before)
	return p, r, ok
}

func (c *meteredCursor) Err() error   { return c.in.Err() }
func (c *meteredCursor) Close() error { return c.in.Close() }
