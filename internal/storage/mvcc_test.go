package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/seq"
)

func mvccSchema(t *testing.T) *seq.Schema {
	t.Helper()
	s, err := seq.NewSchema(seq.Field{Name: "v", Type: seq.TInt})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mvccData(t *testing.T, schema *seq.Schema, n int) *seq.Materialized {
	t.Helper()
	entries := make([]seq.Entry, n)
	for i := range entries {
		entries[i] = seq.Entry{Pos: seq.Pos(i + 1), Rec: seq.Record{seq.Int(int64(i + 1))}}
	}
	m, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func collect(t *testing.T, s seq.Sequence, span seq.Span) []seq.Entry {
	t.Helper()
	es, err := seq.Collect(s.Scan(span))
	if err != nil {
		t.Fatal(err)
	}
	return es
}

func TestVersionedSnapshotIsolation(t *testing.T) {
	schema := mvccSchema(t)
	v, err := NewVersioned(mvccData(t, schema, 100), KindSparse, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap0 := v.SnapshotAt(0)
	if snap0 == nil {
		t.Fatal("no snapshot at epoch 0")
	}
	before := collect(t, snap0, seq.AllSpan)
	if len(before) != 100 {
		t.Fatalf("snapshot 0 has %d records, want 100", len(before))
	}

	// Append under later epochs; the pinned snapshot must not move.
	for i := 0; i < 50; i++ {
		pos := seq.Pos(101 + i)
		if err := v.Append(seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	after := collect(t, snap0, seq.AllSpan)
	if len(after) != 100 {
		t.Fatalf("snapshot 0 sees %d records after appends, want 100", len(after))
	}
	if got := snap0.Info().Span; got != seq.NewSpan(1, 100) {
		t.Fatalf("snapshot 0 span moved to %v", got)
	}

	// A snapshot at an intermediate epoch sees exactly the prefix.
	snap25 := v.SnapshotAt(25)
	if got := len(collect(t, snap25, seq.AllSpan)); got != 125 {
		t.Fatalf("snapshot 25 sees %d records, want 125", got)
	}
	if got := snap25.VersionEpoch(); got != 25 {
		t.Fatalf("snapshot 25 version epoch = %d", got)
	}
	latest := v.Latest()
	if got := len(collect(t, latest, seq.AllSpan)); got != 150 {
		t.Fatalf("latest sees %d records, want 150", got)
	}

	// Probes respect the snapshot too.
	if r, _ := snap0.Probe(120); r != nil {
		t.Fatalf("snapshot 0 probes future record %v", r)
	}
	if r, _ := snap25.Probe(120); r == nil {
		t.Fatal("snapshot 25 misses record 120")
	}
}

func TestVersionedCopyOnWriteSharing(t *testing.T) {
	schema := mvccSchema(t)
	v, err := NewVersioned(mvccData(t, schema, 64), KindSparse, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := v.PageVersions() // 8 full pages
	if base != 8 {
		t.Fatalf("base page count = %d, want 8", base)
	}
	// One append opens a fresh tail page: +1 page version.
	if err := v.Append(seq.Entry{Pos: 65, Rec: seq.Record{seq.Int(65)}}, 1); err != nil {
		t.Fatal(err)
	}
	if got := v.PageVersions(); got != base+1 {
		t.Fatalf("after first append: %d page versions, want %d", got, base+1)
	}
	// The next append copies only that tail page.
	if err := v.Append(seq.Entry{Pos: 66, Rec: seq.Record{seq.Int(66)}}, 2); err != nil {
		t.Fatal(err)
	}
	if got := v.PageVersions(); got != base+2 {
		t.Fatalf("after second append: %d page versions, want %d (tail-page COW only)", got, base+2)
	}
	if got := v.Versions(); got != 3 {
		t.Fatalf("versions = %d, want 3", got)
	}
	// GC with no reader older than epoch 2 leaves one version and one
	// page version per slot.
	if dropped := v.GC(2); dropped != 2 {
		t.Fatalf("GC dropped %d versions, want 2", dropped)
	}
	if got := v.PageVersions(); got != 9 {
		t.Fatalf("after GC: %d page versions, want 9", got)
	}
	// GC must keep the newest version at or below minLive.
	if err := v.Append(seq.Entry{Pos: 67, Rec: seq.Record{seq.Int(67)}}, 5); err != nil {
		t.Fatal(err)
	}
	if dropped := v.GC(3); dropped != 0 {
		t.Fatalf("GC(3) dropped %d, want 0: epoch-2 version is still live for readers at 3", dropped)
	}
}

func TestVersionedReorganize(t *testing.T) {
	schema := mvccSchema(t)
	v, err := NewVersioned(mvccData(t, schema, 100), KindSparse, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Reorganize(KindDense, 1); err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindDense {
		t.Fatalf("kind = %v, want dense", v.Kind())
	}
	old := v.SnapshotAt(0)
	nu := v.SnapshotAt(1)
	if old.Kind() != KindSparse || nu.Kind() != KindDense {
		t.Fatalf("snapshot kinds = %v/%v", old.Kind(), nu.Kind())
	}
	a, b := collect(t, old, seq.AllSpan), collect(t, nu, seq.AllSpan)
	if len(a) != len(b) {
		t.Fatalf("reorganize changed record count %d -> %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || !a[i].Rec.Equal(b[i].Rec) {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Dense probing is O(1) page.
	if c := nu.AccessCosts(); c.ProbePages != 1 {
		t.Fatalf("dense probe cost = %d pages, want 1", c.ProbePages)
	}
	// Appends are rejected until reorganized back to sparse.
	if err := v.Append(seq.Entry{Pos: 101, Rec: seq.Record{seq.Int(101)}}, 2); err == nil {
		t.Fatal("append to dense version succeeded")
	}
	if err := v.Reorganize(KindSparse, 2); err != nil {
		t.Fatal(err)
	}
	if err := v.Append(seq.Entry{Pos: 101, Rec: seq.Record{seq.Int(101)}}, 3); err != nil {
		t.Fatal(err)
	}
}

func TestVersionedScanMidSpanAndProbeCosts(t *testing.T) {
	schema := mvccSchema(t)
	v, err := NewVersioned(mvccData(t, schema, 100), KindSparse, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := v.Latest()
	es := collect(t, snap, seq.NewSpan(40, 60))
	if len(es) != 21 {
		t.Fatalf("mid-span scan returned %d records, want 21", len(es))
	}
	for i, e := range es {
		if e.Pos != seq.Pos(40+i) {
			t.Fatalf("entry %d at position %d, want %d", i, e.Pos, 40+i)
		}
	}
	st := snap.Stats().Snapshot()
	if st.RandPages == 0 {
		t.Fatal("mid-span scan charged no index descent")
	}
	if st.SeqRecords != 21 {
		t.Fatalf("scan delivered %d records, want 21", st.SeqRecords)
	}
}

func TestEpochTracker(t *testing.T) {
	tr := NewEpochTracker()
	if tr.Current() != 0 {
		t.Fatal("fresh tracker not at epoch 0")
	}
	e := tr.Pin()
	if e != 0 || tr.LiveReaders() != 1 {
		t.Fatalf("pin: epoch %d live %d", e, tr.LiveReaders())
	}
	if err := tr.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.AdvanceTo(1); err == nil {
		t.Fatal("re-publishing epoch 1 succeeded")
	}
	e2 := tr.Pin()
	if e2 != 1 {
		t.Fatalf("second pin at %d, want 1", e2)
	}
	if got := tr.MinLive(); got != 0 {
		t.Fatalf("min live = %d, want 0", got)
	}
	tr.Release(e)
	if got := tr.MinLive(); got != 1 {
		t.Fatalf("after release: min live = %d, want 1", got)
	}
	tr.Release(e2)
	if got := tr.MinLive(); got != 1 || tr.LiveReaders() != 0 {
		t.Fatalf("idle tracker: min live %d readers %d", got, tr.LiveReaders())
	}
}

// TestVersionedConcurrentReaders runs appending writers against pinned
// readers under the race detector: every reader must see exactly the
// records visible at its pinned epoch, on every re-scan.
func TestVersionedConcurrentReaders(t *testing.T) {
	schema := mvccSchema(t)
	v, err := NewVersioned(mvccData(t, schema, 50), KindSparse, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewEpochTracker()
	const appends = 200

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			e := tr.Current() + 1
			pos := seq.Pos(51 + i)
			if err := v.Append(seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}, e); err != nil {
				panic(err)
			}
			if err := tr.AdvanceTo(e); err != nil {
				panic(err)
			}
			if i%20 == 0 {
				v.GC(tr.MinLive())
			}
		}
	}()

	errs := make(chan error, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				e := tr.Pin()
				snap := v.SnapshotAt(e)
				a := mustCollect(snap, errs)
				b := mustCollect(snap, errs)
				if len(a) != len(b) {
					errs <- fmt.Errorf("snapshot at %d unstable: %d then %d records", e, len(a), len(b))
				}
				want := 50 + int(e)
				if len(a) != want {
					errs <- fmt.Errorf("snapshot at %d has %d records, want %d", e, len(a), want)
				}
				tr.Release(e)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func mustCollect(s seq.Sequence, errs chan<- error) []seq.Entry {
	es, err := seq.Collect(s.Scan(seq.AllSpan))
	if err != nil {
		errs <- err
	}
	return es
}
