package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

var closeSchema = seq.MustSchema(seq.Field{Name: "close", Type: seq.TFloat})

func mkEntries(positions ...seq.Pos) []seq.Entry {
	es := make([]seq.Entry, len(positions))
	for i, p := range positions {
		es[i] = seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p))}}
	}
	return es
}

func scanPositions(t *testing.T, s seq.Sequence, span seq.Span) []seq.Pos {
	t.Helper()
	es, err := seq.Collect(s.Scan(span))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]seq.Pos, len(es))
	for i, e := range es {
		out[i] = e.Pos
	}
	return out
}

func eqPos(a, b []seq.Pos) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDenseBasics(t *testing.T) {
	d, err := NewDense(closeSchema, mkEntries(1, 3, 5), seq.EmptySpan, 2)
	if err != nil {
		t.Fatal(err)
	}
	info := d.Info()
	if info.Span != seq.NewSpan(1, 5) {
		t.Errorf("span = %v", info.Span)
	}
	if info.Density != 0.6 {
		t.Errorf("density = %g, want 0.6", info.Density)
	}
	if d.Count() != 3 {
		t.Errorf("count = %d", d.Count())
	}
	if got := scanPositions(t, d, seq.AllSpan); !eqPos(got, []seq.Pos{1, 3, 5}) {
		t.Errorf("scan = %v", got)
	}
}

func TestDenseProbeCosts(t *testing.T) {
	d, err := NewDense(closeSchema, mkEntries(1, 2, 3, 4), seq.EmptySpan, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Probe(3)
	if err != nil || r.IsNull() {
		t.Fatalf("Probe(3) = %v, %v", r, err)
	}
	st := d.Stats().Snapshot()
	if st.RandPages != 1 || st.ProbeRecords != 1 {
		t.Errorf("probe cost = %v, want 1 random page", st)
	}
	// A probe outside the span answers Null without touching a page.
	if r, _ := d.Probe(99); !r.IsNull() {
		t.Error("probe outside span must be Null")
	}
	if got := d.Stats().Snapshot().RandPages; got != 1 {
		t.Errorf("out-of-span probe touched a page: %d", got)
	}
}

func TestDenseScanCosts(t *testing.T) {
	// 10 positions, 4 per page -> 3 pages for a full scan.
	d, err := NewDense(closeSchema, mkEntries(1, 4, 10), seq.NewSpan(1, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.AccessCosts(); got.StreamPages != 3 || got.ProbePages != 1 {
		t.Errorf("AccessCosts = %+v", got)
	}
	scanPositions(t, d, seq.AllSpan)
	st := d.Stats().Snapshot()
	if st.SeqPages != 3 {
		t.Errorf("full scan touched %d pages, want 3", st.SeqPages)
	}
	if st.SeqRecords != 3 {
		t.Errorf("records = %d, want 3", st.SeqRecords)
	}
	// A restricted scan touches fewer pages (the Figure 3 effect).
	d.Stats().Reset()
	scanPositions(t, d, seq.NewSpan(1, 4))
	if got := d.Stats().Snapshot().SeqPages; got != 1 {
		t.Errorf("restricted scan touched %d pages, want 1", got)
	}
}

func TestDenseRejects(t *testing.T) {
	if _, err := NewDense(nil, nil, seq.EmptySpan, 0); err == nil {
		t.Error("nil schema must be rejected")
	}
	if _, err := NewDense(closeSchema, mkEntries(1, 1), seq.EmptySpan, 0); err == nil {
		t.Error("duplicate positions must be rejected")
	}
	if _, err := NewDense(closeSchema, mkEntries(5), seq.NewSpan(1, 3), 0); err == nil {
		t.Error("span not covering entries must be rejected")
	}
	if _, err := NewDense(closeSchema, mkEntries(1), seq.AllSpan, 0); err == nil {
		t.Error("unbounded dense span must be rejected")
	}
	bad := []seq.Entry{{Pos: 1, Rec: seq.Record{seq.Int(1)}}}
	if _, err := NewDense(closeSchema, bad, seq.EmptySpan, 0); err == nil {
		t.Error("non-conforming record must be rejected")
	}
}

func TestSparseBasics(t *testing.T) {
	s, err := NewSparse(closeSchema, mkEntries(5, 1, 3), seq.NewSpan(1, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Info().Density != 0.3 {
		t.Errorf("density = %g", s.Info().Density)
	}
	if got := scanPositions(t, s, seq.AllSpan); !eqPos(got, []seq.Pos{1, 3, 5}) {
		t.Errorf("scan = %v", got)
	}
	r, err := s.Probe(3)
	if err != nil || r.IsNull() || r[0].AsFloat() != 3 {
		t.Errorf("Probe(3) = %v, %v", r, err)
	}
	if r, _ := s.Probe(2); !r.IsNull() {
		t.Error("Probe(2) must be Null")
	}
}

func TestSparseProbeCostGrowsLogarithmically(t *testing.T) {
	// 64 entries, 4 per page -> 16 pages -> depth 4.
	s, err := NewSparse(closeSchema, mkEntries(seqRange(1, 64)...), seq.EmptySpan, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.AccessCosts().ProbePages; got != 4 {
		t.Errorf("probe depth = %d, want 4", got)
	}
	s.Probe(30)
	if got := s.Stats().Snapshot().RandPages; got != 4 {
		t.Errorf("probe charged %d pages, want 4", got)
	}
}

func TestSparseScanCharges(t *testing.T) {
	s, err := NewSparse(closeSchema, mkEntries(seqRange(1, 8)...), seq.EmptySpan, 4)
	if err != nil {
		t.Fatal(err)
	}
	scanPositions(t, s, seq.AllSpan)
	st := s.Stats().Snapshot()
	if st.SeqPages != 2 {
		t.Errorf("full scan pages = %d, want 2", st.SeqPages)
	}
	// Scanning a suffix pays one index descent plus the suffix pages.
	s.Stats().Reset()
	scanPositions(t, s, seq.NewSpan(5, 8))
	st = s.Stats().Snapshot()
	if st.SeqPages != 1 || st.RandPages != s.probeDepth() {
		t.Errorf("suffix scan = %v", st)
	}
}

func TestSparseLowDensityScanCheaperThanDense(t *testing.T) {
	// 1000-position span, 10 records: sparse scans 1 page, dense scans 16.
	entries := mkEntries(seqRange(1, 10)...)
	span := seq.NewSpan(1, 1000)
	sp, err := NewSparse(closeSchema, entries, span, 64)
	if err != nil {
		t.Fatal(err)
	}
	de, err := NewDense(closeSchema, entries, span, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sp.AccessCosts().StreamPages >= de.AccessCosts().StreamPages {
		t.Errorf("sparse scan (%d pages) must be cheaper than dense (%d) at low density",
			sp.AccessCosts().StreamPages, de.AccessCosts().StreamPages)
	}
}

func TestFromMaterialized(t *testing.T) {
	m := seq.MustMaterialized(closeSchema, mkEntries(1, 2, 3))
	for _, kind := range []Kind{KindDense, KindSparse} {
		st, err := FromMaterialized(m, kind, 0)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got := scanPositions(t, st, seq.AllSpan); !eqPos(got, []seq.Pos{1, 2, 3}) {
			t.Errorf("%v scan = %v", kind, got)
		}
	}
	if _, err := FromMaterialized(m, Kind(99), 0); err == nil {
		t.Error("unknown kind must be rejected")
	}
	if KindDense.String() != "dense" || KindSparse.String() != "sparse" || Kind(9).String() == "" {
		t.Error("Kind.String wrong")
	}
}

func TestStatsSnapshotArithmetic(t *testing.T) {
	a := StatsSnapshot{SeqPages: 5, RandPages: 2, SeqRecords: 10, ProbeRecords: 1}
	b := StatsSnapshot{SeqPages: 1, RandPages: 1, SeqRecords: 4, ProbeRecords: 1}
	if got := a.Sub(b); got != (StatsSnapshot{SeqPages: 4, RandPages: 1, SeqRecords: 6, ProbeRecords: 0}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Add(b); got != (StatsSnapshot{SeqPages: 6, RandPages: 3, SeqRecords: 14, ProbeRecords: 2}) {
		t.Errorf("Add = %+v", got)
	}
	if a.Pages() != 7 {
		t.Errorf("Pages = %d", a.Pages())
	}
	if a.String() == "" {
		t.Error("String must render")
	}
}

func seqRange(lo, hi seq.Pos) []seq.Pos {
	var out []seq.Pos
	for p := lo; p <= hi; p++ {
		out = append(out, p)
	}
	return out
}

// Property: dense and sparse stores agree with the Materialized reference
// on every probe and on scans over random spans.
func TestStoresAgreeWithReference(t *testing.T) {
	f := func(seed int64, lo, hi int8) bool {
		rng := rand.New(rand.NewSource(seed))
		posSet := make(map[seq.Pos]bool)
		for i, n := 0, rng.Intn(30); i < n; i++ {
			posSet[seq.Pos(rng.Intn(80))] = true
		}
		var positions []seq.Pos
		for p := range posSet {
			positions = append(positions, p)
		}
		entries := mkEntries(positions...)
		ref := seq.MustMaterialized(closeSchema, entries)
		span := ref.Info().Span
		dn, err := NewDense(closeSchema, entries, span, 4)
		if err != nil {
			return false
		}
		sp, err := NewSparse(closeSchema, entries, span, 4)
		if err != nil {
			return false
		}
		for p := seq.Pos(-2); p < 85; p++ {
			want, _ := ref.Probe(p)
			gd, _ := dn.Probe(p)
			gs, _ := sp.Probe(p)
			if !gd.Equal(want) || !gs.Equal(want) {
				return false
			}
		}
		qspan := seq.Span{Start: seq.Pos(lo), End: seq.Pos(hi)}
		want, _ := seq.Collect(ref.Scan(qspan))
		gotD, _ := seq.Collect(dn.Scan(qspan))
		gotS, _ := seq.Collect(sp.Scan(qspan))
		if len(want) != len(gotD) || len(want) != len(gotS) {
			return false
		}
		for i := range want {
			if want[i].Pos != gotD[i].Pos || !want[i].Rec.Equal(gotD[i].Rec) {
				return false
			}
			if want[i].Pos != gotS[i].Pos || !want[i].Rec.Equal(gotS[i].Rec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
