package storage

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/seq"
)

// Sparse stores a base sequence as sorted (position, record) entries
// packed into pages of recordsPerPage entries each. Only non-Null records
// occupy space, so low-density sequences scan cheaply, but probing a
// position requires a binary-search descent that touches ~log2(pages)
// pages — the model of an index lookup (§3.4 footnote: "a relation with an
// unclustered index on a position attribute does not particularly favor
// stream access" is the inverse trade-off; Sparse favors stream access and
// penalizes probes).
type Sparse struct {
	schema  *seq.Schema
	span    seq.Span
	entries []seq.Entry
	rpp     int
	stats   *Stats
}

// NewSparse builds a sparse store from entries (unsorted accepted,
// duplicates rejected, Null records dropped). A non-empty span widens the
// valid range beyond the entry hull.
func NewSparse(schema *seq.Schema, entries []seq.Entry, span seq.Span, recordsPerPage int) (*Sparse, error) {
	if schema == nil {
		return nil, fmt.Errorf("storage: nil schema")
	}
	if recordsPerPage <= 0 {
		recordsPerPage = DefaultRecordsPerPage
	}
	es := make([]seq.Entry, 0, len(entries))
	for _, e := range entries {
		if e.Rec.IsNull() {
			continue
		}
		if !e.Rec.Conforms(schema) {
			return nil, fmt.Errorf("storage: record %v at %d does not conform to %v", e.Rec, e.Pos, schema)
		}
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Pos < es[j].Pos })
	for i := 1; i < len(es); i++ {
		if es[i].Pos == es[i-1].Pos {
			return nil, fmt.Errorf("storage: duplicate position %d", es[i].Pos)
		}
	}
	hull := seq.EmptySpan
	if len(es) > 0 {
		hull = seq.NewSpan(es[0].Pos, es[len(es)-1].Pos)
	}
	if span.IsEmpty() {
		span = hull
	} else if !hull.IsEmpty() && span.Intersect(hull) != hull {
		return nil, fmt.Errorf("storage: span %v does not cover entries %v", span, hull)
	}
	return &Sparse{schema: schema, span: span, entries: es, rpp: recordsPerPage, stats: &Stats{}}, nil
}

// Append adds a record at a position beyond the current valid range,
// extending the span. It supports the dynamic-arrival workloads of the
// trigger-mode extension (§5.3): monitored sequences grow at the end.
func (s *Sparse) Append(e seq.Entry) error {
	if e.Rec.IsNull() {
		return fmt.Errorf("storage: cannot append a Null record")
	}
	if !e.Rec.Conforms(s.schema) {
		return fmt.Errorf("storage: record %v does not conform to %v", e.Rec, s.schema)
	}
	if len(s.entries) > 0 && e.Pos <= s.entries[len(s.entries)-1].Pos {
		return fmt.Errorf("storage: append position %d not beyond last record %d",
			e.Pos, s.entries[len(s.entries)-1].Pos)
	}
	if !s.span.IsEmpty() && e.Pos <= s.span.End {
		return fmt.Errorf("storage: append position %d inside the valid range %v", e.Pos, s.span)
	}
	s.entries = append(s.entries, e)
	if s.span.IsEmpty() {
		s.span = seq.NewSpan(e.Pos, e.Pos)
	} else {
		s.span.End = e.Pos
	}
	return nil
}

// Info implements seq.Sequence.
func (s *Sparse) Info() seq.Info {
	den := 0.0
	if n := s.span.Len(); n > 0 && s.span.Bounded() {
		den = float64(len(s.entries)) / float64(n)
	}
	return seq.Info{Schema: s.schema, Span: s.span, Density: den}
}

// Stats implements Store.
func (s *Sparse) Stats() *Stats { return s.stats }

// Count returns the number of non-Null records.
func (s *Sparse) Count() int { return len(s.entries) }

func (s *Sparse) numPages() int64 {
	return (int64(len(s.entries)) + int64(s.rpp) - 1) / int64(s.rpp)
}

// probeDepth is the page touches charged per probe: the height of a
// binary-search descent over the pages, at least 1 when any page exists.
func (s *Sparse) probeDepth() int64 {
	n := s.numPages()
	if n <= 1 {
		return n
	}
	return int64(bits.Len64(uint64(n - 1))) // ceil(log2(n))
}

// AccessCosts implements Store.
func (s *Sparse) AccessCosts() AccessCosts {
	d := s.probeDepth()
	if d == 0 {
		d = 1
	}
	return AccessCosts{StreamPages: s.numPages(), ProbePages: d, RecordsPerPage: s.rpp}
}

// Probe implements seq.Sequence: a binary-search descent costing
// probeDepth page touches.
func (s *Sparse) Probe(pos seq.Pos) (seq.Record, error) {
	s.stats.ProbeRecords.Add(1)
	if !s.span.Contains(pos) || len(s.entries) == 0 {
		return nil, nil
	}
	s.stats.RandPages.Add(s.probeDepth())
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Pos >= pos })
	if i < len(s.entries) && s.entries[i].Pos == pos {
		return s.entries[i].Rec, nil
	}
	return nil, nil
}

// Scan implements seq.Sequence: sequential page touches over the entry
// range intersecting the span. (Positioning the scan start uses the same
// index descent as a probe.)
func (s *Sparse) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(s.span)
	if span.IsEmpty() || len(s.entries) == 0 {
		return emptyCursor{}
	}
	lo := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Pos >= span.Start })
	hi := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Pos > span.End })
	if lo > 0 {
		// Entering the middle of the file requires an index descent.
		s.stats.RandPages.Add(s.probeDepth())
	}
	return &sparseCursor{s: s, entries: s.entries[lo:hi], base: lo, page: -1}
}

type sparseCursor struct {
	s       *Sparse
	entries []seq.Entry
	base    int // index of entries[0] in s.entries, for page math
	i       int
	page    int64
}

func (c *sparseCursor) Next() (seq.Pos, seq.Record, bool) {
	if c.i >= len(c.entries) {
		return 0, nil, false
	}
	e := c.entries[c.i]
	pg := int64(c.base+c.i) / int64(c.s.rpp)
	if pg != c.page {
		c.page = pg
		c.s.stats.SeqPages.Add(1)
	}
	c.i++
	c.s.stats.SeqRecords.Add(1)
	return e.Pos, e.Rec, true
}

func (c *sparseCursor) Err() error   { return nil }
func (c *sparseCursor) Close() error { return nil }

// FromMaterialized packs a materialized sequence into a store of the given
// kind.
func FromMaterialized(m *seq.Materialized, kind Kind, recordsPerPage int) (Store, error) {
	switch kind {
	case KindDense:
		return NewDense(m.Info().Schema, m.Entries(), m.Info().Span, recordsPerPage)
	case KindSparse:
		return NewSparse(m.Info().Schema, m.Entries(), m.Info().Span, recordsPerPage)
	default:
		return nil, fmt.Errorf("storage: unknown kind %v", kind)
	}
}

// Kind selects a physical representation.
type Kind int

// The available physical representations.
const (
	KindDense Kind = iota
	KindSparse
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindDense:
		return "dense"
	case KindSparse:
		return "sparse"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}
