package storage

import (
	"sync"
	"testing"
)

func TestSnapshotAndReset(t *testing.T) {
	var s Stats
	s.SeqPages.Add(5)
	s.RandPages.Add(3)
	s.SeqRecords.Add(7)
	s.ProbeRecords.Add(2)
	s.PoolHits.Add(11)
	s.PoolMisses.Add(4)
	s.PoolEvictions.Add(1)
	s.DirtyWrites.Add(6)

	got := s.SnapshotAndReset()
	want := StatsSnapshot{
		SeqPages: 5, RandPages: 3, SeqRecords: 7, ProbeRecords: 2,
		PoolHits: 11, PoolMisses: 4, PoolEvictions: 1, DirtyWrites: 6,
	}
	if got != want {
		t.Fatalf("SnapshotAndReset = %+v, want %+v", got, want)
	}
	if after := s.Snapshot(); after != (StatsSnapshot{}) {
		t.Fatalf("counters not zeroed: %+v", after)
	}
	if !got.HasPool() {
		t.Fatal("HasPool false with pool traffic")
	}
	if (StatsSnapshot{SeqPages: 9}).HasPool() {
		t.Fatal("HasPool true without pool traffic")
	}
}

// TestSnapshotAndResetString: the pool section renders only when pool
// traffic exists, keeping memory-tier renders byte-identical.
func TestStatsSnapshotString(t *testing.T) {
	mem := StatsSnapshot{SeqPages: 2, SeqRecords: 8}
	if s := mem.String(); s != "seqPages=2 randPages=0 seqRecs=8 probes=0" {
		t.Fatalf("memory-tier String() = %q", s)
	}
	disk := StatsSnapshot{SeqPages: 2, PoolHits: 1, PoolMisses: 1}
	if s := disk.String(); s != "seqPages=2 randPages=0 seqRecs=0 probes=0 poolHits=1 poolMisses=1 evictions=0 dirtyWrites=0" {
		t.Fatalf("disk-tier String() = %q", s)
	}
}

// TestSnapshotAndResetConservation: concurrent writers and swappers —
// every increment lands in exactly one taken snapshot (or the final
// remainder). A Snapshot-then-Reset pair would lose increments that
// slip between the two calls; the per-counter swap cannot.
func TestSnapshotAndResetConservation(t *testing.T) {
	var s Stats
	const writers = 4
	const perWriter = 10000

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				s.SeqPages.Add(1)
			}
		}()
	}

	var taken int64 // swapper-local; read only after the swapper joins
	stop := make(chan struct{})
	var swapperWG sync.WaitGroup
	swapperWG.Add(1)
	go func() {
		defer swapperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				taken += s.SnapshotAndReset().SeqPages
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	swapperWG.Wait()
	total := taken + s.Snapshot().SeqPages
	if total != writers*perWriter {
		t.Fatalf("conservation violated: %d counted, want %d", total, writers*perWriter)
	}
}
