package storage

import (
	"fmt"

	"repro/internal/seq"
)

// Dense stores a base sequence as an array over its valid range: position
// p lives at slot p-span.Start. Pages cover recordsPerPage consecutive
// positions. Empty positions cost storage but make probing O(1): one page
// touch per probe. This models the "physically organized to favor stream
// access" layout of §3.4 with a clustered positional index.
type Dense struct {
	schema *seq.Schema
	span   seq.Span
	recs   []seq.Record // index = pos - span.Start; nil = Null
	count  int          // non-Null records
	rpp    int
	stats  *Stats
}

// NewDense builds a dense store over the hull of the given entries, or
// over the explicit span if non-empty. recordsPerPage <= 0 selects
// DefaultRecordsPerPage.
func NewDense(schema *seq.Schema, entries []seq.Entry, span seq.Span, recordsPerPage int) (*Dense, error) {
	if schema == nil {
		return nil, fmt.Errorf("storage: nil schema")
	}
	if recordsPerPage <= 0 {
		recordsPerPage = DefaultRecordsPerPage
	}
	hull := seq.EmptySpan
	for _, e := range entries {
		if e.Rec.IsNull() {
			continue
		}
		hull = hull.Union(seq.NewSpan(e.Pos, e.Pos))
	}
	if span.IsEmpty() {
		span = hull
	} else if !hull.IsEmpty() && span.Intersect(hull) != hull {
		return nil, fmt.Errorf("storage: span %v does not cover entries %v", span, hull)
	}
	d := &Dense{schema: schema, span: span, rpp: recordsPerPage, stats: &Stats{}}
	if span.IsEmpty() {
		return d, nil
	}
	if !span.Bounded() {
		return nil, fmt.Errorf("storage: dense store requires a bounded span, got %v", span)
	}
	n := span.Len()
	const maxSlots = 1 << 28
	if n > maxSlots {
		return nil, fmt.Errorf("storage: dense span of %d positions too large", n)
	}
	d.recs = make([]seq.Record, n)
	for _, e := range entries {
		if e.Rec.IsNull() {
			continue
		}
		if !e.Rec.Conforms(schema) {
			return nil, fmt.Errorf("storage: record %v at %d does not conform to %v", e.Rec, e.Pos, schema)
		}
		slot := e.Pos - span.Start
		if d.recs[slot] != nil {
			return nil, fmt.Errorf("storage: duplicate position %d", e.Pos)
		}
		d.recs[slot] = e.Rec
		d.count++
	}
	return d, nil
}

// Info implements seq.Sequence.
func (d *Dense) Info() seq.Info {
	den := 0.0
	if n := d.span.Len(); n > 0 {
		den = float64(d.count) / float64(n)
	}
	return seq.Info{Schema: d.schema, Span: d.span, Density: den}
}

// Stats implements Store.
func (d *Dense) Stats() *Stats { return d.stats }

// Count returns the number of non-Null records.
func (d *Dense) Count() int { return d.count }

// AccessCosts implements Store: a full scan touches every page of the
// valid range (empty positions still occupy slots); a probe touches
// exactly one page.
func (d *Dense) AccessCosts() AccessCosts {
	pages := (d.span.Len() + int64(d.rpp) - 1) / int64(d.rpp)
	return AccessCosts{StreamPages: pages, ProbePages: 1, RecordsPerPage: d.rpp}
}

// Probe implements seq.Sequence: one random page touch.
func (d *Dense) Probe(pos seq.Pos) (seq.Record, error) {
	d.stats.ProbeRecords.Add(1)
	if !d.span.Contains(pos) {
		return nil, nil // outside the valid range: Null, no page touched
	}
	d.stats.RandPages.Add(1)
	return d.recs[pos-d.span.Start], nil
}

// Scan implements seq.Sequence: sequential page touches over the
// intersection of the requested span with the valid range.
func (d *Dense) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(d.span)
	if span.IsEmpty() {
		return emptyCursor{}
	}
	return &denseCursor{d: d, pos: span.Start, end: span.End, page: -1}
}

type denseCursor struct {
	d    *Dense
	pos  seq.Pos
	end  seq.Pos
	page int64 // last page charged; -1 before the first touch
}

func (c *denseCursor) Next() (seq.Pos, seq.Record, bool) {
	for c.pos <= c.end {
		p := c.pos
		c.pos++
		// Dense stores allocate their record array at construction, so
		// the span is bounded and p lies inside it.
		off := p - c.d.span.Start //seqvet:ignore spanarith dense spans are bounded at construction
		// Charge each page the first time the scan enters it, whether or
		// not it holds any non-Null record: empty slots still occupy
		// space in a dense layout.
		pg := off / int64(c.d.rpp)
		if pg != c.page {
			c.page = pg
			c.d.stats.SeqPages.Add(1)
		}
		if r := c.d.recs[off]; r != nil {
			c.d.stats.SeqRecords.Add(1)
			return p, r, true
		}
	}
	return 0, nil, false
}

func (c *denseCursor) Err() error   { return nil }
func (c *denseCursor) Close() error { return nil }

type emptyCursor struct{}

func (emptyCursor) Next() (seq.Pos, seq.Record, bool) { return 0, nil, false }
func (emptyCursor) Err() error                        { return nil }
func (emptyCursor) Close() error                      { return nil }
