package disk

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// WAL record types. Records are logical redo entries: replay re-executes
// the mutation against the recovered in-memory state, so the log is
// idempotent under the epoch-advance check (a record whose epoch does
// not advance the sequence's version epoch was already captured by the
// checkpoint the replay started from).
//
// Bulk loads (CreateSequence, PutView) are chunked: a begin record
// carries the metadata, bulk records carry bounded entry runs, and a
// commit record makes the object visible. Recovery discards a begin
// group with no commit — such a group can only sit at the torn tail of
// the last segment, because the whole group is appended contiguously
// under the writer lock.
const (
	walCreate     byte = 1  // begin sequence: name, fileID, kind, rpp, schema, span, epoch
	walBulk       byte = 2  // entry run for the pending create: fileID, entries
	walCommitSeq  byte = 3  // commit the pending create: fileID
	walAppend     byte = 4  // single append: fileID, epoch, pos, record
	walReorg      byte = 5  // reorganize: fileID, epoch, kind
	walDrop       byte = 6  // drop sequence: fileID, epoch
	walPutView    byte = 7  // begin view: name, epoch, seql, span, bases
	walViewBulk   byte = 8  // entry run for the pending view: name, entries
	walCommitView byte = 9  // commit the pending view: name
	walDropView   byte = 10 // drop view: name, epoch
)

// maxWALRecord bounds one WAL record; larger length prefixes are treated
// as torn tails. Bulk chunking keeps well-formed writers far below it.
const maxWALRecord = 32 << 20

// walBulkChunk is the number of entries per bulk record.
const walBulkChunk = 512

// walName formats a segment file name; segments are replayed in
// ascending sequence order.
func walName(n uint64) string { return fmt.Sprintf("wal-%08d.log", n) }

// parseWALName inverts walName.
func parseWALName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listWALSegments returns the segment numbers present in dir, ascending.
func listWALSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		if n, ok := parseWALName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// wal is the write-ahead log writer: an append-only segment file with
// per-record CRC32-C framing
//
//	u32 big-endian  payload length
//	u32 big-endian  CRC32-C of the payload
//	bytes           payload (type byte + record body)
//
// Appends buffer in memory; flush writes the buffer, sync flushes and
// fsyncs. Group commit batches syncs: in batched mode the flusher
// goroutine syncs on a timer, bounding the durability window instead of
// paying one fsync per append.
//
// mu is a leaf in the declared lock order: critical sections are buffer
// manipulation and file I/O only.
//
//seqvet:lockorder leaf disk.wal.mu
type wal struct {
	mu    sync.Mutex
	dir   string
	seq   uint64
	f     *os.File
	buf   []byte // appended but not yet written
	size  int64  // bytes written to the current segment
	dirty bool   // written or buffered bytes not yet fsynced
	hook  Hook
}

// createWAL opens a fresh segment for appending.
func createWAL(dir string, seq uint64, hook Hook) (*wal, error) {
	f, err := os.OpenFile(filepath.Join(dir, walName(seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{dir: dir, seq: seq, f: f, hook: hook}, nil
}

// append frames one record into the buffer. When syncNow is set the
// record (and everything buffered before it) is durable on return.
func (w *wal) append(payload []byte, syncNow bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(payload) > maxWALRecord {
		return fmt.Errorf("disk: WAL record of %d bytes exceeds limit %d", len(payload), maxWALRecord)
	}
	var hdr [8]byte
	putU32(hdr[0:4], uint32(len(payload)))
	putU32(hdr[4:8], crc32.Checksum(payload, crcTable))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.dirty = true
	if syncNow {
		return w.syncLocked()
	}
	return nil
}

// flushLocked writes the buffer to the segment file. On a hook-injected
// partial write, the prefix reaches the file and the rest is dropped —
// the torn-tail shape recovery must detect.
func (w *wal) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	buf := w.buf
	if w.hook != nil {
		if err := w.hook("wal.write"); err != nil {
			if pw, ok := err.(*PartialWriteError); ok {
				n := pw.N
				if n > len(buf) {
					n = len(buf)
				}
				wrote, _ := w.f.Write(buf[:n])
				w.size += int64(wrote)
				w.buf = nil
				return err
			}
			return err
		}
	}
	n, err := w.f.Write(buf)
	w.size += int64(n)
	if err != nil {
		w.buf = nil
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

func (w *wal) syncLocked() error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	if !w.dirty {
		return nil
	}
	if w.hook != nil {
		if err := w.hook("wal.sync"); err != nil {
			return err
		}
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// sync makes everything appended so far durable.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// needsSync reports whether unsynced bytes exist (the flusher's cheap
// poll).
func (w *wal) needsSync() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dirty
}

// bytes returns the size of the current segment including buffered data.
func (w *wal) bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size + int64(len(w.buf))
}

// rotate syncs and closes the current segment and opens segment n. The
// caller (the checkpoint) serializes rotation against appends.
func (w *wal) rotate(n uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.syncLocked(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(w.dir, walName(n)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w.f.Close()
	w.f, w.seq, w.size, w.dirty = f, n, 0, false
	return nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// replayWAL reads one segment and calls apply for each intact record, in
// order. It stops at the first torn record — a truncated header, an
// implausible length, a short payload, or a CRC mismatch — and reports
// whether a tear was found. Torn tails are the expected shape of a crash
// mid-append; they are never applied.
func replayWAL(path string, apply func(payload []byte) error) (torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	off := 0
	for off < len(data) {
		if off+8 > len(data) {
			return true, nil
		}
		n := int(getU32(data[off : off+4]))
		want := getU32(data[off+4 : off+8])
		if n == 0 || n > maxWALRecord || off+8+n > len(data) {
			return true, nil
		}
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, crcTable) != want {
			return true, nil
		}
		if err := apply(payload); err != nil {
			return false, fmt.Errorf("disk: replaying %s at offset %d: %w", path, off, err)
		}
		off += 8 + n
	}
	return false, nil
}
