package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/seq"
	"repro/internal/storage"
)

// Config tunes a DB. The zero value is safe and durable: default page
// size, default pool, fsync on every append, background checkpointing.
type Config struct {
	// PageSize is the page size in bytes (default DefaultPageSize). An
	// existing database's page size wins over the configured one.
	PageSize int
	// RecordsPerPage is the per-page record capacity for new sequences
	// (default storage.DefaultRecordsPerPage).
	RecordsPerPage int
	// PoolPages is the buffer-pool capacity in frames (default 1024 —
	// 8 MiB of 8 KiB pages).
	PoolPages int
	// BatchFsync enables group commit: appends return after the WAL
	// write, and a flusher goroutine fsyncs every FsyncInterval,
	// bounding the durability window instead of paying one fsync per
	// append. Off by default: every append is durable on return.
	BatchFsync bool
	// FsyncInterval is the group-commit window (default 2ms); only used
	// with BatchFsync.
	FsyncInterval time.Duration
	// CheckpointInterval is how often the background checkpointer runs
	// when WAL bytes exist (default 15s). Negative disables background
	// checkpointing (Checkpoint can still be called directly).
	CheckpointInterval time.Duration
	// CheckpointBytes is the WAL size that triggers an early checkpoint
	// (default 4 MiB).
	CheckpointBytes int64
	// Hook is the test-only failure-injection point; nil in production.
	Hook Hook
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = DefaultPageSize
	}
	if c.RecordsPerPage <= 0 {
		c.RecordsPerPage = storage.DefaultRecordsPerPage
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 1024
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 2 * time.Millisecond
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 15 * time.Second
	}
	if c.CheckpointBytes <= 0 {
		c.CheckpointBytes = 4 << 20
	}
	return c
}

// DB is one durable database directory: a catalog, per-sequence page
// files, a WAL, and the buffer pool in front of them. All mutations are
// serialized by the writer lock and follow write-ahead discipline — the
// WAL record is durable (or queued for the group-commit fsync) before
// the in-memory state changes; pages reach their files lazily, via
// eviction writebacks and checkpoints. Reads are epoch-pinned snapshots
// and run concurrently with writers, exactly like the memory-backed
// Versioned store.
//
// Once a durability-relevant I/O fails, the DB is failed: every
// subsequent mutation and checkpoint errors, reads keep serving from
// memory, and the directory reopens cleanly via WAL recovery — the same
// contract a crashed process gets.
//
// Lock order (cpMu serializes checkpoints and is taken first; wmu
// serializes writers; mu guards the name maps for readers):
//
//seqvet:lockorder disk.DB.cpMu < disk.DB.wmu
//seqvet:lockorder disk.DB.cpMu < disk.pool.mu
//seqvet:lockorder disk.DB.cpMu < disk.pageFile.mu
//seqvet:lockorder disk.DB.cpMu < disk.wal.mu
//seqvet:lockorder disk.DB.wmu < disk.DB.mu
//seqvet:lockorder disk.DB.wmu < disk.Seq.mu
//seqvet:lockorder disk.DB.wmu < disk.pool.mu
//seqvet:lockorder disk.DB.wmu < disk.pageFile.mu
//seqvet:lockorder disk.DB.wmu < disk.wal.mu
//seqvet:lockorder disk.DB.mu < disk.Seq.mu
//seqvet:lockorder disk.DB.mu < disk.pageFile.mu
type DB struct {
	dir  string
	cfg  Config
	pool *pool

	wmu      sync.Mutex // writer lock: serializes every mutation
	epoch    atomic.Int64
	nextFile uint32
	walSeq   uint64
	w        *wal
	closed   bool
	dropped  []*pageFile // files of dropped sequences, removed at checkpoint

	// Checkpoint pinning (guarded by wmu): while a checkpoint is in
	// flight, every ref in its captured version tables is pinned, and
	// drop/GC must defer forgetting a pinned ref until the checkpoint
	// ends — a forget would otherwise make the flush of a captured dirty
	// page fail and poison the DB.
	cpPins     map[*pageRef]bool
	cpDeferred []deferredForget

	mu    sync.RWMutex // guards the maps for concurrent readers
	seqs  map[string]*Seq
	byID  map[uint32]*Seq
	views map[string]*View

	cpMu   sync.Mutex // serializes checkpoints
	failed atomic.Bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// Open opens (or creates) a database directory, running crash recovery:
// load the last checkpoint's catalog, replay every WAL segment at or
// after it — discarding torn tails by CRC — and start a fresh segment.
func Open(dir string, cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	if cfg.PageSize < minPageSize {
		return nil, fmt.Errorf("disk: page size %d below minimum %d", cfg.PageSize, minPageSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cat, err := readCatalog(dir)
	if err != nil {
		return nil, err
	}
	if cat != nil && cat.pageSize != cfg.PageSize {
		cfg.PageSize = cat.pageSize
	}
	db := &DB{
		dir:   dir,
		cfg:   cfg,
		pool:  newPool(cfg.PoolPages),
		seqs:  make(map[string]*Seq),
		byID:  make(map[uint32]*Seq),
		views: make(map[string]*View),
		quit:  make(chan struct{}),
	}
	catWALSeq := uint64(1)
	if cat != nil {
		catWALSeq = cat.walSeq
		db.epoch.Store(cat.epoch)
		db.nextFile = cat.nextFile
		for i := range cat.seqs {
			if err := db.loadSeq(&cat.seqs[i]); err != nil {
				db.releaseFiles()
				return nil, err
			}
		}
		for _, v := range cat.views {
			db.views[v.Name] = v
		}
	}
	segs, err := listWALSegments(dir)
	if err != nil {
		db.releaseFiles()
		return nil, err
	}
	rs := &replayState{pendingSeq: make(map[uint32]*pendingCreate)}
	maxSeg := catWALSeq - 1
	for _, n := range segs {
		if n < catWALSeq {
			continue
		}
		if n > maxSeg {
			maxSeg = n
		}
		_, err := replayWAL(filepath.Join(dir, walName(n)), func(payload []byte) error {
			return db.applyWAL(payload, rs)
		})
		if err != nil {
			db.releaseFiles()
			return nil, err
		}
	}
	db.walSeq = maxSeg + 1
	db.w, err = createWAL(dir, db.walSeq, cfg.Hook)
	if err != nil {
		db.releaseFiles()
		return nil, err
	}
	db.sweepOrphans(catWALSeq, segs)
	if cfg.BatchFsync {
		db.wg.Add(1)
		go db.flusher()
	}
	if cfg.CheckpointInterval > 0 {
		db.wg.Add(1)
		go db.checkpointer()
	}
	return db, nil
}

// loadSeq reconstructs one sequence from its catalog entry, deriving the
// page file's allocation state from the file length and the referenced
// slots (slots the catalog does not reference are free, which also
// reclaims slots leaked by writebacks racing a failed checkpoint).
func (db *DB) loadSeq(cs *catSeq) error {
	path := filepath.Join(db.dir, seqFileName(cs.fileID))
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("disk: sequence %q: %w", cs.name, err)
	}
	nextPhys := st.Size()/int64(db.cfg.PageSize) - 1
	if nextPhys < 0 {
		nextPhys = 0
	}
	used := make(map[int64]bool, len(cs.table))
	table := make([]*pageRef, len(cs.table))
	for i, cr := range cs.table {
		if cr.phys >= nextPhys {
			return fmt.Errorf("disk: sequence %q references page %d beyond file end %d", cs.name, cr.phys, nextPhys)
		}
		used[cr.phys] = true
		ref := newRef(cr.epoch, cr.first, cr.n)
		ref.phys.Store(cr.phys)
		table[i] = ref
	}
	var free []int64
	for p := int64(0); p < nextPhys; p++ {
		if !used[p] {
			free = append(free, p)
		}
	}
	file, err := openPageFile(path, db.cfg.PageSize, nextPhys, free, db.cfg.Hook)
	if err != nil {
		return err
	}
	s := &Seq{
		name: cs.name, fileID: cs.fileID, schema: cs.schema, rpp: cs.rpp, file: file, db: db,
		versions: []*dversion{{epoch: cs.epoch, kind: cs.kind, span: cs.span, count: cs.count, table: table}},
	}
	db.seqs[cs.name] = s
	db.byID[cs.fileID] = s
	if cs.fileID >= db.nextFile {
		db.nextFile = cs.fileID + 1
	}
	return nil
}

// sweepOrphans removes files recovery proved unreferenced: WAL segments
// before the catalog's replay point, page files the catalog has never
// heard of (crash leftovers of checkpoint-removed drops), and a leftover
// catalog temp file. Files of sequences whose drop was replayed from the
// WAL are NOT swept — the on-disk catalog still references them, and
// deleting them before a new catalog lands would make the next recovery
// fail in loadSeq; they sit in db.dropped until a checkpoint publishes a
// catalog without them.
func (db *DB) sweepOrphans(catWALSeq uint64, segs []uint64) {
	for _, n := range segs {
		if n < catWALSeq {
			os.Remove(filepath.Join(db.dir, walName(n)))
		}
	}
	os.Remove(filepath.Join(db.dir, catalogName+".tmp"))
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	live := make(map[string]bool, len(db.seqs)+len(db.dropped))
	for _, s := range db.seqs {
		live[seqFileName(s.fileID)] = true
	}
	for _, f := range db.dropped {
		live[filepath.Base(f.path)] = true
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "s") && strings.HasSuffix(name, ".spf") && !live[name] {
			os.Remove(filepath.Join(db.dir, name))
		}
	}
}

func (db *DB) releaseFiles() {
	for _, s := range db.seqs {
		s.file.close()
	}
	for _, f := range db.dropped {
		f.close()
	}
	db.dropped = nil
}

func seqFileName(fileID uint32) string { return fmt.Sprintf("s%06d.spf", fileID) }

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// Epoch returns the current epoch — the last write's epoch.
func (db *DB) Epoch() int64 { return db.epoch.Load() }

// PageSize returns the (possibly catalog-inherited) page size.
func (db *DB) PageSize() int { return db.cfg.PageSize }

// Pool returns the buffer pool's aggregate traffic counters.
func (db *DB) Pool() PoolCounters { return db.pool.counters() }

// PoolResident returns the number of frames resident in the pool.
func (db *DB) PoolResident() int { return db.pool.resident() }

// WALBytes returns the size of the current WAL segment.
func (db *DB) WALBytes() int64 { return db.w.bytes() }

// DropCaches evicts every clean frame from the buffer pool — the
// cold-cache lever for benchmarks. Checkpoint first for a fully cold
// pool (dirty frames cannot be dropped).
func (db *DB) DropCaches() { db.pool.dropClean() }

// Seq returns the named sequence.
func (db *DB) Seq(name string) (*Seq, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.seqs[name]
	return s, ok
}

// Names returns the sequence names, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.seqs))
	for n := range db.seqs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Views returns the persisted views, sorted by name.
func (db *DB) Views() []*View {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*View, 0, len(db.views))
	for _, v := range db.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ── background goroutines ───────────────────────────────────────────

// flusher is the group-commit fsync loop: it makes buffered WAL records
// durable every FsyncInterval, bounding the data-loss window BatchFsync
// trades for append latency.
func (db *DB) flusher() {
	defer db.wg.Done()
	t := time.NewTicker(db.cfg.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-db.quit:
			return
		case <-t.C:
			if db.failed.Load() || !db.w.needsSync() {
				continue
			}
			if err := db.w.sync(); err != nil {
				db.failed.Store(true)
			}
		}
	}
}

// checkpointer triggers checkpoints when the WAL exceeds
// CheckpointBytes, and at least every CheckpointInterval while WAL
// bytes exist.
func (db *DB) checkpointer() {
	defer db.wg.Done()
	tick := time.Second
	if db.cfg.CheckpointInterval < tick {
		tick = db.cfg.CheckpointInterval
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var since time.Duration
	for {
		select {
		case <-db.quit:
			return
		case <-t.C:
			since += tick
			if db.failed.Load() {
				continue
			}
			n := db.w.bytes()
			if n >= db.cfg.CheckpointBytes || (n > 0 && since >= db.cfg.CheckpointInterval) {
				since = 0
				db.Checkpoint()
			}
		}
	}
}

// Close stops the background goroutines, takes a final checkpoint (on a
// healthy DB), and closes every file.
func (db *DB) Close() error {
	db.wmu.Lock()
	if db.closed {
		db.wmu.Unlock()
		return nil
	}
	db.closed = true
	db.wmu.Unlock()
	close(db.quit)
	db.wg.Wait()
	var err error
	if !db.failed.Load() {
		err = db.Checkpoint()
	}
	if werr := db.w.close(); err == nil && werr != nil && !db.failed.Load() {
		err = werr
	}
	db.mu.Lock()
	for _, s := range db.seqs {
		s.file.close()
	}
	db.mu.Unlock()
	db.wmu.Lock()
	for _, f := range db.dropped {
		f.close()
	}
	db.dropped = nil
	db.wmu.Unlock()
	return err
}

// ── WAL record codec and apply ──────────────────────────────────────

type createMeta struct {
	name   string
	fileID uint32
	kind   storage.Kind
	rpp    int
	schema *seq.Schema
	span   seq.Span
	epoch  int64
}

type pendingCreate struct {
	meta    createMeta
	entries []seq.Entry
}

type replayState struct {
	pendingSeq  map[uint32]*pendingCreate
	pendingView *View
}

func encCreate(m createMeta) []byte {
	w := &writer{}
	w.byte(walCreate)
	w.string(m.name)
	w.uvarint(uint64(m.fileID))
	w.byte(byte(m.kind))
	w.uvarint(uint64(m.rpp))
	w.schema(m.schema)
	w.span(m.span)
	w.varint(m.epoch)
	return w.buf
}

func encBulk(t byte, fileID uint32, name string, ents []seq.Entry) []byte {
	w := &writer{}
	w.byte(t)
	if t == walBulk {
		w.uvarint(uint64(fileID))
	} else {
		w.string(name)
	}
	w.entries(ents)
	return w.buf
}

func encCommitSeq(fileID uint32) []byte {
	w := &writer{}
	w.byte(walCommitSeq)
	w.uvarint(uint64(fileID))
	return w.buf
}

func encAppend(fileID uint32, epoch int64, e seq.Entry) []byte {
	w := &writer{}
	w.byte(walAppend)
	w.uvarint(uint64(fileID))
	w.varint(epoch)
	w.varint(e.Pos)
	w.record(e.Rec)
	return w.buf
}

func encReorg(fileID uint32, epoch int64, kind storage.Kind) []byte {
	w := &writer{}
	w.byte(walReorg)
	w.uvarint(uint64(fileID))
	w.varint(epoch)
	w.byte(byte(kind))
	return w.buf
}

func encDrop(fileID uint32, epoch int64) []byte {
	w := &writer{}
	w.byte(walDrop)
	w.uvarint(uint64(fileID))
	w.varint(epoch)
	return w.buf
}

func encPutView(v *View) []byte {
	w := &writer{}
	w.byte(walPutView)
	w.string(v.Name)
	w.varint(v.Epoch)
	w.string(v.SEQL)
	w.span(v.Span)
	w.uvarint(uint64(len(v.Bases)))
	for _, b := range v.Bases {
		w.string(b)
	}
	return w.buf
}

func encCommitView(name string) []byte {
	w := &writer{}
	w.byte(walCommitView)
	w.string(name)
	return w.buf
}

func encDropView(name string, epoch int64) []byte {
	w := &writer{}
	w.byte(walDropView)
	w.string(name)
	w.varint(epoch)
	return w.buf
}

// applyWAL applies one replayed record. Application is idempotent under
// the epoch checks: a record whose epoch does not advance the target's
// version epoch was already captured by the checkpoint replay started
// from.
func (db *DB) applyWAL(payload []byte, rs *replayState) error {
	r := &reader{buf: payload}
	typ := r.byte()
	switch typ {
	case walCreate:
		m := createMeta{}
		m.name = r.string()
		m.fileID = uint32(r.uvarint())
		m.kind = storage.Kind(r.byte())
		m.rpp = int(r.uvarint())
		m.schema = r.schema()
		m.span = r.span()
		m.epoch = r.varint()
		if r.err != nil {
			return r.err
		}
		if m.kind != storage.KindDense && m.kind != storage.KindSparse {
			return fmt.Errorf("disk: create with unknown kind %d", int(m.kind))
		}
		rs.pendingSeq[m.fileID] = &pendingCreate{meta: m}
	case walBulk:
		fileID := uint32(r.uvarint())
		ents := r.entriesRun(1 << 26)
		if r.err != nil {
			return r.err
		}
		pc, ok := rs.pendingSeq[fileID]
		if !ok {
			return fmt.Errorf("disk: bulk record for unknown pending create %d", fileID)
		}
		pc.entries = append(pc.entries, ents...)
	case walCommitSeq:
		fileID := uint32(r.uvarint())
		if r.err != nil {
			return r.err
		}
		pc, ok := rs.pendingSeq[fileID]
		if !ok {
			return fmt.Errorf("disk: commit for unknown pending create %d", fileID)
		}
		delete(rs.pendingSeq, fileID)
		if err := db.applyCreate(pc.meta, pc.entries); err != nil {
			return err
		}
	case walAppend:
		fileID := uint32(r.uvarint())
		epoch := r.varint()
		pos := r.varint()
		rec := r.record()
		if r.err != nil {
			return r.err
		}
		s, ok := db.byID[fileID]
		if !ok {
			return fmt.Errorf("disk: append to unknown sequence %d", fileID)
		}
		if epoch <= s.LatestEpoch() {
			return nil // captured by the checkpoint already
		}
		p, err := s.prepareAppend(seq.Entry{Pos: pos, Rec: rec}, epoch)
		if err != nil {
			return err
		}
		if err := s.commitAppend(p); err != nil {
			return err
		}
		db.dropViewsReadingLocked(s.name)
		db.bumpEpoch(epoch)
	case walReorg:
		fileID := uint32(r.uvarint())
		epoch := r.varint()
		kind := storage.Kind(r.byte())
		if r.err != nil {
			return r.err
		}
		s, ok := db.byID[fileID]
		if !ok {
			return fmt.Errorf("disk: reorganize of unknown sequence %d", fileID)
		}
		if epoch <= s.LatestEpoch() {
			return nil
		}
		if err := s.reorganizeLocked(kind, epoch); err != nil {
			return err
		}
		db.bumpEpoch(epoch)
	case walDrop:
		fileID := uint32(r.uvarint())
		epoch := r.varint()
		if r.err != nil {
			return r.err
		}
		s, ok := db.byID[fileID]
		if !ok {
			return fmt.Errorf("disk: drop of unknown sequence %d", fileID)
		}
		db.applyDrop(s)
		db.bumpEpoch(epoch)
	case walPutView:
		v := &View{}
		v.Name = r.string()
		v.Epoch = r.varint()
		v.SEQL = r.string()
		v.Span = r.span()
		nb := r.count("view base", 1<<16)
		for i := 0; i < nb && r.err == nil; i++ {
			v.Bases = append(v.Bases, r.string())
		}
		if r.err != nil {
			return r.err
		}
		rs.pendingView = v
	case walViewBulk:
		name := r.string()
		ents := r.entriesRun(1 << 26)
		if r.err != nil {
			return r.err
		}
		if rs.pendingView == nil || rs.pendingView.Name != name {
			return fmt.Errorf("disk: view bulk record for unknown pending view %q", name)
		}
		rs.pendingView.Entries = append(rs.pendingView.Entries, ents...)
	case walCommitView:
		name := r.string()
		if r.err != nil {
			return r.err
		}
		if rs.pendingView == nil || rs.pendingView.Name != name {
			return fmt.Errorf("disk: commit for unknown pending view %q", name)
		}
		v := rs.pendingView
		rs.pendingView = nil
		db.views[v.Name] = v
		db.bumpEpoch(v.Epoch)
	case walDropView:
		name := r.string()
		epoch := r.varint()
		if r.err != nil {
			return r.err
		}
		delete(db.views, name)
		db.bumpEpoch(epoch)
	default:
		return fmt.Errorf("disk: unknown WAL record type %d", typ)
	}
	return nil
}

func (db *DB) bumpEpoch(epoch int64) {
	if epoch > db.epoch.Load() {
		db.epoch.Store(epoch)
	}
}

// applyCreate builds a sequence from committed create metadata: page
// file, packed frames (dirty, in the pool), version table, registration.
func (db *DB) applyCreate(m createMeta, entries []seq.Entry) error {
	if _, exists := db.seqs[m.name]; exists {
		return fmt.Errorf("disk: sequence %q already exists", m.name)
	}
	file, err := createPageFile(filepath.Join(db.dir, seqFileName(m.fileID)), db.cfg.PageSize, db.cfg.Hook)
	if err != nil {
		return err
	}
	s := &Seq{name: m.name, fileID: m.fileID, schema: m.schema, rpp: m.rpp, file: file, db: db}
	v, frames, err := packFrames(entries, m.span, m.kind, m.rpp, m.epoch, db.cfg.PageSize)
	if err != nil {
		file.close()
		os.Remove(file.path)
		return err
	}
	s.versions = []*dversion{v}
	for i, fr := range frames {
		if err := db.pool.put(s, v.table[i], fr, nil); err != nil {
			file.close()
			return err
		}
	}
	db.mu.Lock()
	db.seqs[m.name] = s
	db.byID[m.fileID] = s
	db.mu.Unlock()
	if m.fileID >= db.nextFile {
		db.nextFile = m.fileID + 1
	}
	db.bumpEpoch(m.epoch)
	return nil
}

// applyDrop unregisters a sequence and parks its file for removal at the
// next checkpoint (recovery may still need it until then).
func (db *DB) applyDrop(s *Seq) {
	db.mu.Lock()
	delete(db.seqs, s.name)
	delete(db.byID, s.fileID)
	db.mu.Unlock()
	s.dropAllPages()
	db.dropped = append(db.dropped, s.file)
	db.dropViewsReadingLocked(s.name)
}

// dropViewsReadingLocked removes persisted views that read base — the
// persistence mirror of matview invalidation. Called under wmu (or
// during single-threaded replay).
func (db *DB) dropViewsReadingLocked(base string) {
	db.mu.Lock()
	for name, v := range db.views {
		for _, b := range v.Bases {
			if b == base {
				delete(db.views, name)
				break
			}
		}
	}
	db.mu.Unlock()
}

// ── mutations ───────────────────────────────────────────────────────

func (db *DB) writableLocked() error {
	if db.closed {
		return fmt.Errorf("disk: database is closed")
	}
	if db.failed.Load() {
		return fmt.Errorf("disk: database failed after an I/O error; reopen to recover")
	}
	return nil
}

// fail marks the DB failed after a durability-relevant I/O error.
func (db *DB) fail(err error) error {
	db.failed.Store(true)
	return err
}

// logGroup appends a begin/bulk/commit record group and syncs it.
func (db *DB) logGroup(payloads ...[]byte) error {
	for i, p := range payloads {
		syncNow := i == len(payloads)-1
		if err := db.w.append(p, syncNow); err != nil {
			return db.fail(err)
		}
	}
	return nil
}

// CreateSequenceAt creates a sequence from materialized data, published
// at the given epoch (which may equal the current epoch: creates are
// visible immediately, like the server's memory-backed path). The bulk
// load is WAL-logged in bounded chunks and synced once.
func (db *DB) CreateSequenceAt(name string, data *seq.Materialized, kind storage.Kind, epoch int64) error {
	if data == nil {
		return fmt.Errorf("disk: nil data")
	}
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := db.writableLocked(); err != nil {
		return err
	}
	db.mu.RLock()
	_, exists := db.seqs[name]
	db.mu.RUnlock()
	if exists {
		return fmt.Errorf("disk: sequence %q already exists", name)
	}
	if kind != storage.KindDense && kind != storage.KindSparse {
		return fmt.Errorf("disk: unknown kind %v", kind)
	}
	if epoch < 0 {
		return fmt.Errorf("disk: negative epoch %d", epoch)
	}
	m := createMeta{
		name: name, fileID: db.nextFile, kind: kind, rpp: db.cfg.RecordsPerPage,
		schema: data.Info().Schema, span: data.Info().Span, epoch: epoch,
	}
	entries := data.Entries()
	// Validate the pack — including every page's encoded size — before
	// logging anything: a too-large record must fail cleanly, not poison
	// the WAL.
	if _, _, err := packFrames(entries, m.span, kind, m.rpp, epoch, db.cfg.PageSize); err != nil {
		return err
	}
	db.nextFile++
	group := [][]byte{encCreate(m)}
	for i := 0; i < len(entries); i += walBulkChunk {
		hi := i + walBulkChunk
		if hi > len(entries) {
			hi = len(entries)
		}
		group = append(group, encBulk(walBulk, m.fileID, "", entries[i:hi]))
	}
	group = append(group, encCommitSeq(m.fileID))
	if err := db.logGroup(group...); err != nil {
		return err
	}
	if err := db.applyCreate(m, entries); err != nil {
		return db.fail(err)
	}
	return nil
}

// CreateSequence creates a sequence published at the current epoch.
func (db *DB) CreateSequence(name string, data *seq.Materialized, kind storage.Kind) error {
	return db.CreateSequenceAt(name, data, kind, db.Epoch())
}

// AppendAt appends one entry, visible from the given epoch, following
// write-ahead discipline: the record is durable (or queued for the
// group-commit fsync) before the in-memory version publishes.
func (db *DB) AppendAt(name string, e seq.Entry, epoch int64) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	return db.appendAtLocked(name, e, epoch)
}

func (db *DB) appendAtLocked(name string, e seq.Entry, epoch int64) error {
	if err := db.writableLocked(); err != nil {
		return err
	}
	db.mu.RLock()
	s, ok := db.seqs[name]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("disk: unknown sequence %q", name)
	}
	p, err := s.prepareAppend(e, epoch)
	if err != nil {
		return err
	}
	if err := db.w.append(encAppend(s.fileID, epoch, e), !db.cfg.BatchFsync); err != nil {
		return db.fail(err)
	}
	if err := s.commitAppend(p); err != nil {
		return db.fail(err)
	}
	db.dropViewsReadingLocked(name)
	db.bumpEpoch(epoch)
	return nil
}

// Append appends at the next epoch — allocated under the writer lock,
// so concurrent appenders never share or spuriously skip an epoch — and
// returns it.
func (db *DB) Append(name string, e seq.Entry) (int64, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	epoch := db.Epoch() + 1
	if err := db.appendAtLocked(name, e, epoch); err != nil {
		return 0, err
	}
	return epoch, nil
}

// ReorganizeAt repacks a sequence into the given kind, visible from the
// given epoch.
func (db *DB) ReorganizeAt(name string, kind storage.Kind, epoch int64) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	return db.reorganizeAtLocked(name, kind, epoch)
}

func (db *DB) reorganizeAtLocked(name string, kind storage.Kind, epoch int64) error {
	if err := db.writableLocked(); err != nil {
		return err
	}
	db.mu.RLock()
	s, ok := db.seqs[name]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("disk: unknown sequence %q", name)
	}
	if kind != storage.KindDense && kind != storage.KindSparse {
		return fmt.Errorf("disk: unknown kind %v", kind)
	}
	// Prepare (collect, repack, size-check) before logging: an
	// unencodable repack must fail the call, not poison the WAL.
	v, frames, err := s.prepareReorganize(kind, epoch)
	if err != nil {
		return err
	}
	if err := db.w.append(encReorg(s.fileID, epoch, kind), true); err != nil {
		return db.fail(err)
	}
	if err := s.install(v, frames); err != nil {
		return db.fail(err)
	}
	db.bumpEpoch(epoch)
	return nil
}

// Reorganize repacks at the next epoch (allocated under the writer
// lock) and returns it.
func (db *DB) Reorganize(name string, kind storage.Kind) (int64, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	epoch := db.Epoch() + 1
	if err := db.reorganizeAtLocked(name, kind, epoch); err != nil {
		return 0, err
	}
	return epoch, nil
}

// DropSequenceAt removes a sequence (and the persisted views reading
// it), advancing to the given epoch.
func (db *DB) DropSequenceAt(name string, epoch int64) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	return db.dropSequenceAtLocked(name, epoch)
}

func (db *DB) dropSequenceAtLocked(name string, epoch int64) error {
	if err := db.writableLocked(); err != nil {
		return err
	}
	db.mu.RLock()
	s, ok := db.seqs[name]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("disk: unknown sequence %q", name)
	}
	if err := db.w.append(encDrop(s.fileID, epoch), true); err != nil {
		return db.fail(err)
	}
	db.applyDrop(s)
	db.bumpEpoch(epoch)
	return nil
}

// DropSequence removes a sequence at the next epoch (allocated under
// the writer lock).
func (db *DB) DropSequence(name string) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	return db.dropSequenceAtLocked(name, db.Epoch()+1)
}

// PutViewAt persists a materialized view (overwriting any previous view
// of the same name). The view must be valid at its Epoch: the server and
// library register it in their matview registries at the same epoch.
func (db *DB) PutViewAt(v *View) error {
	if v == nil || v.Name == "" {
		return fmt.Errorf("disk: nil or unnamed view")
	}
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := db.writableLocked(); err != nil {
		return err
	}
	group := [][]byte{encPutView(v)}
	for i := 0; i < len(v.Entries); i += walBulkChunk {
		hi := i + walBulkChunk
		if hi > len(v.Entries) {
			hi = len(v.Entries)
		}
		group = append(group, encBulk(walViewBulk, 0, v.Name, v.Entries[i:hi]))
	}
	group = append(group, encCommitView(v.Name))
	if err := db.logGroup(group...); err != nil {
		return err
	}
	db.mu.Lock()
	db.views[v.Name] = v
	db.mu.Unlock()
	db.bumpEpoch(v.Epoch)
	return nil
}

// DropViewAt removes a persisted view.
func (db *DB) DropViewAt(name string, epoch int64) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := db.writableLocked(); err != nil {
		return err
	}
	db.mu.RLock()
	_, ok := db.views[name]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("disk: unknown view %q", name)
	}
	if err := db.w.append(encDropView(name, epoch), true); err != nil {
		return db.fail(err)
	}
	db.mu.Lock()
	delete(db.views, name)
	db.mu.Unlock()
	db.bumpEpoch(epoch)
	return nil
}

// GC drops versions superseded at or before minLive on every sequence
// and frees unreachable page versions' disk slots (quarantined until the
// next checkpoint). It returns versions dropped and page slots freed.
func (db *DB) GC(minLive int64) (versions, pages int) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	db.mu.RLock()
	seqs := make([]*Seq, 0, len(db.seqs))
	for _, s := range db.seqs {
		seqs = append(seqs, s)
	}
	db.mu.RUnlock()
	for _, s := range seqs {
		v, p := s.gcLocked(minLive)
		versions += v
		pages += p
	}
	return versions, pages
}

// ── checkpoint ──────────────────────────────────────────────────────

// cpSeq is the per-sequence state a checkpoint captures under wmu.
type cpSeq struct {
	s     *Seq
	v     *dversion
	toPro []int64 // quarantined slots to promote after the catalog lands
}

// deferredForget is a pool forget that a drop or GC deferred because the
// ref was captured by the in-flight checkpoint. free says whether the
// ref's disk slot should be quarantined for reuse afterwards (GC on a
// live sequence) or left alone (the whole file is parked for removal).
type deferredForget struct {
	file *pageFile
	ref  *pageRef
	free bool
}

// finishCheckpoint unpins the captured refs and processes the forgets
// drop/GC deferred while the checkpoint was in flight. It runs whether
// the checkpoint succeeded or failed: freed slots only become
// allocatable through the quarantine → promote hand-off, which is gated
// on a new durable catalog, so freeing here is safe in both cases.
func (db *DB) finishCheckpoint() {
	db.wmu.Lock()
	db.cpPins = nil
	deferred := db.cpDeferred
	db.cpDeferred = nil
	db.wmu.Unlock()
	for _, d := range deferred {
		if phys := db.pool.forget(d.ref); phys >= 0 && d.free {
			d.file.freeSlot(phys)
		}
	}
}

// Checkpoint rotates the WAL, flushes every dirty page of the latest
// versions, fsyncs the page files, and atomically publishes a new
// catalog pointing past the old segments — which are then deleted, along
// with the files of dropped sequences. Concurrent readers and writers
// proceed; only the brief capture section holds the writer lock.
func (db *DB) Checkpoint() error {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.failed.Load() {
		return fmt.Errorf("disk: database failed; not checkpointing")
	}

	// Capture, under the writer lock: rotate to a fresh segment and
	// snapshot the latest version of everything. Every write before the
	// rotation is in the old segments AND in the captured tables; every
	// write after is in the new segment and will be replayed on top.
	db.wmu.Lock()
	newSeg := db.walSeq + 1
	if err := db.w.rotate(newSeg); err != nil {
		db.wmu.Unlock()
		return db.fail(err)
	}
	db.walSeq = newSeg
	epoch := db.epoch.Load()
	nextFile := db.nextFile
	db.mu.RLock()
	caps := make([]cpSeq, 0, len(db.seqs))
	for _, s := range db.seqs {
		s.mu.RLock()
		v := s.latest()
		s.mu.RUnlock()
		caps = append(caps, cpSeq{s: s, v: v, toPro: s.file.takePending()})
	}
	views := make([]*View, 0, len(db.views))
	for _, v := range db.views {
		views = append(views, v)
	}
	db.mu.RUnlock()
	pins := make(map[*pageRef]bool)
	for _, c := range caps {
		for _, ref := range c.v.table {
			pins[ref] = true
		}
	}
	db.cpPins = pins
	dropped := db.dropped
	db.dropped = nil
	db.wmu.Unlock()
	defer db.finishCheckpoint()

	requeue := func() {
		for _, c := range caps {
			c.s.file.requeue(c.toPro)
		}
		db.wmu.Lock()
		db.dropped = append(db.dropped, dropped...)
		db.wmu.Unlock()
	}

	// Flush dirty frames and fsync the files, outside every lock but the
	// pool's own.
	for _, c := range caps {
		for _, ref := range c.v.table {
			if err := db.pool.flush(ref); err != nil {
				requeue()
				return db.fail(err)
			}
		}
		if err := c.s.file.sync(); err != nil {
			requeue()
			return db.fail(err)
		}
	}

	cat := &catalog{
		pageSize: db.cfg.PageSize,
		epoch:    epoch,
		walSeq:   newSeg,
		nextFile: nextFile,
		views:    views,
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].s.name < caps[j].s.name })
	for _, c := range caps {
		cs := catSeq{
			name: c.s.name, fileID: c.s.fileID, kind: c.v.kind, rpp: c.s.rpp,
			schema: c.s.schema, span: c.v.span, count: c.v.count, epoch: c.v.epoch,
		}
		for _, ref := range c.v.table {
			phys := ref.phys.Load()
			if phys < 0 {
				requeue()
				return db.fail(fmt.Errorf("disk: internal: unflushed page survived checkpoint flush"))
			}
			cs.table = append(cs.table, catRef{phys: phys, epoch: ref.epoch, first: ref.first, n: ref.n})
		}
		cat.seqs = append(cat.seqs, cs)
	}
	if err := writeCatalog(db.dir, cat, db.cfg.Hook); err != nil {
		requeue()
		return db.fail(err)
	}

	// The catalog landed: promote quarantined slots, delete obsolete
	// segments, remove dropped sequences' files.
	for _, c := range caps {
		c.s.file.promote(c.toPro)
	}
	if segs, err := listWALSegments(db.dir); err == nil {
		for _, n := range segs {
			if n < newSeg {
				os.Remove(filepath.Join(db.dir, walName(n)))
			}
		}
	}
	for _, f := range dropped {
		f.close()
		os.Remove(f.path)
	}
	return nil
}
