package disk

import (
	"fmt"
	"hash/crc32"

	"repro/internal/seq"
	"repro/internal/storage"
)

// On-disk constants. The page-file header occupies the first pageSize
// bytes of every .spf file; data page p lives at offset (1+p)*pageSize.
const (
	// pageFileMagic opens every page file. The trailing digit is the
	// format generation; bump formatVersion (not the magic) for
	// compatible evolution.
	pageFileMagic = "SEQPF1\x00\x00"
	// formatVersion is the page-file format version this build writes
	// and the only one it accepts.
	formatVersion = 1

	// DefaultPageSize is the page size used when Config leaves it zero:
	// 8 KiB, matching the DefaultRecordsPerPage ≈ 100-byte-record
	// assumption documented in the storage package.
	DefaultPageSize = 8 << 10

	// minPageSize bounds configuration errors; a page must at least hold
	// its own header and one small record.
	minPageSize = 512

	// pageHeaderLen is the per-data-page prefix: u32 CRC32-C over the
	// payload, u32 payload length.
	pageHeaderLen = 8
)

// crcTable is the CRC32-C (Castagnoli) table used for every checksum in
// the format: data pages, WAL records, and the catalog.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame is one decoded page resident in the buffer pool: the in-memory
// image of a pageRef. Sparse pages hold sorted entries; dense pages hold
// positional slots (nil = Null record). Frames are immutable once
// published — a write that would touch a page produces a new ref and a
// new frame (copy-on-write), so readers never observe mutation.
type frame struct {
	kind    storage.Kind
	epoch   int64   // epoch of the write that created this page version
	first   seq.Pos // position of entries[0] / slots[0]
	entries []seq.Entry
	slots   []seq.Record
}

// records returns the number of non-Null records in the frame.
func (f *frame) records() int {
	if f.entries != nil {
		return len(f.entries)
	}
	n := 0
	for _, r := range f.slots {
		if r != nil {
			n++
		}
	}
	return n
}

// encodePageInto serializes a frame's header-prefixed encoding into w
// (whose buf must start with pageHeaderLen reserved bytes) and fails
// when the result exceeds pageSize — the record-too-large-for-page-size
// configuration error write paths must surface before WAL-logging.
func encodePageInto(w *writer, f *frame, pageSize int) error {
	w.byte(byte(f.kind))
	w.varint(f.epoch)
	switch f.kind {
	case storage.KindSparse:
		w.entries(f.entries)
	case storage.KindDense:
		w.varint(f.first)
		w.uvarint(uint64(len(f.slots)))
		for _, r := range f.slots {
			w.record(r)
		}
	default:
		return fmt.Errorf("disk: unknown page kind %v", f.kind)
	}
	if len(w.buf) > pageSize {
		return fmt.Errorf("disk: encoded page of %d bytes exceeds page size %d (raise PageSize or shrink records)",
			len(w.buf), pageSize)
	}
	return nil
}

// checkPageFits verifies that a frame encodes within pageSize, without
// materializing the padded page image. Write paths call it before
// logging to the WAL: an unencodable frame must fail the operation, not
// poison every later writeback and checkpoint.
func checkPageFits(f *frame, pageSize int) error {
	w := &writer{buf: make([]byte, pageHeaderLen, pageSize)}
	return encodePageInto(w, f, pageSize)
}

// encodePage serializes a frame into a page image of exactly pageSize
// bytes: [u32 CRC][u32 len][payload][zero padding].
func encodePage(f *frame, pageSize int) ([]byte, error) {
	w := &writer{buf: make([]byte, pageHeaderLen, pageSize)}
	if err := encodePageInto(w, f, pageSize); err != nil {
		return nil, err
	}
	payload := w.buf[pageHeaderLen:]
	putU32(w.buf[0:4], crc32.Checksum(payload, crcTable))
	putU32(w.buf[4:8], uint32(len(payload)))
	page := make([]byte, pageSize)
	copy(page, w.buf)
	return page, nil
}

// decodePage parses and verifies one page image. A CRC or structure
// failure returns an error — the caller treats it as page corruption.
func decodePage(page []byte) (*frame, error) {
	if len(page) < pageHeaderLen {
		return nil, fmt.Errorf("disk: short page of %d bytes", len(page))
	}
	want := getU32(page[0:4])
	n := getU32(page[4:8])
	if int(n) > len(page)-pageHeaderLen {
		return nil, fmt.Errorf("disk: page payload length %d exceeds page", n)
	}
	payload := page[pageHeaderLen : pageHeaderLen+int(n)]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("disk: page CRC mismatch (want %08x, got %08x)", want, got)
	}
	r := &reader{buf: payload}
	f := &frame{kind: storage.Kind(r.byte())}
	f.epoch = r.varint()
	switch f.kind {
	case storage.KindSparse:
		f.entries = r.entriesRun(1 << 24)
		if len(f.entries) > 0 {
			f.first = f.entries[0].Pos
		}
	case storage.KindDense:
		f.first = r.varint()
		nslots := r.count("slot", 1<<24)
		f.slots = make([]seq.Record, nslots)
		for i := range f.slots {
			f.slots[i] = r.record()
		}
	default:
		return nil, fmt.Errorf("disk: unknown page kind %d", uint8(f.kind))
	}
	if r.err != nil {
		return nil, fmt.Errorf("disk: corrupt page: %w", r.err)
	}
	return f, nil
}

// encodeFileHeader builds the header page of a page file.
func encodeFileHeader(pageSize int) []byte {
	page := make([]byte, pageSize)
	copy(page, pageFileMagic)
	putU32(page[8:12], formatVersion)
	putU32(page[12:16], uint32(pageSize))
	putU32(page[16:20], crc32.Checksum(page[:16], crcTable))
	return page
}

// checkFileHeader validates a page-file header against the expected
// page size.
func checkFileHeader(page []byte, pageSize int) error {
	if len(page) < 20 {
		return fmt.Errorf("disk: short page-file header")
	}
	if string(page[:8]) != pageFileMagic {
		return fmt.Errorf("disk: bad page-file magic")
	}
	if got := crc32.Checksum(page[:16], crcTable); got != getU32(page[16:20]) {
		return fmt.Errorf("disk: page-file header CRC mismatch")
	}
	if v := getU32(page[8:12]); v != formatVersion {
		return fmt.Errorf("disk: page-file format version %d (this build reads %d)", v, formatVersion)
	}
	if ps := getU32(page[12:16]); int(ps) != pageSize {
		return fmt.Errorf("disk: page-file page size %d does not match catalog page size %d", ps, pageSize)
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
