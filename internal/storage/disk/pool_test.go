package disk

import (
	"testing"

	"repro/internal/seq"
	"repro/internal/storage"
)

// TestPoolColdWarmMetering drives the cold→warm transition the cost
// model cares about: a cold scan misses once per page, a warm scan over
// a pool large enough to hold the sequence hits every page, and both
// flows reach the consumer's storage.Stats.
func TestPoolColdWarmMetering(t *testing.T) {
	cfg := testConfig()
	cfg.PoolPages = 64
	db := openTest(t, t.TempDir(), cfg)
	defer db.Close()
	schema := testSchema(t)
	if err := db.CreateSequence("a", testData(t, schema, 100), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.DropCaches()
	if n := db.PoolResident(); n != 0 {
		t.Fatalf("%d frames resident after checkpoint+drop", n)
	}

	s := mustSeq(t, db, "a")
	pages := int64(len(s.Latest().v.table))
	cold := s.Latest()
	if got := len(collect(t, cold, seq.AllSpan)); got != 100 {
		t.Fatalf("cold scan returned %d records", got)
	}
	cs := cold.Stats().Snapshot()
	if cs.PoolMisses != pages || cs.PoolHits != 0 {
		t.Fatalf("cold scan: misses=%d hits=%d, want %d/0", cs.PoolMisses, cs.PoolHits, pages)
	}
	warm := s.Latest()
	_ = collect(t, warm, seq.AllSpan)
	ws := warm.Stats().Snapshot()
	if ws.PoolHits != pages || ws.PoolMisses != 0 {
		t.Fatalf("warm scan: hits=%d misses=%d, want %d/0", ws.PoolHits, ws.PoolMisses, pages)
	}
	// The page-touch model is identical either way — only pool traffic
	// tells the tiers apart.
	if cs.SeqPages != ws.SeqPages || cs.SeqRecords != ws.SeqRecords {
		t.Fatalf("page-touch accounting differs cold vs warm: %+v vs %+v", cs, ws)
	}
}

// TestPoolEvictionCycling scans a sequence much larger than the pool:
// every pass must evict to make room, and the counters must say so.
func TestPoolEvictionCycling(t *testing.T) {
	cfg := testConfig()
	cfg.PoolPages = 8
	db := openTest(t, t.TempDir(), cfg)
	defer db.Close()
	schema := testSchema(t)
	if err := db.CreateSequence("a", testData(t, schema, 200), storage.KindDense); err != nil {
		t.Fatal(err)
	}
	// Creating 50 pages through an 8-frame pool already forced dirty
	// writebacks; the sequence must read back intact regardless.
	pc := db.Pool()
	if pc.DirtyWrites == 0 || pc.Evictions == 0 {
		t.Fatalf("create through a tiny pool: %+v", pc)
	}
	snap := mustSeq(t, db, "a").Latest()
	if got := len(collect(t, snap, seq.AllSpan)); got != 200 {
		t.Fatalf("scan through tiny pool returned %d records", got)
	}
	st := snap.Stats().Snapshot()
	if st.PoolEvictions == 0 {
		t.Fatalf("scan larger than the pool evicted nothing: %+v", st)
	}
	if db.PoolResident() > 8 {
		t.Fatalf("pool over capacity: %d frames", db.PoolResident())
	}
}

// TestDropCachesKeepsDirty: dirty frames are pinned — dropping caches
// must not lose unflushed pages.
func TestDropCachesKeepsDirty(t *testing.T) {
	db := openTest(t, t.TempDir(), testConfig())
	defer db.Close()
	schema := testSchema(t)
	if err := db.CreateSequence("a", testData(t, schema, 40), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	before := db.PoolResident()
	db.DropCaches() // everything is dirty: nothing may leave
	if got := db.PoolResident(); got != before {
		t.Fatalf("DropCaches removed dirty frames: %d -> %d", before, got)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.DropCaches()
	if got := db.PoolResident(); got != 0 {
		t.Fatalf("%d frames resident after checkpoint + DropCaches", got)
	}
	if got := len(collect(t, mustSeq(t, db, "a").Latest(), seq.AllSpan)); got != 40 {
		t.Fatalf("scan after drop returned %d records", got)
	}
}

// TestSnapshotForkAttribution: forked snapshots charge their own stats
// blocks, pool traffic included — the parallel executor's contract.
func TestSnapshotForkAttribution(t *testing.T) {
	db := openTest(t, t.TempDir(), testConfig())
	defer db.Close()
	schema := testSchema(t)
	if err := db.CreateSequence("a", testData(t, schema, 40), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.DropCaches()
	snap := mustSeq(t, db, "a").Latest()
	var st storage.Stats
	fork := snap.Fork(&st).(seq.Sequence)
	_ = collect(t, fork, seq.AllSpan)
	if s := st.Snapshot(); s.PoolMisses == 0 || s.SeqRecords != 40 {
		t.Fatalf("fork stats not credited: %+v", s)
	}
	if s := snap.Stats().Snapshot(); s.SeqRecords != 0 {
		t.Fatalf("parent stats credited by fork: %+v", s)
	}
}
