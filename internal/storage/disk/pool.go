package disk

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// pageRef is the durable identity of one immutable page version: the
// unit the buffer pool caches and the version tables point at. A ref is
// born dirty (phys −1, its frame pinned in the pool) and acquires a
// physical slot when written back — by eviction pressure or by a
// checkpoint. Page content is immutable after publication, so a ref is
// written at most once and never re-dirtied; the only mutable field is
// the slot assignment.
type pageRef struct {
	phys  atomic.Int64 // physical slot in the owning file; −1 until written back
	epoch int64        // epoch of the write that created this page version
	first int64        // position of the first entry/slot (seq.Pos)
	n     int          // entries (sparse) or slots (dense) on the page
}

func newRef(epoch int64, first int64, n int) *pageRef {
	r := &pageRef{epoch: epoch, first: first, n: n}
	r.phys.Store(-1)
	return r
}

// poolSlot is one CLOCK ring entry.
type poolSlot struct {
	ref   *pageRef
	sq    *Seq
	fr    *frame
	used  bool // CLOCK reference bit
	dirty bool
}

// PoolCounters are the pool's aggregate traffic counters, for operator
// visibility; per-consumer attribution flows through storage.Stats.
type PoolCounters struct {
	Hits, Misses, Evictions, DirtyWrites int64
}

// pool is the CLOCK buffer pool, shared by every sequence of one DB.
// Frame residency, eviction, and phys assignment happen under mu; a
// miss's page read runs outside it (the index is re-checked on
// reacquire), so cold reads from concurrent sessions proceed in
// parallel. Consumers receive immutable frames they may keep using
// after eviction (a Go reference keeps the memory alive), so cursors
// never pin frames.
//
// Dirty frames are pinned by construction: eviction of a dirty slot
// first writes the frame back (assigning the ref's physical slot, no
// fsync — the WAL re-creates the page on crash), so a ref with phys −1
// is always resident. Lookups charge the consumer's storage.Stats block
// — hits, misses, and any evictions and writebacks the lookup forced —
// which is how real I/O reaches EXPLAIN ANALYZE attribution.
//
//seqvet:lockorder disk.pool.mu < disk.pageFile.mu
type pool struct {
	mu       sync.Mutex
	capacity int
	slots    []*poolSlot // CLOCK ring (order approximate: swap-removal)
	index    map[*pageRef]*poolSlot
	hand     int

	hits, misses, evictions, writebacks atomic.Int64
}

func newPool(capacity int) *pool {
	if capacity < 8 {
		capacity = 8
	}
	return &pool{capacity: capacity, index: make(map[*pageRef]*poolSlot)}
}

// get returns the frame for ref, reading it from the sequence's page
// file on a miss. The consumer's stats are credited with the hit or
// miss and with any eviction work the miss forced. The read I/O happens
// outside the pool lock so concurrent sessions' cold reads are not
// serialized behind one mutex; concurrent misses on the same ref may
// each read the page, and the first to reinsert wins.
func (p *pool) get(sq *Seq, ref *pageRef, st *storage.Stats) (*frame, error) {
	p.mu.Lock()
	if s, ok := p.index[ref]; ok {
		s.used = true
		p.hits.Add(1)
		p.mu.Unlock()
		if st != nil {
			st.PoolHits.Add(1)
		}
		return s.fr, nil
	}
	phys := ref.phys.Load()
	if phys < 0 {
		p.mu.Unlock()
		return nil, fmt.Errorf("disk: internal: dirty page version not resident in pool")
	}
	p.misses.Add(1)
	p.mu.Unlock()
	if st != nil {
		st.PoolMisses.Add(1)
	}
	fr, err := sq.file.readPage(phys)
	if err != nil {
		return nil, err
	}
	if fr.epoch != ref.epoch || fr.first != ref.first {
		return nil, fmt.Errorf("disk: %s: page %d does not match its reference (epoch %d/%d, first %d/%d)",
			sq.file.path, phys, fr.epoch, ref.epoch, fr.first, ref.first)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.index[ref]; ok {
		// Another reader inserted the page while we read it.
		s.used = true
		return s.fr, nil
	}
	if err := p.insertLocked(&poolSlot{ref: ref, sq: sq, fr: fr, used: true}, st); err != nil {
		return nil, err
	}
	return fr, nil
}

// put inserts a freshly created dirty frame (append, create, replay).
func (p *pool) put(sq *Seq, ref *pageRef, fr *frame, st *storage.Stats) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.index[ref]; ok {
		return fmt.Errorf("disk: internal: page version inserted twice")
	}
	return p.insertLocked(&poolSlot{ref: ref, sq: sq, fr: fr, used: true, dirty: true}, st)
}

// insertLocked makes room (CLOCK eviction) and inserts the slot.
func (p *pool) insertLocked(s *poolSlot, st *storage.Stats) error {
	for len(p.slots) >= p.capacity {
		if err := p.evictOneLocked(st); err != nil {
			return err
		}
	}
	p.index[s.ref] = s
	p.slots = append(p.slots, s)
	return nil
}

// evictOneLocked runs the CLOCK hand: clear reference bits until an
// unreferenced slot is found, write it back if dirty, and drop it.
func (p *pool) evictOneLocked(st *storage.Stats) error {
	for {
		if p.hand >= len(p.slots) {
			p.hand = 0
		}
		s := p.slots[p.hand]
		if s.used {
			s.used = false
			p.hand++
			continue
		}
		if s.dirty {
			if err := p.writeBackLocked(s, st); err != nil {
				return err
			}
		}
		p.evictions.Add(1)
		if st != nil {
			st.PoolEvictions.Add(1)
		}
		delete(p.index, s.ref)
		last := len(p.slots) - 1
		p.slots[p.hand] = p.slots[last]
		p.slots[last] = nil
		p.slots = p.slots[:last]
		return nil
	}
}

// writeBackLocked persists a dirty frame, assigning its ref's physical
// slot. No fsync: the page becomes durable at the next checkpoint; until
// then the WAL regenerates it on recovery.
func (p *pool) writeBackLocked(s *poolSlot, st *storage.Stats) error {
	phys, err := s.sq.file.writeFrame(s.fr)
	if err != nil {
		return err
	}
	s.ref.phys.Store(phys)
	s.dirty = false
	p.writebacks.Add(1)
	if st != nil {
		st.DirtyWrites.Add(1)
	}
	return nil
}

// flush writes back the dirty frame of ref, if any, keeping it resident
// and clean — the checkpoint's per-page step.
func (p *pool) flush(ref *pageRef) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.index[ref]
	if !ok {
		if ref.phys.Load() < 0 {
			return fmt.Errorf("disk: internal: dirty page version not resident at flush")
		}
		return nil
	}
	if !s.dirty {
		return nil
	}
	return p.writeBackLocked(s, nil)
}

// forget drops ref's frame without writing it back and returns the
// ref's physical slot (−1 if it never reached disk). After forget
// returns, no future writeback can assign a slot — residency and
// writebacks are serialized under mu — so the caller may free the
// returned slot.
func (p *pool) forget(ref *pageRef) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.index[ref]; ok {
		delete(p.index, ref)
		for i, r := range p.slots {
			if r == s {
				last := len(p.slots) - 1
				p.slots[i] = p.slots[last]
				p.slots[last] = nil
				p.slots = p.slots[:last]
				break
			}
		}
	}
	return ref.phys.Load()
}

// dropClean evicts every clean frame — the cold-cache lever benchmarks
// use. Dirty frames stay (dropping them would lose writes); run a
// checkpoint first for a fully cold pool.
func (p *pool) dropClean() {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.slots[:0]
	for _, s := range p.slots {
		if s.dirty {
			kept = append(kept, s)
		} else {
			delete(p.index, s.ref)
		}
	}
	for i := len(kept); i < len(p.slots); i++ {
		p.slots[i] = nil
	}
	p.slots = kept
	p.hand = 0
}

// counters snapshots the aggregate traffic.
func (p *pool) counters() PoolCounters {
	return PoolCounters{
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Evictions:   p.evictions.Load(),
		DirtyWrites: p.writebacks.Load(),
	}
}

// resident returns the number of resident frames.
func (p *pool) resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.slots)
}
