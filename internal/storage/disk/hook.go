package disk

import "fmt"

// Hook is the failure-injection point the recovery fuzz harness uses to
// model crashes: when non-nil, it is consulted immediately before every
// durability-relevant I/O operation. Returning a non-nil error aborts
// the operation (the write or fsync does not happen) and fails the
// caller. A failure on or after an operation's WAL record transitions
// the database to a failed state in which every subsequent mutation
// errors, exactly as a process that lost its disk would; a failure in an
// operation's prepare stage (before anything was logged — e.g. an
// eviction writeback forced by a pre-validation read) only rejects that
// operation and the database stays healthy. Production opens leave the
// hook nil, which compiles to a single nil check per I/O.
//
// The op names are:
//
//	wal.write   – flushing buffered WAL records to the segment file
//	wal.sync    – fsyncing the WAL segment
//	page.write  – writing one data page to a page file
//	page.sync   – fsyncing a page file
//	cat.write   – writing the catalog temp file
//	cat.rename  – renaming the catalog temp file over catalog.bin
type Hook func(op string) error

// PartialWriteError is a special Hook return for the "wal.write" op: the
// flush writes only the first N bytes of the pending buffer before
// failing, leaving a torn record tail on disk for recovery's CRC check
// to find.
type PartialWriteError struct {
	N int
}

func (e *PartialWriteError) Error() string {
	return fmt.Sprintf("disk: injected partial write of %d bytes", e.N)
}
