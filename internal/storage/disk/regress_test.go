package disk

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/seq"
	"repro/internal/storage"
)

// A drop replayed from the WAL leaves the dropped sequence's page file
// referenced by the on-disk catalog until a checkpoint publishes a new
// one. Recovery must not sweep that file: a second crash before the
// next checkpoint reopens from the same catalog, and loadSeq has to
// find it.
func TestRecoverReplayedDropKeepsCatalogFiles(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	db := openTest(t, dir, testConfig())
	if err := db.CreateSequence("a", testData(t, schema, 20), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("b", testData(t, schema, 20), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err) // the catalog now references both page files
	}
	if err := db.DropSequence("b"); err != nil {
		t.Fatal(err) // WAL-only: no checkpoint after the drop
	}
	kill(db)

	// First recovery replays the drop and must keep b's page file.
	db2 := openTest(t, dir, testConfig())
	if _, ok := db2.Seq("b"); ok {
		t.Fatal("dropped sequence resurrected by recovery")
	}
	kill(db2) // crash again before any checkpoint

	// Second recovery loads the same catalog, which still references b.
	db3, err := Open(dir, testConfig())
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	if _, ok := db3.Seq("b"); ok {
		t.Fatal("dropped sequence resurrected by second recovery")
	}
	s, ok := db3.Seq("a")
	if !ok {
		t.Fatal("surviving sequence missing after second recovery")
	}
	if got := collect(t, s.Latest(), seq.AllSpan); len(got) != 20 {
		t.Fatalf("surviving sequence has %d records, want 20", len(got))
	}
	// A clean close checkpoints, after which the dropped file is gone.
	if err := db3.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, seqFileName(1))); !os.IsNotExist(err) {
		t.Fatalf("dropped sequence's page file not removed after checkpoint: %v", err)
	}
}

// Dropping sequences while a checkpoint is mid-flush must not poison
// the DB: the checkpoint pinned the captured refs, so the drop defers
// forgetting them until the flush completes.
func TestCheckpointSurvivesConcurrentDrop(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	var armed atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := testConfig()
	cfg.Hook = func(op string) error {
		if op == "page.write" && armed.Load() {
			once.Do(func() {
				close(entered)
				<-release
			})
		}
		return nil
	}
	db, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("a", testData(t, schema, 20), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("b", testData(t, schema, 20), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	armed.Store(true)
	done := make(chan error, 1)
	go func() { done <- db.Checkpoint() }()
	<-entered // checkpoint captured both sequences, first dirty page mid-write
	if err := db.DropSequence("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropSequence("b"); err != nil {
		t.Fatal(err)
	}
	armed.Store(false)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("checkpoint failed under concurrent drops: %v", err)
	}
	if db.failed.Load() {
		t.Fatal("concurrent drops poisoned the DB")
	}
	// The DB stays writable and the drops stick across a clean reopen.
	if err := db.CreateSequence("c", testData(t, schema, 5), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openTest(t, dir, testConfig())
	defer db2.Close()
	if names := db2.Names(); len(names) != 1 || names[0] != "c" {
		t.Fatalf("reopened names = %v, want [c]", names)
	}
}

// GC of a version captured by an in-flight checkpoint must defer the
// forget: the captured dirty pages have to stay resident until the
// checkpoint flushes them.
func TestGCDefersCheckpointCapturedRefs(t *testing.T) {
	db := openTest(t, t.TempDir(), testConfig())
	defer db.Close()
	schema := testSchema(t)
	// 6 entries at rpp 4: a full page and a half-full tail the next
	// append extends, making the old tail ref unique to the old version.
	if err := db.CreateSequence("a", testData(t, schema, 6), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Seq("a")
	s.mu.RLock()
	captured := s.latest()
	s.mu.RUnlock()
	// Pin the latest version's refs exactly as Checkpoint's capture does.
	pins := make(map[*pageRef]bool)
	for _, ref := range captured.table {
		pins[ref] = true
	}
	db.wmu.Lock()
	db.cpPins = pins
	db.wmu.Unlock()

	if _, err := db.Append("a", seq.Entry{Pos: 100, Rec: seq.Record{seq.Int(100)}}); err != nil {
		t.Fatal(err)
	}
	db.GC(db.Epoch()) // supersedes the captured version; its tail ref is unique

	// Every captured ref must still be flushable — the review's failure
	// mode was "dirty page version not resident at flush" here.
	for _, ref := range captured.table {
		if err := db.pool.flush(ref); err != nil {
			t.Fatalf("captured ref forgotten during GC: %v", err)
		}
	}
	db.finishCheckpoint()
	db.wmu.Lock()
	deferred := len(db.cpDeferred)
	db.wmu.Unlock()
	if deferred != 0 {
		t.Fatalf("%d deferred forgets left after finishCheckpoint", deferred)
	}
}

// Records too large for the page size must be rejected before their WAL
// record is written: once logged, every checkpoint (and every recovery)
// would recreate the unencodable frame and the DB could never truncate
// its WAL again.
func TestOversizedRecordRejectedBeforeLogging(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, testConfig()) // 512-byte pages
	schema, err := seq.NewSchema(seq.Field{Name: "s", Type: seq.TString})
	if err != nil {
		t.Fatal(err)
	}
	big := seq.Record{seq.Str(strings.Repeat("x", 2048))}

	// Create with an oversized record fails cleanly.
	m, err := seq.NewMaterialized(schema, []seq.Entry{{Pos: 1, Rec: big}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("big", m, storage.KindSparse); err == nil {
		t.Fatal("create with an oversized record was accepted")
	}
	if db.failed.Load() {
		t.Fatal("oversized create poisoned the DB")
	}

	// Append of an oversized record to a healthy sequence fails cleanly.
	small, err := seq.NewMaterialized(schema, []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Str("one")}},
		{Pos: 2, Rec: seq.Record{seq.Str("two")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("a", small, storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append("a", seq.Entry{Pos: 3, Rec: big}); err == nil {
		t.Fatal("oversized append was accepted")
	}
	if db.failed.Load() {
		t.Fatal("oversized append poisoned the DB")
	}

	// A reorganize that would overflow a page is rejected before logging:
	// dense pages holding one record each compact into sparse pages of
	// four records that no longer fit.
	wide := make([]seq.Entry, 0, 4)
	for i := 0; i < 4; i++ {
		wide = append(wide, seq.Entry{
			Pos: seq.Pos(1 + 4*i), Rec: seq.Record{seq.Str(strings.Repeat("y", 150))},
		})
	}
	mw, err := seq.NewMaterialized(schema, wide)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("wide", mw, storage.KindDense); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Reorganize("wide", storage.KindSparse); err == nil {
		t.Fatal("overflowing reorganize was accepted")
	}
	if db.failed.Load() {
		t.Fatal("overflowing reorganize poisoned the DB")
	}

	// The DB keeps working, checkpoints, and recovers cleanly.
	if _, err := db.Append("a", seq.Entry{Pos: 3, Rec: seq.Record{seq.Str("three")}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint failed after oversized rejections: %v", err)
	}
	kill(db)
	db2, err := Open(dir, testConfig())
	if err != nil {
		t.Fatalf("recovery failed after oversized rejections: %v", err)
	}
	defer db2.Close()
	s, ok := db2.Seq("a")
	if !ok {
		t.Fatal("sequence missing after reopen")
	}
	if got := collect(t, s.Latest(), seq.AllSpan); len(got) != 3 {
		t.Fatalf("reopened sequence has %d records, want 3", len(got))
	}
	if s, ok := db2.Seq("wide"); !ok || s.Kind() != storage.KindDense {
		t.Fatal("rejected reorganize leaked into durable state")
	}
}
