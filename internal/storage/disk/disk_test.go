package disk

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/seq"
	"repro/internal/storage"
)

// testConfig disables background goroutines and shrinks pages so tests
// exercise multi-page tables with little data.
func testConfig() Config {
	return Config{
		PageSize:           512,
		RecordsPerPage:     4,
		PoolPages:          64,
		CheckpointInterval: -1,
	}
}

func testSchema(t *testing.T) *seq.Schema {
	t.Helper()
	s, err := seq.NewSchema(seq.Field{Name: "v", Type: seq.TInt})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testData(t *testing.T, schema *seq.Schema, n int) *seq.Materialized {
	t.Helper()
	entries := make([]seq.Entry, n)
	for i := range entries {
		entries[i] = seq.Entry{Pos: seq.Pos(i + 1), Rec: seq.Record{seq.Int(int64(i + 1))}}
	}
	m, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func openTest(t *testing.T, dir string, cfg Config) *DB {
	t.Helper()
	db, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func collect(t *testing.T, s seq.Sequence, span seq.Span) []seq.Entry {
	t.Helper()
	es, err := seq.Collect(s.Scan(span))
	if err != nil {
		t.Fatal(err)
	}
	return es
}

func entriesEqual(a, b []seq.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || !a[i].Rec.Equal(b[i].Rec) {
			return false
		}
	}
	return true
}

// kill abandons a DB without checkpointing or flushing buffers — the
// closest a test gets to a crash without a child process. Unsynced WAL
// bytes are dropped, page files are closed as-is.
func kill(db *DB) {
	db.wmu.Lock()
	already := db.closed
	db.closed = true
	db.wmu.Unlock()
	if already {
		return
	}
	close(db.quit)
	db.wg.Wait()
	db.w.mu.Lock()
	db.w.f.Close()
	db.w.mu.Unlock()
	db.mu.Lock()
	for _, s := range db.seqs {
		s.file.close()
	}
	db.mu.Unlock()
	db.wmu.Lock()
	for _, f := range db.dropped {
		f.close()
	}
	db.dropped = nil
	db.wmu.Unlock()
}

func TestCreateScanProbe(t *testing.T) {
	for _, kind := range []storage.Kind{storage.KindSparse, storage.KindDense} {
		t.Run(kind.String(), func(t *testing.T) {
			db := openTest(t, t.TempDir(), testConfig())
			defer db.Close()
			schema := testSchema(t)
			data := testData(t, schema, 50)
			if err := db.CreateSequence("a", data, kind); err != nil {
				t.Fatal(err)
			}
			s, ok := db.Seq("a")
			if !ok {
				t.Fatal("sequence missing after create")
			}
			snap := s.Latest()
			if snap.Kind() != kind {
				t.Fatalf("kind = %v, want %v", snap.Kind(), kind)
			}
			got := collect(t, snap, seq.AllSpan)
			if !entriesEqual(got, data.Entries()) {
				t.Fatalf("scan returned %d entries, want %d matching", len(got), data.Count())
			}
			for _, pos := range []seq.Pos{1, 25, 50} {
				r, err := snap.Probe(pos)
				if err != nil {
					t.Fatal(err)
				}
				if !r.Equal(seq.Record{seq.Int(int64(pos))}) {
					t.Fatalf("probe(%d) = %v", pos, r)
				}
			}
			if r, err := snap.Probe(51); err != nil || !r.IsNull() {
				t.Fatalf("probe(51) = %v, %v; want Null", r, err)
			}
			st := snap.Stats().Snapshot()
			if st.SeqPages == 0 || st.SeqRecords != 50 {
				t.Fatalf("scan charged seqPages=%d seqRecords=%d", st.SeqPages, st.SeqRecords)
			}
			if st.PoolHits == 0 {
				t.Fatalf("page fetches did not reach the pool counters: %+v", st)
			}
		})
	}
}

func TestAppendSnapshotIsolation(t *testing.T) {
	db := openTest(t, t.TempDir(), testConfig())
	defer db.Close()
	schema := testSchema(t)
	if err := db.CreateSequence("a", testData(t, schema, 10), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Seq("a")
	pinned := s.SnapshotAt(db.Epoch())
	if pinned == nil {
		t.Fatal("no snapshot at current epoch")
	}
	for i := 0; i < 20; i++ {
		pos := seq.Pos(11 + i)
		if _, err := db.Append("a", seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(collect(t, pinned, seq.AllSpan)); got != 10 {
		t.Fatalf("pinned snapshot sees %d records after appends, want 10", got)
	}
	if got := len(collect(t, s.Latest(), seq.AllSpan)); got != 30 {
		t.Fatalf("latest sees %d records, want 30", got)
	}
	if s.Versions() != 21 {
		t.Fatalf("retained %d versions, want 21", s.Versions())
	}
	// Appends must reject stale epochs, dense targets, in-range positions.
	if err := db.AppendAt("a", seq.Entry{Pos: 100, Rec: seq.Record{seq.Int(1)}}, db.Epoch()); err == nil {
		t.Fatal("append at stale epoch succeeded")
	}
	if err := db.AppendAt("a", seq.Entry{Pos: 5, Rec: seq.Record{seq.Int(1)}}, db.Epoch()+1); err == nil {
		t.Fatal("append inside the valid range succeeded")
	}
}

func TestReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	db := openTest(t, dir, testConfig())
	if err := db.CreateSequence("a", testData(t, schema, 30), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		pos := seq.Pos(31 + i)
		if _, err := db.Append("a", seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}); err != nil {
			t.Fatal(err)
		}
	}
	epoch := db.Epoch()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = openTest(t, dir, testConfig())
	defer db.Close()
	if got := db.Epoch(); got != epoch {
		t.Fatalf("epoch after reopen = %d, want %d", got, epoch)
	}
	s, ok := db.Seq("a")
	if !ok {
		t.Fatal("sequence missing after reopen")
	}
	// A clean close checkpointed: the first scan must come from disk, not
	// a warm pool.
	st := s.Latest()
	got := collect(t, st, seq.AllSpan)
	if len(got) != 35 || got[34].Pos != 35 {
		t.Fatalf("reopen sees %d entries (last %v)", len(got), got[len(got)-1])
	}
	if ss := st.Stats().Snapshot(); ss.PoolMisses == 0 {
		t.Fatalf("first scan after reopen had no pool misses: %+v", ss)
	}
}

func TestRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	db := openTest(t, dir, testConfig())
	if err := db.CreateSequence("a", testData(t, schema, 10), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		pos := seq.Pos(11 + i)
		if _, err := db.Append("a", seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}); err != nil {
			t.Fatal(err)
		}
	}
	epoch := db.Epoch()
	kill(db) // no checkpoint: everything must come back from the WAL

	db = openTest(t, dir, testConfig())
	defer db.Close()
	if got := db.Epoch(); got != epoch {
		t.Fatalf("epoch after recovery = %d, want %d", got, epoch)
	}
	s, ok := db.Seq("a")
	if !ok {
		t.Fatal("sequence missing after WAL recovery")
	}
	got := collect(t, s.Latest(), seq.AllSpan)
	if len(got) != 17 || got[16].Pos != 17 {
		t.Fatalf("recovery sees %d entries", len(got))
	}
}

func TestTornTailDiscardedByCRC(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	db := openTest(t, dir, testConfig())
	if err := db.CreateSequence("a", testData(t, schema, 4), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pos := seq.Pos(5 + i)
		if _, err := db.Append("a", seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}); err != nil {
			t.Fatal(err)
		}
	}
	walSeg := db.w.seq
	kill(db)

	// Tear the last record: chop a few bytes off the segment, the shape a
	// crash mid-write leaves. Recovery must keep the first two appends and
	// discard the torn third without erroring.
	path := filepath.Join(dir, walName(walSeg))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	db = openTest(t, dir, testConfig())
	got := collect(t, mustSeq(t, db, "a").Latest(), seq.AllSpan)
	if len(got) != 6 || got[5].Pos != 6 {
		t.Fatalf("after torn tail: %d entries (want 6, through pos 6)", len(got))
	}
	kill(db)

	// Corrupt a payload byte of the last intact record instead: the CRC
	// must reject it even though the length frame is intact.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lastPayload int
	for off := 0; off+8 <= len(data); {
		n := int(getU32(data[off : off+4]))
		if n == 0 || off+8+n > len(data) {
			break
		}
		lastPayload = off + 8
		off += 8 + n
	}
	data[lastPayload] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db = openTest(t, dir, testConfig())
	defer db.Close()
	got = collect(t, mustSeq(t, db, "a").Latest(), seq.AllSpan)
	if len(got) != 5 || got[4].Pos != 5 {
		t.Fatalf("after CRC corruption: %d entries (want 5, through pos 5)", len(got))
	}
}

func mustSeq(t *testing.T, db *DB, name string) *Seq {
	t.Helper()
	s, ok := db.Seq(name)
	if !ok {
		t.Fatalf("sequence %q missing", name)
	}
	return s
}

func TestReorganizeSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	db := openTest(t, dir, testConfig())
	if err := db.CreateSequence("a", testData(t, schema, 20), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Reorganize("a", storage.KindDense); err != nil {
		t.Fatal(err)
	}
	kill(db)

	db = openTest(t, dir, testConfig())
	defer db.Close()
	s := mustSeq(t, db, "a")
	if s.Kind() != storage.KindDense {
		t.Fatalf("kind after recovery = %v, want dense", s.Kind())
	}
	if got := collect(t, s.Latest(), seq.AllSpan); len(got) != 20 {
		t.Fatalf("reorganized sequence has %d entries", len(got))
	}
}

func TestDropSequenceAndFileRemoval(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	db := openTest(t, dir, testConfig())
	if err := db.CreateSequence("a", testData(t, schema, 10), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("b", testData(t, schema, 10), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	fileA := filepath.Join(dir, seqFileName(mustSeq(t, db, "a").fileID))
	if err := db.DropSequence("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Seq("a"); ok {
		t.Fatal("dropped sequence still visible")
	}
	// The file lingers until a checkpoint proves recovery no longer needs
	// the drop's WAL record... after the checkpoint it must be gone.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(fileA); !os.IsNotExist(err) {
		t.Fatalf("dropped sequence's file still present after checkpoint: %v", err)
	}
	kill(db)
	db = openTest(t, dir, testConfig())
	defer db.Close()
	if _, ok := db.Seq("a"); ok {
		t.Fatal("dropped sequence resurrected by recovery")
	}
	if _, ok := db.Seq("b"); !ok {
		t.Fatal("surviving sequence lost")
	}
}

func TestViewsPersistAndInvalidate(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	db := openTest(t, dir, testConfig())
	if err := db.CreateSequence("a", testData(t, schema, 10), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	v := &View{
		Name: "va", SEQL: "select a", Span: seq.NewSpan(1, 10), Epoch: db.Epoch(),
		Bases:   []string{"a"},
		Entries: []seq.Entry{{Pos: 1, Rec: seq.Record{seq.Int(1)}}},
	}
	if err := db.PutViewAt(v); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = openTest(t, dir, testConfig())
	views := db.Views()
	if len(views) != 1 || views[0].Name != "va" || views[0].Epoch != v.Epoch {
		t.Fatalf("views after reopen: %+v", views)
	}
	if len(views[0].Entries) != 1 || !views[0].Entries[0].Rec.Equal(v.Entries[0].Rec) {
		t.Fatalf("view entries lost: %+v", views[0].Entries)
	}
	// A base write invalidates the persisted view, durably.
	if _, err := db.Append("a", seq.Entry{Pos: 11, Rec: seq.Record{seq.Int(11)}}); err != nil {
		t.Fatal(err)
	}
	if len(db.Views()) != 0 {
		t.Fatal("view survived a base append")
	}
	kill(db)
	db = openTest(t, dir, testConfig())
	defer db.Close()
	if len(db.Views()) != 0 {
		t.Fatal("invalidated view resurrected by recovery")
	}
}

func TestGCFreesAndReusesSlots(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	cfg := testConfig()
	cfg.PoolPages = 8 // force eviction writebacks so old versions hold disk slots
	db := openTest(t, dir, cfg)
	if err := db.CreateSequence("a", testData(t, schema, 8), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		pos := seq.Pos(9 + i)
		if _, err := db.Append("a", seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}); err != nil {
			t.Fatal(err)
		}
	}
	// Flush everything so superseded page versions hold disk slots.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := mustSeq(t, db, "a")
	if s.Versions() != 31 {
		t.Fatalf("retained %d versions before GC", s.Versions())
	}
	versions, pages := db.GC(db.Epoch())
	if versions != 30 || pages == 0 {
		t.Fatalf("GC dropped %d versions, freed %d pages", versions, pages)
	}
	if s.Versions() != 1 {
		t.Fatalf("retained %d versions after GC", s.Versions())
	}
	// Freed slots are quarantined until the next checkpoint, then reused:
	// appending after a checkpoint must not grow the file.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before, _ := s.file.allocState()
	for i := 0; i < 10; i++ {
		pos := seq.Pos(39 + i)
		if _, err := db.Append("a", seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}); err != nil {
			t.Fatal(err)
		}
	}
	db.GC(db.Epoch())
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := s.file.allocState()
	if after > before {
		t.Fatalf("file grew from %d to %d slots despite free slots", before, after)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = openTest(t, dir, testConfig())
	defer db.Close()
	got := collect(t, mustSeq(t, db, "a").Latest(), seq.AllSpan)
	if len(got) != 48 {
		t.Fatalf("after GC + reuse + reopen: %d entries, want 48", len(got))
	}
}

func TestFailedStateRejectsWritesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	var fail bool
	cfg := testConfig()
	cfg.Hook = func(op string) error {
		if fail && op == "wal.write" {
			return os.ErrInvalid
		}
		return nil
	}
	db := openTest(t, dir, cfg)
	if err := db.CreateSequence("a", testData(t, schema, 5), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append("a", seq.Entry{Pos: 6, Rec: seq.Record{seq.Int(6)}}); err != nil {
		t.Fatal(err)
	}
	fail = true
	if _, err := db.Append("a", seq.Entry{Pos: 7, Rec: seq.Record{seq.Int(7)}}); err == nil {
		t.Fatal("append succeeded through a failing fsync")
	}
	if _, err := db.Append("a", seq.Entry{Pos: 8, Rec: seq.Record{seq.Int(8)}}); err == nil {
		t.Fatal("append accepted on a failed database")
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded on a failed database")
	}
	// Reads still work from memory.
	if got := len(collect(t, mustSeq(t, db, "a").Latest(), seq.AllSpan)); got != 6 {
		t.Fatalf("failed DB serves %d entries, want 6", got)
	}
	kill(db)
	db = openTest(t, dir, testConfig())
	defer db.Close()
	got := collect(t, mustSeq(t, db, "a").Latest(), seq.AllSpan)
	if len(got) != 6 || got[5].Pos != 6 {
		t.Fatalf("recovery after failure sees %d entries", len(got))
	}
}

func TestExistingPageSizeWins(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	db := openTest(t, dir, cfg)
	if err := db.CreateSequence("a", testData(t, testSchema(t), 5), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig()
	cfg2.PageSize = 4096
	db = openTest(t, dir, cfg2)
	defer db.Close()
	if db.PageSize() != cfg.PageSize {
		t.Fatalf("page size = %d, want the existing database's %d", db.PageSize(), cfg.PageSize)
	}
}
