package disk

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/seq"
	"repro/internal/storage"
)

// The catalog (catalog.bin) is the checkpoint root: the complete latest
// state of every sequence — schema, kind, span, and the page table
// mapping logical pages to physical slots — plus the persisted views,
// the epoch, and the WAL segment replay starts from. It is written to a
// temp file, fsynced, and renamed over the previous catalog, so exactly
// one catalog is ever visible; a whole-file CRC32-C rejects torn
// catalogs (the rename either happened or it did not).
//
// Free-slot state is deliberately not persisted: recovery derives the
// free list as "allocated slots the catalog does not reference", which
// also reclaims slots leaked by writebacks that raced a failed
// checkpoint.
const (
	catalogMagic = "SEQCAT1\n"
	catalogName  = "catalog.bin"
)

// catSeq is one sequence's catalog entry.
type catSeq struct {
	name   string
	fileID uint32
	kind   storage.Kind
	rpp    int
	schema *seq.Schema
	span   seq.Span
	count  int
	epoch  int64
	table  []catRef
}

// catRef is one durable page reference.
type catRef struct {
	phys  int64
	epoch int64
	first int64
	n     int
}

// View is a persisted materialized view: enough to re-register it (and
// re-derive its plan) on reopen. A base write removes the views reading
// it, so a persisted view is always valid at the catalog's epoch;
// re-registration at Epoch preserves the epoch-validity window for
// readers pinned before it.
type View struct {
	Name    string
	SEQL    string
	Span    seq.Span
	Epoch   int64
	Bases   []string
	Entries []seq.Entry
}

// catalog is the decoded catalog.bin.
type catalog struct {
	pageSize int
	epoch    int64
	walSeq   uint64
	nextFile uint32
	seqs     []catSeq
	views    []*View
}

func encodeCatalog(c *catalog) []byte {
	w := &writer{}
	w.buf = append(w.buf, catalogMagic...)
	w.u32(formatVersion)
	w.u32(uint32(c.pageSize))
	w.varint(c.epoch)
	w.uvarint(c.walSeq)
	w.uvarint(uint64(c.nextFile))
	w.uvarint(uint64(len(c.seqs)))
	for _, s := range c.seqs {
		w.string(s.name)
		w.uvarint(uint64(s.fileID))
		w.byte(byte(s.kind))
		w.uvarint(uint64(s.rpp))
		w.schema(s.schema)
		w.span(s.span)
		w.uvarint(uint64(s.count))
		w.varint(s.epoch)
		w.uvarint(uint64(len(s.table)))
		for _, r := range s.table {
			w.varint(r.phys)
			w.varint(r.epoch)
			w.varint(r.first)
			w.uvarint(uint64(r.n))
		}
	}
	w.uvarint(uint64(len(c.views)))
	for _, v := range c.views {
		w.string(v.Name)
		w.string(v.SEQL)
		w.span(v.Span)
		w.varint(v.Epoch)
		w.uvarint(uint64(len(v.Bases)))
		for _, b := range v.Bases {
			w.string(b)
		}
		w.entries(v.Entries)
	}
	w.u32(crc32.Checksum(w.buf, crcTable))
	return w.buf
}

func decodeCatalog(data []byte) (*catalog, error) {
	if len(data) < len(catalogMagic)+4 {
		return nil, fmt.Errorf("disk: catalog too short")
	}
	if string(data[:len(catalogMagic)]) != catalogMagic {
		return nil, fmt.Errorf("disk: bad catalog magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != getU32(tail) {
		return nil, fmt.Errorf("disk: catalog CRC mismatch")
	}
	r := &reader{buf: body, off: len(catalogMagic)}
	if v := r.u32(); v != formatVersion {
		return nil, fmt.Errorf("disk: catalog format version %d (this build reads %d)", v, formatVersion)
	}
	c := &catalog{}
	c.pageSize = int(r.u32())
	c.epoch = r.varint()
	c.walSeq = r.uvarint()
	c.nextFile = uint32(r.uvarint())
	nseqs := r.count("sequence", 1<<20)
	for i := 0; i < nseqs && r.err == nil; i++ {
		s := catSeq{}
		s.name = r.string()
		s.fileID = uint32(r.uvarint())
		s.kind = storage.Kind(r.byte())
		s.rpp = int(r.uvarint())
		s.schema = r.schema()
		s.span = r.span()
		s.count = int(r.uvarint())
		s.epoch = r.varint()
		ntable := r.count("page ref", 1<<26)
		s.table = make([]catRef, 0, ntable)
		for j := 0; j < ntable && r.err == nil; j++ {
			ref := catRef{phys: r.varint(), epoch: r.varint(), first: r.varint(), n: int(r.uvarint())}
			if ref.phys < 0 {
				r.fail("catalog ref with unassigned slot")
				break
			}
			s.table = append(s.table, ref)
		}
		if s.kind != storage.KindDense && s.kind != storage.KindSparse {
			r.fail("unknown sequence kind %d", int(s.kind))
		}
		if s.rpp <= 0 {
			r.fail("bad records-per-page %d", s.rpp)
		}
		c.seqs = append(c.seqs, s)
	}
	nviews := r.count("view", 1<<20)
	for i := 0; i < nviews && r.err == nil; i++ {
		v := &View{}
		v.Name = r.string()
		v.SEQL = r.string()
		v.Span = r.span()
		v.Epoch = r.varint()
		nb := r.count("view base", 1<<16)
		for j := 0; j < nb && r.err == nil; j++ {
			v.Bases = append(v.Bases, r.string())
		}
		v.Entries = r.entriesRun(1 << 26)
		c.views = append(c.views, v)
	}
	if r.err != nil {
		return nil, fmt.Errorf("disk: corrupt catalog: %w", r.err)
	}
	return c, nil
}

// writeCatalog persists the catalog atomically: temp file, fsync, rename
// over catalogName, fsync the directory.
func writeCatalog(dir string, c *catalog, hook Hook) error {
	data := encodeCatalog(c)
	tmp := filepath.Join(dir, catalogName+".tmp")
	if hook != nil {
		if err := hook("cat.write"); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if hook != nil {
		if err := hook("cat.rename"); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, filepath.Join(dir, catalogName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readCatalog loads catalog.bin; a missing file returns (nil, nil) — a
// fresh database.
func readCatalog(dir string) (*catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, catalogName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return decodeCatalog(data)
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
