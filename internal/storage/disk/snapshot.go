package disk

import (
	"math/bits"
	"sort"

	"repro/internal/seq"
	"repro/internal/storage"
)

// Snapshot is an immutable view of one version of a disk-backed Seq,
// pinned at a reader epoch. It implements storage.Store (and
// storage.SeqSnapshot), so the optimizer, executor, server and parallel
// machinery treat it exactly like a memory-backed store; page fetches go
// through the DB's buffer pool and are charged — page touches and pool
// traffic both — to the snapshot's private counters, which is what
// EXPLAIN ANALYZE attributes per plan leaf.
//
// The page-touch accounting (SeqPages, RandPages, probe depths) is
// identical to the memory-backed Snapshot's, so plan costs are
// comparable across tiers; the pool counters underneath tell cold from
// warm.
type Snapshot struct {
	sq    *Seq
	at    int64 // the reader epoch the snapshot was pinned at
	v     *dversion
	stats *storage.Stats
}

// SnapshotEpoch returns the reader epoch the snapshot is pinned at.
func (s *Snapshot) SnapshotEpoch() int64 { return s.at }

// VersionEpoch returns the epoch of the underlying store version.
func (s *Snapshot) VersionEpoch() int64 { return s.v.epoch }

// Kind returns the snapshot's physical representation.
func (s *Snapshot) Kind() storage.Kind { return s.v.kind }

// Count returns the number of non-Null records.
func (s *Snapshot) Count() int { return s.v.count }

// Info implements seq.Sequence.
func (s *Snapshot) Info() seq.Info {
	den := 0.0
	if n := s.v.span.Len(); n > 0 && s.v.span.Bounded() {
		den = float64(s.v.count) / float64(n)
	}
	return seq.Info{Schema: s.sq.schema, Span: s.v.span, Density: den}
}

// Stats implements storage.Store.
func (s *Snapshot) Stats() *storage.Stats { return s.stats }

// Fork implements storage.StatsForker: a view over the same version
// counting into stats, for per-worker attribution in parallel runs.
func (s *Snapshot) Fork(stats *storage.Stats) storage.Store {
	cp := *s
	cp.stats = stats
	return &cp
}

// probeDepth mirrors the memory stores: page touches charged per probed
// descent of the page index.
func (s *Snapshot) probeDepth() int64 {
	n := int64(len(s.v.table))
	if n <= 1 {
		return n
	}
	return int64(bits.Len64(uint64(n - 1)))
}

// AccessCosts implements storage.Store.
func (s *Snapshot) AccessCosts() storage.AccessCosts {
	if s.v.kind == storage.KindDense {
		return storage.AccessCosts{StreamPages: int64(len(s.v.table)), ProbePages: 1, RecordsPerPage: s.sq.rpp}
	}
	d := s.probeDepth()
	if d == 0 {
		d = 1
	}
	return storage.AccessCosts{StreamPages: int64(len(s.v.table)), ProbePages: d, RecordsPerPage: s.sq.rpp}
}

// Probe implements seq.Sequence: one page fetch through the pool plus
// the modeled index-descent charge.
func (s *Snapshot) Probe(pos seq.Pos) (seq.Record, error) {
	s.stats.ProbeRecords.Add(1)
	if !s.v.span.Contains(pos) || len(s.v.table) == 0 {
		return nil, nil
	}
	if s.v.kind == storage.KindDense {
		s.stats.RandPages.Add(1)
		pi := int((pos - s.v.span.Start) / int64(s.sq.rpp)) //seqvet:ignore spanarith bounded dense span
		ref := s.v.table[pi]
		fr, err := s.sq.db.pool.get(s.sq, ref, s.stats)
		if err != nil {
			return nil, err
		}
		return fr.slots[pos-fr.first], nil
	}
	s.stats.RandPages.Add(s.probeDepth())
	pi := sort.Search(len(s.v.table), func(i int) bool { return s.v.table[i].first > pos }) - 1
	if pi < 0 {
		return nil, nil
	}
	fr, err := s.sq.db.pool.get(s.sq, s.v.table[pi], s.stats)
	if err != nil {
		return nil, err
	}
	ents := fr.entries
	j := sort.Search(len(ents), func(i int) bool { return ents[i].Pos >= pos })
	if j < len(ents) && ents[j].Pos == pos {
		return ents[j].Rec, nil
	}
	return nil, nil
}

// Scan implements seq.Sequence: sequential page touches over the
// intersection of the requested span with the version's valid range,
// fetching each page through the pool as the cursor enters it.
func (s *Snapshot) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(s.v.span)
	if span.IsEmpty() || len(s.v.table) == 0 {
		return emptyCursor{}
	}
	if s.v.kind == storage.KindDense {
		return &diskDenseCursor{s: s, pos: span.Start, end: span.End, page: -1}
	}
	pi := sort.Search(len(s.v.table), func(i int) bool { return s.v.table[i].first > span.Start }) - 1
	if pi < 0 {
		pi = 0
	}
	c := &diskSparseCursor{s: s, pi: pi, end: span.End, page: -1, start: span.Start, seek: true}
	if pi > 0 {
		// Entering the middle of the file requires an index descent,
		// exactly as in the memory stores.
		s.stats.RandPages.Add(s.probeDepth())
		c.charged = true
	}
	return c
}

type emptyCursor struct{}

func (emptyCursor) Next() (seq.Pos, seq.Record, bool) { return 0, nil, false }
func (emptyCursor) Err() error                        { return nil }
func (emptyCursor) Close() error                      { return nil }

type diskSparseCursor struct {
	s       *Snapshot
	pi      int // current page index
	j       int // next entry index within the current frame
	end     seq.Pos
	start   seq.Pos
	seek    bool // position j at start within the first frame
	charged bool // mid-file entry descent already charged
	page    int  // last page charged; -1 before the first touch
	fr      *frame
	err     error
}

func (c *diskSparseCursor) Next() (seq.Pos, seq.Record, bool) {
	if c.err != nil {
		return 0, nil, false
	}
	for c.pi < len(c.s.v.table) {
		if c.fr == nil {
			fr, err := c.s.sq.db.pool.get(c.s.sq, c.s.v.table[c.pi], c.s.stats)
			if err != nil {
				c.err = err
				return 0, nil, false
			}
			c.fr = fr
			c.j = 0
			if c.seek {
				c.seek = false
				c.j = sort.Search(len(fr.entries), func(i int) bool { return fr.entries[i].Pos >= c.start })
				if c.j > 0 && !c.charged {
					c.s.stats.RandPages.Add(c.s.probeDepth())
					c.charged = true
				}
			}
		}
		if c.j >= len(c.fr.entries) {
			c.pi++
			c.fr = nil
			continue
		}
		e := c.fr.entries[c.j]
		if e.Pos > c.end {
			return 0, nil, false
		}
		if c.pi != c.page {
			c.page = c.pi
			c.s.stats.SeqPages.Add(1)
		}
		c.j++
		c.s.stats.SeqRecords.Add(1)
		return e.Pos, e.Rec, true
	}
	return 0, nil, false
}

func (c *diskSparseCursor) Err() error   { return c.err }
func (c *diskSparseCursor) Close() error { return nil }

type diskDenseCursor struct {
	s    *Snapshot
	pos  seq.Pos
	end  seq.Pos
	page int
	fr   *frame
	err  error
}

func (c *diskDenseCursor) Next() (seq.Pos, seq.Record, bool) {
	if c.err != nil {
		return 0, nil, false
	}
	for c.pos <= c.end {
		p := c.pos
		c.pos++
		// Dense versions have bounded spans at construction.
		pi := int((p - c.s.v.span.Start) / int64(c.s.sq.rpp)) //seqvet:ignore spanarith bounded dense span
		if pi != c.page {
			c.page = pi
			c.fr = nil
			c.s.stats.SeqPages.Add(1)
		}
		if c.fr == nil {
			fr, err := c.s.sq.db.pool.get(c.s.sq, c.s.v.table[pi], c.s.stats)
			if err != nil {
				c.err = err
				return 0, nil, false
			}
			c.fr = fr
		}
		if r := c.fr.slots[p-c.fr.first]; r != nil {
			c.s.stats.SeqRecords.Add(1)
			return p, r, true
		}
	}
	return 0, nil, false
}

func (c *diskDenseCursor) Err() error   { return c.err }
func (c *diskDenseCursor) Close() error { return nil }
