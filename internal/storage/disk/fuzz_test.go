package disk

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/storage"
)

// The recovery fuzz: drive a DB and an in-memory shadow through random
// mutations, kill the DB at a random I/O operation — sometimes with a
// torn (partial) write — reopen, and verify record-for-record against
// the shadow.
//
// Acked semantics: every operation that returned success before the kill
// must survive recovery exactly (appends fsync before acking in these
// runs). The single operation the injected failure interrupted is a
// "maybe": its WAL record may or may not have become durable before the
// "crash", so recovery may surface either the pre-op or post-op state —
// both are accepted, anything else is a bug.

// shadowSeq mirrors one sequence's acked logical state.
type shadowSeq struct {
	kind    storage.Kind
	entries []seq.Entry
}

func (s *shadowSeq) clone() *shadowSeq {
	return &shadowSeq{kind: s.kind, entries: append([]seq.Entry(nil), s.entries...)}
}

// shadowDB mirrors the whole database's acked state.
type shadowDB struct {
	seqs  map[string]*shadowSeq
	views map[string][]string // view name -> bases
	n     int                 // sequences ever created (names)
}

func newShadow() *shadowDB {
	return &shadowDB{seqs: make(map[string]*shadowSeq), views: make(map[string][]string)}
}

func (s *shadowDB) clone() *shadowDB {
	c := newShadow()
	c.n = s.n
	for k, v := range s.seqs {
		c.seqs[k] = v.clone()
	}
	for k, v := range s.views {
		c.views[k] = append([]string(nil), v...)
	}
	return c
}

func (s *shadowDB) dropViewsReading(base string) {
	for name, bases := range s.views {
		for _, b := range bases {
			if b == base {
				delete(s.views, name)
				break
			}
		}
	}
}

// fuzzOp is one randomly chosen mutation, applicable to the real DB and
// to a shadow — the same op value applied to both keeps them honest.
type fuzzOp struct {
	kind    int // 0 create, 1 append, 2 reorganize, 3 drop, 4 put view, 5 drop view
	name    string
	entries []seq.Entry
	entry   seq.Entry
	storeK  storage.Kind
	bases   []string
}

func pickSeq(rng *rand.Rand, s *shadowDB) string {
	names := make([]string, 0, len(s.seqs))
	for n := range s.seqs {
		names = append(names, n)
	}
	if len(names) == 0 {
		return ""
	}
	// Map iteration order is random but rng-independent; sort for
	// reproducibility.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names[rng.Intn(len(names))]
}

func genOp(rng *rand.Rand, s *shadowDB) *fuzzOp {
	for tries := 0; tries < 10; tries++ {
		switch k := rng.Intn(12); {
		case k < 3: // create
			name := fmt.Sprintf("s%d", s.n)
			n := rng.Intn(30)
			entries := make([]seq.Entry, n)
			pos := seq.Pos(1)
			for i := range entries {
				entries[i] = seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}
				pos += seq.Pos(1 + rng.Intn(3))
			}
			kind := storage.KindSparse
			if rng.Intn(3) == 0 {
				kind = storage.KindDense
			}
			return &fuzzOp{kind: 0, name: name, entries: entries, storeK: kind}
		case k < 8: // append
			name := pickSeq(rng, s)
			if name == "" || s.seqs[name].kind != storage.KindSparse {
				continue
			}
			pos := seq.Pos(1)
			if es := s.seqs[name].entries; len(es) > 0 {
				pos = es[len(es)-1].Pos + seq.Pos(1+rng.Intn(3))
			}
			return &fuzzOp{kind: 1, name: name, entry: seq.Entry{Pos: pos, Rec: seq.Record{seq.Int(int64(pos))}}}
		case k < 9: // reorganize
			name := pickSeq(rng, s)
			if name == "" {
				continue
			}
			kind := storage.KindSparse
			if rng.Intn(2) == 0 {
				kind = storage.KindDense
			}
			return &fuzzOp{kind: 2, name: name, storeK: kind}
		case k < 10: // drop sequence
			name := pickSeq(rng, s)
			if name == "" || len(s.seqs) < 2 {
				continue
			}
			return &fuzzOp{kind: 3, name: name}
		case k < 11: // put view
			base := pickSeq(rng, s)
			if base == "" {
				continue
			}
			return &fuzzOp{
				kind: 4, name: "v_" + base, bases: []string{base},
				entries: []seq.Entry{{Pos: 1, Rec: seq.Record{seq.Int(int64(len(s.seqs[base].entries)))}}},
			}
		default: // drop view
			for v := range s.views {
				return &fuzzOp{kind: 5, name: v}
			}
			continue
		}
	}
	return nil
}

func applyToShadow(s *shadowDB, op *fuzzOp) {
	switch op.kind {
	case 0:
		s.seqs[op.name] = &shadowSeq{kind: op.storeK, entries: append([]seq.Entry(nil), op.entries...)}
		s.n++
	case 1:
		sq := s.seqs[op.name]
		sq.entries = append(sq.entries, op.entry)
		s.dropViewsReading(op.name)
	case 2:
		s.seqs[op.name].kind = op.storeK
	case 3:
		delete(s.seqs, op.name)
		s.dropViewsReading(op.name)
	case 4:
		s.views[op.name] = append([]string(nil), op.bases...)
	case 5:
		delete(s.views, op.name)
	}
}

func applyToDB(t *testing.T, db *DB, op *fuzzOp, schema *seq.Schema) error {
	t.Helper()
	switch op.kind {
	case 0:
		m, err := seq.NewMaterialized(schema, op.entries)
		if err != nil {
			t.Fatal(err)
		}
		return db.CreateSequence(op.name, m, op.storeK)
	case 1:
		_, err := db.Append(op.name, op.entry)
		return err
	case 2:
		_, err := db.Reorganize(op.name, op.storeK)
		return err
	case 3:
		return db.DropSequence(op.name)
	case 4:
		return db.PutViewAt(&View{
			Name: op.name, SEQL: "select " + op.bases[0], Epoch: db.Epoch(),
			Bases: op.bases, Entries: op.entries,
		})
	default:
		return db.DropViewAt(op.name, db.Epoch()+1)
	}
}

// matches reports whether the recovered DB equals the shadow,
// record-for-record.
func matches(t *testing.T, db *DB, s *shadowDB) (bool, string) {
	t.Helper()
	names := db.Names()
	if len(names) != len(s.seqs) {
		return false, fmt.Sprintf("db has %d sequences, shadow %d", len(names), len(s.seqs))
	}
	for _, name := range names {
		sh, ok := s.seqs[name]
		if !ok {
			return false, fmt.Sprintf("db has unexpected sequence %q", name)
		}
		sq := mustSeq(t, db, name)
		if sq.Kind() != sh.kind {
			return false, fmt.Sprintf("%q kind %v, shadow %v", name, sq.Kind(), sh.kind)
		}
		got := collect(t, sq.Latest(), seq.AllSpan)
		if !entriesEqual(got, sh.entries) {
			return false, fmt.Sprintf("%q has %d records, shadow %d", name, len(got), len(sh.entries))
		}
	}
	views := db.Views()
	if len(views) != len(s.views) {
		return false, fmt.Sprintf("db has %d views, shadow %d", len(views), len(s.views))
	}
	for _, v := range views {
		if _, ok := s.views[v.Name]; !ok {
			return false, fmt.Sprintf("db has unexpected view %q", v.Name)
		}
	}
	return true, ""
}

func TestRecoveryFuzz(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	schema := testSchema(t)
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed=%d", it), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(it) * 7919))
			dir := t.TempDir()

			// Kill switch: fail the killAt'th hooked I/O op, half the time
			// as a torn (partial) write.
			killAt := 1 + rng.Intn(40)
			torn := rng.Intn(2) == 0
			tornN := rng.Intn(64)
			ops := 0
			errInjected := errors.New("injected failure")
			hook := func(op string) error {
				ops++
				if ops == killAt {
					if torn && op == "wal.write" {
						return &PartialWriteError{N: tornN}
					}
					return fmt.Errorf("%w at op %d (%s)", errInjected, killAt, op)
				}
				return nil
			}
			cfg := Config{
				PageSize:           512,
				RecordsPerPage:     1 + rng.Intn(6),
				PoolPages:          8 + rng.Intn(32),
				CheckpointInterval: -1,
				Hook:               hook,
			}
			db, err := Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}

			shadow := newShadow()
			var maybe *shadowDB // shadow + the interrupted op, if any
			for step := 0; step < 60; step++ {
				if rng.Intn(12) == 0 {
					if err := db.Checkpoint(); err != nil {
						maybe = shadow.clone() // checkpoint mutates no logical state
						break
					}
					continue
				}
				if rng.Intn(15) == 0 {
					db.GC(db.Epoch())
					db.DropCaches()
					continue
				}
				op := genOp(rng, shadow)
				if op == nil {
					continue
				}
				if err := applyToDB(t, db, op, schema); err != nil {
					if db.failed.Load() {
						maybe = shadow.clone()
						applyToShadow(maybe, op)
						break
					}
					// The injected failure can land in an op's prepare
					// stage — e.g. an eviction writeback while repacking
					// before WAL logging — where it cleanly rejects the op
					// and leaves the DB healthy. The shadow doesn't apply
					// the op either; keep driving.
					if errors.Is(err, errInjected) {
						continue
					}
					t.Fatalf("step %d: unexpected op failure: %v", step, err)
				}
				applyToShadow(shadow, op)
			}
			kill(db)

			db2, err := Open(dir, Config{PageSize: 512, CheckpointInterval: -1})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer db2.Close()
			ok, why := matches(t, db2, shadow)
			if !ok && maybe != nil {
				var whyMaybe string
				ok, whyMaybe = matches(t, db2, maybe)
				why = why + "; with interrupted op applied: " + whyMaybe
			}
			if !ok {
				t.Fatalf("recovered state matches neither acked shadow nor acked+interrupted (killAt=%d torn=%v): %s",
					killAt, torn, why)
			}

			// Recovery must itself be idempotent: reopen again, same state.
			if err := db2.Close(); err != nil {
				t.Fatal(err)
			}
			db3, err := Open(dir, Config{PageSize: 512, CheckpointInterval: -1})
			if err != nil {
				t.Fatalf("second recovery failed: %v", err)
			}
			defer db3.Close()
			if ok1, _ := matches(t, db3, shadow); !ok1 {
				if maybe == nil {
					t.Fatal("state changed across a clean close/reopen")
				}
				if ok2, why2 := matches(t, db3, maybe); !ok2 {
					t.Fatalf("state changed across a clean close/reopen: %s", why2)
				}
			}
		})
	}
}
