package disk

import (
	"fmt"
	"os"
	"sync"
)

// pageFile is one sequence's positional page file: a header page
// followed by fixed-size data pages addressed by physical slot number.
// Slot allocation state (nextPhys and the free list) is owned here but
// persisted in the catalog, not in the file — the file may be longer
// than nextPhys slots after a crash rolled allocation back, and those
// tail slots are simply reused.
//
// Freed slots are quarantined in pending until the next durable catalog
// no longer references them: a slot freed by GC or reorganize may still
// be referenced by the last checkpoint's catalog, and overwriting it
// before a new catalog lands would corrupt recovery. takePending/promote
// implement the two-stage hand-off around the checkpoint's rename.
//
// mu is a leaf below the pool lock: critical sections are pure file I/O
// and free-list bookkeeping.
//
//seqvet:lockorder leaf disk.pageFile.mu
type pageFile struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	pageSize int
	nextPhys int64
	free     []int64
	pending  []int64
	hook     Hook
}

// createPageFile creates a fresh page file with a synced header.
func createPageFile(path string, pageSize int, hook Hook) (*pageFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteAt(encodeFileHeader(pageSize), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: writing %s header: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &pageFile{f: f, path: path, pageSize: pageSize, hook: hook}, nil
}

// openPageFile opens an existing page file, validating its header. The
// allocation state comes from the catalog.
func openPageFile(path string, pageSize int, nextPhys int64, free []int64, hook Hook) (*pageFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, pageSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: reading %s header: %w", path, err)
	}
	if err := checkFileHeader(hdr, pageSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %s: %w", path, err)
	}
	return &pageFile{
		f: f, path: path, pageSize: pageSize, hook: hook,
		nextPhys: nextPhys, free: append([]int64(nil), free...),
	}, nil
}

// readPage reads and decodes one data page.
func (p *pageFile) readPage(phys int64) (*frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if phys < 0 || phys >= p.nextPhys {
		return nil, fmt.Errorf("disk: %s: read of unallocated page %d (of %d)", p.path, phys, p.nextPhys)
	}
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, (1+phys)*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("disk: %s: reading page %d: %w", p.path, phys, err)
	}
	f, err := decodePage(buf)
	if err != nil {
		return nil, fmt.Errorf("disk: %s page %d: %w", p.path, phys, err)
	}
	return f, nil
}

// writeFrame allocates a slot (reusing the free list first) and writes
// the encoded frame into it. No fsync: durability comes from the WAL
// until the next checkpoint syncs the file.
func (p *pageFile) writeFrame(f *frame) (int64, error) {
	page, err := encodePage(f, p.pageSize)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hook != nil {
		if err := p.hook("page.write"); err != nil {
			return 0, err
		}
	}
	var phys int64
	if n := len(p.free); n > 0 {
		phys = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		phys = p.nextPhys
		p.nextPhys++
	}
	if _, err := p.f.WriteAt(page, (1+phys)*int64(p.pageSize)); err != nil {
		// Put the slot back: the write may be torn, nothing references it.
		p.free = append(p.free, phys)
		return 0, fmt.Errorf("disk: %s: writing page %d: %w", p.path, phys, err)
	}
	return phys, nil
}

// freeSlot quarantines a no-longer-referenced slot until the next
// durable catalog.
func (p *pageFile) freeSlot(phys int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending = append(p.pending, phys)
}

// takePending hands the current quarantine to a checkpoint; the caller
// promotes it after the catalog rename succeeds.
func (p *pageFile) takePending() []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.pending
	p.pending = nil
	return out
}

// promote makes previously quarantined slots allocatable: the durable
// catalog no longer references them.
func (p *pageFile) promote(slots []int64) {
	if len(slots) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, slots...)
}

// requeue returns quarantined slots taken by a failed checkpoint to the
// quarantine (they may be referenced by the still-current catalog).
func (p *pageFile) requeue(slots []int64) {
	if len(slots) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending = append(p.pending, slots...)
}

// allocState snapshots the allocation state for the catalog.
func (p *pageFile) allocState() (nextPhys int64, free []int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nextPhys, append([]int64(nil), p.free...)
}

func (p *pageFile) sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hook != nil {
		if err := p.hook("page.sync"); err != nil {
			return err
		}
	}
	return p.f.Sync()
}

func (p *pageFile) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.f.Close()
}
