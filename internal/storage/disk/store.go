package disk

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/seq"
	"repro/internal/storage"
)

// Seq is one disk-backed multi-version sequence: the durable counterpart
// of storage.Versioned. Contents live in immutable page versions
// addressed by pageRefs; every mutation publishes a new version — a
// fresh ref table sharing every untouched page with its predecessor
// (copy-on-write at page granularity) — tagged with the epoch at which
// it becomes visible. Readers obtain an epoch-pinned Snapshot whose page
// fetches go through the DB's buffer pool; writers log to the WAL before
// publishing.
//
// An Append copies at most one page (the tail it extends), so K retained
// epochs cost O(K) extra pages. GC drops versions older than every live
// reader and frees the disk slots of unreachable page versions.
//
// mu guards the version list only; page I/O happens outside it (reads
// through the pool before publication, which needs no lock because
// writers are serialized by the DB's writer lock).
//
//seqvet:lockorder leaf disk.Seq.mu
type Seq struct {
	name   string
	fileID uint32
	schema *seq.Schema
	rpp    int
	file   *pageFile
	db     *DB

	mu       sync.RWMutex
	versions []*dversion // ascending by epoch; last is latest
}

// dversion is one immutable published state of a Seq.
type dversion struct {
	epoch int64
	kind  storage.Kind
	span  seq.Span
	count int // non-Null records
	table []*pageRef
}

// Name returns the sequence name.
func (s *Seq) Name() string { return s.name }

// Schema returns the record type of the stored sequence.
func (s *Seq) Schema() *seq.Schema { return s.schema }

func (s *Seq) latest() *dversion { return s.versions[len(s.versions)-1] }

// LatestEpoch returns the epoch of the newest published version.
func (s *Seq) LatestEpoch() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.latest().epoch
}

// Kind returns the physical representation of the newest version.
func (s *Seq) Kind() storage.Kind {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.latest().kind
}

// Versions returns the number of retained versions.
func (s *Seq) Versions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.versions)
}

// PageVersions returns the number of distinct page versions retained —
// the MVCC cost beyond a single copy of the data, in pages.
func (s *Seq) PageVersions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	distinct := make(map[*pageRef]bool)
	for _, v := range s.versions {
		for _, ref := range v.table {
			distinct[ref] = true
		}
	}
	return len(distinct)
}

// SnapshotAt returns an immutable snapshot of the newest version
// published at or before the given epoch, with fresh access counters, or
// nil when the store has no version that old.
func (s *Seq) SnapshotAt(epoch int64) *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.versions), func(i int) bool { return s.versions[i].epoch > epoch })
	if i == 0 {
		return nil
	}
	return &Snapshot{sq: s, at: epoch, v: s.versions[i-1], stats: &storage.Stats{}}
}

// Latest returns a snapshot of the newest published version.
func (s *Seq) Latest() *Snapshot {
	s.mu.RLock()
	cur := s.latest()
	s.mu.RUnlock()
	return &Snapshot{sq: s, at: cur.epoch, v: cur, stats: &storage.Stats{}}
}

// packFrames builds the page versions of one full sequence state:
// entries must be sorted by position, unique and non-Null. The frames
// are returned alongside their refs for the caller to register with the
// pool as dirty pages. Every frame is checked to encode within pageSize,
// so callers can reject oversized records before WAL-logging them.
func packFrames(entries []seq.Entry, span seq.Span, kind storage.Kind, rpp int, epoch int64, pageSize int) (*dversion, []*frame, error) {
	if span.IsEmpty() && len(entries) > 0 {
		span = seq.NewSpan(entries[0].Pos, entries[len(entries)-1].Pos)
	}
	v := &dversion{epoch: epoch, kind: kind, span: span, count: len(entries)}
	var frames []*frame
	switch kind {
	case storage.KindSparse:
		for i := 0; i < len(entries); i += rpp {
			hi := i + rpp
			if hi > len(entries) {
				hi = len(entries)
			}
			pg := entries[i:hi:hi]
			fr := &frame{kind: kind, epoch: epoch, first: pg[0].Pos, entries: pg}
			v.table = append(v.table, newRef(epoch, pg[0].Pos, len(pg)))
			frames = append(frames, fr)
		}
	case storage.KindDense:
		if span.IsEmpty() {
			break
		}
		if !span.Bounded() {
			return nil, nil, fmt.Errorf("disk: dense version requires a bounded span, got %v", span)
		}
		n := span.Len()
		const maxSlots = 1 << 28
		if n > maxSlots {
			return nil, nil, fmt.Errorf("disk: dense span of %d positions too large", n)
		}
		next := 0
		for off := int64(0); off < n; off += int64(rpp) {
			m := n - off
			if m > int64(rpp) {
				m = int64(rpp)
			}
			first := span.Start + off //seqvet:ignore spanarith bounded dense span
			fr := &frame{kind: kind, epoch: epoch, first: first, slots: make([]seq.Record, m)}
			for next < len(entries) && entries[next].Pos < first+m { //seqvet:ignore spanarith bounded dense span
				fr.slots[entries[next].Pos-first] = entries[next].Rec
				next++
			}
			v.table = append(v.table, newRef(epoch, first, int(m)))
			frames = append(frames, fr)
		}
	default:
		return nil, nil, fmt.Errorf("disk: unknown kind %v", kind)
	}
	for _, fr := range frames {
		if err := checkPageFits(fr, pageSize); err != nil {
			return nil, nil, err
		}
	}
	return v, frames, nil
}

// install registers packed frames with the pool and publishes the
// version. Called with the DB's writer lock held.
func (s *Seq) install(v *dversion, frames []*frame) error {
	for i, fr := range frames {
		if err := s.db.pool.put(s, v.table[i], fr, nil); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.versions = append(s.versions, v)
	s.mu.Unlock()
	return nil
}

// pendingAppend is a fully validated append that has not been published
// yet: the new page version, the copied ref table, and the resulting
// version metadata. prepareAppend builds it before the WAL record is
// written; commitAppend publishes it afterwards.
type pendingAppend struct {
	ref   *pageRef
	fr    *frame
	table []*pageRef
	span  seq.Span
	count int
	epoch int64
}

// prepareAppend validates an append — including that the resulting tail
// page encodes within the page size — and builds the not-yet-published
// page version. Nothing is mutated, so the caller can reject a bad
// append before logging it to the WAL. Called with the DB's writer lock
// held (writers are serialized).
func (s *Seq) prepareAppend(e seq.Entry, epoch int64) (*pendingAppend, error) {
	if e.Rec.IsNull() {
		return nil, fmt.Errorf("disk: cannot append a Null record")
	}
	if !e.Rec.Conforms(s.schema) {
		return nil, fmt.Errorf("disk: record %v does not conform to %v", e.Rec, s.schema)
	}
	s.mu.RLock()
	cur := s.latest()
	s.mu.RUnlock()
	if epoch <= cur.epoch {
		return nil, fmt.Errorf("disk: append epoch %d does not advance version epoch %d", epoch, cur.epoch)
	}
	if cur.kind != storage.KindSparse {
		return nil, fmt.Errorf("disk: version is not appendable (reorganize to sparse first)")
	}
	if !cur.span.IsEmpty() && e.Pos <= cur.span.End {
		return nil, fmt.Errorf("disk: append position %d inside the valid range %v", e.Pos, cur.span)
	}
	table := make([]*pageRef, len(cur.table), len(cur.table)+1)
	copy(table, cur.table)
	var ref *pageRef
	var fr *frame
	if n := len(table); n > 0 && table[n-1].n < s.rpp {
		tailRef := table[n-1]
		tailFr, err := s.db.pool.get(s, tailRef, nil)
		if err != nil {
			return nil, err
		}
		ents := make([]seq.Entry, len(tailFr.entries), len(tailFr.entries)+1)
		copy(ents, tailFr.entries)
		ents = append(ents, e)
		ref = newRef(epoch, tailFr.first, len(ents))
		fr = &frame{kind: storage.KindSparse, epoch: epoch, first: tailFr.first, entries: ents}
		table[n-1] = ref
	} else {
		ref = newRef(epoch, e.Pos, 1)
		fr = &frame{kind: storage.KindSparse, epoch: epoch, first: e.Pos, entries: []seq.Entry{e}}
		table = append(table, ref)
	}
	if err := checkPageFits(fr, s.db.cfg.PageSize); err != nil {
		return nil, err
	}
	span := cur.span
	if span.IsEmpty() {
		span = seq.NewSpan(e.Pos, e.Pos)
	} else {
		span.End = e.Pos
	}
	return &pendingAppend{ref: ref, fr: fr, table: table, span: span, count: cur.count + 1, epoch: epoch}, nil
}

// commitAppend registers the prepared page version with the pool and
// publishes it. Called with the DB's writer lock held, after the WAL
// record is durable; an error here is an I/O failure, not validation.
func (s *Seq) commitAppend(p *pendingAppend) error {
	if err := s.db.pool.put(s, p.ref, p.fr, nil); err != nil {
		return err
	}
	s.mu.Lock()
	s.versions = append(s.versions, &dversion{
		epoch: p.epoch, kind: storage.KindSparse, span: p.span, count: p.count, table: p.table,
	})
	s.mu.Unlock()
	return nil
}

// prepareReorganize validates a repack of the latest contents into the
// given kind — including that every packed page encodes within the page
// size — without publishing anything, so the caller can reject it
// before logging to the WAL. Called with the DB's writer lock held.
func (s *Seq) prepareReorganize(kind storage.Kind, epoch int64) (*dversion, []*frame, error) {
	s.mu.RLock()
	cur := s.latest()
	s.mu.RUnlock()
	if epoch <= cur.epoch {
		return nil, nil, fmt.Errorf("disk: reorganize epoch %d does not advance version epoch %d", epoch, cur.epoch)
	}
	entries, err := s.collect(cur)
	if err != nil {
		return nil, nil, err
	}
	return packFrames(entries, cur.span, kind, s.rpp, epoch, s.db.cfg.PageSize)
}

// reorganizeLocked repacks the latest contents into the given kind and
// publishes the result at epoch — the replay path, where the WAL record
// already exists. Called with the DB's writer lock held.
func (s *Seq) reorganizeLocked(kind storage.Kind, epoch int64) error {
	v, frames, err := s.prepareReorganize(kind, epoch)
	if err != nil {
		return err
	}
	return s.install(v, frames)
}

// collect flattens a version's pages into sorted entries, fetching
// frames through the pool.
func (s *Seq) collect(v *dversion) ([]seq.Entry, error) {
	out := make([]seq.Entry, 0, v.count)
	for _, ref := range v.table {
		fr, err := s.db.pool.get(s, ref, nil)
		if err != nil {
			return nil, err
		}
		if fr.entries != nil {
			out = append(out, fr.entries...)
			continue
		}
		for i, r := range fr.slots {
			if r != nil {
				out = append(out, seq.Entry{Pos: fr.first + seq.Pos(i), Rec: r}) //seqvet:ignore spanarith bounded dense span
			}
		}
	}
	return out, nil
}

// GC drops this sequence's versions superseded at or before minLive and
// frees the disk slots of unreachable page versions, returning the
// number of versions dropped. It takes the database writer lock — the
// per-sequence entry point the server's GC loop uses; DB.GC does the
// same for every sequence under one lock acquisition.
func (s *Seq) GC(minLive int64) int {
	s.db.wmu.Lock()
	defer s.db.wmu.Unlock()
	versions, _ := s.gcLocked(minLive)
	return versions
}

// gcLocked drops every version superseded at or before minLive and
// frees the disk slots of page versions no surviving version references.
// Called with the DB's writer lock held. It returns versions dropped and
// disk page slots freed.
func (s *Seq) gcLocked(minLive int64) (versions, pages int) {
	s.mu.Lock()
	i := sort.Search(len(s.versions), func(i int) bool { return s.versions[i].epoch > minLive })
	if i <= 1 {
		s.mu.Unlock()
		return 0, 0
	}
	dropped := s.versions[:i-1]
	keep := s.versions[i-1:]
	s.versions = append(make([]*dversion, 0, len(keep)), keep...)
	live := make(map[*pageRef]bool)
	for _, v := range s.versions {
		for _, ref := range v.table {
			live[ref] = true
		}
	}
	s.mu.Unlock()
	freed := 0
	seen := make(map[*pageRef]bool)
	for _, v := range dropped {
		for _, ref := range v.table {
			if live[ref] || seen[ref] {
				continue
			}
			seen[ref] = true
			// A ref captured by the in-flight checkpoint must stay
			// resident until its flush completes; forget it when the
			// checkpoint ends instead.
			if s.db.cpPins[ref] {
				s.db.cpDeferred = append(s.db.cpDeferred, deferredForget{file: s.file, ref: ref, free: true})
				continue
			}
			if phys := s.db.pool.forget(ref); phys >= 0 {
				s.file.freeSlot(phys)
				freed++
			}
		}
	}
	return len(dropped), freed
}

// dropAllPages forgets every resident frame and quarantines every
// allocated slot — the sequence-drop path. Called with the DB's writer
// lock held.
func (s *Seq) dropAllPages() {
	s.mu.Lock()
	versions := s.versions
	s.versions = nil
	s.mu.Unlock()
	seen := make(map[*pageRef]bool)
	for _, v := range versions {
		for _, ref := range v.table {
			if seen[ref] {
				continue
			}
			seen[ref] = true
			// Refs captured by an in-flight checkpoint stay resident
			// until its flush completes (see finishCheckpoint).
			if s.db.cpPins[ref] {
				s.db.cpDeferred = append(s.db.cpDeferred, deferredForget{file: s.file, ref: ref})
				continue
			}
			s.db.pool.forget(ref)
		}
	}
}
