// Package disk implements the durable tier of the storage layer: a
// positional page-file format with per-page CRC32 checksums, a redo-only
// write-ahead log with group-commit fsync batching, crash recovery on
// open, and background checkpointing — all behind a CLOCK buffer pool
// whose hits, misses, evictions and dirty writebacks flow through the
// same storage.Stats metering the memory-backed stores use, so EXPLAIN
// ANALYZE, parallel attribution and calibration observe genuine I/O.
//
// docs/STORAGE.md is the normative description of the on-disk format,
// the WAL record layout, and the recovery algorithm.
package disk

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/seq"
)

// The value/record encoding mirrors the wire protocol's: integers are
// varints (signed: zig-zag), strings are uvarint-length-prefixed,
// float64 is its 8-byte IEEE-754 big-endian bit pattern, values are
// tagged with their seq.Type byte, and a record is a uvarint field
// count followed by the values — the Null record is count 0. The two
// codecs are deliberately not shared: the wire format and the disk
// format version independently.

type writer struct {
	buf []byte
}

func (w *writer) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) u32(v uint32)     { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) float(f float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	w.buf = append(w.buf, b[:]...)
}
func (w *writer) string(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) value(v seq.Value) {
	w.byte(byte(v.T))
	switch v.T {
	case seq.TInt:
		w.varint(v.AsInt())
	case seq.TFloat:
		w.float(v.AsFloat())
	case seq.TString:
		w.string(v.AsStr())
	case seq.TBool:
		if v.AsBool() {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}
}

// record encodes a record as a uvarint field count followed by tagged
// values; the Null record travels as count 0.
func (w *writer) record(rec seq.Record) {
	w.uvarint(uint64(len(rec)))
	for _, v := range rec {
		w.value(v)
	}
}

func (w *writer) schema(sc *seq.Schema) {
	fields := sc.Fields()
	w.uvarint(uint64(len(fields)))
	for _, f := range fields {
		w.string(f.Name)
		w.byte(byte(f.Type))
	}
}

// span encodes a span as an emptiness flag plus bounds (bounds omitted
// when empty).
func (w *writer) span(sp seq.Span) {
	if sp.IsEmpty() {
		w.byte(0)
		return
	}
	w.byte(1)
	w.varint(sp.Start)
	w.varint(sp.End)
}

// entries encodes a sorted entry run: a uvarint count, the first
// position as a varint, then per entry a uvarint position delta from
// its predecessor followed by the record. Positions in a run are
// strictly ascending, so the deltas are ≥ 1 (except the first, 0).
func (w *writer) entries(ents []seq.Entry) {
	w.uvarint(uint64(len(ents)))
	if len(ents) == 0 {
		return
	}
	w.varint(ents[0].Pos)
	prev := ents[0].Pos
	for i, e := range ents {
		if i > 0 {
			w.uvarint(uint64(e.Pos - prev))
			prev = e.Pos
		}
		w.record(e.Rec)
	}
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated payload")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail("truncated u32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) float() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated float")
		return 0
	}
	bits := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(bits)
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

// count decodes a uvarint element count, comparing in uint64 space
// before the int conversion so a corrupt value can neither wrap
// negative nor drive an oversized allocation: the count must fit both
// the caller's limit and the unread payload (every element occupies at
// least one byte).
func (r *reader) count(what string, limit int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(limit) || v > uint64(r.remaining()) {
		r.fail("%s count %d out of range", what, v)
		return 0
	}
	return int(v)
}

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("truncated string of %d bytes", n)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) value() seq.Value {
	t := seq.Type(r.byte())
	switch t {
	case seq.TInt:
		return seq.Int(r.varint())
	case seq.TFloat:
		return seq.Float(r.float())
	case seq.TString:
		return seq.Str(r.string())
	case seq.TBool:
		return seq.Bool(r.byte() != 0)
	default:
		r.fail("unknown value type %d", uint8(t))
		return seq.Value{}
	}
}

func (r *reader) record() seq.Record {
	n := r.count("record field", 1<<16)
	if r.err != nil || n == 0 {
		return nil // the Null record
	}
	rec := make(seq.Record, n)
	for i := range rec {
		rec[i] = r.value()
	}
	return rec
}

func (r *reader) schema() *seq.Schema {
	n := r.count("schema field", 1<<12)
	if r.err != nil {
		return nil
	}
	fields := make([]seq.Field, n)
	for i := range fields {
		fields[i].Name = r.string()
		fields[i].Type = seq.Type(r.byte())
	}
	if r.err != nil {
		return nil
	}
	sc, err := seq.NewSchema(fields...)
	if err != nil {
		r.fail("bad schema: %v", err)
		return nil
	}
	return sc
}

func (r *reader) span() seq.Span {
	if r.byte() == 0 {
		return seq.EmptySpan
	}
	start := r.varint()
	end := r.varint()
	if r.err != nil {
		return seq.EmptySpan
	}
	if end < start {
		r.fail("span end %d before start %d", end, start)
		return seq.EmptySpan
	}
	return seq.NewSpan(start, end)
}

func (r *reader) entriesRun(limit int) []seq.Entry {
	n := r.count("entry", limit)
	if r.err != nil || n == 0 {
		return nil
	}
	ents := make([]seq.Entry, 0, n)
	pos := seq.Pos(r.varint())
	for i := 0; i < n; i++ {
		if i > 0 {
			d := r.uvarint()
			if r.err != nil {
				return nil
			}
			if d == 0 || d > uint64(math.MaxInt64)-uint64(pos) {
				r.fail("bad position delta %d at entry %d", d, i)
				return nil
			}
			pos += seq.Pos(d)
		}
		rec := r.record()
		if r.err != nil {
			return nil
		}
		ents = append(ents, seq.Entry{Pos: pos, Rec: rec})
	}
	return ents
}
