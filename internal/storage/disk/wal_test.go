package disk

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func writeSegment(t *testing.T, path string, payloads [][]byte) []byte {
	t.Helper()
	var data []byte
	for _, p := range payloads {
		var hdr [8]byte
		putU32(hdr[0:4], uint32(len(p)))
		putU32(hdr[4:8], crc32.Checksum(p, crcTable))
		data = append(data, hdr[:]...)
		data = append(data, p...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return data
}

func replayAll(t *testing.T, path string) (applied [][]byte, torn bool) {
	t.Helper()
	torn, err := replayWAL(path, func(p []byte) error {
		applied = append(applied, append([]byte(nil), p...))
		return err2(nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	return applied, torn
}

func err2(e error) error { return e }

// TestReplayTornShapes covers every torn-tail shape recovery must stop
// at without erroring: truncated header, truncated payload, corrupt
// payload, zero length, implausible length.
func TestReplayTornShapes(t *testing.T) {
	dir := t.TempDir()
	payloads := [][]byte{{1, 2, 3}, {4, 5, 6, 7}, {8}}

	path := filepath.Join(dir, "full.log")
	full := writeSegment(t, path, payloads)
	applied, torn := replayAll(t, path)
	if torn || len(applied) != 3 {
		t.Fatalf("intact segment: applied=%d torn=%v", len(applied), torn)
	}

	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   int // intact records surviving
	}{
		{"truncated header", func(d []byte) []byte { return d[:len(d)-len(payloads[2])-4] }, 2},
		{"truncated payload", func(d []byte) []byte { return d[:len(d)-1] }, 2},
		{"corrupt payload", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(out)-1] ^= 0xff
			return out
		}, 2},
		{"zero length", func(d []byte) []byte {
			head := d[:len(d)-len(payloads[2])-8]
			return append(append([]byte(nil), head...), make([]byte, 8)...)
		}, 2},
		{"implausible length", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			off := len(d) - len(payloads[2]) - 8
			putU32(out[off:off+4], maxWALRecord+1)
			return out
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, "case.log")
			if err := os.WriteFile(p, tc.mangle(append([]byte(nil), full...)), 0o644); err != nil {
				t.Fatal(err)
			}
			applied, torn := replayAll(t, p)
			if !torn {
				t.Fatal("tear not detected")
			}
			if len(applied) != tc.want {
				t.Fatalf("applied %d records, want %d", len(applied), tc.want)
			}
		})
	}
}

// TestWALRotateAndList: segment naming round-trips and lists ascending.
func TestWALRotateAndList(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte{1}, true); err != nil {
		t.Fatal(err)
	}
	if err := w.rotate(7); err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte{2}, true); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listWALSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0] != 3 || segs[1] != 7 {
		t.Fatalf("segments = %v", segs)
	}
	if n, ok := parseWALName(walName(42)); !ok || n != 42 {
		t.Fatalf("walName round-trip: %d %v", n, ok)
	}
}

// TestPartialWriteHook: a PartialWriteError leaves exactly the prefix in
// the file — the torn shape the fuzz harness relies on.
func TestPartialWriteHook(t *testing.T) {
	dir := t.TempDir()
	var arm bool
	w, err := createWAL(dir, 1, func(op string) error {
		if arm && op == "wal.write" {
			return &PartialWriteError{N: 5}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte{1, 2, 3}, true); err != nil {
		t.Fatal(err)
	}
	arm = true
	if err := w.append([]byte{4, 5, 6}, true); err == nil {
		t.Fatal("partial write reported success")
	}
	w.f.Close()
	applied, torn := replayAll(t, filepath.Join(dir, walName(1)))
	if !torn || len(applied) != 1 {
		t.Fatalf("after partial write: applied=%d torn=%v", len(applied), torn)
	}
}
