package storage

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/seq"
)

// Versioned is a multi-version base-sequence store: the MVCC substrate of
// the seqd server. The store's contents are held in immutable pages;
// every mutation (Append, Reorganize) publishes a new *version* — a fresh
// page-pointer slice sharing every untouched page with its predecessor
// (copy-on-write at page granularity) — tagged with the epoch at which it
// becomes visible. Readers obtain an immutable Snapshot pinned at their
// epoch and evaluate against it while writers proceed; a snapshot never
// observes a concurrent write.
//
// An Append copies at most one page (the tail page it extends), so the
// memory cost of K retained epochs is O(K) extra pages, not O(K) copies
// of the sequence. GC reclaims versions older than every live reader
// (EpochTracker.MinLive).
//
// mu is a leaf in the declared lock order: version-list manipulation
// under it is pure slice/page work (packVersion, collectEntries) with
// no calls into locked code.
//
//seqvet:lockorder leaf storage.Versioned.mu
type Versioned struct {
	schema *seq.Schema
	rpp    int

	mu       sync.RWMutex
	versions []*version // ascending by epoch; versions[len-1] is latest
}

// version is one immutable published state of a Versioned store.
type version struct {
	epoch int64
	kind  Kind
	span  seq.Span
	pages []*vpage
	count int // non-Null records
}

// vpage is an immutable page. Sparse-kind versions use entries (sorted,
// ≤ rpp per page); dense-kind versions use slots (rpp positional slots,
// nil = Null). epoch records the write that created this page version,
// for page-version accounting.
type vpage struct {
	epoch   int64
	first   seq.Pos // position of entries[0] (sparse) / of slots[0] (dense)
	entries []seq.Entry
	slots   []seq.Record
}

// NewVersioned builds a versioned store from materialized data, published
// at the given epoch. recordsPerPage <= 0 selects DefaultRecordsPerPage.
func NewVersioned(data *seq.Materialized, kind Kind, recordsPerPage int, epoch int64) (*Versioned, error) {
	if data == nil {
		return nil, fmt.Errorf("storage: nil data")
	}
	if recordsPerPage <= 0 {
		recordsPerPage = DefaultRecordsPerPage
	}
	v := &Versioned{schema: data.Info().Schema, rpp: recordsPerPage}
	ver, err := packVersion(data.Entries(), data.Info().Span, kind, recordsPerPage, epoch)
	if err != nil {
		return nil, err
	}
	v.versions = []*version{ver}
	return v, nil
}

// packVersion builds the immutable page set of one version. Entries must
// be sorted by position, unique and non-Null (a Materialized guarantees
// this; Reorganize passes a snapshot's own entries).
func packVersion(entries []seq.Entry, span seq.Span, kind Kind, rpp int, epoch int64) (*version, error) {
	if span.IsEmpty() && len(entries) > 0 {
		span = seq.NewSpan(entries[0].Pos, entries[len(entries)-1].Pos)
	}
	ver := &version{epoch: epoch, kind: kind, span: span, count: len(entries)}
	switch kind {
	case KindSparse:
		for i := 0; i < len(entries); i += rpp {
			hi := i + rpp
			if hi > len(entries) {
				hi = len(entries)
			}
			pg := entries[i:hi:hi]
			ver.pages = append(ver.pages, &vpage{epoch: epoch, first: pg[0].Pos, entries: pg})
		}
	case KindDense:
		if span.IsEmpty() {
			break
		}
		if !span.Bounded() {
			return nil, fmt.Errorf("storage: dense version requires a bounded span, got %v", span)
		}
		n := span.Len()
		const maxSlots = 1 << 28
		if n > maxSlots {
			return nil, fmt.Errorf("storage: dense span of %d positions too large", n)
		}
		next := 0
		for off := int64(0); off < n; off += int64(rpp) {
			m := n - off
			if m > int64(rpp) {
				m = int64(rpp)
			}
			// Dense spans are bounded at construction, so offset
			// arithmetic stays representable.
			first := span.Start + off //seqvet:ignore spanarith bounded dense span
			pg := &vpage{epoch: epoch, first: first, slots: make([]seq.Record, m)}
			for next < len(entries) && entries[next].Pos < first+m { //seqvet:ignore spanarith bounded dense span
				pg.slots[entries[next].Pos-first] = entries[next].Rec
				next++
			}
			ver.pages = append(ver.pages, pg)
		}
	default:
		return nil, fmt.Errorf("storage: unknown kind %v", kind)
	}
	return ver, nil
}

func (v *Versioned) latest() *version {
	return v.versions[len(v.versions)-1]
}

// LatestEpoch returns the epoch of the newest published version — the
// last write this store has seen. The server's materialize path uses it
// to detect write conflicts between snapshot and registration.
func (v *Versioned) LatestEpoch() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.latest().epoch
}

// Schema returns the record type of the stored sequence.
func (v *Versioned) Schema() *seq.Schema { return v.schema }

// Kind returns the physical representation of the newest version.
func (v *Versioned) Kind() Kind {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.latest().kind
}

// Append publishes a new version holding the latest contents plus the
// appended entry, visible from the given epoch on. Only sparse-kind
// versions are appendable (the same rule as the single-session library);
// the position must lie beyond the current valid range. The tail page is
// copied (copy-on-write); every other page is shared with the previous
// version.
func (v *Versioned) Append(e seq.Entry, epoch int64) error {
	if e.Rec.IsNull() {
		return fmt.Errorf("storage: cannot append a Null record")
	}
	if !e.Rec.Conforms(v.schema) {
		return fmt.Errorf("storage: record %v does not conform to %v", e.Rec, v.schema)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.latest()
	if epoch <= cur.epoch {
		return fmt.Errorf("storage: append epoch %d does not advance version epoch %d", epoch, cur.epoch)
	}
	if cur.kind != KindSparse {
		return fmt.Errorf("storage: version is not appendable (reorganize to sparse first)")
	}
	if !cur.span.IsEmpty() && e.Pos <= cur.span.End {
		return fmt.Errorf("storage: append position %d inside the valid range %v", e.Pos, cur.span)
	}
	pages := make([]*vpage, len(cur.pages), len(cur.pages)+1)
	copy(pages, cur.pages)
	if n := len(pages); n > 0 && len(pages[n-1].entries) < v.rpp {
		tail := pages[n-1]
		ents := make([]seq.Entry, len(tail.entries), len(tail.entries)+1)
		copy(ents, tail.entries)
		ents = append(ents, e)
		pages[n-1] = &vpage{epoch: epoch, first: tail.first, entries: ents}
	} else {
		pages = append(pages, &vpage{epoch: epoch, first: e.Pos, entries: []seq.Entry{e}})
	}
	span := cur.span
	if span.IsEmpty() {
		span = seq.NewSpan(e.Pos, e.Pos)
	} else {
		span.End = e.Pos
	}
	v.versions = append(v.versions, &version{
		epoch: epoch, kind: KindSparse, span: span, pages: pages, count: cur.count + 1,
	})
	return nil
}

// Reorganize publishes a new version repacking the latest contents into
// the given physical representation, visible from the given epoch on.
// Snapshots pinned at earlier epochs keep reading the old layout.
func (v *Versioned) Reorganize(kind Kind, epoch int64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.latest()
	if epoch <= cur.epoch {
		return fmt.Errorf("storage: reorganize epoch %d does not advance version epoch %d", epoch, cur.epoch)
	}
	entries := collectEntries(cur)
	ver, err := packVersion(entries, cur.span, kind, v.rpp, epoch)
	if err != nil {
		return err
	}
	v.versions = append(v.versions, ver)
	return nil
}

// collectEntries flattens a version's pages into sorted entries.
func collectEntries(ver *version) []seq.Entry {
	out := make([]seq.Entry, 0, ver.count)
	for _, pg := range ver.pages {
		if pg.entries != nil {
			out = append(out, pg.entries...)
			continue
		}
		for i, r := range pg.slots {
			if r != nil {
				out = append(out, seq.Entry{Pos: pg.first + seq.Pos(i), Rec: r}) //seqvet:ignore spanarith bounded dense span
			}
		}
	}
	return out
}

// SnapshotAt returns an immutable snapshot of the newest version
// published at or before the given epoch, with fresh access counters.
// It returns nil when the store has no version that old.
func (v *Versioned) SnapshotAt(epoch int64) *Snapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	i := sort.Search(len(v.versions), func(i int) bool { return v.versions[i].epoch > epoch })
	if i == 0 {
		return nil
	}
	return &Snapshot{at: epoch, v: v.versions[i-1], rpp: v.rpp, schema: v.schema, stats: &Stats{}}
}

// Latest returns a snapshot of the newest published version.
func (v *Versioned) Latest() *Snapshot {
	v.mu.RLock()
	cur := v.latest()
	v.mu.RUnlock()
	return &Snapshot{at: cur.epoch, v: cur, rpp: v.rpp, schema: v.schema, stats: &Stats{}}
}

// Versions returns the number of retained versions.
func (v *Versioned) Versions() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.versions)
}

// PageVersions returns the number of distinct page versions retained —
// the MVCC memory cost beyond a single copy of the data, in pages.
func (v *Versioned) PageVersions() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	distinct := make(map[*vpage]bool)
	for _, ver := range v.versions {
		for _, pg := range ver.pages {
			distinct[pg] = true
		}
	}
	return len(distinct)
}

// GC drops every version superseded at or before minLive: the newest
// version with epoch ≤ minLive must stay (a reader pinned at minLive
// reads it), everything older is unreachable. It returns the number of
// versions dropped.
func (v *Versioned) GC(minLive int64) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	i := sort.Search(len(v.versions), func(i int) bool { return v.versions[i].epoch > minLive })
	if i <= 1 {
		return 0
	}
	keep := v.versions[i-1:]
	dropped := i - 1
	v.versions = append(make([]*version, 0, len(keep)), keep...)
	return dropped
}

// Snapshot is an immutable view of one version of a Versioned store,
// pinned at a reader epoch. It implements Store, so the optimizer and
// executor treat it exactly like a base store; its counters are private
// to the snapshot (per-reader attribution).
type Snapshot struct {
	at     int64 // the reader epoch the snapshot was pinned at
	v      *version
	rpp    int
	schema *seq.Schema
	stats  *Stats
}

// SnapshotEpoch returns the reader epoch the snapshot is pinned at. The
// planlint snapshot/* invariants use it to check that a reader plan
// never mixes page versions across epochs.
func (s *Snapshot) SnapshotEpoch() int64 { return s.at }

// VersionEpoch returns the epoch of the underlying store version (the
// last write visible in this snapshot); always ≤ SnapshotEpoch.
func (s *Snapshot) VersionEpoch() int64 { return s.v.epoch }

// Kind returns the snapshot's physical representation.
func (s *Snapshot) Kind() Kind { return s.v.kind }

// Count returns the number of non-Null records.
func (s *Snapshot) Count() int { return s.v.count }

// Info implements seq.Sequence.
func (s *Snapshot) Info() seq.Info {
	den := 0.0
	if n := s.v.span.Len(); n > 0 && s.v.span.Bounded() {
		den = float64(s.v.count) / float64(n)
	}
	return seq.Info{Schema: s.schema, Span: s.v.span, Density: den}
}

// Stats implements Store.
func (s *Snapshot) Stats() *Stats { return s.stats }

// probeDepth mirrors Sparse.probeDepth: the page touches charged per
// probed descent of the page index.
func (s *Snapshot) probeDepth() int64 {
	n := int64(len(s.v.pages))
	if n <= 1 {
		return n
	}
	return int64(bits.Len64(uint64(n - 1)))
}

// AccessCosts implements Store.
func (s *Snapshot) AccessCosts() AccessCosts {
	if s.v.kind == KindDense {
		return AccessCosts{StreamPages: int64(len(s.v.pages)), ProbePages: 1, RecordsPerPage: s.rpp}
	}
	d := s.probeDepth()
	if d == 0 {
		d = 1
	}
	return AccessCosts{StreamPages: int64(len(s.v.pages)), ProbePages: d, RecordsPerPage: s.rpp}
}

// Probe implements seq.Sequence.
func (s *Snapshot) Probe(pos seq.Pos) (seq.Record, error) {
	s.stats.ProbeRecords.Add(1)
	if !s.v.span.Contains(pos) || len(s.v.pages) == 0 {
		return nil, nil
	}
	if s.v.kind == KindDense {
		s.stats.RandPages.Add(1)
		pi := int((pos - s.v.span.Start) / int64(s.rpp)) //seqvet:ignore spanarith bounded dense span
		pg := s.v.pages[pi]
		return pg.slots[pos-pg.first], nil
	}
	s.stats.RandPages.Add(s.probeDepth())
	pi := sort.Search(len(s.v.pages), func(i int) bool { return s.v.pages[i].first > pos }) - 1
	if pi < 0 {
		return nil, nil
	}
	ents := s.v.pages[pi].entries
	j := sort.Search(len(ents), func(i int) bool { return ents[i].Pos >= pos })
	if j < len(ents) && ents[j].Pos == pos {
		return ents[j].Rec, nil
	}
	return nil, nil
}

// Scan implements seq.Sequence: sequential page touches over the
// intersection of the requested span with the version's valid range.
func (s *Snapshot) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(s.v.span)
	if span.IsEmpty() || len(s.v.pages) == 0 {
		return emptyCursor{}
	}
	if s.v.kind == KindDense {
		return &snapDenseCursor{s: s, pos: span.Start, end: span.End, page: -1}
	}
	pi := sort.Search(len(s.v.pages), func(i int) bool { return s.v.pages[i].first > span.Start }) - 1
	if pi < 0 {
		pi = 0
	}
	ents := s.v.pages[pi].entries
	j := sort.Search(len(ents), func(i int) bool { return ents[i].Pos >= span.Start })
	if pi > 0 || j > 0 {
		// Entering the middle of the file requires an index descent,
		// exactly as in Sparse.Scan.
		s.stats.RandPages.Add(s.probeDepth())
	}
	return &snapSparseCursor{s: s, pi: pi, j: j, end: span.End, page: -1}
}

type snapSparseCursor struct {
	s    *Snapshot
	pi   int // current page index
	j    int // next entry index within page pi
	end  seq.Pos
	page int // last page charged; -1 before the first touch
}

func (c *snapSparseCursor) Next() (seq.Pos, seq.Record, bool) {
	for c.pi < len(c.s.v.pages) {
		pg := c.s.v.pages[c.pi]
		if c.j >= len(pg.entries) {
			c.pi++
			c.j = 0
			continue
		}
		e := pg.entries[c.j]
		if e.Pos > c.end {
			return 0, nil, false
		}
		if c.pi != c.page {
			c.page = c.pi
			c.s.stats.SeqPages.Add(1)
		}
		c.j++
		c.s.stats.SeqRecords.Add(1)
		return e.Pos, e.Rec, true
	}
	return 0, nil, false
}

func (c *snapSparseCursor) Err() error   { return nil }
func (c *snapSparseCursor) Close() error { return nil }

type snapDenseCursor struct {
	s    *Snapshot
	pos  seq.Pos
	end  seq.Pos
	page int
}

func (c *snapDenseCursor) Next() (seq.Pos, seq.Record, bool) {
	for c.pos <= c.end {
		p := c.pos
		c.pos++
		// Dense versions have bounded spans at construction.
		pi := int((p - c.s.v.span.Start) / int64(c.s.rpp)) //seqvet:ignore spanarith bounded dense span
		if pi != c.page {
			c.page = pi
			c.s.stats.SeqPages.Add(1)
		}
		pg := c.s.v.pages[pi]
		if r := pg.slots[p-pg.first]; r != nil {
			c.s.stats.SeqRecords.Add(1)
			return p, r, true
		}
	}
	return 0, nil, false
}

func (c *snapDenseCursor) Err() error   { return nil }
func (c *snapDenseCursor) Close() error { return nil }
