package storage

import (
	"strings"
	"testing"

	"repro/internal/seq"
)

func replaceSchema(t *testing.T) *seq.Schema {
	t.Helper()
	s, err := seq.NewSchema(seq.Field{Name: "v", Type: seq.TInt})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func replaceEntries(lo, hi int) []seq.Entry {
	var out []seq.Entry
	for p := lo; p <= hi; p++ {
		out = append(out, seq.Entry{Pos: seq.Pos(p), Rec: seq.Record{seq.Int(int64(p))}})
	}
	return out
}

func buildKind(schema *seq.Schema, entries []seq.Entry, span seq.Span, kind Kind) (Store, error) {
	if kind == KindDense {
		return NewDense(schema, entries, span, 0)
	}
	return NewSparse(schema, entries, span, 0)
}

// scanAll collects a store's full content.
func scanAll(t *testing.T, s Store) []seq.Entry {
	t.Helper()
	got, err := seq.Collect(s.Scan(s.Info().Span))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestReplaceRegion(t *testing.T) {
	schema := replaceSchema(t)
	fresh := []seq.Entry{
		{Pos: 5, Rec: seq.Record{seq.Int(-5)}},
		{Pos: 7, Rec: seq.Record{seq.Int(-7)}},
	}
	for _, kind := range []Kind{KindSparse, KindDense} {
		old, err := buildKind(schema, replaceEntries(1, 10), seq.NewSpan(1, 10), kind)
		if err != nil {
			t.Fatal(err)
		}
		// Replace [4,8] (5 old records) with records at 5 and 7 only.
		got, ok, err := Replace(old, seq.NewSpan(4, 8), fresh)
		if err != nil || !ok {
			t.Fatalf("%v: Replace = ok %v, err %v", kind, ok, err)
		}
		entries := scanAll(t, got)
		wantPos := []seq.Pos{1, 2, 3, 5, 7, 9, 10}
		if len(entries) != len(wantPos) {
			t.Fatalf("%v: replaced content %v, want positions %v", kind, entries, wantPos)
		}
		for i, e := range entries {
			if e.Pos != wantPos[i] {
				t.Fatalf("%v: entry %d at %d, want %d", kind, i, e.Pos, wantPos[i])
			}
			want := seq.Int(int64(e.Pos))
			if e.Pos == 5 || e.Pos == 7 {
				want = seq.Int(-int64(e.Pos))
			}
			if e.Rec[0] != want {
				t.Fatalf("%v: entry at %d = %v, want %v", kind, e.Pos, e.Rec[0], want)
			}
		}
		// Copy-on-write: the old store is untouched.
		if n := len(scanAll(t, old)); n != 10 {
			t.Fatalf("%v: original store mutated, %d entries", kind, n)
		}
		// An empty replacement clears the region.
		cleared, ok, err := Replace(old, seq.NewSpan(4, 8), nil)
		if err != nil || !ok {
			t.Fatalf("%v: clearing Replace = ok %v, err %v", kind, ok, err)
		}
		if n := len(scanAll(t, cleared)); n != 5 {
			t.Fatalf("%v: cleared content has %d entries, want 5", kind, n)
		}
	}
}

func TestReplaceRejectsBadFresh(t *testing.T) {
	schema := replaceSchema(t)
	old, err := buildKind(schema, replaceEntries(1, 10), seq.NewSpan(1, 10), KindSparse)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		hit   seq.Span
		fresh []seq.Entry
		want  string
	}{
		{"outside region", seq.NewSpan(4, 8), replaceEntries(9, 9), "outside region"},
		{"unordered", seq.NewSpan(4, 8),
			[]seq.Entry{{Pos: 7, Rec: seq.Record{seq.Int(7)}}, {Pos: 5, Rec: seq.Record{seq.Int(5)}}},
			"not strictly ordered"},
		{"null record", seq.NewSpan(4, 8), []seq.Entry{{Pos: 5}}, "Null replacement"},
		{"wrong schema", seq.NewSpan(4, 8),
			[]seq.Entry{{Pos: 5, Rec: seq.Record{seq.Str("x")}}}, "does not conform"},
	}
	for _, tc := range cases {
		_, _, err := Replace(old, tc.hit, tc.fresh)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}
