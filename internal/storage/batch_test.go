package storage

import (
	"testing"

	"repro/internal/seq"
)

// drainBatches consumes a batch cursor and returns the valid positions.
func drainBatches(t *testing.T, cur seq.BatchCursor) []seq.Pos {
	t.Helper()
	defer cur.Close()
	var out []seq.Pos
	for {
		b, ok := cur.NextBatch()
		if !ok {
			break
		}
		for i := 0; i < b.Rows(); i++ {
			if b.Valid.Get(i) {
				out = append(out, b.Pos[i])
			}
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// checkBatchStatsParity scans the store through both planes over the
// same span and requires identical positions AND identical page/record
// accounting: the batch cursors flush their locally accumulated
// counters batch by batch, but the totals must be position-for-position
// what the scalar cursor would have charged.
func checkBatchStatsParity(t *testing.T, st Store, span seq.Span, size int) {
	t.Helper()
	st.Stats().Reset()
	want := scanPositions(t, st, span)
	scalarDelta := st.Stats().SnapshotAndReset()

	bs, ok := st.(seq.BatchScanner)
	if !ok {
		t.Fatalf("%T does not implement seq.BatchScanner", st)
	}
	ctx := seq.NewBatchCtx()
	ctx.Size = size
	got := drainBatches(t, bs.ScanBatches(span, ctx))
	batchDelta := st.Stats().SnapshotAndReset()

	if !eqPos(got, want) {
		t.Fatalf("span %v size %d: batch positions %v, scalar %v", span, size, got, want)
	}
	if scalarDelta != batchDelta {
		t.Fatalf("span %v size %d: batch accounting %+v, scalar %+v", span, size, batchDelta, scalarDelta)
	}
}

func TestDenseBatchScanStatsParity(t *testing.T) {
	d, err := NewDense(closeSchema, mkEntries(1, 3, 5, 6, 8, 9, 12), seq.EmptySpan, 2)
	if err != nil {
		t.Fatal(err)
	}
	spans := []seq.Span{
		seq.NewSpan(-5, 20), // superset: dense narrows at open
		seq.NewSpan(1, 12),  // exact
		seq.NewSpan(4, 9),   // interior, starts on an empty slot
		seq.NewSpan(6, 6),   // single position
		seq.NewSpan(13, 20), // entirely past the data
	}
	for _, span := range spans {
		for _, size := range []int{1, 2, 3, 4096} {
			checkBatchStatsParity(t, d, span, size)
		}
	}
}

func TestSparseBatchScanStatsParity(t *testing.T) {
	s, err := NewSparse(closeSchema, mkEntries(1, 3, 5, 6, 8, 9, 12, 20, 21, 30), seq.EmptySpan, 2)
	if err != nil {
		t.Fatal(err)
	}
	spans := []seq.Span{
		seq.NewSpan(-5, 40), // full range from before the first record
		seq.NewSpan(1, 30),  // exact
		seq.NewSpan(5, 21),  // mid-span start: charges the binary-search probe
		seq.NewSpan(7, 7),   // misses every record
		seq.NewSpan(31, 40), // past the data
	}
	for _, span := range spans {
		for _, size := range []int{1, 2, 4, 4096} {
			checkBatchStatsParity(t, s, span, size)
		}
	}
}

func TestSparseBatchMidSpanChargesProbe(t *testing.T) {
	s, err := NewSparse(closeSchema, mkEntries(1, 3, 5, 6, 8, 9, 12, 20, 21, 30), seq.EmptySpan, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Stats().Reset()
	ctx := seq.NewBatchCtx()
	drainBatches(t, s.ScanBatches(seq.NewSpan(10, 30), ctx))
	d := s.Stats().SnapshotAndReset()
	if d.RandPages == 0 {
		t.Error("mid-span batch scan charged no random pages for the seek")
	}
	// A scan from the very start performs no seek.
	drainBatches(t, s.ScanBatches(seq.NewSpan(-5, 30), ctx))
	d = s.Stats().SnapshotAndReset()
	if d.RandPages != 0 {
		t.Errorf("from-start batch scan charged %d random pages", d.RandPages)
	}
}

// TestMeteredBatchDelegation checks both metered paths: a batch-capable
// inner store is scanned natively with the consumer credited per batch,
// and the credited deltas equal what the scalar metered scan charges.
func TestMeteredBatchDelegation(t *testing.T) {
	for _, kind := range []Kind{KindSparse, KindDense} {
		m, err := seq.NewMaterialized(closeSchema, mkEntries(1, 3, 5, 6, 8, 9, 12))
		if err != nil {
			t.Fatal(err)
		}
		st, err := FromMaterialized(m, kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		span := seq.NewSpan(1, 12)

		consumer := &Stats{}
		wrapped := Metered(st, consumer)
		want := scanPositions(t, wrapped, span)
		scalarDelta := consumer.SnapshotAndReset()

		bs, ok := wrapped.(seq.BatchScanner)
		if !ok {
			t.Fatalf("metered %v store does not implement seq.BatchScanner", kind)
		}
		ctx := seq.NewBatchCtx()
		ctx.Size = 3
		got := drainBatches(t, bs.ScanBatches(span, ctx))
		batchDelta := consumer.SnapshotAndReset()

		if !eqPos(got, want) {
			t.Fatalf("%v: metered batch positions %v, scalar %v", kind, got, want)
		}
		if scalarDelta != batchDelta {
			t.Fatalf("%v: metered batch credited %+v, scalar %+v", kind, batchDelta, scalarDelta)
		}
		if batchDelta.SeqRecords == 0 {
			t.Fatalf("%v: metered batch scan credited no records", kind)
		}
	}
}

// TestMeteredBatchAdapterFallback routes a non-batch-capable inner
// store (an MVCC snapshot) through the metered wrapper's adapter path
// and checks the per-record crediting still matches the scalar scan.
func TestMeteredBatchAdapterFallback(t *testing.T) {
	m, err := seq.NewMaterialized(closeSchema, mkEntries(1, 3, 5, 6, 8))
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVersioned(m, KindSparse, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := v.Latest()
	if _, ok := interface{}(snap).(seq.BatchScanner); ok {
		t.Fatal("MVCC snapshots are expected to stay on the adapter path")
	}
	span := seq.NewSpan(1, 8)

	consumer := &Stats{}
	wrapped := Metered(snap, consumer)
	want := scanPositions(t, wrapped, span)
	scalarDelta := consumer.SnapshotAndReset()

	bs, ok := wrapped.(seq.BatchScanner)
	if !ok {
		t.Fatal("metered wrapper lost its batch interface")
	}
	ctx := seq.NewBatchCtx()
	ctx.Size = 2
	got := drainBatches(t, bs.ScanBatches(span, ctx))
	batchDelta := consumer.SnapshotAndReset()

	if !eqPos(got, want) {
		t.Fatalf("adapter batch positions %v, scalar %v", got, want)
	}
	if scalarDelta != batchDelta {
		t.Fatalf("adapter batch credited %+v, scalar %+v", batchDelta, scalarDelta)
	}
}

// TestBatchCounterFlushGranularity pins the optimization the batch
// cursors exist for: a multi-batch dense scan performs one atomic Add
// per counter per batch, not per record — observable as the counters
// only ever advancing in batch-sized strides. We approximate this by
// snapshotting between NextBatch calls.
func TestBatchCounterFlushGranularity(t *testing.T) {
	d, err := NewDense(closeSchema, mkEntries(1, 2, 3, 4, 5, 6, 7, 8), seq.EmptySpan, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Stats().Reset()
	ctx := seq.NewBatchCtx()
	ctx.Size = 4
	cur := d.ScanBatches(seq.NewSpan(1, 8), ctx)
	defer cur.Close()
	prev := d.Stats().Snapshot()
	for {
		b, ok := cur.NextBatch()
		if !ok {
			break
		}
		now := d.Stats().Snapshot()
		delta := now.Sub(prev)
		if delta.SeqRecords != int64(b.ValidRows()) {
			t.Fatalf("batch of %d rows flushed %d record counts", b.ValidRows(), delta.SeqRecords)
		}
		prev = now
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
}
