package storage

import (
	"sync"
	"testing"

	"repro/internal/seq"
)

func raceStore(t *testing.T, kind Kind) Store {
	t.Helper()
	schema := seq.MustSchema(seq.Field{Name: "v", Type: seq.TInt})
	var entries []seq.Entry
	for p := seq.Pos(1); p <= 512; p++ {
		entries = append(entries, seq.Entry{Pos: p, Rec: seq.Record{seq.Int(int64(p))}})
	}
	m := seq.MustMaterialized(schema, entries)
	st, err := FromMaterialized(m, kind, 16)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStatsConcurrentScanSnapshotReset exercises the documented
// concurrency contract of Stats under the race detector: scans, probes,
// snapshots and resets may all race, every counter update stays atomic,
// and no snapshot ever observes a torn (negative or wildly out-of-range)
// counter value.
func TestStatsConcurrentScanSnapshotReset(t *testing.T) {
	for _, kind := range []Kind{KindDense, KindSparse} {
		t.Run(kind.String(), func(t *testing.T) {
			st := raceStore(t, kind)
			const rounds = 200
			var wg sync.WaitGroup
			wg.Add(3)
			go func() { // scanner
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					cur := st.Scan(seq.AllSpan)
					for {
						if _, _, ok := cur.Next(); !ok {
							break
						}
					}
					cur.Close()
				}
			}()
			go func() { // prober
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					if _, err := st.Probe(seq.Pos(i%512) + 1); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			go func() { // snapshotter + resetter
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					snap := st.Stats().Snapshot()
					if snap.SeqPages < 0 || snap.RandPages < 0 ||
						snap.SeqRecords < 0 || snap.ProbeRecords < 0 {
						t.Errorf("torn snapshot: %+v", snap)
						return
					}
					if i%10 == 0 {
						st.Stats().Reset()
					}
				}
			}()
			wg.Wait()
		})
	}
}

// TestMeteredAttribution checks that a Metered wrapper credits exactly
// the shared-counter movement of its own accesses to the consumer block.
func TestMeteredAttribution(t *testing.T) {
	for _, kind := range []Kind{KindDense, KindSparse} {
		t.Run(kind.String(), func(t *testing.T) {
			st := raceStore(t, kind)
			consumer := &Stats{}
			mst := Metered(st, consumer)
			before := st.Stats().Snapshot()

			cur := mst.Scan(seq.NewSpan(100, 400))
			rows := 0
			for {
				if _, _, ok := cur.Next(); !ok {
					break
				}
				rows++
			}
			cur.Close()
			for p := seq.Pos(1); p <= 50; p++ {
				if _, err := mst.Probe(p * 7); err != nil {
					t.Fatal(err)
				}
			}

			delta := st.Stats().Snapshot().Sub(before)
			got := consumer.Snapshot()
			if got != delta {
				t.Fatalf("consumer %+v != shared delta %+v", got, delta)
			}
			if rows != 301 {
				t.Fatalf("scan returned %d rows, want 301", rows)
			}
			if got.SeqRecords != 301 || got.ProbeRecords != 50 {
				t.Fatalf("unexpected record counters: %+v", got)
			}
		})
	}
}
