// Package storage implements the physical representations of base
// sequences together with explicit access-cost accounting.
//
// The paper's cost model (§4.1.1) prices a base sequence by the number of
// pages touched and the kind of access: a *stream* access reads pages
// sequentially, a *probed* access fetches the page holding one position
// (random I/O). This package keeps everything in memory — the substitution
// for disk I/O documented in DESIGN.md — but counts page touches exactly
// as a disk-resident store would incur them, so the optimizer's stream
// vs. probe trade-offs and the span-restriction savings remain observable.
//
// Two representations are provided:
//
//   - Dense: an array of pages over the valid range with a validity
//     bitmap; probing is a single page touch (records are addressable by
//     position directly).
//   - Sparse: sorted runs of (position, record) entries packed into pages,
//     with a binary-search index; probing touches ~log2(pages) pages,
//     modeling a B-tree descent on an unclustered position index.
package storage

import (
	"fmt"
	"sync/atomic"

	"repro/internal/seq"
)

// Stats counts page and record accesses, split by access mode. All
// counters are cumulative; use Snapshot/Reset around a measured region.
// Counters are updated atomically so concurrent scans may share a Stats.
//
// Snapshot and Reset are atomic per counter but not atomic as a unit: a
// Snapshot concurrent with a Reset (or with in-flight accesses) may
// observe some counters already zeroed and others not. Callers that need
// a consistent measured region must quiesce accessors around the
// Reset/Snapshot pair; the individual counters never tear.
type Stats struct {
	SeqPages     atomic.Int64 // pages touched by stream (sequential) access
	RandPages    atomic.Int64 // pages touched by probed (random) access
	SeqRecords   atomic.Int64 // records delivered by stream access
	ProbeRecords atomic.Int64 // probe operations performed
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		SeqPages:     s.SeqPages.Load(),
		RandPages:    s.RandPages.Load(),
		SeqRecords:   s.SeqRecords.Load(),
		ProbeRecords: s.ProbeRecords.Load(),
	}
}

// Reset zeroes all counters. Each store is an atomic write, so Reset is
// safe to call while scans run, but counters accumulated by accesses
// that race with the Reset may land on either side of it; see the Stats
// comment for the consistency contract.
func (s *Stats) Reset() {
	s.SeqPages.Store(0)
	s.RandPages.Store(0)
	s.SeqRecords.Store(0)
	s.ProbeRecords.Store(0)
}

// StatsSnapshot is an immutable copy of Stats counters.
type StatsSnapshot struct {
	SeqPages     int64
	RandPages    int64
	SeqRecords   int64
	ProbeRecords int64
}

// Sub returns the counter deltas s - o.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		SeqPages:     s.SeqPages - o.SeqPages,
		RandPages:    s.RandPages - o.RandPages,
		SeqRecords:   s.SeqRecords - o.SeqRecords,
		ProbeRecords: s.ProbeRecords - o.ProbeRecords,
	}
}

// Add returns the element-wise sum s + o.
func (s StatsSnapshot) Add(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		SeqPages:     s.SeqPages + o.SeqPages,
		RandPages:    s.RandPages + o.RandPages,
		SeqRecords:   s.SeqRecords + o.SeqRecords,
		ProbeRecords: s.ProbeRecords + o.ProbeRecords,
	}
}

// Pages returns the total pages touched in either mode.
func (s StatsSnapshot) Pages() int64 { return s.SeqPages + s.RandPages }

// String renders the snapshot compactly.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("seqPages=%d randPages=%d seqRecs=%d probes=%d",
		s.SeqPages, s.RandPages, s.SeqRecords, s.ProbeRecords)
}

// Store is a base-sequence store: a Sequence whose accesses are metered.
type Store interface {
	seq.Sequence
	// Stats returns the store's counter block (shared, live).
	Stats() *Stats
	// AccessCosts describes the store to the optimizer: the number of
	// pages a full stream scan of the valid range touches, and the number
	// of page touches a single probe costs.
	AccessCosts() AccessCosts
}

// AccessCosts is the per-store input to the optimizer's cost model
// (§4.1.1). StreamPages is the page count of a full scan of the valid
// range; ProbePages is the pages touched per single-position probe.
type AccessCosts struct {
	StreamPages    int64
	ProbePages     int64
	RecordsPerPage int
}

// DefaultRecordsPerPage is used when a store is built without an explicit
// page capacity. It corresponds loosely to 8 KiB pages of ~100-byte
// records.
const DefaultRecordsPerPage = 64
