// Package storage implements the physical representations of base
// sequences together with explicit access-cost accounting.
//
// The paper's cost model (§4.1.1) prices a base sequence by the number of
// pages touched and the kind of access: a *stream* access reads pages
// sequentially, a *probed* access fetches the page holding one position
// (random I/O). This package keeps everything in memory — the substitution
// for disk I/O documented in DESIGN.md — but counts page touches exactly
// as a disk-resident store would incur them, so the optimizer's stream
// vs. probe trade-offs and the span-restriction savings remain observable.
//
// Two representations are provided:
//
//   - Dense: an array of pages over the valid range with a validity
//     bitmap; probing is a single page touch (records are addressable by
//     position directly).
//   - Sparse: sorted runs of (position, record) entries packed into pages,
//     with a binary-search index; probing touches ~log2(pages) pages,
//     modeling a B-tree descent on an unclustered position index.
package storage

import (
	"fmt"
	"sync/atomic"

	"repro/internal/seq"
)

// Stats counts page and record accesses, split by access mode, plus the
// buffer-pool traffic behind them when the store is disk-backed. All
// counters are cumulative; use SnapshotAndReset (or Snapshot/Reset with
// the caveat below) around a measured region. Counters are updated
// atomically so concurrent scans may share a Stats.
//
// Consistency contract: Snapshot and Reset are atomic per counter but
// not atomic as a unit. A Snapshot concurrent with a Reset (or with
// in-flight accesses) may observe some counters already zeroed and
// others not, and a Reset racing in-flight accesses may drop or double
// the racing increments across the boundary. Callers that need a
// consistent measured region must quiesce accessors around the
// Reset/Snapshot pair — or use SnapshotAndReset, which swaps each
// counter exactly once so no increment is ever lost or double-counted
// even under concurrent accessors (each lands either in the returned
// snapshot or in the next region, never both and never neither). The
// individual counters never tear in any case.
//
// The pool counters (PoolHits … DirtyWrites) stay zero for the
// memory-backed stores; the disk buffer pool credits them alongside the
// page touches so EXPLAIN ANALYZE can attribute real I/O per plan node.
type Stats struct {
	SeqPages     atomic.Int64 // pages touched by stream (sequential) access
	RandPages    atomic.Int64 // pages touched by probed (random) access
	SeqRecords   atomic.Int64 // records delivered by stream access
	ProbeRecords atomic.Int64 // probe operations performed

	PoolHits      atomic.Int64 // buffer-pool lookups served from memory
	PoolMisses    atomic.Int64 // buffer-pool lookups that read the page file
	PoolEvictions atomic.Int64 // frames evicted to make room for this consumer
	DirtyWrites   atomic.Int64 // dirty frames written back on behalf of this consumer
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		SeqPages:     s.SeqPages.Load(),
		RandPages:    s.RandPages.Load(),
		SeqRecords:   s.SeqRecords.Load(),
		ProbeRecords: s.ProbeRecords.Load(),

		PoolHits:      s.PoolHits.Load(),
		PoolMisses:    s.PoolMisses.Load(),
		PoolEvictions: s.PoolEvictions.Load(),
		DirtyWrites:   s.DirtyWrites.Load(),
	}
}

// Reset zeroes all counters. Each store is an atomic write, so Reset is
// safe to call while scans run, but counters accumulated by accesses
// that race with the Reset may land on either side of it; see the Stats
// comment for the consistency contract. Measured regions should prefer
// SnapshotAndReset.
func (s *Stats) Reset() {
	s.SeqPages.Store(0)
	s.RandPages.Store(0)
	s.SeqRecords.Store(0)
	s.ProbeRecords.Store(0)

	s.PoolHits.Store(0)
	s.PoolMisses.Store(0)
	s.PoolEvictions.Store(0)
	s.DirtyWrites.Store(0)
}

// SnapshotAndReset atomically swaps every counter to zero and returns
// the values it held: the quiesced form of the Snapshot-then-Reset
// pair. Each counter is read-and-zeroed in a single atomic swap, so an
// increment racing the call lands either in the returned snapshot or in
// the counters afterwards — never in both, never in neither. The
// snapshot is still not a point-in-time cut across counters (an access
// in flight during the call may split its page and record increments
// across the boundary), but no counts are lost, which is the property
// measured regions actually need.
func (s *Stats) SnapshotAndReset() StatsSnapshot {
	return StatsSnapshot{
		SeqPages:     s.SeqPages.Swap(0),
		RandPages:    s.RandPages.Swap(0),
		SeqRecords:   s.SeqRecords.Swap(0),
		ProbeRecords: s.ProbeRecords.Swap(0),

		PoolHits:      s.PoolHits.Swap(0),
		PoolMisses:    s.PoolMisses.Swap(0),
		PoolEvictions: s.PoolEvictions.Swap(0),
		DirtyWrites:   s.DirtyWrites.Swap(0),
	}
}

// StatsSnapshot is an immutable copy of Stats counters.
type StatsSnapshot struct {
	SeqPages     int64
	RandPages    int64
	SeqRecords   int64
	ProbeRecords int64

	PoolHits      int64
	PoolMisses    int64
	PoolEvictions int64
	DirtyWrites   int64
}

// Sub returns the counter deltas s - o.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		SeqPages:     s.SeqPages - o.SeqPages,
		RandPages:    s.RandPages - o.RandPages,
		SeqRecords:   s.SeqRecords - o.SeqRecords,
		ProbeRecords: s.ProbeRecords - o.ProbeRecords,

		PoolHits:      s.PoolHits - o.PoolHits,
		PoolMisses:    s.PoolMisses - o.PoolMisses,
		PoolEvictions: s.PoolEvictions - o.PoolEvictions,
		DirtyWrites:   s.DirtyWrites - o.DirtyWrites,
	}
}

// Add returns the element-wise sum s + o.
func (s StatsSnapshot) Add(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		SeqPages:     s.SeqPages + o.SeqPages,
		RandPages:    s.RandPages + o.RandPages,
		SeqRecords:   s.SeqRecords + o.SeqRecords,
		ProbeRecords: s.ProbeRecords + o.ProbeRecords,

		PoolHits:      s.PoolHits + o.PoolHits,
		PoolMisses:    s.PoolMisses + o.PoolMisses,
		PoolEvictions: s.PoolEvictions + o.PoolEvictions,
		DirtyWrites:   s.DirtyWrites + o.DirtyWrites,
	}
}

// Pages returns the total pages touched in either mode.
func (s StatsSnapshot) Pages() int64 { return s.SeqPages + s.RandPages }

// HasPool reports whether any buffer-pool counter is nonzero — true only
// for regions that touched a disk-backed store.
func (s StatsSnapshot) HasPool() bool {
	return s.PoolHits != 0 || s.PoolMisses != 0 || s.PoolEvictions != 0 || s.DirtyWrites != 0
}

// String renders the snapshot compactly. The buffer-pool section is
// appended only when a pool was involved, so memory-backed renderings
// (and the golden outputs built on them) are unchanged.
func (s StatsSnapshot) String() string {
	base := fmt.Sprintf("seqPages=%d randPages=%d seqRecs=%d probes=%d",
		s.SeqPages, s.RandPages, s.SeqRecords, s.ProbeRecords)
	if !s.HasPool() {
		return base
	}
	return base + fmt.Sprintf(" poolHits=%d poolMisses=%d evictions=%d dirtyWrites=%d",
		s.PoolHits, s.PoolMisses, s.PoolEvictions, s.DirtyWrites)
}

// Store is a base-sequence store: a Sequence whose accesses are metered.
type Store interface {
	seq.Sequence
	// Stats returns the store's counter block (shared, live).
	Stats() *Stats
	// AccessCosts describes the store to the optimizer: the number of
	// pages a full stream scan of the valid range touches, and the number
	// of page touches a single probe costs.
	AccessCosts() AccessCosts
}

// AccessCosts is the per-store input to the optimizer's cost model
// (§4.1.1). StreamPages is the page count of a full scan of the valid
// range; ProbePages is the pages touched per single-position probe.
type AccessCosts struct {
	StreamPages    int64
	ProbePages     int64
	RecordsPerPage int
}

// SeqSnapshot is an immutable, epoch-pinned view of one version of a
// multi-version store: what a reader evaluates against. Both the
// memory-backed *Snapshot and the disk-backed store's snapshots satisfy
// it, so the server's read path is representation-agnostic. The planlint
// snapshot/* invariants need only SnapshotEpoch (checked structurally);
// the rest is what the server's catalog and describe paths consume.
type SeqSnapshot interface {
	Store
	// SnapshotEpoch is the reader epoch the snapshot is pinned at.
	SnapshotEpoch() int64
	// VersionEpoch is the epoch of the underlying version (the last
	// write visible in this snapshot); always ≤ SnapshotEpoch.
	VersionEpoch() int64
	// Kind is the snapshot's physical representation.
	Kind() Kind
	// Count is the number of non-Null records.
	Count() int
}

// DefaultRecordsPerPage is used when a store is built without an explicit
// page capacity. It corresponds loosely to 8 KiB pages of ~100-byte
// records.
const DefaultRecordsPerPage = 64
