package storage

// StatsForker is implemented by stores that can produce a read view of
// themselves whose accesses count into a private Stats block instead of
// the shared one. Forks exist for concurrent attribution: the Metered
// wrapper attributes pages by delta-snapshotting its store's counters
// around each access, which is exact only while accesses through those
// counters are serialized. A parallel run gives each worker a fork, so
// every worker's deltas move over counters only that worker touches.
//
// A fork shares the underlying data (reads remain safe concurrently) but
// none of the accesses it serves reach the shared counters; callers that
// need the shared totals to stay authoritative must fold each fork's
// Stats back into the shared block when the worker completes (see
// Stats.AddSnapshot).
type StatsForker interface {
	Store
	// Fork returns a view of the store counting into stats.
	Fork(stats *Stats) Store
}

// AddSnapshot folds a snapshot's counts into the live counters — the
// merge step that re-credits a completed worker fork's accesses to the
// shared store statistics.
func (s *Stats) AddSnapshot(d StatsSnapshot) {
	if d.SeqPages != 0 {
		s.SeqPages.Add(d.SeqPages)
	}
	if d.RandPages != 0 {
		s.RandPages.Add(d.RandPages)
	}
	if d.SeqRecords != 0 {
		s.SeqRecords.Add(d.SeqRecords)
	}
	if d.ProbeRecords != 0 {
		s.ProbeRecords.Add(d.ProbeRecords)
	}
	if d.PoolHits != 0 {
		s.PoolHits.Add(d.PoolHits)
	}
	if d.PoolMisses != 0 {
		s.PoolMisses.Add(d.PoolMisses)
	}
	if d.PoolEvictions != 0 {
		s.PoolEvictions.Add(d.PoolEvictions)
	}
	if d.DirtyWrites != 0 {
		s.DirtyWrites.Add(d.DirtyWrites)
	}
}

// Fork implements StatsForker: a shallow view over the same pages and
// records, counting into stats.
func (d *Dense) Fork(stats *Stats) Store {
	cp := *d
	cp.stats = stats
	return &cp
}

// Fork implements StatsForker: a shallow view over the same entries,
// counting into stats.
func (s *Sparse) Fork(stats *Stats) Store {
	cp := *s
	cp.stats = stats
	return &cp
}
