package storage

import (
	"fmt"

	"repro/internal/seq"
)

// Replace builds a new store whose content equals old everywhere except
// inside hit, where it is exactly fresh. It is the write path of view
// stitching: maintenance re-evaluates only the delta halo, and splicing
// the result must not cost a full rebuild. Unchanged storage is copied
// flat — Dense slots and Sparse entries are position-validated already,
// so only the fresh records are checked — making a replacement O(store)
// in memcpy plus O(|fresh|) in validation instead of O(store) in
// re-validation, sorting, and page packing. The copy leaves old
// untouched: pinned readers of the previous generation keep a consistent
// store.
//
// The second return is false when the store kind has no flat replacement
// path (callers fall back to rebuilding).
func Replace(old Store, hit seq.Span, fresh []seq.Entry) (Store, bool, error) {
	if err := checkFresh(old.Info().Schema, hit, fresh); err != nil {
		return nil, false, err
	}
	switch s := old.(type) {
	case *Dense:
		return replaceDense(s, hit, fresh)
	case *Sparse:
		return replaceSparse(s, hit, fresh)
	}
	return nil, false, nil
}

// checkFresh validates the replacement region: entries strictly ordered,
// inside hit, non-Null, and conforming. O(|fresh|).
func checkFresh(schema *seq.Schema, hit seq.Span, fresh []seq.Entry) error {
	for i, e := range fresh {
		if e.Pos < hit.Start || e.Pos > hit.End {
			return fmt.Errorf("storage: replacement entry at %d outside region %v", e.Pos, hit)
		}
		if i > 0 && e.Pos <= fresh[i-1].Pos {
			return fmt.Errorf("storage: replacement entries not strictly ordered at %d", e.Pos)
		}
		if e.Rec.IsNull() {
			return fmt.Errorf("storage: Null replacement record at %d (omit the position instead)", e.Pos)
		}
		if !e.Rec.Conforms(schema) {
			return fmt.Errorf("storage: replacement record %v at %d does not conform to %v", e.Rec, e.Pos, schema)
		}
	}
	return nil
}

func replaceDense(d *Dense, hit seq.Span, fresh []seq.Entry) (Store, bool, error) {
	recs := make([]seq.Record, len(d.recs))
	copy(recs, d.recs)
	count := d.count
	if !d.span.Bounded() {
		// An empty dense store (the only unbounded-span case NewDense
		// admits) has nothing to clear and no slot for fresh records.
		if len(fresh) > 0 {
			return nil, false, fmt.Errorf("storage: replacement entries for an empty dense store")
		}
		return &Dense{schema: d.schema, span: d.span, recs: recs, count: count, rpp: d.rpp, stats: &Stats{}}, true, nil
	}
	// An empty intersection leaves the clearing loop body unreached.
	region := hit.Intersect(d.span)
	for p := region.Start; p <= region.End; p++ {
		slot := p - d.span.Start
		if recs[slot] != nil {
			count--
			recs[slot] = nil
		}
	}
	for _, e := range fresh {
		if e.Pos < d.span.Start || e.Pos > d.span.End {
			return nil, false, fmt.Errorf("storage: replacement entry at %d outside store span %v", e.Pos, d.span)
		}
		recs[e.Pos-d.span.Start] = e.Rec
		count++
	}
	return &Dense{schema: d.schema, span: d.span, recs: recs, count: count, rpp: d.rpp, stats: &Stats{}}, true, nil
}

func replaceSparse(s *Sparse, hit seq.Span, fresh []seq.Entry) (Store, bool, error) {
	for _, e := range fresh {
		if e.Pos < s.span.Start || e.Pos > s.span.End {
			return nil, false, fmt.Errorf("storage: replacement entry at %d outside store span %v", e.Pos, s.span)
		}
	}
	// Binary-search the cut points: entries[:lo] precede hit,
	// entries[hi:] follow it.
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.entries[mid].Pos < hit.Start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cut := lo
	lo, hi = cut, len(s.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.entries[mid].Pos <= hit.End {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	merged := make([]seq.Entry, 0, cut+len(fresh)+len(s.entries)-lo)
	merged = append(merged, s.entries[:cut]...)
	merged = append(merged, fresh...)
	merged = append(merged, s.entries[lo:]...)
	return &Sparse{schema: s.schema, span: s.span, entries: merged, rpp: s.rpp, stats: &Stats{}}, true, nil
}
