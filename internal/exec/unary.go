package exec

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/expr"
	"repro/internal/seq"
)

// SelectOp filters records by a predicate. Unit scope: no cache.
type SelectOp struct {
	In   Plan
	Pred expr.Expr

	// pe is the batch-mode predicate evaluator, compiled on first use
	// and reused across runs. Like the other operator-resident run state
	// (e.g. ValueOffsetIncremental's cache) it makes an instance
	// single-run-at-a-time; parallel workers get fresh state via
	// ClonePlan.
	pe *predEval
}

// NewSelect builds a selection over the input plan.
func NewSelect(in Plan, pred expr.Expr) *SelectOp { return &SelectOp{In: in, Pred: pred} }

// Info implements seq.Sequence.
func (s *SelectOp) Info() seq.Info { return s.In.Info() }

// Probe implements seq.Sequence.
func (s *SelectOp) Probe(pos seq.Pos) (seq.Record, error) {
	r, err := s.In.Probe(pos)
	if err != nil || r.IsNull() {
		return nil, err
	}
	ok, err := expr.EvalPred(s.Pred, r)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return r, nil
}

// Scan implements seq.Sequence.
func (s *SelectOp) Scan(span seq.Span) seq.Cursor {
	in := s.In.Scan(span)
	return &forwardCursor{
		closes: []func() error{in.Close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			for {
				p, r, ok := in.Next()
				if !ok {
					return 0, nil, false, in.Err()
				}
				keep, err := expr.EvalPred(s.Pred, r)
				if err != nil {
					return 0, nil, false, err
				}
				if keep {
					return p, r, true, nil
				}
			}
		},
	}
}

// Label implements Plan.
func (s *SelectOp) Label() string { return "select(" + s.Pred.String() + ")" }

// Children implements Plan.
func (s *SelectOp) Children() []Plan { return []Plan{s.In} }

// Caches implements Plan.
func (s *SelectOp) Caches() []*cache.FIFO { return nil }

// ProjectOp maps records through output expressions. Unit scope.
type ProjectOp struct {
	In     Plan
	Items  []ProjExpr
	schema *seq.Schema

	// pc is the batch-mode projection program, compiled on first use and
	// reused across runs; see SelectOp.pe for the aliasing rules.
	pc *projCompiled
}

// ProjExpr is one output attribute of a physical projection.
type ProjExpr struct {
	Expr expr.Expr
	Name string
}

// NewProject builds a projection; the output schema is derived from the
// item names and expression types.
func NewProject(in Plan, items []ProjExpr) (*ProjectOp, error) {
	fields := make([]seq.Field, len(items))
	for i, it := range items {
		fields[i] = seq.Field{Name: it.Name, Type: it.Expr.Type()}
	}
	schema, err := seq.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	return &ProjectOp{In: in, Items: items, schema: schema}, nil
}

// Info implements seq.Sequence.
func (p *ProjectOp) Info() seq.Info {
	info := p.In.Info()
	info.Schema = p.schema
	return info
}

func (p *ProjectOp) apply(r seq.Record) (seq.Record, error) {
	out := make(seq.Record, len(p.Items))
	for i, it := range p.Items {
		v, err := it.Expr.Eval(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Probe implements seq.Sequence.
func (p *ProjectOp) Probe(pos seq.Pos) (seq.Record, error) {
	r, err := p.In.Probe(pos)
	if err != nil || r.IsNull() {
		return nil, err
	}
	return p.apply(r)
}

// Scan implements seq.Sequence.
func (p *ProjectOp) Scan(span seq.Span) seq.Cursor {
	in := p.In.Scan(span)
	return &forwardCursor{
		closes: []func() error{in.Close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			pos, r, ok := in.Next()
			if !ok {
				return 0, nil, false, in.Err()
			}
			out, err := p.apply(r)
			if err != nil {
				return 0, nil, false, err
			}
			return pos, out, true, nil
		},
	}
}

// Label implements Plan.
func (p *ProjectOp) Label() string {
	names := make([]string, len(p.Items))
	for i, it := range p.Items {
		names[i] = it.Name
	}
	return fmt.Sprintf("project(%v)", names)
}

// Children implements Plan.
func (p *ProjectOp) Children() []Plan { return []Plan{p.In} }

// Caches implements Plan.
func (p *ProjectOp) Caches() []*cache.FIFO { return nil }

// PosOffsetOp shifts the input: out(i) = in(i+l). In stream mode the
// effective scope is broadened to a bounded window (§3.4) — concretely,
// the operator scans the shifted range and re-addresses each record, so a
// single input scan suffices and no cache is needed at all.
type PosOffsetOp struct {
	In     Plan
	Offset int64
}

// NewPosOffset builds a positional offset.
func NewPosOffset(in Plan, offset int64) *PosOffsetOp {
	return &PosOffsetOp{In: in, Offset: offset}
}

// Info implements seq.Sequence.
func (o *PosOffsetOp) Info() seq.Info {
	info := o.In.Info()
	info.Span = info.Span.Shift(-o.Offset)
	return info
}

// Probe implements seq.Sequence.
func (o *PosOffsetOp) Probe(pos seq.Pos) (seq.Record, error) {
	p := pos + o.Offset
	if p <= seq.MinPos || p >= seq.MaxPos {
		return nil, nil
	}
	return o.In.Probe(p)
}

// Scan implements seq.Sequence.
func (o *PosOffsetOp) Scan(span seq.Span) seq.Cursor {
	in := o.In.Scan(span.Shift(o.Offset))
	return &forwardCursor{
		closes: []func() error{in.Close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			p, r, ok := in.Next()
			if !ok {
				return 0, nil, false, in.Err()
			}
			return p - o.Offset, r, true, nil
		},
	}
}

// Label implements Plan.
func (o *PosOffsetOp) Label() string { return fmt.Sprintf("offset(%+d)", o.Offset) }

// Children implements Plan.
func (o *PosOffsetOp) Children() []Plan { return []Plan{o.In} }

// Caches implements Plan.
func (o *PosOffsetOp) Caches() []*cache.FIFO { return nil }
