// Package exec implements physical query evaluation: the operator
// implementations behind query plans, in both access modes of §3.3
// (stream and probed), together with the caching strategies of §3.4–3.5.
//
// Every physical operator implements seq.Sequence — Scan is the stream
// access, Probe the probed access — so a plan is simply a tree of
// sequences, and choosing an access mode for an edge means calling Scan
// or Probe on the child. Plan nodes additionally expose a label and their
// children for EXPLAIN output, and any operator caches they own for
// cache-residency accounting (the cache-finite property of Definition
// 3.2 is checked by inspecting Peak() of every cache after a run).
package exec

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/seq"
)

// Plan is a physical operator: a sequence with explanation metadata.
type Plan interface {
	seq.Sequence
	// Label describes the operator and its strategy, e.g.
	// "compose-lockstep" or "agg-cacheA(sum,w=6)".
	Label() string
	// Children returns the plan's input operators.
	Children() []Plan
	// Caches returns the operator's own caches (not its children's).
	Caches() []*cache.FIFO
}

// Explain renders the plan tree, one operator per line.
func Explain(p Plan) string {
	var b strings.Builder
	var walk func(n Plan, depth int)
	walk = func(n Plan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return strings.TrimRight(b.String(), "\n")
}

// AllCaches collects every cache in the plan tree.
func AllCaches(p Plan) []*cache.FIFO {
	out := append([]*cache.FIFO(nil), p.Caches()...)
	for _, c := range p.Children() {
		out = append(out, AllCaches(c)...)
	}
	return out
}

// CacheBudget returns the total configured capacity of the plan's
// operator caches — the constant memory bound a stream-access evaluation
// promises (Definition 3.2: "the size of the cache at every operator is
// a constant determined independent of the actual data").
func CacheBudget(p Plan) int {
	total := 0
	for _, c := range AllCaches(p) {
		total += c.Cap()
	}
	return total
}

// PeakCacheResidency returns the total peak number of cached records
// across all operator caches of the plan — the memory bound the
// stream-access property promises to keep constant.
func PeakCacheResidency(p Plan) int {
	total := 0
	for _, c := range AllCaches(p) {
		total += c.Peak()
	}
	return total
}

// Run drains the plan in stream mode over the given bounded span and
// materializes the result. This is the Start operator of §4 (Figure 6):
// it "initiates query evaluation by invoking a stream access on its
// input".
func Run(p Plan, span seq.Span) (*seq.Materialized, error) {
	entries, err := seq.Collect(p.Scan(span))
	if err != nil {
		return nil, err
	}
	return seq.NewMaterialized(p.Info().Schema, entries)
}

// RunProbes evaluates the plan in probed mode at each given position (the
// "records at specific positions" query form of §4) and returns the
// non-Null answers.
func RunProbes(p Plan, positions []seq.Pos) ([]seq.Entry, error) {
	var out []seq.Entry
	for _, pos := range positions {
		r, err := p.Probe(pos)
		if err != nil {
			return nil, err
		}
		if !r.IsNull() {
			out = append(out, seq.Entry{Pos: pos, Rec: r.Clone()})
		}
	}
	return out, nil
}

// Leaf adapts a base sequence (typically a storage.Store) into a plan
// node, restricting every scan to the access span the top-down span pass
// derived for it (§3.2). Probes outside the access span still answer —
// restriction is an optimization, not a semantic change — but scans never
// leave the window.
type Leaf struct {
	Name       string
	Seq        seq.Sequence
	AccessSpan seq.Span
}

// NewLeaf builds a leaf over the sequence with an access-span
// restriction. Pass seq.AllSpan to leave scans unrestricted.
func NewLeaf(name string, s seq.Sequence, accessSpan seq.Span) *Leaf {
	return &Leaf{Name: name, Seq: s, AccessSpan: accessSpan}
}

// Info implements seq.Sequence.
func (l *Leaf) Info() seq.Info {
	info := l.Seq.Info()
	info.Span = info.Span.Intersect(l.AccessSpan)
	return info
}

// Scan implements seq.Sequence.
func (l *Leaf) Scan(span seq.Span) seq.Cursor {
	return l.Seq.Scan(span.Intersect(l.AccessSpan))
}

// Probe implements seq.Sequence.
func (l *Leaf) Probe(pos seq.Pos) (seq.Record, error) { return l.Seq.Probe(pos) }

// Label implements Plan.
func (l *Leaf) Label() string {
	if l.AccessSpan == seq.AllSpan {
		return fmt.Sprintf("scan(%s)", l.Name)
	}
	return fmt.Sprintf("scan(%s, span=%s)", l.Name, l.AccessSpan)
}

// Children implements Plan.
func (l *Leaf) Children() []Plan { return nil }

// Caches implements Plan.
func (l *Leaf) Caches() []*cache.FIFO { return nil }

// Rename exposes its input under a different schema (same arity and
// types, different attribute names) at zero per-record cost. The block
// optimizer uses it when a join plan's column order already matches the
// original query but the qualifier-derived names differ.
type Rename struct {
	In     Plan
	schema *seq.Schema
}

// NewRename wraps the input with the given schema; arity and types must
// match.
func NewRename(in Plan, schema *seq.Schema) (*Rename, error) {
	old := in.Info().Schema
	if old.NumFields() != schema.NumFields() {
		return nil, fmt.Errorf("exec: rename arity mismatch: %d vs %d", old.NumFields(), schema.NumFields())
	}
	for i := 0; i < old.NumFields(); i++ {
		if old.Field(i).Type != schema.Field(i).Type {
			return nil, fmt.Errorf("exec: rename type mismatch at %d: %s vs %s",
				i, old.Field(i).Type, schema.Field(i).Type)
		}
	}
	return &Rename{In: in, schema: schema}, nil
}

// Info implements seq.Sequence.
func (r *Rename) Info() seq.Info {
	info := r.In.Info()
	info.Schema = r.schema
	return info
}

// Scan implements seq.Sequence.
func (r *Rename) Scan(span seq.Span) seq.Cursor { return r.In.Scan(span) }

// Probe implements seq.Sequence.
func (r *Rename) Probe(pos seq.Pos) (seq.Record, error) { return r.In.Probe(pos) }

// Label implements Plan.
func (r *Rename) Label() string { return "rename" }

// Children implements Plan.
func (r *Rename) Children() []Plan { return []Plan{r.In} }

// Caches implements Plan.
func (r *Rename) Caches() []*cache.FIFO { return nil }

// forwardCursor adapts a Next function into a seq.Cursor.
type forwardCursor struct {
	next   func() (seq.Pos, seq.Record, bool, error)
	closes []func() error
	err    error
	done   bool
}

func (c *forwardCursor) Next() (seq.Pos, seq.Record, bool) {
	if c.done {
		return 0, nil, false
	}
	p, r, ok, err := c.next()
	if err != nil {
		c.err = err
		c.done = true
		return 0, nil, false
	}
	if !ok {
		c.done = true
		return 0, nil, false
	}
	return p, r, true
}

func (c *forwardCursor) Err() error { return c.err }

func (c *forwardCursor) Close() error {
	var first error
	for _, f := range c.closes {
		if err := f(); err != nil && first == nil {
			first = err
		}
	}
	c.closes = nil
	return first
}

// pullCursor wraps a cursor with single-entry lookahead.
type pullCursor struct {
	in      seq.Cursor
	pending seq.Entry
	have    bool
	done    bool
}

func newPull(in seq.Cursor) *pullCursor { return &pullCursor{in: in} }

// peek returns the next entry without consuming it.
func (p *pullCursor) peek() (seq.Entry, bool, error) {
	if p.have {
		return p.pending, true, nil
	}
	if p.done {
		return seq.Entry{}, false, nil
	}
	pos, rec, ok := p.in.Next()
	if !ok {
		p.done = true
		return seq.Entry{}, false, p.in.Err()
	}
	p.pending = seq.Entry{Pos: pos, Rec: rec}
	p.have = true
	return p.pending, true, nil
}

// take consumes the pending entry.
func (p *pullCursor) take() { p.have = false }

func (p *pullCursor) close() error { return p.in.Close() }
