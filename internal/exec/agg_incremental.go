package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/cache"
	"repro/internal/seq"
)

// runningAcc folds values incrementally for cumulative windows (and as
// the add-path of the sliding accumulators). It supports every aggregate
// function because records are only ever added, never removed.
type runningAcc struct {
	fn    algebra.AggFunc
	count int64
	sumI  int64
	sumF  float64
	isInt bool
	best  seq.Value
}

func newRunningAcc(fn algebra.AggFunc, isInt bool) *runningAcc {
	return &runningAcc{fn: fn, isInt: isInt}
}

func (a *runningAcc) add(v seq.Value) error {
	a.count++
	switch a.fn {
	case algebra.AggSum, algebra.AggAvg:
		if a.isInt && v.T == seq.TInt {
			a.sumI += v.AsInt()
		} else {
			a.sumF += v.AsFloat()
		}
	case algebra.AggMin, algebra.AggMax:
		if a.count == 1 {
			a.best = v
			return nil
		}
		c, err := v.Compare(a.best)
		if err != nil {
			return err
		}
		if (a.fn == algebra.AggMin && c < 0) || (a.fn == algebra.AggMax && c > 0) {
			a.best = v
		}
	}
	return nil
}

func (a *runningAcc) result() (seq.Value, bool) {
	if a.count == 0 {
		return seq.Value{}, false
	}
	switch a.fn {
	case algebra.AggCount:
		return seq.Int(a.count), true
	case algebra.AggSum:
		if a.isInt {
			return seq.Int(a.sumI), true
		}
		return seq.Float(a.sumF), true
	case algebra.AggAvg:
		s := a.sumF
		if a.isInt {
			s = float64(a.sumI)
		}
		return seq.Float(s / float64(a.count)), true
	default:
		return a.best, true
	}
}

// AggCumulative evaluates an unbounded-left window aggregate (cumulative
// or whole-prefix) with an O(1)-per-record running accumulator — the
// generalization of Cache-Strategy-B to sequential variable-size scopes:
// the previous output plus the newly arrived records determine the next
// output, so no window storage is needed at all.
type AggCumulative struct {
	In      Plan
	Spec    algebra.AggSpec
	OutSpan seq.Span
	schema  *seq.Schema
}

// NewAggCumulative builds the running aggregate. The window must be
// unbounded on the left and bounded on the right.
func NewAggCumulative(in Plan, spec algebra.AggSpec, outSpan seq.Span) (*AggCumulative, error) {
	if !spec.Window.LoUnbounded || spec.Window.HiUnbounded {
		return nil, fmt.Errorf("exec: cumulative evaluation requires a left-unbounded window, got %s", spec.Window)
	}
	schema, err := aggSchema(in, &spec)
	if err != nil {
		return nil, err
	}
	return &AggCumulative{In: in, Spec: spec, OutSpan: outSpan, schema: schema}, nil
}

// Info implements seq.Sequence.
func (a *AggCumulative) Info() seq.Info { return aggInfo(a.schema, a.OutSpan) }

// Probe implements seq.Sequence: falls back to the naive prefix probe.
func (a *AggCumulative) Probe(pos seq.Pos) (seq.Record, error) {
	n := AggNaive{In: a.In, Spec: a.Spec, OutSpan: a.OutSpan, schema: a.schema}
	return n.Probe(pos)
}

// Scan implements seq.Sequence.
func (a *AggCumulative) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(a.OutSpan)
	if span.IsEmpty() {
		return emptyCursor{}
	}
	if !span.Bounded() {
		return seq.ErrCursor(fmt.Errorf("exec: unbounded scan of aggregate (span %v)", span))
	}
	inSpan := a.In.Info().Span
	scanSpan := seq.Span{Start: inSpan.Start, End: seq.ClampPos(span.End + a.Spec.Window.Hi)}.Intersect(inSpan)
	in := newPull(a.In.Scan(scanSpan))
	isInt := a.schema.Field(0).Type == seq.TInt && a.Spec.Func == algebra.AggSum
	acc := newRunningAcc(a.Spec.Func, isInt)
	p := span.Start
	return &forwardCursor{
		closes: []func() error{in.close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			for p <= span.End {
				pos := p
				p++
				hi := seq.ClampPos(pos + a.Spec.Window.Hi)
				for {
					e, ok, err := in.peek()
					if err != nil {
						return 0, nil, false, err
					}
					if !ok || e.Pos > hi {
						break
					}
					if err := acc.add(aggArg(&a.Spec, e.Rec)); err != nil {
						return 0, nil, false, err
					}
					in.take()
				}
				if v, ok := acc.result(); ok {
					return pos, seq.Record{v}, true, nil
				}
			}
			return 0, nil, false, nil
		},
	}
}

// Label implements Plan.
func (a *AggCumulative) Label() string {
	return fmt.Sprintf("agg-running(%s over %s)", a.Spec.Func, a.Spec.Window)
}

// Children implements Plan.
func (a *AggCumulative) Children() []Plan { return []Plan{a.In} }

// Caches implements Plan.
func (a *AggCumulative) Caches() []*cache.FIFO { return nil }

// slidingAcc maintains an aggregate over a sliding window in O(1)
// amortized time per add/evict: sums by subtraction, extrema by a
// monotonic deque. This is the ablation counterpart of AggCached's
// O(w)-per-output recomputation (see DESIGN.md experiment E4).
type slidingAcc struct {
	fn    algebra.AggFunc
	isInt bool
	count int64
	sumI  int64
	sumF  float64
	vals  []seq.Entry // window entries (for subtraction)
	mono  []seq.Entry // monotonic deque for min/max
}

func (a *slidingAcc) add(pos seq.Pos, v seq.Value) error {
	a.count++
	switch a.fn {
	case algebra.AggSum, algebra.AggAvg:
		if a.isInt && v.T == seq.TInt {
			a.sumI += v.AsInt()
		} else {
			a.sumF += v.AsFloat()
		}
		a.vals = append(a.vals, seq.Entry{Pos: pos, Rec: seq.Record{v}})
	case algebra.AggCount:
		a.vals = append(a.vals, seq.Entry{Pos: pos})
	case algebra.AggMin, algebra.AggMax:
		a.vals = append(a.vals, seq.Entry{Pos: pos, Rec: seq.Record{v}})
		for len(a.mono) > 0 {
			last := a.mono[len(a.mono)-1].Rec[0]
			c, err := v.Compare(last)
			if err != nil {
				return err
			}
			if (a.fn == algebra.AggMin && c <= 0) || (a.fn == algebra.AggMax && c >= 0) {
				a.mono = a.mono[:len(a.mono)-1]
			} else {
				break
			}
		}
		a.mono = append(a.mono, seq.Entry{Pos: pos, Rec: seq.Record{v}})
	}
	return nil
}

func (a *slidingAcc) evictBelow(pos seq.Pos) {
	for len(a.vals) > 0 && a.vals[0].Pos < pos {
		e := a.vals[0]
		a.vals = a.vals[1:]
		a.count--
		switch a.fn {
		case algebra.AggSum, algebra.AggAvg:
			v := e.Rec[0]
			if a.isInt && v.T == seq.TInt {
				a.sumI -= v.AsInt()
			} else {
				a.sumF -= v.AsFloat()
			}
		}
	}
	for len(a.mono) > 0 && a.mono[0].Pos < pos {
		a.mono = a.mono[1:]
	}
}

func (a *slidingAcc) result() (seq.Value, bool) {
	if a.count == 0 {
		return seq.Value{}, false
	}
	switch a.fn {
	case algebra.AggCount:
		return seq.Int(a.count), true
	case algebra.AggSum:
		if a.isInt {
			return seq.Int(a.sumI), true
		}
		return seq.Float(a.sumF), true
	case algebra.AggAvg:
		s := a.sumF
		if a.isInt {
			s = float64(a.sumI)
		}
		return seq.Float(s / float64(a.count)), true
	default:
		return a.mono[0].Rec[0], true
	}
}

// AggSliding evaluates a bounded-window aggregate with O(1) amortized
// work per position: Cache-Strategy-A's single scan plus incremental
// accumulator maintenance instead of per-output recomputation.
type AggSliding struct {
	In      Plan
	Spec    algebra.AggSpec
	OutSpan seq.Span
	schema  *seq.Schema
}

// NewAggSliding builds the incremental sliding-window aggregate. The
// window must be bounded on both sides.
func NewAggSliding(in Plan, spec algebra.AggSpec, outSpan seq.Span) (*AggSliding, error) {
	if err := spec.Window.Validate(); err != nil {
		return nil, err
	}
	if _, fixed := spec.Window.Size(); !fixed {
		return nil, fmt.Errorf("exec: sliding evaluation requires a bounded window, got %s", spec.Window)
	}
	schema, err := aggSchema(in, &spec)
	if err != nil {
		return nil, err
	}
	return &AggSliding{In: in, Spec: spec, OutSpan: outSpan, schema: schema}, nil
}

// Info implements seq.Sequence.
func (a *AggSliding) Info() seq.Info { return aggInfo(a.schema, a.OutSpan) }

// Probe implements seq.Sequence: falls back to naive probing.
func (a *AggSliding) Probe(pos seq.Pos) (seq.Record, error) {
	n := AggNaive{In: a.In, Spec: a.Spec, OutSpan: a.OutSpan, schema: a.schema}
	return n.Probe(pos)
}

// Scan implements seq.Sequence.
func (a *AggSliding) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(a.OutSpan)
	if span.IsEmpty() {
		return emptyCursor{}
	}
	if !span.Bounded() {
		return seq.ErrCursor(fmt.Errorf("exec: unbounded scan of aggregate (span %v)", span))
	}
	w := a.Spec.Window
	inSpan := a.In.Info().Span
	scanSpan := seq.Span{
		Start: seq.ClampPos(span.Start + w.Lo),
		End:   seq.ClampPos(span.End + w.Hi),
	}.Intersect(inSpan)
	in := newPull(a.In.Scan(scanSpan))
	isInt := a.schema.Field(0).Type == seq.TInt && a.Spec.Func == algebra.AggSum
	acc := &slidingAcc{fn: a.Spec.Func, isInt: isInt}
	p := span.Start
	return &forwardCursor{
		closes: []func() error{in.close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			for p <= span.End {
				pos := p
				p++
				hi := seq.ClampPos(pos + w.Hi)
				lo := seq.ClampPos(pos + w.Lo)
				for {
					e, ok, err := in.peek()
					if err != nil {
						return 0, nil, false, err
					}
					if !ok || e.Pos > hi {
						break
					}
					if err := acc.add(e.Pos, aggArg(&a.Spec, e.Rec)); err != nil {
						return 0, nil, false, err
					}
					in.take()
				}
				acc.evictBelow(lo)
				if v, ok := acc.result(); ok {
					return pos, seq.Record{v}, true, nil
				}
			}
			return 0, nil, false, nil
		},
	}
}

// Label implements Plan.
func (a *AggSliding) Label() string {
	return fmt.Sprintf("agg-sliding(%s over %s)", a.Spec.Func, a.Spec.Window)
}

// Children implements Plan.
func (a *AggSliding) Children() []Plan { return []Plan{a.In} }

// Caches implements Plan.
func (a *AggSliding) Caches() []*cache.FIFO { return nil }
