// Vectorized (batch-at-a-time) execution. Converted operators exchange
// columnar seq.Batch values of ~1024 positions instead of one record per
// pull; operators not yet converted are bridged by an adapter that packs
// their scalar cursor into batches, so every plan runs in batch mode.
// The scalar interpreter is untouched and remains the ground truth the
// differential fuzz harness checks batch execution against.
package exec

import (
	"time"

	"repro/internal/expr"
	"repro/internal/seq"
)

// BatchMode selects the execution data plane.
type BatchMode uint8

// The batch modes. The zero value enables batching, preserving the
// "zero Options means the full pipeline" convention of internal/core.
const (
	// BatchAuto runs plans through the vectorized data plane.
	BatchAuto BatchMode = iota
	// BatchOff forces the record-at-a-time scalar interpreter.
	BatchOff
)

// Enabled reports whether the mode uses the vectorized data plane.
func (m BatchMode) Enabled() bool { return m == BatchAuto }

// String returns the mode name.
func (m BatchMode) String() string {
	if m == BatchOff {
		return "off"
	}
	return "auto"
}

// RunBatch drains the plan in batch mode over the given bounded span and
// materializes the result — the vectorized counterpart of Run. Batch
// producers emit entries in strictly ascending position order, so the
// result skips NewMaterialized's sort and is assembled with a single
// verification pass.
func RunBatch(p Plan, span seq.Span, ctx *seq.BatchCtx) (*seq.Materialized, error) {
	entries, err := CollectBatchesIn(BatchScanOf(p, span, ctx), ctx, span)
	if err != nil {
		return nil, err
	}
	return seq.FromSortedEntries(p.Info().Schema, entries)
}

// CollectBatches drains a batch cursor into entries, closing it. The
// context's run counters account the consumed batches and valid rows.
func CollectBatches(cur seq.BatchCursor, ctx *seq.BatchCtx) ([]seq.Entry, error) {
	return CollectBatchesIn(cur, ctx, seq.EmptySpan)
}

// CollectBatchesIn is CollectBatches with the scan's total span supplied
// as a sizing hint: the result slice is presized by extrapolating the
// first non-empty batch's row density across the whole span, replacing
// the append-doubling growth (and its copying) with one allocation on
// uniform outputs.
func CollectBatchesIn(cur seq.BatchCursor, ctx *seq.BatchCtx, span seq.Span) ([]seq.Entry, error) {
	defer cur.Close()
	var out []seq.Entry
	for {
		b, ok := cur.NextBatch()
		if !ok {
			break
		}
		ctx.Batches++
		valid := b.ValidRows()
		ctx.Rows += int64(valid)
		if out == nil && valid > 0 {
			est := valid
			if bl, tl := b.Span.Len(), span.Len(); bl > 0 && tl > bl {
				const maxPresize = 1 << 20 // cap a wild extrapolation at 32MB of headers
				if e := float64(valid) * float64(tl) / float64(bl); e > float64(est) {
					if e > maxPresize {
						e = maxPresize
					}
					est = int(e)
				}
			}
			out = make([]seq.Entry, 0, est)
		}
		out = b.AppendEntries(out, ctx.Intern)
	}
	return out, cur.Err()
}

// BatchScanOf opens a batch-mode stream scan on the plan. Converted
// operators run native per-column loops; everything else is bridged
// through the scalar-cursor adapter (seq.BatchCursorFrom), which keeps
// the whole operator set runnable in batch mode — the naive and
// cache-strategy ablation operators intentionally stay scalar.
func BatchScanOf(p Plan, span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	switch op := p.(type) {
	case *Metered:
		return op.BatchScan(span, ctx)
	case *Leaf:
		return op.BatchScan(span, ctx)
	case *Rename:
		// Pure metadata: the batch carries values, not names.
		return BatchScanOf(op.In, span, ctx)
	case *SelectOp:
		return op.BatchScan(span, ctx)
	case *ProjectOp:
		return op.BatchScan(span, ctx)
	case *PosOffsetOp:
		return op.BatchScan(span, ctx)
	case *ComposeOp:
		return op.BatchScan(span, ctx)
	case *Materialize:
		return op.BatchScan(span, ctx)
	case *AggSliding:
		return op.BatchScan(span, ctx)
	case *AggCumulative:
		return op.BatchScan(span, ctx)
	case *ValueOffsetIncremental:
		return op.BatchScan(span, ctx)
	default:
		return seq.BatchCursorFrom(p.Scan(span), span, p.Info().Schema, ctx)
	}
}

// BatchScan implements the leaf's batch scan: native when the base
// sequence is a seq.BatchScanner, adapted otherwise. Either way the scan
// is restricted to the access span exactly like the scalar path.
func (l *Leaf) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	eff := span.Intersect(l.AccessSpan)
	if bs, ok := l.Seq.(seq.BatchScanner); ok {
		return bs.ScanBatches(eff, ctx)
	}
	return seq.BatchCursorFrom(l.Seq.Scan(eff), eff, l.Seq.Info().Schema, ctx)
}

// BatchScan meters a batch-mode scan: scan calls and emitted rows land
// in the same counters the scalar path uses (so rows and calls stay
// comparable across modes), plus the batch-specific tallies.
func (w *Metered) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	w.M.ScanCalls++
	w.M.BatchCalls++
	start := time.Now()
	cur := BatchScanOf(w.Inner, span, ctx)
	w.M.ScanTime += time.Since(start)
	return &meteredBatchCursor{in: cur, m: w.M}
}

type meteredBatchCursor struct {
	in seq.BatchCursor
	m  *NodeMetrics
}

func (c *meteredBatchCursor) NextBatch() (*seq.Batch, bool) {
	start := time.Now()
	b, ok := c.in.NextBatch()
	c.m.ScanTime += time.Since(start)
	if ok {
		rows := int64(b.ValidRows())
		c.m.Batches++
		c.m.BatchRows += rows
		c.m.ScanRows += rows
	}
	return b, ok
}

func (c *meteredBatchCursor) Err() error   { return c.in.Err() }
func (c *meteredBatchCursor) Close() error { return c.in.Close() }

// predEval applies a boolean predicate to a batch by clearing the
// validity bits of rejected rows: vectorized when the expression
// compiles, row-at-a-time on a reused scratch record otherwise. Invalid
// rows are never evaluated on the scalar path (matching the scalar
// interpreter, which never sees filtered-out rows), and the vectorized
// subset is error-free, so evaluating everything eagerly is equivalent.
type predEval struct {
	pred    expr.Expr
	vec     *expr.VecPred
	scratch seq.Record
}

func newPredEval(pred expr.Expr, arity int) *predEval {
	pe := &predEval{pred: pred}
	if v, ok := expr.CompilePred(pred); ok {
		pe.vec = v
	} else {
		pe.scratch = make(seq.Record, arity)
	}
	return pe
}

func (pe *predEval) apply(b *seq.Batch, in *seq.Intern) error {
	if pe.vec != nil {
		mask := pe.vec.Eval(b, in)
		for i, keep := range mask {
			if !keep {
				b.Valid.Clear(i)
			}
		}
		return nil
	}
	n := b.Rows()
	for i := 0; i < n; i++ {
		if !b.Valid.Get(i) {
			continue
		}
		rec := b.RowInto(i, pe.scratch, in)
		keep, err := expr.EvalPred(pe.pred, rec)
		if err != nil {
			return err
		}
		if !keep {
			b.Valid.Clear(i)
		}
	}
	return nil
}

// BatchScan implements selection in place: the child's batch flows
// through with rejected rows' validity bits cleared — zero copies.
func (s *SelectOp) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	if s.pe == nil {
		s.pe = newPredEval(s.Pred, s.In.Info().Schema.NumFields())
	}
	return &selectBatchCursor{
		in:  BatchScanOf(s.In, span, ctx),
		pe:  s.pe,
		ctx: ctx,
	}
}

type selectBatchCursor struct {
	in  seq.BatchCursor
	pe  *predEval
	ctx *seq.BatchCtx
	err error
}

func (c *selectBatchCursor) NextBatch() (*seq.Batch, bool) {
	if c.err != nil {
		return nil, false
	}
	b, ok := c.in.NextBatch()
	if !ok {
		return nil, false
	}
	if err := c.pe.apply(b, c.ctx.Intern); err != nil {
		c.err = err
		return nil, false
	}
	return b, true
}

func (c *selectBatchCursor) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.in.Err()
}

func (c *selectBatchCursor) Close() error { return c.in.Close() }

// zeroValue returns a placeholder value of the type, used to keep
// column vectors aligned with the position vector on invalid rows.
func zeroValue(t seq.Type) seq.Value {
	switch t {
	case seq.TInt:
		return seq.Int(0)
	case seq.TFloat:
		return seq.Float(0)
	case seq.TString:
		return seq.Str("")
	default:
		return seq.Bool(false)
	}
}

// BatchScan implements projection: bare column items alias the input's
// vectors, compilable expressions run as tight per-column loops, and
// anything else falls back to row-at-a-time evaluation on a scratch
// record. Row identity (positions, validity, span) is shared with the
// input batch.
func (p *ProjectOp) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	if p.pc == nil {
		pc := &projCompiled{
			cols: make([]int, len(p.Items)),
			comp: make([]*expr.VecExpr, len(p.Items)),
		}
		for k, it := range p.Items {
			pc.cols[k] = -1
			if col, ok := it.Expr.(*expr.Col); ok {
				pc.cols[k] = col.Index
				continue
			}
			if ve, ok := expr.CompileExpr(it.Expr); ok {
				pc.comp[k] = ve
				continue
			}
			pc.fallback = append(pc.fallback, k)
		}
		if len(pc.fallback) > 0 {
			pc.scratch = make(seq.Record, p.In.Info().Schema.NumFields())
		}
		p.pc = pc
	}
	return &projectBatchCursor{
		in:  BatchScanOf(p.In, span, ctx),
		p:   p,
		ctx: ctx,
		out: seq.NewBatchFor(p.schema, ctx.Size),
		pc:  p.pc,
	}
}

// projCompiled is a projection's batch-mode program, compiled once per
// operator instance: per item either a bare input column index (aliased
// through), a vectorized expression, or a row-at-a-time fallback.
type projCompiled struct {
	cols     []int
	comp     []*expr.VecExpr
	fallback []int
	scratch  seq.Record
}

type projectBatchCursor struct {
	in  seq.BatchCursor
	p   *ProjectOp
	ctx *seq.BatchCtx
	out *seq.Batch
	pc  *projCompiled
	err error
}

func (c *projectBatchCursor) NextBatch() (*seq.Batch, bool) {
	if c.err != nil {
		return nil, false
	}
	b, ok := c.in.NextBatch()
	if !ok {
		return nil, false
	}
	in := c.ctx.Intern
	out := c.out
	out.AliasRowsOf(b)
	for k := range c.p.Items {
		switch {
		case c.pc.cols[k] >= 0:
			out.Cols[k] = b.Cols[c.pc.cols[k]]
		case c.pc.comp[k] != nil:
			c.pc.comp[k].EvalInto(b, in, &out.Cols[k])
		default:
			out.Cols[k].Reset()
		}
	}
	if len(c.pc.fallback) > 0 {
		// Row-major over the fallback items, so a per-row evaluation
		// error surfaces at the same row the scalar interpreter would
		// report it at. Invalid rows get placeholder values to keep the
		// vectors aligned; the scalar path never evaluates them, so
		// neither do we.
		n := b.Rows()
		for i := 0; i < n; i++ {
			if !b.Valid.Get(i) {
				for _, k := range c.pc.fallback {
					out.Cols[k].AppendValue(zeroValue(out.Cols[k].T), in)
				}
				continue
			}
			rec := b.RowInto(i, c.pc.scratch, in)
			for _, k := range c.pc.fallback {
				v, err := c.p.Items[k].Expr.Eval(rec)
				if err != nil {
					c.err = err
					return nil, false
				}
				if err := out.Cols[k].AppendValue(v, in); err != nil {
					c.err = err
					return nil, false
				}
			}
		}
	}
	return out, true
}

func (c *projectBatchCursor) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.in.Err()
}

func (c *projectBatchCursor) Close() error { return c.in.Close() }

// BatchScan implements the positional offset: the child is scanned over
// the shifted span and positions are re-addressed in place — one
// subtraction per row, no record handling at all.
func (o *PosOffsetOp) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	return &posOffsetBatchCursor{
		in:     BatchScanOf(o.In, span.Shift(o.Offset), ctx),
		offset: o.Offset,
	}
}

type posOffsetBatchCursor struct {
	in     seq.BatchCursor
	offset int64
}

func (c *posOffsetBatchCursor) NextBatch() (*seq.Batch, bool) {
	b, ok := c.in.NextBatch()
	if !ok {
		return nil, false
	}
	for i := range b.Pos {
		b.Pos[i] -= c.offset
	}
	b.Span = b.Span.Shift(-c.offset)
	return b, true
}

func (c *posOffsetBatchCursor) Err() error   { return c.in.Err() }
func (c *posOffsetBatchCursor) Close() error { return c.in.Close() }

// BatchScan implements the materialization point: the input is
// materialized once (through the scalar collector, exactly like the
// scalar path, so first-access cost and page attribution are identical)
// and batches are then served straight off the materialized entries.
func (m *Materialize) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	if err := m.ensure(); err != nil {
		return seq.ErrBatchCursor(err)
	}
	return m.mat.ScanBatches(span, ctx)
}

// batchRows iterates the valid rows of a batch stream: the pull-cursor
// (peek/take) idiom lifted to batches, used by the operators that merge
// or fold row streams (compose, aggregates, value offsets).
type batchRows struct {
	cur  seq.BatchCursor
	b    *seq.Batch
	i    int
	done bool
}

func newBatchRows(cur seq.BatchCursor) *batchRows { return &batchRows{cur: cur} }

// peek positions the reader at the next valid row and returns its
// position. ok is false at end of stream or on error.
func (r *batchRows) peek() (seq.Pos, bool, error) {
	for {
		if r.done {
			return 0, false, nil
		}
		if r.b != nil {
			for r.i < r.b.Rows() {
				if r.b.Valid.Get(r.i) {
					return r.b.Pos[r.i], true, nil
				}
				r.i++
			}
		}
		b, ok := r.cur.NextBatch()
		if !ok {
			r.done = true
			return 0, false, r.cur.Err()
		}
		r.b, r.i = b, 0
	}
}

// take consumes the current row (only valid after a successful peek).
func (r *batchRows) take() { r.i++ }

func (r *batchRows) close() error { return r.cur.Close() }

// BatchScan implements compose. Lockstep merges the two batch streams
// with a two-pointer walk over their valid rows; the stream-probe
// strategies batch the streamed side and probe the other per row (the
// probes go through the Plan interface, so instrumentation sees the
// exact probe pattern of the scalar strategy). The join predicate is
// applied batch-wise afterwards, clearing validity bits.
func (c *ComposeOp) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	if !c.NoNarrow {
		span = span.Intersect(c.Info().Span)
	}
	if span.IsEmpty() {
		return seq.EmptyBatchCursor()
	}
	var pe *predEval
	if c.Pred != nil {
		pe = newPredEval(c.Pred, c.schema.NumFields())
	}
	lw := c.L.Info().Schema.NumFields()
	switch c.Strategy {
	case ComposeStreamLeft:
		return &streamProbeBatchCursor{
			c: c, ctx: ctx, pe: pe, lw: lw,
			sc:    BatchScanOf(c.L, span, ctx),
			probe: c.R,
			out:   seq.NewBatchFor(c.schema, ctx.Size),
		}
	case ComposeStreamRight:
		return &streamProbeBatchCursor{
			c: c, ctx: ctx, pe: pe, lw: lw, swapped: true,
			sc:    BatchScanOf(c.R, span, ctx),
			probe: c.L,
			out:   seq.NewBatchFor(c.schema, ctx.Size),
		}
	default:
		return &lockstepBatchCursor{
			c: c, ctx: ctx, pe: pe, lw: lw,
			lc:   newBatchRows(BatchScanOf(c.L, span, ctx)),
			rc:   newBatchRows(BatchScanOf(c.R, span, ctx)),
			out:  seq.NewBatchFor(c.schema, ctx.Size),
			next: span.Start,
			end:  span.End,
		}
	}
}

type lockstepBatchCursor struct {
	c        *ComposeOp
	ctx      *seq.BatchCtx
	lc, rc   *batchRows
	out      *seq.Batch
	pe       *predEval
	lw       int
	next     seq.Pos
	end      seq.Pos
	err      error
	drained  bool
	finished bool
}

func (c *lockstepBatchCursor) NextBatch() (*seq.Batch, bool) {
	if c.err != nil || c.finished {
		return nil, false
	}
	out := c.out
	out.Reset()
	out.Span = seq.Span{Start: c.next, End: c.end}
	size := c.ctx.Size
	for !c.drained && out.Rows() < size {
		// peek refills whichever side has exhausted its current batch
		// (and skips leading invalid rows); the merge itself then runs as
		// a tight two-pointer loop over the two in-hand batches, with no
		// per-row function calls.
		if _, ok, err := c.lc.peek(); !ok {
			if err != nil {
				c.err = err
				return nil, false
			}
			c.drained = true
			break
		}
		if _, ok, err := c.rc.peek(); !ok {
			if err != nil {
				c.err = err
				return nil, false
			}
			c.drained = true
			break
		}
		lb, rb := c.lc.b, c.rc.b
		li, ri := c.lc.i, c.rc.i
		lp, rp := lb.Pos, rb.Pos
		for li < len(lp) && ri < len(rp) && out.Rows() < size {
			// Word-scan past invalid rows (a selective predicate upstream
			// leaves long cleared runs), then gallop the laggard side to
			// the leader's position instead of stepping row by row.
			if li = lb.Valid.NextSet(li, len(lp)); li >= len(lp) {
				break
			}
			if ri = rb.Valid.NextSet(ri, len(rp)); ri >= len(rp) {
				break
			}
			switch {
			case lp[li] < rp[ri]:
				li = searchPosFrom(lp, li+1, rp[ri])
			case rp[ri] < lp[li]:
				ri = searchPosFrom(rp, ri+1, lp[li])
			default:
				out.AppendPos(lp[li])
				for j := 0; j < c.lw; j++ {
					out.Cols[j].AppendFrom(&lb.Cols[j], li)
				}
				for j := c.lw; j < len(out.Cols); j++ {
					out.Cols[j].AppendFrom(&rb.Cols[j-c.lw], ri)
				}
				li++
				ri++
			}
		}
		c.lc.i, c.rc.i = li, ri
	}
	if c.drained {
		// Final batch: covers the rest of the span.
		c.finished = true
	} else {
		out.Span.End = out.Pos[out.Rows()-1]
		c.next = out.Span.End + 1 //seqvet:ignore spanarith row positions lie inside the bounded scan span
		if c.next > c.end {
			c.finished = true
		}
	}
	if c.pe != nil {
		if err := c.pe.apply(out, c.ctx.Intern); err != nil {
			c.err = err
			return nil, false
		}
	}
	return out, true
}

// searchPosFrom returns the smallest index >= lo whose position is >=
// target, assuming s is ascending and (when lo > 0) s[lo-1] < target.
// It gallops — exponential probe, then binary search inside the bracket
// — so a short hop costs O(1) and a long skip O(log distance).
func searchPosFrom(s []seq.Pos, lo int, target seq.Pos) int {
	n := len(s)
	if lo >= n || s[lo] >= target {
		return lo
	}
	step := 1
	for lo+step < n && s[lo+step] < target {
		step <<= 1
	}
	i, j := lo+step>>1+1, lo+step
	if j > n {
		j = n
	}
	for i < j {
		m := int(uint(i+j) >> 1)
		if s[m] < target {
			i = m + 1
		} else {
			j = m
		}
	}
	return i
}

func (c *lockstepBatchCursor) Err() error { return c.err }

func (c *lockstepBatchCursor) Close() error {
	err := c.lc.close()
	if e := c.rc.close(); e != nil && err == nil {
		err = e
	}
	return err
}

type streamProbeBatchCursor struct {
	c       *ComposeOp
	ctx     *seq.BatchCtx
	sc      seq.BatchCursor
	probe   Plan
	swapped bool
	out     *seq.Batch
	pe      *predEval
	lw      int
	err     error
}

func (c *streamProbeBatchCursor) NextBatch() (*seq.Batch, bool) {
	if c.err != nil {
		return nil, false
	}
	sb, ok := c.sc.NextBatch()
	if !ok {
		return nil, false
	}
	out := c.out
	out.Reset()
	out.Span = sb.Span
	n := sb.Rows()
	width := len(out.Cols)
	for i := 0; i < n; i++ {
		if !sb.Valid.Get(i) {
			continue
		}
		pos := sb.Pos[i]
		prec, err := c.probe.Probe(pos)
		if err != nil {
			c.err = err
			return nil, false
		}
		if prec.IsNull() {
			continue
		}
		out.AppendPos(pos)
		if !c.swapped {
			// Streamed side is the left input.
			for j := 0; j < c.lw; j++ {
				out.Cols[j].AppendFrom(&sb.Cols[j], i)
			}
			for j := c.lw; j < width; j++ {
				if err := out.Cols[j].AppendValue(prec[j-c.lw], c.ctx.Intern); err != nil {
					c.err = err
					return nil, false
				}
			}
		} else {
			// Streamed side is the right input; probe answers fill the
			// left columns.
			for j := 0; j < c.lw; j++ {
				if err := out.Cols[j].AppendValue(prec[j], c.ctx.Intern); err != nil {
					c.err = err
					return nil, false
				}
			}
			for j := c.lw; j < width; j++ {
				out.Cols[j].AppendFrom(&sb.Cols[j-c.lw], i)
			}
		}
	}
	if c.pe != nil {
		if err := c.pe.apply(out, c.ctx.Intern); err != nil {
			c.err = err
			return nil, false
		}
	}
	return out, true
}

func (c *streamProbeBatchCursor) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.sc.Err()
}

func (c *streamProbeBatchCursor) Close() error { return c.sc.Close() }
