package exec

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
	"repro/internal/storage"
)

// batchVsScalar runs the plan over span through both data planes with
// the given batch size and requires record-for-record agreement (batch
// execution mirrors the scalar accumulation order exactly, so even
// floats must match bit for bit). Returns the number of batches the
// root collector consumed.
func batchVsScalar(t *testing.T, p Plan, span seq.Span, size int) int64 {
	t.Helper()
	want, err := Run(p, span)
	if err != nil {
		t.Fatalf("scalar run: %v", err)
	}
	ctx := seq.NewBatchCtx()
	ctx.Size = size
	got, err := RunBatch(p, span, ctx)
	if err != nil {
		t.Fatalf("batch run (size %d): %v", size, err)
	}
	we, ge := want.Entries(), got.Entries()
	if len(we) != len(ge) {
		t.Fatalf("batch run (size %d) returned %d rows, scalar %d", size, len(ge), len(we))
	}
	for i := range we {
		if we[i].Pos != ge[i].Pos {
			t.Fatalf("row %d: batch pos %d, scalar pos %d", i, ge[i].Pos, we[i].Pos)
		}
		if len(we[i].Rec) != len(ge[i].Rec) {
			t.Fatalf("row %d: arity mismatch", i)
		}
		for j := range we[i].Rec {
			if !we[i].Rec[j].Equal(ge[i].Rec[j]) {
				t.Fatalf("pos %d col %d: batch %v, scalar %v", we[i].Pos, j, ge[i].Rec[j], we[i].Rec[j])
			}
		}
	}
	return ctx.Batches
}

// batchSizes stresses the tiling: single-row batches, sub-span batches,
// and batches bigger than the whole span.
var batchSizes = []int{1, 3, 7, 4096}

func testAllSizes(t *testing.T, p Plan, span seq.Span) {
	t.Helper()
	for _, size := range batchSizes {
		batchVsScalar(t, p, span, size)
	}
}

func TestSearchPosFrom(t *testing.T) {
	s := []seq.Pos{2, 4, 6, 8, 100, 101, 102, 500}
	cases := []struct {
		lo     int
		target seq.Pos
		want   int
	}{
		{0, 1, 0}, {0, 2, 0}, {0, 3, 1}, {1, 5, 2},
		{1, 100, 4},  // long gallop across the gap
		{4, 102, 6},  // short hop inside the dense run
		{0, 501, 8},  // past the end
		{8, 1, 8},    // lo at len
		{3, 8, 3},    // immediate hit, no gallop
	}
	for _, c := range cases {
		if got := searchPosFrom(s, c.lo, c.target); got != c.want {
			t.Errorf("searchPosFrom(s, %d, %d) = %d, want %d", c.lo, c.target, got, c.want)
		}
	}
	// Exhaustive cross-check against a linear scan.
	for lo := 0; lo <= len(s); lo++ {
		for target := seq.Pos(0); target <= 501; target++ {
			want := lo
			for want < len(s) && s[want] < target {
				want++
			}
			if got := searchPosFrom(s, lo, target); got != want {
				t.Fatalf("searchPosFrom(s, %d, %d) = %d, want %d", lo, target, got, want)
			}
		}
	}
}

func TestBatchLeafSparseAndDense(t *testing.T) {
	data := mkSeq(t, map[seq.Pos]float64{1: 10, 2: 20, 4: 40, 5: 50, 7: 70, 8: 80, 11: 110})
	for _, kind := range []storage.Kind{storage.KindSparse, storage.KindDense} {
		st, err := storage.FromMaterialized(data, kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		testAllSizes(t, NewLeaf("s", st, seq.AllSpan), seq.NewSpan(0, 12))
		// Sub-batch span, single-position span, and miss-everything span.
		testAllSizes(t, NewLeaf("s", st, seq.AllSpan), seq.NewSpan(4, 5))
		testAllSizes(t, NewLeaf("s", st, seq.AllSpan), seq.NewSpan(7, 7))
		testAllSizes(t, NewLeaf("s", st, seq.AllSpan), seq.NewSpan(20, 30))
	}
}

func TestBatchEmptySpan(t *testing.T) {
	p := leaf(t, map[seq.Pos]float64{1: 1, 2: 2})
	ctx := seq.NewBatchCtx()
	got, err := RunBatch(p, seq.EmptySpan, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 {
		t.Fatalf("empty span returned %d rows", got.Count())
	}
}

func TestBatchSelectVectorizedAndFallback(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 5, 2: 9, 3: 2, 4: 7, 6: 1, 7: 8})
	// Vectorizable predicate: close > 4.
	testAllSizes(t, NewSelect(in, gt(t, closeSchema, "close", 4)), seq.NewSpan(0, 10))
	// Call forces the scalar row fallback inside the batch select.
	c, _ := expr.NewCol(closeSchema, "close")
	call, err := expr.NewCall(expr.FnAbs, []expr.Expr{c})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.NewBin(expr.OpGt, call, expr.Literal(seq.Float(4)))
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, NewSelect(in, pred), seq.NewSpan(0, 10))
}

func TestBatchSelectAllFilteredValidity(t *testing.T) {
	// A predicate nothing satisfies: batches flow with every validity
	// bit cleared and the run yields no rows.
	in := leaf(t, map[seq.Pos]float64{1: 1, 2: 2, 3: 3})
	p := NewSelect(in, gt(t, closeSchema, "close", 100))
	ctx := seq.NewBatchCtx()
	ctx.Size = 2
	cur := BatchScanOf(p, seq.NewSpan(1, 3), ctx)
	defer cur.Close()
	sawRows := false
	for {
		b, ok := cur.NextBatch()
		if !ok {
			break
		}
		if b.Rows() > 0 {
			sawRows = true
		}
		if b.ValidRows() != 0 {
			t.Fatalf("all-filtered batch still has %d valid rows", b.ValidRows())
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawRows {
		t.Fatal("expected invalidated rows to flow through the batch stream")
	}
	testAllSizes(t, p, seq.NewSpan(1, 3))
}

func TestBatchProjectAliasCompiledFallback(t *testing.T) {
	schema := seq.MustSchema(
		seq.Field{Name: "close", Type: seq.TFloat},
		seq.Field{Name: "volume", Type: seq.TInt},
	)
	es := []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Float(1.5), seq.Int(10)}},
		{Pos: 2, Rec: seq.Record{seq.Float(2.5), seq.Int(20)}},
		{Pos: 4, Rec: seq.Record{seq.Float(4.5), seq.Int(40)}},
		{Pos: 5, Rec: seq.Record{seq.Float(-5.5), seq.Int(3)}},
	}
	in := NewLeaf("s", seq.MustMaterialized(schema, es), seq.AllSpan)
	cl, _ := expr.NewCol(schema, "close")
	vol, _ := expr.NewCol(schema, "volume")
	dbl, _ := expr.NewBin(expr.OpMul, cl, expr.Literal(seq.Float(2)))
	abs, _ := expr.NewCall(expr.FnAbs, []expr.Expr{cl})
	p, err := NewProject(in, []ProjExpr{
		{Expr: vol, Name: "v"},      // column alias
		{Expr: dbl, Name: "twice"},  // compiled vector expression
		{Expr: abs, Name: "mag"},    // scalar fallback (Call)
		{Expr: cl, Name: "close2"},  // second alias of the same input
	})
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, p, seq.NewSpan(0, 6))
}

func TestBatchProjectErrorParity(t *testing.T) {
	// Integer division by zero must fail at the same row with the same
	// error in both data planes (the fallback walks rows in scalar
	// order, so the first failing row matches).
	schema := seq.MustSchema(seq.Field{Name: "n", Type: seq.TInt})
	es := []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Int(10)}},
		{Pos: 2, Rec: seq.Record{seq.Int(20)}},
	}
	in := NewLeaf("s", seq.MustMaterialized(schema, es), seq.AllSpan)
	n, _ := expr.NewCol(schema, "n")
	div, err := expr.NewBin(expr.OpDiv, n, expr.Literal(seq.Int(0)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProject(in, []ProjExpr{{Expr: div, Name: "boom"}})
	if err != nil {
		t.Fatal(err)
	}
	_, serr := Run(p, seq.NewSpan(0, 5))
	if serr == nil {
		t.Fatal("scalar run must fail on integer division by zero")
	}
	_, berr := RunBatch(p, seq.NewSpan(0, 5), seq.NewBatchCtx())
	if berr == nil {
		t.Fatal("batch run must fail on integer division by zero")
	}
	if serr.Error() != berr.Error() {
		t.Fatalf("error mismatch:\nscalar: %v\nbatch:  %v", serr, berr)
	}
}

func TestBatchPosOffset(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 10, 3: 30, 5: 50, 6: 60})
	for _, off := range []int64{-3, -1, 1, 4} {
		testAllSizes(t, NewPosOffset(in, off), seq.NewSpan(-2, 10))
	}
}

func TestBatchValueOffset(t *testing.T) {
	pairs := map[seq.Pos]float64{1: 10, 2: 20, 4: 40, 5: 50, 7: 70, 8: 80, 10: 100}
	for _, off := range []int64{-3, -1, 1, 2} {
		in := leaf(t, pairs)
		vo, err := NewValueOffsetIncremental(in, off, seq.NewSpan(0, 12))
		if err != nil {
			t.Fatal(err)
		}
		testAllSizes(t, vo, seq.NewSpan(0, 12))
		// Sub-spans force history walks before the requested start.
		testAllSizes(t, vo, seq.NewSpan(6, 9))
	}
}

func TestBatchAggSlidingAndCumulative(t *testing.T) {
	pairs := map[seq.Pos]float64{1: 1.5, 2: 2.25, 4: 4.75, 5: 5.5, 7: 7.125, 9: 9.875}
	funcs := []algebra.AggFunc{algebra.AggSum, algebra.AggAvg, algebra.AggMin, algebra.AggMax, algebra.AggCount}
	for _, fn := range funcs {
		in := leaf(t, pairs)
		spec := algebra.AggSpec{Func: fn, Arg: 0, Window: algebra.Trailing(3), As: "a"}
		agg, err := NewAggSliding(in, spec, seq.NewSpan(1, 10))
		if err != nil {
			t.Fatal(err)
		}
		testAllSizes(t, agg, seq.NewSpan(1, 10))

		in2 := leaf(t, pairs)
		cspec := algebra.AggSpec{Func: fn, Arg: 0, Window: algebra.Window{LoUnbounded: true}, As: "a"}
		cum, err := NewAggCumulative(in2, cspec, seq.NewSpan(1, 10))
		if err != nil {
			t.Fatal(err)
		}
		testAllSizes(t, cum, seq.NewSpan(1, 10))
	}
	// Centered window (Lo < 0 < Hi).
	in := leaf(t, pairs)
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Range(-2, 2), As: "a"}
	agg, err := NewAggSliding(in, spec, seq.NewSpan(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, agg, seq.NewSpan(1, 10))
}

func TestBatchComposeStrategies(t *testing.T) {
	lp := map[seq.Pos]float64{1: 10, 2: 20, 3: 30, 5: 50, 7: 70, 9: 90}
	rp := map[seq.Pos]float64{2: 19, 3: 31, 5: 10, 7: 70, 8: 80}
	for _, p := range composePlans(t, lp, rp, 0) {
		testAllSizes(t, p, seq.NewSpan(0, 10))
	}
	// Compose without a predicate (pure positional join).
	schema, err := closeSchema.Concat(closeSchema, "l", "r")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []ComposeStrategy{ComposeLockStep, ComposeStreamLeft, ComposeStreamRight} {
		c, err := NewCompose(NewLeaf("l", mkSeq(t, lp), seq.AllSpan), NewLeaf("r", mkSeq(t, rp), seq.AllSpan), nil, schema, s)
		if err != nil {
			t.Fatal(err)
		}
		testAllSizes(t, c, seq.NewSpan(0, 10))
	}
}

func TestBatchAdapterOperators(t *testing.T) {
	// Operators without native batch support run through the adapter:
	// collapse, expand, naive aggregates, naive value offsets.
	pairs := map[seq.Pos]float64{0: 1, 1: 2, 2: 3, 4: 5, 5: 6, 7: 8, 8: 9}
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(2), As: "a"}

	col, err := NewCollapse(leaf(t, pairs), 3, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, As: "g"}, seq.NewSpan(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, col, seq.NewSpan(0, 3))

	exp, err := NewExpand(leaf(t, pairs), 2, seq.NewSpan(0, 17))
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, exp, seq.NewSpan(0, 17))

	naive, err := NewAggNaive(leaf(t, pairs), spec, seq.NewSpan(0, 9))
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, naive, seq.NewSpan(0, 9))

	cached, err := NewAggCached(leaf(t, pairs), spec, seq.NewSpan(0, 9))
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, cached, seq.NewSpan(0, 9))

	von, err := NewValueOffsetNaive(leaf(t, pairs), -1, seq.NewSpan(0, 9))
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, von, seq.NewSpan(0, 9))
}

func TestBatchMaterializeAndRename(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 1, 2: 2, 5: 5, 8: 8})
	m, err := NewMaterialize(NewSelect(in, gt(t, closeSchema, "close", 1)), seq.NewSpan(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, m, seq.NewSpan(0, 10))

	rs := seq.MustSchema(seq.Field{Name: "px", Type: seq.TFloat})
	rn, err := NewRename(leaf(t, map[seq.Pos]float64{1: 1, 3: 3}), rs)
	if err != nil {
		t.Fatal(err)
	}
	testAllSizes(t, rn, seq.NewSpan(0, 5))
}

// TestBatchMVCCPageVersionStraddle scans an MVCC snapshot whose pages
// carry multiple versions (appends across epochs rewrote page tails)
// with batches smaller than a page, so batch boundaries straddle
// page-version boundaries. The snapshot bridges through the adapter;
// its answers must match the scalar scan at every epoch.
func TestBatchMVCCPageVersionStraddle(t *testing.T) {
	base := make([]seq.Entry, 0, 8)
	for p := seq.Pos(1); p <= 8; p++ {
		base = append(base, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p) * 10)}})
	}
	v, err := storage.NewVersioned(seq.MustMaterialized(closeSchema, base), storage.KindSparse, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Appends at later epochs create fresh page versions past the base.
	for i, p := range []seq.Pos{9, 10, 11, 12, 13} {
		if err := v.Append(seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p) * 10)}}, int64(2+i)); err != nil {
			t.Fatal(err)
		}
	}
	if v.PageVersions() <= v.Versions() {
		t.Logf("page versions %d, versions %d", v.PageVersions(), v.Versions())
	}
	for epoch := int64(1); epoch <= 6; epoch++ {
		snap := v.SnapshotAt(epoch)
		l := NewLeaf("v", snap, seq.AllSpan)
		for _, size := range []int{1, 2, 3, 4096} {
			batchVsScalar(t, l, seq.NewSpan(1, 13), size)
		}
	}
}

// TestBatchMeteredCounters checks the instrumented counters of a batch
// run: batch tallies appear on every converted node, row counters stay
// comparable with the scalar plane, and the storage page accounting is
// identical between the two planes.
func TestBatchMeteredCounters(t *testing.T) {
	build := func() (Plan, *storage.Stats) {
		st, err := storage.FromMaterialized(
			mkSeq(t, map[seq.Pos]float64{1: 10, 2: 20, 4: 40, 5: 50, 7: 70, 8: 80}),
			storage.KindSparse, 2)
		if err != nil {
			t.Fatal(err)
		}
		return NewSelect(NewLeaf("s", st, seq.AllSpan), gt(t, closeSchema, "close", 15)), st.Stats()
	}
	span := seq.NewSpan(1, 10)

	sp, sstats := build()
	sinstr, sroot := Instrument(sp, nil)
	if _, err := Run(sinstr, span); err != nil {
		t.Fatal(err)
	}
	sroot.Finalize()
	scalarPages := sstats.Snapshot()

	bp, bstats := build()
	binstr, broot := Instrument(bp, nil)
	ctx := seq.NewBatchCtx()
	ctx.Size = 2
	if _, err := RunBatch(binstr, span, ctx); err != nil {
		t.Fatal(err)
	}
	broot.Finalize()
	batchPages := bstats.Snapshot()

	if scalarPages != batchPages {
		t.Errorf("page accounting differs: scalar %v, batch %v", scalarPages, batchPages)
	}
	var walk func(a, b *NodeMetrics)
	walk = func(a, b *NodeMetrics) {
		if a.ScanRows != b.ScanRows {
			t.Errorf("%s: scalar rows %d, batch rows %d", a.Label, a.ScanRows, b.ScanRows)
		}
		if b.Batches == 0 || b.BatchCalls == 0 {
			t.Errorf("%s: batch run recorded no batches (calls=%d batches=%d)", b.Label, b.BatchCalls, b.Batches)
		}
		if b.BatchRows != b.ScanRows {
			t.Errorf("%s: batch rows %d disagree with scan rows %d", b.Label, b.BatchRows, b.ScanRows)
		}
		if a.Batches != 0 {
			t.Errorf("%s: scalar run recorded %d batches", a.Label, a.Batches)
		}
		for i := range a.Children {
			walk(a.Children[i], b.Children[i])
		}
	}
	walk(sroot, broot)
	if ctx.Batches == 0 {
		t.Error("root collector consumed no batches")
	}
}

// TestClonePlanBatchIsolation is the batch side of the clone-isolation
// contract: clones evaluated under separate batch contexts own separate
// intern tables and fresh adapter state, so interleaved batch runs of
// the original and the clone cannot corrupt each other.
func TestClonePlanBatchIsolation(t *testing.T) {
	schema := seq.MustSchema(
		seq.Field{Name: "sym", Type: seq.TString},
		seq.Field{Name: "px", Type: seq.TFloat},
	)
	syms := []string{"alpha", "beta", "gamma"}
	es := make([]seq.Entry, 0, 30)
	for p := seq.Pos(1); p <= 30; p++ {
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{
			seq.Str(syms[int(p)%len(syms)]), seq.Float(float64(p)),
		}})
	}
	st, err := storage.FromMaterialized(seq.MustMaterialized(schema, es), storage.KindSparse, 4)
	if err != nil {
		t.Fatal(err)
	}
	px, _ := expr.NewCol(schema, "px")
	pred, err := expr.NewBin(expr.OpGt, px, expr.Literal(seq.Float(3)))
	if err != nil {
		t.Fatal(err)
	}
	p := NewSelect(NewLeaf("s", st, seq.AllSpan), pred)
	span := seq.NewSpan(1, 30)

	cp, _, err := ClonePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	ctxA, ctxB := seq.NewBatchCtx(), seq.NewBatchCtx()
	ctxA.Size, ctxB.Size = 4, 4
	if ctxA.Intern == ctxB.Intern {
		t.Fatal("fresh batch contexts share an intern table")
	}
	// Interleave the two batch streams: each cursor carries its own
	// adapter state and interns into its own table.
	curA := BatchScanOf(p, span, ctxA)
	curB := BatchScanOf(cp, span, ctxB)
	defer curA.Close()
	defer curB.Close()
	var rowsA, rowsB []seq.Entry
	for {
		a, aok := curA.NextBatch()
		if aok {
			rowsA = a.AppendEntries(rowsA, ctxA.Intern)
		}
		b, bok := curB.NextBatch()
		if bok {
			rowsB = b.AppendEntries(rowsB, ctxB.Intern)
		}
		if !aok && !bok {
			break
		}
	}
	if err := curA.Err(); err != nil {
		t.Fatal(err)
	}
	if err := curB.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rowsA) == 0 || len(rowsA) != len(rowsB) {
		t.Fatalf("interleaved streams disagree: %d vs %d rows", len(rowsA), len(rowsB))
	}
	for i := range rowsA {
		if rowsA[i].Pos != rowsB[i].Pos || rowsA[i].Rec[0].AsStr() != rowsB[i].Rec[0].AsStr() {
			t.Fatalf("row %d: original %v, clone %v", i, rowsA[i], rowsB[i])
		}
	}
	// Both tables interned the symbols independently.
	as, bs := ctxA.Intern.Stats(), ctxB.Intern.Stats()
	if as.StrMisses == 0 || bs.StrMisses == 0 {
		t.Errorf("no interning happened: %+v / %+v", as, bs)
	}
	if as.StrHits == 0 || bs.StrHits == 0 {
		t.Errorf("repeated symbols never hit: %+v / %+v", as, bs)
	}
	// The scalar result still matches after all that.
	batchVsScalar(t, p, span, 4)
	batchVsScalar(t, cp, span, 4)
}

func TestBatchStringInterning(t *testing.T) {
	schema := seq.MustSchema(
		seq.Field{Name: "sym", Type: seq.TString},
		seq.Field{Name: "px", Type: seq.TFloat},
	)
	es := make([]seq.Entry, 0, 100)
	for p := seq.Pos(1); p <= 100; p++ {
		sym := "hot"
		if p%10 == 0 {
			sym = "cold"
		}
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{seq.Str(sym), seq.Float(float64(p))}})
	}
	in := NewLeaf("s", seq.MustMaterialized(schema, es), seq.AllSpan)
	sym, _ := expr.NewCol(schema, "sym")
	pred, err := expr.NewBin(expr.OpEq, sym, expr.Literal(seq.Str("hot")))
	if err != nil {
		t.Fatal(err)
	}
	p := NewSelect(in, pred)
	span := seq.NewSpan(1, 100)

	want, err := Run(p, span)
	if err != nil {
		t.Fatal(err)
	}
	ctx := seq.NewBatchCtx()
	got, err := RunBatch(p, span, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != want.Count() {
		t.Fatalf("batch %d rows, scalar %d", got.Count(), want.Count())
	}
	st := ctx.Intern.Stats()
	if st.StrMisses != 2 {
		t.Errorf("distinct symbols interned = %d, want 2 (stats %+v)", st.StrMisses, st)
	}
	if st.StrHits < 90 {
		t.Errorf("intern hits = %d, want ~98 on a 2-symbol column (stats %+v)", st.StrHits, st)
	}
	if !strings.Contains("hot", got.Entries()[0].Rec[0].AsStr()) {
		t.Errorf("decoded symbol %q", got.Entries()[0].Rec[0].AsStr())
	}
}

func TestBatchModeString(t *testing.T) {
	if BatchAuto.String() != "auto" || BatchOff.String() != "off" {
		t.Errorf("mode strings: %q %q", BatchAuto.String(), BatchOff.String())
	}
	if !BatchAuto.Enabled() || BatchOff.Enabled() {
		t.Error("enabled flags wrong")
	}
}
