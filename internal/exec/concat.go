package exec

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/seq"
)

// Concat splices two plans computing the same sequence along a position
// boundary: positions at or below Boundary come from Left, positions
// above it from Right. The optimizer uses it for partial-span
// materialized-view matching — a view covering only a prefix of the
// block's access span serves that prefix while the uncovered tail is
// recomputed — so both sides must evaluate the same block, just over
// complementary windows.
type Concat struct {
	Left, Right Plan
	Boundary    seq.Pos
}

// NewConcat builds the splice. Both inputs must share a schema.
func NewConcat(left, right Plan, boundary seq.Pos) (*Concat, error) {
	ls, rs := left.Info().Schema, right.Info().Schema
	if ls.NumFields() != rs.NumFields() {
		return nil, fmt.Errorf("exec: concat arity mismatch: %d vs %d", ls.NumFields(), rs.NumFields())
	}
	for i := 0; i < ls.NumFields(); i++ {
		if ls.Field(i).Type != rs.Field(i).Type {
			return nil, fmt.Errorf("exec: concat type mismatch at %d: %s vs %s",
				i, ls.Field(i).Type, rs.Field(i).Type)
		}
	}
	return &Concat{Left: left, Right: right, Boundary: boundary}, nil
}

// leftSpan and rightSpan restrict a requested span to each side's window.
func (c *Concat) leftSpan(span seq.Span) seq.Span {
	return span.Intersect(seq.Span{Start: seq.MinPos, End: c.Boundary})
}

func (c *Concat) rightSpan(span seq.Span) seq.Span {
	if c.Boundary >= seq.MaxPos {
		return seq.EmptySpan
	}
	return span.Intersect(seq.Span{Start: c.Boundary + 1, End: seq.MaxPos})
}

// Info implements seq.Sequence: the hull of the two sides' windows.
func (c *Concat) Info() seq.Info {
	li, ri := c.Left.Info(), c.Right.Info()
	info := seq.Info{Schema: li.Schema}
	ls, rs := c.leftSpan(li.Span), c.rightSpan(ri.Span)
	switch {
	case ls.IsEmpty():
		info.Span, info.Density = rs, ri.Density
	case rs.IsEmpty():
		info.Span, info.Density = ls, li.Density
	default:
		info.Span = seq.Span{Start: ls.Start, End: rs.End}
		if n := info.Span.Len(); info.Span.Bounded() && n > 0 {
			occupied := li.Density*float64(ls.Len()) + ri.Density*float64(rs.Len())
			info.Density = occupied / float64(n)
		} else {
			info.Density = ri.Density
		}
	}
	return info
}

// Scan implements seq.Sequence: drain the left window, then the right.
func (c *Concat) Scan(span seq.Span) seq.Cursor {
	ls, rs := c.leftSpan(span), c.rightSpan(span)
	var cur seq.Cursor
	onRight := false
	if !ls.IsEmpty() {
		cur = c.Left.Scan(ls)
	} else {
		onRight = true
		cur = c.Right.Scan(rs)
	}
	fc := &forwardCursor{}
	fc.next = func() (seq.Pos, seq.Record, bool, error) {
		for {
			pos, rec, ok := cur.Next()
			if ok {
				return pos, rec, true, nil
			}
			err := cur.Err()
			if cerr := cur.Close(); err == nil {
				err = cerr
			}
			if err != nil || onRight || rs.IsEmpty() {
				return 0, nil, false, err
			}
			onRight = true
			cur = c.Right.Scan(rs)
		}
	}
	fc.closes = []func() error{func() error {
		if cur == nil {
			return nil
		}
		return cur.Close()
	}}
	return fc
}

// Probe implements seq.Sequence: route by position.
func (c *Concat) Probe(pos seq.Pos) (seq.Record, error) {
	if pos <= c.Boundary {
		return c.Left.Probe(pos)
	}
	return c.Right.Probe(pos)
}

// Label implements Plan.
func (c *Concat) Label() string { return fmt.Sprintf("concat(@%d)", c.Boundary) }

// Children implements Plan.
func (c *Concat) Children() []Plan { return []Plan{c.Left, c.Right} }

// Caches implements Plan.
func (c *Concat) Caches() []*cache.FIFO { return nil }
