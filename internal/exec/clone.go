package exec

import (
	"fmt"

	"repro/internal/cache"
)

// ClonePlan deep-copies a physical plan so the copy can run concurrently
// with (or independently of) the original. Stateful operators get fresh
// private state: cache-strategy operators receive new FIFO caches of the
// same capacity, and materialization points drop their lazily built
// result so the copy re-materializes through its own inputs. Leaves share
// the underlying base sequence — base stores are safe for concurrent
// scans (their Stats counters are atomic) — but every mutable operator
// structure above them is duplicated.
//
// The returned mapping takes each node of the clone to the original node
// it was copied from, so per-node metadata keyed by plan identity (e.g.
// the optimizer's recorded cost estimates) can be carried over to the
// copy.
//
// Plans containing operator types this function does not know (including
// already-instrumented *Metered trees) cannot be safely cloned, because
// unknown nodes may hold hidden mutable state; ClonePlan reports an error
// rather than aliasing them.
func ClonePlan(p Plan) (Plan, map[Plan]Plan, error) {
	orig := make(map[Plan]Plan)
	cp, err := clonePlan(p, orig)
	if err != nil {
		return nil, nil, err
	}
	return cp, orig, nil
}

func clonePlan(p Plan, orig map[Plan]Plan) (Plan, error) {
	var out Plan
	switch op := p.(type) {
	case *Leaf:
		cp := *op
		out = &cp
	case *Rename:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		out = &cp
	case *SelectOp:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		cp.pe = nil // compiled evaluator scratch must not be shared across workers
		out = &cp
	case *ProjectOp:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		cp.pc = nil // compiled projection scratch must not be shared across workers
		out = &cp
	case *PosOffsetOp:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		out = &cp
	case *ComposeOp:
		cp := *op
		l, err := clonePlan(op.L, orig)
		if err != nil {
			return nil, err
		}
		r, err := clonePlan(op.R, orig)
		if err != nil {
			return nil, err
		}
		cp.L, cp.R = l, r
		out = &cp
	case *Materialize:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		cp.mat = nil // each copy materializes through its own input
		out = &cp
	case *AggNaive:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		out = &cp
	case *AggCached:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		cp.cache = cache.NewFIFO(op.cache.Cap())
		out = &cp
	case *AggSliding:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		out = &cp
	case *AggCumulative:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		out = &cp
	case *ValueOffsetNaive:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		out = &cp
	case *ValueOffsetIncremental:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		cp.cache = cache.NewFIFO(op.cache.Cap())
		out = &cp
	case *CollapseOp:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		out = &cp
	case *ExpandOp:
		cp := *op
		in, err := clonePlan(op.In, orig)
		if err != nil {
			return nil, err
		}
		cp.In = in
		out = &cp
	default:
		return nil, fmt.Errorf("exec: cannot clone unknown operator %T (%s)", p, p.Label())
	}
	orig[out] = p
	return out, nil
}

// ReplaceLeafSeqs rewrites the Seq of every leaf in the plan through f,
// in place. It exists for worker-local instrumentation: a parallel
// analyze run swaps each base store for a fork counting into
// worker-private statistics. Call it only on plans this process owns
// exclusively (e.g. a fresh ClonePlan copy).
func ReplaceLeafSeqs(p Plan, f func(l *Leaf)) {
	if l, ok := p.(*Leaf); ok {
		f(l)
	}
	for _, c := range p.Children() {
		ReplaceLeafSeqs(c, f)
	}
}
