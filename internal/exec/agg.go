package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/cache"
	"repro/internal/seq"
)

// aggInfo computes the Info shared by the aggregate operators.
func aggInfo(schema *seq.Schema, outSpan seq.Span) seq.Info {
	return seq.Info{Schema: schema, Span: outSpan, Density: 1}
}

// aggValues extracts the aggregate argument from an input record.
func aggArg(spec *algebra.AggSpec, r seq.Record) seq.Value {
	if spec.Arg >= 0 {
		return r[spec.Arg]
	}
	return seq.Int(1) // Count over whole records
}

// outSchema builds the single-attribute schema of an aggregate output.
func aggSchema(in Plan, spec *algebra.AggSpec) (*seq.Schema, error) {
	name := spec.As
	if name == "" {
		name = spec.Func.String()
	}
	typ := seq.TInt
	if spec.Arg >= 0 {
		var err error
		typ, err = spec.Func.ResultType(in.Info().Schema.Field(spec.Arg).Type)
		if err != nil {
			return nil, err
		}
	}
	return seq.NewSchema(seq.Field{Name: name, Type: typ})
}

// AggNaive evaluates a windowed aggregate with the naive algorithm
// (§4.1.2): every output position probes the input at each position of
// its scope. Cost per output record is proportional to the window size
// (unboundedly large for cumulative windows).
type AggNaive struct {
	In      Plan
	Spec    algebra.AggSpec
	OutSpan seq.Span
	schema  *seq.Schema
}

// NewAggNaive builds the naive windowed aggregate.
func NewAggNaive(in Plan, spec algebra.AggSpec, outSpan seq.Span) (*AggNaive, error) {
	if err := spec.Window.Validate(); err != nil {
		return nil, err
	}
	schema, err := aggSchema(in, &spec)
	if err != nil {
		return nil, err
	}
	return &AggNaive{In: in, Spec: spec, OutSpan: outSpan, schema: schema}, nil
}

// Info implements seq.Sequence.
func (a *AggNaive) Info() seq.Info { return aggInfo(a.schema, a.OutSpan) }

// Probe implements seq.Sequence.
func (a *AggNaive) Probe(pos seq.Pos) (seq.Record, error) {
	span := a.Spec.Window.Positions(pos).Intersect(a.In.Info().Span)
	var vals []seq.Value
	for p := span.Start; !span.IsEmpty() && p <= span.End; p++ {
		r, err := a.In.Probe(p)
		if err != nil {
			return nil, err
		}
		if !r.IsNull() {
			vals = append(vals, aggArg(&a.Spec, r))
		}
	}
	v, ok, err := a.Spec.Func.Apply(vals)
	if err != nil || !ok {
		return nil, err
	}
	return seq.Record{v}, nil
}

// Scan implements seq.Sequence: dense emission, probing per position.
func (a *AggNaive) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(a.OutSpan)
	if span.IsEmpty() {
		return emptyCursor{}
	}
	if !span.Bounded() {
		return seq.ErrCursor(fmt.Errorf("exec: unbounded scan of aggregate (span %v)", span))
	}
	p := span.Start
	return &forwardCursor{
		next: func() (seq.Pos, seq.Record, bool, error) {
			for p <= span.End {
				pos := p
				p++
				r, err := a.Probe(pos)
				if err != nil {
					return 0, nil, false, err
				}
				if !r.IsNull() {
					return pos, r, true, nil
				}
			}
			return 0, nil, false, nil
		},
	}
}

// Label implements Plan.
func (a *AggNaive) Label() string {
	return fmt.Sprintf("agg-naive(%s over %s)", a.Spec.Func, a.Spec.Window)
}

// Children implements Plan.
func (a *AggNaive) Children() []Plan { return []Plan{a.In} }

// Caches implements Plan.
func (a *AggNaive) Caches() []*cache.FIFO { return nil }

// AggCached evaluates a bounded-window aggregate with Cache-Strategy-A
// (§3.5, Figure 5.A): a single input scan feeds a FIFO cache of the
// window's records; each output position aggregates over the cache, so
// the input sequence is accessed exactly once per record even though each
// record participates in up to w aggregations.
type AggCached struct {
	In      Plan
	Spec    algebra.AggSpec
	OutSpan seq.Span
	schema  *seq.Schema
	cache   *cache.FIFO
}

// NewAggCached builds the Cache-Strategy-A aggregate. The window must be
// bounded on both sides.
func NewAggCached(in Plan, spec algebra.AggSpec, outSpan seq.Span) (*AggCached, error) {
	if err := spec.Window.Validate(); err != nil {
		return nil, err
	}
	size, fixed := spec.Window.Size()
	if !fixed {
		return nil, fmt.Errorf("exec: Cache-Strategy-A requires a bounded window, got %s", spec.Window)
	}
	schema, err := aggSchema(in, &spec)
	if err != nil {
		return nil, err
	}
	return &AggCached{
		In: in, Spec: spec, OutSpan: outSpan, schema: schema,
		cache: cache.NewFIFO(int(size)),
	}, nil
}

// Info implements seq.Sequence.
func (a *AggCached) Info() seq.Info { return aggInfo(a.schema, a.OutSpan) }

// Probe implements seq.Sequence: probes bypass the cache (the cache only
// pays off under a positional stream).
func (a *AggCached) Probe(pos seq.Pos) (seq.Record, error) {
	n := AggNaive{In: a.In, Spec: a.Spec, OutSpan: a.OutSpan, schema: a.schema}
	return n.Probe(pos)
}

// Scan implements seq.Sequence.
func (a *AggCached) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(a.OutSpan)
	if span.IsEmpty() {
		return emptyCursor{}
	}
	if !span.Bounded() {
		return seq.ErrCursor(fmt.Errorf("exec: unbounded scan of aggregate (span %v)", span))
	}
	a.cache.Reset()
	w := a.Spec.Window
	inSpan := a.In.Info().Span
	scanSpan := seq.Span{
		Start: seq.ClampPos(span.Start + w.Lo),
		End:   seq.ClampPos(span.End + w.Hi),
	}.Intersect(inSpan)
	in := newPull(a.In.Scan(scanSpan))
	p := span.Start
	vals := make([]seq.Value, 0, a.cache.Cap()) // reused across positions
	return &forwardCursor{
		closes: []func() error{in.close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			for p <= span.End {
				pos := p
				p++
				hi := seq.ClampPos(pos + w.Hi)
				lo := seq.ClampPos(pos + w.Lo)
				// Absorb input records up to the window's right edge.
				for {
					e, ok, err := in.peek()
					if err != nil {
						return 0, nil, false, err
					}
					if !ok || e.Pos > hi {
						break
					}
					a.cache.Put(e.Pos, e.Rec)
					in.take()
				}
				a.cache.EvictBelow(lo)
				vals = vals[:0]
				a.cache.Ascend(func(e seq.Entry) bool {
					vals = append(vals, aggArg(&a.Spec, e.Rec))
					return true
				})
				v, ok, err := a.Spec.Func.Apply(vals)
				if err != nil {
					return 0, nil, false, err
				}
				if ok {
					return pos, seq.Record{v}, true, nil
				}
			}
			return 0, nil, false, nil
		},
	}
}

// Label implements Plan.
func (a *AggCached) Label() string {
	return fmt.Sprintf("agg-cacheA(%s over %s)", a.Spec.Func, a.Spec.Window)
}

// Children implements Plan.
func (a *AggCached) Children() []Plan { return []Plan{a.In} }

// Caches implements Plan.
func (a *AggCached) Caches() []*cache.FIFO { return []*cache.FIFO{a.cache} }
