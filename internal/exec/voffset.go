package exec

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/seq"
)

// valueOffsetInfo computes the common Info of a value-offset operator.
func valueOffsetInfo(in Plan, outSpan seq.Span) seq.Info {
	info := in.Info()
	info.Span = outSpan
	info.Density = 1
	return info
}

// ValueOffsetNaive evaluates a value offset with the naive algorithm of
// §3.5/§4.1.2: each output position walks the input backward (or
// forward) probing position by position until it has seen |offset|
// non-Null records. Its cost explodes when matching input records are
// rare — the behavior Figure 5.B's Cache-Strategy-B removes.
type ValueOffsetNaive struct {
	In      Plan
	Offset  int64
	OutSpan seq.Span
}

// NewValueOffsetNaive builds the naive value offset. outSpan bounds
// stream emission (the operator's output is dense, so scans enumerate
// every position of the span).
func NewValueOffsetNaive(in Plan, offset int64, outSpan seq.Span) (*ValueOffsetNaive, error) {
	if offset == 0 {
		return nil, fmt.Errorf("exec: value offset must be non-zero")
	}
	return &ValueOffsetNaive{In: in, Offset: offset, OutSpan: outSpan}, nil
}

// Info implements seq.Sequence.
func (v *ValueOffsetNaive) Info() seq.Info { return valueOffsetInfo(v.In, v.OutSpan) }

// Probe implements seq.Sequence: the backward/forward probing walk.
func (v *ValueOffsetNaive) Probe(pos seq.Pos) (seq.Record, error) {
	return probeValueOffset(v.In, v.Offset, pos)
}

func probeValueOffset(in Plan, offset int64, pos seq.Pos) (seq.Record, error) {
	inSpan := in.Info().Span
	if inSpan.IsEmpty() {
		return nil, nil
	}
	need := offset
	step := seq.Pos(1)
	p := pos + 1
	if offset < 0 {
		need = -offset
		step = -1
		p = pos - 1
		if p > inSpan.End {
			p = inSpan.End
		}
	} else if p < inSpan.Start {
		p = inSpan.Start
	}
	var count int64
	for inSpan.Contains(p) {
		r, err := in.Probe(p)
		if err != nil {
			return nil, err
		}
		if !r.IsNull() {
			count++
			if count == need {
				return r, nil
			}
		}
		p += step
	}
	return nil, nil
}

// Scan implements seq.Sequence: dense emission, probing per position.
func (v *ValueOffsetNaive) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(v.OutSpan)
	if span.IsEmpty() {
		return emptyCursor{}
	}
	if !span.Bounded() {
		return seq.ErrCursor(fmt.Errorf("exec: unbounded scan of value offset (span %v)", span))
	}
	p := span.Start
	return &forwardCursor{
		next: func() (seq.Pos, seq.Record, bool, error) {
			for p <= span.End {
				pos := p
				p++
				r, err := v.Probe(pos)
				if err != nil {
					return 0, nil, false, err
				}
				if !r.IsNull() {
					return pos, r, true, nil
				}
			}
			return 0, nil, false, nil
		},
	}
}

// Label implements Plan.
func (v *ValueOffsetNaive) Label() string {
	return fmt.Sprintf("voffset-naive(%+d)", v.Offset)
}

// Children implements Plan.
func (v *ValueOffsetNaive) Children() []Plan { return []Plan{v.In} }

// Caches implements Plan.
func (v *ValueOffsetNaive) Caches() []*cache.FIFO { return nil }

// ValueOffsetIncremental evaluates a value offset with Cache-Strategy-B
// (§3.5): a single input scan feeds a FIFO cache of the last (or next)
// |offset| non-Null records, and each output position reads its answer
// from the cache — the record at a position is either the cached record
// or a newly arrived input record. One scan, |offset| cache slots,
// O(1) work per position.
type ValueOffsetIncremental struct {
	In      Plan
	Offset  int64
	OutSpan seq.Span
	cache   *cache.FIFO
}

// NewValueOffsetIncremental builds the Cache-Strategy-B value offset.
func NewValueOffsetIncremental(in Plan, offset int64, outSpan seq.Span) (*ValueOffsetIncremental, error) {
	if offset == 0 {
		return nil, fmt.Errorf("exec: value offset must be non-zero")
	}
	k := offset
	if k < 0 {
		k = -k
	}
	return &ValueOffsetIncremental{
		In: in, Offset: offset, OutSpan: outSpan,
		cache: cache.NewFIFO(int(k)),
	}, nil
}

// Info implements seq.Sequence.
func (v *ValueOffsetIncremental) Info() seq.Info { return valueOffsetInfo(v.In, v.OutSpan) }

// Probe implements seq.Sequence. The incremental algorithm is not usable
// with probed access (§4.1.2), so probes fall back to the naive walk.
func (v *ValueOffsetIncremental) Probe(pos seq.Pos) (seq.Record, error) {
	return probeValueOffset(v.In, v.Offset, pos)
}

// Scan implements seq.Sequence.
func (v *ValueOffsetIncremental) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(v.OutSpan)
	if span.IsEmpty() {
		return emptyCursor{}
	}
	if !span.Bounded() {
		return seq.ErrCursor(fmt.Errorf("exec: unbounded scan of value offset (span %v)", span))
	}
	v.cache.Reset()
	inSpan := v.In.Info().Span
	if v.Offset < 0 {
		// Scan the input from far enough back that the ring holds the
		// correct history at the first output position, up to the last
		// position that can influence the span.
		end := span.End - 1
		if end > inSpan.End {
			end = inSpan.End
		}
		start, err := v.historyStart(span.Start, inSpan)
		if err != nil {
			return seq.ErrCursor(err)
		}
		in := newPull(v.In.Scan(seq.Span{Start: start, End: end}))
		need := int(-v.Offset)
		p := span.Start
		return &forwardCursor{
			closes: []func() error{in.close},
			next: func() (seq.Pos, seq.Record, bool, error) {
				for p <= span.End {
					pos := p
					p++
					// Absorb input records strictly before pos.
					for {
						e, ok, err := in.peek()
						if err != nil {
							return 0, nil, false, err
						}
						if !ok || e.Pos >= pos {
							break
						}
						v.cache.Put(e.Pos, e.Rec)
						in.take()
					}
					if v.cache.Len() >= need {
						// The ring holds the last `need` records; the
						// oldest is the answer.
						e, _ := v.cache.Oldest()
						return pos, e.Rec, true, nil
					}
				}
				return 0, nil, false, nil
			},
		}
	}
	// Forward offsets: a lookahead ring of the next `need` records.
	start := span.Start + 1
	if start < inSpan.Start {
		start = inSpan.Start
	}
	in := newPull(v.In.Scan(seq.Span{Start: start, End: inSpan.End}))
	need := int(v.Offset)
	p := span.Start
	return &forwardCursor{
		closes: []func() error{in.close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			for p <= span.End {
				pos := p
				p++
				v.cache.EvictBelow(pos + 1)
				// Fill the ring with records strictly after pos.
				for v.cache.Len() < need {
					e, ok, err := in.peek()
					if err != nil {
						return 0, nil, false, err
					}
					if !ok {
						break
					}
					in.take()
					if e.Pos > pos {
						v.cache.Put(e.Pos, e.Rec)
					}
				}
				if v.cache.Len() >= need {
					// The newest of the first `need` is the answer: the
					// ring never grows beyond `need`, so it is Newest.
					e, _ := v.cache.Newest()
					return pos, e.Rec, true, nil
				}
			}
			return 0, nil, false, nil
		},
	}
}

// historyStartGate is the minimum number of skipped prefix positions
// before a backward-offset scan attempts the probing shortcut below.
// Scans starting at (or near) the input's own start — the common serial
// case — keep the exact page-access pattern they always had.
const historyStartGate = 256

// historyStart returns the position the input scan must begin at so the
// ring holds the correct last-|l| non-Null records when the first output
// position is produced. Scanning from the input's start is always
// correct — the ring evicts all but the |l| most recent records — but a
// scan that begins far into the sequence (a partition of a parallel run,
// or a narrow requested range) would re-read the entire prefix for
// nothing. When the skipped prefix is large, walk backward probing the
// input until |l| non-Null records are found and start there instead:
// the Definition 3.3 effective-scope broadening, realized exactly. The
// walk is bounded by a density-derived budget so a pathologically empty
// region cannot turn the shortcut into a probe storm; on exhaustion it
// falls back to the full prefix.
func (v *ValueOffsetIncremental) historyStart(first seq.Pos, inSpan seq.Span) (seq.Pos, error) {
	start := inSpan.Start
	if first-historyStartGate <= start {
		return start, nil
	}
	need := -v.Offset
	density := v.In.Info().Density
	if density <= 0 {
		return start, nil // unknown density: no bounded walk possible
	}
	budget := int64(float64(need)/density)*8 + 64
	// The walk probes position by position; it only pays off when the
	// prefix it skips is much longer than the walk itself (a probe costs
	// roughly a page, a scanned position a fraction of one).
	if first-start <= budget*64 {
		return start, nil
	}
	lo := seq.ClampPos(first - budget)
	var found int64
	for p := first - 1; p >= lo; p-- {
		r, err := v.In.Probe(p)
		if err != nil {
			return 0, err
		}
		if !r.IsNull() {
			found++
			if found == need {
				return p, nil
			}
		}
	}
	return start, nil
}

// Label implements Plan.
func (v *ValueOffsetIncremental) Label() string {
	return fmt.Sprintf("voffset-cacheB(%+d)", v.Offset)
}

// Children implements Plan.
func (v *ValueOffsetIncremental) Children() []Plan { return []Plan{v.In} }

// Caches implements Plan.
func (v *ValueOffsetIncremental) Caches() []*cache.FIFO { return []*cache.FIFO{v.cache} }

type emptyCursor struct{}

func (emptyCursor) Next() (seq.Pos, seq.Record, bool) { return 0, nil, false }
func (emptyCursor) Err() error                        { return nil }
func (emptyCursor) Close() error                      { return nil }
