package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/seq"
)

func TestCollapseOpMatchesReference(t *testing.T) {
	pairs := map[seq.Pos]float64{0: 10, 3: 20, 7: 30, 13: 50, 14: 60, 20: 70}
	for _, k := range []int64{2, 3, 7} {
		for _, f := range []algebra.AggFunc{algebra.AggSum, algebra.AggAvg, algebra.AggMin, algebra.AggMax, algebra.AggCount} {
			spec := algebra.AggSpec{Func: f, Arg: 0, As: "g"}
			node := algebra.Base("s", mkSeq(t, pairs))
			cn, err := algebra.Collapse(node, k, spec)
			if err != nil {
				t.Fatal(err)
			}
			span := seq.NewSpan(-2, 12)
			want, err := algebra.EvalRange(cn, span)
			if err != nil {
				t.Fatal(err)
			}
			op, err := NewCollapse(leaf(t, pairs), k, spec, span)
			if err != nil {
				t.Fatal(err)
			}
			got, err := seq.Collect(op.Scan(seq.AllSpan))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d %s: got %v, want %v", k, f, got, want)
			}
			for i := range got {
				if got[i].Pos != want[i].Pos || !got[i].Rec.Equal(want[i].Rec) {
					t.Fatalf("k=%d %s at %d: %v vs %v", k, f, got[i].Pos, got[i].Rec, want[i].Rec)
				}
			}
			// Probes agree with the stream results.
			byPos := make(map[seq.Pos]seq.Record)
			for _, e := range want {
				byPos[e.Pos] = e.Rec
			}
			for p := span.Start; p <= span.End; p++ {
				r, err := op.Probe(p)
				if err != nil {
					t.Fatal(err)
				}
				if !r.Equal(byPos[p]) {
					t.Fatalf("k=%d %s Probe(%d) = %v, want %v", k, f, p, r, byPos[p])
				}
			}
		}
	}
}

func TestExpandOpMatchesReference(t *testing.T) {
	pairs := map[seq.Pos]float64{0: 10, 2: 30, 5: 50}
	for _, k := range []int64{2, 3, 5} {
		node := algebra.Base("s", mkSeq(t, pairs))
		xn, err := algebra.Expand(node, k)
		if err != nil {
			t.Fatal(err)
		}
		span := seq.NewSpan(-3, 30)
		want, err := algebra.EvalRange(xn, span)
		if err != nil {
			t.Fatal(err)
		}
		op, err := NewExpand(leaf(t, pairs), k, span)
		if err != nil {
			t.Fatal(err)
		}
		got, err := seq.Collect(op.Scan(seq.AllSpan))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d entries, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Pos != want[i].Pos || !got[i].Rec.Equal(want[i].Rec) {
				t.Fatalf("k=%d at %d: %v vs %v", k, got[i].Pos, got[i].Rec, want[i].Rec)
			}
		}
		for _, p := range []seq.Pos{-1, 0, 1, 7, 11, 29} {
			r, err := op.Probe(p)
			if err != nil {
				t.Fatal(err)
			}
			wantRec, _ := mkSeq(t, pairs).Probe(algebra.FloorDiv(p, k))
			if !r.Equal(wantRec) {
				t.Fatalf("k=%d Probe(%d) = %v, want %v", k, p, r, wantRec)
			}
		}
	}
}

func TestExpandScanPartialGroups(t *testing.T) {
	// A scan window cutting through the middle of replicated groups.
	op, err := NewExpand(leaf(t, map[seq.Pos]float64{1: 10, 2: 20}), 4, seq.NewSpan(0, 11))
	if err != nil {
		t.Fatal(err)
	}
	got, err := seq.Collect(op.Scan(seq.NewSpan(6, 9)))
	if err != nil {
		t.Fatal(err)
	}
	// Group 1 covers 4..7, group 2 covers 8..11; window [6,9] sees 6,7
	// from group 1 and 8,9 from group 2.
	if len(got) != 4 || got[0].Pos != 6 || got[3].Pos != 9 {
		t.Fatalf("partial scan = %v", got)
	}
	if got[0].Rec[0].AsFloat() != 10 || got[3].Rec[0].AsFloat() != 20 {
		t.Fatalf("partial scan records = %v", got)
	}
}

func TestDomainOpValidationAndMetadata(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 1})
	if _, err := NewCollapse(in, 1, algebra.AggSpec{Func: algebra.AggSum, Arg: 0}, seq.AllSpan); err == nil {
		t.Error("factor 1 collapse must fail")
	}
	if _, err := NewExpand(in, 1, seq.AllSpan); err == nil {
		t.Error("factor 1 expand must fail")
	}
	c, _ := NewCollapse(in, 2, algebra.AggSpec{Func: algebra.AggSum, Arg: 0}, seq.NewSpan(0, 4))
	if c.Label() == "" || len(c.Children()) != 1 || c.Caches() != nil {
		t.Error("collapse plan metadata wrong")
	}
	if err := c.Scan(seq.AllSpan).Err(); err != nil {
		t.Errorf("bounded outspan scan errored: %v", err)
	}
	unbounded, _ := NewCollapse(in, 2, algebra.AggSpec{Func: algebra.AggSum, Arg: 0}, seq.AllSpan)
	if err := unbounded.Scan(seq.AllSpan).Err(); err == nil {
		t.Error("unbounded collapse scan must error")
	}
	x, _ := NewExpand(in, 2, seq.NewSpan(0, 4))
	if x.Label() == "" || len(x.Children()) != 1 {
		t.Error("expand plan metadata wrong")
	}
	xu, _ := NewExpand(in, 2, seq.AllSpan)
	if err := xu.Scan(seq.AllSpan).Err(); err == nil {
		t.Error("unbounded expand scan must error")
	}
}

func TestRenameOp(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 5})
	renamed := seq.MustSchema(seq.Field{Name: "last", Type: seq.TFloat})
	r, err := NewRename(in, renamed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Info().Schema.Field(0).Name != "last" {
		t.Error("rename did not take")
	}
	rec, err := r.Probe(1)
	if err != nil || rec[0].AsFloat() != 5 {
		t.Errorf("probe through rename = %v, %v", rec, err)
	}
	got, err := seq.Collect(r.Scan(seq.AllSpan))
	if err != nil || len(got) != 1 {
		t.Errorf("scan through rename = %v, %v", got, err)
	}
	if r.Label() == "" || len(r.Children()) != 1 || r.Caches() != nil {
		t.Error("rename metadata wrong")
	}
	// Arity and type mismatches rejected.
	two := seq.MustSchema(seq.Field{Name: "a", Type: seq.TFloat}, seq.Field{Name: "b", Type: seq.TFloat})
	if _, err := NewRename(in, two); err == nil {
		t.Error("arity mismatch must fail")
	}
	intS := seq.MustSchema(seq.Field{Name: "v", Type: seq.TInt})
	if _, err := NewRename(in, intS); err == nil {
		t.Error("type mismatch must fail")
	}
}
