package exec

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/expr"
	"repro/internal/seq"
)

// ComposeStrategy selects a physical evaluation of the positional join
// (§3.3, Figure 4).
type ComposeStrategy int

// The compose strategies of §3.3.
const (
	// ComposeLockStep streams both inputs in lock step, joining at
	// common positions — Join-Strategy-B.
	ComposeLockStep ComposeStrategy = iota
	// ComposeStreamLeft streams the left input and probes the right at
	// each non-Null position — Join-Strategy-A, first variant.
	ComposeStreamLeft
	// ComposeStreamRight streams the right input and probes the left —
	// Join-Strategy-A, second variant.
	ComposeStreamRight
)

// String returns the strategy name.
func (s ComposeStrategy) String() string {
	switch s {
	case ComposeLockStep:
		return "lockstep"
	case ComposeStreamLeft:
		return "stream-left"
	case ComposeStreamRight:
		return "stream-right"
	default:
		return fmt.Sprintf("ComposeStrategy(%d)", int(s))
	}
}

// ComposeOp positionally joins two inputs: out(i) = l(i).r(i), Null
// unless both are non-Null and the optional predicate holds (§2.1). The
// stream strategy is chosen at construction; probes always probe both
// sides.
type ComposeOp struct {
	L, R     Plan
	Pred     expr.Expr // over the concatenated record; may be nil
	Strategy ComposeStrategy
	// NoNarrow disables the span-propagation optimization at this
	// operator: scans are not restricted to the intersection of the
	// input spans (children still bound themselves). It exists for the
	// Figure-3 ablation experiment: disabling narrowing reproduces the
	// "Figure 3.A" plan that scans every input over its full valid
	// range.
	NoNarrow bool
	schema   *seq.Schema
}

// NewCompose builds a compose with the given output schema (derived by
// the planner from the input schemas and qualifiers) and strategy.
func NewCompose(l, r Plan, pred expr.Expr, schema *seq.Schema, strategy ComposeStrategy) (*ComposeOp, error) {
	if schema.NumFields() != l.Info().Schema.NumFields()+r.Info().Schema.NumFields() {
		return nil, fmt.Errorf("exec: compose schema arity %d does not match inputs %d+%d",
			schema.NumFields(), l.Info().Schema.NumFields(), r.Info().Schema.NumFields())
	}
	if pred != nil && pred.Type() != seq.TBool {
		return nil, fmt.Errorf("exec: compose predicate must be bool, got %s", pred.Type())
	}
	return &ComposeOp{L: l, R: r, Pred: pred, Strategy: strategy, schema: schema}, nil
}

// Info implements seq.Sequence.
func (c *ComposeOp) Info() seq.Info {
	li, ri := c.L.Info(), c.R.Info()
	return seq.Info{
		Schema:  c.schema,
		Span:    li.Span.Intersect(ri.Span),
		Density: li.Density * ri.Density,
	}
}

// join concatenates and filters; a nil result means the predicate
// rejected the pair.
func (c *ComposeOp) join(l, r seq.Record) (seq.Record, error) {
	out := l.Concat(r)
	if c.Pred != nil {
		ok, err := expr.EvalPred(c.Pred, out)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
	}
	return out, nil
}

// Probe implements seq.Sequence.
func (c *ComposeOp) Probe(pos seq.Pos) (seq.Record, error) {
	l, err := c.L.Probe(pos)
	if err != nil || l.IsNull() {
		return nil, err
	}
	r, err := c.R.Probe(pos)
	if err != nil || r.IsNull() {
		return nil, err
	}
	return c.join(l, r)
}

// Scan implements seq.Sequence, dispatching on the strategy.
func (c *ComposeOp) Scan(span seq.Span) seq.Cursor {
	if !c.NoNarrow {
		span = span.Intersect(c.Info().Span)
	}
	if span.IsEmpty() {
		return emptyCursor{}
	}
	switch c.Strategy {
	case ComposeStreamLeft:
		return c.scanStreamProbe(span, c.L, c.R, false)
	case ComposeStreamRight:
		return c.scanStreamProbe(span, c.R, c.L, true)
	default:
		return c.scanLockStep(span)
	}
}

// scanLockStep advances both input streams together, emitting at common
// positions (the sort-merge-like single scan of Example 1.1).
func (c *ComposeOp) scanLockStep(span seq.Span) seq.Cursor {
	lc := newPull(c.L.Scan(span))
	rc := newPull(c.R.Scan(span))
	return &forwardCursor{
		closes: []func() error{lc.close, rc.close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			for {
				le, lok, err := lc.peek()
				if err != nil {
					return 0, nil, false, err
				}
				re, rok, err := rc.peek()
				if err != nil {
					return 0, nil, false, err
				}
				if !lok || !rok {
					return 0, nil, false, nil
				}
				switch {
				case le.Pos < re.Pos:
					lc.take()
				case re.Pos < le.Pos:
					rc.take()
				default:
					lc.take()
					rc.take()
					out, err := c.join(le.Rec, re.Rec)
					if err != nil {
						return 0, nil, false, err
					}
					if !out.IsNull() {
						return le.Pos, out, true, nil
					}
				}
			}
		},
	}
}

// scanStreamProbe streams one side and probes the other at each non-Null
// position (Join-Strategy-A). swapped reports that the streamed side is
// the right input, so records are re-ordered before concatenation.
func (c *ComposeOp) scanStreamProbe(span seq.Span, stream, probe Plan, swapped bool) seq.Cursor {
	sc := stream.Scan(span)
	return &forwardCursor{
		closes: []func() error{sc.Close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			for {
				pos, srec, ok := sc.Next()
				if !ok {
					return 0, nil, false, sc.Err()
				}
				prec, err := probe.Probe(pos)
				if err != nil {
					return 0, nil, false, err
				}
				if prec.IsNull() {
					continue
				}
				l, r := srec, prec
				if swapped {
					l, r = prec, srec
				}
				out, err := c.join(l, r)
				if err != nil {
					return 0, nil, false, err
				}
				if !out.IsNull() {
					return pos, out, true, nil
				}
			}
		},
	}
}

// Label implements Plan.
func (c *ComposeOp) Label() string {
	s := "compose-" + c.Strategy.String()
	if c.Pred != nil {
		s += "(" + c.Pred.String() + ")"
	}
	return s
}

// Children implements Plan.
func (c *ComposeOp) Children() []Plan { return []Plan{c.L, c.R} }

// Caches implements Plan.
func (c *ComposeOp) Caches() []*cache.FIFO { return nil }

// Materialize caches its input's full stream result on first access and
// serves all subsequent scans and probes from memory — the derived-
// sequence materialization extension of §5.3. It is chosen when repeated
// probed access to an expensive derived sequence would otherwise
// recompute it per probe.
type Materialize struct {
	In   Plan
	Span seq.Span // the bounded span to materialize
	mat  *seq.Materialized
}

// NewMaterialize builds a materialization point over the bounded span.
func NewMaterialize(in Plan, span seq.Span) (*Materialize, error) {
	if !span.Bounded() {
		return nil, fmt.Errorf("exec: materialization requires a bounded span, got %v", span)
	}
	return &Materialize{In: in, Span: span}, nil
}

func (m *Materialize) ensure() error {
	if m.mat != nil {
		return nil
	}
	entries, err := seq.Collect(m.In.Scan(m.Span))
	if err != nil {
		return err
	}
	mat, err := seq.NewMaterialized(m.In.Info().Schema, entries)
	if err != nil {
		return err
	}
	if mat, err = mat.WithSpan(m.Span); err != nil {
		return err
	}
	m.mat = mat
	return nil
}

// Info implements seq.Sequence.
func (m *Materialize) Info() seq.Info {
	info := m.In.Info()
	info.Span = info.Span.Intersect(m.Span)
	return info
}

// Probe implements seq.Sequence.
func (m *Materialize) Probe(pos seq.Pos) (seq.Record, error) {
	if err := m.ensure(); err != nil {
		return nil, err
	}
	return m.mat.Probe(pos)
}

// Scan implements seq.Sequence.
func (m *Materialize) Scan(span seq.Span) seq.Cursor {
	if err := m.ensure(); err != nil {
		return seq.ErrCursor(err)
	}
	return m.mat.Scan(span)
}

// Label implements Plan.
func (m *Materialize) Label() string { return fmt.Sprintf("materialize(%s)", m.Span) }

// Children implements Plan.
func (m *Materialize) Children() []Plan { return []Plan{m.In} }

// Caches implements Plan.
func (m *Materialize) Caches() []*cache.FIFO { return nil }
