// Batch-mode windowed aggregates and value offsets. Each operator
// mirrors its scalar algorithm position for position — including the
// exact order of floating-point adds and subtracts, so results are
// bit-identical to the scalar interpreter — but consumes batched input
// rows and emits batched outputs, replacing the per-record cursor
// machinery and the per-add seq.Record allocations with ring buffers of
// plain values.
package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/seq"
)

// aggArgAt extracts the aggregate argument from row i of a batch.
func aggArgAt(spec *algebra.AggSpec, b *seq.Batch, i int, in *seq.Intern) seq.Value {
	if spec.Arg >= 0 {
		return b.Cols[spec.Arg].Value(i, in)
	}
	return seq.Int(1) // Count over whole records
}

// posRing is a growable ring buffer of (position, value) pairs — the
// window storage of the batch sliding accumulator. Amortized O(1) push
// and pop at both ends without the slice-shift reallocation pattern of
// the scalar accumulator's `vals = vals[1:]` idiom.
type posRing struct {
	pos  []seq.Pos
	val  []seq.Value
	head int
	n    int
}

func (r *posRing) len() int { return r.n }

func (r *posRing) push(pos seq.Pos, v seq.Value) {
	if r.n == len(r.pos) {
		r.grow()
	}
	i := (r.head + r.n) % len(r.pos)
	r.pos[i] = pos
	r.val[i] = v
	r.n++
}

func (r *posRing) grow() {
	capacity := len(r.pos) * 2
	if capacity < 8 {
		capacity = 8
	}
	pos := make([]seq.Pos, capacity)
	val := make([]seq.Value, capacity)
	for i := 0; i < r.n; i++ {
		j := (r.head + i) % len(r.pos)
		pos[i] = r.pos[j]
		val[i] = r.val[j]
	}
	r.pos, r.val, r.head = pos, val, 0
}

// front returns the oldest element without removing it.
func (r *posRing) front() (seq.Pos, seq.Value) {
	return r.pos[r.head], r.val[r.head]
}

// back returns the newest element.
func (r *posRing) back() (seq.Pos, seq.Value) {
	i := (r.head + r.n - 1) % len(r.pos)
	return r.pos[i], r.val[i]
}

func (r *posRing) popFront() {
	r.head = (r.head + 1) % len(r.pos)
	r.n--
}

func (r *posRing) popBack() { r.n-- }

func (r *posRing) reset() { r.head, r.n = 0, 0 }

// batchSlidingAcc is the batch-mode counterpart of slidingAcc: identical
// arithmetic in identical order, ring buffers instead of slice-shifted
// entry slices, no per-add record allocation.
type batchSlidingAcc struct {
	fn    algebra.AggFunc
	isInt bool
	count int64
	sumI  int64
	sumF  float64
	vals  posRing
	mono  posRing
}

func (a *batchSlidingAcc) add(pos seq.Pos, v seq.Value) error {
	a.count++
	switch a.fn {
	case algebra.AggSum, algebra.AggAvg:
		if a.isInt && v.T == seq.TInt {
			a.sumI += v.AsInt()
		} else {
			a.sumF += v.AsFloat()
		}
		a.vals.push(pos, v)
	case algebra.AggCount:
		a.vals.push(pos, seq.Value{})
	case algebra.AggMin, algebra.AggMax:
		a.vals.push(pos, v)
		for a.mono.len() > 0 {
			_, last := a.mono.back()
			c, err := v.Compare(last)
			if err != nil {
				return err
			}
			if (a.fn == algebra.AggMin && c <= 0) || (a.fn == algebra.AggMax && c >= 0) {
				a.mono.popBack()
			} else {
				break
			}
		}
		a.mono.push(pos, v)
	}
	return nil
}

func (a *batchSlidingAcc) evictBelow(pos seq.Pos) {
	for a.vals.len() > 0 {
		p, v := a.vals.front()
		if p >= pos {
			break
		}
		a.vals.popFront()
		a.count--
		switch a.fn {
		case algebra.AggSum, algebra.AggAvg:
			if a.isInt && v.T == seq.TInt {
				a.sumI -= v.AsInt()
			} else {
				a.sumF -= v.AsFloat()
			}
		}
	}
	for a.mono.len() > 0 {
		if p, _ := a.mono.front(); p >= pos {
			break
		}
		a.mono.popFront()
	}
}

func (a *batchSlidingAcc) result() (seq.Value, bool) {
	if a.count == 0 {
		return seq.Value{}, false
	}
	switch a.fn {
	case algebra.AggCount:
		return seq.Int(a.count), true
	case algebra.AggSum:
		if a.isInt {
			return seq.Int(a.sumI), true
		}
		return seq.Float(a.sumF), true
	case algebra.AggAvg:
		s := a.sumF
		if a.isInt {
			s = float64(a.sumI)
		}
		return seq.Float(s / float64(a.count)), true
	default:
		_, v := a.mono.front()
		return v, true
	}
}

// BatchScan implements the incremental sliding-window aggregate over
// batched input: the same single input scan and per-position
// absorb/evict sequence as the scalar Scan, emitting output rows in
// batches.
func (a *AggSliding) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	span = span.Intersect(a.OutSpan)
	if span.IsEmpty() {
		return seq.EmptyBatchCursor()
	}
	if !span.Bounded() {
		return seq.ErrBatchCursor(fmt.Errorf("exec: unbounded scan of aggregate (span %v)", span))
	}
	w := a.Spec.Window
	inSpan := a.In.Info().Span
	scanSpan := seq.Span{
		Start: seq.ClampPos(span.Start + w.Lo),
		End:   seq.ClampPos(span.End + w.Hi),
	}.Intersect(inSpan)
	isInt := a.schema.Field(0).Type == seq.TInt && a.Spec.Func == algebra.AggSum
	cur := &aggBatchCursor{
		spec: &a.Spec,
		in:   newBatchRows(BatchScanOf(a.In, scanSpan, ctx)),
		ctx:  ctx,
		out:  seq.NewBatchFor(a.schema, ctx.Size),
		p:    span.Start,
		end:  span.End,
		next: span.Start,
		lo:   w.Lo, hi: w.Hi, sliding: true,
	}
	if cur.num = newNumAcc(&a.Spec, a.In.Info().Schema, true); cur.num == nil {
		cur.acc = &batchSlidingAcc{fn: a.Spec.Func, isInt: isInt}
	}
	return cur
}

// BatchScan implements the running (cumulative) aggregate over batched
// input, reusing the batchSlidingAcc in add-only mode (no evictions —
// exactly the runningAcc recurrence, same arithmetic order).
func (a *AggCumulative) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	span = span.Intersect(a.OutSpan)
	if span.IsEmpty() {
		return seq.EmptyBatchCursor()
	}
	if !span.Bounded() {
		return seq.ErrBatchCursor(fmt.Errorf("exec: unbounded scan of aggregate (span %v)", span))
	}
	inSpan := a.In.Info().Span
	scanSpan := seq.Span{Start: inSpan.Start, End: seq.ClampPos(span.End + a.Spec.Window.Hi)}.Intersect(inSpan)
	isInt := a.schema.Field(0).Type == seq.TInt && a.Spec.Func == algebra.AggSum
	cur := &aggBatchCursor{
		spec: &a.Spec,
		in:   newBatchRows(BatchScanOf(a.In, scanSpan, ctx)),
		ctx:  ctx,
		out:  seq.NewBatchFor(a.schema, ctx.Size),
		p:    span.Start,
		end:  span.End,
		next: span.Start,
		hi:   a.Spec.Window.Hi,
	}
	if cur.num = newNumAcc(&a.Spec, a.In.Info().Schema, false); cur.num == nil {
		cur.acc = &cumulativeAcc{runningAcc: *newRunningAcc(a.Spec.Func, isInt)}
	}
	return cur
}

// numKind selects the unboxed accumulator specialization.
type numKind uint8

const (
	numFloat  numKind = iota // sum/avg over a TFloat argument
	numIntSum                // sum over a TInt argument (integer result)
	numIntAvg                // avg over a TInt argument (float accumulation)
	numCount                 // count (argument ignored)
)

// numAcc is the unboxed fast path of the windowed sum/avg/count
// aggregates: raw column values flow straight into the running sums and
// (for sliding windows) a compact position/value ring, with no seq.Value
// boxing anywhere on the per-row path. The arithmetic — adds in arrival
// order, subtracts in eviction order — is exactly the boxed
// accumulator's, so results stay bit-identical to the scalar
// interpreter. Min/max and non-numeric arguments stay on the generic
// boxed accumulator.
type numAcc struct {
	kind  numKind
	avg   bool // result is sum/count
	ring  bool // sliding window: retain values for eviction
	count int64
	sumI  int64
	sumF  float64
	pos   []seq.Pos
	valF  []float64
	valI  []int64
	head  int
	n     int
}

// newNumAcc returns the unboxed accumulator when the spec qualifies,
// nil otherwise.
func newNumAcc(spec *algebra.AggSpec, inSchema *seq.Schema, sliding bool) *numAcc {
	switch spec.Func {
	case algebra.AggCount:
		return &numAcc{kind: numCount, ring: sliding}
	case algebra.AggSum, algebra.AggAvg:
		if spec.Arg < 0 || spec.Arg >= inSchema.NumFields() {
			return nil
		}
		avg := spec.Func == algebra.AggAvg
		switch inSchema.Field(spec.Arg).Type {
		case seq.TFloat:
			return &numAcc{kind: numFloat, avg: avg, ring: sliding}
		case seq.TInt:
			if avg {
				return &numAcc{kind: numIntAvg, avg: true, ring: sliding}
			}
			return &numAcc{kind: numIntSum, ring: sliding}
		}
	}
	return nil
}

func (a *numAcc) grow() {
	capacity := len(a.pos) * 2
	if capacity < 8 {
		capacity = 8
	}
	pos := make([]seq.Pos, capacity)
	for i := 0; i < a.n; i++ {
		pos[i] = a.pos[(a.head+i)%len(a.pos)]
	}
	switch a.kind {
	case numFloat, numIntAvg:
		valF := make([]float64, capacity)
		for i := 0; i < a.n; i++ {
			valF[i] = a.valF[(a.head+i)%len(a.valF)]
		}
		a.valF = valF
	case numIntSum:
		valI := make([]int64, capacity)
		for i := 0; i < a.n; i++ {
			valI[i] = a.valI[(a.head+i)%len(a.valI)]
		}
		a.valI = valI
	}
	a.pos, a.head = pos, 0
}

// slot claims the ring index for one push.
func (a *numAcc) slot() int {
	if a.n == len(a.pos) {
		a.grow()
	}
	i := a.head + a.n
	if i >= len(a.pos) {
		i -= len(a.pos)
	}
	a.n++
	return i
}

// absorbRun consumes rows i.. of b whose position is at most hi,
// folding their argument values into the accumulator. It returns the
// new row index and whether it stopped at a row beyond hi (as opposed
// to exhausting the batch).
func (a *numAcc) absorbRun(b *seq.Batch, col, i int, hi seq.Pos) (int, bool) {
	pv := b.Pos
	switch a.kind {
	case numFloat:
		f := b.Cols[col].F
		for i < len(pv) {
			if pv[i] > hi {
				return i, true
			}
			if b.Valid.Get(i) {
				a.count++
				a.sumF += f[i]
				if a.ring {
					s := a.slot()
					a.pos[s], a.valF[s] = pv[i], f[i]
				}
			}
			i++
		}
	case numIntSum:
		iv := b.Cols[col].I
		for i < len(pv) {
			if pv[i] > hi {
				return i, true
			}
			if b.Valid.Get(i) {
				a.count++
				a.sumI += iv[i]
				if a.ring {
					s := a.slot()
					a.pos[s], a.valI[s] = pv[i], iv[i]
				}
			}
			i++
		}
	case numIntAvg:
		iv := b.Cols[col].I
		for i < len(pv) {
			if pv[i] > hi {
				return i, true
			}
			if b.Valid.Get(i) {
				x := float64(iv[i]) // the scalar path's Value.AsFloat conversion
				a.count++
				a.sumF += x
				if a.ring {
					s := a.slot()
					a.pos[s], a.valF[s] = pv[i], x
				}
			}
			i++
		}
	default: // numCount
		for i < len(pv) {
			if pv[i] > hi {
				return i, true
			}
			if b.Valid.Get(i) {
				a.count++
				if a.ring {
					s := a.slot()
					a.pos[s] = pv[i]
				}
			}
			i++
		}
	}
	return i, false
}

// evictBelow drops window entries with position < p, subtracting their
// values in eviction order exactly as the boxed accumulator does.
func (a *numAcc) evictBelow(p seq.Pos) {
	for a.n > 0 && a.pos[a.head] < p {
		switch a.kind {
		case numFloat, numIntAvg:
			a.sumF -= a.valF[a.head]
		case numIntSum:
			a.sumI -= a.valI[a.head]
		}
		a.head++
		if a.head == len(a.pos) {
			a.head = 0
		}
		a.count--
		a.n--
	}
}

// emit appends the accumulator's current result for pos to the output
// batch, straight into the typed column — no row when the window is
// empty, matching the scalar interpreter.
func (a *numAcc) emit(out *seq.Batch, pos seq.Pos) {
	if a.count == 0 {
		return
	}
	out.AppendPos(pos)
	v := &out.Cols[0]
	switch {
	case a.kind == numCount:
		v.I = append(v.I, a.count)
	case a.kind == numIntSum:
		v.I = append(v.I, a.sumI)
	case a.avg:
		v.F = append(v.F, a.sumF/float64(a.count))
	default:
		v.F = append(v.F, a.sumF)
	}
}

// windowAcc is what aggBatchCursor needs from an accumulator.
type windowAcc interface {
	add(pos seq.Pos, v seq.Value) error
	evictBelow(pos seq.Pos)
	result() (seq.Value, bool)
}

// cumulativeAcc adapts runningAcc to the windowAcc interface (positions
// are irrelevant to an add-only accumulator).
type cumulativeAcc struct {
	runningAcc
}

func (a *cumulativeAcc) add(_ seq.Pos, v seq.Value) error { return a.runningAcc.add(v) }
func (a *cumulativeAcc) evictBelow(seq.Pos)               {}

// aggBatchCursor drives the shared per-position loop of the windowed
// aggregates: absorb input rows up to pos+hi, evict below pos+lo (for
// sliding windows), emit the accumulator result.
type aggBatchCursor struct {
	spec    *algebra.AggSpec
	in      *batchRows
	ctx     *seq.BatchCtx
	out     *seq.Batch
	acc     windowAcc // generic boxed accumulator (min/max, non-numeric)
	num     *numAcc   // unboxed fast path (sum/avg/count over numerics)
	p       seq.Pos   // next position of the dense output walk
	end     seq.Pos
	next    seq.Pos // start of the next output batch's span
	lo, hi  int64
	sliding bool
	err     error
	done    bool
}

func (c *aggBatchCursor) NextBatch() (*seq.Batch, bool) {
	if c.err != nil || c.done {
		return nil, false
	}
	out := c.out
	out.Reset()
	out.Span = seq.Span{Start: c.next, End: c.end}
	var ok bool
	if c.num != nil {
		ok = c.numLoop(out)
	} else {
		ok = c.genericLoop(out)
	}
	if !ok {
		return nil, false
	}
	if c.p > c.end {
		// The walk is complete: this final batch covers the tail.
		c.done = true
		return out, true
	}
	out.Span.End = c.p - 1
	c.next = c.p
	return out, true
}

// numLoop drives the per-position walk on the unboxed accumulator:
// input rows are absorbed in whole-batch runs (absorbRun) instead of
// one peek/take round trip per row.
func (c *aggBatchCursor) numLoop(out *seq.Batch) bool {
	r := c.in
	a := c.num
	arg := c.spec.Arg
	for c.p <= c.end && out.Rows() < c.ctx.Size {
		pos := c.p
		c.p++
		hi := seq.ClampPos(pos + c.hi)
		for !r.done {
			if r.b == nil || r.i >= r.b.Rows() {
				b, ok := r.cur.NextBatch()
				if !ok {
					r.done = true
					if err := r.cur.Err(); err != nil {
						c.err = err
						return false
					}
					break
				}
				r.b, r.i = b, 0
				continue
			}
			i, stopped := a.absorbRun(r.b, arg, r.i, hi)
			r.i = i
			if stopped {
				break
			}
		}
		if c.sliding {
			a.evictBelow(seq.ClampPos(pos + c.lo))
		}
		a.emit(out, pos)
	}
	return true
}

// genericLoop is the boxed per-row walk used by the aggregates the fast
// path does not cover.
func (c *aggBatchCursor) genericLoop(out *seq.Batch) bool {
	in := c.ctx.Intern
	for c.p <= c.end && out.Rows() < c.ctx.Size {
		pos := c.p
		c.p++
		hi := seq.ClampPos(pos + c.hi)
		for {
			epos, ok, err := c.in.peek()
			if err != nil {
				c.err = err
				return false
			}
			if !ok || epos > hi {
				break
			}
			v := aggArgAt(c.spec, c.in.b, c.in.i, in)
			if err := c.acc.add(epos, v); err != nil {
				c.err = err
				return false
			}
			c.in.take()
		}
		if c.sliding {
			c.acc.evictBelow(seq.ClampPos(pos + c.lo))
		}
		if v, ok := c.acc.result(); ok {
			out.AppendPos(pos)
			if err := out.Cols[0].AppendValue(v, in); err != nil {
				c.err = err
				return false
			}
		}
	}
	return true
}

func (c *aggBatchCursor) Err() error   { return c.err }
func (c *aggBatchCursor) Close() error { return c.in.close() }

// recRing is a fixed-capacity ring of (position, record) snapshots whose
// record storage is allocated once and reused — the batch counterpart of
// the FIFO cache a scalar ValueOffsetIncremental scan maintains.
type recRing struct {
	pos   []seq.Pos
	rows  []seq.Record // each preallocated at the input arity
	head  int
	n     int
	width int
}

func newRecRing(capacity, width int) *recRing {
	r := &recRing{
		pos:   make([]seq.Pos, capacity),
		rows:  make([]seq.Record, capacity),
		width: width,
	}
	slab := make([]seq.Value, capacity*width)
	for i := range r.rows {
		r.rows[i] = seq.Record(slab[i*width : (i+1)*width : (i+1)*width])
	}
	return r
}

func (r *recRing) len() int { return r.n }

// push copies row i of the batch into the ring, evicting the oldest
// entry when full (FIFO semantics, like cache.FIFO.Put at capacity).
func (r *recRing) push(pos seq.Pos, b *seq.Batch, i int, in *seq.Intern) {
	var slot int
	if r.n == len(r.pos) {
		slot = r.head
		r.head = (r.head + 1) % len(r.pos)
	} else {
		slot = (r.head + r.n) % len(r.pos)
		r.n++
	}
	r.pos[slot] = pos
	b.RowInto(i, r.rows[slot], in)
}

// oldest returns the least recently pushed entry.
func (r *recRing) oldest() (seq.Pos, seq.Record) {
	return r.pos[r.head], r.rows[r.head]
}

// newest returns the most recently pushed entry.
func (r *recRing) newest() (seq.Pos, seq.Record) {
	i := (r.head + r.n - 1) % len(r.pos)
	return r.pos[i], r.rows[i]
}

// evictBelow drops entries with position < pos from the front.
func (r *recRing) evictBelow(pos seq.Pos) {
	for r.n > 0 && r.pos[r.head] < pos {
		r.head = (r.head + 1) % len(r.pos)
		r.n--
	}
}

// BatchScan implements Cache-Strategy-B value offsets over batched
// input: the same single input scan and ring-of-|offset| algorithm as
// the scalar Scan (including the historyStart probing shortcut), with
// the FIFO cache replaced by a preallocated record ring.
func (v *ValueOffsetIncremental) BatchScan(span seq.Span, ctx *seq.BatchCtx) seq.BatchCursor {
	span = span.Intersect(v.OutSpan)
	if span.IsEmpty() {
		return seq.EmptyBatchCursor()
	}
	if !span.Bounded() {
		return seq.ErrBatchCursor(fmt.Errorf("exec: unbounded scan of value offset (span %v)", span))
	}
	inSpan := v.In.Info().Span
	width := v.In.Info().Schema.NumFields()
	schema := v.In.Info().Schema
	if v.Offset < 0 {
		end := span.End - 1
		if end > inSpan.End {
			end = inSpan.End
		}
		start, err := v.historyStart(span.Start, inSpan)
		if err != nil {
			return seq.ErrBatchCursor(err)
		}
		need := int(-v.Offset)
		return &voffsetBatchCursor{
			in:   newBatchRows(BatchScanOf(v.In, seq.Span{Start: start, End: end}, ctx)),
			ctx:  ctx,
			out:  seq.NewBatchFor(schema, ctx.Size),
			ring: newRecRing(need, width),
			need: need,
			p:    span.Start,
			end:  span.End,
			next: span.Start,
		}
	}
	start := span.Start + 1
	if start < inSpan.Start {
		start = inSpan.Start
	}
	need := int(v.Offset)
	return &voffsetBatchCursor{
		in:      newBatchRows(BatchScanOf(v.In, seq.Span{Start: start, End: inSpan.End}, ctx)),
		ctx:     ctx,
		out:     seq.NewBatchFor(schema, ctx.Size),
		ring:    newRecRing(need, width),
		need:    need,
		forward: true,
		p:       span.Start,
		end:     span.End,
		next:    span.Start,
	}
}

type voffsetBatchCursor struct {
	in      *batchRows
	ctx     *seq.BatchCtx
	out     *seq.Batch
	ring    *recRing
	need    int
	forward bool
	p       seq.Pos
	end     seq.Pos
	next    seq.Pos
	err     error
	done    bool
}

func (c *voffsetBatchCursor) NextBatch() (*seq.Batch, bool) {
	if c.err != nil || c.done {
		return nil, false
	}
	out := c.out
	out.Reset()
	out.Span = seq.Span{Start: c.next, End: c.end}
	in := c.ctx.Intern
	for c.p <= c.end && out.Rows() < c.ctx.Size {
		if !c.forward {
			// Absorb input records strictly before c.p; the ring keeps
			// the last `need` of them.
			var nextIn seq.Pos
			haveIn := false
			for {
				epos, ok, err := c.in.peek()
				if err != nil {
					c.err = err
					return nil, false
				}
				if !ok {
					break
				}
				if epos >= c.p {
					nextIn, haveIn = epos, true
					break
				}
				c.ring.push(epos, c.in.b, c.in.i, in)
				c.in.take()
			}
			// The ring is stable for every position up to and including
			// the next input record (absorption is strictly-before), so
			// the whole run emits one shared record.
			runEnd := c.end
			if haveIn && nextIn < runEnd {
				runEnd = nextIn
			}
			cnt := int(runEnd - c.p + 1) //seqvet:ignore spanarith both ends lie inside the bounded scan span
			if space := c.ctx.Size - out.Rows(); cnt > space {
				cnt = space
			}
			if c.ring.len() >= c.need {
				_, rec := c.ring.oldest()
				if err := out.AppendRunRows(c.p, cnt, rec, in); err != nil {
					c.err = err
					return nil, false
				}
			}
			c.p += seq.Pos(cnt)
			continue
		}
		// Forward: drop ring entries at or before c.p, then fill the
		// ring with records strictly after it.
		pos := c.p
		c.ring.evictBelow(pos + 1)
		for c.ring.len() < c.need {
			epos, ok, err := c.in.peek()
			if err != nil {
				c.err = err
				return nil, false
			}
			if !ok {
				break
			}
			if epos > pos {
				c.ring.push(epos, c.in.b, c.in.i, in)
			}
			c.in.take()
		}
		if c.ring.len() < c.need {
			// Input exhausted: no remaining position sees `need` records
			// ahead; the batch still spans them, holding no rows.
			c.p = c.end + 1 //seqvet:ignore spanarith bounded scan span
			break
		}
		// The newest ring entry — the record `need` ahead — is constant
		// until c.p reaches the oldest entry's position, where it is
		// evicted: emit that whole run at once.
		oldest, _ := c.ring.oldest()
		_, rec := c.ring.newest()
		runEnd := oldest - 1
		if runEnd > c.end {
			runEnd = c.end
		}
		cnt := int(runEnd - pos + 1) //seqvet:ignore spanarith both ends lie inside the bounded scan span
		if space := c.ctx.Size - out.Rows(); cnt > space {
			cnt = space
		}
		if err := out.AppendRunRows(pos, cnt, rec, in); err != nil {
			c.err = err
			return nil, false
		}
		c.p += seq.Pos(cnt)
	}
	if c.p > c.end {
		c.done = true
		return out, true
	}
	out.Span.End = c.p - 1
	c.next = c.p
	return out, true
}

func (c *voffsetBatchCursor) Err() error   { return c.err }
func (c *voffsetBatchCursor) Close() error { return c.in.close() }

