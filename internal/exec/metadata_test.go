package exec

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

// Every physical operator must expose coherent plan metadata: a
// non-empty label, its children, its caches (possibly none), and an Info
// with the schema evaluation needs. Explain must render the whole tree.
func TestAllOperatorsPlanMetadata(t *testing.T) {
	pairs := map[seq.Pos]float64{1: 1, 2: 2, 3: 3, 4: 4}
	in := leaf(t, pairs)
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(2), As: "s"}
	cumSpec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Cumulative(), As: "c"}
	span := seq.NewSpan(1, 6)

	c, _ := expr.NewCol(closeSchema, "close")
	pred, _ := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(0)))
	composeSchema, _ := closeSchema.Concat(closeSchema, "l", "r")

	sel := NewSelect(in, pred)
	proj, _ := NewProject(in, []ProjExpr{{Expr: c, Name: "close"}})
	off := NewPosOffset(in, 2)
	von, _ := NewValueOffsetNaive(in, -1, span)
	voi, _ := NewValueOffsetIncremental(in, -1, span)
	agn, _ := NewAggNaive(in, spec, span)
	agc, _ := NewAggCached(in, spec, span)
	ags, _ := NewAggSliding(in, spec, span)
	agr, _ := NewAggCumulative(in, cumSpec, span)
	cmp, _ := NewCompose(leaf(t, pairs), leaf(t, pairs), nil, composeSchema, ComposeLockStep)
	mat, _ := NewMaterialize(in, span)
	col, _ := NewCollapse(in, 2, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, As: "g"}, seq.NewSpan(0, 3))
	exp, _ := NewExpand(in, 2, seq.NewSpan(2, 9))
	ren, _ := NewRename(in, seq.MustSchema(seq.Field{Name: "x", Type: seq.TFloat}))

	plans := []Plan{sel, proj, off, von, voi, agn, agc, ags, agr, cmp, mat, col, exp, ren}
	for _, p := range plans {
		if p.Label() == "" {
			t.Errorf("%T: empty label", p)
		}
		if len(p.Children()) == 0 {
			t.Errorf("%T: no children", p)
		}
		info := p.Info()
		if info.Schema == nil || info.Schema.NumFields() == 0 {
			t.Errorf("%T: bad info schema", p)
		}
		text := Explain(p)
		if !strings.Contains(text, "scan(s)") {
			t.Errorf("%T: explain does not reach the leaf:\n%s", p, text)
		}
		// Caches must be consistent with AllCaches.
		if len(p.Caches()) > len(AllCaches(p)) {
			t.Errorf("%T: caches inconsistent", p)
		}
	}
	// Cache-owning operators report them.
	if len(voi.Caches()) != 1 || len(agc.Caches()) != 1 {
		t.Error("voffset-cacheB and agg-cacheA must own one cache each")
	}
}

// Every operator's Scan must respect a narrowed request span.
func TestAllOperatorsScanNarrowing(t *testing.T) {
	pairs := map[seq.Pos]float64{1: 1, 2: 2, 3: 3, 4: 4, 5: 5, 6: 6}
	in := leaf(t, pairs)
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(2), As: "s"}
	span := seq.NewSpan(1, 6)
	narrow := seq.NewSpan(3, 4)

	von, _ := NewValueOffsetNaive(in, -1, span)
	voi, _ := NewValueOffsetIncremental(in, -1, span)
	agc, _ := NewAggCached(in, spec, span)
	ags, _ := NewAggSliding(in, spec, span)
	col, _ := NewCollapse(in, 2, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, As: "g"}, seq.NewSpan(0, 3))
	exp, _ := NewExpand(in, 2, seq.NewSpan(2, 13))

	for _, p := range []Plan{von, voi, agc, ags, col, exp} {
		es, err := seq.Collect(p.Scan(narrow))
		if err != nil {
			t.Fatalf("%s: %v", p.Label(), err)
		}
		for _, e := range es {
			if !narrow.Contains(e.Pos) {
				t.Errorf("%s: emitted %d outside %v", p.Label(), e.Pos, narrow)
			}
		}
		if len(es) == 0 {
			t.Errorf("%s: narrowed scan yielded nothing", p.Label())
		}
	}
}
