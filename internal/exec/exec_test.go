package exec

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

var closeSchema = seq.MustSchema(seq.Field{Name: "close", Type: seq.TFloat})

func mkSeq(t *testing.T, pairs map[seq.Pos]float64) *seq.Materialized {
	t.Helper()
	es := make([]seq.Entry, 0, len(pairs))
	for p, v := range pairs {
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(v)}})
	}
	return seq.MustMaterialized(closeSchema, es)
}

func leaf(t *testing.T, pairs map[seq.Pos]float64) *Leaf {
	t.Helper()
	return NewLeaf("s", mkSeq(t, pairs), seq.AllSpan)
}

func gt(t *testing.T, schema *seq.Schema, col string, v float64) expr.Expr {
	t.Helper()
	c, err := expr.NewCol(schema, col)
	if err != nil {
		t.Fatal(err)
	}
	e, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(v)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runPlan drains the plan over span and returns pos -> first column float.
func runPlan(t *testing.T, p Plan, span seq.Span) map[seq.Pos]float64 {
	t.Helper()
	m, err := Run(p, span)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[seq.Pos]float64)
	for _, e := range m.Entries() {
		out[e.Pos] = e.Rec[0].AsFloat()
	}
	return out
}

func wantMap(t *testing.T, got, want map[seq.Pos]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for p, v := range want {
		if g, ok := got[p]; !ok || g != v {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLeafSpanRestriction(t *testing.T) {
	l := NewLeaf("s", mkSeq(t, map[seq.Pos]float64{1: 1, 5: 5, 9: 9}), seq.NewSpan(3, 7))
	got := runPlan(t, l, seq.AllSpan)
	wantMap(t, got, map[seq.Pos]float64{5: 5})
	// Probes are not restricted (restriction is a scan optimization).
	r, err := l.Probe(9)
	if err != nil || r.IsNull() {
		t.Error("probe outside access span must still answer")
	}
	if !strings.Contains(l.Label(), "span=") {
		t.Errorf("label = %q", l.Label())
	}
	u := NewLeaf("s", mkSeq(t, nil), seq.AllSpan)
	if strings.Contains(u.Label(), "span=") {
		t.Errorf("unrestricted label = %q", u.Label())
	}
}

func TestSelectOp(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 5, 2: 9, 3: 2})
	s := NewSelect(in, gt(t, closeSchema, "close", 4))
	wantMap(t, runPlan(t, s, seq.AllSpan), map[seq.Pos]float64{1: 5, 2: 9})
	r, err := s.Probe(2)
	if err != nil || r.IsNull() {
		t.Errorf("Probe(2) = %v, %v", r, err)
	}
	r, err = s.Probe(3)
	if err != nil || !r.IsNull() {
		t.Errorf("Probe(3) must be Null, got %v", r)
	}
	if s.Label() == "" || len(s.Children()) != 1 || s.Caches() != nil {
		t.Error("plan metadata wrong")
	}
}

func TestProjectOp(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 5})
	c, _ := expr.NewCol(closeSchema, "close")
	dbl, _ := expr.NewBin(expr.OpMul, c, expr.Literal(seq.Float(2)))
	p, err := NewProject(in, []ProjExpr{{Expr: dbl, Name: "twice"}})
	if err != nil {
		t.Fatal(err)
	}
	wantMap(t, runPlan(t, p, seq.AllSpan), map[seq.Pos]float64{1: 10})
	r, err := p.Probe(1)
	if err != nil || r[0].AsFloat() != 10 {
		t.Errorf("Probe = %v, %v", r, err)
	}
	if r, _ := p.Probe(2); !r.IsNull() {
		t.Error("Probe at empty position must be Null")
	}
	if p.Info().Schema.Field(0).Name != "twice" {
		t.Error("projected schema wrong")
	}
	if _, err := NewProject(in, []ProjExpr{{Expr: c, Name: "a"}, {Expr: c, Name: "a"}}); err == nil {
		t.Error("duplicate output names must be rejected")
	}
}

func TestPosOffsetOp(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{3: 30, 5: 50})
	o := NewPosOffset(in, 2) // out(i) = in(i+2)
	wantMap(t, runPlan(t, o, seq.AllSpan), map[seq.Pos]float64{1: 30, 3: 50})
	r, err := o.Probe(1)
	if err != nil || r[0].AsFloat() != 30 {
		t.Errorf("Probe(1) = %v, %v", r, err)
	}
	//seqvet:ignore spanarith deliberately probing at the sentinel boundary
	if r, _ := o.Probe(seq.MaxPos - 1); !r.IsNull() {
		t.Error("offset past the sentinel must be Null")
	}
	// Restricted scan.
	wantMap(t, runPlan(t, o, seq.NewSpan(2, 9)), map[seq.Pos]float64{3: 50})
	if o.Info().Span != seq.NewSpan(1, 3) {
		t.Errorf("Info span = %v", o.Info().Span)
	}
}

func TestValueOffsetNaivePrevious(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{2: 20, 5: 50, 6: 60})
	v, err := NewValueOffsetNaive(in, -1, seq.NewSpan(0, 9))
	if err != nil {
		t.Fatal(err)
	}
	want := map[seq.Pos]float64{3: 20, 4: 20, 5: 20, 6: 50, 7: 60, 8: 60, 9: 60}
	wantMap(t, runPlan(t, v, seq.AllSpan), want)
	r, err := v.Probe(6)
	if err != nil || r[0].AsFloat() != 50 {
		t.Errorf("Probe(6) = %v, %v", r, err)
	}
	if r, _ := v.Probe(2); !r.IsNull() {
		t.Error("Probe(2) must be Null (no earlier record)")
	}
	if _, err := NewValueOffsetNaive(in, 0, seq.AllSpan); err == nil {
		t.Error("zero offset must be rejected")
	}
	unbounded, _ := NewValueOffsetNaive(in, -1, seq.AllSpan)
	if err := unbounded.Scan(seq.AllSpan).Err(); err == nil {
		t.Error("unbounded value-offset scan must error")
	}
}

func TestValueOffsetIncrementalMatchesNaive(t *testing.T) {
	pairs := map[seq.Pos]float64{2: 20, 5: 50, 6: 60, 11: 110, 17: 170}
	for _, offset := range []int64{-1, -2, -3, 1, 2} {
		in := leaf(t, pairs)
		span := seq.NewSpan(0, 20)
		naive, err := NewValueOffsetNaive(in, offset, span)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := NewValueOffsetIncremental(in, offset, span)
		if err != nil {
			t.Fatal(err)
		}
		got := runPlan(t, inc, seq.AllSpan)
		want := runPlan(t, naive, seq.AllSpan)
		if len(got) != len(want) {
			t.Fatalf("offset %d: inc %v, naive %v", offset, got, want)
		}
		for p, v := range want {
			if got[p] != v {
				t.Fatalf("offset %d at %d: inc %g, naive %g", offset, p, got[p], v)
			}
		}
		// Cache-finite: peak residency is at most |offset|.
		k := offset
		if k < 0 {
			k = -k
		}
		if peak := PeakCacheResidency(inc); int64(peak) > k {
			t.Errorf("offset %d: peak cache %d exceeds |offset|", offset, peak)
		}
		// Probe fallback agrees.
		for p := seq.Pos(0); p <= 20; p++ {
			a, err1 := inc.Probe(p)
			b, err2 := naive.Probe(p)
			if err1 != nil || err2 != nil || !a.Equal(b) {
				t.Fatalf("offset %d probe %d: %v vs %v", offset, p, a, b)
			}
		}
	}
}

func TestValueOffsetMatchesReference(t *testing.T) {
	pairs := map[seq.Pos]float64{1: 10, 3: 30, 6: 60, 7: 70}
	for _, offset := range []int64{-2, -1, 1, 2} {
		node := algebra.Base("s", mkSeq(t, pairs))
		vo, err := algebra.ValueOffset(node, offset)
		if err != nil {
			t.Fatal(err)
		}
		want, err := algebra.EvalRange(vo, seq.NewSpan(-1, 10))
		if err != nil {
			t.Fatal(err)
		}
		in := leaf(t, pairs)
		inc, _ := NewValueOffsetIncremental(in, offset, seq.NewSpan(-1, 10))
		got, err := seq.Collect(inc.Scan(seq.AllSpan))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("offset %d: got %v, want %v", offset, got, want)
		}
		for i := range got {
			if got[i].Pos != want[i].Pos || !got[i].Rec.Equal(want[i].Rec) {
				t.Fatalf("offset %d: entry %d: %v vs %v", offset, i, got[i], want[i])
			}
		}
	}
}

func aggVariants(t *testing.T, in Plan, spec algebra.AggSpec, outSpan seq.Span) []Plan {
	t.Helper()
	naive, err := NewAggNaive(in, spec, outSpan)
	if err != nil {
		t.Fatal(err)
	}
	plans := []Plan{naive}
	if _, fixed := spec.Window.Size(); fixed {
		cached, err := NewAggCached(in, spec, outSpan)
		if err != nil {
			t.Fatal(err)
		}
		sliding, err := NewAggSliding(in, spec, outSpan)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, cached, sliding)
	}
	if spec.Window.LoUnbounded && !spec.Window.HiUnbounded {
		run, err := NewAggCumulative(in, spec, outSpan)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, run)
	}
	return plans
}

func TestAggStrategiesMatchReference(t *testing.T) {
	pairs := map[seq.Pos]float64{1: 4, 2: 2, 4: 6, 5: 1, 8: 9, 9: 3}
	windows := []algebra.Window{
		algebra.Trailing(1), algebra.Trailing(3), algebra.Trailing(6),
		algebra.Range(-2, 1), algebra.Range(1, 3), algebra.Range(-4, -2),
		algebra.Cumulative(),
	}
	funcs := []algebra.AggFunc{algebra.AggSum, algebra.AggAvg, algebra.AggMin, algebra.AggMax, algebra.AggCount}
	span := seq.NewSpan(-2, 13)
	for _, w := range windows {
		for _, f := range funcs {
			spec := algebra.AggSpec{Func: f, Arg: 0, Window: w, As: "v"}
			node := algebra.Base("s", mkSeq(t, pairs))
			agNode, err := algebra.Agg(node, spec)
			if err != nil {
				t.Fatal(err)
			}
			want, err := algebra.EvalRange(agNode, span)
			if err != nil {
				t.Fatal(err)
			}
			for _, plan := range aggVariants(t, leaf(t, pairs), spec, span) {
				got, err := seq.Collect(plan.Scan(seq.AllSpan))
				if err != nil {
					t.Fatalf("%s %s %s: %v", plan.Label(), f, w, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s %s %s: got %d entries %v, want %d %v", plan.Label(), f, w, len(got), got, len(want), want)
				}
				for i := range got {
					if got[i].Pos != want[i].Pos || !got[i].Rec.Equal(want[i].Rec) {
						t.Fatalf("%s %s %s at %d: %v vs %v", plan.Label(), f, w, got[i].Pos, got[i].Rec, want[i].Rec)
					}
				}
			}
		}
	}
}

func TestAggProbeModes(t *testing.T) {
	pairs := map[seq.Pos]float64{1: 4, 2: 2, 4: 6}
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(3), As: "v"}
	span := seq.NewSpan(1, 6)
	naive, _ := NewAggNaive(leaf(t, pairs), spec, span)
	cached, _ := NewAggCached(leaf(t, pairs), spec, span)
	sliding, _ := NewAggSliding(leaf(t, pairs), spec, span)
	cum, _ := NewAggCumulative(leaf(t, pairs), algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Cumulative(), As: "v"}, span)
	for p := span.Start; p <= span.End; p++ {
		want, err := naive.Probe(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, plan := range []Plan{cached, sliding} {
			got, err := plan.Probe(p)
			if err != nil || !got.Equal(want) {
				t.Errorf("%s Probe(%d) = %v, want %v", plan.Label(), p, got, want)
			}
		}
		_, err = cum.Probe(p)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAggCachedResidencyBounded(t *testing.T) {
	pairs := make(map[seq.Pos]float64)
	for p := seq.Pos(1); p <= 500; p++ {
		pairs[p] = float64(p)
	}
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(8), As: "v"}
	cached, _ := NewAggCached(leaf(t, pairs), spec, seq.NewSpan(1, 507))
	if _, err := Run(cached, seq.AllSpan); err != nil {
		t.Fatal(err)
	}
	if peak := PeakCacheResidency(cached); peak > 8 {
		t.Errorf("peak residency %d exceeds window size 8 (cache-finiteness violated)", peak)
	}
}

func TestAggConstructorsReject(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 1})
	if _, err := NewAggCached(in, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Cumulative()}, seq.AllSpan); err == nil {
		t.Error("Cache-A with unbounded window must be rejected")
	}
	if _, err := NewAggSliding(in, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Cumulative()}, seq.AllSpan); err == nil {
		t.Error("sliding with unbounded window must be rejected")
	}
	if _, err := NewAggCumulative(in, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(2)}, seq.AllSpan); err == nil {
		t.Error("cumulative with bounded window must be rejected")
	}
	if _, err := NewAggNaive(in, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Range(2, 1)}, seq.AllSpan); err == nil {
		t.Error("empty window must be rejected")
	}
}

func composePlans(t *testing.T, lp, rp map[seq.Pos]float64, predGt float64) []Plan {
	t.Helper()
	schema, err := closeSchema.Concat(closeSchema, "l", "r")
	if err != nil {
		t.Fatal(err)
	}
	lcol, _ := expr.NewCol(schema, "l.close")
	rcol, _ := expr.NewCol(schema, "r.close")
	diff, _ := expr.NewBin(expr.OpSub, lcol, rcol)
	pred, _ := expr.NewBin(expr.OpGt, diff, expr.Literal(seq.Float(predGt)))
	var plans []Plan
	for _, s := range []ComposeStrategy{ComposeLockStep, ComposeStreamLeft, ComposeStreamRight} {
		c, err := NewCompose(NewLeaf("l", mkSeq(t, lp), seq.AllSpan), NewLeaf("r", mkSeq(t, rp), seq.AllSpan), pred, schema, s)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, c)
	}
	return plans
}

func TestComposeStrategiesAgree(t *testing.T) {
	lp := map[seq.Pos]float64{1: 10, 2: 20, 3: 30, 5: 50}
	rp := map[seq.Pos]float64{2: 19, 3: 31, 5: 10, 7: 70}
	plans := composePlans(t, lp, rp, 0)
	want, err := Run(plans[0], seq.AllSpan)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: pos 2 (20>19) and 5 (50>10); pos 3 fails (30<31).
	if want.Count() != 2 {
		t.Fatalf("lockstep result = %v", want.Entries())
	}
	for _, p := range plans[1:] {
		got, err := Run(p, seq.AllSpan)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != want.Count() {
			t.Fatalf("%s disagrees: %v vs %v", p.Label(), got.Entries(), want.Entries())
		}
		for i, e := range got.Entries() {
			w := want.Entries()[i]
			if e.Pos != w.Pos || !e.Rec.Equal(w.Rec) {
				t.Fatalf("%s at %d: %v vs %v", p.Label(), e.Pos, e.Rec, w.Rec)
			}
		}
	}
	// Probed access agrees too.
	for p := seq.Pos(0); p <= 8; p++ {
		want, err := plans[0].Probe(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, plan := range plans[1:] {
			got, err := plan.Probe(p)
			if err != nil || !got.Equal(want) {
				t.Errorf("%s Probe(%d) = %v, want %v", plan.Label(), p, got, want)
			}
		}
	}
}

func TestComposeMatchesReference(t *testing.T) {
	lp := map[seq.Pos]float64{1: 10, 2: 20, 3: 30}
	rp := map[seq.Pos]float64{2: 19, 3: 31}
	lnode := algebra.Base("l", mkSeq(t, lp))
	rnode := algebra.Base("r", mkSeq(t, rp))
	schema, _ := algebra.ComposeSchema(lnode, rnode, "l", "r")
	lcol, _ := expr.NewCol(schema, "l.close")
	rcol, _ := expr.NewCol(schema, "r.close")
	pred, _ := expr.NewBin(expr.OpGt, lcol, rcol)
	cnode, _ := algebra.Compose(lnode, rnode, pred, "l", "r")
	want, err := algebra.EvalRange(cnode, seq.NewSpan(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range composePlans(t, lp, rp, 0) {
		got, err := seq.Collect(plan.Scan(seq.NewSpan(0, 5)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %v vs %v", plan.Label(), got, want)
		}
		for i := range got {
			if got[i].Pos != want[i].Pos || !got[i].Rec.Equal(want[i].Rec) {
				t.Fatalf("%s: %v vs %v", plan.Label(), got[i], want[i])
			}
		}
	}
}

func TestComposeValidation(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 1})
	if _, err := NewCompose(in, in, nil, closeSchema, ComposeLockStep); err == nil {
		t.Error("arity-mismatched schema must be rejected")
	}
	schema, _ := closeSchema.Concat(closeSchema, "l", "r")
	c, _ := expr.NewCol(schema, "l.close")
	if _, err := NewCompose(in, in, c, schema, ComposeLockStep); err == nil {
		t.Error("non-bool predicate must be rejected")
	}
	for s := ComposeLockStep; s <= ComposeStreamRight; s++ {
		if s.String() == "" {
			t.Error("strategy must render")
		}
	}
}

func TestMaterialize(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 1, 3: 3})
	m, err := NewMaterialize(in, seq.NewSpan(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	wantMap(t, runPlan(t, m, seq.AllSpan), map[seq.Pos]float64{1: 1, 3: 3})
	r, err := m.Probe(3)
	if err != nil || r[0].AsFloat() != 3 {
		t.Errorf("Probe = %v, %v", r, err)
	}
	if _, err := NewMaterialize(in, seq.AllSpan); err == nil {
		t.Error("unbounded materialization must be rejected")
	}
	if m.Label() == "" || len(m.Children()) != 1 {
		t.Error("plan metadata wrong")
	}
}

func TestExplainAndRunProbes(t *testing.T) {
	in := leaf(t, map[seq.Pos]float64{1: 5, 2: 2})
	s := NewSelect(in, gt(t, closeSchema, "close", 3))
	text := Explain(s)
	if !strings.Contains(text, "select") || !strings.Contains(text, "scan(s)") {
		t.Errorf("Explain = %q", text)
	}
	got, err := RunProbes(s, []seq.Pos{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Pos != 1 {
		t.Errorf("RunProbes = %v", got)
	}
}
