package exec

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/seq"
	"repro/internal/storage"
)

// clonableFixture builds a stateful plan — Cache-Strategy-A aggregate
// over a Cache-Strategy-B value offset, reading a paged sparse store —
// whose correct evaluation depends on private per-run cache state and
// whose instrumentation meters real page accesses.
func clonableFixture(t *testing.T) Plan {
	t.Helper()
	st, err := storage.FromMaterialized(
		mkSeq(t, map[seq.Pos]float64{1: 10, 2: 20, 4: 40, 5: 50, 7: 70, 8: 80}),
		storage.KindSparse, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := NewLeaf("s", st, seq.AllSpan)
	vo, err := NewValueOffsetIncremental(in, -2, seq.NewSpan(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(3), As: "sum"}
	agg, err := NewAggCached(vo, spec, seq.NewSpan(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func TestClonePlanIndependence(t *testing.T) {
	p := clonableFixture(t)
	want := runPlan(t, p, seq.NewSpan(1, 10))

	cp, orig, err := ClonePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	// The clone maps back to the original node for node, with matching
	// labels.
	var walk func(c Plan)
	walk = func(c Plan) {
		o, ok := orig[c]
		if !ok {
			t.Fatalf("clone node %s missing from the origin mapping", c.Label())
		}
		if o.Label() != c.Label() {
			t.Fatalf("clone %s maps to original %s", c.Label(), o.Label())
		}
		for _, ch := range c.Children() {
			walk(ch)
		}
	}
	walk(cp)
	// No operator cache may be shared between the clone and the original.
	seen := make(map[any]bool)
	for _, n := range []Plan{p, cp} {
		var collect func(pl Plan)
		collect = func(pl Plan) {
			for _, f := range pl.Caches() {
				if seen[f] {
					t.Fatalf("cache shared between original and clone at %s", pl.Label())
				}
				seen[f] = true
			}
			for _, ch := range pl.Children() {
				collect(ch)
			}
		}
		collect(n)
	}
	// Interleaved evaluation: both plans produce the serial answer while
	// taking turns (shared caches would corrupt each other's streams).
	got := runPlan(t, cp, seq.NewSpan(1, 10))
	wantMap(t, got, want)
	wantMap(t, runPlan(t, p, seq.NewSpan(1, 10)), want)
	wantMap(t, runPlan(t, cp, seq.NewSpan(1, 10)), want)
}

func TestClonePlanRefusesUnknownOperators(t *testing.T) {
	p := clonableFixture(t)
	instr, _ := Instrument(p, nil)
	if _, _, err := ClonePlan(instr); err == nil {
		t.Fatal("cloning an instrumented (*Metered) tree must fail")
	} else if !strings.Contains(err.Error(), "cannot clone unknown operator") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestInstrumentShardsMergeConcurrently is the concurrency contract of
// the EXPLAIN ANALYZE counters: one instrumented plan per worker (a
// private metrics shard) over a worker-private fork of each base store,
// merged after the workers join. Sharing a single instrumented plan
// across workers instead makes the plain-int NodeMetrics counters a
// data race — the -race runs in CI fail on that naive version — and
// sharing the store counters between workers interleaves the Metered
// delta snapshots, misattributing pages; Instrument + Fork + Merge is
// the only supported shape for concurrent analysis.
func TestInstrumentShardsMergeConcurrently(t *testing.T) {
	p := clonableFixture(t)
	spans := []seq.Span{seq.NewSpan(1, 3), seq.NewSpan(4, 6), seq.NewSpan(7, 10)}

	// Serial reference: one shard draining every span in turn.
	refInstr, refRoot := Instrument(p, nil)
	for _, s := range spans {
		if _, err := Run(refInstr, s); err != nil {
			t.Fatal(err)
		}
	}
	refRoot.Finalize()

	// Concurrent workers: a private clone, store fork, and shard each,
	// merged at the end.
	roots := make([]*NodeMetrics, len(spans))
	var wg sync.WaitGroup
	for i, s := range spans {
		cp, _, err := ClonePlan(p)
		if err != nil {
			t.Fatal(err)
		}
		ReplaceLeafSeqs(cp, func(l *Leaf) {
			if st, ok := l.Seq.(storage.StatsForker); ok {
				l.Seq = st.Fork(&storage.Stats{})
			}
		})
		instr, root := Instrument(cp, nil)
		roots[i] = root
		wg.Add(1)
		go func(s seq.Span) {
			defer wg.Done()
			if _, err := Run(instr, s); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()
	merged := roots[0]
	merged.Finalize()
	for _, r := range roots[1:] {
		r.Finalize()
		if err := merged.Merge(r); err != nil {
			t.Fatal(err)
		}
	}
	// The merged shards must agree with the serial reference on every
	// data-dependent counter (times differ; capacities triple, because
	// three workers own three full cache sets).
	var check func(a, b *NodeMetrics)
	check = func(a, b *NodeMetrics) {
		if a.Label != b.Label {
			t.Fatalf("shape mismatch: %s vs %s", a.Label, b.Label)
		}
		if a.ScanRows != b.ScanRows || a.ProbeCalls != b.ProbeCalls || a.ProbeNulls != b.ProbeNulls {
			t.Errorf("%s: merged rows/probes = %d/%d/%d, serial %d/%d/%d",
				a.Label, a.ScanRows, a.ProbeCalls, a.ProbeNulls, b.ScanRows, b.ProbeCalls, b.ProbeNulls)
		}
		if a.Pages != b.Pages {
			t.Errorf("%s: merged pages %v, serial %v", a.Label, a.Pages, b.Pages)
		}
		for i := range a.Children {
			check(a.Children[i], b.Children[i])
		}
	}
	check(merged, refRoot)
	if merged.ScanCalls != refRoot.ScanCalls {
		t.Errorf("merged scan calls %d, serial %d", merged.ScanCalls, refRoot.ScanCalls)
	}
}

func TestMergeRejectsDifferentShapes(t *testing.T) {
	p := clonableFixture(t)
	_, a := Instrument(p, nil)
	_, b := Instrument(leaf(t, map[seq.Pos]float64{1: 1}), nil)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging metrics of different plans must fail")
	}
}
