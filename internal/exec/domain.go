package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/cache"
	"repro/internal/seq"
)

// CollapseOp evaluates the ordering-domain coarsening operator (§5.1):
// output position j aggregates the input records at positions
// {jk, ..., jk+k-1}. Stream evaluation is a single input scan — groups
// arrive contiguously, so no cache is needed at all; probes scan one
// k-position segment.
type CollapseOp struct {
	In      Plan
	Factor  int64
	Spec    algebra.AggSpec
	OutSpan seq.Span
	schema  *seq.Schema
}

// NewCollapse builds the collapse operator.
func NewCollapse(in Plan, factor int64, spec algebra.AggSpec, outSpan seq.Span) (*CollapseOp, error) {
	if factor <= 1 {
		return nil, fmt.Errorf("exec: collapse factor must be > 1, got %d", factor)
	}
	schema, err := aggSchema(in, &spec)
	if err != nil {
		return nil, err
	}
	return &CollapseOp{In: in, Factor: factor, Spec: spec, OutSpan: outSpan, schema: schema}, nil
}

// Info implements seq.Sequence.
func (c *CollapseOp) Info() seq.Info {
	return seq.Info{Schema: c.schema, Span: c.OutSpan, Density: 1}
}

// Probe implements seq.Sequence: aggregate one group segment.
func (c *CollapseOp) Probe(pos seq.Pos) (seq.Record, error) {
	group := algebra.GroupSpan(pos, c.Factor).Intersect(c.In.Info().Span)
	if group.IsEmpty() {
		return nil, nil
	}
	cur := c.In.Scan(group)
	defer cur.Close()
	var vals []seq.Value
	for {
		_, r, ok := cur.Next()
		if !ok {
			break
		}
		vals = append(vals, aggArg(&c.Spec, r))
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	v, ok, err := c.Spec.Func.Apply(vals)
	if err != nil || !ok {
		return nil, err
	}
	return seq.Record{v}, nil
}

// Scan implements seq.Sequence: one pass over the grouped input.
func (c *CollapseOp) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(c.OutSpan)
	if span.IsEmpty() {
		return emptyCursor{}
	}
	if !span.Bounded() {
		return seq.ErrCursor(fmt.Errorf("exec: unbounded scan of collapse (span %v)", span))
	}
	inSpan := seq.Span{
		Start: seq.ClampPos(span.Start * c.Factor),
		End:   seq.ClampPos(span.End*c.Factor + c.Factor - 1),
	}.Intersect(c.In.Info().Span)
	in := newPull(c.In.Scan(inSpan))
	var done bool
	vals := make([]seq.Value, 0, c.Factor) // reused across groups
	return &forwardCursor{
		closes: []func() error{in.close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			for !done {
				// The next group is determined by the next input record.
				e, ok, err := in.peek()
				if err != nil {
					return 0, nil, false, err
				}
				if !ok {
					done = true
					return 0, nil, false, nil
				}
				j := algebra.FloorDiv(e.Pos, c.Factor)
				groupEnd := j*c.Factor + c.Factor - 1
				vals = vals[:0]
				for {
					e, ok, err := in.peek()
					if err != nil {
						return 0, nil, false, err
					}
					if !ok || e.Pos > groupEnd {
						break
					}
					vals = append(vals, aggArg(&c.Spec, e.Rec))
					in.take()
				}
				v, okv, err := c.Spec.Func.Apply(vals)
				if err != nil {
					return 0, nil, false, err
				}
				if okv && span.Contains(j) {
					return j, seq.Record{v}, true, nil
				}
			}
			return 0, nil, false, nil
		},
	}
}

// Label implements Plan.
func (c *CollapseOp) Label() string {
	return fmt.Sprintf("collapse(%s, k=%d)", c.Spec.Func, c.Factor)
}

// Children implements Plan.
func (c *CollapseOp) Children() []Plan { return []Plan{c.In} }

// Caches implements Plan.
func (c *CollapseOp) Caches() []*cache.FIFO { return nil }

// ExpandOp evaluates the ordering-domain refinement operator (§5.1):
// output position i carries the input record at floor(i/k), replicating
// each coarse record across its k fine positions.
type ExpandOp struct {
	In      Plan
	Factor  int64
	OutSpan seq.Span
}

// NewExpand builds the expand operator.
func NewExpand(in Plan, factor int64, outSpan seq.Span) (*ExpandOp, error) {
	if factor <= 1 {
		return nil, fmt.Errorf("exec: expand factor must be > 1, got %d", factor)
	}
	return &ExpandOp{In: in, Factor: factor, OutSpan: outSpan}, nil
}

// Info implements seq.Sequence.
func (x *ExpandOp) Info() seq.Info {
	info := x.In.Info()
	info.Span = x.OutSpan
	return info
}

// Probe implements seq.Sequence.
func (x *ExpandOp) Probe(pos seq.Pos) (seq.Record, error) {
	return x.In.Probe(algebra.FloorDiv(pos, x.Factor))
}

// Scan implements seq.Sequence: each input record is emitted k times.
func (x *ExpandOp) Scan(span seq.Span) seq.Cursor {
	span = span.Intersect(x.OutSpan)
	if span.IsEmpty() {
		return emptyCursor{}
	}
	if !span.Bounded() {
		return seq.ErrCursor(fmt.Errorf("exec: unbounded scan of expand (span %v)", span))
	}
	inSpan := seq.Span{
		Start: algebra.FloorDiv(span.Start, x.Factor),
		End:   algebra.FloorDiv(span.End, x.Factor),
	}
	in := newPull(x.In.Scan(inSpan))
	var cur seq.Entry
	var at, end seq.Pos
	var have bool
	return &forwardCursor{
		closes: []func() error{in.close},
		next: func() (seq.Pos, seq.Record, bool, error) {
			for {
				if have && at <= end {
					p := at
					at++
					return p, cur.Rec, true, nil
				}
				e, ok, err := in.peek()
				if err != nil {
					return 0, nil, false, err
				}
				if !ok {
					return 0, nil, false, nil
				}
				in.take()
				cur = e
				lo := e.Pos * x.Factor
				hi := lo + x.Factor - 1
				if lo < span.Start {
					lo = span.Start
				}
				if hi > span.End {
					hi = span.End
				}
				at, end, have = lo, hi, true
			}
		},
	}
}

// Label implements Plan.
func (x *ExpandOp) Label() string { return fmt.Sprintf("expand(k=%d)", x.Factor) }

// Children implements Plan.
func (x *ExpandOp) Children() []Plan { return []Plan{x.In} }

// Caches implements Plan.
func (x *ExpandOp) Caches() []*cache.FIFO { return nil }
