// EXPLAIN ANALYZE instrumentation: a metering layer that wraps every
// node of a physical plan with per-operator execution counters — rows,
// Null probe answers, stream vs probed call counts, cache activity,
// page accesses attributed to the node, and wall-clock time — next to
// the optimizer's predicted cost for the node. The layer is strictly
// additive: uninstrumented plans run the exact same code they always
// did (zero overhead when analysis is off), and Instrument deep-copies
// the operator tree, so the original plan is never mutated.
//
// See OBSERVABILITY.md for the meaning of every counter and how to read
// the rendered output.
package exec

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/seq"
	"repro/internal/storage"
)

// PredictedCost is the optimizer's estimate for one plan node, carried
// into the physical plan so EXPLAIN ANALYZE can print predicted vs
// actual side by side. Stream is the cumulative cost (in
// sequential-page units) of one full stream pass over the node's access
// span, including its inputs; ProbePer is the expected cost of one
// probed access. Known distinguishes "estimated as zero" from "the
// optimizer produced no estimate for this node" (e.g. rename wrappers).
type PredictedCost struct {
	Stream   float64
	ProbePer float64
	Known    bool
}

// NodeMetrics is the execution record of one plan node. Counters are
// inclusive of the node's own work but exclusive of its children's
// (children have their own NodeMetrics); wall-clock times are inclusive
// of children, like the per-node times of other engines' EXPLAIN
// ANALYZE, because a pull pipeline spends child time inside the
// parent's Next.
type NodeMetrics struct {
	// Label is the operator's Label() at instrumentation time.
	Label string
	// Predicted is the optimizer's estimate for this node.
	Predicted PredictedCost
	// Children mirror the plan tree.
	Children []*NodeMetrics

	// ScanCalls counts cursors opened on the node (stream accesses);
	// ScanRows the records those cursors emitted.
	ScanCalls int64
	ScanRows  int64
	// ProbeCalls counts probed accesses; ProbeRows the non-Null
	// answers, ProbeNulls the Null records produced.
	ProbeCalls int64
	ProbeRows  int64
	ProbeNulls int64
	// ScanTime/ProbeTime are inclusive wall-clock times spent inside
	// the node's Scan cursors and Probe calls.
	ScanTime  time.Duration
	ProbeTime time.Duration

	// Batch-mode tallies. BatchCalls counts batch scans opened on the
	// node (each also counts in ScanCalls), Batches the batches it
	// emitted, BatchRows the valid rows those batches carried (also in
	// ScanRows, so rows stay comparable across modes). All zero when
	// the node ran scalar.
	BatchCalls int64
	Batches    int64
	BatchRows  int64

	// Pages holds the base-store accesses attributed to this node.
	// Only leaves over metered stores set HasPages; by construction the
	// leaf-attributed counters sum exactly to the global storage.Stats
	// deltas of the run.
	Pages    storage.StatsSnapshot
	HasPages bool

	// Cache counters, copied from the node's operator caches after the
	// run (HasCache reports the node owns at least one).
	HasCache       bool
	CacheCap       int
	CachePeak      int
	CacheHits      int64
	CacheMisses    int64
	CachePuts      int64
	CacheEvictions int64

	pageStats *storage.Stats
	caches    []*cache.FIFO
}

// Finalize copies the deferred counters (page attribution, cache
// activity) into the exported fields, recursively. Call it once after
// the instrumented plan has been drained.
func (m *NodeMetrics) Finalize() {
	if m.pageStats != nil {
		m.Pages = m.pageStats.Snapshot()
	}
	for _, c := range m.caches {
		m.CacheCap += c.Cap()
		m.CachePeak += c.Peak()
		m.CacheHits += c.Hits()
		m.CacheMisses += c.Misses()
		m.CachePuts += c.Puts()
		m.CacheEvictions += c.Evictions()
	}
	for _, c := range m.Children {
		c.Finalize()
	}
}

// Merge folds another metrics tree into this one, summing every counter
// recursively. Both trees must mirror the same plan shape (same labels,
// same child structure) — as produced by instrumenting independent
// clones of one plan, the per-worker shards of a partitioned run. Call
// Finalize on both trees before merging, so the deferred page and cache
// counters are in the exported fields. Capacities and peaks sum too:
// K workers each own a full set of operator caches, so the merged
// numbers report the actual total residency of the parallel run.
func (m *NodeMetrics) Merge(o *NodeMetrics) error {
	if m.Label != o.Label {
		return fmt.Errorf("exec: merging metrics of different operators: %q vs %q", m.Label, o.Label)
	}
	if len(m.Children) != len(o.Children) {
		return fmt.Errorf("exec: merging metrics with different shapes at %q: %d vs %d children",
			m.Label, len(m.Children), len(o.Children))
	}
	m.ScanCalls += o.ScanCalls
	m.ScanRows += o.ScanRows
	m.ProbeCalls += o.ProbeCalls
	m.ProbeRows += o.ProbeRows
	m.ProbeNulls += o.ProbeNulls
	m.ScanTime += o.ScanTime
	m.ProbeTime += o.ProbeTime
	m.BatchCalls += o.BatchCalls
	m.Batches += o.Batches
	m.BatchRows += o.BatchRows
	m.Pages = m.Pages.Add(o.Pages)
	m.HasPages = m.HasPages || o.HasPages
	m.HasCache = m.HasCache || o.HasCache
	m.CacheCap += o.CacheCap
	m.CachePeak += o.CachePeak
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
	m.CachePuts += o.CachePuts
	m.CacheEvictions += o.CacheEvictions
	for i, c := range m.Children {
		if err := c.Merge(o.Children[i]); err != nil {
			return err
		}
	}
	return nil
}

// CostWeights are the cost-model weights needed to price observed
// execution counters in the optimizer's cost units (sequential-page
// reads). The reoptimization layer uses them to compare a node's
// accumulated actual cost against its pro-rated prediction mid-run.
type CostWeights struct {
	SeqPage     float64
	RandPage    float64
	CacheAccess float64
	PerRecord   float64
}

// LivePages returns the node's attributed page counters, readable at any
// point during a run (unlike Finalize, which copies them once at the
// end and mutates the tree).
func (m *NodeMetrics) LivePages() storage.StatsSnapshot {
	if m.pageStats != nil {
		return m.pageStats.Snapshot()
	}
	return m.Pages
}

// LiveCacheOps returns the node's accumulated cache operations (puts +
// hits + misses), readable mid-run without finalizing.
func (m *NodeMetrics) LiveCacheOps() int64 {
	if len(m.caches) > 0 {
		var ops int64
		for _, c := range m.caches {
			ops += c.Puts() + c.Hits() + c.Misses()
		}
		return ops
	}
	return m.CachePuts + m.CacheHits + m.CacheMisses
}

// ActualCost prices the subtree's accumulated work in cost units: page
// accesses at the sequential/random weights, cache operations, and
// records moved. It reads the deferred counters live, so it is valid
// both mid-run (at a reoptimization checkpoint) and after Finalize, and
// it never mutates the tree. The result is directly comparable to a
// cumulative predicted stream cost pro-rated to the consumed span.
func (m *NodeMetrics) ActualCost(w CostWeights) float64 {
	pages := m.LivePages()
	total := float64(pages.SeqPages)*w.SeqPage + float64(pages.RandPages)*w.RandPage
	total += float64(m.LiveCacheOps()) * w.CacheAccess
	total += float64(m.ScanRows+m.ProbeRows) * w.PerRecord
	for _, c := range m.Children {
		total += c.ActualCost(w)
	}
	return total
}

// ExclusiveTime returns the wall-clock time spent in this node alone:
// its inclusive time minus its direct children's inclusive times,
// clamped at zero (timer granularity can make the difference slightly
// negative). Calibration regresses cost constants against it.
func (m *NodeMetrics) ExclusiveTime() time.Duration {
	t := m.ScanTime + m.ProbeTime
	for _, c := range m.Children {
		t -= c.ScanTime + c.ProbeTime
	}
	if t < 0 {
		t = 0
	}
	return t
}

// TotalPages sums the attributed page accesses over the subtree.
func (m *NodeMetrics) TotalPages() storage.StatsSnapshot {
	total := m.Pages
	for _, c := range m.Children {
		total = total.Add(c.TotalPages())
	}
	return total
}

// Rows returns the records the node delivered to its consumer: stream
// emissions plus non-Null probe answers.
func (m *NodeMetrics) Rows() int64 { return m.ScanRows + m.ProbeRows }

// RowsIn returns the records the node pulled from its children.
func (m *NodeMetrics) RowsIn() int64 {
	var total int64
	for _, c := range m.Children {
		total += c.Rows()
	}
	return total
}

// Walk visits the metrics tree depth-first, parent before children.
func (m *NodeMetrics) Walk(f func(n *NodeMetrics, depth int)) {
	var walk func(n *NodeMetrics, depth int)
	walk = func(n *NodeMetrics, depth int) {
		f(n, depth)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(m, 0)
}

// Instrument deep-copies the plan with a metering wrapper around every
// node and returns the wrapped plan together with the metrics tree that
// mirrors it. pred supplies the optimizer's estimate for each original
// node (nil means no estimates). Leaves over storage.Store sequences
// additionally get per-consumer page attribution via storage.Metered.
// Operators owning caches get fresh caches so their counters describe
// this run only; the original plan is left untouched.
func Instrument(p Plan, pred func(Plan) PredictedCost) (Plan, *NodeMetrics) {
	if pred == nil {
		pred = func(Plan) PredictedCost { return PredictedCost{} }
	}
	return instrument(p, pred)
}

func instrument(p Plan, pred func(Plan) PredictedCost) (Plan, *NodeMetrics) {
	m := &NodeMetrics{Label: p.Label(), Predicted: pred(p)}
	child := func(c Plan) Plan {
		w, cm := instrument(c, pred)
		m.Children = append(m.Children, cm)
		return w
	}
	var inner Plan
	switch op := p.(type) {
	case *Leaf:
		cp := *op
		if st, ok := cp.Seq.(storage.Store); ok {
			m.pageStats = &storage.Stats{}
			m.HasPages = true
			cp.Seq = storage.Metered(st, m.pageStats)
		}
		inner = &cp
	case *Rename:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	case *SelectOp:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	case *ProjectOp:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	case *PosOffsetOp:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	case *ComposeOp:
		cp := *op
		cp.L = child(op.L)
		cp.R = child(op.R)
		inner = &cp
	case *Materialize:
		cp := *op
		cp.In = child(op.In)
		cp.mat = nil // re-materialize through the metered input
		inner = &cp
	case *AggNaive:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	case *AggCached:
		cp := *op
		cp.In = child(op.In)
		cp.cache = cache.NewFIFO(op.cache.Cap())
		inner = &cp
	case *AggSliding:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	case *AggCumulative:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	case *ValueOffsetNaive:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	case *ValueOffsetIncremental:
		cp := *op
		cp.In = child(op.In)
		cp.cache = cache.NewFIFO(op.cache.Cap())
		inner = &cp
	case *CollapseOp:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	case *ExpandOp:
		cp := *op
		cp.In = child(op.In)
		inner = &cp
	default:
		// Unknown operator: meter the node itself; its subtree runs
		// unmetered (no counters are invented for children we cannot
		// splice into).
		inner = p
	}
	if cs := inner.Caches(); len(cs) > 0 {
		m.HasCache = true
		m.caches = cs
	}
	return &Metered{Inner: inner, M: m}, m
}

// Metered is the per-node metering wrapper Instrument installs. It is a
// transparent Plan: Label, Children, Caches and Info all delegate to
// the wrapped operator (whose own child links point at the metered
// children).
type Metered struct {
	Inner Plan
	M     *NodeMetrics
}

// Info implements seq.Sequence.
func (w *Metered) Info() seq.Info { return w.Inner.Info() }

// Probe implements seq.Sequence, counting the call, its Null-ness and
// its inclusive wall time.
func (w *Metered) Probe(pos seq.Pos) (seq.Record, error) {
	start := time.Now()
	r, err := w.Inner.Probe(pos)
	w.M.ProbeTime += time.Since(start)
	w.M.ProbeCalls++
	if r.IsNull() {
		w.M.ProbeNulls++
	} else {
		w.M.ProbeRows++
	}
	return r, err
}

// Scan implements seq.Sequence.
func (w *Metered) Scan(span seq.Span) seq.Cursor {
	w.M.ScanCalls++
	start := time.Now()
	cur := w.Inner.Scan(span)
	w.M.ScanTime += time.Since(start)
	return &meteredPlanCursor{in: cur, m: w.M}
}

// Label implements Plan.
func (w *Metered) Label() string { return w.Inner.Label() }

// Children implements Plan.
func (w *Metered) Children() []Plan { return w.Inner.Children() }

// Caches implements Plan.
func (w *Metered) Caches() []*cache.FIFO { return w.Inner.Caches() }

type meteredPlanCursor struct {
	in seq.Cursor
	m  *NodeMetrics
}

func (c *meteredPlanCursor) Next() (seq.Pos, seq.Record, bool) {
	start := time.Now()
	p, r, ok := c.in.Next()
	c.m.ScanTime += time.Since(start)
	if ok {
		c.m.ScanRows++
	}
	return p, r, ok
}

func (c *meteredPlanCursor) Err() error   { return c.in.Err() }
func (c *meteredPlanCursor) Close() error { return c.in.Close() }

// PlanStores collects the distinct base-sequence stores reachable from
// the plan's leaves (distinct by shared Stats block), for global
// counter deltas around a measured run.
func PlanStores(p Plan) []storage.Store {
	seen := make(map[*storage.Stats]bool)
	var out []storage.Store
	var walk func(n Plan)
	walk = func(n Plan) {
		if w, ok := n.(*Metered); ok {
			walk(w.Inner)
			return
		}
		if l, ok := n.(*Leaf); ok {
			if st, ok := l.Seq.(storage.Store); ok && !seen[st.Stats()] {
				seen[st.Stats()] = true
				out = append(out, st)
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	return out
}
