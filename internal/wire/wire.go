// Package wire implements the seqd client/server protocol: a
// length-prefixed binary framing with a small set of typed messages.
// docs/PROTOCOL.md is the normative specification of everything in this
// package; the conformance test in this directory round-trips every
// documented message type through this codec and fails when the two
// drift.
//
// Framing: every message travels as one frame
//
//	uint32 big-endian  length of (type byte + payload)
//	uint8              message type
//	bytes              payload (message-specific)
//
// Integers inside payloads are varints (signed: zig-zag); strings and
// byte slices are length-prefixed with a uvarint; float64 travels as its
// 8-byte IEEE-754 big-endian bit pattern. Values are tagged with their
// seq.Type byte; records are a uvarint field count followed by the
// values.
//
// The protocol is strictly request/response: the client sends one
// request and reads frames until Ready, which carries the server's
// current MVCC epoch. Version negotiation happens in Hello/HelloAck; see
// Negotiate.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/seq"
)

// Protocol version bounds. A client offers its version in Hello; the
// server answers with min(client, ProtocolVersion) in HelloAck, or
// rejects with CodeVersion when the offer is below MinProtocolVersion.
const (
	ProtocolVersion    = 1
	MinProtocolVersion = 1
)

// DefaultMaxFrame bounds the size of one frame (type byte + payload);
// larger frames are a protocol error. Results are batched into frames of
// RowsPerBatch entries, so well-formed peers stay far below the bound.
const DefaultMaxFrame = 16 << 20

// RowsPerBatch is the number of result entries a ResultRows frame
// carries at most.
const RowsPerBatch = 256

// RowsBatchBytes bounds the encoded payload of one outgoing ResultRows
// frame: a batch flushes at whichever comes first, RowsPerBatch entries
// or RowsBatchBytes of encoded entries, keeping every frame far below
// DefaultMaxFrame even when individual records carry large strings.
const RowsBatchBytes = 1 << 20

// SplitRows partitions a result into ResultRows batches bounded by both
// RowsPerBatch entries and RowsBatchBytes encoded bytes. Batches are
// contiguous subslices of entries (no copying); a single entry larger
// than RowsBatchBytes forms a batch of its own.
func SplitRows(entries []seq.Entry) [][]seq.Entry {
	var out [][]seq.Entry
	w := &writer{}
	start, batchBytes := 0, 0
	for i, e := range entries {
		w.buf = w.buf[:0]
		w.varint(e.Pos)
		w.record(e.Rec)
		sz := len(w.buf)
		if i > start && (batchBytes+sz > RowsBatchBytes || i-start >= RowsPerBatch) {
			out = append(out, entries[start:i])
			start, batchBytes = i, 0
		}
		batchBytes += sz
	}
	if start < len(entries) {
		out = append(out, entries[start:])
	}
	return out
}

// Type identifies a message. Client-originated types occupy 0x01–0x7f,
// server-originated types 0x81–0xff.
type Type uint8

// Client → server message types.
const (
	THello       Type = 0x01
	TQuery       Type = 0x02
	TExplain     Type = 0x03
	TAnalyze     Type = 0x04
	TMaterialize Type = 0x05
	TAppend      Type = 0x06
	TSetOption   Type = 0x07
	TListSeqs    Type = 0x08
	TDescribe    Type = 0x09
	TListViews   Type = 0x0a
	TDropView    Type = 0x0b
	TClose       Type = 0x0c
	TSubscribe   Type = 0x0d
	TUnsubscribe Type = 0x0e
)

// Server → client message types.
const (
	THelloAck     Type = 0x81
	TReady        Type = 0x82
	TError        Type = 0x83
	TResultHeader Type = 0x84
	TResultRows   Type = 0x85
	TResultDone   Type = 0x86
	TPlanText     Type = 0x87
	TAck          Type = 0x88
	TSeqList      Type = 0x89
	TSeqInfo      Type = 0x8a
	TViewList     Type = 0x8b
	TSubAck       Type = 0x8c
	TDelta        Type = 0x8d
)

// ErrorCode classifies a server-reported failure.
type ErrorCode uint16

// The error codes. CodeConflict deserves a note: the server computes a
// materialization against a pinned snapshot and registers it only if no
// base the view reads was written meanwhile; a lost race is reported as
// CodeConflict and the client simply retries.
const (
	CodeProtocol    ErrorCode = 1  // malformed frame or out-of-order message
	CodeVersion     ErrorCode = 2  // client version below MinProtocolVersion
	CodeParse       ErrorCode = 3  // SEQL parse/bind error
	CodePlan        ErrorCode = 4  // optimizer rejected the query
	CodeExec        ErrorCode = 5  // execution failed
	CodeAppend      ErrorCode = 6  // append rejected (position, schema, kind)
	CodeMaterialize ErrorCode = 7  // materialization rejected
	CodeConflict    ErrorCode = 8  // write raced a snapshot operation; retry
	CodeOption      ErrorCode = 9  // unknown session option or bad value
	CodeNotFound    ErrorCode = 10 // unknown sequence or view
	CodeInternal    ErrorCode = 11 // invariant violation or server bug
)

// String names the code as docs/PROTOCOL.md spells it.
func (c ErrorCode) String() string {
	switch c {
	case CodeProtocol:
		return "protocol"
	case CodeVersion:
		return "version"
	case CodeParse:
		return "parse"
	case CodePlan:
		return "plan"
	case CodeExec:
		return "exec"
	case CodeAppend:
		return "append"
	case CodeMaterialize:
		return "materialize"
	case CodeConflict:
		return "conflict"
	case CodeOption:
		return "option"
	case CodeNotFound:
		return "not-found"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("code(%d)", uint16(c))
	}
}

// Message is one protocol message. Concrete message structs implement
// the codec pair; Encode/Decode are the package entry points.
type Message interface {
	Type() Type
	encode(w *writer)
	decode(r *reader)
}

// typeInfo describes one registered message type for the conformance
// machinery.
type typeInfo struct {
	Code Type
	Name string
	New  func() Message
}

var registry = []typeInfo{
	{THello, "Hello", func() Message { return &Hello{} }},
	{TQuery, "Query", func() Message { return &Query{} }},
	{TExplain, "Explain", func() Message { return &Explain{} }},
	{TAnalyze, "Analyze", func() Message { return &Analyze{} }},
	{TMaterialize, "Materialize", func() Message { return &Materialize{} }},
	{TAppend, "Append", func() Message { return &Append{} }},
	{TSetOption, "SetOption", func() Message { return &SetOption{} }},
	{TListSeqs, "ListSeqs", func() Message { return &ListSeqs{} }},
	{TDescribe, "Describe", func() Message { return &Describe{} }},
	{TListViews, "ListViews", func() Message { return &ListViews{} }},
	{TDropView, "DropView", func() Message { return &DropView{} }},
	{TClose, "Close", func() Message { return &Close{} }},
	{THelloAck, "HelloAck", func() Message { return &HelloAck{} }},
	{TReady, "Ready", func() Message { return &Ready{} }},
	{TError, "Error", func() Message { return &Error{} }},
	{TResultHeader, "ResultHeader", func() Message { return &ResultHeader{} }},
	{TResultRows, "ResultRows", func() Message { return &ResultRows{} }},
	{TResultDone, "ResultDone", func() Message { return &ResultDone{} }},
	{TPlanText, "PlanText", func() Message { return &PlanText{} }},
	{TAck, "Ack", func() Message { return &Ack{} }},
	{TSeqList, "SeqList", func() Message { return &SeqList{} }},
	{TSeqInfo, "SeqInfo", func() Message { return &SeqInfo{} }},
	{TViewList, "ViewList", func() Message { return &ViewList{} }},
	{TSubscribe, "Subscribe", func() Message { return &Subscribe{} }},
	{TUnsubscribe, "Unsubscribe", func() Message { return &Unsubscribe{} }},
	{TSubAck, "SubAck", func() Message { return &SubAck{} }},
	{TDelta, "Delta", func() Message { return &Delta{} }},
}

// TypeName returns the registered name of a message type code.
func TypeName(t Type) string {
	for _, ti := range registry {
		if ti.Code == t {
			return ti.Name
		}
	}
	return fmt.Sprintf("Type(0x%02x)", uint8(t))
}

// Types enumerates every registered message type: (code, name, zero
// message). The conformance test round-trips each against
// docs/PROTOCOL.md.
func Types() []struct {
	Code Type
	Name string
	New  func() Message
} {
	out := make([]struct {
		Code Type
		Name string
		New  func() Message
	}, len(registry))
	for i, ti := range registry {
		out[i] = struct {
			Code Type
			Name string
			New  func() Message
		}{ti.Code, ti.Name, ti.New}
	}
	return out
}

// ── message payloads ────────────────────────────────────────────────

// Hello opens a connection: the client's protocol version and name.
type Hello struct {
	Version uint32
	Client  string
}

func (*Hello) Type() Type { return THello }
func (m *Hello) encode(w *writer) {
	w.uvarint(uint64(m.Version))
	w.string(m.Client)
}
func (m *Hello) decode(r *reader) {
	m.Version = uint32(r.uvarint())
	m.Client = r.string()
}

// HelloAck accepts a connection: the negotiated version, the server
// name, and the current MVCC epoch.
type HelloAck struct {
	Version uint32
	Server  string
	Epoch   int64
}

func (*HelloAck) Type() Type { return THelloAck }
func (m *HelloAck) encode(w *writer) {
	w.uvarint(uint64(m.Version))
	w.string(m.Server)
	w.varint(m.Epoch)
}
func (m *HelloAck) decode(r *reader) {
	m.Version = uint32(r.uvarint())
	m.Server = r.string()
	m.Epoch = r.varint()
}

// Ready marks the end of a response turn; the server is ready for the
// next request. Epoch is the server's current MVCC epoch at send time.
type Ready struct {
	Epoch int64
}

func (*Ready) Type() Type         { return TReady }
func (m *Ready) encode(w *writer) { w.varint(m.Epoch) }
func (m *Ready) decode(r *reader) { m.Epoch = r.varint() }

// Error reports a failed request. The turn still ends with Ready.
type Error struct {
	Code    ErrorCode
	Message string
}

func (*Error) Type() Type { return TError }
func (m *Error) encode(w *writer) {
	w.uvarint(uint64(m.Code))
	w.string(m.Message)
}
func (m *Error) decode(r *reader) {
	m.Code = ErrorCode(r.uvarint())
	m.Message = r.string()
}

// Query runs a SEQL query over the inclusive span [Start, End] against
// the session's pinned snapshot. Response: ResultHeader, ResultRows*,
// ResultDone, Ready.
type Query struct {
	SEQL       string
	Start, End int64
}

func (*Query) Type() Type { return TQuery }
func (m *Query) encode(w *writer) {
	w.string(m.SEQL)
	w.varint(m.Start)
	w.varint(m.End)
}
func (m *Query) decode(r *reader) {
	m.SEQL = r.string()
	m.Start = r.varint()
	m.End = r.varint()
}

// Explain returns the optimizer's chosen plan without executing.
// Response: PlanText, Ready.
type Explain struct {
	SEQL       string
	Start, End int64
}

func (*Explain) Type() Type { return TExplain }
func (m *Explain) encode(w *writer) {
	w.string(m.SEQL)
	w.varint(m.Start)
	w.varint(m.End)
}
func (m *Explain) decode(r *reader) {
	m.SEQL = r.string()
	m.Start = r.varint()
	m.End = r.varint()
}

// Analyze executes with per-operator instrumentation (EXPLAIN ANALYZE)
// and returns the rendered metrics, including the server-side counter
// block (see docs/OPERATIONS.md). Response: PlanText, Ready.
type Analyze struct {
	SEQL       string
	Start, End int64
}

func (*Analyze) Type() Type { return TAnalyze }
func (m *Analyze) encode(w *writer) {
	w.string(m.SEQL)
	w.varint(m.Start)
	w.varint(m.End)
}
func (m *Analyze) decode(r *reader) {
	m.SEQL = r.string()
	m.Start = r.varint()
	m.End = r.varint()
}

// Materialize evaluates a query over [Start, End] against the session's
// snapshot and registers the result as a named view shared by all
// sessions. Fails with CodeConflict when a base the view reads was
// written between snapshot and registration. Response: Ack, Ready.
type Materialize struct {
	Name       string
	SEQL       string
	Start, End int64
}

func (*Materialize) Type() Type { return TMaterialize }
func (m *Materialize) encode(w *writer) {
	w.string(m.Name)
	w.string(m.SEQL)
	w.varint(m.Start)
	w.varint(m.End)
}
func (m *Materialize) decode(r *reader) {
	m.Name = r.string()
	m.SEQL = r.string()
	m.Start = r.varint()
	m.End = r.varint()
}

// Append adds one record beyond the end of a sparse base sequence,
// advancing the global epoch. Response: Ack (with the new epoch), Ready.
type Append struct {
	Seq string
	Pos int64
	Rec seq.Record
}

func (*Append) Type() Type { return TAppend }
func (m *Append) encode(w *writer) {
	w.string(m.Seq)
	w.varint(m.Pos)
	w.record(m.Rec)
}
func (m *Append) decode(r *reader) {
	m.Seq = r.string()
	m.Pos = r.varint()
	m.Rec = r.record()
}

// SetOption adjusts one session option (the session's core.Options
// knobs; see docs/PROTOCOL.md for names and value syntax). Response:
// Ack, Ready.
type SetOption struct {
	Name  string
	Value string
}

func (*SetOption) Type() Type { return TSetOption }
func (m *SetOption) encode(w *writer) {
	w.string(m.Name)
	w.string(m.Value)
}
func (m *SetOption) decode(r *reader) {
	m.Name = r.string()
	m.Value = r.string()
}

// ListSeqs asks for the catalog. Response: SeqList, Ready.
type ListSeqs struct{}

func (*ListSeqs) Type() Type     { return TListSeqs }
func (*ListSeqs) encode(*writer) {}
func (*ListSeqs) decode(*reader) {}

// Describe asks for one sequence's schema and meta-data as of the
// session's snapshot. Response: SeqInfo, Ready.
type Describe struct {
	Name string
}

func (*Describe) Type() Type         { return TDescribe }
func (m *Describe) encode(w *writer) { w.string(m.Name) }
func (m *Describe) decode(r *reader) { m.Name = r.string() }

// ListViews asks for the materialized views with counters. Response:
// ViewList, Ready.
type ListViews struct{}

func (*ListViews) Type() Type     { return TListViews }
func (*ListViews) encode(*writer) {}
func (*ListViews) decode(*reader) {}

// DropView removes a materialized view for every session. Response:
// Ack, Ready.
type DropView struct {
	Name string
}

func (*DropView) Type() Type         { return TDropView }
func (m *DropView) encode(w *writer) { w.string(m.Name) }
func (m *DropView) decode(r *reader) { m.Name = r.string() }

// Close announces the client is done; the server closes the connection.
// No response.
type Close struct{}

func (*Close) Type() Type     { return TClose }
func (*Close) encode(*writer) {}
func (*Close) decode(*reader) {}

// ResultHeader opens a query response: the output schema and the MVCC
// epoch the query is pinned at.
type ResultHeader struct {
	Fields []seq.Field
	Epoch  int64
}

func (*ResultHeader) Type() Type { return TResultHeader }
func (m *ResultHeader) encode(w *writer) {
	w.uvarint(uint64(len(m.Fields)))
	for _, f := range m.Fields {
		w.string(f.Name)
		w.byte(byte(f.Type))
	}
	w.varint(m.Epoch)
}
func (m *ResultHeader) decode(r *reader) {
	n := r.count("field", 1<<16)
	if r.err != nil {
		return
	}
	m.Fields = make([]seq.Field, n)
	for i := range m.Fields {
		m.Fields[i].Name = r.string()
		m.Fields[i].Type = seq.Type(r.byte())
	}
	m.Epoch = r.varint()
}

// ResultRows carries a batch of result entries in positional order.
type ResultRows struct {
	Entries []seq.Entry
}

func (*ResultRows) Type() Type { return TResultRows }
func (m *ResultRows) encode(w *writer) {
	w.uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.varint(e.Pos)
		w.record(e.Rec)
	}
}
func (m *ResultRows) decode(r *reader) {
	n := r.count("row", RowsPerBatch*16)
	if r.err != nil {
		return
	}
	m.Entries = make([]seq.Entry, n)
	for i := range m.Entries {
		m.Entries[i].Pos = r.varint()
		m.Entries[i].Rec = r.record()
	}
}

// ResultDone closes a query response with totals: row count, the pinned
// epoch, execution wall time, and the time the request waited for a
// worker slot.
type ResultDone struct {
	Rows      uint64
	Epoch     int64
	ElapsedNs uint64
	QueueNs   uint64
}

func (*ResultDone) Type() Type { return TResultDone }
func (m *ResultDone) encode(w *writer) {
	w.uvarint(m.Rows)
	w.varint(m.Epoch)
	w.uvarint(m.ElapsedNs)
	w.uvarint(m.QueueNs)
}
func (m *ResultDone) decode(r *reader) {
	m.Rows = r.uvarint()
	m.Epoch = r.varint()
	m.ElapsedNs = r.uvarint()
	m.QueueNs = r.uvarint()
}

// PlanText carries a rendered plan (Explain) or instrumented metrics
// tree (Analyze).
type PlanText struct {
	Text string
}

func (*PlanText) Type() Type         { return TPlanText }
func (m *PlanText) encode(w *writer) { w.string(m.Text) }
func (m *PlanText) decode(r *reader) { m.Text = r.string() }

// Ack acknowledges a state-changing request, carrying a human-readable
// note and the epoch after the change.
type Ack struct {
	Text  string
	Epoch int64
}

func (*Ack) Type() Type { return TAck }
func (m *Ack) encode(w *writer) {
	w.string(m.Text)
	w.varint(m.Epoch)
}
func (m *Ack) decode(r *reader) {
	m.Text = r.string()
	m.Epoch = r.varint()
}

// SeqList carries the catalog's sequence names, sorted.
type SeqList struct {
	Names []string
}

func (*SeqList) Type() Type { return TSeqList }
func (m *SeqList) encode(w *writer) {
	w.uvarint(uint64(len(m.Names)))
	for _, n := range m.Names {
		w.string(n)
	}
}
func (m *SeqList) decode(r *reader) {
	n := r.count("name", 1<<20)
	if r.err != nil {
		return
	}
	m.Names = make([]string, n)
	for i := range m.Names {
		m.Names[i] = r.string()
	}
}

// SeqInfo describes one sequence as of the session's snapshot.
type SeqInfo struct {
	Name       string
	Fields     []seq.Field
	Start, End int64
	Density    float64
	Kind       string
}

func (*SeqInfo) Type() Type { return TSeqInfo }
func (m *SeqInfo) encode(w *writer) {
	w.string(m.Name)
	w.uvarint(uint64(len(m.Fields)))
	for _, f := range m.Fields {
		w.string(f.Name)
		w.byte(byte(f.Type))
	}
	w.varint(m.Start)
	w.varint(m.End)
	w.float(m.Density)
	w.string(m.Kind)
}
func (m *SeqInfo) decode(r *reader) {
	m.Name = r.string()
	n := r.count("field", 1<<16)
	if r.err != nil {
		return
	}
	m.Fields = make([]seq.Field, n)
	for i := range m.Fields {
		m.Fields[i].Name = r.string()
		m.Fields[i].Type = seq.Type(r.byte())
	}
	m.Start = r.varint()
	m.End = r.varint()
	m.Density = r.float()
	m.Kind = r.string()
}

// ViewInfo is one materialized view's counters as carried by ViewList.
type ViewInfo struct {
	Name        string
	Start, End  int64
	Records     int64
	Density     float64
	Hits        int64
	Misses      int64
	FromEpoch   int64
	InvalidFrom int64
}

// ViewList carries the registered materialized views with usage and
// MVCC-validity counters.
type ViewList struct {
	Views []ViewInfo
}

func (*ViewList) Type() Type { return TViewList }
func (m *ViewList) encode(w *writer) {
	w.uvarint(uint64(len(m.Views)))
	for _, v := range m.Views {
		w.string(v.Name)
		w.varint(v.Start)
		w.varint(v.End)
		w.varint(v.Records)
		w.float(v.Density)
		w.varint(v.Hits)
		w.varint(v.Misses)
		w.varint(v.FromEpoch)
		w.varint(v.InvalidFrom)
	}
}
func (m *ViewList) decode(r *reader) {
	n := r.count("view", 1<<20)
	if r.err != nil {
		return
	}
	m.Views = make([]ViewInfo, n)
	for i := range m.Views {
		v := &m.Views[i]
		v.Name = r.string()
		v.Start = r.varint()
		v.End = r.varint()
		v.Records = r.varint()
		v.Density = r.float()
		v.Hits = r.varint()
		v.Misses = r.varint()
		v.FromEpoch = r.varint()
		v.InvalidFrom = r.varint()
	}
}

// Subscribe registers a standing query over the inclusive span
// [Start, End]. The server answers with SubAck (the subscription id,
// output schema and snapshot epoch) followed by an initial Delta
// carrying the full span's current content, then Ready. From then on,
// every base write whose delta halo intersects the query pushes a
// Delta frame — outside any request/response turn — until Unsubscribe
// or disconnect.
type Subscribe struct {
	SEQL       string
	Start, End int64
}

func (*Subscribe) Type() Type { return TSubscribe }
func (m *Subscribe) encode(w *writer) {
	w.string(m.SEQL)
	w.varint(m.Start)
	w.varint(m.End)
}
func (m *Subscribe) decode(r *reader) {
	m.SEQL = r.string()
	m.Start = r.varint()
	m.End = r.varint()
}

// Unsubscribe cancels a standing query on this connection. Response:
// Ack, Ready. Deltas already framed may still arrive before the Ack.
type Unsubscribe struct {
	SubID uint64
}

func (*Unsubscribe) Type() Type         { return TUnsubscribe }
func (m *Unsubscribe) encode(w *writer) { w.uvarint(m.SubID) }
func (m *Unsubscribe) decode(r *reader) { m.SubID = r.uvarint() }

// SubAck accepts a subscription: its connection-scoped id, the standing
// query's output schema, and the MVCC epoch of the initial snapshot.
type SubAck struct {
	SubID  uint64
	Epoch  int64
	Fields []seq.Field
}

func (*SubAck) Type() Type { return TSubAck }
func (m *SubAck) encode(w *writer) {
	w.uvarint(m.SubID)
	w.varint(m.Epoch)
	w.uvarint(uint64(len(m.Fields)))
	for _, f := range m.Fields {
		w.string(f.Name)
		w.byte(byte(f.Type))
	}
}
func (m *SubAck) decode(r *reader) {
	m.SubID = r.uvarint()
	m.Epoch = r.varint()
	n := r.count("field", 1<<16)
	if r.err != nil {
		return
	}
	m.Fields = make([]seq.Field, n)
	for i := range m.Fields {
		m.Fields[i].Name = r.string()
		m.Fields[i].Type = seq.Type(r.byte())
	}
}

// Delta is one epoch-stamped region replacement for a standing query:
// the subscriber's records over the inclusive region [Start, End] are
// now exactly Entries — positions inside the region absent from Entries
// no longer hold a record. Applying deltas in arrival order keeps a
// client's copy equal to the query's current result.
type Delta struct {
	SubID      uint64
	Epoch      int64
	Start, End int64
	Entries    []seq.Entry
}

func (*Delta) Type() Type { return TDelta }
func (m *Delta) encode(w *writer) {
	w.uvarint(m.SubID)
	w.varint(m.Epoch)
	w.varint(m.Start)
	w.varint(m.End)
	w.uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.varint(e.Pos)
		w.record(e.Rec)
	}
}
func (m *Delta) decode(r *reader) {
	m.SubID = r.uvarint()
	m.Epoch = r.varint()
	m.Start = r.varint()
	m.End = r.varint()
	n := r.count("delta entry", RowsPerBatch*16)
	if r.err != nil {
		return
	}
	m.Entries = make([]seq.Entry, n)
	for i := range m.Entries {
		m.Entries[i].Pos = r.varint()
		m.Entries[i].Rec = r.record()
	}
}

// SplitDelta partitions one region replacement into Delta frames whose
// entry batches obey the same bounds as SplitRows, tiling [start, end]
// with contiguous sub-regions so each frame is itself a valid region
// replacement. Entries must lie inside the region in positional order.
// At least one frame is always produced: an empty region replacement
// (clearing the region) is meaningful.
func SplitDelta(subID uint64, epoch, start, end int64, entries []seq.Entry) []*Delta {
	batches := SplitRows(entries)
	if len(batches) <= 1 {
		return []*Delta{{SubID: subID, Epoch: epoch, Start: start, End: end, Entries: entries}}
	}
	out := make([]*Delta, 0, len(batches))
	lo := start
	for i, b := range batches {
		hi := end
		if i < len(batches)-1 {
			hi = b[len(b)-1].Pos
		}
		out = append(out, &Delta{SubID: subID, Epoch: epoch, Start: lo, End: hi, Entries: b})
		lo = hi + 1
	}
	return out
}

// ── framing ─────────────────────────────────────────────────────────

// WriteMessage frames and writes one message.
func WriteMessage(out io.Writer, m Message) error {
	w := &writer{}
	w.byte(byte(m.Type()))
	m.encode(w)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(w.buf)))
	if _, err := out.Write(hdr[:]); err != nil {
		return err
	}
	_, err := out.Write(w.buf)
	return err
}

// ReadMessage reads and decodes one frame. maxFrame <= 0 selects
// DefaultMaxFrame.
func ReadMessage(in io.Reader, maxFrame int) (Message, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(in, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	if int(n) > maxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(in, buf); err != nil {
		return nil, err
	}
	return Decode(buf)
}

// Decode decodes one frame body (type byte + payload).
func Decode(frame []byte) (Message, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	t := Type(frame[0])
	var m Message
	for _, ti := range registry {
		if ti.Code == t {
			m = ti.New()
			break
		}
	}
	if m == nil {
		return nil, fmt.Errorf("wire: unknown message type 0x%02x", uint8(t))
	}
	r := &reader{buf: frame[1:]}
	m.decode(r)
	if r.err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", TypeName(t), r.err)
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("wire: decode %s: %d trailing bytes", TypeName(t), len(r.buf)-r.off)
	}
	return m, nil
}

// Encode frames one message body (type byte + payload), without the
// length prefix. The inverse of Decode; used by the conformance test.
func Encode(m Message) []byte {
	w := &writer{}
	w.byte(byte(m.Type()))
	m.encode(w)
	return w.buf
}

// ── payload primitives ──────────────────────────────────────────────

type writer struct {
	buf []byte
}

func (w *writer) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) float(f float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	w.buf = append(w.buf, b[:]...)
}
func (w *writer) string(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) value(v seq.Value) {
	w.byte(byte(v.T))
	switch v.T {
	case seq.TInt:
		w.varint(v.AsInt())
	case seq.TFloat:
		w.float(v.AsFloat())
	case seq.TString:
		w.string(v.AsStr())
	case seq.TBool:
		if v.AsBool() {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}
}

// record encodes a record as a uvarint field count followed by tagged
// values; the Null record travels as count 0.
func (w *writer) record(rec seq.Record) {
	w.uvarint(uint64(len(rec)))
	for _, v := range rec {
		w.value(v)
	}
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated payload")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) float() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated float")
		return 0
	}
	bits := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(bits)
}

// remaining is the unread byte count of the payload.
func (r *reader) remaining() int { return len(r.buf) - r.off }

// count decodes a uvarint element count, comparing in uint64 space
// before the int conversion so a hostile value can neither wrap negative
// nor drive an oversized allocation: the count must fit both the
// caller's limit and the unread payload (every element occupies at least
// one byte).
func (r *reader) count(what string, limit int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(limit) || v > uint64(r.remaining()) {
		r.fail("%s count %d out of range", what, v)
		return 0
	}
	return int(v)
}

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("truncated string of %d bytes", n)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) value() seq.Value {
	t := seq.Type(r.byte())
	switch t {
	case seq.TInt:
		return seq.Int(r.varint())
	case seq.TFloat:
		return seq.Float(r.float())
	case seq.TString:
		return seq.Str(r.string())
	case seq.TBool:
		return seq.Bool(r.byte() != 0)
	default:
		r.fail("unknown value type %d", uint8(t))
		return seq.Value{}
	}
}

func (r *reader) record() seq.Record {
	n := r.count("record field", 1<<16)
	if r.err != nil || n == 0 {
		return nil // the Null record
	}
	rec := make(seq.Record, n)
	for i := range rec {
		rec[i] = r.value()
	}
	return rec
}
