package wire

import (
	"bufio"
	"fmt"
	"net"

	"repro/internal/seq"
)

// ServerError is a server-reported failure surfaced by Client calls.
type ServerError struct {
	Code    ErrorCode
	Message string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("seqd: %s: %s", e.Code, e.Message)
}

// Client is a synchronous seqd connection: one request in flight at a
// time, each response read to its Ready turn marker. It is not safe for
// concurrent use; open one Client per goroutine.
//
// Subscriptions are the one asynchronous element: after Subscribe, the
// server pushes Delta frames outside request/response turns. Deltas that
// arrive while a turn is being drained are queued in arrival order;
// ReadDelta pops the queue or blocks reading the connection.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	epoch   int64 // server epoch from the latest Ready/HelloAck
	server  string
	version uint32
	deltas  []*Delta // pushed frames routed out of response turns
}

// Dial connects to a seqd server and performs the Hello/HelloAck
// handshake, announcing clientName.
func Dial(addr, clientName string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if err := c.send(&Hello{Version: ProtocolVersion, Client: clientName}); err != nil {
		conn.Close()
		return nil, err
	}
	m, err := c.read()
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch ack := m.(type) {
	case *HelloAck:
		c.epoch = ack.Epoch
		c.server = ack.Server
		c.version = ack.Version
	case *Error:
		conn.Close()
		return nil, &ServerError{Code: ack.Code, Message: ack.Message}
	default:
		conn.Close()
		return nil, fmt.Errorf("seqd: handshake got %s", TypeName(m.Type()))
	}
	return c, nil
}

// Close sends the Close message and tears down the connection.
func (c *Client) Close() error {
	_ = c.send(&Close{})
	return c.conn.Close()
}

// Epoch returns the server's MVCC epoch as of the latest response turn.
func (c *Client) Epoch() int64 { return c.epoch }

// Server returns the server name from the handshake.
func (c *Client) Server() string { return c.server }

// Version returns the negotiated protocol version.
func (c *Client) Version() uint32 { return c.version }

func (c *Client) send(m Message) error {
	if err := WriteMessage(c.w, m); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Client) read() (Message, error) {
	return ReadMessage(c.r, 0)
}

// turn sends a request and collects every response message up to (not
// including) Ready. A server Error becomes a *ServerError, but the turn
// is still drained to Ready first.
func (c *Client) turn(req Message) ([]Message, error) {
	if err := c.send(req); err != nil {
		return nil, err
	}
	var msgs []Message
	var srvErr *ServerError
	for {
		m, err := c.read()
		if err != nil {
			return nil, err
		}
		switch t := m.(type) {
		case *Ready:
			c.epoch = t.Epoch
			if srvErr != nil {
				return nil, srvErr
			}
			return msgs, nil
		case *Error:
			if srvErr == nil {
				srvErr = &ServerError{Code: t.Code, Message: t.Message}
			}
		case *Delta:
			// Pushed by a concurrent writer's handler; not part of this
			// turn. Queued for ReadDelta.
			c.deltas = append(c.deltas, t)
		default:
			msgs = append(msgs, m)
		}
	}
}

// QueryResult is a fully-drained query response.
type QueryResult struct {
	Fields    []seq.Field
	Entries   []seq.Entry
	Rows      uint64
	Epoch     int64 // MVCC epoch the query was pinned at
	ElapsedNs uint64
	QueueNs   uint64 // time the request waited for a worker slot
}

// Query runs a SEQL query over the inclusive span [start, end] and
// drains the full result.
func (c *Client) Query(seql string, start, end int64) (*QueryResult, error) {
	msgs, err := c.turn(&Query{SEQL: seql, Start: start, End: end})
	if err != nil {
		return nil, err
	}
	res := &QueryResult{}
	for _, m := range msgs {
		switch t := m.(type) {
		case *ResultHeader:
			res.Fields = t.Fields
			res.Epoch = t.Epoch
		case *ResultRows:
			res.Entries = append(res.Entries, t.Entries...)
		case *ResultDone:
			res.Rows = t.Rows
			res.Epoch = t.Epoch
			res.ElapsedNs = t.ElapsedNs
			res.QueueNs = t.QueueNs
		}
	}
	return res, nil
}

// Explain returns the optimizer's rendered plan for a query.
func (c *Client) Explain(seql string, start, end int64) (string, error) {
	return c.planTurn(&Explain{SEQL: seql, Start: start, End: end})
}

// Analyze executes with instrumentation and returns the rendered
// metrics, including the server counter block.
func (c *Client) Analyze(seql string, start, end int64) (string, error) {
	return c.planTurn(&Analyze{SEQL: seql, Start: start, End: end})
}

func (c *Client) planTurn(req Message) (string, error) {
	msgs, err := c.turn(req)
	if err != nil {
		return "", err
	}
	for _, m := range msgs {
		if t, ok := m.(*PlanText); ok {
			return t.Text, nil
		}
	}
	return "", fmt.Errorf("seqd: response missing PlanText")
}

// Materialize registers a named shared view computed over the session
// snapshot. Retries are the caller's business on CodeConflict.
func (c *Client) Materialize(name, seql string, start, end int64) (string, error) {
	return c.ackTurn(&Materialize{Name: name, SEQL: seql, Start: start, End: end})
}

// Append adds one record beyond the end of a sparse base sequence and
// returns the new epoch.
func (c *Client) Append(seqName string, pos int64, rec seq.Record) (int64, error) {
	msgs, err := c.turn(&Append{Seq: seqName, Pos: pos, Rec: rec})
	if err != nil {
		return 0, err
	}
	for _, m := range msgs {
		if t, ok := m.(*Ack); ok {
			return t.Epoch, nil
		}
	}
	return 0, fmt.Errorf("seqd: response missing Ack")
}

// SetOption adjusts one session option.
func (c *Client) SetOption(name, value string) (string, error) {
	return c.ackTurn(&SetOption{Name: name, Value: value})
}

// DropView removes a shared materialized view.
func (c *Client) DropView(name string) (string, error) {
	return c.ackTurn(&DropView{Name: name})
}

func (c *Client) ackTurn(req Message) (string, error) {
	msgs, err := c.turn(req)
	if err != nil {
		return "", err
	}
	for _, m := range msgs {
		if t, ok := m.(*Ack); ok {
			return t.Text, nil
		}
	}
	return "", fmt.Errorf("seqd: response missing Ack")
}

// ListSeqs returns the catalog's sequence names.
func (c *Client) ListSeqs() ([]string, error) {
	msgs, err := c.turn(&ListSeqs{})
	if err != nil {
		return nil, err
	}
	for _, m := range msgs {
		if t, ok := m.(*SeqList); ok {
			return t.Names, nil
		}
	}
	return nil, fmt.Errorf("seqd: response missing SeqList")
}

// Describe returns one sequence's schema and metadata as of the session
// snapshot.
func (c *Client) Describe(name string) (*SeqInfo, error) {
	msgs, err := c.turn(&Describe{Name: name})
	if err != nil {
		return nil, err
	}
	for _, m := range msgs {
		if t, ok := m.(*SeqInfo); ok {
			return t, nil
		}
	}
	return nil, fmt.Errorf("seqd: response missing SeqInfo")
}

// Subscribe registers a standing query over the inclusive span
// [start, end]. The returned SubAck carries the subscription id and
// output schema; the initial full-content Delta and all subsequent
// incremental ones are read with ReadDelta.
func (c *Client) Subscribe(seql string, start, end int64) (*SubAck, error) {
	msgs, err := c.turn(&Subscribe{SEQL: seql, Start: start, End: end})
	if err != nil {
		return nil, err
	}
	for _, m := range msgs {
		if t, ok := m.(*SubAck); ok {
			return t, nil
		}
	}
	return nil, fmt.Errorf("seqd: response missing SubAck")
}

// Unsubscribe cancels a standing query. Deltas the server framed before
// processing the request may still be delivered (they queue for
// ReadDelta); none follow the Ack.
func (c *Client) Unsubscribe(id uint64) (string, error) {
	return c.ackTurn(&Unsubscribe{SubID: id})
}

// ReadDelta returns the next pushed Delta, blocking on the connection
// when none is queued. Any other frame arriving outside a turn is a
// protocol error.
func (c *Client) ReadDelta() (*Delta, error) {
	if len(c.deltas) > 0 {
		d := c.deltas[0]
		c.deltas = c.deltas[1:]
		return d, nil
	}
	m, err := c.read()
	if err != nil {
		return nil, err
	}
	if d, ok := m.(*Delta); ok {
		return d, nil
	}
	return nil, fmt.Errorf("seqd: expected Delta outside a turn, got %s", TypeName(m.Type()))
}

// PendingDeltas reports how many pushed deltas are queued client-side
// (it does not read the connection).
func (c *Client) PendingDeltas() int { return len(c.deltas) }

// ListViews returns the shared materialized views with counters.
func (c *Client) ListViews() ([]ViewInfo, error) {
	msgs, err := c.turn(&ListViews{})
	if err != nil {
		return nil, err
	}
	for _, m := range msgs {
		if t, ok := m.(*ViewList); ok {
			return t.Views, nil
		}
	}
	return nil, fmt.Errorf("seqd: response missing ViewList")
}
