package wire

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/seq"
)

// sample returns a representative, fully-populated instance of every
// registered message type. The conformance test round-trips each through
// the codec; a field added to a message without extending its sample
// fails the population check below.
func sample(t Type) Message {
	rec := seq.Record{seq.Int(-42), seq.Float(2.5), seq.Str("søn"), seq.Bool(true)}
	fields := []seq.Field{{Name: "price", Type: seq.TFloat}, {Name: "tag", Type: seq.TString}}
	switch t {
	case THello:
		return &Hello{Version: ProtocolVersion, Client: "conformance"}
	case TQuery:
		return &Query{SEQL: "select(s, s.price > 10)", Start: -5, End: 1 << 40}
	case TExplain:
		return &Explain{SEQL: "project(s, s.tag)", Start: 1, End: 2}
	case TAnalyze:
		return &Analyze{SEQL: "offset(s, -3)", Start: 7, End: 99}
	case TMaterialize:
		return &Materialize{Name: "hot", SEQL: "select(s, s.price > 0)", Start: 1, End: 1000}
	case TAppend:
		return &Append{Seq: "s", Pos: 1001, Rec: rec}
	case TSetOption:
		return &SetOption{Name: "parallelism", Value: "4"}
	case TListSeqs:
		return &ListSeqs{}
	case TDescribe:
		return &Describe{Name: "s"}
	case TListViews:
		return &ListViews{}
	case TDropView:
		return &DropView{Name: "hot"}
	case TClose:
		return &Close{}
	case THelloAck:
		return &HelloAck{Version: ProtocolVersion, Server: "seqd/test", Epoch: 7}
	case TReady:
		return &Ready{Epoch: 9}
	case TError:
		return &Error{Code: CodeConflict, Message: "write raced snapshot"}
	case TResultHeader:
		return &ResultHeader{Fields: fields, Epoch: 7}
	case TResultRows:
		return &ResultRows{Entries: []seq.Entry{
			{Pos: -1, Rec: rec},
			{Pos: 2, Rec: nil},
		}}
	case TResultDone:
		return &ResultDone{Rows: 12345, Epoch: 7, ElapsedNs: 5_000_000, QueueNs: 1234}
	case TPlanText:
		return &PlanText{Text: "scan(s)[1,9] est=10\n"}
	case TAck:
		return &Ack{Text: "appended", Epoch: 8}
	case TSeqList:
		return &SeqList{Names: []string{"a", "b", "c"}}
	case TSeqInfo:
		return &SeqInfo{Name: "s", Fields: fields, Start: 1, End: 1 << 30, Density: 0.25, Kind: "sparse"}
	case TViewList:
		return &ViewList{Views: []ViewInfo{{
			Name: "hot", Start: 1, End: 100, Records: 42, Density: 0.42,
			Hits: 9, Misses: 2, FromEpoch: 3, InvalidFrom: 11,
		}}}
	case TSubscribe:
		return &Subscribe{SEQL: "select(s, s.price > 10)", Start: -2, End: 500}
	case TUnsubscribe:
		return &Unsubscribe{SubID: 3}
	case TSubAck:
		return &SubAck{SubID: 3, Epoch: 7, Fields: fields}
	case TDelta:
		return &Delta{SubID: 3, Epoch: 8, Start: 41, End: 43, Entries: []seq.Entry{
			{Pos: 41, Rec: rec},
			{Pos: 43, Rec: nil},
		}}
	default:
		return nil
	}
}

// TestRoundTripEveryMessageType encodes and decodes a populated sample
// of each registered message type and requires byte- and value-exact
// round trips.
func TestRoundTripEveryMessageType(t *testing.T) {
	for _, ti := range Types() {
		ti := ti
		t.Run(ti.Name, func(t *testing.T) {
			in := sample(ti.Code)
			if in == nil {
				t.Fatalf("no sample for registered type %s (0x%02x)", ti.Name, uint8(ti.Code))
			}
			if in.Type() != ti.Code {
				t.Fatalf("sample reports type 0x%02x, registered as 0x%02x", uint8(in.Type()), uint8(ti.Code))
			}
			var buf bytes.Buffer
			if err := WriteMessage(&buf, in); err != nil {
				t.Fatal(err)
			}
			out, err := ReadMessage(&buf, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round trip changed message:\n in: %#v\nout: %#v", in, out)
			}
			if buf.Len() != 0 {
				t.Fatalf("%d bytes left after one frame", buf.Len())
			}
			// Re-encoding the decoded message must be byte-identical.
			if a, b := Encode(in), Encode(out); !bytes.Equal(a, b) {
				t.Fatalf("re-encode differs:\n a: %x\n b: %x", a, b)
			}
		})
	}
}

// TestSamplesPopulated guards the samples themselves: every exported
// field of every sample must be non-zero (slices non-empty), so a new
// message field cannot silently skip round-trip coverage. Zero-payload
// messages are exempt by construction.
func TestSamplesPopulated(t *testing.T) {
	for _, ti := range Types() {
		m := sample(ti.Code)
		v := reflect.ValueOf(m).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.IsZero() {
				t.Errorf("%s.%s: sample leaves field zero — round trip cannot prove it travels",
					ti.Name, v.Type().Field(i).Name)
			}
		}
	}
}

func TestFrameLimits(t *testing.T) {
	// Oversized frame is rejected before allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadMessage(&buf, 0); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Unknown type byte.
	if _, err := Decode([]byte{0x7f}); err == nil {
		t.Fatal("unknown message type accepted")
	}
	// Trailing garbage after a valid payload.
	frame := append(Encode(&Ready{Epoch: 1}), 0x00)
	if _, err := Decode(frame); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Truncated payload.
	full := Encode(&Hello{Version: 1, Client: "abcdef"})
	if _, err := Decode(full[:len(full)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// TestHostileLengths feeds every length- or count-prefixed decode path a
// value vastly exceeding the payload. Each must fail cleanly: before the
// uint64-space guards, counts near 2^63 wrapped negative (or overflowed
// r.off+n) after the int conversion and panicked Decode — a remote crash
// of seqd, whose handler reads attacker-supplied frames.
func TestHostileLengths(t *testing.T) {
	craft := func(tc Type, fill func(w *writer)) []byte {
		w := &writer{}
		w.byte(byte(tc))
		fill(w)
		return w.buf
	}
	frames := map[string][]byte{
		"SetOption string len 2^63-1": craft(TSetOption, func(w *writer) { w.uvarint(1<<63 - 1) }),
		"SetOption string len 2^63":   craft(TSetOption, func(w *writer) { w.uvarint(1 << 63) }),
		"Append record count 2^63": craft(TAppend, func(w *writer) {
			w.string("s")
			w.varint(1)
			w.uvarint(1 << 63)
		}),
		"Append record count 2^63-1": craft(TAppend, func(w *writer) {
			w.string("s")
			w.varint(1)
			w.uvarint(1<<63 - 1)
		}),
		"ResultHeader field count 2^63": craft(TResultHeader, func(w *writer) { w.uvarint(1 << 63) }),
		"ResultRows row count 2^63":     craft(TResultRows, func(w *writer) { w.uvarint(1 << 63) }),
		"SeqList name count 2^63":       craft(TSeqList, func(w *writer) { w.uvarint(1 << 63) }),
		"SeqList count exceeds payload": craft(TSeqList, func(w *writer) { w.uvarint(1000) }),
		"SeqInfo field count 2^63": craft(TSeqInfo, func(w *writer) {
			w.string("s")
			w.uvarint(1 << 63)
		}),
		"ViewList view count 2^63": craft(TViewList, func(w *writer) { w.uvarint(1 << 63) }),
		"SubAck field count 2^63": craft(TSubAck, func(w *writer) {
			w.uvarint(3)
			w.varint(7)
			w.uvarint(1 << 63)
		}),
		"Delta entry count 2^63": craft(TDelta, func(w *writer) {
			w.uvarint(3)
			w.varint(7)
			w.varint(1)
			w.varint(9)
			w.uvarint(1 << 63)
		}),
		"Delta count exceeds payload": craft(TDelta, func(w *writer) {
			w.uvarint(3)
			w.varint(7)
			w.varint(1)
			w.varint(9)
			w.uvarint(100)
		}),
	}
	for name, frame := range frames {
		frame := frame
		t.Run(name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Decode panicked: %v", p)
				}
			}()
			if _, err := Decode(frame); err == nil {
				t.Fatal("hostile frame accepted")
			}
		})
	}
}

// TestSplitRows pins the outgoing batching bounds: row count for narrow
// results, encoded bytes for wide ones — every produced frame must pass
// the default MaxFrame check a client applies in ReadMessage.
func TestSplitRows(t *testing.T) {
	if got := SplitRows(nil); got != nil {
		t.Fatalf("SplitRows(nil) = %v", got)
	}

	// Row-count bound: 600 tiny entries split 256/256/88.
	small := make([]seq.Entry, 600)
	for i := range small {
		small[i] = seq.Entry{Pos: int64(i), Rec: seq.Record{seq.Int(int64(i))}}
	}
	batches := SplitRows(small)
	if len(batches) != 3 || len(batches[0]) != 256 || len(batches[1]) != 256 || len(batches[2]) != 88 {
		sizes := make([]int, len(batches))
		for i, b := range batches {
			sizes[i] = len(b)
		}
		t.Fatalf("row-count batching sizes = %v, want [256 256 88]", sizes)
	}

	// Byte bound: 256 rows of 64KiB strings would encode to a ~16MiB
	// frame, which clients reject. Every batch must stay near
	// RowsBatchBytes and round-trip under the default frame cap.
	wide := make([]seq.Entry, 300)
	big := strings.Repeat("x", 64<<10)
	for i := range wide {
		wide[i] = seq.Entry{Pos: int64(i), Rec: seq.Record{seq.Str(big)}}
	}
	total := 0
	for _, b := range SplitRows(wide) {
		if len(b) == 0 {
			t.Fatal("empty batch")
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &ResultRows{Entries: b}); err != nil {
			t.Fatal(err)
		}
		if buf.Len() > RowsBatchBytes+2*len(big) {
			t.Fatalf("batch of %d rows frames to %d bytes", len(b), buf.Len())
		}
		out, err := ReadMessage(&buf, 0)
		if err != nil {
			t.Fatalf("client rejected server batch: %v", err)
		}
		rows := out.(*ResultRows)
		for i, e := range rows.Entries {
			if e.Pos != int64(total+i) {
				t.Fatalf("entry order broken at %d: pos %d", total+i, e.Pos)
			}
		}
		total += len(b)
	}
	if total != len(wide) {
		t.Fatalf("split lost rows: %d of %d", total, len(wide))
	}
}

// TestSplitDelta pins the chunked region-replacement contract: the
// produced frames tile the region contiguously, preserve entry order,
// and an empty replacement still yields one frame (clearing a region is
// meaningful).
func TestSplitDelta(t *testing.T) {
	empty := SplitDelta(1, 5, 10, 20, nil)
	if len(empty) != 1 || empty[0].Start != 10 || empty[0].End != 20 || len(empty[0].Entries) != 0 {
		t.Fatalf("empty replacement = %+v, want one entry-less frame over [10,20]", empty)
	}

	// Sparse region: 600 entries at even positions force row-count splits;
	// the split regions must tile [0, 1300] exactly, with each entry inside
	// its frame's region.
	entries := make([]seq.Entry, 600)
	for i := range entries {
		entries[i] = seq.Entry{Pos: int64(2 * i), Rec: seq.Record{seq.Int(int64(i))}}
	}
	frames := SplitDelta(9, 7, 0, 1300, entries)
	if len(frames) < 2 {
		t.Fatalf("600 entries produced %d frames, want several", len(frames))
	}
	wantLo, total := int64(0), 0
	for i, f := range frames {
		if f.SubID != 9 || f.Epoch != 7 {
			t.Fatalf("frame %d lost identity: %+v", i, f)
		}
		if f.Start != wantLo {
			t.Fatalf("frame %d starts at %d, want %d (regions must tile)", i, f.Start, wantLo)
		}
		for _, e := range f.Entries {
			if e.Pos < f.Start || e.Pos > f.End {
				t.Fatalf("frame %d entry at %d outside region [%d,%d]", i, e.Pos, f.Start, f.End)
			}
			if e.Pos != entries[total].Pos {
				t.Fatalf("entry order broken at %d", total)
			}
			total++
		}
		wantLo = f.End + 1
	}
	if frames[len(frames)-1].End != 1300 {
		t.Fatalf("last frame ends at %d, want 1300", frames[len(frames)-1].End)
	}
	if total != len(entries) {
		t.Fatalf("split lost entries: %d of %d", total, len(entries))
	}
}

// protocolDocPath locates docs/PROTOCOL.md relative to this package.
const protocolDocPath = "../../docs/PROTOCOL.md"

var docTypeRow = regexp.MustCompile(`(?m)^\|\s*` + "`" + `0x([0-9a-f]{2})` + "`" + `\s*\|\s*` + "`" + `([A-Za-z]+)` + "`" + `\s*\|`)
var docCodeRow = regexp.MustCompile(`(?m)^\|\s*` + "`" + `(\d+)` + "`" + `\s*\|\s*` + "`" + `([a-z-]+)` + "`" + `\s*\|`)

// TestProtocolDocCoversEveryType fails when the codec and
// docs/PROTOCOL.md drift in either direction: a registered message type
// missing from the spec's message tables, or a documented type code this
// codec does not implement. Same for error codes.
func TestProtocolDocCoversEveryType(t *testing.T) {
	raw, err := os.ReadFile(protocolDocPath)
	if err != nil {
		t.Fatalf("docs/PROTOCOL.md must exist and document the protocol: %v", err)
	}

	documented := map[Type]string{}
	for _, m := range docTypeRow.FindAllStringSubmatch(string(raw), -1) {
		code, err := strconv.ParseUint(m[1], 16, 8)
		if err != nil {
			t.Fatalf("bad type code in doc row %q: %v", m[0], err)
		}
		documented[Type(code)] = m[2]
	}
	if len(documented) == 0 {
		t.Fatal("no message-type table rows found in docs/PROTOCOL.md")
	}
	impl := map[Type]string{}
	for _, ti := range Types() {
		impl[ti.Code] = ti.Name
	}
	for code, name := range impl {
		docName, ok := documented[code]
		if !ok {
			t.Errorf("message %s (0x%02x) implemented but not documented in PROTOCOL.md", name, uint8(code))
		} else if docName != name {
			t.Errorf("message 0x%02x named %q in PROTOCOL.md but %q in the codec", uint8(code), docName, name)
		}
	}
	for code, docName := range documented {
		if _, ok := impl[code]; !ok {
			t.Errorf("message %q (0x%02x) documented in PROTOCOL.md but not implemented", docName, uint8(code))
		}
	}

	// Error codes, both directions.
	docCodes := map[ErrorCode]string{}
	for _, m := range docCodeRow.FindAllStringSubmatch(string(raw), -1) {
		n, err := strconv.ParseUint(m[1], 10, 16)
		if err != nil {
			t.Fatalf("bad error code in doc row %q: %v", m[0], err)
		}
		docCodes[ErrorCode(n)] = m[2]
	}
	implCodes := []ErrorCode{
		CodeProtocol, CodeVersion, CodeParse, CodePlan, CodeExec,
		CodeAppend, CodeMaterialize, CodeConflict, CodeOption,
		CodeNotFound, CodeInternal,
	}
	for _, c := range implCodes {
		docName, ok := docCodes[c]
		if !ok {
			t.Errorf("error code %d (%s) implemented but not documented", uint16(c), c)
		} else if docName != c.String() {
			t.Errorf("error code %d named %q in PROTOCOL.md but %q in the codec", uint16(c), docName, c)
		}
	}
	for c, docName := range docCodes {
		found := false
		for _, ic := range implCodes {
			if ic == c {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("error code %d (%q) documented but not implemented", uint16(c), docName)
		}
	}
}

// TestValueEncodingStable pins the on-wire byte layout of the value
// primitives so an accidental codec change cannot pass as "both sides
// agree". These bytes are normative in docs/PROTOCOL.md.
func TestValueEncodingStable(t *testing.T) {
	w := &writer{}
	w.record(seq.Record{seq.Int(1)})
	want := []byte{
		0x01,       // field count 1
		0x01, 0x02, // TInt, zig-zag(1)
	}
	if !bytes.Equal(w.buf, want) {
		t.Fatalf("record layout = %x, want %x", w.buf, want)
	}

	w = &writer{}
	w.value(seq.Float(1.0))
	want = []byte{0x02, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0} // TFloat, IEEE-754 BE
	if !bytes.Equal(w.buf, want) {
		t.Fatalf("float layout = %x, want %x", w.buf, want)
	}

	// The Null record travels as field count 0 and decodes back to nil.
	w = &writer{}
	w.record(nil)
	if !bytes.Equal(w.buf, []byte{0x00}) {
		t.Fatalf("null record layout = %x, want 00", w.buf)
	}
	r := &reader{buf: w.buf}
	if rec := r.record(); r.err != nil || rec != nil {
		t.Fatalf("null record round trip: rec=%#v err=%v", rec, r.err)
	}
}

func init() {
	// Sanity check that samples exist for every registered type even
	// under -run filters of other tests.
	for _, ti := range Types() {
		if sample(ti.Code) == nil {
			panic(fmt.Sprintf("wire: no conformance sample for %s", ti.Name))
		}
	}
}
