// Package server is the seqd engine: the single-session seqproc library
// lifted to a concurrent multi-client service with page-level snapshot
// isolation.
//
// A Server owns the shared state — versioned base sequences
// (storage.Versioned), the global epoch tracker, the materialized-view
// registry with epoch validity windows, and the self-calibrating cost
// model — and hands each client a Session carrying its own planner
// options. Reads never block writes and writes never block reads:
//
//   - Every read turn pins the current epoch and plans against an
//     epoch-sliced catalog whose leaves are immutable page snapshots
//     (storage.Versioned.SnapshotAt) plus an epoch-sliced view registry
//     (matview.Registry.At). The planlint snapshot/* verifier re-checks
//     every plan before execution.
//   - Every write (Append, Reorganize, view registration) runs under one
//     global writer mutex: it publishes new page versions at epoch
//     current+1 and only then advances the tracker, so a pinned epoch
//     always denotes fully-published state.
//
// Execution is multiplexed onto a bounded worker pool; requests queue
// when the pool is saturated, and the time spent queuing is reported per
// query (wire.ResultDone.QueueNs) so operators can size the pool (see
// docs/OPERATIONS.md). The wire layer lives in conn.go; this file is the
// engine, directly usable in-process (the concurrency fuzz tests drive
// it without sockets).
package server

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/matview"
	"repro/internal/meta"
	"repro/internal/parser"
	"repro/internal/planlint"
	"repro/internal/reopt"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/storage/disk"
	"repro/internal/wire"
)

// Config configures a Server. The zero value is usable: GOMAXPROCS
// workers, default frame limit, background GC left to the caller.
type Config struct {
	// Name identifies the server in HelloAck (default "seqd").
	Name string
	// Workers bounds the number of concurrently executing requests;
	// 0 selects runtime.GOMAXPROCS(0). Planning and result encoding do
	// not occupy a worker slot — only execution does.
	Workers int
	// MaxFrame bounds incoming frames; 0 selects wire.DefaultMaxFrame.
	MaxFrame int
	// GCInterval is the period of the background epoch garbage
	// collector started by Serve; 0 disables it (GC can still be run
	// explicitly via GCOnce).
	GCInterval time.Duration
	// Verify additionally runs the full planlint rule verifier on every
	// optimization (core.Options.Verify). The snapshot/* family is
	// checked on every read regardless.
	Verify bool
	// Options seeds each new session's planner options. Views and
	// Calibration are overwritten per request with the server's shared
	// state.
	Options core.Options
}

// Error is a classified engine failure, carrying the wire error code the
// connection layer reports.
type Error struct {
	Code wire.ErrorCode
	Err  error
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %v", e.Code, e.Err) }
func (e *Error) Unwrap() error { return e.Err }

func errf(code wire.ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Err: fmt.Errorf(format, args...)}
}

// serverSeq is one versioned base sequence plus its frozen column
// statistics (computed at load; appends do not refresh them — the
// optimizer treats them as estimates). v is memory-backed (memSeq) or,
// with an attached database, disk-backed (diskSeq); see disk.go.
type serverSeq struct {
	name  string
	v     versionedSeq
	stats map[int]expr.ColStats
}

// Server is the shared engine state. See the package comment for the
// concurrency protocol.
//
// The declared lock order, verified by `seqvet -global` (lockorder):
// wmu is the top of the order — a writer holding it may take the seqs
// map lock, publish into a store, invalidate views and advance the
// epoch. mu may wrap store reads (PageVersions). connMu and listenMu
// are leaves: nothing is ever acquired under them, which is what lets
// Close shut connections without deadlocking against handlers.
//
// With an attached disk database, writes nest the database's own
// writer lock (and, transitively, its pool and file locks) under wmu;
// reads nest the sequence version lock under mu the same way the
// memory tier nests Versioned.mu.
//
//seqvet:lockorder server.Server.wmu < server.Server.mu
//seqvet:lockorder server.Server.wmu < storage.EpochTracker.mu
//seqvet:lockorder server.Server.wmu < storage.Versioned.mu
//seqvet:lockorder server.Server.wmu < matview.Registry.mu
//seqvet:lockorder server.Server.wmu < disk.DB.wmu
//seqvet:lockorder server.Server.wmu < reopt.Calibration.mu
//seqvet:lockorder server.Server.mu < storage.Versioned.mu
//seqvet:lockorder server.Server.mu < disk.Seq.mu
//seqvet:lockorder leaf server.Server.connMu
//seqvet:lockorder leaf server.Server.listenMu
//seqvet:epochpin advance-under server.Server.wmu
type Server struct {
	cfg  Config
	name string

	// disk is the attached durable storage tier; nil for a pure
	// in-memory server. Written once by AttachDisk before the server
	// accepts traffic, read without synchronization afterwards.
	disk *disk.DB

	mu   sync.RWMutex // guards the seqs map structure
	seqs map[string]*serverSeq

	wmu    sync.Mutex // serializes all writers (publish-then-advance)
	epochs *storage.EpochTracker
	views  *matview.Registry
	calib  *reopt.Calibration

	// Incremental-view-maintenance decisions accumulated by writes, and
	// the standing-query subscriptions deltas are pushed to (see
	// subscribe.go). Both are guarded by wmu: every reader and writer of
	// either already holds it.
	maintReports []matview.MaintenanceReport
	subs         map[uint64]*subscription
	nextSub      uint64

	sem chan struct{} // worker pool; len(sem) = executing requests

	// Cumulative counters, reported in the Analyze counter block.
	nSessions atomic.Int64 // currently connected wire sessions
	nQueries  atomic.Int64
	nAppends  atomic.Int64
	nConflict atomic.Int64

	closed   atomic.Bool
	stopGC   chan struct{}
	listenMu sync.Mutex
	ln       net.Listener
	connMu   sync.Mutex // guards conns; see track/untrack in conn.go
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// New creates an empty server.
func New(cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "seqd"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	return &Server{
		cfg:    cfg,
		name:   cfg.Name,
		seqs:   make(map[string]*serverSeq),
		epochs: storage.NewEpochTracker(),
		views:  matview.New(),
		calib:  &reopt.Calibration{},
		subs:   make(map[uint64]*subscription),
		sem:    make(chan struct{}, cfg.Workers),
		stopGC: make(chan struct{}),
	}
}

// Epoch returns the current published epoch.
func (s *Server) Epoch() int64 { return s.epochs.Current() }

// CreateSequence registers a base sequence. Safe to call while serving,
// though typically used at startup: the sequence becomes visible at the
// epoch it is published under.
func (s *Server) CreateSequence(name string, data *seq.Materialized, kind storage.Kind) error {
	if name == "" {
		return errf(wire.CodeAppend, "empty sequence name")
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.Lock()
	if _, dup := s.seqs[name]; dup {
		s.mu.Unlock()
		return errf(wire.CodeAppend, "sequence %q already exists", name)
	}
	s.mu.Unlock()
	var vs versionedSeq
	if s.disk != nil {
		// Durable create: WAL-logged and page-packed before it appears
		// in the catalog, visible at the current epoch like the memory
		// path.
		if err := s.disk.CreateSequenceAt(name, data, kind, s.epochs.Current()); err != nil {
			return &Error{Code: wire.CodeAppend, Err: err}
		}
		ds, ok := s.disk.Seq(name)
		if !ok {
			return errf(wire.CodeInternal, "sequence %q vanished after durable create", name)
		}
		vs = diskSeq{db: s.disk, s: ds}
	} else {
		v, err := storage.NewVersioned(data, kind, 0, s.epochs.Current())
		if err != nil {
			return &Error{Code: wire.CodeAppend, Err: err}
		}
		vs = memSeq{v}
	}
	ss := &serverSeq{name: name, v: vs, stats: meta.StatsFromMaterialized(data)}
	s.mu.Lock()
	s.seqs[name] = ss
	s.mu.Unlock()
	return nil
}

func (s *Server) lookup(name string) (*serverSeq, *Error) {
	s.mu.RLock()
	ss, ok := s.seqs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, errf(wire.CodeNotFound, "unknown sequence %q", name)
	}
	return ss, nil
}

// Append adds one record beyond the end of a sparse base sequence,
// publishing a new epoch. Returns the epoch that made the write visible.
func (s *Server) Append(name string, pos seq.Pos, rec seq.Record) (int64, error) {
	ss, e := s.lookup(name)
	if e != nil {
		return 0, e
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	next := s.epochs.Current() + 1
	if err := ss.v.Append(seq.Entry{Pos: pos, Rec: rec}, next); err != nil {
		return 0, &Error{Code: wire.CodeAppend, Err: err}
	}
	// The write is published at next but not yet visible. Registered
	// views are maintained incrementally (stitched, shrunk, or — last
	// resort — frozen for readers pinned below next), and standing-query
	// subscribers get their epoch-stamped deltas framed, all before the
	// epoch advances: a pinned reader always denotes fully-maintained
	// state, and no subscriber can observe next without its delta.
	s.maintainBase(name, seq.NewSpan(pos, pos), next)
	s.publishDeltas(name, seq.NewSpan(pos, pos), next)
	if err := s.epochs.AdvanceTo(next); err != nil {
		return 0, &Error{Code: wire.CodeInternal, Err: err}
	}
	s.nAppends.Add(1)
	return next, nil
}

// maintainBase runs incremental view maintenance after base changed
// over delta, published at epoch but not yet advanced to. Called under
// wmu. The registered blocks are re-bound to the epoch's snapshots; a
// view whose maintenance fails is invalidated from epoch (never left
// stale), so the write itself cannot fail here.
func (s *Server) maintainBase(name string, delta seq.Span, epoch int64) {
	opts := s.cfg.Options
	opts.Calibration = s.calib
	reports, _ := core.MaintainViews(s.views, name, delta, epoch, s.sequenceAt(epoch), opts)
	s.maintReports = append(s.maintReports, reports...)
}

// sequenceAt resolves base names to their snapshots at the epoch — the
// binding view maintenance and delta evaluation run against.
func (s *Server) sequenceAt(epoch int64) func(string) (seq.Sequence, bool) {
	return func(name string) (seq.Sequence, bool) {
		s.mu.RLock()
		ss, ok := s.seqs[name]
		s.mu.RUnlock()
		if !ok {
			return nil, false
		}
		snap := ss.v.SnapshotAt(epoch)
		if snap == nil {
			return nil, false
		}
		return snap, true
	}
}

// TakeMaintenanceReports drains the per-view maintenance decisions
// accumulated by writes since the last call.
func (s *Server) TakeMaintenanceReports() []matview.MaintenanceReport {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	out := s.maintReports
	s.maintReports = nil
	return out
}

// Reorganize repacks a base sequence into a different physical
// representation, publishing a new epoch. Readers pinned below it keep
// scanning the old representation's pages.
func (s *Server) Reorganize(name string, kind storage.Kind) (int64, error) {
	ss, e := s.lookup(name)
	if e != nil {
		return 0, e
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	next := s.epochs.Current() + 1
	if err := ss.v.Reorganize(kind, next); err != nil {
		return 0, &Error{Code: wire.CodeAppend, Err: err}
	}
	// Reorganization preserves logical content: the delta is empty, so
	// maintenance keeps every view and no subscriber delta is due.
	s.maintainBase(name, seq.EmptySpan, next)
	s.publishDeltas(name, seq.EmptySpan, next)
	if err := s.epochs.AdvanceTo(next); err != nil {
		return 0, &Error{Code: wire.CodeInternal, Err: err}
	}
	return next, nil
}

// Sequences lists the registered base sequence names, sorted.
func (s *Server) Sequences() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.seqs))
	for name := range s.seqs {
		out = append(out, name)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ViewCounters returns the counters of every registered view, sorted by
// name.
func (s *Server) ViewCounters() []matview.Counters {
	views := s.views.Views()
	out := make([]matview.Counters, 0, len(views))
	for _, v := range views {
		out = append(out, v.Counters())
	}
	return out
}

// DropView removes a materialized view for every session. With an
// attached disk database the persisted copy is dropped too (it may
// already be gone: a base write deletes persisted views eagerly while
// the registry keeps invalidated ones for pinned readers).
func (s *Server) DropView(name string) error {
	if s.disk == nil {
		if !s.views.Drop(name) {
			return errf(wire.CodeNotFound, "unknown view %q", name)
		}
		return nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if !s.views.Drop(name) {
		return errf(wire.CodeNotFound, "unknown view %q", name)
	}
	if s.diskViews()[name] {
		if err := s.disk.DropViewAt(name, s.epochs.Current()); err != nil {
			return &Error{Code: wire.CodeInternal, Err: err}
		}
	}
	return nil
}

// GCOnce reclaims page versions and invalidated views unreachable by any
// pinned reader. Returns the number of sequence versions dropped and the
// names of reclaimed views.
func (s *Server) GCOnce() (versions int, views []string) {
	minLive := s.epochs.MinLive()
	s.mu.RLock()
	seqs := make([]*serverSeq, 0, len(s.seqs))
	for _, ss := range s.seqs {
		seqs = append(seqs, ss)
	}
	s.mu.RUnlock()
	for _, ss := range seqs {
		versions += ss.v.GC(minLive)
	}
	return versions, s.views.GC(minLive)
}

// PageVersions sums the distinct page versions retained across all
// sequences — the marginal memory the MVCC layer holds beyond a
// single-version store.
func (s *Server) PageVersions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, ss := range s.seqs {
		total += ss.v.PageVersions()
	}
	return total
}

// acquire takes a worker slot, returning the time spent queuing.
func (s *Server) acquire() time.Duration {
	select {
	case s.sem <- struct{}{}:
		return 0
	default:
	}
	start := time.Now()
	s.sem <- struct{}{}
	return time.Since(start)
}

func (s *Server) release() { <-s.sem }

// catalogAt resolves sequence names to snapshot leaves pinned at the
// epoch: every mention mints a fresh algebra node (query graphs must be
// trees) over the same immutable page version.
func (s *Server) catalogAt(epoch int64) parser.Catalog {
	return parser.CatalogFunc(func(name string) (*algebra.Node, bool) {
		s.mu.RLock()
		ss, ok := s.seqs[name]
		s.mu.RUnlock()
		if !ok {
			return nil, false
		}
		snap := ss.v.SnapshotAt(epoch)
		if snap == nil {
			// Sequence created after this reader pinned: invisible.
			return nil, false
		}
		return algebra.BaseWithStats(name, snap, ss.stats), true
	})
}

// baseNames collects the distinct base-sequence names a plan reads.
func baseNames(root *algebra.Node) []string {
	seen := map[string]bool{}
	var names []string
	var walk func(n *algebra.Node)
	walk = func(n *algebra.Node) {
		if n.Kind == algebra.KindBase && !seen[n.Name] {
			seen[n.Name] = true
			names = append(names, n.Name)
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)
	return names
}

// ── sessions ────────────────────────────────────────────────────────

// Session is one client's view of the server: private planner options
// over the shared engine. Sessions are not safe for concurrent use; the
// protocol is strictly request/response per connection, and in-process
// callers open one Session per goroutine.
type Session struct {
	srv      *Server
	opts     core.Options
	useViews bool
	client   string
}

// NewSession opens a session with the server's base options.
func (s *Server) NewSession(client string) *Session {
	opts := s.cfg.Options
	opts.Verify = opts.Verify || s.cfg.Verify
	return &Session{srv: s, opts: opts, useViews: true, client: client}
}

// SetOption adjusts one session option. See docs/PROTOCOL.md for the
// names; unknown names or malformed values return CodeOption.
func (sess *Session) SetOption(name, value string) (string, error) {
	switch name {
	case "parallelism":
		var k int
		if _, err := fmt.Sscanf(value, "%d", &k); err != nil || k < 0 {
			return "", errf(wire.CodeOption, "parallelism wants an integer >= 0, got %q", value)
		}
		sess.opts.Parallelism = k
		return fmt.Sprintf("parallelism = %d", k), nil
	case "reopt":
		on, err := parseOnOff(value)
		if err != nil {
			return "", err
		}
		sess.opts.Reopt.Enabled = on
		return fmt.Sprintf("reopt = %v", on), nil
	case "views":
		on, err := parseOnOff(value)
		if err != nil {
			return "", err
		}
		sess.useViews = on
		return fmt.Sprintf("views = %v", on), nil
	case "verify":
		on, err := parseOnOff(value)
		if err != nil {
			return "", err
		}
		sess.opts.Verify = on || sess.srv.cfg.Verify
		return fmt.Sprintf("verify = %v", sess.opts.Verify), nil
	default:
		return "", errf(wire.CodeOption, "unknown option %q (have parallelism, reopt, views, verify)", name)
	}
}

func parseOnOff(v string) (bool, error) {
	switch v {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	default:
		return false, errf(wire.CodeOption, "want on/off, got %q", v)
	}
}

// optimizeAt parses and optimizes against the epoch-pinned catalog and
// view slice, then re-verifies the snapshot/* invariants on the result.
func (sess *Session) optimizeAt(epoch int64, seql string, span seq.Span) (*core.Result, error) {
	root, err := parser.Bind(seql, sess.srv.catalogAt(epoch))
	if err != nil {
		return nil, &Error{Code: wire.CodeParse, Err: err}
	}
	opts := sess.opts
	if sess.useViews {
		opts.Views = sess.srv.views.At(epoch)
	} else {
		opts.Views = nil
	}
	opts.Calibration = sess.srv.calib
	res, err := core.Optimize(root, span, opts)
	if err != nil {
		return nil, &Error{Code: wire.CodePlan, Err: err}
	}
	// Independent re-derivation of the isolation invariants: every leaf
	// is a snapshot pinned at exactly this reader's epoch, and every
	// substituted view is valid at it.
	if issues := planlint.VerifySnapshot(res.Rewritten, res.Substitutions, epoch); len(issues) > 0 {
		return nil, errf(wire.CodeInternal, "snapshot invariant violated: %s", issues[0])
	}
	return res, nil
}

// QueryResult is a completed query: the materialized output plus the
// epoch it was pinned at and the timing split the wire layer reports.
type QueryResult struct {
	Fields  []seq.Field
	Entries []seq.Entry
	Epoch   int64
	Elapsed time.Duration
	Queue   time.Duration
}

// Query plans and runs a SEQL query over the span against a snapshot
// pinned for the duration of the call.
func (sess *Session) Query(seql string, span seq.Span) (*QueryResult, error) {
	epoch := sess.srv.epochs.Pin()
	defer sess.srv.epochs.Release(epoch)
	res, err := sess.optimizeAt(epoch, seql, span)
	if err != nil {
		return nil, err
	}
	queue := sess.srv.acquire()
	start := time.Now()
	out, err := res.Run()
	elapsed := time.Since(start)
	sess.srv.release()
	if err != nil {
		return nil, &Error{Code: wire.CodeExec, Err: err}
	}
	sess.srv.nQueries.Add(1)
	return &QueryResult{
		Fields:  out.Info().Schema.Fields(),
		Entries: out.Entries(),
		Epoch:   epoch,
		Elapsed: elapsed,
		Queue:   queue,
	}, nil
}

// Explain returns the rendered plan for the span without executing.
func (sess *Session) Explain(seql string, span seq.Span) (string, int64, error) {
	epoch := sess.srv.epochs.Pin()
	defer sess.srv.epochs.Release(epoch)
	res, err := sess.optimizeAt(epoch, seql, span)
	if err != nil {
		return "", 0, err
	}
	mode := "stream-access (single scan, cache-finite)"
	if !res.StreamAccess {
		mode = "not stream-access (unbounded forward scope)"
	}
	text := fmt.Sprintf("plan @epoch %d (stream cost %.2f, per-probe cost %.2f, %s, cache budget %d records):\n%s\nannotated query (span/density propagation):\n%s",
		epoch, res.Cost.Stream, res.Cost.ProbePer, mode, res.CacheBudget, res.Explain(), res.ExplainMeta())
	return text, epoch, nil
}

// Analyze executes with per-operator instrumentation, feeds the shared
// cost-model calibration, and appends the server counter block (see
// docs/OPERATIONS.md, "Server counters").
func (sess *Session) Analyze(seql string, span seq.Span) (string, int64, error) {
	epoch := sess.srv.epochs.Pin()
	defer sess.srv.epochs.Release(epoch)
	res, err := sess.optimizeAt(epoch, seql, span)
	if err != nil {
		return "", 0, err
	}
	queue := sess.srv.acquire()
	a, err := res.RunAnalyze()
	sess.srv.release()
	if err != nil {
		return "", 0, &Error{Code: wire.CodeExec, Err: err}
	}
	sess.srv.nQueries.Add(1)
	sess.srv.calib.Observe(a.Root)
	return a.Render() + "\n" + sess.srv.counterBlock(epoch, queue), epoch, nil
}

// counterBlock renders the server-side counters appended to every
// Analyze response. docs/OPERATIONS.md documents each line.
func (s *Server) counterBlock(epoch int64, queue time.Duration) string {
	return fmt.Sprintf(`server counters:
  epoch          %d    (current published epoch)
  pinned-epoch   %d    (this query's snapshot)
  min-live       %d    (oldest pinned epoch; GC floor)
  live-readers   %d
  page-versions  %d    (sequence page versions retained)
  views          %d
  sessions       %d
  workers        %d
  queue-wait     %s   (this request)
  queries        %d
  appends        %d
  conflicts      %d`,
		s.epochs.Current(), epoch, s.epochs.MinLive(), s.epochs.LiveReaders(),
		s.PageVersions(), s.views.Len(), s.nSessions.Load(), cap(s.sem),
		queue.Round(time.Microsecond), s.nQueries.Load(), s.nAppends.Load(),
		s.nConflict.Load())
}

// Materialize computes the query against a pinned snapshot and registers
// the result as a shared view valid from that epoch. If any base the
// view reads was written between pin and registration, it fails with
// CodeConflict and registers nothing — the caller retries. Alongside the
// pinned epoch it returns the time the request waited for a worker slot,
// the same pool-sizing signal Query and Analyze report (see
// docs/OPERATIONS.md).
func (sess *Session) Materialize(name, seql string, span seq.Span) (int64, time.Duration, error) {
	if !span.Bounded() {
		return 0, 0, errf(wire.CodeMaterialize, "materialize %q needs a bounded span, got %s", name, span)
	}
	srv := sess.srv
	epoch := srv.epochs.Pin()
	defer srv.epochs.Release(epoch)
	res, err := sess.optimizeAt(epoch, seql, span)
	if err != nil {
		if se, ok := err.(*Error); ok && se.Code == wire.CodePlan {
			return 0, 0, &Error{Code: wire.CodeMaterialize, Err: se.Err}
		}
		return 0, 0, err
	}
	queue := srv.acquire()
	out, err := res.Run()
	srv.release()
	if err != nil {
		return 0, queue, &Error{Code: wire.CodeExec, Err: err}
	}
	// Registration is a write: serialize with appenders and check that
	// the snapshot the view was computed from is still current for every
	// base it reads.
	srv.wmu.Lock()
	defer srv.wmu.Unlock()
	for _, base := range baseNames(res.Rewritten) {
		ss, e := srv.lookup(base)
		if e != nil {
			return 0, queue, e
		}
		if ss.v.LatestEpoch() > epoch {
			srv.nConflict.Add(1)
			return 0, queue, errf(wire.CodeConflict,
				"base %q advanced to epoch %d while materializing against epoch %d; retry",
				base, ss.v.LatestEpoch(), epoch)
		}
	}
	if _, err := srv.views.RegisterAt(name, res.Rewritten, out, res.RunSpan, epoch); err != nil {
		return 0, queue, &Error{Code: wire.CodeMaterialize, Err: err}
	}
	if err := srv.persistView(name, seql, res.RunSpan, epoch, baseNames(res.Rewritten), out); err != nil {
		return 0, queue, &Error{Code: wire.CodeMaterialize, Err: err}
	}
	return epoch, queue, nil
}

// Describe reports one sequence as of a snapshot pinned for this call.
func (sess *Session) Describe(name string) (*wire.SeqInfo, error) {
	ss, e := sess.srv.lookup(name)
	if e != nil {
		return nil, e
	}
	epoch := sess.srv.epochs.Pin()
	defer sess.srv.epochs.Release(epoch)
	snap := ss.v.SnapshotAt(epoch)
	if snap == nil {
		return nil, errf(wire.CodeNotFound, "sequence %q not visible at epoch %d", name, epoch)
	}
	info := snap.Info()
	kind := "sparse"
	if snap.Kind() == storage.KindDense {
		kind = "dense"
	}
	return &wire.SeqInfo{
		Name:    name,
		Fields:  info.Schema.Fields(),
		Start:   int64(info.Span.Start),
		End:     int64(info.Span.End),
		Density: info.Density,
		Kind:    kind,
	}, nil
}
