package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/seq"
	"repro/internal/wire"
)

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close, one goroutine per
// connection, and runs the background epoch GC when Config.GCInterval is
// set. Serve returns nil after Close.
func (s *Server) Serve(ln net.Listener) error {
	s.listenMu.Lock()
	s.ln = ln
	s.listenMu.Unlock()
	if s.cfg.GCInterval > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting, stops the GC loop, closes every open
// connection, and waits for their handlers to return. Closing the
// connections matters: an idle handler blocks in wire.ReadMessage with
// no deadline, so without it Close would hang until every client hung
// up on its own.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.stopGC)
	s.listenMu.Lock()
	ln := s.ln
	s.listenMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.connMu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return nil
}

// track registers an accepted connection so Close can unblock its
// reader. It refuses (and the caller must drop the connection) when the
// server is already closed — checked under connMu so a connection
// accepted concurrently with Close cannot slip past the close loop.
func (s *Server) track(nc net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed.Load() {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrack(nc net.Conn) {
	s.connMu.Lock()
	delete(s.conns, nc)
	s.connMu.Unlock()
}

func (s *Server) gcLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopGC:
			return
		case <-t.C:
			s.GCOnce()
		}
	}
}

// conn is one client connection's wire state. The write side is shared:
// the connection's own handler writes response turns, and writers on
// other connections push Delta frames for this connection's standing
// queries (under Server.wmu; see subscribe.go). wm makes each frame
// atomic in the outgoing stream; wmu orders above it, so a handler never
// holds wm while taking wmu.
//
//seqvet:lockorder server.Server.wmu < server.conn.wm
type conn struct {
	srv  *Server
	sess *Session
	nc   net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	wm   sync.Mutex // guards w; frames from both sides interleave whole
}

func (c *conn) send(m wire.Message) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	return wire.WriteMessage(c.w, m)
}

func (c *conn) flush() error {
	c.wm.Lock()
	defer c.wm.Unlock()
	return c.w.Flush()
}

// push writes and flushes one asynchronous frame (SubAck or Delta).
// Flushing matters: the subscriber may be idle between turns, so a
// buffered delta would otherwise sit unsent indefinitely.
func (c *conn) push(m wire.Message) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	if err := wire.WriteMessage(c.w, m); err != nil {
		return err
	}
	return c.w.Flush()
}

// ready ends the turn: flush everything buffered plus the turn marker.
func (c *conn) ready() error {
	if err := c.send(&wire.Ready{Epoch: c.srv.epochs.Current()}); err != nil {
		return err
	}
	return c.flush()
}

// fail reports a classified error and ends the turn.
func (c *conn) fail(err error) error {
	var se *Error
	if !errors.As(err, &se) {
		se = &Error{Code: wire.CodeInternal, Err: err}
	}
	if err := c.send(&wire.Error{Code: se.Code, Message: se.Err.Error()}); err != nil {
		return err
	}
	return c.ready()
}

func (s *Server) handleConn(nc net.Conn) {
	defer nc.Close()
	if !s.track(nc) {
		return
	}
	defer s.untrack(nc)
	// Defense in depth: a panic while serving one client (a decoder bug,
	// an engine invariant) must cost that connection, not the daemon.
	defer func() {
		if p := recover(); p != nil {
			_ = wire.WriteMessage(nc, &wire.Error{
				Code: wire.CodeInternal, Message: fmt.Sprintf("panic: %v", p)})
		}
	}()
	c := &conn{
		srv: s,
		nc:  nc,
		r:   bufio.NewReader(nc),
		w:   bufio.NewWriter(nc),
	}
	defer s.dropConnSubs(c)
	if !c.handshake() {
		return
	}
	s.nSessions.Add(1)
	defer s.nSessions.Add(-1)
	for !s.closed.Load() {
		m, err := wire.ReadMessage(c.r, s.cfg.MaxFrame)
		if err != nil {
			// EOF without Close is a dropped client, not a protocol
			// error worth answering.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				_ = c.send(&wire.Error{Code: wire.CodeProtocol, Message: err.Error()})
				_ = c.flush()
			}
			return
		}
		if _, ok := m.(*wire.Close); ok {
			return
		}
		if err := c.serve(m); err != nil {
			return // connection-level write failure
		}
	}
}

// handshake performs Hello/HelloAck. A version below the minimum gets an
// Error frame and a closed connection.
func (c *conn) handshake() bool {
	m, err := wire.ReadMessage(c.r, c.srv.cfg.MaxFrame)
	if err != nil {
		return false
	}
	hello, ok := m.(*wire.Hello)
	if !ok {
		_ = c.send(&wire.Error{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("expected Hello, got %s", wire.TypeName(m.Type()))})
		_ = c.flush()
		return false
	}
	if hello.Version < wire.MinProtocolVersion {
		_ = c.send(&wire.Error{Code: wire.CodeVersion,
			Message: fmt.Sprintf("client version %d below server minimum %d", hello.Version, wire.MinProtocolVersion)})
		_ = c.flush()
		return false
	}
	version := hello.Version
	if version > wire.ProtocolVersion {
		version = wire.ProtocolVersion
	}
	c.sess = c.srv.NewSession(hello.Client)
	if err := c.send(&wire.HelloAck{Version: version, Server: c.srv.name, Epoch: c.srv.epochs.Current()}); err != nil {
		return false
	}
	return c.flush() == nil
}

// serve dispatches one request and writes its full response turn. It
// returns an error only for connection-level failures; request failures
// are reported in-band and keep the connection alive.
func (c *conn) serve(m wire.Message) error {
	switch req := m.(type) {
	case *wire.Query:
		res, err := c.sess.Query(req.SEQL, seq.NewSpan(seq.Pos(req.Start), seq.Pos(req.End)))
		if err != nil {
			return c.fail(err)
		}
		if err := c.send(&wire.ResultHeader{Fields: res.Fields, Epoch: res.Epoch}); err != nil {
			return err
		}
		// Batches are bounded by encoded size as well as row count so a
		// string-heavy result cannot produce a frame the client's
		// MaxFrame check rejects.
		for _, batch := range wire.SplitRows(res.Entries) {
			if err := c.send(&wire.ResultRows{Entries: batch}); err != nil {
				return err
			}
		}
		done := &wire.ResultDone{
			Rows:      uint64(len(res.Entries)),
			Epoch:     res.Epoch,
			ElapsedNs: uint64(res.Elapsed.Nanoseconds()),
			QueueNs:   uint64(res.Queue.Nanoseconds()),
		}
		if err := c.send(done); err != nil {
			return err
		}
		return c.ready()

	case *wire.Explain:
		text, _, err := c.sess.Explain(req.SEQL, seq.NewSpan(seq.Pos(req.Start), seq.Pos(req.End)))
		if err != nil {
			return c.fail(err)
		}
		if err := c.send(&wire.PlanText{Text: text}); err != nil {
			return err
		}
		return c.ready()

	case *wire.Analyze:
		text, _, err := c.sess.Analyze(req.SEQL, seq.NewSpan(seq.Pos(req.Start), seq.Pos(req.End)))
		if err != nil {
			return c.fail(err)
		}
		if err := c.send(&wire.PlanText{Text: text}); err != nil {
			return err
		}
		return c.ready()

	case *wire.Materialize:
		epoch, queue, err := c.sess.Materialize(req.Name, req.SEQL, seq.NewSpan(seq.Pos(req.Start), seq.Pos(req.End)))
		if err != nil {
			return c.fail(err)
		}
		note := fmt.Sprintf("materialized %q over snapshot epoch %d (queue-wait %s)",
			req.Name, epoch, queue.Round(time.Microsecond))
		if err := c.send(&wire.Ack{Text: note, Epoch: epoch}); err != nil {
			return err
		}
		return c.ready()

	case *wire.Append:
		epoch, err := c.srv.Append(req.Seq, seq.Pos(req.Pos), req.Rec)
		if err != nil {
			return c.fail(err)
		}
		note := fmt.Sprintf("appended to %q at position %d", req.Seq, req.Pos)
		if err := c.send(&wire.Ack{Text: note, Epoch: epoch}); err != nil {
			return err
		}
		return c.ready()

	case *wire.SetOption:
		note, err := c.sess.SetOption(req.Name, req.Value)
		if err != nil {
			return c.fail(err)
		}
		if err := c.send(&wire.Ack{Text: note, Epoch: c.srv.epochs.Current()}); err != nil {
			return err
		}
		return c.ready()

	case *wire.ListSeqs:
		if err := c.send(&wire.SeqList{Names: c.srv.Sequences()}); err != nil {
			return err
		}
		return c.ready()

	case *wire.Describe:
		info, err := c.sess.Describe(req.Name)
		if err != nil {
			return c.fail(err)
		}
		if err := c.send(info); err != nil {
			return err
		}
		return c.ready()

	case *wire.DropView:
		if err := c.srv.DropView(req.Name); err != nil {
			return c.fail(err)
		}
		if err := c.send(&wire.Ack{Text: fmt.Sprintf("dropped view %q", req.Name), Epoch: c.srv.epochs.Current()}); err != nil {
			return err
		}
		return c.ready()

	case *wire.Subscribe:
		// SubAck and the initial content deltas are framed inside
		// subscribe, atomically with the registration; only the turn
		// marker is left to us.
		if err := c.srv.subscribe(c, req.SEQL, seq.NewSpan(seq.Pos(req.Start), seq.Pos(req.End))); err != nil {
			return c.fail(err)
		}
		return c.ready()

	case *wire.Unsubscribe:
		if err := c.srv.unsubscribe(c, req.SubID); err != nil {
			return c.fail(err)
		}
		if err := c.send(&wire.Ack{Text: fmt.Sprintf("unsubscribed %d", req.SubID), Epoch: c.srv.epochs.Current()}); err != nil {
			return err
		}
		return c.ready()

	case *wire.ListViews:
		counters := c.srv.ViewCounters()
		views := make([]wire.ViewInfo, len(counters))
		for i, v := range counters {
			views[i] = wire.ViewInfo{
				Name:        v.Name,
				Start:       int64(v.Span.Start),
				End:         int64(v.Span.End),
				Records:     int64(v.Records),
				Density:     v.Density,
				Hits:        v.Hits,
				Misses:      v.Misses,
				FromEpoch:   v.FromEpoch,
				InvalidFrom: v.InvalidFrom,
			}
		}
		if err := c.send(&wire.ViewList{Views: views}); err != nil {
			return err
		}
		return c.ready()

	default:
		return c.fail(errf(wire.CodeProtocol, "unexpected %s in request position", wire.TypeName(m.Type())))
	}
}
