package server

import (
	"strings"
	"testing"

	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/storage/disk"
)

// diskConfig keeps the tier small so tests exercise eviction and
// multi-page layouts without large data.
func diskConfig() disk.Config {
	return disk.Config{PageSize: 512, RecordsPerPage: 4, PoolPages: 64, CheckpointInterval: -1}
}

// diskServer opens a durable database in dir and attaches a fresh
// server to it.
func diskServer(t *testing.T, dir string, cfg Config) (*Server, *disk.DB) {
	t.Helper()
	db, err := disk.Open(dir, diskConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cfg)
	if err := srv.AttachDisk(db); err != nil {
		db.Close()
		t.Fatal(err)
	}
	return srv, db
}

func TestDiskServerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	srv, db := diskServer(t, dir, Config{Verify: true})

	if err := srv.CreateSequence("s", testData(t, 40), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	sess := srv.NewSession("t")
	if _, err := srv.Append("s", 41, seq.Record{seq.Int(41)}); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query("select(s, v > 38)", seq.NewSpan(1, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("got %d entries, want 3 (39, 40, 41)", len(res.Entries))
	}
	if _, _, err := sess.Materialize("hi", "select(s, v > 30)", seq.NewSpan(1, 50)); err != nil {
		t.Fatal(err)
	}
	wantEpoch := srv.Epoch()
	srv.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: sequences, appended record, view, and epoch all recover.
	srv2, db2 := diskServer(t, dir, Config{Verify: true})
	defer db2.Close()
	defer srv2.Close()
	if got := srv2.Epoch(); got < wantEpoch {
		t.Fatalf("epoch after reopen = %d, want >= %d", got, wantEpoch)
	}
	if got := srv2.Sequences(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("sequences after reopen = %v", got)
	}
	sess2 := srv2.NewSession("t")
	res, err = sess2.Query("select(s, v > 38)", seq.NewSpan(1, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 || res.Entries[2].Pos != 41 {
		t.Fatalf("after reopen: %d entries, want the appended 41 included", len(res.Entries))
	}
	vcs := srv2.ViewCounters()
	if len(vcs) != 1 || vcs[0].Name != "hi" {
		t.Fatalf("views after reopen = %+v", vcs)
	}
	// The recovered view answers matching queries (hit counter moves).
	if _, err := sess2.Query("select(s, v > 30)", seq.NewSpan(1, 50)); err != nil {
		t.Fatal(err)
	}
	vcs = srv2.ViewCounters()
	if vcs[0].Hits == 0 {
		t.Fatalf("recovered view not serving queries: %+v", vcs[0])
	}
}

func TestDiskServerAppendInvalidatesPersistedView(t *testing.T) {
	dir := t.TempDir()
	srv, db := diskServer(t, dir, Config{})
	if err := srv.CreateSequence("s", testData(t, 20), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	sess := srv.NewSession("t")
	if _, _, err := sess.Materialize("v1", "select(s, v > 5)", seq.NewSpan(1, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Append("s", 21, seq.Record{seq.Int(21)}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The append deleted the persisted view; it must not resurrect.
	srv2, db2 := diskServer(t, dir, Config{})
	defer db2.Close()
	defer srv2.Close()
	if vcs := srv2.ViewCounters(); len(vcs) != 0 {
		t.Fatalf("stale view resurrected after reopen: %+v", vcs)
	}
}

func TestDiskServerDropView(t *testing.T) {
	dir := t.TempDir()
	srv, db := diskServer(t, dir, Config{})
	defer db.Close()
	defer srv.Close()
	if err := srv.CreateSequence("s", testData(t, 10), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	sess := srv.NewSession("t")
	if _, _, err := sess.Materialize("v1", "select(s, v > 2)", seq.NewSpan(1, 10)); err != nil {
		t.Fatal(err)
	}
	if len(db.Views()) != 1 {
		t.Fatalf("view not persisted: %d", len(db.Views()))
	}
	if err := srv.DropView("v1"); err != nil {
		t.Fatal(err)
	}
	if len(db.Views()) != 0 {
		t.Fatal("persisted view survived DropView")
	}
	if err := srv.DropView("v1"); err == nil || !strings.Contains(err.Error(), "unknown view") {
		t.Fatalf("double drop = %v", err)
	}
}

func TestDiskServerSnapshotIsolationAcrossTier(t *testing.T) {
	dir := t.TempDir()
	srv, db := diskServer(t, dir, Config{})
	defer db.Close()
	defer srv.Close()
	if err := srv.CreateSequence("s", testData(t, 10), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	// Pin a reader, write behind it, and check the pinned epoch still
	// sees the old state while a fresh session sees the new one.
	epoch := srv.epochs.Pin()
	if _, err := srv.Append("s", 11, seq.Record{seq.Int(11)}); err != nil {
		t.Fatal(err)
	}
	sess := srv.NewSession("t")
	res, err := sess.optimizeAt(epoch, "s", seq.NewSpan(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != 10 {
		t.Fatalf("pinned reader sees %d records, want 10", out.Count())
	}
	srv.epochs.Release(epoch)
	qr, err := sess.Query("s", seq.NewSpan(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Entries) != 11 {
		t.Fatalf("fresh reader sees %d records, want 11", len(qr.Entries))
	}
	if n, _ := srv.GCOnce(); n < 0 {
		t.Fatal("GCOnce failed")
	}
}

func TestAttachDiskRejectsPopulatedServer(t *testing.T) {
	db, err := disk.Open(t.TempDir(), diskConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := testServer(t, Config{}, 5)
	defer srv.Close()
	if err := srv.AttachDisk(db); err == nil {
		t.Fatal("AttachDisk after CreateSequence must fail")
	}
	srv2, db2 := diskServer(t, t.TempDir(), Config{})
	defer db2.Close()
	defer srv2.Close()
	if err := srv2.AttachDisk(db2); err == nil {
		t.Fatal("double AttachDisk must fail")
	}
}
