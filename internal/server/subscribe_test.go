package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/wire"
)

// TestSubscribeLifecycle drives one standing query through its whole life
// on a single connection: ack + initial snapshot, a delta per append
// (including an empty replacement when the new record fails the
// predicate), and silence after unsubscribe.
func TestSubscribeLifecycle(t *testing.T) {
	srv := testServer(t, Config{Verify: true}, 10)
	addr := startTCP(t, srv)

	c, err := wire.Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ack, err := c.Subscribe("select(s, v > 5)", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ack.SubID != 1 || ack.Epoch != 0 {
		t.Fatalf("ack = %+v, want SubID 1 epoch 0", ack)
	}
	if len(ack.Fields) != 1 || ack.Fields[0].Name != "v" {
		t.Fatalf("ack fields = %v, want [v]", ack.Fields)
	}

	// Initial snapshot: the full span, holding exactly the matches.
	d, err := c.ReadDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d.SubID != 1 || d.Epoch != 0 || d.Start != 1 || d.End != 100 {
		t.Fatalf("initial delta header = %+v", d)
	}
	if len(d.Entries) != 5 || d.Entries[0].Pos != 6 || d.Entries[4].Pos != 10 {
		t.Fatalf("initial delta entries = %v, want positions 6..10", d.Entries)
	}

	// A matching append: one delta replacing exactly the written position.
	// The delta is framed before the append's own Ack, so it is already
	// queued when Append returns.
	if _, err := c.Append("s", 11, seq.Record{seq.Int(11)}); err != nil {
		t.Fatal(err)
	}
	if c.PendingDeltas() != 1 {
		t.Fatalf("pending deltas after append = %d, want 1", c.PendingDeltas())
	}
	d, err = c.ReadDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d.SubID != 1 || d.Epoch != 1 || d.Start != 11 || d.End != 11 {
		t.Fatalf("append delta header = %+v", d)
	}
	if len(d.Entries) != 1 || d.Entries[0].Pos != 11 || d.Entries[0].Rec[0] != seq.Int(11) {
		t.Fatalf("append delta entries = %v", d.Entries)
	}

	// A non-matching append still produces a delta — an empty region
	// replacement, which is how a standing select reports "nothing here".
	if _, err := c.Append("s", 12, seq.Record{seq.Int(-1)}); err != nil {
		t.Fatal(err)
	}
	d, err = c.ReadDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 2 || d.Start != 12 || d.End != 12 || len(d.Entries) != 0 {
		t.Fatalf("non-matching append delta = %+v, want empty [12,12]", d)
	}

	// After unsubscribe, appends are silent for this connection.
	if txt, err := c.Unsubscribe(1); err != nil || txt != "unsubscribed 1" {
		t.Fatalf("unsubscribe = %q, %v", txt, err)
	}
	if _, err := c.Append("s", 13, seq.Record{seq.Int(13)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("s", 1, 100); err != nil {
		t.Fatal(err)
	}
	if n := c.PendingDeltas(); n != 0 {
		t.Fatalf("pending deltas after unsubscribe = %d, want 0", n)
	}

	var se *wire.ServerError
	if _, err := c.Unsubscribe(1); !errors.As(err, &se) || se.Code != wire.CodeNotFound {
		t.Fatalf("double unsubscribe error = %v, want code %q", err, wire.CodeNotFound)
	}
}

// TestSubscribeRefusals checks the queries seqd must turn away: unbounded
// spans, universe-sensitive plans, and queries that do not bind.
func TestSubscribeRefusals(t *testing.T) {
	srv := testServer(t, Config{Verify: true}, 10)
	addr := startTCP(t, srv)

	c, err := wire.Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cases := []struct {
		name, seql string
		start, end int64
		code       wire.ErrorCode
	}{
		{"unbounded span", "s", 1, int64(seq.MaxPos), wire.CodePlan},
		{"universe-sensitive", "voffset(voffset(s, 1), 1)", 1, 100, wire.CodePlan},
		{"unknown base", "select(nosuch, v > 0)", 1, 100, wire.CodeParse},
	}
	for _, tc := range cases {
		var se *wire.ServerError
		_, err := c.Subscribe(tc.seql, tc.start, tc.end)
		if !errors.As(err, &se) || se.Code != tc.code {
			t.Errorf("%s: error = %v, want code %q", tc.name, err, tc.code)
		}
	}
	// Refused subscriptions must not leak ids or deltas.
	ack, err := c.Subscribe("s", 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ack.SubID != 1 {
		t.Fatalf("first granted subscription id = %d, want 1", ack.SubID)
	}
	if _, err := c.ReadDelta(); err != nil {
		t.Fatal(err)
	}
	if c.PendingDeltas() != 0 {
		t.Fatalf("pending deltas = %d, want 0", c.PendingDeltas())
	}
}

// TestSubscribeConcurrentAppends is the delta-accounting race test: two
// writers append concurrently to their own bases while three subscribers
// each hold a standing query on both. Every subscriber must receive
// exactly one delta per append per subscription, carrying exactly the
// appended record, with per-subscription epochs strictly increasing, and
// replaying the region replacements must reconstruct the server's final
// state record for record. Run under -race this also exercises the
// wmu → conn.wm frame path against concurrent turn traffic.
func TestSubscribeConcurrentAppends(t *testing.T) {
	const (
		nSubscribers = 3
		nWriters     = 2
		nAppends     = 30 // per writer
		spanEnd      = 1000
	)
	srv := testServer(t, Config{Verify: true}, 10) // base "s" unused; writers get b1..bN
	for w := 1; w <= nWriters; w++ {
		if err := srv.CreateSequence(fmt.Sprintf("b%d", w), testData(t, 10), storage.KindSparse); err != nil {
			t.Fatal(err)
		}
	}
	addr := startTCP(t, srv)

	type subState struct {
		c     *wire.Client
		ids   [nWriters]uint64 // subscription id per base
		state [nWriters]map[seq.Pos]seq.Record
	}
	subs := make([]*subState, nSubscribers)
	for i := range subs {
		c, err := wire.Dial(addr, fmt.Sprintf("sub%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		st := &subState{c: c}
		for w := 0; w < nWriters; w++ {
			ack, err := c.Subscribe(fmt.Sprintf("b%d", w+1), 1, spanEnd)
			if err != nil {
				t.Fatal(err)
			}
			st.ids[w] = ack.SubID
			st.state[w] = make(map[seq.Pos]seq.Record)
		}
		subs[i] = st
	}

	var wg sync.WaitGroup
	errc := make(chan error, nSubscribers+nWriters)

	// Writers: each appends nAppends records to its own base, racing the
	// other writer for the server's write lock.
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.Dial(addr, fmt.Sprintf("writer%d", w))
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for i := 0; i < nAppends; i++ {
				pos := int64(11 + i)
				if _, err := c.Append(fmt.Sprintf("b%d", w+1), pos, seq.Record{seq.Int(pos * 10)}); err != nil {
					errc <- fmt.Errorf("writer %d append %d: %w", w, pos, err)
					return
				}
			}
		}(w)
	}

	// Subscribers: drain the initial snapshots plus one delta per append
	// per subscription, applying each as a region replacement.
	for _, st := range subs {
		wg.Add(1)
		go func(st *subState) {
			defer wg.Done()
			lastEpoch := make(map[uint64]int64)
			counts := make(map[uint64]int)
			want := nWriters * (1 + nAppends)
			for n := 0; n < want; n++ {
				d, err := st.c.ReadDelta()
				if err != nil {
					errc <- err
					return
				}
				if d.Epoch <= lastEpoch[d.SubID] && !(lastEpoch[d.SubID] == 0 && d.Epoch == 0) {
					errc <- fmt.Errorf("sub %d: epoch %d after %d", d.SubID, d.Epoch, lastEpoch[d.SubID])
					return
				}
				lastEpoch[d.SubID] = d.Epoch
				counts[d.SubID]++
				if counts[d.SubID] > 1 { // incremental: exactly the one appended record
					if d.Start != d.End || len(d.Entries) != 1 || d.Entries[0].Pos != seq.Pos(d.Start) {
						errc <- fmt.Errorf("sub %d: incremental delta %+v not a single-record replacement", d.SubID, d)
						return
					}
				}
				var w int
				for i, id := range st.ids {
					if id == d.SubID {
						w = i
					}
				}
				for p := seq.Pos(d.Start); p <= seq.Pos(d.End); p++ {
					delete(st.state[w], p)
				}
				for _, e := range d.Entries {
					if e.Pos < seq.Pos(d.Start) || e.Pos > seq.Pos(d.End) {
						errc <- fmt.Errorf("sub %d: entry %d outside region [%d,%d]", d.SubID, e.Pos, d.Start, d.End)
						return
					}
					st.state[w][e.Pos] = e.Rec
				}
			}
			for id, n := range counts {
				if n != 1+nAppends {
					errc <- fmt.Errorf("sub %d: %d deltas, want %d", id, n, 1+nAppends)
					return
				}
			}
		}(st)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every subscriber's replayed state must match a fresh query.
	check, err := wire.Dial(addr, "check")
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	for w := 0; w < nWriters; w++ {
		res, err := check.Query(fmt.Sprintf("b%d", w+1), 1, spanEnd)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Entries) != 10+nAppends {
			t.Fatalf("b%d: %d entries, want %d", w+1, len(res.Entries), 10+nAppends)
		}
		for _, st := range subs {
			if len(st.state[w]) != len(res.Entries) {
				t.Fatalf("b%d: subscriber replayed %d records, server has %d", w+1, len(st.state[w]), len(res.Entries))
			}
			for _, e := range res.Entries {
				rec, ok := st.state[w][e.Pos]
				if !ok || len(rec) != len(e.Rec) || rec[0] != e.Rec[0] {
					t.Fatalf("b%d pos %d: replayed %v, server %v", w+1, e.Pos, rec, e.Rec)
				}
			}
		}
	}

	// One subscriber drops a subscription; the next append to that base
	// must reach the other two but not it.
	quitter, keeper := subs[0], subs[1]
	if _, err := quitter.c.Unsubscribe(quitter.ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := check.Append("b1", 11+nAppends, seq.Record{seq.Int(-7)}); err != nil {
		t.Fatal(err)
	}
	d, err := keeper.c.ReadDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d.SubID != keeper.ids[0] || len(d.Entries) != 1 || d.Entries[0].Rec[0] != seq.Int(-7) {
		t.Fatalf("post-unsubscribe delta to keeper = %+v", d)
	}
	if _, err := quitter.c.Query("b1", 1, spanEnd); err != nil {
		t.Fatal(err)
	}
	if n := quitter.c.PendingDeltas(); n != 0 {
		t.Fatalf("quitter pending deltas = %d, want 0", n)
	}
}
