// Standing queries: SUBSCRIBE turns a SEQL query into a server-resident
// subscription whose result the client keeps current by applying pushed
// Delta frames. The machinery is the same incremental view maintenance
// the registry uses (matview.AffectedSpan bounds where a write can
// change the result), applied per write instead of per registered view:
// the affected halo is intersected with the subscription span, just that
// sub-span is re-evaluated against the post-write snapshots, and the
// result travels as an epoch-stamped region replacement.
//
// Everything happens under Server.wmu, between publishing the write and
// advancing the epoch: a subscriber that applies deltas in arrival order
// can never observe an epoch whose delta it has not seen. The price is
// that a slow subscriber (full TCP buffer) blocks the writer lock — see
// docs/OPERATIONS.md, "Standing-query sizing".
package server

import (
	"repro/internal/algebra"
	"repro/internal/matview"
	"repro/internal/parser"
	"repro/internal/seq"
	"repro/internal/wire"
)

// subscription is one standing query on one connection. The node is the
// query's block bound at subscribe time; every maintenance pass rebinds
// its base leaves to the write's snapshots by name.
type subscription struct {
	id   uint64
	c    *conn
	seql string
	node *algebra.Node
	span seq.Span
}

// subscribe registers a standing query for the connection, sending the
// SubAck and the initial full-content delta atomically with the
// registration (under wmu), so no concurrent write can slip between
// snapshot and registration unseen.
func (s *Server) subscribe(c *conn, seql string, span seq.Span) error {
	if !span.Bounded() {
		return errf(wire.CodePlan, "subscribe needs a bounded span, got %s", span)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	epoch := s.epochs.Current()
	root, err := parser.Bind(seql, s.catalogAt(epoch))
	if err != nil {
		return &Error{Code: wire.CodeParse, Err: err}
	}
	if algebra.UniverseSensitive(root) {
		return errf(wire.CodePlan,
			"standing query is universe-sensitive: its content outside a write's halo could change, so deltas cannot be incremental")
	}
	entries, err := algebra.EvalRange(root, span)
	if err != nil {
		return &Error{Code: wire.CodeExec, Err: err}
	}
	s.nextSub++
	sub := &subscription{id: s.nextSub, c: c, seql: seql, node: root, span: span}
	s.subs[sub.id] = sub
	if err := c.push(&wire.SubAck{SubID: sub.id, Epoch: epoch, Fields: root.Schema.Fields()}); err != nil {
		delete(s.subs, sub.id)
		return err
	}
	for _, d := range wire.SplitDelta(sub.id, epoch, int64(span.Start), int64(span.End), entries) {
		if err := c.push(d); err != nil {
			delete(s.subs, sub.id)
			return err
		}
	}
	return nil
}

// unsubscribe cancels one of the connection's standing queries.
func (s *Server) unsubscribe(c *conn, id uint64) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	sub, ok := s.subs[id]
	if !ok || sub.c != c {
		return errf(wire.CodeNotFound, "no subscription %d on this connection", id)
	}
	delete(s.subs, id)
	return nil
}

// dropConnSubs removes every subscription of a disconnecting client.
func (s *Server) dropConnSubs(c *conn) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	for id, sub := range s.subs {
		if sub.c == c {
			delete(s.subs, id)
		}
	}
}

// publishDeltas pushes one region replacement to every subscription the
// write can have changed. Called under wmu after the write published at
// epoch, before the epoch advances. Per subscription: rebind the block
// to the epoch's snapshots, bound the halo with the same AffectedSpan
// analysis view maintenance uses, re-evaluate the halo ∩ span
// sub-region, and frame it. An unknown halo falls back to replacing the
// whole span. A push failure means the client is gone; its
// subscriptions are dropped and the connection's reader will notice.
func (s *Server) publishDeltas(base string, delta seq.Span, epoch int64) {
	if len(s.subs) == 0 {
		return
	}
	lookup := s.sequenceAt(epoch)
	var dead []*subscription
	for _, sub := range s.subs {
		if !matview.ReadsBase(sub.node, base) {
			continue
		}
		node, err := matview.Rebind(sub.node, lookup)
		if err != nil {
			dead = append(dead, sub)
			continue
		}
		hit := sub.span
		if affected, known := matview.AffectedSpan(node, base, delta); known {
			hit = affected.Intersect(sub.span)
		}
		if hit.IsEmpty() {
			continue
		}
		entries, err := algebra.EvalRange(node, hit)
		if err != nil {
			dead = append(dead, sub)
			continue
		}
		for _, d := range wire.SplitDelta(sub.id, epoch, int64(hit.Start), int64(hit.End), entries) {
			if err := sub.c.push(d); err != nil {
				dead = append(dead, sub)
				break
			}
		}
	}
	for _, sub := range dead {
		delete(s.subs, sub.id)
	}
}
