package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/wire"
)

// The concurrency fuzz harness: writer goroutines Append and Reorganize
// the shared base sequence while reader sessions run queries and
// materialized-view operations concurrently. Because writes are
// deterministic — the k-th append adds record v=initial+k at position
// initial+k, and each write's publication epoch is recorded — the exact
// expected contents at ANY epoch are computable, and every reader
// asserts its result record-for-record against its own pinned epoch.
// Run with -race (the CI server job does).

// appendLog records which epoch published each append, in order.
type appendLog struct {
	mu     sync.Mutex
	epochs []int64
}

func (l *appendLog) add(e int64) {
	l.mu.Lock()
	l.epochs = append(l.epochs, e)
	l.mu.Unlock()
}

// countAt returns how many appends were published at or below epoch e.
// Epochs are recorded in increasing order (writes are serialized), so a
// binary search suffices.
func (l *appendLog) countAt(e int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return sort.Search(len(l.epochs), func(i int) bool { return l.epochs[i] > e })
}

// expectEntries asserts that got is exactly records 1..n at positions
// 1..n (the deterministic fuzz contents after n-initial appends).
func expectEntries(got []seq.Entry, n int) error {
	if len(got) != n {
		return fmt.Errorf("got %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		want := int64(i + 1)
		if int64(e.Pos) != want || len(e.Rec) != 1 || e.Rec[0].AsInt() != want {
			return fmt.Errorf("entry %d = %s@%d, want %d@%d", i, e.Rec, e.Pos, want, want)
		}
	}
	return nil
}

func TestFuzzConcurrentAppendQuery(t *testing.T) {
	const (
		initial  = 100
		writers  = 2
		readers  = 6
		appends  = 150 // per writer
		duration = 2 * time.Second
	)
	srv := testServer(t, Config{Workers: 4, Verify: true}, initial)
	log := &appendLog{}

	// Writers: serialized appends at deterministic positions. nextPos is
	// shared so the two writers interleave; a failed claim is retried by
	// the other writer's next claim.
	var posMu sync.Mutex
	nextPos := int64(initial + 1)
	var wg sync.WaitGroup
	writerErr := make(chan error, writers+readers+2)
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				posMu.Lock()
				pos := nextPos
				e, err := srv.Append("s", seq.Pos(pos), seq.Record{seq.Int(pos)})
				if err == nil {
					nextPos++
					log.add(e)
				}
				posMu.Unlock()
				if err != nil {
					writerErr <- fmt.Errorf("append at %d: %w", pos, err)
					return
				}
			}
		}()
	}

	// Reorganizer: repacks the sequence in place (sparse→sparse), a
	// whole-version copy-on-write publish racing the appenders.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := srv.Reorganize("s", storage.KindSparse); err != nil {
				writerErr <- fmt.Errorf("reorganize: %w", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Readers: each query pins an epoch; the result must be a prefix
	// 1..n record-for-record (structural check, in-loop). The exact
	// n-vs-epoch accounting is verified post-hoc against the complete
	// append log: in-flight, a reader may observe a just-published epoch
	// microseconds before the writer records it, so the live log is only
	// a lower bound.
	type observation struct {
		epoch   int64
		entries []seq.Entry
	}
	observations := make([][]observation, readers)
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := srv.NewSession(fmt.Sprintf("reader-%d", r))
			deadline := time.Now().Add(duration)
			for time.Now().Before(deadline) {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sess.Query("select(s, v > 0)", seq.NewSpan(1, initial+writers*appends+10))
				if err != nil {
					writerErr <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if err := expectEntries(res.Entries, len(res.Entries)); err != nil {
					writerErr <- fmt.Errorf("reader %d at epoch %d: %w", r, res.Epoch, err)
					return
				}
				if min := initial + log.countAt(res.Epoch); len(res.Entries) < min {
					writerErr <- fmt.Errorf("reader %d at epoch %d: %d entries, but %d appends already published at that epoch",
						r, res.Epoch, len(res.Entries), min-initial)
					return
				}
				if len(observations[r]) < 64 {
					observations[r] = append(observations[r], observation{res.Epoch, res.Entries})
				}
			}
		}()
	}

	// Give writers time to finish, then release the reorganizer/readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-writerErr:
		close(stop)
		<-done
		t.Fatal(err)
	case <-time.After(duration):
		close(stop)
		<-done
	case <-done:
		close(stop)
	}
	select {
	case err := <-writerErr:
		t.Fatal(err)
	default:
	}

	// Exact epoch accounting, now that the log is complete: every
	// observed result must hold initial + (appends published at or below
	// its pinned epoch) records — no torn reads, no lost writes.
	for r, obs := range observations {
		for _, o := range obs {
			if want := initial + log.countAt(o.epoch); len(o.entries) != want {
				t.Fatalf("reader %d at epoch %d saw %d records, want exactly %d",
					r, o.epoch, len(o.entries), want)
			}
		}
	}

	// Serial re-verification: with all concurrency stopped, re-read each
	// observed epoch's snapshot directly from storage and compare record
	// for record with what the concurrent reader saw. (GC never ran:
	// Serve was not started and the test calls GCOnce only after this.)
	ss, e := srv.lookup("s")
	if e != nil {
		t.Fatal(e)
	}
	checked := 0
	for r, obs := range observations {
		for _, o := range obs {
			snap := ss.v.SnapshotAt(o.epoch)
			if snap == nil {
				t.Fatalf("reader %d: no snapshot at observed epoch %d", r, o.epoch)
			}
			serial, err := seq.Collect(snap.Scan(seq.AllSpan))
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(o.entries) {
				t.Fatalf("reader %d epoch %d: serial re-run has %d records, concurrent saw %d",
					r, o.epoch, len(serial), len(o.entries))
			}
			for i := range serial {
				if serial[i].Pos != o.entries[i].Pos || !serial[i].Rec.Equal(o.entries[i].Rec) {
					t.Fatalf("reader %d epoch %d record %d: serial %s@%d vs concurrent %s@%d",
						r, o.epoch, i, serial[i].Rec, serial[i].Pos, o.entries[i].Rec, o.entries[i].Pos)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no observations to verify — readers never completed a query")
	}
	t.Logf("verified %d concurrent results against serial snapshot re-reads; final epoch %d, %d page versions",
		checked, srv.Epoch(), srv.PageVersions())

	// After everything quiesces, GC reclaims all but the newest version.
	versions, _ := srv.GCOnce()
	if left := ss.v.Versions(); left != 1 {
		t.Fatalf("GC left %d versions (dropped %d)", left, versions)
	}
}

// TestFuzzMatviewEpochIsolation races view materialization, view-backed
// reads, and invalidating writes. The Verify option makes every plan run
// the full planlint check, and the engine additionally re-derives the
// snapshot/* family per read — a reader substituting a view that is
// invalid at its pinned epoch would fail its query.
func TestFuzzMatviewEpochIsolation(t *testing.T) {
	const initial = 200
	srv := testServer(t, Config{Workers: 4, Verify: true}, initial)
	sess := srv.NewSession("setup")
	if _, _, err := sess.Materialize("hot", "select(s, v > 10)", seq.NewSpan(1, initial)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	stop := make(chan struct{})

	// Writer: appends invalidate "hot" from their epoch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pos := int64(initial + 1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := srv.Append("s", seq.Pos(pos), seq.Record{seq.Int(pos)}); err != nil {
				errc <- err
				return
			}
			pos++
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Re-materializer: keeps registering fresh views under new names;
	// CodeConflict (a write raced the computation) is an expected
	// outcome, any other failure is not.
	conflicts := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := srv.NewSession("materializer")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("view%d", i)
			_, _, err := s.Materialize(name, "select(s, v > 20)", seq.NewSpan(1, initial))
			if err != nil {
				var se *Error
				if errors.As(err, &se) && se.Code == wire.CodeConflict {
					conflicts++
					continue
				}
				errc <- err
				return
			}
		}
	}()

	// Readers: run the view-shaped query; the planner is free to
	// substitute any registered view that is valid at the pinned epoch.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := srv.NewSession("reader")
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query("select(s, v > 10)", seq.NewSpan(1, initial))
				if err != nil {
					errc <- err
					return
				}
				// Within [1, initial] the result is epoch-independent:
				// appends land beyond. Exactly initial-10 records.
				if err := expectEntries2(res.Entries, 11, initial); err != nil {
					errc <- fmt.Errorf("epoch %d: %w", res.Epoch, err)
					return
				}
			}
		}()
	}

	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// GC with no readers pinned reclaims every invalidated view.
	srv.GCOnce()
	for _, v := range srv.ViewCounters() {
		if v.InvalidFrom != 0 {
			t.Fatalf("GC left invalidated view %+v", v)
		}
	}
}

// expectEntries2 asserts got is exactly v=lo..hi at positions lo..hi.
func expectEntries2(got []seq.Entry, lo, hi int) error {
	if want := hi - lo + 1; len(got) != want {
		return fmt.Errorf("got %d entries, want %d", len(got), want)
	}
	for i, e := range got {
		want := int64(lo + i)
		if int64(e.Pos) != want || e.Rec[0].AsInt() != want {
			return fmt.Errorf("entry %d = %s@%d, want %d@%d", i, e.Rec, e.Pos, want, want)
		}
	}
	return nil
}
