package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/matview"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/wire"
)

// testData builds a sparse one-column int sequence v=i at positions 1..n.
func testData(t *testing.T, n int) *seq.Materialized {
	t.Helper()
	schema, err := seq.NewSchema(seq.Field{Name: "v", Type: seq.TInt})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]seq.Entry, n)
	for i := range entries {
		entries[i] = seq.Entry{Pos: seq.Pos(i + 1), Rec: seq.Record{seq.Int(int64(i + 1))}}
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testServer(t *testing.T, cfg Config, n int) *Server {
	t.Helper()
	srv := New(cfg)
	if err := srv.CreateSequence("s", testData(t, n), storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	return srv
}

// startTCP serves srv on a loopback listener, tearing down with the test.
func startTCP(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

func TestServerQueryOverWire(t *testing.T) {
	srv := testServer(t, Config{Verify: true}, 100)
	addr := startTCP(t, srv)

	c, err := wire.Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Server() != "seqd" || c.Version() != wire.ProtocolVersion {
		t.Fatalf("handshake: server %q version %d", c.Server(), c.Version())
	}

	res, err := c.Query("select(s, v > 90)", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 10 || res.Rows != 10 {
		t.Fatalf("got %d entries, %d rows, want 10", len(res.Entries), res.Rows)
	}
	for i, e := range res.Entries {
		if want := seq.Pos(91 + i); e.Pos != want || e.Rec[0].AsInt() != int64(want) {
			t.Fatalf("entry %d = %v@%d, want %d@%d", i, e.Rec, e.Pos, want, want)
		}
	}
	if len(res.Fields) != 1 || res.Fields[0].Name != "v" {
		t.Fatalf("fields = %v", res.Fields)
	}
	if res.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0", res.Epoch)
	}

	// Result batching: more rows than one ResultRows frame carries.
	res, err = c.Query("select(s, v > 0)", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 100 {
		t.Fatalf("full scan returned %d entries", len(res.Entries))
	}
}

func TestServerAppendAdvancesEpoch(t *testing.T) {
	srv := testServer(t, Config{}, 10)
	addr := startTCP(t, srv)
	c, err := wire.Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	e1, err := c.Append("s", 11, seq.Record{seq.Int(11)})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Append("s", 12, seq.Record{seq.Int(12)})
	if err != nil {
		t.Fatal(err)
	}
	if e1 != 1 || e2 != 2 {
		t.Fatalf("append epochs %d, %d, want 1, 2", e1, e2)
	}
	if c.Epoch() != 2 {
		t.Fatalf("client-side epoch %d after turn, want 2", c.Epoch())
	}
	res, err := c.Query("select(s, v > 0)", 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 12 || res.Epoch != 2 {
		t.Fatalf("post-append query: %d entries at epoch %d", len(res.Entries), res.Epoch)
	}

	// Append rejections keep the connection usable.
	if _, err := c.Append("s", 5, seq.Record{seq.Int(5)}); err == nil {
		t.Fatal("non-monotonic append accepted")
	} else {
		var se *wire.ServerError
		if !errors.As(err, &se) || se.Code != wire.CodeAppend {
			t.Fatalf("append error = %v", err)
		}
	}
	if _, err := c.Append("nope", 1, seq.Record{seq.Int(1)}); err == nil {
		t.Fatal("append to unknown sequence accepted")
	} else {
		var se *wire.ServerError
		if !errors.As(err, &se) || se.Code != wire.CodeNotFound {
			t.Fatalf("unknown-sequence error = %v", err)
		}
	}
	if _, err := c.Query("select(s, v > 0)", 1, 20); err != nil {
		t.Fatalf("connection unusable after errors: %v", err)
	}
}

func TestServerExplainAnalyzeAndCounters(t *testing.T) {
	srv := testServer(t, Config{Verify: true}, 200)
	addr := startTCP(t, srv)
	c, err := wire.Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	plan, err := c.Explain("select(s, v > 100)", 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "plan @epoch 0") || !strings.Contains(plan, "stream cost") {
		t.Fatalf("explain output:\n%s", plan)
	}

	metrics, err := c.Analyze("select(s, v > 100)", 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"server counters:", "epoch", "pinned-epoch", "live-readers",
		"page-versions", "workers", "queue-wait", "queries", "appends", "conflicts"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, metrics)
		}
	}
}

func TestServerMaterializeAndViews(t *testing.T) {
	srv := testServer(t, Config{Verify: true}, 100)
	addr := startTCP(t, srv)
	c, err := wire.Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Materialize("hot", "select(s, v > 50)", 1, 100); err != nil {
		t.Fatal(err)
	}
	views, err := c.ListViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].Name != "hot" || views[0].InvalidFrom != 0 {
		t.Fatalf("views = %+v", views)
	}

	// A write outside the view's span leaves it valid: the append's
	// delta halo [101,101] misses [1,100], so maintenance is a no-op
	// where the old behavior invalidated.
	if _, err := c.Append("s", 101, seq.Record{seq.Int(101)}); err != nil {
		t.Fatal(err)
	}
	views, err = c.ListViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].InvalidFrom != 0 {
		t.Fatalf("views after out-of-span append = %+v", views)
	}
	reports := srv.TakeMaintenanceReports()
	if len(reports) != 1 || reports[0].Action != matview.MaintainNone {
		t.Fatalf("maintenance reports after out-of-span append = %v", reports)
	}

	// A write inside a view's span is stitched: a trailing-window sum's
	// hull extends past the base end, so the next append lands inside
	// the view. The view stays valid, its fresh generation is stamped
	// with the write's epoch, and the stitched region reflects the new
	// record.
	if _, err := c.Materialize("wide", "sum(s, v, 3)", 1, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append("s", 102, seq.Record{seq.Int(102)}); err != nil {
		t.Fatal(err)
	}
	stitched := false
	for _, rep := range srv.TakeMaintenanceReports() {
		if rep.ViewName == "wide" {
			if rep.Action != matview.MaintainStitch {
				t.Fatalf("wide view not stitched: %v", rep)
			}
			stitched = true
		}
	}
	if !stitched {
		t.Fatal("no maintenance report for the wide view")
	}
	views, err = c.ListViews()
	if err != nil {
		t.Fatal(err)
	}
	// The swap keeps the superseded generation for readers pinned below
	// the write's epoch; the live generation is stamped with it.
	var live, old bool
	for _, v := range views {
		if v.Name != "wide" {
			continue
		}
		switch v.InvalidFrom {
		case 0:
			live = true
			if v.FromEpoch != 2 {
				t.Fatalf("live wide generation = %+v, want valid from epoch 2", v)
			}
		case 2:
			old = true
		default:
			t.Fatalf("unexpected wide generation %+v", v)
		}
	}
	if !live || !old {
		t.Fatalf("want a live and a superseded wide generation, got %+v", views)
	}
	res, err := c.Query("sum(s, v, 3)", 1, 103)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range res.Entries {
		if e.Pos == 102 {
			found = true
			if len(e.Rec) != 1 || e.Rec[0] != seq.Int(100+101+102) {
				t.Fatalf("stitched window at 102 = %v, want sum 303", e.Rec)
			}
		}
	}
	if !found {
		t.Fatal("no entry at position 102 after stitch")
	}

	if _, err := c.DropView("wide"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DropView("hot"); err != nil {
		t.Fatal(err)
	}
	if views, _ := c.ListViews(); len(views) != 0 {
		t.Fatalf("views after drop = %+v", views)
	}
	if _, err := c.DropView("hot"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestServerCatalogAndOptions(t *testing.T) {
	srv := testServer(t, Config{}, 50)
	addr := startTCP(t, srv)
	c, err := wire.Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	names, err := c.ListSeqs()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "s" {
		t.Fatalf("sequences = %v", names)
	}
	info, err := c.Describe("s")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "s" || info.Kind != "sparse" || info.Start != 1 || info.End != 50 {
		t.Fatalf("describe = %+v", info)
	}
	if _, err := c.Describe("nope"); err == nil {
		t.Fatal("describe unknown accepted")
	}

	for _, opt := range [][2]string{
		{"parallelism", "2"}, {"reopt", "on"}, {"views", "off"}, {"verify", "on"},
	} {
		if _, err := c.SetOption(opt[0], opt[1]); err != nil {
			t.Fatalf("set %s=%s: %v", opt[0], opt[1], err)
		}
	}
	if _, err := c.SetOption("nope", "1"); err == nil {
		t.Fatal("unknown option accepted")
	} else {
		var se *wire.ServerError
		if !errors.As(err, &se) || se.Code != wire.CodeOption {
			t.Fatalf("option error = %v", err)
		}
	}

	// Parse and plan errors come back classified.
	if _, err := c.Query("select(s, nope > 3)", 1, 10); err == nil {
		t.Fatal("bad query accepted")
	} else {
		var se *wire.ServerError
		if !errors.As(err, &se) || se.Code != wire.CodeParse {
			t.Fatalf("parse error = %v", err)
		}
	}
}

// TestCloseUnblocksIdleConnections: Close must not wait for idle
// clients — handlers park in wire.ReadMessage with no deadline, so Close
// closes every tracked connection to unblock them. Before the tracking
// was added, this test hung forever.
func TestCloseUnblocksIdleConnections(t *testing.T) {
	srv := testServer(t, Config{}, 10)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// An idle client: handshake completes, then no further frames.
	c, err := wire.Dial(ln.Addr().String(), "idle")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an idle connection")
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve after Close: %v", err)
	}
}

// TestHostileFrameKeepsServerAlive sends the frame that used to panic
// the decode path (SetOption with a 2^63-1 string length) straight at a
// live server: the connection must die with a protocol error while the
// server keeps serving other clients.
func TestHostileFrameKeepsServerAlive(t *testing.T) {
	srv := testServer(t, Config{}, 10)
	addr := startTCP(t, srv)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteMessage(nc, &wire.Hello{Version: wire.ProtocolVersion, Client: "evil"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadMessage(nc, 0); err != nil {
		t.Fatal(err)
	}
	// Hand-built SetOption frame claiming a 2^63-1 byte string.
	payload := []byte{byte(wire.TSetOption)}
	payload = append(payload, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // uvarint 2^63-1
	hdr := []byte{0, 0, 0, byte(len(payload))}
	if _, err := nc.Write(append(hdr, payload...)); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadMessage(nc, 0)
	if err != nil {
		t.Fatalf("expected an Error frame, got %v", err)
	}
	if e, ok := m.(*wire.Error); !ok || e.Code != wire.CodeProtocol {
		t.Fatalf("got %T %v, want protocol error", m, m)
	}

	// The daemon survived: a fresh client still gets answers.
	c, err := wire.Dial(addr, "after")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if res, err := c.Query("select(s, v > 0)", 1, 10); err != nil || len(res.Entries) != 10 {
		t.Fatalf("server unhealthy after hostile frame: %v", err)
	}
}

func TestServerRejectsOldClient(t *testing.T) {
	srv := testServer(t, Config{}, 10)
	addr := startTCP(t, srv)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteMessage(nc, &wire.Hello{Version: 0, Client: "old"}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadMessage(nc, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := m.(*wire.Error)
	if !ok || e.Code != wire.CodeVersion {
		t.Fatalf("got %T %v, want version error", m, m)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv := testServer(t, Config{Workers: 2, Verify: true}, 100)
	addr := startTCP(t, srv)

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(id int) {
			c, err := wire.Dial(addr, fmt.Sprintf("c%d", id))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				res, err := c.Query("select(s, v > 50)", 1, 100)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Entries) != 50 {
					errs <- fmt.Errorf("client %d got %d entries", id, len(res.Entries))
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionSnapshotStability pins the core isolation property at the
// engine level: a query sees exactly the records published at its epoch,
// never a mix.
func TestSessionSnapshotStability(t *testing.T) {
	srv := testServer(t, Config{Verify: true}, 10)
	sess := srv.NewSession("t")

	res, err := sess.Query("select(s, v > 0)", seq.NewSpan(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 10 || res.Epoch != 0 {
		t.Fatalf("initial query: %d entries at epoch %d", len(res.Entries), res.Epoch)
	}
	if _, err := srv.Append("s", 11, seq.Record{seq.Int(11)}); err != nil {
		t.Fatal(err)
	}
	res, err = sess.Query("select(s, v > 0)", seq.NewSpan(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 11 || res.Epoch != 1 {
		t.Fatalf("post-append query: %d entries at epoch %d", len(res.Entries), res.Epoch)
	}

	// Reorganize publishes a new representation; contents unchanged.
	if _, err := srv.Reorganize("s", storage.KindDense); err != nil {
		t.Fatal(err)
	}
	res, err = sess.Query("select(s, v > 0)", seq.NewSpan(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 11 || res.Epoch != 2 {
		t.Fatalf("post-reorganize query: %d entries at epoch %d", len(res.Entries), res.Epoch)
	}
	info, err := sess.Describe("s")
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "dense" {
		t.Fatalf("kind after reorganize = %s", info.Kind)
	}
}

func TestServerGC(t *testing.T) {
	srv := testServer(t, Config{}, 10)
	for i := 11; i <= 20; i++ {
		if _, err := srv.Append("s", seq.Pos(i), seq.Record{seq.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if srv.PageVersions() == 0 {
		t.Fatal("no page versions retained")
	}
	versions, _ := srv.GCOnce()
	if versions != 10 {
		t.Fatalf("GC dropped %d versions, want 10", versions)
	}
	// Data unharmed.
	sess := srv.NewSession("t")
	res, err := sess.Query("select(s, v > 0)", seq.NewSpan(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 20 {
		t.Fatalf("post-GC query: %d entries", len(res.Entries))
	}
}
