// Disk attachment: the server's storage tier behind serverSeq is an
// interface with two implementations — the memory-backed
// storage.Versioned the server has always used, and the durable
// disk.DB (page files + WAL + buffer pool, internal/storage/disk).
// AttachDisk swaps the tier: existing sequences and persisted views are
// loaded, the epoch tracker is seeded from the database's recovered
// epoch, and every subsequent write (create, append, reorganize,
// materialize, drop view) follows write-ahead discipline through the
// disk layer before it publishes in memory. The read path is untouched:
// both tiers hand out epoch-pinned storage.SeqSnapshot leaves, so
// snapshot isolation, planlint verification and EXPLAIN ANALYZE page
// attribution work identically — disk snapshots merely add buffer-pool
// counters to the same storage.Stats blocks.
package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/meta"
	"repro/internal/parser"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/storage/disk"
)

// versionedSeq is one multi-version base sequence as the server sees
// it: epoch-pinned snapshot reads plus epoch-explicit writes. Writes
// are only ever called under Server.wmu, matching the
// publish-then-advance protocol; SnapshotAt must return an untyped nil
// when the store has no version at or below the epoch.
type versionedSeq interface {
	SnapshotAt(epoch int64) storage.SeqSnapshot
	LatestEpoch() int64
	Versions() int
	PageVersions() int
	GC(minLive int64) int
	Append(e seq.Entry, epoch int64) error
	Reorganize(kind storage.Kind, epoch int64) error
}

// memSeq adapts the memory-backed storage.Versioned. The only work is
// nil conversion: a typed-nil *storage.Snapshot must become an untyped
// nil interface so the catalog's visibility check fires.
type memSeq struct{ v *storage.Versioned }

func (m memSeq) SnapshotAt(epoch int64) storage.SeqSnapshot {
	if s := m.v.SnapshotAt(epoch); s != nil {
		return s
	}
	return nil
}
func (m memSeq) LatestEpoch() int64                           { return m.v.LatestEpoch() }
func (m memSeq) Versions() int                                { return m.v.Versions() }
func (m memSeq) PageVersions() int                            { return m.v.PageVersions() }
func (m memSeq) GC(minLive int64) int                         { return m.v.GC(minLive) }
func (m memSeq) Append(e seq.Entry, epoch int64) error        { return m.v.Append(e, epoch) }
func (m memSeq) Reorganize(k storage.Kind, epoch int64) error { return m.v.Reorganize(k, epoch) }

// diskSeq adapts one sequence of an attached disk.DB. Mutations go
// through the database's epoch-explicit entry points so they are
// WAL-logged and durable before publication; the database's own epoch
// follows the server's epochs because every write carries the epoch the
// server chose under wmu.
type diskSeq struct {
	db *disk.DB
	s  *disk.Seq
}

func (d diskSeq) SnapshotAt(epoch int64) storage.SeqSnapshot {
	if s := d.s.SnapshotAt(epoch); s != nil {
		return s
	}
	return nil
}
func (d diskSeq) LatestEpoch() int64   { return d.s.LatestEpoch() }
func (d diskSeq) Versions() int        { return d.s.Versions() }
func (d diskSeq) PageVersions() int    { return d.s.PageVersions() }
func (d diskSeq) GC(minLive int64) int { return d.s.GC(minLive) }
func (d diskSeq) Append(e seq.Entry, epoch int64) error {
	return d.db.AppendAt(d.s.Name(), e, epoch)
}
func (d diskSeq) Reorganize(k storage.Kind, epoch int64) error {
	return d.db.ReorganizeAt(d.s.Name(), k, epoch)
}

// AttachDisk makes the database the server's storage tier. Call it
// once, after New and before the server accepts writes or sessions: the
// recovered sequences are registered with freshly computed column
// statistics, the epoch tracker is advanced to the database's recovered
// epoch, and persisted materialized views are re-planned and registered
// at their saved epochs (a persisted view is guaranteed consistent —
// any base write after its registration would have deleted it from the
// catalog). The server does not close the database; the owner closes it
// after Server.Close returns.
func (s *Server) AttachDisk(db *disk.DB) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.disk != nil {
		return fmt.Errorf("server: a disk database is already attached")
	}
	s.mu.RLock()
	populated := len(s.seqs) > 0
	s.mu.RUnlock()
	if populated {
		return fmt.Errorf("server: attach the disk database before creating sequences")
	}
	if e := db.Epoch(); e > s.epochs.Current() {
		if err := s.epochs.AdvanceTo(e); err != nil {
			return err
		}
	}
	for _, name := range db.Names() {
		ds, ok := db.Seq(name)
		if !ok {
			continue // dropped between Names and Seq; nothing serves it
		}
		m, err := materializeSnapshot(ds)
		if err != nil {
			return fmt.Errorf("server: load sequence %q: %w", name, err)
		}
		ss := &serverSeq{name: name, v: diskSeq{db: db, s: ds}, stats: meta.StatsFromMaterialized(m)}
		s.mu.Lock()
		s.seqs[name] = ss
		s.mu.Unlock()
	}
	s.disk = db
	for _, v := range db.Views() {
		if err := s.reattachView(v); err != nil {
			return fmt.Errorf("server: reattach view %q: %w", v.Name, err)
		}
	}
	return nil
}

// materializeSnapshot collects the latest version of a disk sequence
// into memory — the input for column statistics at attach time.
func materializeSnapshot(ds *disk.Seq) (*seq.Materialized, error) {
	entries, err := seq.Collect(ds.Latest().Scan(seq.AllSpan))
	if err != nil {
		return nil, err
	}
	return seq.NewMaterialized(ds.Schema(), entries)
}

// reattachView re-plans a persisted view's SEQL at its saved epoch and
// registers the stored entries in the matview registry, valid from that
// epoch — the same canonical block readers match against, without
// recomputing the view's content.
func (s *Server) reattachView(v *disk.View) error {
	root, err := parser.Bind(v.SEQL, s.catalogAt(v.Epoch))
	if err != nil {
		return err
	}
	opts := s.cfg.Options
	opts.Views = nil
	opts.Calibration = s.calib
	res, err := core.Optimize(root, v.Span, opts)
	if err != nil {
		return err
	}
	data, err := seq.NewMaterialized(res.Rewritten.Schema, v.Entries)
	if err != nil {
		return err
	}
	_, err = s.views.RegisterAt(v.Name, res.Rewritten, data, v.Span, v.Epoch)
	return err
}

// persistView writes a freshly materialized view through the attached
// database (no-op without one). Called under wmu, after the registry
// registration succeeded; on failure the registration is rolled back so
// memory and disk stay consistent.
func (s *Server) persistView(name, seql string, span seq.Span, epoch int64, bases []string, out *seq.Materialized) error {
	if s.disk == nil {
		return nil
	}
	err := s.disk.PutViewAt(&disk.View{
		Name: name, SEQL: seql, Span: span, Epoch: epoch,
		Bases: bases, Entries: out.Entries(),
	})
	if err != nil {
		s.views.Drop(name)
	}
	return err
}

// diskViews returns the attached database's persisted view names (nil
// without an attached database).
func (s *Server) diskViews() map[string]bool {
	if s.disk == nil {
		return nil
	}
	names := make(map[string]bool)
	for _, v := range s.disk.Views() {
		names[v.Name] = true
	}
	return names
}
