package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
)

const (
	rewritePath      = "repro/internal/rewrite"
	ruleCoverageFile = "scope_preserve_test.go"
)

// RuleReg checks the rewrite package's rule hygiene: every function with
// the rule-apply signature func(*algebra.Node) (*algebra.Node, bool,
// error) must be registered in DefaultRules, and every registered rule
// name must be exercised by the scope-preservation audit
// (scope_preserve_test.go) — a rule that exists but is not registered is
// dead code, and a registered rule the audit never fires is unverified
// against Prop. 2.1. The analyzer runs only on the rewrite package
// itself.
var RuleReg = &Analyzer{
	Name: "rulereg",
	Doc:  "rewrite rules must be registered in DefaultRules and exercised by the scope-preservation audit",
	Run:  runRuleReg,
}

func runRuleReg(pass *Pass) {
	// Only the plain rewrite package: the [pkg.test] variants re-check
	// the same files and the external _test package has no rules.
	if pass.Pkg.Path() != rewritePath {
		return
	}

	// Collect top-level functions with the rule-apply signature.
	applyFuncs := map[types.Object]*ast.FuncDecl{}
	var defaultRules *ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if fd.Name.Name == "DefaultRules" {
				defaultRules = fd
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj != nil && isRuleApplySig(obj.Type()) {
				applyFuncs[obj] = fd
			}
		}
	}
	if defaultRules == nil {
		if len(applyFuncs) > 0 {
			var any *ast.FuncDecl
			for _, fd := range applyFuncs {
				any = fd
				break
			}
			pass.report(any.Pos(), "package declares rewrite rules but no DefaultRules registry")
		}
		return
	}

	// What DefaultRules registers: referenced apply functions, and the
	// Name field of every Rule literal.
	registered := map[types.Object]bool{}
	var ruleNames []string
	ast.Inspect(defaultRules.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[v]; obj != nil {
				if _, ok := applyFuncs[obj]; ok {
					registered[obj] = true
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[v]
			if !ok || !namedFrom(tv.Type, rewritePath, "Rule") {
				return true
			}
			if name, ok := ruleLitName(v); ok {
				ruleNames = append(ruleNames, name)
			}
		}
		return true
	})

	var unregistered []*ast.FuncDecl
	for obj, fd := range applyFuncs {
		if !registered[obj] {
			unregistered = append(unregistered, fd)
		}
	}
	sort.Slice(unregistered, func(i, j int) bool { return unregistered[i].Pos() < unregistered[j].Pos() })
	for _, fd := range unregistered {
		pass.report(fd.Pos(), "rewrite rule function %s is not registered in DefaultRules", fd.Name.Name)
	}

	// Coverage: every registered rule name must appear in the
	// scope-preservation audit, which builds a corpus keyed by rule name
	// and asserts each rule fires and preserves scopes.
	dir := filepath.Dir(pass.Fset.Position(defaultRules.Pos()).Filename)
	audited, ok := stringLiteralsInFile(filepath.Join(dir, ruleCoverageFile))
	if !ok {
		pass.report(defaultRules.Pos(), "cannot read %s next to DefaultRules; the rule audit is missing", ruleCoverageFile)
		return
	}
	for _, name := range ruleNames {
		if !audited[name] {
			pass.report(defaultRules.Pos(), "rule %q is not exercised by %s", name, ruleCoverageFile)
		}
	}
}

// ruleLitName extracts the Name field of a Rule composite literal — the
// first positional element, or the Name: keyed one.
func ruleLitName(lit *ast.CompositeLit) (string, bool) {
	var nameExpr ast.Expr
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Name" {
				nameExpr = kv.Value
			}
			continue
		}
		if i == 0 {
			nameExpr = el
		}
	}
	bl, ok := nameExpr.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	return s, err == nil && s != ""
}

// isRuleApplySig reports whether t is func(*algebra.Node) (*algebra.Node, bool, error).
func isRuleApplySig(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 3 {
		return false
	}
	if !namedFrom(sig.Params().At(0).Type(), algebraPath, "Node") {
		return false
	}
	if !namedFrom(sig.Results().At(0).Type(), algebraPath, "Node") {
		return false
	}
	if b, ok := sig.Results().At(1).Type().(*types.Basic); !ok || b.Kind() != types.Bool {
		return false
	}
	named, ok := sig.Results().At(2).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// stringLiteralsInFile syntax-parses the file and returns the set of its
// string literal values. The audit lives in the package's external test
// package, which `go vet` analyzes separately, so the analyzer reads the
// source directly rather than through the pass.
func stringLiteralsInFile(path string) (map[string]bool, bool) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, false
	}
	out := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				out[s] = true
			}
		}
		return true
	})
	return out, true
}
