package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The analyzers only need the shapes of the project types, so the tests
// type-check small stand-in packages from memory — no stdlib imports, no
// export data.
const fakeAlgebra = `package algebra
type Kind int
const (
	KindBase Kind = iota
	KindConst
	KindSelect
	KindProject
	KindPosOffset
	KindValueOffset
	KindAgg
	KindCompose
	KindCollapse
	KindExpand
)
type Node struct{ Kind Kind }
`

const fakeStorage = `package storage
type Counter int64
func (c *Counter) Load() int64     { return int64(*c) }
func (c *Counter) Store(v int64)   { *c = Counter(v) }
func (c *Counter) Add(d int64) int64 { *c += Counter(d); return int64(*c) }
type Stats struct {
	SeqPages  Counter
	RandPages Counter
}
type Store interface {
	Scan(span int) int
	Probe(pos int) int
	Stats() *Stats
}
type Dense struct{ S Stats }
func (d *Dense) Scan(span int) int { return span }
func (d *Dense) Probe(pos int) int { return pos }
func (d *Dense) Stats() *Stats     { return &d.S }
`

const fakeSeq = `package seq
type Pos = int64
const (
	MinPos Pos = (-1 << 62) / 4
	MaxPos Pos = (1 << 62) / 4
)
func ClampPos(p Pos) Pos {
	if p < MinPos {
		return MinPos
	}
	if p > MaxPos {
		return MaxPos
	}
	return p
}
func EffectivelyUnbounded(p Pos) bool { return p <= MinPos/2 || p >= MaxPos/2 }
type Span struct{ Start, End Pos }
func (s Span) Bounded() bool          { return s.Start > MinPos && s.End < MaxPos }
func (s Span) Contains(p Pos) bool    { return p >= s.Start && p <= s.End }
`

// check type-checks src as a package with the given import path and runs
// all analyzers over it, returning rendered "line: analyzer: message"
// strings.
func check(t *testing.T, importPath, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	deps := map[string]string{
		"repro/internal/algebra": fakeAlgebra,
		"repro/internal/storage": fakeStorage,
		"repro/internal/seq":     fakeSeq,
	}
	pkgs := make(map[string]*types.Package)
	imp := importerFn(func(path string) (*types.Package, error) {
		if p, ok := pkgs[path]; ok {
			return p, nil
		}
		depSrc, ok := deps[path]
		if !ok {
			return nil, fmt.Errorf("unknown test import %q", path)
		}
		f, err := parser.ParseFile(fset, path+"/dep.go", depSrc, 0)
		if err != nil {
			return nil, err
		}
		p, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, nil)
		if err != nil {
			return nil, err
		}
		pkgs[path] = p
		return p, nil
	})

	f, err := parser.ParseFile(fset, "target.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{Importer: imp}).Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
	var out []string
	for _, d := range Run(pass, All()) {
		out = append(out, fmt.Sprintf("%d: %s: %s", fset.Position(d.Pos).Line, d.Analyzer, d.Message))
	}
	return out
}

type importerFn func(string) (*types.Package, error)

func (f importerFn) Import(path string) (*types.Package, error) { return f(path) }

func wantDiags(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if !strings.Contains(got[i], want[i]) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, got[i], want[i])
		}
	}
}

func TestKindSwitchExhaustive(t *testing.T) {
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/algebra"
func full(k algebra.Kind) int {
	switch k {
	case algebra.KindBase, algebra.KindConst:
		return 0
	case algebra.KindSelect, algebra.KindProject, algebra.KindPosOffset,
		algebra.KindValueOffset, algebra.KindAgg, algebra.KindCollapse, algebra.KindExpand:
		return 1
	case algebra.KindCompose:
		return 2
	default:
		return -1
	}
}
`)
	wantDiags(t, got)
}

func TestKindSwitchMissing(t *testing.T) {
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/algebra"
func partial(k algebra.Kind) int {
	switch k {
	case algebra.KindBase:
		return 0
	default: // a default arm does not exempt the switch
		return -1
	}
}
`)
	wantDiags(t, got,
		"kindswitch: switch on algebra.Kind does not handle KindAgg, KindCollapse, KindCompose, KindConst, KindExpand, KindPosOffset, KindProject, KindSelect, KindValueOffset")
}

func TestKindSwitchDotImportAndLocalConst(t *testing.T) {
	// Constants reached through a local alias still count as covering
	// their kind; switches over other int types are not flagged.
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/algebra"
const localBase = algebra.KindBase
func other(x int) int {
	switch x {
	case 1:
		return 0
	}
	return 1
}
`)
	wantDiags(t, got)
}

func TestKindSwitchSuppression(t *testing.T) {
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/algebra"
func partial(k algebra.Kind) bool {
	//seqvet:ignore kindswitch only block breakers are interesting here
	switch k {
	case algebra.KindAgg, algebra.KindValueOffset, algebra.KindCollapse:
		return true
	}
	return false
}
`)
	wantDiags(t, got)
}

func TestSuppressionNeedsReason(t *testing.T) {
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/algebra"
func partial(k algebra.Kind) bool {
	//seqvet:ignore kindswitch
	switch k {
	case algebra.KindAgg:
		return true
	}
	return false
}
`)
	wantDiags(t, got,
		"seqvet: seqvet:ignore needs an analyzer name and a reason",
		"kindswitch: switch on algebra.Kind does not handle")
}

func TestRawStoreInExec(t *testing.T) {
	got := check(t, "repro/internal/exec", `package exec
import "repro/internal/storage"
func bad(st storage.Store, d *storage.Dense) int {
	return st.Scan(1) + d.Probe(2)
}
func ok(st storage.Store) *storage.Stats {
	return st.Stats() // metadata access is fine
}
`)
	wantDiags(t, got,
		"rawstore: Scan on storage.Store bypasses the metered sequence",
		"rawstore: Probe on storage.Dense bypasses the metered sequence")
}

func TestRawStoreOutsideExec(t *testing.T) {
	// The convention only binds the execution engine; the storage tests
	// and benchmarks scan stores directly on purpose.
	got := check(t, "repro/internal/workload", `package workload
import "repro/internal/storage"
func fine(st storage.Store) int { return st.Scan(1) }
`)
	wantDiags(t, got)
}

func TestRawStoreSuppression(t *testing.T) {
	got := check(t, "repro/internal/exec", `package exec
import "repro/internal/storage"
func calibrate(d *storage.Dense) int {
	//seqvet:ignore rawstore calibration loop measures the raw store on purpose
	return d.Scan(1)
}
`)
	wantDiags(t, got)
}

func TestStatsAtomic(t *testing.T) {
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/storage"
func good(s *storage.Stats) int64 {
	s.SeqPages.Add(1)
	return s.RandPages.Load()
}
func bad(s *storage.Stats) *storage.Counter {
	x := s.SeqPages // plain read
	_ = x
	return &s.RandPages // address escapes the atomic discipline
}
`)
	wantDiags(t, got,
		"statsatomic: storage.Stats.SeqPages used outside an atomic method call",
		"statsatomic: storage.Stats.RandPages used outside an atomic method call")
}

func TestStatsAtomicSuppression(t *testing.T) {
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/storage"
func snapshot(s *storage.Stats) storage.Counter {
	//seqvet:ignore statsatomic single-threaded test helper reads the raw counter
	return s.SeqPages
}
`)
	wantDiags(t, got)
}

// TestSeqvetOnRepository is the integration test: the built tool, driven
// by `go vet -vettool`, must come back clean on the repository itself.
func TestSeqvetOnRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole repository")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "seqvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/seqvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building seqvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	vet.Env = append(os.Environ(), "GOFLAGS=")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=seqvet ./... failed: %v\n%s", err, out)
	}
}

func TestSpanArithUnclamped(t *testing.T) {
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/seq"
func shift(s seq.Span, d seq.Pos) seq.Pos {
	return s.Start + d
}
func probeNearEnd() seq.Pos {
	return seq.MaxPos - 1
}
`)
	wantDiags(t, got,
		"spanarith: unclamped + on a span endpoint",
		"spanarith: unclamped - on a span endpoint")
}

func TestSpanArithSanctioned(t *testing.T) {
	// Clamped results, comparisons, sentinel-guarded functions,
	// Contains-guarded functions, and arithmetic on plain positions are
	// all allowed.
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/seq"
func clamped(s seq.Span, d seq.Pos) seq.Pos { return seq.ClampPos(s.Start + d) }
func compared(s seq.Span, d seq.Pos) bool   { return s.Start+d < s.End }
func guarded(s seq.Span, d seq.Pos) seq.Pos {
	if !s.Bounded() {
		return 0
	}
	return s.End + d
}
func contained(s seq.Span, p seq.Pos) seq.Pos {
	if !s.Contains(p) {
		return 0
	}
	return p - s.Start
}
func sentinelChecked(s seq.Span) seq.Pos {
	if s.Start <= seq.MinPos {
		return 0
	}
	return s.Start - 1
}
func plain(a, b seq.Pos) seq.Pos { return a + b }
`)
	wantDiags(t, got)
}

func TestSpanArithSuppression(t *testing.T) {
	got := check(t, "repro/internal/demo", `package demo
import "repro/internal/seq"
func boundary(s seq.Span) seq.Pos {
	//seqvet:ignore spanarith deliberately walking past the end
	return s.End + 1
}
`)
	wantDiags(t, got)
}
