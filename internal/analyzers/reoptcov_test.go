package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// checkReoptCov type-checks src as the planlint package with its file
// placed in dir (so the analyzer can glob the _test.go files next to
// it) and runs only the reoptcov analyzer.
func checkReoptCov(t *testing.T, dir, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join(dir, "reopt.go"), src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{}).Check(planlintPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
	var out []string
	for _, d := range Run(pass, []*Analyzer{ReoptCov}) {
		out = append(out, fmt.Sprintf("%d: %s: %s", fset.Position(d.Pos).Line, d.Analyzer, d.Message))
	}
	return out
}

const reoptCovSrc = `package planlint
func verify() []string {
	return []string{"reopt/span-cover", "reopt/cache-isolation", "not-an-invariant"}
}
`

func writeReoptTests(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "reopt_test.go"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReoptCovAllExercised(t *testing.T) {
	dir := t.TempDir()
	writeReoptTests(t, dir, `package planlint_test
var cases = []string{"reopt/span-cover", "reopt/cache-isolation"}
`)
	wantDiags(t, checkReoptCov(t, dir, reoptCovSrc))
}

func TestReoptCovMissingInvariant(t *testing.T) {
	dir := t.TempDir()
	writeReoptTests(t, dir, `package planlint_test
var cases = []string{"reopt/span-cover"}
`)
	wantDiags(t, checkReoptCov(t, dir, reoptCovSrc),
		`reoptcov: invariant "reopt/cache-isolation" is not exercised by any test`)
}

func TestReoptCovNoTests(t *testing.T) {
	dir := t.TempDir()
	got := checkReoptCov(t, dir, reoptCovSrc)
	wantDiags(t, got,
		`reoptcov: invariant "reopt/span-cover" has no _test.go files`,
		`reoptcov: invariant "reopt/cache-isolation" has no _test.go files`)
}

func TestReoptCovSuppression(t *testing.T) {
	dir := t.TempDir()
	writeReoptTests(t, dir, `package planlint_test
var cases = []string{"reopt/span-cover"}
`)
	got := checkReoptCov(t, dir, `package planlint
func verify() []string {
	return []string{
		"reopt/span-cover",
		//seqvet:ignore reoptcov invariant lands with the durable-storage arc
		"reopt/wal-replay",
	}
}
`)
	wantDiags(t, got)
}

func TestReoptCovSkipsOtherPackages(t *testing.T) {
	// The same literals in another package are not planlint invariants.
	got := check(t, "repro/internal/other", `package other
var ids = []string{"reopt/span-cover"}
`)
	wantDiags(t, got)
}
