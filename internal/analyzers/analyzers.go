// Package analyzers implements the project's custom static analyzers —
// the checks behind cmd/seqvet. They enforce repository conventions the
// compiler cannot: exhaustive handling of the algebra.Kind operator
// enum, metered access to base-sequence storage, and atomic use of the
// storage.Stats counters (see docs/INVARIANTS.md).
//
// The package provides a minimal self-contained analysis framework (the
// container this project builds in has no module proxy, so the
// golang.org/x/tools analysis framework is deliberately not used): an
// Analyzer inspects one type-checked package through a Pass and reports
// Diagnostics. cmd/seqvet drives the analyzers under `go vet -vettool`.
//
// Findings can be suppressed with a comment on the offending line or the
// line above it:
//
//	//seqvet:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression without one is itself reported.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass describes a single type-checked package being analyzed.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags    []Diagnostic
	suppress map[suppressKey]bool
	badSupp  []Diagnostic
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{KindSwitch, RawStore, StatsAtomic, SpanArith, RuleReg, ReoptCov}
}

// Run executes the given analyzers over the pass and returns the
// surviving diagnostics, position-sorted.
func Run(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	pass.buildSuppressions()
	for _, a := range analyzers {
		prev := len(pass.diags)
		a.Run(pass)
		for i := prev; i < len(pass.diags); i++ {
			pass.diags[i].Analyzer = a.Name
		}
	}
	kept := append([]Diagnostic(nil), pass.badSupp...)
	for _, d := range pass.diags {
		if !pass.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept
}

func (p *Pass) report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// buildSuppressions scans every comment for //seqvet:ignore markers. A
// marker covers its own line and the next line, so it works both as a
// trailing comment and as an annotation above the offending statement.
func (p *Pass) buildSuppressions() {
	p.suppress = make(map[suppressKey]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//seqvet:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := p.Fset.Position(c.Pos())
				if len(fields) < 2 {
					p.badSupp = append(p.badSupp, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "seqvet",
						Message:  "seqvet:ignore needs an analyzer name and a reason",
					})
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					p.suppress[suppressKey{pos.Filename, line, fields[0]}] = true
				}
			}
		}
	}
}

func (p *Pass) suppressed(d Diagnostic) bool {
	pos := p.Fset.Position(d.Pos)
	return p.suppress[suppressKey{pos.Filename, pos.Line, d.Analyzer}]
}

// namedFrom reports whether t (after stripping pointers) is a named type
// declared as pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// declaredIn reports whether t (after stripping pointers) is a named
// type declared in pkgPath, returning its name.
func declaredIn(t types.Type, pkgPath string) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	return obj.Name(), true
}
