package analyzers

import (
	"go/ast"
	"strings"
)

const (
	storagePath = "repro/internal/storage"
	execPath    = "repro/internal/exec"
)

// RawStore reports data accesses (Scan, Probe) performed on a
// storage-package value inside the execution engine. Plan leaves must
// read base sequences through the seq.Sequence handed to them at build
// time — which the builder wraps with storage.Metered for per-node page
// attribution (EXPLAIN ANALYZE) — never by reaching down to the raw
// store, which would bypass the metering and silently undercount pages.
var RawStore = &Analyzer{
	Name: "rawstore",
	Doc:  "internal/exec must not scan or probe storage values directly",
	Run:  runRawStore,
}

func runRawStore(pass *Pass) {
	if p := pass.Pkg.Path(); p != execPath && !strings.HasPrefix(p, execPath+"/") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Scan" && sel.Sel.Name != "Probe" {
				return true
			}
			tv, ok := pass.Info.Types[sel.X]
			if !ok {
				return true
			}
			if name, ok := declaredIn(tv.Type, storagePath); ok {
				pass.report(call.Pos(),
					"%s on storage.%s bypasses the metered sequence; access base data through the plan's seq.Sequence",
					sel.Sel.Name, name)
			}
			return true
		})
	}
}
