package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The whole-program fixtures type-check several small packages together
// so the analyzers can follow calls across package boundaries, exactly
// as `seqvet -global` does on the real module. sync is stubbed: the
// analyzers only match sync.Mutex/RWMutex/WaitGroup by name and path.
const fakeSync = `package sync
type Mutex struct{ state int }
func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}
type RWMutex struct{ state int }
func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
type WaitGroup struct{ state int }
func (w *WaitGroup) Add(delta int) {}
func (w *WaitGroup) Done()         {}
func (w *WaitGroup) Wait()         {}
`

// fakeEpoch stands in for the real EpochTracker; epochpin matches its
// methods by receiver type and package path.
const fakeEpoch = `package storage
type EpochTracker struct{ cur int64 }
func (t *EpochTracker) Pin() int64        { return t.cur }
func (t *EpochTracker) Release(e int64)   {}
func (t *EpochTracker) AdvanceTo(e int64) {}
func (t *EpochTracker) Current() int64    { return t.cur }
`

type fakePkg struct {
	path string
	src  string
}

// checkGlobal type-checks the fake packages in order (dependencies
// first), assembles a Program from the module-path ("repro/...") ones,
// and runs the single given whole-program analyzer, returning rendered
// "line: analyzer: message" strings. dir becomes Program.Dir (wiredoc
// resolves docs/PROTOCOL.md under it; the other analyzers ignore it).
func checkGlobal(t *testing.T, dir string, ga *GlobalAnalyzer, pkgs ...fakePkg) []string {
	t.Helper()
	fset := token.NewFileSet()
	checked := map[string]*types.Package{}
	imp := importerFn(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		if path == "sync" {
			f, err := parser.ParseFile(fset, "sync/sync.go", fakeSync, 0)
			if err != nil {
				return nil, err
			}
			p, err := (&types.Config{}).Check("sync", fset, []*ast.File{f}, nil)
			if err != nil {
				return nil, err
			}
			checked["sync"] = p
			return p, nil
		}
		return nil, fmt.Errorf("unknown test import %q", path)
	})
	var passes []*Pass
	for _, fp := range pkgs {
		f, err := parser.ParseFile(fset, fp.path+"/fix.go", fp.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", fp.path, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		pkg, err := (&types.Config{Importer: imp}).Check(fp.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", fp.path, err)
		}
		checked[fp.path] = pkg
		if strings.HasPrefix(fp.path, "repro") {
			passes = append(passes, &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info})
		}
	}
	prog := NewProgram(fset, dir, passes)
	var out []string
	for _, d := range RunGlobal(prog, nil, []*GlobalAnalyzer{ga}) {
		out = append(out, fmt.Sprintf("%d: %s: %s", fset.Position(d.Pos).Line, d.Analyzer, d.Message))
	}
	return out
}

// ---- lockorder ----

func TestLockOrderClean(t *testing.T) {
	got := checkGlobal(t, "", LockOrder, fakePkg{"repro/internal/demo", `package demo
import "sync"
//seqvet:lockorder demo.S.a < demo.S.b
type S struct {
	a sync.Mutex
	b sync.Mutex
}
func (s *S) straight() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}
func (s *S) nested() {
	s.a.Lock()
	defer s.a.Unlock()
	s.locked()
}
func (s *S) locked() {
	s.b.Lock()
	defer s.b.Unlock()
}
`})
	wantDiags(t, got)
}

func TestLockOrderViolations(t *testing.T) {
	got := checkGlobal(t, "", LockOrder, fakePkg{"repro/internal/demo", `package demo
import "sync"
//seqvet:lockorder demo.S.a < demo.S.b
//seqvet:lockorder leaf demo.S.l
type S struct {
	a sync.Mutex
	b sync.Mutex
	l sync.Mutex
}
func (s *S) inverted() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
func (s *S) reentrant() {
	s.a.Lock()
	defer s.a.Unlock()
	s.again()
}
func (s *S) again() {
	s.a.Lock()
	defer s.a.Unlock()
}
func (s *S) underLeaf() {
	s.l.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.l.Unlock()
}
`})
	wantDiags(t, got,
		"lockorder: lock order: demo.S.a acquired while holding demo.S.b but no //seqvet:lockorder path demo.S.b < demo.S.a is declared",
		"lockorder: lock order: demo.S.a acquired while already held (via call to demo.(S).again) (self-deadlock)",
		"lockorder: lock order: demo.S.b acquired while holding demo.S.l, which is declared leaf")
}

func TestLockOrderCoverageAndAnnotations(t *testing.T) {
	got := checkGlobal(t, "", LockOrder, fakePkg{"repro/internal/demo", `package demo
import "sync"
//seqvet:lockorder demo.S.a < demo.S.b
//seqvet:lockorder demo.S.b < demo.S.a
//seqvet:lockorder demo.S.x < demo.S.a
type S struct {
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
}
`})
	wantDiags(t, got,
		"lockorder: lock order: declared order has a cycle: demo.S.a < demo.S.b < demo.S.a",
		"lockorder: lock order: annotation names unknown mutex demo.S.x",
		"lockorder: lock order: mutex demo.S.c is not covered by any //seqvet:lockorder annotation")
}

func TestLockOrderSuppression(t *testing.T) {
	got := checkGlobal(t, "", LockOrder, fakePkg{"repro/internal/demo", `package demo
import "sync"
//seqvet:lockorder demo.S.a < demo.S.b
type S struct {
	a sync.Mutex
	b sync.Mutex
}
func (s *S) inverted() {
	s.b.Lock()
	//seqvet:ignore lockorder fixture exercises the suppression drill
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`})
	wantDiags(t, got)
}

// ---- epochpin ----

func TestEpochPinClean(t *testing.T) {
	got := checkGlobal(t, "", EpochPin,
		fakePkg{"repro/internal/storage", fakeEpoch},
		fakePkg{"repro/internal/demo", `package demo
import (
	"repro/internal/storage"
	"sync"
)
//seqvet:epochpin advance-under demo.W.wmu
type W struct {
	wmu sync.Mutex
	tr  *storage.EpochTracker
}
func (w *W) read() int64 {
	e := w.tr.Pin()
	defer w.tr.Release(e)
	return e
}
func (w *W) write() {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.publish()
	w.tr.AdvanceTo(1)
}
func (w *W) publish() {}
`})
	wantDiags(t, got)
}

func TestEpochPinLeakedPin(t *testing.T) {
	got := checkGlobal(t, "", EpochPin,
		fakePkg{"repro/internal/storage", fakeEpoch},
		fakePkg{"repro/internal/demo", `package demo
import "repro/internal/storage"
type W struct {
	tr *storage.EpochTracker
}
func (w *W) leak(cond bool) int64 {
	e := w.tr.Pin()
	if cond {
		return 0
	}
	w.tr.Release(e)
	return e
}
`})
	wantDiags(t, got,
		"epochpin: EpochTracker.Pin acquisition is not released on every path")
}

func TestEpochPinAdvanceViolations(t *testing.T) {
	got := checkGlobal(t, "", EpochPin,
		fakePkg{"repro/internal/storage", fakeEpoch},
		fakePkg{"repro/internal/demo", `package demo
import (
	"repro/internal/storage"
	"sync"
)
//seqvet:epochpin advance-under demo.W.wmu
type W struct {
	wmu sync.Mutex
	tr  *storage.EpochTracker
}
func (w *W) bare() {
	w.prep()
	w.tr.AdvanceTo(1)
}
func (w *W) first() {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.tr.AdvanceTo(1)
}
func (w *W) prep() {}
`})
	wantDiags(t, got,
		"epochpin: EpochTracker.AdvanceTo called without holding the declared writer mutex (demo.W.wmu)",
		"epochpin: EpochTracker.AdvanceTo is the first call in demo.(*W).first")
}

func TestEpochPinSuppression(t *testing.T) {
	got := checkGlobal(t, "", EpochPin,
		fakePkg{"repro/internal/storage", fakeEpoch},
		fakePkg{"repro/internal/demo", `package demo
import "repro/internal/storage"
type W struct {
	tr *storage.EpochTracker
}
func (w *W) handoff() int64 {
	//seqvet:ignore epochpin pin ownership moves to the caller
	e := w.tr.Pin()
	return e
}
`})
	wantDiags(t, got)
}

// ---- goexit ----

func TestGoExitClean(t *testing.T) {
	got := checkGlobal(t, "", GoExit, fakePkg{"repro/internal/server", `package server
import "sync"
type S struct{ wg sync.WaitGroup }
func (s *S) run() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
	s.wg.Add(1)
	go s.loop()
}
func (s *S) loop() {
	defer s.wg.Done()
}
`})
	wantDiags(t, got)
}

func TestGoExitViolations(t *testing.T) {
	got := checkGlobal(t, "", GoExit, fakePkg{"repro/internal/server", `package server
import "sync"
type S struct{ wg sync.WaitGroup }
func (s *S) noAdd() {
	go s.loop()
}
func (s *S) noDone() {
	s.wg.Add(1)
	go func() {}()
}
func (s *S) dynamic(f func()) {
	s.wg.Add(1)
	go f()
}
func (s *S) loop() {
	defer s.wg.Done()
}
`})
	wantDiags(t, got,
		"goexit: go statement in server.(*S).noAdd has no preceding WaitGroup.Add",
		"goexit: goroutine body server.(*S).noDone.func does not `defer wg.Done()`",
		"goexit: go statement in server.(*S).dynamic spawns a dynamically resolved function")
}

func TestGoExitOtherPackagesExempt(t *testing.T) {
	// The rule binds internal/server and internal/storage only; other
	// packages (e.g. internal/parallel's worker pools) manage goroutine
	// lifecycles their own way.
	got := checkGlobal(t, "", GoExit, fakePkg{"repro/internal/demo", `package demo
func fireAndForget() {
	go func() {}()
}
`})
	wantDiags(t, got)
}

func TestGoExitSuppression(t *testing.T) {
	got := checkGlobal(t, "", GoExit, fakePkg{"repro/internal/server", `package server
func detach() {
	//seqvet:ignore goexit tracked by the connection registry, reaped in Close
	go func() {}()
}
`})
	wantDiags(t, got)
}

// ---- wiredoc ----

const fakeWire = `package wire
type Type uint8
const THello Type = 0x01
const TReady Type = 0x82
type ErrorCode uint16
const CodeProtocol ErrorCode = 1
func (c ErrorCode) String() string {
	switch c {
	case CodeProtocol:
		return "protocol"
	}
	return "unknown"
}
type Message interface{ M() }
type typeInfo struct {
	Code Type
	Name string
	New  func() Message
}
var registry = []typeInfo{
	{THello, "Hello", nil},
	{TReady, "Ready", nil},
}
`

func writeProtocolDoc(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "docs", "PROTOCOL.md"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWireDocClean(t *testing.T) {
	dir := t.TempDir()
	writeProtocolDoc(t, dir, "# Protocol\n\n"+
		"| `0x01` | `Hello` | client |\n"+
		"| `0x82` | `Ready` | server |\n\n"+
		"| `1` | `protocol` | malformed frame |\n")
	wantDiags(t, checkGlobal(t, dir, WireDoc, fakePkg{"repro/internal/wire", fakeWire}))
}

func TestWireDocDrift(t *testing.T) {
	dir := t.TempDir()
	// Ready is undocumented, 0x83 is documented but unimplemented, and
	// code 1 is documented under the wrong name.
	writeProtocolDoc(t, dir, "# Protocol\n\n"+
		"| `0x01` | `Hello` | client |\n"+
		"| `0x83` | `Error` | server |\n\n"+
		"| `1` | `version` | wrong name |\n")
	got := checkGlobal(t, dir, WireDoc, fakePkg{"repro/internal/wire", fakeWire})
	wantDiags(t, got,
		"wiredoc: docs/PROTOCOL.md:4 documents type 0x83 (Error) but the wire registry does not implement it",
		`wiredoc: error code 1 is named "protocol" by ErrorCode.String but "version" in docs/PROTOCOL.md:6`,
		"wiredoc: registered type 0x82 (Ready) has no row in the docs/PROTOCOL.md message tables")
}

func TestWireDocMissingDoc(t *testing.T) {
	got := checkGlobal(t, t.TempDir(), WireDoc, fakePkg{"repro/internal/wire", fakeWire})
	wantDiags(t, got, "wiredoc: cannot read")
}

func TestWireDocSuppression(t *testing.T) {
	dir := t.TempDir()
	writeProtocolDoc(t, dir, "| `0x01` | `Hello` | client |\n\n| `1` | `protocol` | ok |\n")
	got := checkGlobal(t, dir, WireDoc, fakePkg{"repro/internal/wire", `package wire
type Type uint8
const THello Type = 0x01
const TReady Type = 0x82
type ErrorCode uint16
const CodeProtocol ErrorCode = 1
func (c ErrorCode) String() string {
	switch c {
	case CodeProtocol:
		return "protocol"
	}
	return "unknown"
}
type Message interface{ M() }
type typeInfo struct {
	Code Type
	Name string
	New  func() Message
}
var registry = []typeInfo{
	{THello, "Hello", nil},
	//seqvet:ignore wiredoc internal-only frame, deliberately unspecified
	{TReady, "Ready", nil},
}
`})
	wantDiags(t, got)
}

// ---- -only/-skip selection ----

func TestFilterNames(t *testing.T) {
	known := []string{"a", "b", "c"}
	all, err := FilterNames(known, "", "")
	if err != nil || len(all) != 3 {
		t.Fatalf("empty selection = %v, %v; want all 3", all, err)
	}
	only, err := FilterNames(known, "a,b", "")
	if err != nil || !only["a"] || !only["b"] || only["c"] {
		t.Fatalf("-only=a,b = %v, %v", only, err)
	}
	skipWins, err := FilterNames(known, "a,b", "b")
	if err != nil || !skipWins["a"] || skipWins["b"] {
		t.Fatalf("-only=a,b -skip=b = %v, %v", skipWins, err)
	}
	skipped, err := FilterNames(known, "", "c")
	if err != nil || !skipped["a"] || !skipped["b"] || skipped["c"] {
		t.Fatalf("-skip=c = %v, %v", skipped, err)
	}
	if _, err := FilterNames(known, "nosuch", ""); err == nil {
		t.Fatal("-only=nosuch should be rejected")
	}
	if _, err := FilterNames(known, "", "nosuch"); err == nil {
		t.Fatal("-skip=nosuch should be rejected")
	}
}
