package analyzers

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	planlintPath    = "repro/internal/planlint"
	reoptInvariants = "reopt/"
)

// ReoptCov checks the planlint package's reopt invariant coverage:
// every splice invariant it can report (a string literal with the
// "reopt/" id prefix in non-test source) must be exercised by a test in
// the same directory — an invariant the linter enforces but no test
// ever triggers is unverified, and a typo in an id would otherwise pass
// silently. The analyzer runs only on the planlint package itself.
var ReoptCov = &Analyzer{
	Name: "reoptcov",
	Doc:  "every reopt/* invariant id reportable by planlint must be exercised by a test",
	Run:  runReoptCov,
}

func runReoptCov(pass *Pass) {
	if pass.Pkg.Path() != planlintPath {
		return
	}
	// Invariant ids declared in non-test files, keyed by first position.
	ids := map[string]token.Pos{}
	var dir string
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if dir == "" {
			dir = filepath.Dir(name)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.HasPrefix(s, reoptInvariants) || s == reoptInvariants {
				return true
			}
			if _, seen := ids[s]; !seen {
				ids[s] = lit.Pos()
			}
			return true
		})
	}
	if len(ids) == 0 || dir == "" {
		return
	}
	// Tests live both in the internal and the external test package, and
	// `go vet` analyzes those as separate passes — read every _test.go in
	// the directory straight from source instead.
	tests, err := filepath.Glob(filepath.Join(dir, "*_test.go"))
	if err != nil || len(tests) == 0 {
		for id, pos := range ids {
			pass.report(pos, "invariant %q has no _test.go files next to it", id)
		}
		return
	}
	exercised := map[string]bool{}
	for _, path := range tests {
		lits, ok := stringLiteralsInFile(path)
		if !ok {
			continue
		}
		for s := range lits {
			exercised[s] = true
		}
	}
	names := make([]string, 0, len(ids))
	for id := range ids {
		names = append(names, id)
	}
	sort.Strings(names)
	for _, id := range names {
		if !exercised[id] {
			pass.report(ids[id], "invariant %q is not exercised by any test in %s", id, dir)
		}
	}
}
