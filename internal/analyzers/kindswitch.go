package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

const algebraPath = "repro/internal/algebra"

// KindSwitch reports switch statements over algebra.Kind that do not
// handle every operator kind. The operator enum is the spine of the
// system — scope derivation, annotation, costing, plan building and
// rewriting all dispatch on it — so a newly added Kind must surface
// every place that needs a decision, not fall into a default arm
// silently. A default case does NOT exempt a switch: either list every
// kind or annotate the switch with //seqvet:ignore kindswitch <reason>.
var KindSwitch = &Analyzer{
	Name: "kindswitch",
	Doc:  "switches over algebra.Kind must handle every operator kind",
	Run:  runKindSwitch,
}

func runKindSwitch(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok || !namedFrom(tv.Type, algebraPath, "Kind") {
				return true
			}
			all := kindConstants(tv.Type)
			if len(all) == 0 {
				return true
			}
			covered := make(map[string]bool)
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if obj := usedObject(pass, e); obj != nil {
						covered[obj.Name()] = true
					}
				}
			}
			var missing []string
			for name := range all {
				if !covered[name] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.report(sw.Pos(), "switch on algebra.Kind does not handle %s",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// kindConstants enumerates every constant of the Kind type declared in
// the algebra package, via the type-checked import — the set stays
// current when operators are added.
func kindConstants(kind types.Type) map[string]bool {
	if ptr, ok := kind.(*types.Pointer); ok {
		kind = ptr.Elem()
	}
	named, ok := kind.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	out := make(map[string]bool)
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			out[name] = true
		}
	}
	return out
}

// usedObject resolves a case expression to the object it names (an
// identifier or a package-qualified selector).
func usedObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	}
	return nil
}
