package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared static lock-and-call model behind the
// whole-program analyzers: a per-function summary of which named
// mutexes are acquired, which functions are called, and which locks are
// held at each point. lockorder checks the acquisition graph against
// the declared partial order, epochpin checks that AdvanceTo only runs
// under the writer mutex, and goexit reads the go-statement and
// WaitGroup events.
//
// The model is a deliberate approximation — a convention checker, not a
// verifier:
//
//   - Held sets are tracked in source order within each function body.
//     Lock() adds, Unlock() removes; a deferred Unlock keeps the mutex
//     held to the end of the function, which matches both repository
//     idioms (lock/defer-unlock, and lock…unlock straight-line pairs).
//   - Only named mutexes are modeled: fields of type sync.Mutex or
//     sync.RWMutex on a named struct (id "pkg.Type.field") and
//     package-level mutex variables (id "pkg.var"). Local mutexes have
//     no cross-function aliasing story and are ignored.
//   - Calls resolve statically: direct function calls and method calls
//     on concrete receivers. Interface dispatch and calls through
//     function values are skipped. RLock counts as an acquisition (a
//     second RLock can deadlock behind a blocked writer).
//   - A `go` statement does not propagate the caller's held set: the
//     spawned goroutine blocks, it does not deadlock, as long as the
//     spawner eventually releases. Its body is summarized separately.
type lockInfo struct {
	prog *Program
	// mutexes maps every named mutex declared in the module to its
	// declaration position (lockorder's coverage universe).
	mutexes map[mutexID]token.Pos
	// funcs indexes summaries by declared function/method object;
	// lits by function literal.
	funcs map[types.Object]*funcSummary
	lits  map[*ast.FuncLit]*funcSummary
	all   []*funcSummary
}

// mutexID names a mutex: "pkg.Type.field" for a struct field,
// "pkg.var" for a package-level variable (pkg is the package base
// name — unique across this module).
type mutexID string

type eventKind int

const (
	evLock   eventKind = iota // acquisition of a named mutex (Lock or RLock)
	evCall                    // statically resolved call
	evGo                      // go statement
	evWGAdd                   // sync.WaitGroup Add
	evWGDone                  // deferred sync.WaitGroup Done
)

// event is one point of interest inside a function body, in source
// order.
type event struct {
	kind eventKind
	pos  token.Pos
	held []mutexID // locks held when the event fires, acquisition order

	mutex mutexID // evLock

	callee     types.Object // evCall, evGo: static target (nil when unresolvable)
	calleeName string       // rendering name for diagnostics

	goLit *ast.FuncLit // evGo launching a function literal
}

// funcSummary is the analysis of one function, method, or function
// literal body.
type funcSummary struct {
	name   string // "server.(*Server).Append", "storage.NewVersioned", …
	pkg    string // import path
	pass   *Pass
	body   *ast.BlockStmt
	events []event
	// litCalls records immediately-invoked function literals so trans
	// propagation can follow them.
	litCalls []litCall
	// trans is the set of mutexes this function acquires directly or
	// through statically resolved calls (go statements excluded).
	trans map[mutexID]bool
}

func buildLockInfo(prog *Program) *lockInfo {
	li := &lockInfo{
		prog:    prog,
		mutexes: make(map[mutexID]token.Pos),
		funcs:   make(map[types.Object]*funcSummary),
		lits:    make(map[*ast.FuncLit]*funcSummary),
	}
	for _, pass := range prog.Pkgs {
		li.collectMutexDecls(pass)
	}
	for _, pass := range prog.Pkgs {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pass.Info.Defs[fd.Name]
				sum := &funcSummary{
					name: qualifiedName(pass, fd),
					pkg:  pass.Pkg.Path(),
					pass: pass,
					body: fd.Body,
				}
				if obj != nil {
					li.funcs[obj] = sum
				}
				li.all = append(li.all, sum)
				li.walk(sum)
			}
		}
	}
	li.computeTrans()
	return li
}

// collectMutexDecls records every named mutex declared in the package:
// struct fields and package-level variables of type sync.Mutex or
// sync.RWMutex.
func (li *lockInfo) collectMutexDecls(pass *Pass) {
	for id, obj := range pass.Info.Defs {
		switch o := obj.(type) {
		case *types.Var:
			if !isMutexType(o.Type()) {
				continue
			}
			if o.IsField() {
				// Only fields of named structs are addressable by the
				// annotation grammar; the owner is recovered from the
				// enclosing type declaration below.
				continue
			}
			if o.Parent() == pass.Pkg.Scope() {
				li.mutexes[mutexID(pass.Pkg.Name()+"."+id.Name)] = id.Pos()
			}
		}
	}
	// Struct fields: walk type declarations so the owning type name is
	// in hand (Defs alone does not relate a field to its struct).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						obj := pass.Info.Defs[name]
						if obj != nil && isMutexType(obj.Type()) {
							id := mutexID(pass.Pkg.Name() + "." + ts.Name.Name + "." + name.Name)
							li.mutexes[id] = name.Pos()
						}
					}
				}
			}
		}
	}
}

func isMutexType(t types.Type) bool {
	return namedFrom(t, "sync", "Mutex") || namedFrom(t, "sync", "RWMutex")
}

func isWaitGroupType(t types.Type) bool {
	return namedFrom(t, "sync", "WaitGroup")
}

// qualifiedName renders a function declaration for diagnostics.
func qualifiedName(pass *Pass, fd *ast.FuncDecl) string {
	pkg := pass.Pkg.Name()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg + "." + fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	return fmt.Sprintf("%s.(%s).%s", pkg, recv, fd.Name.Name)
}

// walk fills sum.events by traversing the body in source order,
// tracking the held set. Function literals it meets become summaries of
// their own, analyzed with an empty held set (they run at an unknown
// time).
func (li *lockInfo) walk(sum *funcSummary) {
	var held []mutexID

	snapshot := func() []mutexID {
		return append([]mutexID(nil), held...)
	}
	release := func(m mutexID) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == m {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	var walkStmt func(s ast.Stmt)
	var scanExpr func(e ast.Expr)

	queueLit := func(lit *ast.FuncLit) *funcSummary {
		ls := &funcSummary{
			name: sum.name + ".func",
			pkg:  sum.pkg,
			pass: sum.pass,
			body: lit.Body,
		}
		li.lits[lit] = ls
		li.all = append(li.all, ls)
		li.walk(ls)
		return ls
	}

	// handleCall classifies one call expression after its operands have
	// been scanned. deferred marks calls in defer statements: a deferred
	// Unlock does not release (the mutex stays held to function end) and
	// a deferred WaitGroup.Done is the goexit completion marker.
	handleCall := func(call *ast.CallExpr, deferred bool) {
		if m, method, ok := mutexMethod(sum.pass, call); ok {
			switch method {
			case "Lock", "RLock":
				if m != "" {
					sum.events = append(sum.events, event{
						kind: evLock, pos: call.Pos(), held: snapshot(), mutex: m,
					})
					if !deferred {
						held = append(held, m)
					}
				}
			case "Unlock", "RUnlock":
				if m != "" && !deferred {
					release(m)
				}
			}
			return
		}
		if method, ok := waitGroupMethod(sum.pass, call); ok {
			switch {
			case method == "Add" && !deferred:
				sum.events = append(sum.events, event{kind: evWGAdd, pos: call.Pos(), held: snapshot()})
			case method == "Done" && deferred:
				sum.events = append(sum.events, event{kind: evWGDone, pos: call.Pos(), held: snapshot()})
			}
			return
		}
		callee, name := staticCallee(sum.pass, call)
		if callee == nil && name == "" {
			return
		}
		sum.events = append(sum.events, event{
			kind: evCall, pos: call.Pos(), held: snapshot(),
			callee: callee, calleeName: name,
		})
	}

	scanCall := func(call *ast.CallExpr, deferred bool) {
		// Operands first: their nested calls execute before the call.
		if _, isLit := call.Fun.(*ast.FuncLit); !isLit {
			scanExpr(call.Fun)
		}
		for _, a := range call.Args {
			scanExpr(a)
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			// An immediately-invoked literal runs right here, under the
			// current held set — but its body is summarized separately
			// and linked as a call-like event.
			ls := queueLit(lit)
			_ = ls
			sum.events = append(sum.events, event{
				kind: evCall, pos: call.Pos(), held: snapshot(),
				callee: nil, calleeName: ls.name,
			})
			// Link transitively through the lits map during computeTrans
			// via the litCalls side table.
			sum.litCalls = append(sum.litCalls, litCall{lit: lit, pos: call.Pos(), held: snapshot()})
			return
		}
		handleCall(call, deferred)
	}

	scanExpr = func(e ast.Expr) {
		if e == nil {
			return
		}
		switch x := e.(type) {
		case *ast.FuncLit:
			queueLit(x)
		case *ast.CallExpr:
			scanCall(x, false)
		default:
			// Generic descent that stops at the nodes handled above.
			ast.Inspect(e, func(n ast.Node) bool {
				if n == nil || n == e {
					return true
				}
				switch y := n.(type) {
				case *ast.FuncLit:
					queueLit(y)
					return false
				case *ast.CallExpr:
					scanCall(y, false)
					return false
				}
				return true
			})
		}
	}

	walkStmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, inner := range st.List {
				walkStmt(inner)
			}
		case *ast.IfStmt:
			walkStmt(st.Init)
			scanExpr(st.Cond)
			walkStmt(st.Body)
			walkStmt(st.Else)
		case *ast.ForStmt:
			walkStmt(st.Init)
			scanExpr(st.Cond)
			walkStmt(st.Body)
			walkStmt(st.Post)
		case *ast.RangeStmt:
			scanExpr(st.X)
			walkStmt(st.Body)
		case *ast.SwitchStmt:
			walkStmt(st.Init)
			scanExpr(st.Tag)
			walkStmt(st.Body)
		case *ast.TypeSwitchStmt:
			walkStmt(st.Init)
			walkStmt(st.Assign)
			walkStmt(st.Body)
		case *ast.SelectStmt:
			walkStmt(st.Body)
		case *ast.CaseClause:
			for _, e := range st.List {
				scanExpr(e)
			}
			for _, inner := range st.Body {
				walkStmt(inner)
			}
		case *ast.CommClause:
			walkStmt(st.Comm)
			for _, inner := range st.Body {
				walkStmt(inner)
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt)
		case *ast.GoStmt:
			for _, a := range st.Call.Args {
				scanExpr(a)
			}
			ev := event{kind: evGo, pos: st.Pos(), held: snapshot()}
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				ev.goLit = lit
				queueLit(lit)
			} else {
				ev.callee, ev.calleeName = staticCallee(sum.pass, st.Call)
			}
			sum.events = append(sum.events, ev)
		case *ast.DeferStmt:
			for _, a := range st.Call.Args {
				scanExpr(a)
			}
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				queueLit(lit)
				break
			}
			handleCall(st.Call, true)
		case *ast.ExprStmt:
			scanExpr(st.X)
		case *ast.AssignStmt:
			for _, e := range st.Rhs {
				scanExpr(e)
			}
			for _, e := range st.Lhs {
				scanExpr(e)
			}
		case *ast.ReturnStmt:
			for _, e := range st.Results {
				scanExpr(e)
			}
		case *ast.SendStmt:
			scanExpr(st.Chan)
			scanExpr(st.Value)
		case *ast.IncDecStmt:
			scanExpr(st.X)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, e := range vs.Values {
							scanExpr(e)
						}
					}
				}
			}
		}
	}
	walkStmt(sum.body)
}

// litCall records an immediately-invoked function literal so trans
// propagation can follow it.
type litCall struct {
	lit  *ast.FuncLit
	pos  token.Pos
	held []mutexID
}

// computeTrans fixpoints the transitive-acquisition sets over the
// static call graph. go-statement targets are excluded by design (the
// spawner does not wait under its locks).
func (li *lockInfo) computeTrans() {
	for _, sum := range li.all {
		sum.trans = make(map[mutexID]bool)
		for _, ev := range sum.events {
			if ev.kind == evLock {
				sum.trans[ev.mutex] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sum := range li.all {
			grow := func(callee *funcSummary) {
				for m := range callee.trans {
					if !sum.trans[m] {
						sum.trans[m] = true
						changed = true
					}
				}
			}
			for _, ev := range sum.events {
				if ev.kind == evCall && ev.callee != nil {
					if callee, ok := li.funcs[ev.callee]; ok {
						grow(callee)
					}
				}
			}
			for _, lc := range sum.litCalls {
				if callee, ok := li.lits[lc.lit]; ok {
					grow(callee)
				}
			}
		}
	}
}

// mutexMethod reports whether the call invokes Lock/Unlock/RLock/RUnlock
// on a named mutex, returning its id and the method name. A lock method
// on an unnamed mutex (a local variable) returns ok with an empty id.
func mutexMethod(pass *Pass, call *ast.CallExpr) (mutexID, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal || !isMutexType(s.Recv()) {
		return "", "", false
	}
	return mutexIDOf(pass, sel.X), sel.Sel.Name, true
}

// mutexIDOf names the mutex expression: a field on a named struct or a
// package-level variable. Anything else (locals, map elements) has no
// stable name and yields "".
func mutexIDOf(pass *Pass, e ast.Expr) mutexID {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if name, owner, ok := fieldOwner(s); ok {
				return mutexID(owner + "." + name + "." + x.Sel.Name)
			}
			return ""
		}
		// pkg.Var selector.
		if obj, ok := pass.Info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil && !obj.IsField() {
			return mutexID(obj.Pkg().Name() + "." + obj.Name())
		}
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[x].(*types.Var); ok && obj.Pkg() != nil && !obj.IsField() &&
			obj.Parent() == obj.Pkg().Scope() {
			return mutexID(obj.Pkg().Name() + "." + obj.Name())
		}
	}
	return ""
}

// fieldOwner resolves a field selection to (owner type name, package
// base name).
func fieldOwner(s *types.Selection) (typeName, pkgName string, ok bool) {
	t := s.Recv()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Name(), obj.Pkg().Name(), true
}

// waitGroupMethod reports whether the call invokes Add/Done/Wait on a
// sync.WaitGroup.
func waitGroupMethod(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return "", false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal || !isWaitGroupType(s.Recv()) {
		return "", false
	}
	return sel.Sel.Name, true
}

// staticCallee resolves a call expression to its target function or
// method object, with a rendering name. Interface methods resolve to
// the interface's *types.Func — they carry a name but no body, so they
// never contribute transitive acquisitions. Type conversions and calls
// through function values return (nil, "").
func staticCallee(pass *Pass, call *ast.CallExpr) (types.Object, string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return obj, obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			obj := s.Obj()
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
				if name, pkg, ok := methodOwner(s); ok {
					return obj, pkg + ".(" + name + ")." + fn.Name()
				}
				return obj, fn.Pkg().Name() + "." + fn.Name()
			}
		}
		if obj, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
			return obj, obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return nil, ""
}

func methodOwner(s *types.Selection) (typeName, pkgName string, ok bool) {
	return fieldOwner(s)
}
