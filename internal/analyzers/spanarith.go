package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanArith reports unchecked `+`/`-` arithmetic on position values that
// can sit at (or near) the MinPos/MaxPos sentinels: the Start/End bounds
// of a seq.Span, and the sentinel constants themselves. The sentinels
// stand in for ±infinity (seq.Pos documents this), so offsetting an
// unbounded endpoint without clamping silently produces positions in the
// sentinel region — or, combined far enough, overflows int64.
//
// An expression is sanctioned when the overflow cannot escape:
//
//   - it feeds (directly or through nesting) a seq.ClampPos call, which
//     pins the result back into the representable range;
//   - it appears under a comparison operator, where the sentinel margin
//     (the sentinels sit at one quarter of the int64 range) keeps the
//     comparison exact;
//   - the enclosing function guards against the sentinel region itself:
//     it compares a position against seq.MinPos/MaxPos, calls
//     seq.Span.Bounded or seq.Span.Contains (which pins the position
//     between the endpoints, so differences stay representable), or
//     calls seq.EffectivelyUnbounded — the repository conventions for
//     "this code has checked its positions".
//
// Residual intentional arithmetic is suppressed per line with
// `//seqvet:ignore spanarith <reason>`.
var SpanArith = &Analyzer{
	Name: "spanarith",
	Doc:  "span endpoint arithmetic must be clamped, compared, or sentinel-guarded",
	Run:  runSpanArith,
}

const seqPath = "repro/internal/seq"

func runSpanArith(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if funcGuardsSentinels(pass, fd.Body) {
				continue
			}
			checkSpanArith(pass, fd.Body)
		}
	}
}

// checkSpanArith walks one unguarded function body tracking whether the
// current node sits inside a sanctioning context (a seq.ClampPos
// argument or a comparison).
func checkSpanArith(pass *Pass, body *ast.BlockStmt) {
	var visit func(n ast.Node, sanctioned bool)
	visit = func(n ast.Node, sanctioned bool) {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isClampPosCall(pass, e) {
				sanctioned = true
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				sanctioned = true
			case token.ADD, token.SUB:
				if !sanctioned && (isSentinelBound(pass, e.X) || isSentinelBound(pass, e.Y)) {
					pass.report(e.Pos(),
						"unclamped %s on a span endpoint near the MinPos/MaxPos sentinels; wrap in seq.ClampPos or guard the endpoint first",
						e.Op)
				}
			}
		}
		local := sanctioned
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return true
			}
			visit(c, local)
			return false // visit recurses itself
		})
	}
	visit(body, false)
}

// funcGuardsSentinels reports whether the function body contains a
// sentinel guard: a comparison against seq.MinPos/MaxPos, a
// seq.Span.Bounded call, or a seq.EffectivelyUnbounded call.
func funcGuardsSentinels(pass *Pass, body *ast.BlockStmt) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch e := n.(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				if isSentinelConst(pass, e.X) || isSentinelConst(pass, e.Y) {
					guarded = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Bounded" || sel.Sel.Name == "Contains") && isSpanMethod(pass, sel) {
					guarded = true
				}
			}
			if isSeqFuncCall(pass, e, "EffectivelyUnbounded") {
				guarded = true
			}
		}
		return true
	})
	return guarded
}

// isSentinelBound reports whether the expression (modulo parentheses)
// reads a value that can carry a sentinel: a Start/End field of a
// seq.Span, or the seq.MinPos/MaxPos constants themselves.
func isSentinelBound(pass *Pass, e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	if isSentinelConst(pass, e) {
		return true
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Start" && sel.Sel.Name != "End") {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	return namedFrom(s.Recv(), seqPath, "Span")
}

// isSentinelConst reports whether the expression resolves to the
// seq.MinPos or seq.MaxPos constant.
func isSentinelConst(pass *Pass, e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != seqPath {
		return false
	}
	return obj.Name() == "MinPos" || obj.Name() == "MaxPos"
}

// isClampPosCall reports whether the call is seq.ClampPos (or ClampPos
// within package seq itself).
func isClampPosCall(pass *Pass, call *ast.CallExpr) bool {
	return isSeqFuncCall(pass, call, "ClampPos")
}

func isSeqFuncCall(pass *Pass, call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := pass.Info.Uses[id]
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == seqPath && obj.Name() == name
}

// isSpanMethod reports whether the selector invokes a method with
// seq.Span (or *seq.Span) receiver.
func isSpanMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return namedFrom(s.Recv(), seqPath, "Span")
}
