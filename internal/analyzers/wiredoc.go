package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// WireDoc cross-checks internal/wire against docs/PROTOCOL.md at vet
// time: every registered message type (the wire registry's code/name
// pairs) and every ErrorCode constant (with the document name its
// String method returns) must appear in the spec's tables, and every
// documented row must correspond to an implemented type or code. The
// same check exists as TestProtocolDocCoversEveryType, but a test can
// be skipped; the vet gate cannot.
//
// Extraction is static: the registry composite literal supplies
// (code, name) pairs, ErrorCode constants come from the package scope,
// and their document names from the String() switch. The doc rows are
// matched with the identical regexes the conformance test uses.
var WireDoc = &GlobalAnalyzer{
	Name: "wiredoc",
	Doc:  "wire registry and error codes agree with the docs/PROTOCOL.md tables in both directions",
	Run:  runWireDoc,
}

const wirePkgPath = "repro/internal/wire"

var (
	wireDocTypeRow = regexp.MustCompile(`(?m)^\|\s*` + "`" + `0x([0-9a-f]{2})` + "`" + `\s*\|\s*` + "`" + `([A-Za-z]+)` + "`" + `\s*\|`)
	wireDocCodeRow = regexp.MustCompile(`(?m)^\|\s*` + "`" + `(\d+)` + "`" + `\s*\|\s*` + "`" + `([a-z-]+)` + "`" + `\s*\|`)
)

func runWireDoc(prog *Program) {
	var wire *Pass
	for _, pass := range prog.Pkgs {
		if pass.Pkg.Path() == wirePkgPath {
			wire = pass
		}
	}
	if wire == nil {
		return
	}
	anchor := wire.Files[0].Pos() // fallback position for doc-side findings

	docPath := filepath.Join(prog.Dir, "docs", "PROTOCOL.md")
	raw, err := os.ReadFile(docPath)
	if err != nil {
		prog.report(anchor, "wiredoc: cannot read %s: %v", docPath, err)
		return
	}

	// Implementation side.
	regTypes, regPos := wireRegistry(wire)      // code -> name
	codes, codePos := wireErrorCodes(wire)      // value -> const name
	codeDocNames := wireErrorCodeDocNames(wire) // const name -> String() name

	// Document side.
	docTypes := map[uint8]string{}
	docTypeLine := map[uint8]int{}
	for _, m := range wireDocTypeRow.FindAllStringSubmatchIndex(string(raw), -1) {
		hex := string(raw[m[2]:m[3]])
		name := string(raw[m[4]:m[5]])
		n, err := strconv.ParseUint(hex, 16, 8)
		if err != nil {
			continue
		}
		docTypes[uint8(n)] = name
		docTypeLine[uint8(n)] = lineOf(raw, m[0])
	}
	docCodes := map[uint16]string{}
	docCodeLine := map[uint16]int{}
	for _, m := range wireDocCodeRow.FindAllStringSubmatchIndex(string(raw), -1) {
		num := string(raw[m[2]:m[3]])
		name := string(raw[m[4]:m[5]])
		n, err := strconv.ParseUint(num, 10, 16)
		if err != nil {
			continue
		}
		docCodes[uint16(n)] = name
		docCodeLine[uint16(n)] = lineOf(raw, m[0])
	}

	// Message types, both directions.
	for code, name := range regTypes {
		docName, ok := docTypes[code]
		switch {
		case !ok:
			prog.report(regPos[code], "wiredoc: registered type 0x%02x (%s) has no row in the docs/PROTOCOL.md message tables", code, name)
		case docName != name:
			prog.report(regPos[code], "wiredoc: type 0x%02x is registered as %s but documented as %s (docs/PROTOCOL.md:%d)", code, name, docName, docTypeLine[code])
		}
	}
	for code, name := range docTypes {
		if _, ok := regTypes[code]; !ok {
			prog.report(anchor, "wiredoc: docs/PROTOCOL.md:%d documents type 0x%02x (%s) but the wire registry does not implement it", docTypeLine[code], code, name)
		}
	}

	// Error codes, both directions.
	for val, constName := range codes {
		wantName, hasDocName := codeDocNames[constName]
		docName, ok := docCodes[val]
		switch {
		case !ok:
			prog.report(codePos[val], "wiredoc: error code %d (%s) has no row in the docs/PROTOCOL.md error-code table", val, constName)
		case !hasDocName:
			prog.report(codePos[val], "wiredoc: error code %d (%s) has no case in ErrorCode.String — the doc name cannot be checked", val, constName)
		case docName != wantName:
			prog.report(codePos[val], "wiredoc: error code %d is named %q by ErrorCode.String but %q in docs/PROTOCOL.md:%d", val, wantName, docName, docCodeLine[val])
		}
	}
	for val, name := range docCodes {
		if _, ok := codes[val]; !ok {
			prog.report(anchor, "wiredoc: docs/PROTOCOL.md:%d documents error code %d (%s) but internal/wire does not define it", docCodeLine[val], val, name)
		}
	}
}

func lineOf(raw []byte, offset int) int {
	line := 1
	for _, b := range raw[:offset] {
		if b == '\n' {
			line++
		}
	}
	return line
}

// wireRegistry extracts (code, name) pairs from the package-level
// `registry` composite literal. Codes are resolved through constant
// folding, so both `THello` and a literal `0x01` work.
func wireRegistry(pass *Pass) (map[uint8]string, map[uint8]token.Pos) {
	out := map[uint8]string{}
	pos := map[uint8]token.Pos{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "registry" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					entry, ok := elt.(*ast.CompositeLit)
					if !ok || len(entry.Elts) < 2 {
						continue
					}
					code, okCode := constUint(pass, entry.Elts[0], 8)
					name, okName := constString(pass, entry.Elts[1])
					if okCode && okName {
						out[uint8(code)] = name
						pos[uint8(code)] = entry.Pos()
					}
				}
			}
		}
	}
	return out, pos
}

// wireErrorCodes collects the package-level ErrorCode constants.
func wireErrorCodes(pass *Pass) (map[uint16]string, map[uint16]token.Pos) {
	out := map[uint16]string{}
	pos := map[uint16]token.Pos{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !namedFrom(c.Type(), wirePkgPath, "ErrorCode") {
			continue
		}
		v, ok := constant.Uint64Val(c.Val())
		if !ok {
			continue
		}
		out[uint16(v)] = name
		pos[uint16(v)] = c.Pos()
	}
	return out, pos
}

// wireErrorCodeDocNames maps each ErrorCode constant name to the string
// its String() method returns, read from the switch statement.
func wireErrorCodeDocNames(pass *Pass) map[string]string {
	out := map[string]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "String" || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if !namedFrom(pass.Info.TypeOf(fd.Recv.List[0].Type), wirePkgPath, "ErrorCode") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				ret := returnedString(cc.Body)
				if ret == "" {
					return true
				}
				for _, e := range cc.List {
					if id, ok := e.(*ast.Ident); ok {
						out[id.Name] = ret
					}
				}
				return true
			})
		}
	}
	return out
}

// returnedString extracts the string literal from a one-statement
// `return "name"` body.
func returnedString(body []ast.Stmt) string {
	if len(body) != 1 {
		return ""
	}
	ret, ok := body[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	lit, ok := ret.Results[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}

func constUint(pass *Pass, e ast.Expr, bits int) (uint64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
	if !ok || bits < 64 && v >= 1<<uint(bits) {
		return 0, false
	}
	return v, true
}

func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
