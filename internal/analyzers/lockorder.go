package analyzers

import (
	"go/token"
	"sort"
	"strings"
)

// LockOrder verifies the module's static lock-acquisition graph against
// a declared partial order. The order is written in machine-readable
// annotations anywhere in the module:
//
//	//seqvet:lockorder server.Server.wmu < server.Server.mu
//	//seqvet:lockorder leaf storage.EpochTracker.mu
//
// `a < b` declares that a may be held while b is acquired; `leaf a`
// declares that nothing may be acquired while a is held. The relation
// is transitive: with wmu < mu and mu < Versioned.mu declared,
// acquiring Versioned.mu under wmu is allowed.
//
// The analyzer reports:
//   - a named mutex never mentioned in any annotation (the order must
//     cover every mutex, so adding a lock forces a decision about its
//     rank);
//   - a cycle in the declared order, or a leaf with an outgoing edge;
//   - acquiring b while holding a without a declared path a < b —
//     including a == b, the self-deadlock, and acquisitions under a
//     declared leaf;
//   - a call made under a held lock into a function that transitively
//     acquires a lock the held set does not permit (the shape
//     Server.Close almost had: closing connections under connMu while
//     handlers re-enter untrack).
var LockOrder = &GlobalAnalyzer{
	Name: "lockorder",
	Doc:  "verify mutex acquisitions against the declared //seqvet:lockorder partial order",
	Run:  runLockOrder,
}

const lockorderMarker = "//seqvet:lockorder "

// lockOrderDecl is the parsed annotation set.
type lockOrderDecl struct {
	edges     map[mutexID]map[mutexID]token.Pos // a -> b -> decl pos
	leaves    map[mutexID]token.Pos
	mentioned map[mutexID]bool
}

func runLockOrder(prog *Program) {
	li := prog.locks()
	decl := parseLockOrder(prog, li)

	// Structural validation: leaves must not have outgoing edges, and
	// the declared order must be acyclic (an order with a cycle permits
	// the deadlock it exists to prevent).
	for a, pos := range decl.leaves {
		if len(decl.edges[a]) > 0 {
			prog.report(pos, "lock order: %s is declared leaf but also has outgoing edges", a)
		}
	}
	if cycle := findCycle(decl.edges); cycle != nil {
		pos := decl.edges[cycle[0]][cycle[1]]
		prog.report(pos, "lock order: declared order has a cycle: %s", joinIDs(cycle, " < "))
	}

	// Coverage: every named mutex in the module must appear in some
	// annotation.
	var uncovered []mutexID
	for m := range li.mutexes {
		if !decl.mentioned[m] {
			uncovered = append(uncovered, m)
		}
	}
	sort.Slice(uncovered, func(i, j int) bool { return uncovered[i] < uncovered[j] })
	for _, m := range uncovered {
		prog.report(li.mutexes[m], "lock order: mutex %s is not covered by any //seqvet:lockorder annotation (declare an edge or `leaf %s`)", m, m)
	}

	allows := decl.reachability()

	check := func(pos token.Pos, held []mutexID, acquired mutexID, via string) {
		for _, h := range held {
			_, isLeaf := decl.leaves[h]
			switch {
			case h == acquired:
				prog.report(pos, "lock order: %s acquired while already held%s (self-deadlock)", acquired, via)
			case isLeaf:
				prog.report(pos, "lock order: %s acquired while holding %s, which is declared leaf%s", acquired, h, via)
			case !allows[h][acquired]:
				prog.report(pos, "lock order: %s acquired while holding %s but no //seqvet:lockorder path %s < %s is declared%s", acquired, h, h, acquired, via)
			}
		}
	}

	for _, sum := range li.all {
		for _, ev := range sum.events {
			if len(ev.held) == 0 {
				continue
			}
			switch ev.kind {
			case evLock:
				check(ev.pos, ev.held, ev.mutex, "")
			case evCall:
				callee := li.summaryFor(ev)
				if callee == nil {
					continue
				}
				for _, m := range sortedIDs(callee.trans) {
					check(ev.pos, ev.held, m, " (via call to "+ev.calleeName+")")
				}
			}
		}
	}
}

// summaryFor resolves a call event to the callee's summary, if its body
// is part of the module.
func (li *lockInfo) summaryFor(ev event) *funcSummary {
	if ev.callee != nil {
		return li.funcs[ev.callee]
	}
	return nil
}

func parseLockOrder(prog *Program, li *lockInfo) *lockOrderDecl {
	decl := &lockOrderDecl{
		edges:     make(map[mutexID]map[mutexID]token.Pos),
		leaves:    make(map[mutexID]token.Pos),
		mentioned: make(map[mutexID]bool),
	}
	known := func(pos token.Pos, m mutexID) bool {
		if _, ok := li.mutexes[m]; !ok {
			prog.report(pos, "lock order: annotation names unknown mutex %s (named mutexes are pkg.Type.field or pkg.var)", m)
			return false
		}
		decl.mentioned[m] = true
		return true
	}
	for _, pass := range prog.Pkgs {
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, lockorderMarker) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, lockorderMarker))
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 2 && fields[0] == "leaf":
						m := mutexID(fields[1])
						if known(c.Pos(), m) {
							decl.leaves[m] = c.Pos()
						}
					case len(fields) == 3 && fields[1] == "<":
						a, b := mutexID(fields[0]), mutexID(fields[2])
						if a == b {
							prog.report(c.Pos(), "lock order: self-edge %s < %s is meaningless", a, b)
							continue
						}
						if known(c.Pos(), a) && known(c.Pos(), b) {
							if decl.edges[a] == nil {
								decl.edges[a] = make(map[mutexID]token.Pos)
							}
							decl.edges[a][b] = c.Pos()
						}
					default:
						prog.report(c.Pos(), "lock order: malformed annotation %q (want `a < b` or `leaf a`)", rest)
					}
				}
			}
		}
	}
	return decl
}

// reachability computes the transitive closure of the declared edges.
func (d *lockOrderDecl) reachability() map[mutexID]map[mutexID]bool {
	reach := make(map[mutexID]map[mutexID]bool, len(d.edges))
	for a := range d.edges {
		seen := make(map[mutexID]bool)
		stack := []mutexID{a}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for b := range d.edges[n] {
				if !seen[b] {
					seen[b] = true
					stack = append(stack, b)
				}
			}
		}
		reach[a] = seen
	}
	return reach
}

// findCycle returns some cycle in the edge set as a path [a, b, …, a],
// or nil.
func findCycle(edges map[mutexID]map[mutexID]token.Pos) []mutexID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[mutexID]int)
	var path []mutexID
	var dfs func(n mutexID) []mutexID
	dfs = func(n mutexID) []mutexID {
		color[n] = gray
		path = append(path, n)
		for _, b := range sortedEdgeKeys(edges[n]) {
			switch color[b] {
			case gray:
				for i, p := range path {
					if p == b {
						return append(append([]mutexID(nil), path[i:]...), b)
					}
				}
			case white:
				if c := dfs(b); c != nil {
					return c
				}
			}
		}
		path = path[:len(path)-1]
		color[n] = black
		return nil
	}
	for _, n := range sortedOuterKeys(edges) {
		if color[n] == white {
			if c := dfs(n); c != nil {
				return c
			}
		}
	}
	return nil
}

func sortedEdgeKeys(m map[mutexID]token.Pos) []mutexID {
	out := make([]mutexID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedOuterKeys(m map[mutexID]map[mutexID]token.Pos) []mutexID {
	out := make([]mutexID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedIDs(m map[mutexID]bool) []mutexID {
	out := make([]mutexID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func joinIDs(s []mutexID, sep string) string {
	strs := make([]string, len(s))
	for i, m := range s {
		strs[i] = string(m)
	}
	return strings.Join(strs, sep)
}
