package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// EpochPin enforces the two epoch disciplines the MVCC layer's
// correctness hangs on (docs/INVARIANTS.md, "publish-then-advance" and
// "pinned readers"):
//
//  1. Every EpochTracker.Pin() acquisition must be released: the
//     statement taking the pin must be followed, in the same block, by
//     `defer tracker.Release(...)` before any branch, or by an
//     unconditional tracker.Release(...) later in the same block (the
//     dominating-release shape). A pin whose release sits inside an if
//     or a loop leaks readers on the paths around it, and a leaked pin
//     blocks MVCC garbage collection forever.
//
//  2. EpochTracker.AdvanceTo may only be called while the writer mutex
//     declared by a module annotation
//
//     //seqvet:epochpin advance-under server.Server.wmu
//
//     is held, and only after at least one preceding call in the same
//     function (the page publish) — advancing the epoch before the new
//     page versions are published would let a concurrent reader pin the
//     new epoch and miss the pages, violating snapshot isolation
//     (Thm. 3.1's cache-consistency argument).
//
// Pins held in struct fields or returned to callers are not modeled;
// such a design would need an explicit //seqvet:ignore with its reason.
var EpochPin = &GlobalAnalyzer{
	Name: "epochpin",
	Doc:  "EpochTracker pins released on every path; AdvanceTo only under the declared writer mutex",
	Run:  runEpochPin,
}

const epochpinMarker = "//seqvet:epochpin "

func runEpochPin(prog *Program) {
	li := prog.locks()
	gates := parseEpochGates(prog, li)

	// Discipline 2: AdvanceTo under the declared gate, after a publish.
	for _, sum := range li.all {
		sawCall := false
		for _, ev := range sum.events {
			if ev.kind != evCall {
				continue
			}
			fn, ok := ev.callee.(*types.Func)
			if !ok || !isEpochTrackerMethod(fn, "AdvanceTo") {
				sawCall = true
				continue
			}
			if len(gates) > 0 && !holdsAny(ev.held, gates) {
				prog.report(ev.pos, "epochpin: EpochTracker.AdvanceTo called without holding the declared writer mutex (%s)", joinIDs(gates, ", "))
			}
			if !sawCall {
				prog.report(ev.pos, "epochpin: EpochTracker.AdvanceTo is the first call in %s — the epoch must advance only after the page publish", sum.name)
			}
			sawCall = true
		}
	}

	// Discipline 1: Pin paired with defer/dominating Release. This is a
	// block-structure check, so it walks the AST rather than the event
	// stream.
	for _, sum := range li.all {
		checkPins(prog, sum)
	}
}

// parseEpochGates collects the `advance-under` annotations.
func parseEpochGates(prog *Program, li *lockInfo) []mutexID {
	var gates []mutexID
	for _, pass := range prog.Pkgs {
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, epochpinMarker) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, epochpinMarker))
					fields := strings.Fields(rest)
					if len(fields) != 2 || fields[0] != "advance-under" {
						prog.report(c.Pos(), "epochpin: malformed annotation %q (want `advance-under pkg.Type.field`)", rest)
						continue
					}
					m := mutexID(fields[1])
					if _, ok := li.mutexes[m]; !ok {
						prog.report(c.Pos(), "epochpin: annotation names unknown mutex %s", m)
						continue
					}
					gates = append(gates, m)
				}
			}
		}
	}
	return gates
}

func holdsAny(held []mutexID, want []mutexID) bool {
	for _, h := range held {
		for _, w := range want {
			if h == w {
				return true
			}
		}
	}
	return false
}

// isEpochTrackerMethod reports whether fn is storage.EpochTracker's
// method named name.
func isEpochTrackerMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedFrom(sig.Recv().Type(), "repro/internal/storage", "EpochTracker")
}

// checkPins walks one function body looking for Pin acquisitions and
// their releases.
func checkPins(prog *Program, sum *funcSummary) {
	var walkBlock func(list []ast.Stmt)
	walkBlock = func(list []ast.Stmt) {
		for i, s := range list {
			// Recurse into nested blocks first; a pin taken inside an if
			// body must be released inside that body.
			switch st := s.(type) {
			case *ast.BlockStmt:
				walkBlock(st.List)
				continue
			case *ast.IfStmt:
				walkBlock(st.Body.List)
				if b, ok := st.Else.(*ast.BlockStmt); ok {
					walkBlock(b.List)
				}
				continue
			case *ast.ForStmt:
				walkBlock(st.Body.List)
				continue
			case *ast.RangeStmt:
				walkBlock(st.Body.List)
				continue
			case *ast.SwitchStmt:
				for _, cc := range st.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						walkBlock(c.Body)
					}
				}
				continue
			case *ast.TypeSwitchStmt:
				for _, cc := range st.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						walkBlock(c.Body)
					}
				}
				continue
			case *ast.SelectStmt:
				for _, cc := range st.Body.List {
					if c, ok := cc.(*ast.CommClause); ok {
						walkBlock(c.Body)
					}
				}
				continue
			}
			recv, call := pinCallIn(sum.pass, s)
			if call == nil {
				continue
			}
			if !releasedAfter(sum.pass, list[i+1:], recv) {
				prog.report(call.Pos(), "epochpin: EpochTracker.Pin acquisition is not released on every path — pair it with `defer %s.Release(...)` in the next statement or an unconditional Release in the same block", recv)
			}
		}
	}
	walkBlock(sum.body.List)
}

// pinCallIn finds a Pin() call on an EpochTracker inside statement s
// (excluding nested function literals) and returns the printed receiver
// expression and the call.
func pinCallIn(pass *Pass, s ast.Stmt) (string, *ast.CallExpr) {
	var recv string
	var found *ast.CallExpr
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || found != nil {
			return found == nil
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && isEpochTrackerMethod(fn, "Pin") {
			recv = types.ExprString(sel.X)
			found = call
			return false
		}
		return true
	})
	return recv, found
}

// releasedAfter reports whether the statements following the pin
// contain, before any return or branch into other control flow, either
// a `defer recv.Release(...)` or an unconditional `recv.Release(...)`.
func releasedAfter(pass *Pass, rest []ast.Stmt, recv string) bool {
	for _, s := range rest {
		switch st := s.(type) {
		case *ast.DeferStmt:
			if isReleaseCall(pass, st.Call, recv) {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isReleaseCall(pass, call, recv) {
				return true
			}
		case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
			// Straight-line statements cannot skip the release; keep
			// scanning.
		case *ast.ReturnStmt:
			return false
		default:
			// A branch (if/for/switch/goto/…) before the release means
			// some path may leave the block with the pin held.
			return false
		}
	}
	return false
}

func isReleaseCall(pass *Pass, call *ast.CallExpr, recv string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !isEpochTrackerMethod(fn, "Release") {
		return false
	}
	return types.ExprString(sel.X) == recv
}
