package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StatsAtomic reports uses of storage.Stats counter fields that are not
// immediate atomic method calls. The counters are shared between
// concurrent scans (storage.Stats documents this contract), so every
// access must go through the atomic.Int64 API — taking a field's
// address, copying it, or passing it along lets a caller hold the
// counter outside the atomic discipline.
var StatsAtomic = &Analyzer{
	Name: "statsatomic",
	Doc:  "storage.Stats counters may only be used via atomic method calls",
	Run:  runStatsAtomic,
}

var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true,
	"Swap": true, "CompareAndSwap": true,
}

func runStatsAtomic(pass *Pass) {
	// First pass: mark every Stats field selector that is the receiver of
	// an immediate atomic method call (stats.SeqPages.Add(1)).
	sanctioned := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !atomicMethods[method.Sel.Name] {
				return true
			}
			if field, ok := method.X.(*ast.SelectorExpr); ok && isStatsCounter(pass, field) {
				sanctioned[field.Pos()] = true
			}
			return true
		})
	}
	// Second pass: every other appearance of a counter field is a
	// violation.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			field, ok := n.(*ast.SelectorExpr)
			if !ok || !isStatsCounter(pass, field) {
				return true
			}
			if !sanctioned[field.Pos()] {
				pass.report(field.Pos(),
					"storage.Stats.%s used outside an atomic method call (Load/Store/Add/Swap/CompareAndSwap)",
					field.Sel.Name)
			}
			return true
		})
	}
}

// isStatsCounter reports whether sel selects a field of storage.Stats.
func isStatsCounter(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	return namedFrom(s.Recv(), storagePath, "Stats")
}
