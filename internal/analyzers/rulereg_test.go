package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// checkRuleReg type-checks src as the rewrite package with its file
// placed in dir (so the analyzer can find the audit file next to it) and
// runs only the rulereg analyzer.
func checkRuleReg(t *testing.T, dir, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	depFile, err := parser.ParseFile(fset, "repro/internal/algebra/dep.go", fakeAlgebra, 0)
	if err != nil {
		t.Fatal(err)
	}
	algebraPkg, err := (&types.Config{}).Check("repro/internal/algebra", fset, []*ast.File{depFile}, nil)
	if err != nil {
		t.Fatal(err)
	}
	imp := importerFn(func(path string) (*types.Package, error) {
		if path == "repro/internal/algebra" {
			return algebraPkg, nil
		}
		return nil, fmt.Errorf("unknown test import %q", path)
	})
	f, err := parser.ParseFile(fset, filepath.Join(dir, "rules.go"), src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{Importer: imp}).Check("repro/internal/rewrite", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
	var out []string
	for _, d := range Run(pass, []*Analyzer{RuleReg}) {
		out = append(out, fmt.Sprintf("%d: %s: %s", fset.Position(d.Pos).Line, d.Analyzer, d.Message))
	}
	return out
}

const ruleRegSrc = `package rewrite
import "repro/internal/algebra"
type Rule struct {
	Name  string
	Group string
	Apply func(n *algebra.Node) (*algebra.Node, bool, error)
}
func DefaultRules() []Rule {
	return []Rule{
		{"merge-selects", "selects", mergeSelects},
	}
}
func mergeSelects(n *algebra.Node) (*algebra.Node, bool, error) { return n, false, nil }
func orphanRule(n *algebra.Node) (*algebra.Node, bool, error)   { return n, false, nil }
func notARule(n *algebra.Node) (*algebra.Node, error)           { return n, nil }
`

func writeAudit(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, ruleCoverageFile), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRuleRegUnregisteredRule(t *testing.T) {
	dir := t.TempDir()
	writeAudit(t, dir, `package rewrite_test
var corpus = map[string]int{"merge-selects": 1}
`)
	got := checkRuleReg(t, dir, ruleRegSrc)
	wantDiags(t, got, "rulereg: rewrite rule function orphanRule is not registered in DefaultRules")
}

func TestRuleRegUnauditedRule(t *testing.T) {
	dir := t.TempDir()
	writeAudit(t, dir, `package rewrite_test
var corpus = map[string]int{"something-else": 1}
`)
	got := checkRuleReg(t, dir, ruleRegSrc)
	wantDiags(t, got,
		`rulereg: rule "merge-selects" is not exercised by scope_preserve_test.go`,
		"rulereg: rewrite rule function orphanRule is not registered in DefaultRules")
}

func TestRuleRegMissingAudit(t *testing.T) {
	dir := t.TempDir()
	got := checkRuleReg(t, dir, ruleRegSrc)
	wantDiags(t, got,
		"rulereg: cannot read scope_preserve_test.go next to DefaultRules",
		"rulereg: rewrite rule function orphanRule is not registered in DefaultRules")
}

func TestRuleRegSuppression(t *testing.T) {
	dir := t.TempDir()
	writeAudit(t, dir, `package rewrite_test
var corpus = map[string]int{"merge-selects": 1}
`)
	got := checkRuleReg(t, dir, `package rewrite
import "repro/internal/algebra"
type Rule struct {
	Name  string
	Group string
	Apply func(n *algebra.Node) (*algebra.Node, bool, error)
}
func DefaultRules() []Rule {
	return []Rule{
		{"merge-selects", "selects", mergeSelects},
	}
}
func mergeSelects(n *algebra.Node) (*algebra.Node, bool, error) { return n, false, nil }
//seqvet:ignore rulereg staged rule, registered by the next commit
func stagedRule(n *algebra.Node) (*algebra.Node, bool, error) { return n, false, nil }
`)
	wantDiags(t, got)
}

func TestRuleRegSkipsOtherPackages(t *testing.T) {
	// The same shapes under another import path are not checked: rule
	// hygiene only applies to the rewrite package itself.
	got := check(t, "repro/internal/other", `package other
import "repro/internal/algebra"
func looksLikeARule(n *algebra.Node) (*algebra.Node, bool, error) { return n, false, nil }
`)
	wantDiags(t, got)
}
