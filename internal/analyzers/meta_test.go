package analyzers

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestEveryAnalyzerHasTheDrill is the meta-test: every registered
// analyzer — per-package and whole-program alike — must come with
//
//  1. a fixture test (a Test function whose name contains the
//     analyzer's name, proving at least one true positive against
//     crafted sources),
//  2. a suppression test (some test source carrying a literal
//     `//seqvet:ignore <name> <reason>` marker, proving the escape
//     hatch works), and
//  3. a documentation entry (a `## <name>` section in
//     docs/ANALYZERS.md).
//
// A future analyzer that skips any part of the drill fails here, not in
// review.
func TestEveryAnalyzerHasTheDrill(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	for _, a := range AllGlobal() {
		names = append(names, a.Name)
	}

	// Gather every test source in this package.
	matches, err := filepath.Glob("*_test.go")
	if err != nil {
		t.Fatal(err)
	}
	var testSrc strings.Builder
	testFuncs := regexp.MustCompile(`func (Test[A-Za-z0-9_]+)`)
	var funcNames []string
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		testSrc.Write(data)
		for _, f := range testFuncs.FindAllStringSubmatch(string(data), -1) {
			funcNames = append(funcNames, strings.ToLower(f[1]))
		}
	}

	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "ANALYZERS.md"))
	if err != nil {
		t.Fatalf("docs/ANALYZERS.md must exist and catalogue the analyzers: %v", err)
	}

	for _, name := range names {
		hasFixture := false
		for _, fn := range funcNames {
			if strings.Contains(fn, name) {
				hasFixture = true
				break
			}
		}
		if !hasFixture {
			t.Errorf("analyzer %q has no fixture test (want a Test function whose name contains %q)", name, name)
		}
		if !strings.Contains(testSrc.String(), "seqvet:ignore "+name+" ") {
			t.Errorf("analyzer %q has no suppression test (want a test fixture carrying `//seqvet:ignore %s <reason>`)", name, name)
		}
		if !strings.Contains(string(doc), "\n## "+name+"\n") {
			t.Errorf("analyzer %q has no docs/ANALYZERS.md entry (want a `## %s` section)", name, name)
		}
	}
}

// TestAnalyzerNamesAreDistinct guards the -only/-skip vocabulary: a
// duplicated name would make selection and suppression ambiguous.
func TestAnalyzerNamesAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, a := range AllGlobal() {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
