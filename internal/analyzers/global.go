package analyzers

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Program is the whole-module view a global analyzer inspects: every
// module package, parsed and type-checked together so types.Object
// identities are shared across package boundaries and an analyzer can
// follow a call from internal/server into internal/storage. cmd/seqvet
// builds one in -global mode (see cmd/seqvet/global.go); the fixture
// tests build small ones from in-memory sources.
type Program struct {
	Fset *token.FileSet
	// Dir is the module root; wiredoc resolves docs/PROTOCOL.md
	// relative to it.
	Dir string
	// Pkgs holds one Pass per module package, in dependency order
	// (imported packages first).
	Pkgs []*Pass

	diags    []Diagnostic
	suppress map[suppressKey]bool
	badSupp  []Diagnostic

	li *lockInfo // lazily built lock/call summaries, shared by analyzers
}

// NewProgram assembles a Program from per-package passes. The passes
// must share fset and be listed in dependency order.
func NewProgram(fset *token.FileSet, dir string, pkgs []*Pass) *Program {
	return &Program{Fset: fset, Dir: dir, Pkgs: pkgs}
}

// GlobalAnalyzer is one whole-program check. Unlike an Analyzer it sees
// every module package at once; it runs only under `seqvet -global`,
// never under the per-package `go vet -vettool` protocol.
type GlobalAnalyzer struct {
	Name string
	Doc  string
	Run  func(*Program)
}

// AllGlobal returns every whole-program analyzer, in reporting order.
func AllGlobal() []*GlobalAnalyzer {
	return []*GlobalAnalyzer{LockOrder, EpochPin, GoExit, WireDoc}
}

func (p *Program) report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// locks returns the program's lock/call summaries, built on first use.
// lockorder, epochpin and goexit all read them.
func (p *Program) locks() *lockInfo {
	if p.li == nil {
		p.li = buildLockInfo(p)
	}
	return p.li
}

// RunGlobal executes the per-package analyzers over every pass and the
// global analyzers over the whole program, returning the surviving
// diagnostics sorted by position. Suppressions (//seqvet:ignore) work
// exactly as in per-package mode; bad suppressions are reported once.
func RunGlobal(prog *Program, locals []*Analyzer, globals []*GlobalAnalyzer) []Diagnostic {
	prog.suppress = make(map[suppressKey]bool)
	var kept []Diagnostic
	for _, pass := range prog.Pkgs {
		pass.diags = nil
		pass.badSupp = nil
		for _, d := range Run(pass, locals) {
			kept = append(kept, d)
		}
		for k, v := range pass.suppress {
			prog.suppress[k] = v
		}
	}
	for _, a := range globals {
		prev := len(prog.diags)
		a.Run(prog)
		for i := prev; i < len(prog.diags); i++ {
			prog.diags[i].Analyzer = a.Name
		}
	}
	kept = append(kept, prog.badSupp...)
	for _, d := range prog.diags {
		pos := prog.Fset.Position(d.Pos)
		if !prog.suppress[suppressKey{pos.Filename, pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := prog.Fset.Position(kept[i].Pos), prog.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept
}

// FilterNames resolves -only/-skip selections against the known
// analyzer names (the union of per-package and global analyzers) and
// returns the set to run. Empty only means "all"; skip wins over only.
func FilterNames(known []string, only, skip string) (map[string]bool, error) {
	isKnown := make(map[string]bool, len(known))
	for _, n := range known {
		isKnown[n] = true
	}
	split := func(list string) ([]string, error) {
		var out []string
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !isKnown[n] {
				return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
			}
			out = append(out, n)
		}
		return out, nil
	}
	keep := make(map[string]bool, len(known))
	if only == "" {
		for _, n := range known {
			keep[n] = true
		}
	} else {
		names, err := split(only)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			keep[n] = true
		}
	}
	skipped, err := split(skip)
	if err != nil {
		return nil, err
	}
	for _, n := range skipped {
		delete(keep, n)
	}
	return keep, nil
}
