package analyzers

// GoExit forbids leakable goroutines in the concurrency-bearing
// packages: every `go` statement in internal/server, internal/storage
// and internal/storage/disk must be tied to a sync.WaitGroup — an Add call
// earlier in the spawning function and a deferred Done inside the
// spawned body (directly for a `go func(){…}()` literal, or in the
// statically resolved callee for `go s.gcLoop()`). This is the
// tracking Server.Close relies on: wg.Wait can only mean "all
// goroutines finished" if every spawn is counted and every exit
// decrements.
//
// A goroutine with different lifecycle management (e.g. tracked by a
// connection registry alone) needs a //seqvet:ignore goexit with the
// reason spelled out.
var GoExit = &GlobalAnalyzer{
	Name: "goexit",
	Doc:  "every go statement in internal/server, internal/storage and internal/storage/disk is WaitGroup-tracked",
	Run:  runGoExit,
}

// goExitPkgs are the packages under the no-leakable-goroutines rule.
// internal/parallel manages its workers with its own barrier and is
// exercised by its race-mode tests; the server/storage layer is where a
// leaked goroutine outlives Close and corrupts shutdown. The disk tier
// qualifies the same way: its flusher and checkpointer must drain
// before Close returns or they race the final checkpoint.
var goExitPkgs = map[string]bool{
	"repro/internal/server":       true,
	"repro/internal/storage":      true,
	"repro/internal/storage/disk": true,
}

func runGoExit(prog *Program) {
	li := prog.locks()
	for _, sum := range li.all {
		if !goExitPkgs[sum.pkg] {
			continue
		}
		sawAdd := false
		for _, ev := range sum.events {
			switch ev.kind {
			case evWGAdd:
				sawAdd = true
			case evGo:
				if !sawAdd {
					prog.report(ev.pos, "goexit: go statement in %s has no preceding WaitGroup.Add in the spawning function", sum.name)
					continue
				}
				var target *funcSummary
				switch {
				case ev.goLit != nil:
					target = li.lits[ev.goLit]
				case ev.callee != nil:
					target = li.funcs[ev.callee]
				}
				if target == nil {
					prog.report(ev.pos, "goexit: go statement in %s spawns a dynamically resolved function — cannot prove it signals WaitGroup.Done", sum.name)
					continue
				}
				if !hasDeferredDone(target) {
					prog.report(ev.pos, "goexit: goroutine body %s does not `defer wg.Done()` — it can exit untracked", target.name)
				}
			}
		}
	}
}

func hasDeferredDone(sum *funcSummary) bool {
	for _, ev := range sum.events {
		if ev.kind == evWGDone {
			return true
		}
	}
	return false
}
