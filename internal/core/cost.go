// Package core implements the paper's primary contribution: the
// cost-based optimization and evaluation framework of §4. It wires the
// other subsystems together into the six-step pipeline —
//
//	Step 1  query specification (an algebra tree + requested range)
//	Step 2  meta-information propagation (internal/meta)
//	Step 3  query transformations (internal/rewrite)
//	Step 4  identification of query blocks (rewrite.ExtractJoinBlock)
//	Step 5  block-wise plan generation (the Selinger-style DP below)
//	Step 6  plan selection (cheapest stream-access plan at the Start
//	        operator)
//
// — and produces executable physical plans (internal/exec) with cost
// estimates, strategy choices (access modes, join strategies, cache
// strategies) and optimizer statistics (Property 4.1 counters).
package core

import "math"

// CostParams weight the cost model's primitive operations. The unit is
// "one sequential page read"; the defaults reflect the classical
// random-vs-sequential I/O gap plus small CPU terms.
type CostParams struct {
	SeqPage     float64 // one page read during a sequential scan
	RandPage    float64 // one page read during a probe
	Pred        float64 // one predicate application (the paper's K)
	CacheAccess float64 // one operator-cache put or get
	PerRecord   float64 // per-record CPU (copy, compose, aggregate step)
	// ParallelStartup is the fixed per-worker overhead of a partitioned
	// parallel run (plan cloning, goroutine launch, result merging), the
	// startup term of the parallelism extension. Values <= 0 select the
	// default, so pre-existing literal CostParams keep serial behavior
	// unchanged.
	ParallelStartup float64
}

// DefaultCostParams returns the standard parameter set.
func DefaultCostParams() CostParams {
	return CostParams{
		SeqPage:     1.0,
		RandPage:    4.0,
		Pred:        0.01,
		CacheAccess: 0.002,
		PerRecord:   0.005,

		ParallelStartup: 12.0,
	}
}

// Cost is the pair of access-mode costs the optimizer tracks for every
// candidate (§4.1: "plan generation ... provides evaluation plans and
// cost estimates for the output sequence of the block accessed in both
// stream and probed modes").
type Cost struct {
	// Stream is the total cost of one full stream pass over the
	// candidate's access span.
	Stream float64
	// ProbePer is the expected cost of one probed access.
	ProbePer float64
}

// ProbeAll is the §4.1.1 total probed cost: the per-probe cost times the
// number of positions in the (bounded) span.
func (c Cost) ProbeAll(spanLen int64) float64 {
	if spanLen <= 0 {
		return 0
	}
	return c.ProbePer * float64(spanLen)
}

// finite guards cost arithmetic against unbounded spans.
func finite(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return math.MaxFloat64 / 1e6
	}
	return x
}
