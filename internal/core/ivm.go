// Incremental view maintenance: the planner side.
//
// matview/delta.go bounds *where* a base write can change each view
// (the affected interval); this file decides *what to do about it* and
// carries it out. Per view the choice is priced with the same cost model
// the optimizer uses for queries: re-evaluating just the affected
// sub-span (stitch) competes against re-evaluating the whole view span
// (what an invalidate-and-rematerialize cycle would pay). A stitch must
// win by StitchThreshold to be worth keeping the view hot; otherwise the
// unaffected prefix — if any — survives as a shrunken view served by
// partial-span matching, and only as a last resort is the view
// invalidated as before.
package core

import (
	"fmt"
	"sort"

	"repro/internal/matview"
	"repro/internal/seq"
	"repro/internal/storage"
)

// StitchThreshold is the fraction of the full-recompute cost a stitch
// must stay under to be applied: re-evaluating the halo keeps the view
// hot only when it is decisively cheaper than rebuilding it.
var StitchThreshold = 0.5

// MaintainViews incrementally maintains every registered view that
// reads base after its data changed over delta (base coordinates; an
// append publishes [p, p], a content-preserving reorganize an empty
// span). lookup resolves base names to their post-write sequences so
// the registered blocks can be re-evaluated against current data; epoch
// is the MVCC epoch the write published (0 outside the server). Every
// decision — including "nothing to do" — is returned as a report for
// EXPLAIN and the planlint ivm/* invariants. A view whose maintenance
// fails is invalidated (never left stale); the error is folded into the
// returned error after all views are processed.
func MaintainViews(reg *matview.Registry, base string, delta seq.Span, epoch int64, lookup func(string) (seq.Sequence, bool), opts Options) ([]matview.MaintenanceReport, error) {
	if reg == nil {
		return nil, nil
	}
	// Maintenance plans views in isolation: no view substitution while
	// re-evaluating a view's own block.
	opts.Views = nil
	opts.Reopt.Enabled = false

	var reports []matview.MaintenanceReport
	var firstErr error
	for _, v := range reg.Views() {
		if v.InvalidFrom() != 0 || !matview.ReadsBase(v.Node, base) {
			continue
		}
		rep, err := maintainView(reg, v, base, delta, epoch, lookup, opts)
		if err != nil {
			invalidateView(reg, v, epoch)
			rep.Action = matview.MaintainInvalidate
			rep.NewSpan = seq.EmptySpan
			if firstErr == nil {
				firstErr = fmt.Errorf("maintain view %q: %w", v.Name, err)
			}
		}
		reports = append(reports, rep)
	}
	return reports, firstErr
}

func maintainView(reg *matview.Registry, v *matview.View, base string, delta seq.Span, epoch int64, lookup func(string) (seq.Sequence, bool), opts Options) (matview.MaintenanceReport, error) {
	rep := matview.MaintenanceReport{
		ViewName: v.Name,
		Base:     base,
		Delta:    delta,
		OldSpan:  v.Span,
		NewSpan:  v.Span,
		Epoch:    epoch,
	}
	node, err := matview.Rebind(v.Node, lookup)
	if err != nil {
		return rep, err
	}
	affected, known := matview.AffectedSpan(node, base, delta)
	rep.Affected = affected
	rep.AffectedKnown = known
	if !known {
		rep.Action = matview.MaintainInvalidate
		rep.NewSpan = seq.EmptySpan
		invalidateView(reg, v, epoch)
		return rep, nil
	}
	hit := affected.Intersect(v.Span)
	if hit.IsEmpty() {
		rep.Action = matview.MaintainNone
		return rep, nil
	}

	// Price the stitch against a full recompute of the view span with
	// the optimizer's own cost model.
	stitchRes, err := Optimize(node, hit, opts)
	if err != nil {
		return rep, err
	}
	recomputeRes, err := Optimize(node, v.Span, opts)
	if err != nil {
		return rep, err
	}
	rep.StitchCost = stitchRes.Cost.Stream
	rep.RecomputeCost = recomputeRes.Cost.Stream

	if rep.StitchCost <= StitchThreshold*rep.RecomputeCost {
		out, err := stitchRes.Run()
		if err != nil {
			return rep, err
		}
		store, err := stitchStore(v, hit, out.Entries())
		if err != nil {
			return rep, err
		}
		if _, err := reg.SwapGeneration(v.Name, v.Span, store, epoch); err != nil {
			return rep, err
		}
		rep.Action = matview.MaintainStitch
		rep.StitchSpan = hit
		return rep, nil
	}

	// Not worth stitching. Keep the unaffected prefix when there is one:
	// partial-span matching can still serve it.
	prefix := seq.NewSpan(v.Span.Start, seq.ClampPos(hit.Start-1))
	if !prefix.IsEmpty() {
		store, err := trimStore(v, prefix)
		if err != nil {
			return rep, err
		}
		if _, err := reg.SwapGeneration(v.Name, prefix, store, epoch); err != nil {
			return rep, err
		}
		rep.Action = matview.MaintainShrink
		rep.NewSpan = prefix
		return rep, nil
	}
	rep.Action = matview.MaintainInvalidate
	rep.NewSpan = seq.EmptySpan
	invalidateView(reg, v, epoch)
	return rep, nil
}

// stitchStore splices the re-evaluated entries over hit into the view's
// stored data: old records outside hit are kept, everything inside hit
// is replaced. The storage layer's copy-on-write replacement keeps this
// O(store) in flat copying rather than re-validation and page packing —
// the difference between maintenance that scales with the halo and
// maintenance that silently re-pays the rebuild it was priced against.
func stitchStore(v *matview.View, hit seq.Span, fresh []seq.Entry) (storage.Store, error) {
	if store, ok, err := storage.Replace(v.Store, hit, fresh); err != nil {
		return nil, err
	} else if ok {
		return store, nil
	}
	var merged []seq.Entry
	before := seq.NewSpan(v.Span.Start, seq.ClampPos(hit.Start-1))
	if !before.IsEmpty() {
		kept, err := seq.Collect(v.Store.Scan(before))
		if err != nil {
			return nil, err
		}
		merged = append(merged, kept...)
	}
	merged = append(merged, fresh...)
	after := seq.NewSpan(seq.ClampPos(hit.End+1), v.Span.End)
	if !after.IsEmpty() {
		kept, err := seq.Collect(v.Store.Scan(after))
		if err != nil {
			return nil, err
		}
		merged = append(merged, kept...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Pos < merged[j].Pos })
	return buildStore(v.Schema(), merged, v.Span)
}

// trimStore rebuilds the view's store restricted to the surviving span.
func trimStore(v *matview.View, span seq.Span) (storage.Store, error) {
	kept, err := seq.Collect(v.Store.Scan(span))
	if err != nil {
		return nil, err
	}
	return buildStore(v.Schema(), kept, span)
}

func buildStore(schema *seq.Schema, entries []seq.Entry, span seq.Span) (storage.Store, error) {
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		return nil, err
	}
	spanned, err := data.WithSpan(span)
	if err != nil {
		return nil, err
	}
	kind := storage.KindSparse
	if spanned.Info().Density >= 0.5 {
		kind = storage.KindDense
	}
	return storage.FromMaterialized(spanned, kind, 0)
}

func invalidateView(reg *matview.Registry, v *matview.View, epoch int64) {
	if epoch > 0 {
		v.InvalidateFrom(epoch)
		return
	}
	reg.Drop(v.Name)
}
