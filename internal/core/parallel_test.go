package core

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/testgen"
)

// bigSelectQuery builds an E1-style scan — select(base, close > cut) —
// over n positions, large enough that the cost model favors splitting.
func bigSelectQuery(t *testing.T, n int) (*algebra.Node, seq.Span) {
	t.Helper()
	positions := make([]seq.Pos, 0, n/2)
	for p := seq.Pos(1); p <= seq.Pos(n); p += 2 {
		positions = append(positions, p)
	}
	span := seq.NewSpan(1, seq.Pos(n))
	base, _ := mkStore(t, "s", storage.KindSparse, span, positions...)
	c, _ := expr.NewCol(base.Schema, "close")
	pred, _ := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(float64(n)/2)))
	sel, err := algebra.Select(base, pred)
	if err != nil {
		t.Fatal(err)
	}
	return sel, span
}

// TestParallelDecisionFromCostModel: on a large scan the optimizer's
// partition planner must pick K > 1 on its own — the decision comes out
// of the §4 cost model extension, not a forced override.
func TestParallelDecisionFromCostModel(t *testing.T) {
	q, span := bigSelectQuery(t, 16384)
	res := optimize(t, q, span, Options{Parallelism: 4})
	d := res.Parallel
	if !d.Parallel() {
		t.Fatalf("expected a parallel decision, got %s", d)
	}
	if d.Forced {
		t.Fatal("decision must come from the cost model, not ForceK")
	}
	if d.K != 4 {
		t.Errorf("K = %d, want 4 (cost model at maxWorkers=4)", d.K)
	}
	if d.ParallelCost >= d.SerialCost {
		t.Errorf("parallel cost %.2f not below serial %.2f", d.ParallelCost, d.SerialCost)
	}
	if len(d.Partitions) != d.K {
		t.Errorf("%d partitions for K=%d", len(d.Partitions), d.K)
	}
	if !strings.Contains(res.Explain(), "parallel: K=4") {
		t.Errorf("explain missing parallel line:\n%s", res.Explain())
	}
	// Tiny spans and Parallelism=1 must stay serial, with no explain line.
	small := optimize(t, q, seq.NewSpan(1, 100), Options{Parallelism: 4})
	if small.Parallel.Parallel() {
		t.Errorf("100-position span went parallel: %s", small.Parallel)
	}
	if strings.Contains(small.Explain(), "parallel:") {
		t.Errorf("serial explain mentions parallelism:\n%s", small.Explain())
	}
	serial := optimize(t, q, span, Options{Parallelism: 1})
	if serial.Parallel.Parallel() {
		t.Errorf("Parallelism=1 went parallel: %s", serial.Parallel)
	}
}

// TestParallelRunMatchesReference: the partitioned Run through the core
// API returns exactly the reference interpreter's answer.
func TestParallelRunMatchesReference(t *testing.T) {
	q, span := bigSelectQuery(t, 8192)
	res := checkAgainstReference(t, q, span, Options{Parallelism: 4})
	if !res.Parallel.Parallel() {
		t.Fatalf("expected the big scan to partition, got %s", res.Parallel)
	}
	// And agree with the serial engine run on the same physical plan.
	serial, err := exec.Run(res.Plan, res.RunSpan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !testgen.EntriesApproxEqual(got.Entries(), serial.Entries()) {
		t.Fatal("parallel Run differs from serial Run on the same plan")
	}
}

// TestParallelAggregateThroughCore: a windowed aggregate partitions with
// a non-empty halo and still matches the reference.
func TestParallelAggregateThroughCore(t *testing.T) {
	positions := make([]seq.Pos, 0, 8192)
	for p := seq.Pos(1); p <= 16384; p += 2 {
		positions = append(positions, p)
	}
	span := seq.NewSpan(1, 16384)
	base, _ := mkStore(t, "s", storage.KindSparse, span, positions...)
	agg, err := algebra.AggCol(base, algebra.AggSum, "close", algebra.Trailing(8), "sum")
	if err != nil {
		t.Fatal(err)
	}
	res := checkAgainstReference(t, agg, span, Options{Parallelism: 4})
	d := res.Parallel
	if !d.Parallel() {
		t.Fatalf("expected the windowed aggregate to partition, got %s", d)
	}
	if d.Halo.Lo > -7 {
		t.Errorf("trailing(8) halo = %s, want lo <= -7", d.Halo)
	}
}

// TestParallelAnalyzePartitions: EXPLAIN ANALYZE on a partitioned run
// reports one block per partition whose rows and pages sum to the whole.
func TestParallelAnalyzePartitions(t *testing.T) {
	q, span := bigSelectQuery(t, 8192)
	res := optimize(t, q, span, Options{Parallelism: 4})
	if !res.Parallel.Parallel() {
		t.Fatalf("expected a parallel decision, got %s", res.Parallel)
	}
	want, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, err := res.RunAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Partitions) != res.Parallel.K {
		t.Fatalf("%d partition records for K=%d", len(a.Partitions), res.Parallel.K)
	}
	rows := int64(0)
	var pages storage.StatsSnapshot
	for i, pm := range a.Partitions {
		if pm.Span != res.Parallel.Partitions[i] {
			t.Errorf("partition %d span %s, decision says %s", i, pm.Span, res.Parallel.Partitions[i])
		}
		rows += pm.Rows
		pages = pages.Add(pm.Pages)
	}
	if rows != int64(want.Count()) {
		t.Errorf("partition rows sum %d, output has %d", rows, want.Count())
	}
	if pages != a.GlobalPages {
		t.Errorf("partition pages %v do not sum to the global movement %v", pages, a.GlobalPages)
	}
	out := a.RenderStable()
	for _, frag := range []string{"parallel K=4", "partition 1/4", "partition 4/4"} {
		if !strings.Contains(out, frag) {
			t.Errorf("analyze output missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "time=") {
		t.Errorf("RenderStable leaked wall-clock times:\n%s", out)
	}
}

// TestParallelSpeedup is the acceptance benchmark: an E1-style scan over
// n >= 8000 positions at K=4 must beat the serial run by >= 2x on a
// machine with at least four cores. On smaller machines the workers
// time-share and no speedup is possible, so the test skips.
func TestParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores for a speedup bound, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing benchmark")
	}
	q, span := bigSelectQuery(t, 262144)
	serialRes := optimize(t, q, span, Options{Parallelism: 1})
	parRes := optimize(t, q, span, Options{Parallelism: 4})
	if !parRes.Parallel.Parallel() {
		t.Fatalf("expected a parallel decision, got %s", parRes.Parallel)
	}
	best := func(res *Result) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := res.Run(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	// Warm both paths once, then take the best of three.
	best(serialRes)
	serial := best(serialRes)
	par := best(parRes)
	speedup := float64(serial) / float64(par)
	t.Logf("serial %v, K=4 %v, speedup %.2fx", serial, par, speedup)
	if speedup < 2.0 {
		t.Errorf("K=4 speedup %.2fx below the 2x bound (serial %v, parallel %v)", speedup, serial, par)
	}
}
