package core

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/reopt"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/testgen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// skewedComposeQuery builds the deliberately-skewed-estimate workload:
// a compose whose left leg claims a density ≥10× below the truth. With
// the lie the optimizer prices stream-left (few probes of the right
// side) below lockstep; the real record stream then probes the right
// side per record, and mid-run monitoring sees page costs far above the
// pro-rated prediction.
//
// left: sparse store, a record at every other position of [0, n-1]
// (real density 0.5, claimed 0.002). right: dense store over the same
// span.
func skewedComposeQuery(t *testing.T, n int64, claimed float64) (*algebra.Node, storage.Store, storage.Store) {
	t.Helper()
	var les, res []seq.Entry
	for p := int64(0); p < n; p++ {
		if p%2 == 0 {
			les = append(les, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p))}})
		}
		res = append(res, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p) + 0.5)}})
	}
	span := seq.NewSpan(0, n-1)
	lm, err := seq.NewMaterialized(closeSchema, les)
	if err != nil {
		t.Fatal(err)
	}
	lm, err = lm.WithSpan(span)
	if err != nil {
		t.Fatal(err)
	}
	lst, err := storage.FromMaterialized(lm, storage.KindSparse, 8)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := seq.NewMaterialized(closeSchema, res)
	if err != nil {
		t.Fatal(err)
	}
	rst, err := storage.FromMaterialized(rm, storage.KindDense, 8)
	if err != nil {
		t.Fatal(err)
	}
	var leftSeq seq.Sequence = lst
	if claimed > 0 {
		leftSeq = &testgen.SkewedStore{Store: lst, Claimed: claimed}
	}
	left := algebra.Base("skew", leftSeq)
	right := algebra.Base("dense", rst)
	schema, err := algebra.ComposeSchema(left, right, "l", "r")
	if err != nil {
		t.Fatal(err)
	}
	lc, _ := expr.NewCol(schema, "l.close")
	rc, _ := expr.NewCol(schema, "r.close")
	pred, err := expr.NewBin(expr.OpLe, lc, rc)
	if err != nil {
		t.Fatal(err)
	}
	q, err := algebra.Compose(left, right, pred, "l", "r")
	if err != nil {
		t.Fatal(err)
	}
	return q, lst, rst
}

func pagesRead(sts ...storage.Store) int64 {
	var n int64
	for _, st := range sts {
		s := st.Stats().Snapshot()
		n += s.Pages()
	}
	return n
}

// TestReoptSwitchesOnSkewedEstimates is the skewed-estimate scenario of
// the issue: real density diverges ≥10× from the claimed estimate, the
// static plan picks the wrong compose strategy, and the reopt layer
// must (a) notice and switch mode mid-run, (b) produce exactly the
// static plan's output, and (c) spend no more page reads than the
// never-switched plan.
func TestReoptSwitchesOnSkewedEstimates(t *testing.T) {
	const n = 2000
	span := seq.NewSpan(0, n-1)

	// Static mispriced run.
	qs, lst, rst := skewedComposeQuery(t, n, 0.002)
	static := optimize(t, qs, span, Options{Verify: true})
	if !strings.Contains(static.Explain(), "compose-stream-left") {
		t.Fatalf("skewed estimate must trick the optimizer into stream-left:\n%s", static.Explain())
	}
	before := pagesRead(lst, rst)
	wantOut, err := static.Run()
	if err != nil {
		t.Fatal(err)
	}
	staticPages := pagesRead(lst, rst) - before

	// Oracle: the same data with truthful estimates picks lockstep.
	qo, _, _ := skewedComposeQuery(t, n, 0)
	oracle := optimize(t, qo, span, Options{Verify: true})
	if !strings.Contains(oracle.Explain(), "compose-lockstep") {
		t.Fatalf("truthful estimates should pick lockstep:\n%s", oracle.Explain())
	}
	oracleOut, err := oracle.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Adaptive run over the same skewed estimates.
	qa, lsta, rsta := skewedComposeQuery(t, n, 0.002)
	adaptive := optimize(t, qa, span, Options{Verify: true})
	before = pagesRead(lsta, rsta)
	out, rep, err := adaptive.RunReoptWith(reopt.Config{
		Enabled: true, CheckEvery: 256, Threshold: reopt.DefaultThreshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	adaptivePages := pagesRead(lsta, rsta) - before

	if len(rep.Switches) != 1 {
		t.Fatalf("want exactly one switch (noise splices must be declined), got:\n%s", rep.Render())
	}
	sw := rep.Switches[0]
	if !strings.Contains(sw.OldMode, "compose-stream-left") || !strings.Contains(sw.NewMode, "compose-lockstep") {
		t.Errorf("switch modes = %q -> %q, want stream-left -> lockstep", sw.OldMode, sw.NewMode)
	}
	if !testgen.EntriesApproxEqual(out.Entries(), wantOut.Entries()) {
		t.Errorf("adaptive output differs from static plan output")
	}
	if !testgen.EntriesApproxEqual(out.Entries(), oracleOut.Entries()) {
		t.Errorf("adaptive output differs from oracle output")
	}
	if adaptivePages > staticPages {
		t.Errorf("switched run read %d pages, static plan read %d — the switch must not cost pages",
			adaptivePages, staticPages)
	}
	t.Logf("pages: static=%d adaptive=%d; %s", staticPages, adaptivePages, rep.Render())
}

// TestReoptStaysPutOnAccurateEstimates: with truthful estimates and a
// sane threshold the monitor should keep its hands off the plan.
func TestReoptStaysPutOnAccurateEstimates(t *testing.T) {
	const n = 2000
	span := seq.NewSpan(0, n-1)
	q, _, _ := skewedComposeQuery(t, n, 0)
	res := optimize(t, q, span, Options{Verify: true})
	want, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := res.RunReoptWith(reopt.Config{Enabled: true, CheckEvery: 256, Threshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Switched() {
		t.Errorf("accurate estimates must not trigger a switch:\n%s", rep.Render())
	}
	if rep.Checkpoints == 0 {
		t.Error("monitored run recorded no checkpoints")
	}
	if !testgen.EntriesApproxEqual(out.Entries(), want.Entries()) {
		t.Error("monitored output differs from plain run")
	}
}

// TestReoptThroughRunHook: Options.Reopt.Enabled routes the ordinary
// Run() entry point through the monitored evaluator.
func TestReoptThroughRunHook(t *testing.T) {
	const n = 1200
	span := seq.NewSpan(0, n-1)
	q, _, _ := skewedComposeQuery(t, n, 0.002)
	res := optimize(t, q, span, Options{
		Verify: true,
		Reopt:  reopt.Config{Enabled: true, CheckEvery: 128, Threshold: reopt.DefaultThreshold},
	})
	out, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	qs, _, _ := skewedComposeQuery(t, n, 0.002)
	static := optimize(t, qs, span, Options{})
	want, err := static.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !testgen.EntriesApproxEqual(out.Entries(), want.Entries()) {
		t.Error("Run() under Options.Reopt differs from static run")
	}
}

// TestReoptForcedMidpointSegments: a forced trigger at an adversarial
// midpoint splices exactly there and the segment spans partition the
// run span.
func TestReoptForcedMidpointSegments(t *testing.T) {
	const n = 1000
	span := seq.NewSpan(0, n-1)
	q, _, _ := skewedComposeQuery(t, n, 0)
	res := optimize(t, q, span, Options{Verify: true})
	want, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	mid := seq.Pos(n / 2)
	out, rep, err := res.RunReoptWith(reopt.Config{
		Enabled: true, CheckEvery: 1 << 30, Threshold: 8, ForceAt: &mid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Switches) != 1 || !rep.Switches[0].Trigger.Forced {
		t.Fatalf("want exactly one forced switch, got:\n%s", rep.Render())
	}
	if at := rep.Switches[0].At; at < mid {
		t.Errorf("forced switch at %d, want ≥ %d", at, mid)
	}
	if len(rep.Segments) != 2 {
		t.Fatalf("want 2 segments, got %d:\n%s", len(rep.Segments), rep.Render())
	}
	if rep.Segments[0].Span.Start != span.Start || rep.Segments[1].Span.End != span.End ||
		rep.Segments[0].Span.End+1 != rep.Segments[1].Span.Start {
		t.Errorf("segments do not partition the span:\n%s", rep.Render())
	}
	if !testgen.EntriesApproxEqual(out.Entries(), want.Entries()) {
		t.Error("forced-splice output differs from static run")
	}
}

// TestReoptParallelTail: TailK forces the spliced remainder onto a
// span-partitioned parallel run; output must still match the static
// plan record for record.
func TestReoptParallelTail(t *testing.T) {
	const n = 2000
	span := seq.NewSpan(0, n-1)
	for _, k := range []int{2, 3, 7} {
		q, _, _ := skewedComposeQuery(t, n, 0.002)
		res := optimize(t, q, span, Options{Verify: true})
		want, err := res.Run()
		if err != nil {
			t.Fatal(err)
		}
		out, rep, err := res.RunReoptWith(reopt.Config{
			Enabled: true, CheckEvery: 256, TailK: k,
		})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if !rep.Switched() {
			t.Fatalf("K=%d: no switch", k)
		}
		last := rep.Segments[len(rep.Segments)-1]
		if last.K != k {
			t.Errorf("K=%d: tail ran with K=%d:\n%s", k, last.K, rep.Render())
		}
		if !testgen.EntriesApproxEqual(out.Entries(), want.Entries()) {
			t.Errorf("K=%d: partitioned tail output differs from static run", k)
		}
	}
}

// TestAnalyzeReoptGolden pins the EXPLAIN ANALYZE rendering of a
// monitored run with one forced decision point: the reopt lines must
// name the trigger node, the observed and predicted costs, and the
// old→new mode.
func TestAnalyzeReoptGolden(t *testing.T) {
	const n = 2000
	span := seq.NewSpan(0, n-1)
	q, _, _ := skewedComposeQuery(t, n, 0.002)
	mid := seq.Pos(n / 2)
	res := optimize(t, q, span, Options{
		Verify: true,
		Reopt:  reopt.Config{Enabled: true, CheckEvery: 1 << 30, Threshold: 8, ForceAt: &mid},
	})
	a, err := res.RunAnalyzeReopt()
	if err != nil {
		t.Fatal(err)
	}
	got := a.RenderStable() + "\n"
	path := filepath.Join("testdata", "reopt_analyze.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("explain analyze reopt output drifted\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	for _, needle := range []string{"reopt:", "switch at pos=", "trigger=", "observed=", "predicted=", "forced", "->"} {
		if !strings.Contains(got, needle) {
			t.Errorf("rendered analysis missing %q:\n%s", needle, got)
		}
	}
}

// calObservation fabricates a finalized metrics node whose exclusive
// time follows exact per-unit costs, mirroring the synthetic fixture of
// the reopt package's own calibration tests.
func calObservation(rng *rand.Rand, seqNs, randNs, recNs, cacheNs float64) *exec.NodeMetrics {
	seqPages := int64(rng.Intn(200) + 1)
	randPages := int64(rng.Intn(50))
	rows := int64(rng.Intn(2000))
	cacheOps := int64(rng.Intn(20000))
	ns := float64(seqPages)*seqNs + float64(randPages)*randNs +
		float64(rows)*recNs + float64(cacheOps)*cacheNs
	return &exec.NodeMetrics{
		Label:     "synthetic",
		Pages:     storage.StatsSnapshot{SeqPages: seqPages, RandPages: randPages},
		HasPages:  true,
		ScanRows:  rows,
		ScanTime:  time.Duration(ns),
		CachePuts: cacheOps,
	}
}

// Options.Calibration swaps in the regressed constants once the store
// has enough observations; an unready store and an explicit Params both
// leave it inert.
func TestOptionsCalibrationOverridesParams(t *testing.T) {
	def := DefaultCostParams()
	cal := &reopt.Calibration{}
	if got := (Options{Calibration: cal}).params(); got != def {
		t.Errorf("unready calibration changed params:\n got %+v\nwant %+v", got, def)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		cal.Observe(calObservation(rng, 1000, 9000, 20, 5))
	}
	k, ok := cal.Constants()
	if !ok {
		t.Fatal("constants not derivable")
	}
	p := (Options{Calibration: cal}).params()
	if p.RandPage != k.RandPage || p.PerRecord != k.PerRecord || p.CacheAccess != k.CacheAccess {
		t.Errorf("calibrated constants not applied: params %+v, constants %+v", p, k)
	}
	if p.RandPage == def.RandPage {
		t.Errorf("RandPage stayed at the default %g despite 9x ground truth", def.RandPage)
	}
	if p.SeqPage != def.SeqPage || p.Pred != def.Pred || p.ParallelStartup != def.ParallelStartup {
		t.Errorf("calibration touched constants it does not regress: %+v", p)
	}
	custom := def
	custom.RandPage = 42
	if got := (Options{Params: &custom, Calibration: cal}).params(); got.RandPage != 42 {
		t.Errorf("explicit Params lost to calibration: %+v", got)
	}
}
