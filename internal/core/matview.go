package core

import (
	"repro/internal/algebra"
	"repro/internal/canon"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/matview"
	"repro/internal/meta"
	"repro/internal/seq"
)

// tryView gives the materialized-view registry a chance to answer the
// block rooted at n (§3.4–3.5: a materialized derived sequence is just
// another cached access path). When a registered view subsumes the block
// — equal canonical form modulo a residual select and a column
// permutation, span covering the block's access span — the builder
// prices "scan view + residual ops" like any other candidate and adopts
// it per access mode wherever it beats recomputation. Adopted
// substitutions are recorded for EXPLAIN and the matview/* planlint
// invariants; a view that matched but lost on cost (or span) records a
// miss on its counters.
func (b *builder) tryView(n *algebra.Node, m *meta.NodeMeta, cand *candidate) (*candidate, error) {
	reg := b.opts.Views
	if reg == nil || reg.Len() == 0 {
		return cand, nil
	}
	// Substitution slots a span-restricted scan in for recomputation, so
	// it is sound only under span propagation; a bare base scan is
	// already an access path.
	if b.opts.DisableSpanPropagation {
		return cand, nil
	}
	if n.Kind == algebra.KindBase || n.Kind == algebra.KindConst {
		return cand, nil
	}
	c, err := canon.Canonicalize(n)
	if err != nil {
		// A block shape the canon does not cover is simply not matchable.
		return cand, nil
	}
	match, ok := reg.Match(c, m.AccessSpan)
	if !ok {
		return cand, nil
	}
	v := match.View
	access := m.AccessSpan
	partial := match.Partial(access)
	if partial && (cand.stream == nil || !access.Bounded()) {
		// A partial match splices the recompute plan in for the uncovered
		// tail; without one (or with an unbounded need) there is nothing
		// sound to splice.
		return cand, nil
	}
	covered := match.Covered

	// Price the view scan like a base store (§4.1.1): a restricted scan
	// touches the restricted fraction of the pages. A partial match scans
	// only the covered prefix.
	scanSpan := access
	if partial {
		scanSpan = covered
	}
	plan := exec.Plan(exec.NewLeaf("matview:"+v.Name, v.Store, scanSpan))
	info := v.Store.Info()
	ac := v.Store.AccessCosts()
	frac := 1.0
	if full := info.Span.Len(); full > 0 && info.Span.Bounded() && scanSpan.Bounded() {
		frac = float64(scanSpan.Len()) / float64(full)
		if frac > 1 {
			frac = 1
		}
	}
	records := 0.0
	if scanSpan.Bounded() && scanSpan.Len() > 0 {
		records = info.Density * float64(scanSpan.Len())
	}
	cost := Cost{
		Stream:   finite(float64(ac.StreamPages) * frac * b.params.SeqPage),
		ProbePer: finite(float64(ac.ProbePages) * b.params.RandPage),
	}
	b.note(plan, cost)

	if len(match.Residual) > 0 {
		var pred expr.Expr
		for _, e := range match.Residual {
			if pred, err = expr.And(pred, e); err != nil {
				return nil, err
			}
		}
		plan = exec.NewSelect(plan, pred)
		cost = Cost{
			Stream:   finite(cost.Stream + records*b.params.Pred),
			ProbePer: finite(cost.ProbePer + b.params.Pred),
		}
		b.note(plan, cost)
	}

	if restore, err2 := restoreColumns(plan, match.ColMap, n.Schema); err2 != nil {
		return nil, err2
	} else if restore != nil {
		plan = restore
		cost = Cost{
			Stream:   finite(cost.Stream + records*b.params.PerRecord),
			ProbePer: finite(cost.ProbePer + b.params.PerRecord),
		}
		b.note(plan, cost)
	}

	if partial {
		// Serve the covered prefix from the view and recompute the gap
		// with the plan the builder already has for this block: its leaf
		// access spans were derived for all of access ⊇ gap, so scanning
		// it over the gap alone is sound. The stream cost of the gap side
		// scales with the uncovered fraction of the span.
		gap := seq.NewSpan(covered.End+1, access.End)
		concat, err := exec.NewConcat(plan, cand.stream, covered.End)
		if err != nil {
			return nil, err
		}
		gapFrac := float64(gap.Len()) / float64(access.Len())
		coverFrac := 1 - gapFrac
		ccost := Cost{
			Stream:   finite(cost.Stream + gapFrac*cand.cost.Stream),
			ProbePer: finite(coverFrac*cost.ProbePer + gapFrac*cand.cost.ProbePer),
		}
		b.note(concat, ccost)
		sub := &matview.Substitution{
			View: v, Block: n, Need: access, Covered: covered,
			Residual: match.Residual, ColMap: match.ColMap,
			ViewCost: ccost.Stream, RecomputeCost: cand.cost.Stream,
		}
		if ccost.Stream < cand.cost.Stream {
			sub.Stream = true
			cand.stream = concat
			cand.cost.Stream = ccost.Stream
		}
		if ccost.ProbePer < cand.cost.ProbePer {
			sub.Probed = true
			if cand.probed != nil {
				if pc, err := exec.NewConcat(plan, cand.probed, covered.End); err == nil {
					cand.probed = pc
					cand.cost.ProbePer = ccost.ProbePer
				} else {
					sub.Probed = false
				}
			} else {
				sub.Probed = false
			}
		}
		if sub.Stream || sub.Probed {
			v.Hit()
			b.subs = append(b.subs, sub)
		} else {
			v.Miss()
		}
		return cand, nil
	}

	sub := &matview.Substitution{
		View: v, Block: n, Need: access, Covered: access,
		Residual: match.Residual, ColMap: match.ColMap,
		ViewCost: cost.Stream, RecomputeCost: cand.cost.Stream,
	}
	if cost.Stream < cand.cost.Stream {
		sub.Stream = true
		cand.stream = plan
		cand.cost.Stream = cost.Stream
	}
	if cost.ProbePer < cand.cost.ProbePer {
		sub.Probed = true
		cand.probed = plan
		cand.cost.ProbePer = cost.ProbePer
	}
	if sub.Stream || sub.Probed {
		v.Hit()
		b.subs = append(b.subs, sub)
	} else {
		v.Miss()
	}
	return cand, nil
}

// restoreColumns wraps the view-scan plan in a projection restoring the
// block's column order and names (block column i is stored column
// colMap[i]). It returns nil when the stored layout already matches.
func restoreColumns(plan exec.Plan, colMap []int, want *seq.Schema) (exec.Plan, error) {
	have := plan.Info().Schema
	identity := true
	for i, j := range colMap {
		if i != j || have.Field(i).Name != want.Field(i).Name {
			identity = false
			break
		}
	}
	if identity {
		return nil, nil
	}
	items := make([]exec.ProjExpr, len(colMap))
	for i, j := range colMap {
		c, err := expr.ColAt(have, j)
		if err != nil {
			return nil, err
		}
		items[i] = exec.ProjExpr{Expr: c, Name: want.Field(i).Name}
	}
	return exec.NewProject(plan, items)
}
