package core

import (
	"repro/internal/algebra"
	"repro/internal/canon"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/matview"
	"repro/internal/meta"
	"repro/internal/seq"
)

// tryView gives the materialized-view registry a chance to answer the
// block rooted at n (§3.4–3.5: a materialized derived sequence is just
// another cached access path). When a registered view subsumes the block
// — equal canonical form modulo a residual select and a column
// permutation, span covering the block's access span — the builder
// prices "scan view + residual ops" like any other candidate and adopts
// it per access mode wherever it beats recomputation. Adopted
// substitutions are recorded for EXPLAIN and the matview/* planlint
// invariants; a view that matched but lost on cost (or span) records a
// miss on its counters.
func (b *builder) tryView(n *algebra.Node, m *meta.NodeMeta, cand *candidate) (*candidate, error) {
	reg := b.opts.Views
	if reg == nil || reg.Len() == 0 {
		return cand, nil
	}
	// Substitution slots a span-restricted scan in for recomputation, so
	// it is sound only under span propagation; a bare base scan is
	// already an access path.
	if b.opts.DisableSpanPropagation {
		return cand, nil
	}
	if n.Kind == algebra.KindBase || n.Kind == algebra.KindConst {
		return cand, nil
	}
	c, err := canon.Canonicalize(n)
	if err != nil {
		// A block shape the canon does not cover is simply not matchable.
		return cand, nil
	}
	match, ok := reg.Match(c, m.AccessSpan)
	if !ok {
		return cand, nil
	}
	v := match.View
	access := m.AccessSpan

	// Price the view scan like a base store (§4.1.1): a restricted scan
	// touches the restricted fraction of the pages.
	plan := exec.Plan(exec.NewLeaf("matview:"+v.Name, v.Store, access))
	info := v.Store.Info()
	ac := v.Store.AccessCosts()
	frac := 1.0
	if full := info.Span.Len(); full > 0 && info.Span.Bounded() && access.Bounded() {
		frac = float64(access.Len()) / float64(full)
		if frac > 1 {
			frac = 1
		}
	}
	records := 0.0
	if access.Bounded() && access.Len() > 0 {
		records = info.Density * float64(access.Len())
	}
	cost := Cost{
		Stream:   finite(float64(ac.StreamPages) * frac * b.params.SeqPage),
		ProbePer: finite(float64(ac.ProbePages) * b.params.RandPage),
	}
	b.note(plan, cost)

	if len(match.Residual) > 0 {
		var pred expr.Expr
		for _, e := range match.Residual {
			if pred, err = expr.And(pred, e); err != nil {
				return nil, err
			}
		}
		plan = exec.NewSelect(plan, pred)
		cost = Cost{
			Stream:   finite(cost.Stream + records*b.params.Pred),
			ProbePer: finite(cost.ProbePer + b.params.Pred),
		}
		b.note(plan, cost)
	}

	if restore, err2 := restoreColumns(plan, match.ColMap, n.Schema); err2 != nil {
		return nil, err2
	} else if restore != nil {
		plan = restore
		cost = Cost{
			Stream:   finite(cost.Stream + records*b.params.PerRecord),
			ProbePer: finite(cost.ProbePer + b.params.PerRecord),
		}
		b.note(plan, cost)
	}

	sub := &matview.Substitution{
		View: v, Block: n, Need: access,
		Residual: match.Residual, ColMap: match.ColMap,
		ViewCost: cost.Stream, RecomputeCost: cand.cost.Stream,
	}
	if cost.Stream < cand.cost.Stream {
		sub.Stream = true
		cand.stream = plan
		cand.cost.Stream = cost.Stream
	}
	if cost.ProbePer < cand.cost.ProbePer {
		sub.Probed = true
		cand.probed = plan
		cand.cost.ProbePer = cost.ProbePer
	}
	if sub.Stream || sub.Probed {
		v.Hit()
		b.subs = append(b.subs, sub)
	} else {
		v.Miss()
	}
	return cand, nil
}

// restoreColumns wraps the view-scan plan in a projection restoring the
// block's column order and names (block column i is stored column
// colMap[i]). It returns nil when the stored layout already matches.
func restoreColumns(plan exec.Plan, colMap []int, want *seq.Schema) (exec.Plan, error) {
	have := plan.Info().Schema
	identity := true
	for i, j := range colMap {
		if i != j || have.Field(i).Name != want.Field(i).Name {
			identity = false
			break
		}
	}
	if identity {
		return nil, nil
	}
	items := make([]exec.ProjExpr, len(colMap))
	for i, j := range colMap {
		c, err := expr.ColAt(have, j)
		if err != nil {
			return nil, err
		}
		items[i] = exec.ProjExpr{Expr: c, Name: want.Field(i).Name}
	}
	return exec.NewProject(plan, items)
}
