package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/matview"
	"repro/internal/parallel"
	"repro/internal/reopt"
	"repro/internal/seq"
	"repro/internal/storage"
)

// Analysis is the outcome of an EXPLAIN ANALYZE run: the query output
// together with the per-node execution metrics of the instrumented plan
// and the global page-access deltas of the run, next to the optimizer's
// predictions. See OBSERVABILITY.md for how to read it.
type Analysis struct {
	// Output is the materialized query result (analysis runs the real
	// query, it does not simulate it).
	Output *seq.Materialized
	// Root is the metrics tree mirroring the executed plan.
	Root *exec.NodeMetrics
	// Span is the evaluated position range.
	Span seq.Span
	// Elapsed is the wall-clock time of the run (instrumented; per-node
	// timers add overhead, so compare against predictions, not against
	// uninstrumented runs).
	Elapsed time.Duration
	// Predicted is the optimizer's root estimate for the plan.
	Predicted Cost
	// GlobalPages is the movement of the shared storage counters over
	// the run, summed across the plan's base stores. By construction it
	// equals Root.TotalPages() when nothing else touches the stores
	// concurrently.
	GlobalPages storage.StatsSnapshot
	// Params are the cost-model weights, used to convert page counters
	// into cost units for the predicted-vs-actual comparison.
	Params CostParams
	// Decision is the partition planner's choice the run executed under
	// (nil or serial for single-worker runs).
	Decision *parallel.Decision
	// Partitions holds the per-worker execution records of a partitioned
	// run: sub-span, rows emitted, exact page attribution, wall time.
	// Empty for serial runs. The merged Root sums these workers' metric
	// shards.
	Partitions []parallel.PartitionMetrics
	// Views snapshots the materialized-view registry counters after the
	// run — per-view hits, misses, and cumulative page accesses. Empty
	// when the plan was built without a registry.
	Views []matview.Counters
	// Reopt is the mid-run reoptimization record of the run: checkpoint
	// count, splice decisions (trigger node, observed vs. predicted,
	// old→new mode) and executed segments. Nil for unmonitored runs
	// (see Result.RunAnalyzeReopt).
	Reopt *reopt.Report
	// Batches and BatchRows count the batches and valid rows the run's
	// root collector consumed; both zero for scalar runs, which also
	// keeps the render byte-identical to a build without the batch
	// subsystem.
	Batches   int64
	BatchRows int64
	// Intern totals the run's value-intern hit/miss counters, summed
	// across worker-private tables for partitioned runs.
	Intern seq.InternStats
}

// RunAnalyze executes the stream plan with per-node instrumentation and
// returns the output together with the metrics. The plan is deep-copied
// before wrapping, so the Result stays reusable; operator caches in the
// instrumented copy are fresh, so cache counters describe this run only.
func (r *Result) RunAnalyze() (*Analysis, error) {
	if !r.RunSpan.Bounded() && !r.RunSpan.IsEmpty() {
		return nil, fmt.Errorf("core: query output span %v is unbounded; request a bounded range", r.RunSpan)
	}
	if r.opts.Reopt.Enabled {
		return r.RunAnalyzeReopt()
	}
	pred := r.predFn()
	var bctx *seq.BatchCtx
	if r.opts.Batch.Enabled() {
		bctx = seq.NewBatchCtx()
	}
	if r.Parallel.Parallel() {
		start := time.Now()
		var out *seq.Materialized
		var root *exec.NodeMetrics
		var parts []parallel.PartitionMetrics
		var err error
		if bctx != nil {
			out, root, parts, err = parallel.RunAnalyzeBatch(r.Plan, r.RunSpan, r.Parallel, pred, bctx)
		} else {
			out, root, parts, err = parallel.RunAnalyze(r.Plan, r.RunSpan, r.Parallel, pred)
		}
		elapsed := time.Since(start)
		if err != nil {
			return nil, err
		}
		// Each worker metered private store forks, so the per-partition
		// page counters are exact and their sum is the run's global page
		// movement.
		var global storage.StatsSnapshot
		for _, pm := range parts {
			global = global.Add(pm.Pages)
		}
		a := &Analysis{
			Output:      out,
			Root:        root,
			Span:        r.RunSpan,
			Elapsed:     elapsed,
			Predicted:   r.Cost,
			GlobalPages: global,
			Params:      r.Params,
			Decision:    r.Parallel,
			Partitions:  parts,
			Views:       r.viewCounters(),
		}
		a.absorbBatch(bctx)
		return a, nil
	}
	instr, root := exec.Instrument(r.Plan, pred)
	stores := exec.PlanStores(r.Plan)
	before := make([]storage.StatsSnapshot, len(stores))
	for i, st := range stores {
		before[i] = st.Stats().Snapshot()
	}
	start := time.Now()
	var out *seq.Materialized
	var err error
	if bctx != nil {
		out, err = exec.RunBatch(instr, r.RunSpan, bctx)
	} else {
		out, err = exec.Run(instr, r.RunSpan)
	}
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	root.Finalize()
	var global storage.StatsSnapshot
	for i, st := range stores {
		global = global.Add(st.Stats().Snapshot().Sub(before[i]))
	}
	a := &Analysis{
		Output:      out,
		Root:        root,
		Span:        r.RunSpan,
		Elapsed:     elapsed,
		Predicted:   r.Cost,
		GlobalPages: global,
		Params:      r.Params,
		Views:       r.viewCounters(),
	}
	a.absorbBatch(bctx)
	return a, nil
}

// absorbBatch copies a completed batch context's run counters into the
// analysis (no-op for scalar runs, keeping their reports unchanged).
func (a *Analysis) absorbBatch(ctx *seq.BatchCtx) {
	if ctx == nil {
		return
	}
	a.Batches = ctx.Batches
	a.BatchRows = ctx.Rows
	a.Intern = ctx.Intern.Stats()
}

// viewCounters snapshots the registry's per-view counters (nil when the
// plan was built without a registry).
func (r *Result) viewCounters() []matview.Counters {
	if r.Views == nil {
		return nil
	}
	views := r.Views.Views()
	out := make([]matview.Counters, len(views))
	for i, v := range views {
		out[i] = v.Counters()
	}
	return out
}

// PageCost converts a page-access snapshot into cost-model units
// (sequential-page reads), weighting random accesses by the configured
// random-vs-sequential gap. This is the actual-side number directly
// comparable to a predicted stream cost's I/O component.
func (a *Analysis) PageCost(s storage.StatsSnapshot) float64 {
	return float64(s.SeqPages)*a.Params.SeqPage + float64(s.RandPages)*a.Params.RandPage
}

// Render returns the EXPLAIN ANALYZE report: a two-line summary followed
// by the plan tree, one operator per line, each carrying the optimizer's
// prediction and the node's actual counters.
func (a *Analysis) Render() string { return a.render(true) }

// RenderStable is Render without wall-clock times — byte-stable across
// runs, for golden tests and diffing.
func (a *Analysis) RenderStable() string { return a.render(false) }

func (a *Analysis) render(times bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "analyze span=%s rows=%d", a.Span, a.Output.Count())
	if times {
		fmt.Fprintf(&b, " elapsed=%s", a.Elapsed.Round(time.Microsecond))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "predicted stream cost %.2f | actual page cost %.2f (%s)\n",
		a.Predicted.Stream, a.PageCost(a.GlobalPages), a.GlobalPages)
	// Batch-plane summary: only vectorized runs print it, so scalar
	// reports stay byte-identical to builds without the subsystem.
	if a.Batches > 0 {
		fmt.Fprintf(&b, "batch: batches=%d rows/batch=%.1f", a.Batches, float64(a.BatchRows)/float64(a.Batches))
		in := a.Intern
		if in.StrHits+in.StrMisses > 0 {
			fmt.Fprintf(&b, " intern[str hits=%d misses=%d", in.StrHits, in.StrMisses)
			if in.RecHits+in.RecMisses > 0 {
				fmt.Fprintf(&b, " rec hits=%d misses=%d", in.RecHits, in.RecMisses)
			}
			b.WriteByte(']')
		}
		b.WriteByte('\n')
	}
	if len(a.Partitions) > 0 {
		fmt.Fprintf(&b, "parallel K=%d halo=%s cost %.2f vs serial %.2f\n",
			len(a.Partitions), a.Decision.Halo, a.Decision.ParallelCost, a.Decision.SerialCost)
		for i, pm := range a.Partitions {
			fmt.Fprintf(&b, "  partition %d/%d span=%s rows=%d pages=%dseq+%drand cost=%.2f",
				i+1, len(a.Partitions), pm.Span, pm.Rows,
				pm.Pages.SeqPages, pm.Pages.RandPages, a.PageCost(pm.Pages))
			if times {
				fmt.Fprintf(&b, " time=%s", pm.Elapsed.Round(time.Microsecond))
			}
			b.WriteByte('\n')
		}
	}
	if a.Reopt != nil {
		b.WriteString(a.Reopt.Render())
	}
	if a.Root == nil {
		return strings.TrimRight(b.String(), "\n")
	}
	a.Root.Walk(func(n *exec.NodeMetrics, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label)
		b.WriteString("  pred[")
		if n.Predicted.Known {
			first := true
			if n.Predicted.Stream != 0 || n.Predicted.ProbePer == 0 {
				fmt.Fprintf(&b, "stream=%.2f", n.Predicted.Stream)
				first = false
			}
			if n.Predicted.ProbePer != 0 {
				if !first {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "probe/=%.2f", n.Predicted.ProbePer)
			}
		} else {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "] act[rows=%d", n.Rows())
		if n.ScanCalls > 0 {
			fmt.Fprintf(&b, " scans=%d", n.ScanCalls)
		}
		if n.Batches > 0 {
			fmt.Fprintf(&b, " batches=%d rows/batch=%.1f", n.Batches, float64(n.BatchRows)/float64(n.Batches))
		}
		if n.ProbeCalls > 0 {
			fmt.Fprintf(&b, " probes=%d nulls=%d", n.ProbeCalls, n.ProbeNulls)
		}
		if n.HasPages {
			fmt.Fprintf(&b, " pages=%dseq+%drand cost=%.2f",
				n.Pages.SeqPages, n.Pages.RandPages, a.PageCost(n.Pages))
			// Disk-backed leaves also carry buffer-pool traffic: the
			// split between cached and real I/O behind the page touches.
			// Memory-backed stores never set these, keeping the render
			// byte-stable for existing plans.
			if n.Pages.HasPool() {
				fmt.Fprintf(&b, " pool=%dhit+%dmiss", n.Pages.PoolHits, n.Pages.PoolMisses)
				if n.Pages.PoolEvictions > 0 || n.Pages.DirtyWrites > 0 {
					fmt.Fprintf(&b, " evict=%d wb=%d", n.Pages.PoolEvictions, n.Pages.DirtyWrites)
				}
			}
		}
		b.WriteByte(']')
		if n.HasCache {
			fmt.Fprintf(&b, " cache[cap=%d peak=%d puts=%d evict=%d",
				n.CacheCap, n.CachePeak, n.CachePuts, n.CacheEvictions)
			if n.CacheHits+n.CacheMisses > 0 {
				fmt.Fprintf(&b, " hits=%d misses=%d", n.CacheHits, n.CacheMisses)
			}
			b.WriteByte(']')
		}
		if times {
			fmt.Fprintf(&b, " time=%s", (n.ScanTime + n.ProbeTime).Round(time.Microsecond))
		}
		b.WriteByte('\n')
	})
	for _, v := range a.Views {
		fmt.Fprintf(&b, "view %q span=%s records=%d density=%.3f hits=%d misses=%d pages[%s]\n",
			v.Name, v.Span, v.Records, v.Density, v.Hits, v.Misses, v.Pages)
	}
	return strings.TrimRight(b.String(), "\n")
}
