package core

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/matview"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/testgen"
)

// wideBase builds a dense base with enough pages that recomputing a
// selective filter costs visibly more than scanning a small view.
func wideBase(t *testing.T, name string) *algebra.Node {
	t.Helper()
	positions := make([]seq.Pos, 0, 4000)
	for p := seq.Pos(1); p <= 4000; p++ {
		positions = append(positions, p)
	}
	base, _ := mkStore(t, name, storage.KindDense, seq.EmptySpan, positions...)
	return base
}

func selGt(t *testing.T, in *algebra.Node, threshold float64) *algebra.Node {
	t.Helper()
	c, err := expr.NewCol(in.Schema, "close")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(threshold)))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := algebra.Select(in, pred)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

// registerResult runs the optimized query and registers its output as a
// view over the rewritten tree — the shape future queries are matched in.
func registerResult(t *testing.T, reg *matview.Registry, name string, res *Result) *matview.View {
	t.Helper()
	out, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Register(name, res.Rewritten, out, res.RunSpan)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// A repeated query is answered from the view: substitution appears in
// EXPLAIN, costs predict the view as the winner, and the output is
// identical record for record.
func TestViewSubstitutionExact(t *testing.T) {
	span := seq.NewSpan(1, 4000)
	reg := matview.New()

	q1 := selGt(t, wideBase(t, "s"), 3900)
	cold := optimize(t, q1, span, Options{Verify: true})
	registerResult(t, reg, "hot", cold)

	q2 := selGt(t, wideBase(t, "s"), 3900)
	warm := optimize(t, q2, span, Options{Verify: true, Views: reg})
	if len(warm.Substitutions) != 1 {
		t.Fatalf("expected 1 substitution, got %d\n%s", len(warm.Substitutions), warm.Explain())
	}
	sub := warm.Substitutions[0]
	if !sub.Stream {
		t.Fatalf("stream mode did not adopt the view:\n%s", warm.Explain())
	}
	if sub.ViewCost >= sub.RecomputeCost {
		t.Fatalf("cost model did not predict the view as winner: view %.2f vs recompute %.2f",
			sub.ViewCost, sub.RecomputeCost)
	}
	if !strings.Contains(warm.Explain(), `matview: select block ← scan "hot"`) {
		t.Fatalf("EXPLAIN does not show the substitution:\n%s", warm.Explain())
	}

	coldOut, err := cold.Run()
	if err != nil {
		t.Fatal(err)
	}
	warmOut, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !testgen.EntriesApproxEqual(warmOut.Entries(), coldOut.Entries()) {
		t.Fatalf("view-backed run differs from recomputation\nwarm %v\ncold %v",
			warmOut.Entries(), coldOut.Entries())
	}
	if hits := sub.View.Hits(); hits != 1 {
		t.Fatalf("view hits = %d, want 1", hits)
	}
}

// A query with an extra conjunct is answered from the view plus a
// residual filter.
func TestViewSubstitutionResidual(t *testing.T) {
	span := seq.NewSpan(1, 4000)
	reg := matview.New()

	cold := optimize(t, selGt(t, wideBase(t, "s"), 3000), span, Options{Verify: true})
	registerResult(t, reg, "wide", cold)

	q := selGt(t, wideBase(t, "s"), 3000)
	c, err := expr.NewCol(q.Schema, "close")
	if err != nil {
		t.Fatal(err)
	}
	upper, err := expr.NewBin(expr.OpLt, c, expr.Literal(seq.Float(3500)))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := algebra.Select(q, upper)
	if err != nil {
		t.Fatal(err)
	}
	warm := optimize(t, narrow, span, Options{Verify: true, Views: reg})
	var sub *matview.Substitution
	for _, s := range warm.Substitutions {
		if s.Stream {
			sub = s
		}
	}
	if sub == nil {
		t.Fatalf("no stream substitution adopted:\n%s", warm.Explain())
	}
	if len(sub.Residual) != 1 {
		t.Fatalf("want 1 residual conjunct, got %v", sub.Residual)
	}

	warmOut, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.EvalRange(narrow, span)
	if err != nil {
		t.Fatal(err)
	}
	if !testgen.EntriesApproxEqual(warmOut.Entries(), want) {
		t.Fatalf("residual-filtered view run differs from reference\ngot  %v\nwant %v",
			warmOut.Entries(), want)
	}
}

// A view covering only a prefix of the requested range is matched
// partially: the plan concatenates the view scan over the covered prefix
// with a recomputation of the gap, and the output still matches a full
// recomputation record for record.
func TestViewSpanPrefixIsPartialMatch(t *testing.T) {
	reg := matview.New()
	cold := optimize(t, selGt(t, wideBase(t, "s"), 3900), seq.NewSpan(1, 2000), Options{})
	v := registerResult(t, reg, "short", cold)

	need := seq.NewSpan(1, 4000)
	warm := optimize(t, selGt(t, wideBase(t, "s"), 3900), need, Options{Verify: true, Views: reg})
	if len(warm.Substitutions) != 1 {
		t.Fatalf("expected 1 partial substitution, got %d\n%s", len(warm.Substitutions), warm.Explain())
	}
	sub := warm.Substitutions[0]
	if sub.Covered != seq.NewSpan(1, 2000) || sub.Need != need {
		t.Fatalf("substitution covered=%v need=%v, want covered [1, 2000] of [1, 4000]", sub.Covered, sub.Need)
	}
	if !sub.Stream {
		t.Fatalf("stream mode did not adopt the partial match:\n%s", warm.Explain())
	}
	if !strings.Contains(warm.Explain(), "concat(@2000)") {
		t.Fatalf("plan does not splice at the view boundary:\n%s", warm.Explain())
	}
	if v.Hits() == 0 {
		t.Fatal("adopted partial match did not record a hit")
	}

	warmOut, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.EvalRange(selGt(t, wideBase(t, "s"), 3900), need)
	if err != nil {
		t.Fatal(err)
	}
	if !testgen.EntriesApproxEqual(warmOut.Entries(), want) {
		t.Fatalf("partial-match run differs from recomputation\ngot  %v\nwant %v",
			warmOut.Entries(), want)
	}
}

// A view that does not even cover the start of the requested range can
// serve no prefix; it is not used, and the miss is counted.
func TestViewSpanShortIsMiss(t *testing.T) {
	reg := matview.New()
	cold := optimize(t, selGt(t, wideBase(t, "s"), 3900), seq.NewSpan(100, 2000), Options{})
	v := registerResult(t, reg, "short", cold)

	warm := optimize(t, selGt(t, wideBase(t, "s"), 3900), seq.NewSpan(1, 4000), Options{Verify: true, Views: reg})
	if len(warm.Substitutions) != 0 {
		t.Fatalf("non-prefix view was substituted:\n%s", warm.Explain())
	}
	if v.Misses() == 0 {
		t.Fatal("span-failing match did not record a miss")
	}
}

// EXPLAIN ANALYZE surfaces per-view counters, and the warm run touches
// fewer pages than the cold run.
func TestAnalyzeViewCounters(t *testing.T) {
	span := seq.NewSpan(1, 4000)
	reg := matview.New()
	cold := optimize(t, selGt(t, wideBase(t, "s"), 3900), span, Options{})
	registerResult(t, reg, "hot", cold)

	coldA, err := optimize(t, selGt(t, wideBase(t, "s"), 3900), span, Options{}).RunAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	warm := optimize(t, selGt(t, wideBase(t, "s"), 3900), span, Options{Views: reg})
	warmA, err := warm.RunAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(warmA.Views) != 1 {
		t.Fatalf("analysis has %d view counter rows, want 1", len(warmA.Views))
	}
	vc := warmA.Views[0]
	if vc.Hits != 1 {
		t.Fatalf("view hits = %d, want 1", vc.Hits)
	}
	if vc.Pages.Pages() == 0 {
		t.Fatal("view store pages were not counted")
	}
	if warmA.GlobalPages.Pages() >= coldA.GlobalPages.Pages() {
		t.Fatalf("warm run pages (%d) not below cold run pages (%d)",
			warmA.GlobalPages.Pages(), coldA.GlobalPages.Pages())
	}
	if !strings.Contains(warmA.RenderStable(), `view "hot"`) {
		t.Fatalf("render lacks view counters:\n%s", warmA.RenderStable())
	}
}

// Parallel partitioned runs work unchanged over a view-backed plan: the
// view store forks stats per worker like a base store.
func TestViewWithParallelRun(t *testing.T) {
	span := seq.NewSpan(1, 4000)
	reg := matview.New()
	cold := optimize(t, selGt(t, wideBase(t, "s"), 1000), span, Options{})
	registerResult(t, reg, "big", cold)

	forceK := 4
	warm := optimize(t, selGt(t, wideBase(t, "s"), 1000), span, Options{
		Views: reg, Parallelism: forceK, Verify: true,
	})
	out, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.EvalRange(selGt(t, wideBase(t, "s"), 1000), span)
	if err != nil {
		t.Fatal(err)
	}
	if !testgen.EntriesApproxEqual(out.Entries(), want) {
		t.Fatalf("parallel view-backed run differs from reference")
	}
}
