package core

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/matview"
	"repro/internal/seq"
	"repro/internal/storage"
)

// ivmBase builds a sparse store named "b" with records at the given
// positions (v = position) and returns it with its schema.
func ivmBase(t *testing.T, positions ...int64) (*storage.Sparse, *seq.Schema) {
	t.Helper()
	schema := seq.MustSchema(seq.Field{Name: "v", Type: seq.TInt})
	entries := make([]seq.Entry, len(positions))
	for i, p := range positions {
		entries[i] = seq.Entry{Pos: p, Rec: seq.Record{seq.Int(p)}}
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.FromMaterialized(data, storage.KindSparse, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*storage.Sparse), schema
}

// registerView evaluates block over span against its bound (old) data
// and registers the result.
func registerView(t *testing.T, reg *matview.Registry, name string, block *algebra.Node, span seq.Span) *matview.View {
	t.Helper()
	entries, err := algebra.EvalRange(block, span)
	if err != nil {
		t.Fatal(err)
	}
	data, err := seq.NewMaterialized(block.Schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Register(name, block, data, span)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// viewEntries collects a view's stored records.
func viewEntries(t *testing.T, v *matview.View) []seq.Entry {
	t.Helper()
	entries, err := seq.Collect(v.Store.Scan(seq.AllSpan))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func entriesEqual(a, b []seq.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || !a[i].Rec.Equal(b[i].Rec) {
			return false
		}
	}
	return true
}

// TestMaintainViewsPolicy drives one append through views whose halos
// force each maintenance action, checking the decision and — for the
// maintained ones — that the stored data now matches a from-scratch
// evaluation over the new data.
func TestMaintainViewsPolicy(t *testing.T) {
	dense := make([]int64, 100) // 0..99
	for i := range dense {
		dense[i] = int64(i)
	}
	span := seq.NewSpan(0, 120)

	sum := func(in *algebra.Node, w algebra.Window) *algebra.Node {
		n, err := algebra.Agg(in, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: w})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	sel := func(in *algebra.Node) *algebra.Node {
		col, err := expr.ColAt(in.Schema, 0)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := expr.NewBin(expr.OpGe, col, expr.Literal(seq.Int(0)))
		if err != nil {
			t.Fatal(err)
		}
		n, err := algebra.Select(in, pred)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	voffset := func(in *algebra.Node, o int64) *algebra.Node {
		n, err := algebra.ValueOffset(in, o)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	cases := []struct {
		name  string
		data  []int64 // old base positions
		block func(base *algebra.Node) *algebra.Node
		want  matview.MaintainAction
		// wantSpan is the expected post-maintenance span (stitch keeps
		// the registered span).
		wantSpan seq.Span
	}{
		{"select stitches the appended position", dense,
			func(b *algebra.Node) *algebra.Node { return sel(b) },
			matview.MaintainStitch, span},
		{"trailing window stitches the bounded halo", dense,
			func(b *algebra.Node) *algebra.Node { return sum(b, algebra.Trailing(3)) },
			matview.MaintainStitch, span},
		// A cumulative stitch over the tail still scans all history, so the
		// pricing falls back to keeping the unaffected prefix instead.
		{"cumulative aggregate shrinks to the unaffected prefix", dense,
			func(b *algebra.Node) *algebra.Node { return sum(b, algebra.Cumulative()) },
			matview.MaintainShrink, seq.NewSpan(0, 99)},
		{"anticipating aggregate invalidates (whole span affected)", dense,
			func(b *algebra.Node) *algebra.Node { return sum(b, algebra.Window{HiUnbounded: true}) },
			matview.MaintainInvalidate, seq.EmptySpan},
		{"backward voffset shrinks below the append", dense,
			func(b *algebra.Node) *algebra.Node { return voffset(b, -1) },
			matview.MaintainShrink, seq.NewSpan(0, 100)},
		{"forward voffset over sparse data shrinks to the shielded prefix",
			[]int64{0, 1, 2},
			func(b *algebra.Node) *algebra.Node { return voffset(b, 1) },
			matview.MaintainShrink, seq.NewSpan(0, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldStore, schema := ivmBase(t, tc.data...)
			block := tc.block(algebra.Base("b", oldStore))
			reg := matview.New()
			registerView(t, reg, "v", block, span)

			// Append at 100 (beyond the old end for every dataset).
			newStore, _ := ivmBase(t, append(append([]int64(nil), tc.data...), 100)...)
			_ = schema
			lookup := func(name string) (seq.Sequence, bool) {
				if name == "b" {
					return newStore, true
				}
				return nil, false
			}
			reports, err := MaintainViews(reg, "b", seq.NewSpan(100, 100), 0, lookup, Options{})
			if err != nil {
				t.Fatalf("maintain: %v", err)
			}
			if len(reports) != 1 {
				t.Fatalf("got %d reports, want 1", len(reports))
			}
			rep := reports[0]
			if rep.Action != tc.want {
				t.Fatalf("action = %s, want %s\nreport: %s", rep.Action, tc.want, rep)
			}
			v, ok := reg.Get("v")
			if tc.want == matview.MaintainInvalidate {
				if ok {
					t.Fatalf("invalidated view still registered")
				}
				return
			}
			if !ok {
				t.Fatalf("view gone after %s", tc.want)
			}
			if v.Span != tc.wantSpan {
				t.Fatalf("span = %v, want %v", v.Span, tc.wantSpan)
			}
			// The stored data must equal a from-scratch evaluation of the
			// block over the surviving span against the new data.
			fresh := tc.block(algebra.Base("b", newStore))
			want, err := algebra.EvalRange(fresh, v.Span)
			if err != nil {
				t.Fatal(err)
			}
			if got := viewEntries(t, v); !entriesEqual(got, want) {
				t.Fatalf("maintained view disagrees with recomputation\ngot  %v\nwant %v\nreport: %s", got, want, rep)
			}
		})
	}
}

// TestMaintainViewsEmptyDelta: a content-preserving reorganize (empty
// delta) touches nothing.
func TestMaintainViewsEmptyDelta(t *testing.T) {
	oldStore, _ := ivmBase(t, 0, 1, 2, 3)
	block, err := algebra.PosOffset(algebra.Base("b", oldStore), 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := matview.New()
	registerView(t, reg, "v", block, seq.NewSpan(-1, 2))
	before := viewEntries(t, mustGet(t, reg, "v"))
	reports, err := MaintainViews(reg, "b", seq.EmptySpan, 0,
		func(string) (seq.Sequence, bool) { return oldStore, true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Action != matview.MaintainNone {
		t.Fatalf("reports = %v", reports)
	}
	if after := viewEntries(t, mustGet(t, reg, "v")); !entriesEqual(before, after) {
		t.Fatalf("empty delta changed the view")
	}
}

// TestMaintainViewsEpochGenerations: under MVCC (epoch > 0) the old
// generation stays readable for earlier-pinned readers while the new
// one serves the maintenance epoch onward.
func TestMaintainViewsEpochGenerations(t *testing.T) {
	oldStore, _ := ivmBase(t, 0, 1, 2)
	block, err := algebra.PosOffset(algebra.Base("b", oldStore), 0)
	if err != nil {
		t.Fatal(err)
	}
	span := seq.NewSpan(0, 10)
	reg := matview.New()
	registerView(t, reg, "v", block, span)
	oldEntries := viewEntries(t, mustGet(t, reg, "v"))

	newStore, _ := ivmBase(t, 0, 1, 2, 5)
	reports, err := MaintainViews(reg, "b", seq.NewSpan(5, 5), 7,
		func(string) (seq.Sequence, bool) { return newStore, true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Action != matview.MaintainStitch {
		t.Fatalf("reports = %v", reports)
	}

	early := reg.At(6).Views()
	if len(early) != 1 || !entriesEqual(viewEntries(t, early[0]), oldEntries) {
		t.Fatalf("reader pinned before the write must see the old generation")
	}
	late := reg.At(7).Views()
	if len(late) != 1 {
		t.Fatalf("reader at the write epoch must see exactly the new generation, got %d", len(late))
	}
	fresh, err := algebra.EvalRange(block, span) // block still bound to old data
	if err != nil {
		t.Fatal(err)
	}
	_ = fresh
	wantBlock, err := algebra.PosOffset(algebra.Base("b", newStore), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.EvalRange(wantBlock, span)
	if err != nil {
		t.Fatal(err)
	}
	if got := viewEntries(t, late[0]); !entriesEqual(got, want) {
		t.Fatalf("new generation content wrong: got %v want %v", got, want)
	}
	// GC below the maintenance epoch reclaims the superseded generation
	// without touching the live one.
	reg.GC(7)
	if _, ok := reg.Get("v"); !ok {
		t.Fatalf("GC dropped the live generation")
	}
	if got := len(reg.At(7).Views()); got != 1 {
		t.Fatalf("after GC: %d views at epoch 7", got)
	}
}

func mustGet(t *testing.T, reg *matview.Registry, name string) *matview.View {
	t.Helper()
	v, ok := reg.Get(name)
	if !ok {
		t.Fatalf("view %q missing", name)
	}
	return v
}
