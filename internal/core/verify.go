package core

import (
	"repro/internal/exec"
	"repro/internal/planlint"
)

// VerifyAll, when set, makes every Optimize call run the planlint
// invariant verifier: after each rewrite-rule firing, on the Step-2
// annotation, and on the final physical plans. It is a process-wide
// debug switch for tests and fuzz harnesses (set it once before running;
// it is not synchronized for concurrent toggling). Per-call verification
// is available through Options.Verify.
var VerifyAll bool

// Verify runs the planlint invariant checks over everything the
// optimizer produced: the rewritten logical tree (scope composition,
// Prop. 2.1; block delimitation, §3.1), the Step-2 annotation (span and
// density propagation, §3.2–3.3), both physical plans (cache
// finiteness, Thm. 3.1), the recorded per-node cost estimates, and the
// partition planner's decision (partition union, halo coverage, worker
// cache isolation). It returns an error describing every violation, or
// nil when the result is invariant-clean.
func (r *Result) Verify() error {
	var issues []planlint.Issue
	issues = append(issues, planlint.Verify(r.Rewritten)...)
	issues = append(issues, planlint.VerifyAnnotation(r.Rewritten, r.Annotation)...)
	lookup := func(p exec.Plan) (float64, float64, bool) {
		c, ok := r.PlanCosts[p]
		return c.Stream, c.ProbePer, ok
	}
	for _, p := range []exec.Plan{r.Plan, r.ProbedPlan} {
		issues = append(issues, planlint.VerifyPhysical(p)...)
		issues = append(issues, planlint.VerifyCosts(p, lookup)...)
	}
	issues = append(issues, planlint.VerifyPartitions(r.Plan, r.Parallel)...)
	issues = append(issues, planlint.VerifyMatviews(r.Substitutions)...)
	return planlint.Error(issues)
}
