package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/meta"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/testgen"
)

var closeSchema = seq.MustSchema(seq.Field{Name: "close", Type: seq.TFloat})

// mkStore builds a dense-store-backed base node with records val(p)=p at
// the given positions.
func mkStore(t *testing.T, name string, kind storage.Kind, span seq.Span, positions ...seq.Pos) (*algebra.Node, storage.Store) {
	t.Helper()
	es := make([]seq.Entry, len(positions))
	for i, p := range positions {
		es[i] = seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p))}}
	}
	m := seq.MustMaterialized(closeSchema, es)
	if !span.IsEmpty() {
		var err error
		m, err = m.WithSpan(span)
		if err != nil {
			t.Fatal(err)
		}
	}
	st, err := storage.FromMaterialized(m, kind, 8)
	if err != nil {
		t.Fatal(err)
	}
	stats := meta.StatsFromMaterialized(m)
	return algebra.BaseWithStats(name, st, stats), st
}

func optimize(t *testing.T, q *algebra.Node, span seq.Span, opts Options) *Result {
	t.Helper()
	res, err := Optimize(q, span, opts)
	if err != nil {
		t.Fatalf("optimize: %v\n%s", err, q)
	}
	return res
}

// checkAgainstReference optimizes and runs the query, comparing against
// the reference interpreter; returns the result for further inspection.
func checkAgainstReference(t *testing.T, q *algebra.Node, span seq.Span, opts Options) *Result {
	t.Helper()
	res := optimize(t, q, span, opts)
	got, err := res.Run()
	if err != nil {
		t.Fatalf("run: %v\nplan:\n%s", err, res.Explain())
	}
	want, err := algebra.EvalRange(q, span)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if !testgen.EntriesApproxEqual(got.Entries(), want) {
		t.Fatalf("plan output differs from reference\nquery:\n%s\nplan:\n%s\ngot  %v\nwant %v",
			q, res.Explain(), got.Entries(), want)
	}
	return res
}

func TestOptimizeSimpleSelect(t *testing.T) {
	base, _ := mkStore(t, "s", storage.KindDense, seq.EmptySpan, 1, 2, 3, 4, 5)
	c, _ := expr.NewCol(base.Schema, "close")
	pred, _ := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(2.5)))
	sel, _ := algebra.Select(base, pred)
	res := checkAgainstReference(t, sel, seq.NewSpan(0, 10), Options{})
	if res.Cost.Stream <= 0 {
		t.Error("stream cost must be positive")
	}
	if !strings.Contains(res.Explain(), "select") {
		t.Errorf("plan missing select:\n%s", res.Explain())
	}
}

func TestOptimizeExampleOneOne(t *testing.T) {
	// The volcano/earthquake query, end to end through the optimizer.
	quakeSchema := seq.MustSchema(seq.Field{Name: "strength", Type: seq.TFloat})
	volcSchema := seq.MustSchema(seq.Field{Name: "vname", Type: seq.TString})
	quakes := algebra.Base("earthquakes", seq.MustMaterialized(quakeSchema, []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Float(6.0)}},
		{Pos: 4, Rec: seq.Record{seq.Float(7.5)}},
		{Pos: 8, Rec: seq.Record{seq.Float(5.0)}},
	}))
	volcanos := algebra.Base("volcanos", seq.MustMaterialized(volcSchema, []seq.Entry{
		{Pos: 2, Rec: seq.Record{seq.Str("etna")}},
		{Pos: 6, Rec: seq.Record{seq.Str("fuji")}},
		{Pos: 9, Rec: seq.Record{seq.Str("rainier")}},
	}))
	prev, _ := algebra.Previous(quakes)
	schema, _ := algebra.ComposeSchema(volcanos, prev, "v", "e")
	strength, _ := expr.NewCol(schema, "strength")
	pred, _ := expr.NewBin(expr.OpGt, strength, expr.Literal(seq.Float(7.0)))
	joined, _ := algebra.Compose(volcanos, prev, pred, "v", "e")
	q, _ := algebra.ProjectCols(joined, "vname")

	res := checkAgainstReference(t, q, seq.NewSpan(0, 10), Options{})
	out, _ := res.Run()
	if out.Count() != 1 || out.Entries()[0].Rec[0].AsStr() != "fuji" {
		t.Errorf("example 1.1 output = %v", out.Entries())
	}
	// The chosen plan must use Cache-Strategy-B for the Previous.
	if !strings.Contains(res.Explain(), "voffset-cacheB") {
		t.Errorf("expected incremental Previous in plan:\n%s", res.Explain())
	}
}

func TestOptimizeJoinOrderAndStrategies(t *testing.T) {
	// Dense tiny sequence joined with a sparse large one: the optimizer
	// should stream the small side or lock-step, never probe the dense
	// side per record of the sparse side blindly. Mostly we check the
	// result is correct and strategies are reported.
	positions := make([]seq.Pos, 0, 200)
	for p := seq.Pos(1); p <= 200; p++ {
		positions = append(positions, p)
	}
	big, _ := mkStore(t, "big", storage.KindDense, seq.EmptySpan, positions...)
	small, _ := mkStore(t, "small", storage.KindSparse, seq.NewSpan(1, 200), 50, 100, 150)
	schema, _ := algebra.ComposeSchema(small, big, "s", "b")
	sc, _ := expr.NewCol(schema, "s.close")
	bc, _ := expr.NewCol(schema, "b.close")
	pred, _ := expr.NewBin(expr.OpLe, sc, bc)
	q, _ := algebra.Compose(small, big, pred, "s", "b")
	res := checkAgainstReference(t, q, seq.NewSpan(1, 200), Options{})
	if !strings.Contains(res.Explain(), "compose-") {
		t.Errorf("plan missing compose strategy:\n%s", res.Explain())
	}
	if res.Stats.BlocksOptimized != 1 {
		t.Errorf("blocks optimized = %d", res.Stats.BlocksOptimized)
	}
}

func TestOptimizeProbedPlan(t *testing.T) {
	base, _ := mkStore(t, "s", storage.KindDense, seq.EmptySpan, 1, 2, 3, 4, 5)
	sum, _ := algebra.AggCol(base, algebra.AggSum, "close", algebra.Trailing(2), "s2")
	res := optimize(t, sum, seq.NewSpan(1, 6), Options{})
	got, err := res.Probe([]seq.Pos{3, 6, 9})
	if err != nil {
		t.Fatal(err)
	}
	// s2(3) = 2+3 = 5; s2(6) = 5; s2(9) = Null.
	if len(got) != 2 || got[0].Rec[0].AsFloat() != 5 || got[1].Rec[0].AsFloat() != 5 {
		t.Errorf("probed = %v", got)
	}
}

func TestSpanPropagationReducesPages(t *testing.T) {
	// Figure 3 / E2 in miniature: DEC[1,350], IBM[200,500], HP[1,750].
	mk := func(name string, lo, hi seq.Pos) (*algebra.Node, storage.Store) {
		var ps []seq.Pos
		for p := lo; p <= hi; p++ {
			ps = append(ps, p)
		}
		return mkStore(t, name, storage.KindDense, seq.EmptySpan, ps...)
	}
	build := func() (*algebra.Node, []storage.Store) {
		dec, sd := mk("dec", 1, 350)
		ibm, si := mk("ibm", 200, 500)
		hp, sh := mk("hp", 1, 750)
		schema, _ := algebra.ComposeSchema(ibm, hp, "ibm", "hp")
		ic, _ := expr.NewCol(schema, "ibm.close")
		hc, _ := expr.NewCol(schema, "hp.close")
		pred, _ := expr.NewBin(expr.OpGe, ic, hc)
		ih, _ := algebra.Compose(ibm, hp, pred, "ibm", "hp")
		q, _ := algebra.Compose(dec, ih, nil, "dec", "")
		return q, []storage.Store{sd, si, sh}
	}

	totalPages := func(stores []storage.Store) int64 {
		var total int64
		for _, s := range stores {
			total += s.Stats().Snapshot().Pages()
		}
		return total
	}

	// Correctness check on its own instance (the reference interpreter
	// probes the same stores, so it must not share counters with the
	// measured runs).
	q0, _ := build()
	checkAgainstReference(t, q0, seq.NewSpan(1, 750), Options{})

	q1, stores1 := build()
	res := optimize(t, q1, seq.NewSpan(1, 750), Options{})
	if _, err := res.Run(); err != nil {
		t.Fatal(err)
	}
	withSpans := totalPages(stores1)

	q2, stores2 := build()
	res2 := optimize(t, q2, seq.NewSpan(1, 750), Options{DisableSpanPropagation: true})
	if _, err := exec.Run(res2.Plan, seq.NewSpan(1, 750)); err != nil {
		t.Fatal(err)
	}
	withoutSpans := totalPages(stores2)

	if withSpans >= withoutSpans {
		t.Errorf("span propagation must reduce pages: with=%d without=%d", withSpans, withoutSpans)
	}
	_ = res
}

func TestPropertyFourOneCounters(t *testing.T) {
	// Property 4.1: joining N sources evaluates sum_{k=1}^{N-1}
	// C(N,k)(N-k) subset extensions = N·2^(N-1) - N, and peak stored
	// plans is bounded by C(N,⌈N/2⌉) + N + O(1).
	for _, n := range []int{2, 3, 4, 5, 6, 7} {
		nodes := make([]*algebra.Node, n)
		for i := range nodes {
			nodes[i], _ = mkStore(t, "s", storage.KindDense, seq.EmptySpan, 1, 2, 3)
		}
		q := nodes[0]
		for i := 1; i < n; i++ {
			var err error
			q, err = algebra.Compose(q, nodes[i], nil, "", "")
			if err != nil {
				t.Fatal(err)
			}
		}
		res := optimize(t, q, seq.NewSpan(1, 3), Options{})
		want := int64(0)
		for k := 1; k < n; k++ {
			want += int64(binomial(n, k) * (n - k))
		}
		if res.Stats.JoinPlansEvaluated != want {
			t.Errorf("N=%d: plans evaluated = %d, want %d", n, res.Stats.JoinPlansEvaluated, want)
		}
		// Space: the DP keeps the singletons, the current size-k table
		// and the size-k+1 frontier alive at once; the peak is
		// N + max_k [C(N,k) + C(N,k+1)] = O(C(N, ⌈N/2⌉)).
		bound := n + 2
		for k := 1; k < n; k++ {
			if s := binomial(n, k) + binomial(n, k+1); s+n+2 > bound {
				bound = s + n + 2
			}
		}
		if res.Stats.PeakPlansStored > bound {
			t.Errorf("N=%d: peak plans stored = %d, exceeds bound %d", n, res.Stats.PeakPlansStored, bound)
		}
		if popcount(uint64(1)<<uint(n)-1) != n {
			t.Error("popcount sanity")
		}
	}
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	out := 1
	for i := 0; i < k; i++ {
		out = out * (n - i) / (i + 1)
	}
	return out
}

func TestForceComposeStrategy(t *testing.T) {
	a, _ := mkStore(t, "a", storage.KindDense, seq.EmptySpan, 1, 2, 3)
	b, _ := mkStore(t, "b", storage.KindDense, seq.EmptySpan, 2, 3, 4)
	q, _ := algebra.Compose(a, b, nil, "a", "b")
	for _, s := range []exec.ComposeStrategy{exec.ComposeLockStep, exec.ComposeStreamLeft, exec.ComposeStreamRight} {
		strategy := s
		res := checkAgainstReference(t, q, seq.NewSpan(1, 4), Options{ForceComposeStrategy: &strategy})
		if !strings.Contains(res.Explain(), "compose-"+strategy.String()) {
			t.Errorf("forced %v, plan:\n%s", strategy, res.Explain())
		}
	}
}

func TestForceNaiveStrategies(t *testing.T) {
	base, _ := mkStore(t, "s", storage.KindDense, seq.EmptySpan, 1, 2, 3, 4, 5, 6, 7, 8)
	sum, _ := algebra.AggCol(base, algebra.AggSum, "close", algebra.Trailing(3), "s3")
	res := checkAgainstReference(t, sum, seq.NewSpan(1, 10), Options{ForceNaiveAggregates: true})
	if !strings.Contains(res.Explain(), "agg-naive") {
		t.Errorf("expected naive agg:\n%s", res.Explain())
	}
	res = checkAgainstReference(t, sum, seq.NewSpan(1, 10), Options{DisableSlidingAggregates: true})
	if !strings.Contains(res.Explain(), "agg-cacheA") {
		t.Errorf("expected Cache-Strategy-A agg:\n%s", res.Explain())
	}
	res = checkAgainstReference(t, sum, seq.NewSpan(1, 10), Options{})
	if !strings.Contains(res.Explain(), "agg-sliding") {
		t.Errorf("expected sliding agg by default:\n%s", res.Explain())
	}

	prev, _ := algebra.Previous(base)
	res = checkAgainstReference(t, prev, seq.NewSpan(1, 10), Options{ForceNaiveValueOffsets: true})
	if !strings.Contains(res.Explain(), "voffset-naive") {
		t.Errorf("expected naive voffset:\n%s", res.Explain())
	}
}

func TestOptimizeRejectsUnboundedRun(t *testing.T) {
	base, _ := mkStore(t, "s", storage.KindDense, seq.EmptySpan, 1, 2, 3)
	prev, _ := algebra.Previous(base)
	res := optimize(t, prev, seq.AllSpan, Options{})
	if _, err := res.Run(); err == nil {
		t.Error("unbounded run span must be rejected")
	}
}

func TestOptimizeNilQuery(t *testing.T) {
	if _, err := Optimize(nil, seq.AllSpan, Options{}); err == nil {
		t.Error("nil query must be rejected")
	}
}

// The system-level property test: random queries over random data,
// optimized with various option sets, must match the reference
// interpreter exactly.
func TestOptimizerEquivalenceRandom(t *testing.T) {
	span := seq.NewSpan(-10, 45)
	optionSets := []Options{
		{},
		{DisableRewrites: true},
		{DisableSpanPropagation: true},
		{ForceNaiveAggregates: true, ForceNaiveValueOffsets: true},
		{DisableSlidingAggregates: true},
	}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := testgen.RandomQuery(rng, testgen.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if algebra.Divergent(q) {
			if _, err := Optimize(q, span, Options{}); err == nil {
				t.Fatalf("seed %d: divergent query not rejected", seed)
			}
			continue
		}
		want, err := algebra.EvalRange(q, span)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		opts := optionSets[seed%int64(len(optionSets))]
		res, err := Optimize(q, span, opts)
		if err != nil {
			t.Fatalf("seed %d: optimize: %v\n%s", seed, err, q)
		}
		got, err := res.Run()
		if err != nil {
			t.Fatalf("seed %d: run: %v\nquery:\n%s\nplan:\n%s", seed, err, q, res.Explain())
		}
		if !testgen.EntriesApproxEqual(got.Entries(), want) {
			t.Fatalf("seed %d: output differs\nquery:\n%s\nplan:\n%s\ngot  %v\nwant %v",
				seed, q, res.Explain(), got.Entries(), want)
		}
	}
}

// Probed access must agree with the reference too.
func TestOptimizerProbedEquivalenceRandom(t *testing.T) {
	span := seq.NewSpan(-5, 40)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 10_000))
		q, err := testgen.RandomQuery(rng, testgen.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if algebra.Divergent(q) {
			continue
		}
		res, err := Optimize(q, span, Options{})
		if err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}
		want, err := algebra.EvalRange(q, span)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		wantAt := make(map[seq.Pos]seq.Record, len(want))
		for _, e := range want {
			wantAt[e.Pos] = e.Rec
		}
		positions := []seq.Pos{span.Start, 0, 7, 13, 28, span.End}
		got, err := res.Probe(positions)
		if err != nil {
			t.Fatalf("seed %d: probe: %v\nplan:\n%s", seed, err, exec.Explain(res.ProbedPlan))
		}
		gotAt := make(map[seq.Pos]seq.Record, len(got))
		for _, e := range got {
			gotAt[e.Pos] = e.Rec
		}
		for _, p := range positions {
			if !gotAt[p].Equal(wantAt[p]) {
				t.Fatalf("seed %d: probe(%d) = %v, want %v\nquery:\n%s", seed, p, gotAt[p], wantAt[p], q)
			}
		}
	}
}

func TestSharedNodeRejected(t *testing.T) {
	base, _ := mkStore(t, "s", storage.KindDense, seq.EmptySpan, 1, 2, 3)
	shifted, _ := algebra.PosOffset(base, 1)
	q, _ := algebra.Compose(base, shifted, nil, "a", "b") // base feeds two operators
	_, err := Optimize(q, seq.NewSpan(1, 3), Options{})
	if err == nil || !strings.Contains(err.Error(), "not a tree") {
		t.Errorf("shared node must be rejected, got %v", err)
	}
}

func TestExplainMeta(t *testing.T) {
	base, _ := mkStore(t, "s", storage.KindDense, seq.EmptySpan, 1, 2, 3, 4, 5)
	sum, _ := algebra.AggCol(base, algebra.AggSum, "close", algebra.Trailing(2), "s2")
	res := optimize(t, sum, seq.NewSpan(2, 4), Options{})
	text := res.ExplainMeta()
	for _, want := range []string{"agg", "base(s)", "span=[1, 6]", "access=[2, 4]", "density="} {
		if !strings.Contains(text, want) {
			t.Errorf("ExplainMeta missing %q:\n%s", want, text)
		}
	}
}
