package core

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/matview"
	"repro/internal/meta"
	"repro/internal/parallel"
	"repro/internal/planlint"
	"repro/internal/reopt"
	"repro/internal/rewrite"
	"repro/internal/seq"
)

// Options configure the optimizer. The zero value selects the full
// pipeline with default parameters; the Disable/Force knobs exist for
// the ablation experiments (DESIGN.md E2–E5, E8).
type Options struct {
	// Params weight the cost model; nil selects DefaultCostParams.
	Params *CostParams
	// Rules is the rewrite rule set; nil selects rewrite.DefaultRules.
	Rules []rewrite.Rule
	// DisableRewrites skips Step 3 entirely.
	DisableRewrites bool
	// DisableSpanPropagation turns off the §3.2 span optimization: base
	// scans are not restricted to the top-down access spans, and compose
	// operators do not narrow scan ranges to the intersection of their
	// input spans (the Figure 3.A plan).
	DisableSpanPropagation bool
	// ForceComposeStrategy pins every compose to one join strategy
	// instead of costing the §3.3 alternatives.
	ForceComposeStrategy *exec.ComposeStrategy
	// ForceNaiveAggregates disables Cache-Strategy-A and the incremental
	// aggregate evaluators (the Figure 5.A baseline).
	ForceNaiveAggregates bool
	// ForceNaiveValueOffsets disables Cache-Strategy-B (the Figure 5.B
	// baseline).
	ForceNaiveValueOffsets bool
	// DisableSlidingAggregates removes the O(1) sliding-window
	// accumulator from consideration, leaving Cache-Strategy-A as the
	// best bounded-window strategy (the paper's configuration).
	DisableSlidingAggregates bool
	// Verify runs the planlint invariant verifier after every rewrite
	// rule firing and on the final result (see Result.Verify); an
	// invariant violation fails the Optimize call. The package-wide
	// VerifyAll switch turns this on for every call.
	Verify bool
	// Views is the materialized-view registry consulted during plan
	// generation: every non-leaf block is canonicalized and matched
	// against the registered views, and a "scan view + residual ops"
	// candidate is costed against recomputation (§3.4–3.5). Nil disables
	// view matching.
	Views *matview.Registry
	// Parallelism bounds the worker count of span-partitioned parallel
	// evaluation: 0 selects a GOMAXPROCS-derived default, 1 forces serial
	// evaluation, N > 1 caps the partition count at N. Within the bound,
	// the §4 cost model extended with the parallelism term picks the
	// actual K per query — including K = 1 (see internal/parallel).
	Parallelism int
	// Reopt configures mid-run adaptive reoptimization: when Enabled,
	// Run monitors predicted-vs-actual per-node costs at checkpoint
	// intervals and replans the remaining span on divergence (see
	// internal/reopt and Result.RunReopt).
	Reopt reopt.Config
	// Calibration, when non-nil and Params is nil, supplies cost
	// constants regressed from completed runs' EXPLAIN ANALYZE traces
	// (reopt.Calibration). Until it has enough observations the defaults
	// apply unchanged.
	Calibration *reopt.Calibration
	// Batch selects the execution data plane for Run and RunAnalyze: the
	// zero value (BatchAuto) drives converted operators through columnar
	// batches with value interning, BatchOff forces the record-at-a-time
	// scalar interpreter — the semantic ground truth the differential
	// tests compare against. Reoptimized runs always execute scalar:
	// mid-run splicing needs record-granular checkpoints, which batch
	// boundaries do not provide.
	Batch exec.BatchMode
}

func (o Options) params() CostParams {
	if o.Params != nil {
		return *o.Params
	}
	p := DefaultCostParams()
	if o.Calibration != nil {
		if k, ok := o.Calibration.Constants(); ok {
			// The regression is relative to the sequential-page unit
			// (SeqPage stays 1); constants without a counterpart in the
			// observed counters (Pred, ParallelStartup) keep defaults.
			p.RandPage = k.RandPage
			p.PerRecord = k.PerRecord
			p.CacheAccess = k.CacheAccess
		}
	}
	return p
}

// Stats reports what the optimizer did — including the Property 4.1
// counters for the block DP.
type Stats struct {
	// RulesFired counts Step 3 rewrite rule applications.
	RulesFired int
	// BlocksOptimized counts join blocks processed by the DP.
	BlocksOptimized int
	// JoinPlansEvaluated counts (subset, extension) pairs costed by the
	// DP — the paper's "number of join plans evaluated", O(N·2^(N-1)).
	JoinPlansEvaluated int64
	// CandidatesCosted counts individual (orientation × strategy)
	// candidates priced.
	CandidatesCosted int64
	// PeakPlansStored is the maximum number of DP entries live at once —
	// the paper's space bound O(C(N, ⌈N/2⌉)).
	PeakPlansStored int
}

// Result is an optimized query: executable plans for both access modes,
// cost estimates, and optimizer statistics.
type Result struct {
	// Plan is the cheapest stream-access plan (what Start runs).
	Plan exec.Plan
	// ProbedPlan is the cheapest probed-access plan.
	ProbedPlan exec.Plan
	// Cost holds the estimated stream cost and per-probe cost.
	Cost Cost
	// RunSpan is the position range Run evaluates: the root's access
	// span after span propagation and intersection with the request.
	RunSpan seq.Span
	// Rewritten is the post-Step-3 query tree.
	Rewritten *algebra.Node
	// Annotation is the Step-2 meta-information.
	Annotation *meta.Annotation
	// Stats are the optimizer counters.
	Stats Stats
	// StreamAccess reports whether the chosen plan has the stream-access
	// property (Theorem 3.1): a single scan of the base sequences with
	// cache-finite operator state.
	StreamAccess bool
	// CacheBudget is the total configured operator-cache capacity of the
	// stream plan — the constant memory bound of Definition 3.2.
	CacheBudget int
	// Parallel is the partition planner's decision for Run: whether the
	// run span splits into contiguous sub-spans evaluated by concurrent
	// workers, at what K, and why (a serial decision records its reason).
	// See internal/parallel.
	Parallel *parallel.Decision
	// Substitutions lists the materialized-view substitutions the builder
	// adopted, in build order. Empty when no registry was configured or
	// no view won.
	Substitutions []*matview.Substitution
	// Views is the registry the plan was built against (nil when view
	// matching was disabled); EXPLAIN ANALYZE reads its counters.
	Views *matview.Registry
	// PlanCosts maps every physical node the builder created (including
	// candidates the DP discarded) to its estimate, keyed by node
	// identity. EXPLAIN ANALYZE joins it against the executed tree to
	// print predicted next to actual.
	PlanCosts map[exec.Plan]Cost
	// Params are the cost-model weights the estimates were computed with,
	// kept so predictions can be converted back to page units.
	Params CostParams

	// nodes maps every physical node the builder created back to the
	// algebra node it evaluates. The reoptimization layer walks it in
	// lockstep with the metrics tree to turn observed row counts into
	// density overrides for replanning.
	nodes map[exec.Plan]*algebra.Node
	// opts are the options this result was optimized under, kept so
	// mid-run replans rebuild with the same configuration.
	opts Options
}

// Run executes the stream plan over the run span and materializes the
// output (the Start operator of Figure 6). With Options.Reopt enabled
// the run is monitored and may splice in a replanned tail (RunReopt).
func (r *Result) Run() (*seq.Materialized, error) {
	if !r.RunSpan.Bounded() && !r.RunSpan.IsEmpty() {
		return nil, fmt.Errorf("core: query output span %v is unbounded; request a bounded range", r.RunSpan)
	}
	if r.opts.Reopt.Enabled {
		out, _, err := r.RunReoptWith(r.opts.Reopt)
		return out, err
	}
	if r.opts.Batch.Enabled() {
		ctx := seq.NewBatchCtx()
		if r.Parallel.Parallel() {
			return parallel.RunBatch(r.Plan, r.RunSpan, r.Parallel, ctx)
		}
		return exec.RunBatch(r.Plan, r.RunSpan, ctx)
	}
	if r.Parallel.Parallel() {
		return parallel.Run(r.Plan, r.RunSpan, r.Parallel)
	}
	return exec.Run(r.Plan, r.RunSpan)
}

// Probe evaluates the query at specific positions using the probed plan
// (the "records at specific positions" query form of §4).
func (r *Result) Probe(positions []seq.Pos) ([]seq.Entry, error) {
	return exec.RunProbes(r.ProbedPlan, positions)
}

// Explain renders the chosen stream plan; a partitioned run appends the
// planner's decision line (serial decisions render nothing, keeping the
// output identical to a build without the parallel subsystem), and each
// adopted materialized-view substitution appends a line describing the
// replaced block, the residual work, and the cost comparison that chose
// the view.
func (r *Result) Explain() string {
	out := exec.Explain(r.Plan)
	if r.Parallel.Parallel() {
		out += "\n" + r.Parallel.String()
	}
	for _, s := range r.Substitutions {
		modes := "stream"
		switch {
		case s.Stream && s.Probed:
			modes = "stream+probed"
		case s.Probed && !s.Stream:
			modes = "probed"
		}
		span := s.Need.String()
		if !s.Covered.IsEmpty() && s.Covered != s.Need {
			span = fmt.Sprintf("%s covered=%s", s.Need, s.Covered)
		}
		out += fmt.Sprintf("\nmatview: %s block ← scan %q span=%s residual=%d conjunct(s) [%s] cost %.2f vs recompute %.2f",
			s.Block.Kind, s.View.Name, span, len(s.Residual), modes, s.ViewCost, s.RecomputeCost)
	}
	return out
}

// findSharedNode returns a node reachable through two different parents,
// or nil when the graph is a tree.
func findSharedNode(root *algebra.Node) *algebra.Node {
	seen := make(map[*algebra.Node]bool)
	var walk func(n *algebra.Node) *algebra.Node
	walk = func(n *algebra.Node) *algebra.Node {
		if seen[n] {
			return n
		}
		seen[n] = true
		for _, in := range n.Inputs {
			if s := walk(in); s != nil {
				return s
			}
		}
		return nil
	}
	return walk(root)
}

// Optimize runs the full pipeline of §4 on the query for the requested
// output range and returns executable plans with estimates.
func Optimize(root *algebra.Node, requested seq.Span, opts Options) (*Result, error) {
	// Step 1: the query arrives as an algebra tree (specification).
	if root == nil {
		return nil, fmt.Errorf("core: nil query")
	}
	if algebra.Divergent(root) {
		return nil, fmt.Errorf("core: query contains an aggregate over unboundedly many records; bound the input with a base sequence or a bounded window")
	}
	// The paper restricts query graphs to trees (§2.2): "we do not allow
	// the output of any operator to act as the input to more than one
	// operator". Shared nodes would also break the per-node access-span
	// annotation (each occurrence needs its own restriction).
	if shared := findSharedNode(root); shared != nil {
		return nil, fmt.Errorf("core: query graph is not a tree: %s node feeds more than one operator (use a separate node per occurrence)", shared.Kind)
	}
	stats := Stats{}

	// Step 3: query transformations. (Run before Step 2 so the
	// annotation describes the tree we will actually plan; the paper
	// orders annotation first, but transformations preserve spans and
	// densities, so annotating the rewritten tree is equivalent and
	// avoids re-annotation.)
	verify := opts.Verify || VerifyAll
	rewritten := root
	if !opts.DisableRewrites {
		rules := opts.Rules
		if rules == nil {
			rules = rewrite.DefaultRules()
		}
		var hook rewrite.Hook
		if verify {
			hook = planlint.CheckRule
		}
		var fired int
		var err error
		rewritten, fired, err = rewrite.RewriteWithHook(root, rules, hook)
		if err != nil {
			return nil, err
		}
		stats.RulesFired = fired
	}

	// Step 2: meta-information propagation (bottom-up and top-down).
	ann, err := meta.Annotate(rewritten, requested)
	if err != nil {
		return nil, err
	}

	// Steps 4–5: block identification and block-wise plan generation,
	// performed by the recursive builder (blocks are rooted at compose
	// regions; non-unit operators delimit them).
	b := &builder{
		opts: opts, params: opts.params(), ann: ann, stats: &stats,
		costs: make(map[exec.Plan]Cost),
		nodes: make(map[exec.Plan]*algebra.Node),
	}
	cand, err := b.build(rewritten)
	if err != nil {
		return nil, err
	}

	// Step 6: plan selection. The Start operator performs a stream
	// access, so the stream plan is the query plan; the probed plan is
	// kept for positional queries.
	runSpan := ann.Get(rewritten).AccessSpan
	if opts.DisableSpanPropagation {
		// The Figure 3.A baseline: do not narrow the evaluated range to
		// the span intersection; only clamp to the bounded universe so
		// evaluation terminates.
		runSpan = requested.Intersect(ann.Universe)
	}
	res := &Result{
		Plan:          cand.stream,
		ProbedPlan:    cand.probed,
		Cost:          cand.cost,
		RunSpan:       runSpan,
		Rewritten:     rewritten,
		Annotation:    ann,
		Stats:         stats,
		StreamAccess:  algebra.StreamEvaluable(rewritten),
		CacheBudget:   exec.CacheBudget(cand.stream),
		Substitutions: b.subs,
		Views:         opts.Views,
		PlanCosts:     b.costs,
		Params:        b.params,
		nodes:         b.nodes,
		opts:          opts,
	}
	// Partition planning: decide K for the run span under the extended
	// cost model. A guard keeps pre-existing literal CostParams (zero
	// ParallelStartup) from modeling worker startup as free.
	pp := parallel.DefaultParams()
	if b.params.ParallelStartup > 0 {
		pp.Startup = b.params.ParallelStartup
	}
	res.Parallel = parallel.Plan(cand.stream, runSpan, cand.cost.Stream, opts.Parallelism, pp)
	if verify {
		if err := res.Verify(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ExplainMeta renders the rewritten logical tree annotated with the
// Step-2 meta-information per node: valid span, estimated density, and
// the top-down restricted access span. It shows what the span and
// density propagation concluded, complementing Explain's physical view.
func (r *Result) ExplainMeta() string {
	var b strings.Builder
	var walk func(n *algebra.Node, depth int)
	walk = func(n *algebra.Node, depth int) {
		m := r.Annotation.Get(n)
		b.WriteString(strings.Repeat("  ", depth))
		line := n.Kind.String()
		if n.Kind == algebra.KindBase {
			line = "base(" + n.Name + ")"
		}
		if m != nil {
			line += fmt.Sprintf("  span=%s density=%.3f access=%s",
				m.Span, m.Density, m.AccessSpan)
		}
		b.WriteString(line)
		b.WriteByte('\n')
		for _, in := range n.Inputs {
			walk(in, depth+1)
		}
	}
	walk(r.Rewritten, 0)
	return strings.TrimRight(b.String(), "\n")
}
