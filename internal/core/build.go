package core

import (
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/matview"
	"repro/internal/meta"
	"repro/internal/seq"
	"repro/internal/storage"
)

// candidate couples executable plans for both access modes with the
// optimizer's estimates for the node they evaluate.
type candidate struct {
	stream  exec.Plan // plan whose Scan is cheapest
	probed  exec.Plan // plan whose Probe is cheapest
	schema  *seq.Schema
	span    seq.Span // access span (output positions that matter)
	density float64
	cost    Cost
}

// spanLen returns the bounded length of the candidate's span for cost
// arithmetic (unbounded spans saturate; costs stay finite via finite()).
func (c *candidate) spanLen() float64 {
	n := c.span.Len()
	if n <= 0 {
		return 0
	}
	return float64(n)
}

// records estimates the number of non-Null records in the access span.
func (c *candidate) records() float64 {
	return c.density * c.spanLen()
}

type builder struct {
	opts   Options
	params CostParams
	ann    *meta.Annotation
	stats  *Stats
	// costs records the optimizer's estimate for every physical node it
	// creates, keyed by node identity — the predicted side of EXPLAIN
	// ANALYZE. Entries for candidates the DP later discards are simply
	// never looked up.
	costs map[exec.Plan]Cost
	// subs records the materialized-view substitutions adopted while
	// building, in build order (see tryView).
	subs []*matview.Substitution
	// nodes maps each created physical node back to the algebra node it
	// evaluates (the reoptimization layer's plan→query join); nil
	// disables recording.
	nodes map[exec.Plan]*algebra.Node
}

// note records the estimate for a created plan node, merging with any
// earlier note: when the same physical node serves both access modes
// (e.g. a Leaf used as stream and probed plan), a later note for one
// role must not erase the other role's component.
func (b *builder) note(p exec.Plan, c Cost) {
	if b.costs == nil || p == nil {
		return
	}
	if prev, ok := b.costs[p]; ok {
		if c.Stream == 0 {
			c.Stream = prev.Stream
		}
		if c.ProbePer == 0 {
			c.ProbePer = prev.ProbePer
		}
	}
	b.costs[p] = c
}

// noteCand records the estimates for a candidate's plans, and which
// algebra node they evaluate.
func (b *builder) noteCand(n *algebra.Node, c *candidate) (*candidate, error) {
	b.note(c.stream, c.cost)
	b.note(c.probed, c.cost)
	if b.nodes != nil {
		if c.stream != nil {
			b.nodes[c.stream] = n
		}
		if c.probed != nil {
			b.nodes[c.probed] = n
		}
	}
	return c, nil
}

// build produces a candidate for the node (Steps 4–5, recursively).
func (b *builder) build(n *algebra.Node) (*candidate, error) {
	m := b.ann.Get(n)
	if m == nil {
		return nil, fmt.Errorf("core: node %s not annotated", n.Kind)
	}
	var cand *candidate
	var err error
	switch n.Kind {
	case algebra.KindBase:
		cand, err = b.buildBase(n, m)
	case algebra.KindConst:
		// The access span (clamped to the bounded universe) keeps scans
		// of the unbounded constant sequence finite.
		plan := exec.NewLeaf("const", n.Seq, m.AccessSpan)
		cand = &candidate{
			stream: plan, probed: plan, schema: n.Schema,
			span: m.AccessSpan, density: 1,
			cost: Cost{Stream: 0, ProbePer: 0},
		}
	case algebra.KindSelect:
		cand, err = b.buildSelect(n, m)
	case algebra.KindProject:
		cand, err = b.buildProject(n, m)
	case algebra.KindPosOffset:
		cand, err = b.buildPosOffset(n, m)
	case algebra.KindValueOffset:
		cand, err = b.buildValueOffset(n, m)
	case algebra.KindAgg:
		cand, err = b.buildAgg(n, m)
	case algebra.KindCompose:
		cand, err = b.buildBlock(n, m)
	case algebra.KindCollapse:
		cand, err = b.buildCollapse(n, m)
	case algebra.KindExpand:
		cand, err = b.buildExpand(n, m)
	default:
		return nil, fmt.Errorf("core: cannot build %s", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	// A materialized view subsuming this block is an alternative access
	// path; adopt it per access mode wherever it prices below
	// recomputation (§3.4–3.5).
	if cand, err = b.tryView(n, m, cand); err != nil {
		return nil, err
	}
	return b.noteCand(n, cand)
}

// buildCollapse prices the §5.1 domain-coarsening operator: stream
// evaluation is one input scan; probes scan a k-position segment.
func (b *builder) buildCollapse(n *algebra.Node, m *meta.NodeMeta) (*candidate, error) {
	in, err := b.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	streamPlan, err := exec.NewCollapse(in.stream, n.Factor, *n.Agg, m.AccessSpan)
	if err != nil {
		return nil, err
	}
	probePlan, err := exec.NewCollapse(in.stream, n.Factor, *n.Agg, m.AccessSpan)
	if err != nil {
		return nil, err
	}
	k := float64(n.Factor)
	return &candidate{
		stream: streamPlan, probed: probePlan, schema: n.Schema,
		span: m.AccessSpan, density: m.Density,
		cost: Cost{
			Stream:   finite(in.cost.Stream + in.records()*b.params.PerRecord),
			ProbePer: finite(b.params.SeqPage + k*b.params.PerRecord),
		},
	}, nil
}

// buildExpand prices the §5.1 domain-refining operator: replication is
// free per record on streams, and probes divide through to the input.
func (b *builder) buildExpand(n *algebra.Node, m *meta.NodeMeta) (*candidate, error) {
	in, err := b.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	streamPlan, err := exec.NewExpand(in.stream, n.Factor, m.AccessSpan)
	if err != nil {
		return nil, err
	}
	probePlan, err := exec.NewExpand(in.probed, n.Factor, m.AccessSpan)
	if err != nil {
		return nil, err
	}
	outLen := float64(m.AccessSpan.Len())
	return &candidate{
		stream: streamPlan, probed: probePlan, schema: n.Schema,
		span: m.AccessSpan, density: m.Density,
		cost: Cost{
			Stream:   finite(in.cost.Stream + outLen*b.params.PerRecord),
			ProbePer: in.cost.ProbePer,
		},
	}, nil
}

// buildBase prices the two access modes of a stored sequence (§4.1.1).
func (b *builder) buildBase(n *algebra.Node, m *meta.NodeMeta) (*candidate, error) {
	access := m.AccessSpan
	if b.opts.DisableSpanPropagation {
		access = seq.AllSpan
	}
	plan := exec.NewLeaf(n.Name, n.Seq, access)
	info := n.Seq.Info()
	var streamPages, probePages float64
	if st, ok := n.Seq.(storage.Store); ok {
		ac := st.AccessCosts()
		streamPages = float64(ac.StreamPages)
		probePages = float64(ac.ProbePages)
	} else {
		// Unstored sequence (e.g. in-memory materialized): assume a
		// dense default-page layout.
		streamPages = math.Ceil(float64(info.Span.Len()) / storage.DefaultRecordsPerPage)
		probePages = 1
	}
	// A restricted scan touches the restricted fraction of the pages.
	frac := 1.0
	if full := info.Span.Len(); full > 0 && info.Span.Bounded() && m.AccessSpan.Bounded() {
		frac = float64(m.AccessSpan.Len()) / float64(full)
		if frac > 1 {
			frac = 1
		}
	}
	if b.opts.DisableSpanPropagation {
		frac = 1
	}
	return &candidate{
		stream: plan, probed: plan, schema: n.Schema,
		span: m.AccessSpan, density: m.Density,
		cost: Cost{
			Stream:   finite(streamPages * frac * b.params.SeqPage),
			ProbePer: finite(probePages * b.params.RandPage),
		},
	}, nil
}

func (b *builder) buildSelect(n *algebra.Node, m *meta.NodeMeta) (*candidate, error) {
	in, err := b.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	return &candidate{
		stream: exec.NewSelect(in.stream, n.Pred),
		probed: exec.NewSelect(in.probed, n.Pred),
		schema: n.Schema,
		span:   m.AccessSpan, density: m.Density,
		cost: Cost{
			Stream:   finite(in.cost.Stream + in.records()*b.params.Pred),
			ProbePer: finite(in.cost.ProbePer + b.params.Pred),
		},
	}, nil
}

func (b *builder) buildProject(n *algebra.Node, m *meta.NodeMeta) (*candidate, error) {
	in, err := b.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	items := make([]exec.ProjExpr, len(n.Items))
	for i, it := range n.Items {
		items[i] = exec.ProjExpr{Expr: it.Expr, Name: it.Name}
	}
	streamPlan, err := exec.NewProject(in.stream, items)
	if err != nil {
		return nil, err
	}
	probedPlan, err := exec.NewProject(in.probed, items)
	if err != nil {
		return nil, err
	}
	return &candidate{
		stream: streamPlan, probed: probedPlan, schema: n.Schema,
		span: m.AccessSpan, density: m.Density,
		cost: Cost{
			Stream:   finite(in.cost.Stream + in.records()*b.params.PerRecord),
			ProbePer: finite(in.cost.ProbePer + b.params.PerRecord),
		},
	}, nil
}

func (b *builder) buildPosOffset(n *algebra.Node, m *meta.NodeMeta) (*candidate, error) {
	in, err := b.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	return &candidate{
		stream: exec.NewPosOffset(in.stream, n.Offset),
		probed: exec.NewPosOffset(in.probed, n.Offset),
		schema: n.Schema,
		span:   m.AccessSpan, density: m.Density,
		cost: in.cost, // re-addressing is free
	}, nil
}

// probeSide returns the input plan a repeatedly probing operator should
// use, with its per-probe cost and any one-time setup cost. Probing a
// derived input recomputes it per probe; when that is expensive, the
// builder materializes the input once over its bounded access span — the
// derived-sequence materialization extension of §5.3.
func (b *builder) probeSide(inNode *algebra.Node, in *candidate) (exec.Plan, float64, float64, error) {
	switch in.probed.(type) {
	case *exec.Leaf, *exec.Materialize:
		return in.probed, in.cost.ProbePer, 0, nil
	}
	if in.cost.ProbePer <= 2*b.params.RandPage {
		return in.probed, in.cost.ProbePer, 0, nil
	}
	span := b.ann.Get(inNode).AccessSpan
	if !span.Bounded() {
		return in.probed, in.cost.ProbePer, 0, nil
	}
	mat, err := exec.NewMaterialize(in.stream, span)
	if err != nil {
		return nil, 0, 0, err
	}
	b.note(mat, Cost{Stream: in.cost.Stream, ProbePer: b.params.CacheAccess})
	return mat, b.params.CacheAccess, in.cost.Stream, nil
}

// buildValueOffset prices the naive and incremental (Cache-Strategy-B)
// algorithms of §4.1.2 and picks the cheaper stream plan. Probed access
// always uses the naive walk: "the incremental algorithm is not usable
// in conjunction with a probed access".
func (b *builder) buildValueOffset(n *algebra.Node, m *meta.NodeMeta) (*candidate, error) {
	in, err := b.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	k := float64(n.Offset)
	if k < 0 {
		k = -k
	}
	outLen := float64(m.AccessSpan.Len())
	d := in.density
	if d <= 1e-9 {
		d = 1e-9
	}
	probeIn, perProbe, setup, err := b.probeSide(n.Inputs[0], in)
	if err != nil {
		return nil, err
	}
	// §4.1.2: "some reasonable estimate ... of the number of input
	// positions that will have to be accessed on average ... from the
	// density of the input sequence": k records at density d span ~k/d
	// positions, each a probe.
	walkProbes := k / d
	probePer := finite(walkProbes*perProbe + k*b.params.PerRecord)
	naiveStream := finite(setup + outLen*probePer)
	incrStream := finite(in.cost.Stream + in.records()*b.params.CacheAccess + outLen*b.params.CacheAccess)

	naivePlan, err := exec.NewValueOffsetNaive(probeIn, n.Offset, m.AccessSpan)
	if err != nil {
		return nil, err
	}
	cand := &candidate{
		probed: naivePlan, schema: n.Schema,
		span: m.AccessSpan, density: m.Density,
		cost: Cost{ProbePer: probePer},
	}
	if b.opts.ForceNaiveValueOffsets || naiveStream <= incrStream {
		cand.stream = naivePlan
		cand.cost.Stream = naiveStream
		return cand, nil
	}
	incrPlan, err := exec.NewValueOffsetIncremental(in.stream, n.Offset, m.AccessSpan)
	if err != nil {
		return nil, err
	}
	cand.stream = incrPlan
	cand.cost.Stream = incrStream
	return cand, nil
}

// buildAgg prices the §4.1.2 aggregate strategies: naive probing,
// Cache-Strategy-A (window cache, O(w) per output), the O(1) sliding
// accumulator (extension), and the running accumulator for cumulative
// windows.
func (b *builder) buildAgg(n *algebra.Node, m *meta.NodeMeta) (*candidate, error) {
	in, err := b.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	spec := *n.Agg
	w := spec.Window
	outLen := float64(m.AccessSpan.Len())

	// Expected window width for cost purposes.
	var width float64
	if size, fixed := w.Size(); fixed {
		width = float64(size)
	} else if w.LoUnbounded && !w.HiUnbounded {
		width = outLen / 2 // average prefix length
	} else {
		width = outLen
	}

	probeIn, perProbe, setup, err := b.probeSide(n.Inputs[0], in)
	if err != nil {
		return nil, err
	}
	probePer := finite(width*perProbe + width*b.params.PerRecord)
	naiveStream := finite(setup + outLen*probePer)

	naivePlan, err := exec.NewAggNaive(probeIn, spec, m.AccessSpan)
	if err != nil {
		return nil, err
	}
	cand := &candidate{
		probed: naivePlan, schema: n.Schema,
		span: m.AccessSpan, density: m.Density,
		cost: Cost{ProbePer: probePer},
	}

	type option struct {
		cost float64
		mk   func() (exec.Plan, error)
	}
	opts := []option{{naiveStream, func() (exec.Plan, error) { return naivePlan, nil }}}
	if !b.opts.ForceNaiveAggregates {
		if _, fixed := w.Size(); fixed {
			cacheA := finite(in.cost.Stream + in.records()*b.params.CacheAccess +
				outLen*(width*b.params.PerRecord+b.params.CacheAccess))
			opts = append(opts, option{cacheA, func() (exec.Plan, error) {
				return exec.NewAggCached(in.stream, spec, m.AccessSpan)
			}})
			if !b.opts.DisableSlidingAggregates {
				sliding := finite(in.cost.Stream + (in.records()+outLen)*b.params.PerRecord)
				opts = append(opts, option{sliding, func() (exec.Plan, error) {
					return exec.NewAggSliding(in.stream, spec, m.AccessSpan)
				}})
			}
		}
		if w.LoUnbounded && !w.HiUnbounded {
			running := finite(in.cost.Stream + (in.records()+outLen)*b.params.PerRecord)
			opts = append(opts, option{running, func() (exec.Plan, error) {
				return exec.NewAggCumulative(in.stream, spec, m.AccessSpan)
			}})
		}
	}
	best := opts[0]
	for _, o := range opts[1:] {
		if o.cost < best.cost {
			best = o
		}
	}
	plan, err := best.mk()
	if err != nil {
		return nil, err
	}
	cand.stream = plan
	cand.cost.Stream = best.cost
	return cand, nil
}
